/**
 * @file
 * Blockchain-style multi-tenant serving: N validators (tenants) sign
 * a block's worth of transactions through one SignService — requests
 * route through the warm per-key context cache, so no Context is
 * constructed per signature — and the full block then verifies
 * through the batched lane-parallel VerifyService, which shares the
 * same warm contexts and stats registry. This is the high-throughput
 * scenario of the paper's introduction, extended to the serving layer
 * the ROADMAP targets.
 *
 *   $ ./blockchain_batch [num_transactions] [workers] [tenants]
 */

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "common/random.hh"
#include "core/engine.hh"
#include "service/sign_service.hh"
#include "service/verify_service.hh"
#include "sphincs/sphincs.hh"

using namespace herosign;
using core::EngineConfig;
using core::SignEngine;
using service::KeyStore;
using service::ServiceConfig;
using service::SignService;
using service::VerifyService;
using sphincs::Params;
using sphincs::SphincsPlus;

namespace
{

/** A toy transaction: payer, payee, amount, nonce. */
struct Transaction
{
    uint64_t payer, payee, amount, nonce;

    ByteVec
    serialize() const
    {
        ByteVec out(32);
        storeBe64(out.data(), payer);
        storeBe64(out.data() + 8, payee);
        storeBe64(out.data() + 16, amount);
        storeBe64(out.data() + 24, nonce);
        return out;
    }
};

std::string
tenantId(unsigned i)
{
    return std::string("validator-").append(std::to_string(i));
}

} // namespace

int
main(int argc, char **argv)
{
    const unsigned count =
        argc > 1 ? static_cast<unsigned>(std::stoul(argv[1])) : 64;
    const unsigned workers =
        argc > 2 ? static_cast<unsigned>(std::stoul(argv[2])) : 4;
    const unsigned tenants = std::max(
        1u,
        argc > 3 ? static_cast<unsigned>(std::stoul(argv[3])) : 4);

    const Params &params = Params::sphincs128f();
    SphincsPlus scheme(params);
    Rng rng(2026);

    // Every validator registers its keypair with the shared KeyStore.
    KeyStore store;
    for (unsigned t = 0; t < tenants; ++t)
        store.addKey(tenantId(t),
                     scheme.keygen(rng));

    ServiceConfig cfg;
    cfg.workers = workers == 0 ? 1 : workers;
    cfg.shards = cfg.workers;
    cfg.contextCacheCapacity = tenants;
    SignService sign_svc(store, cfg);
    // The verifier shares the signer's warm contexts, stats registry
    // and admission controller: one traffic fabric for both planes.
    VerifyService verify_svc(store, cfg, sign_svc.contextCache(),
                             sign_svc.statsRegistry(),
                             sign_svc.admission());

    // Build the transaction batch, round-robin across validators.
    std::vector<ByteVec> msgs;
    std::vector<std::string> signer_of;
    msgs.reserve(count);
    for (unsigned i = 0; i < count; ++i) {
        Transaction tx{rng.next(), rng.next(), rng.below(1'000'000),
                       i};
        msgs.push_back(tx.serialize());
        signer_of.push_back(tenantId(i % tenants));
    }

    // Mixed sign traffic through one service instance.
    std::vector<std::future<ByteVec>> futs;
    futs.reserve(count);
    for (unsigned i = 0; i < count; ++i)
        futs.push_back(sign_svc.submitSign(signer_of[i], msgs[i]));
    std::vector<ByteVec> sigs;
    sigs.reserve(count);
    for (auto &f : futs)
        sigs.push_back(f.get());
    sign_svc.drain();
    auto sign_stats = sign_svc.stats();

    // The whole block verifies through the async verify plane: each
    // future resolves when a verify worker has coalesced queued
    // requests into lane-filling per-validator groups.
    std::vector<std::future<bool>> vfuts;
    vfuts.reserve(count);
    for (unsigned i = 0; i < count; ++i)
        vfuts.push_back(
            verify_svc.submitVerify(signer_of[i], msgs[i], sigs[i]));
    for (unsigned i = 0; i < count; ++i) {
        if (!vfuts[i].get()) {
            std::cerr << "tx " << i << ": verification FAILED\n";
            return 1;
        }
    }
    verify_svc.drain();
    auto verify_stats = verify_svc.stats();

    std::cout << "signed+verified " << count << " transactions from "
              << tenants << " validators on " << sign_svc.workers()
              << " workers\n"
              << "  sign: " << sign_stats.sigsPerSec << " sigs/s ("
              << sign_stats.wallUs / 1000.0 << " ms wall)\n"
              << "  warm contexts built: " << sign_stats.cache.misses
              << " (one per validator), cache hits: "
              << verify_stats.cache.hits << "\n"
              << "  verify rejects: " << verify_stats.verifyRejects
              << " of " << verify_stats.verifies << "\n";
    for (const auto &[id, ts] : sign_svc.stats().tenants) {
        std::cout << "    " << id << ": " << ts.signsCompleted
                  << " signs, " << ts.verifies << " verifies\n";
    }

    // The simulated timeline still answers the planning question the
    // paper poses: what would this batch cost on the target GPU?
    const auto dev = gpu::DeviceProps::rtx4090();
    SignEngine engine(params, dev, EngineConfig::hero());
    auto graph = engine.signBatchTiming(count);
    std::cout << "  simulated " << dev.name << " timeline: "
              << graph.makespanUs / 1000.0 << " ms makespan, "
              << graph.kops << " KOPS\n";

    // Block finalization budget check: a 400 ms block interval on
    // the simulated device.
    const double block_ms = 400.0;
    const double capacity = graph.kops * block_ms;
    std::cout << "  sustainable tx/block at " << block_ms
              << " ms interval: " << static_cast<uint64_t>(capacity)
              << " (simulated GPU)\n";
    return 0;
}
