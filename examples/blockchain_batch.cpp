/**
 * @file
 * Blockchain-style batch signing: a block producer signs a batch of
 * transactions with SPHINCS+-128f using the task-graph engine, the
 * motivating high-throughput scenario of the paper's introduction.
 *
 * The example signs a sample of the batch functionally (verifying
 * each signature) and reports the simulated device timeline for the
 * full batch, comparing stream vs graph submission.
 *
 *   $ ./blockchain_batch [num_transactions]
 */

#include <iostream>
#include <string>

#include "common/hex.hh"
#include "common/random.hh"
#include "core/engine.hh"
#include "hash/sha256.hh"
#include "sphincs/sphincs.hh"

using namespace herosign;
using core::EngineConfig;
using core::SignEngine;
using sphincs::Params;
using sphincs::SphincsPlus;

namespace
{

/** A toy transaction: payer, payee, amount, nonce. */
struct Transaction
{
    uint64_t payer, payee, amount, nonce;

    ByteVec
    serialize() const
    {
        ByteVec out(32);
        storeBe64(out.data(), payer);
        storeBe64(out.data() + 8, payee);
        storeBe64(out.data() + 16, amount);
        storeBe64(out.data() + 24, nonce);
        return out;
    }
};

} // namespace

int
main(int argc, char **argv)
{
    const unsigned count =
        argc > 1 ? static_cast<unsigned>(std::stoul(argv[1])) : 1024;

    const Params &params = Params::sphincs128f();
    SphincsPlus scheme(params);
    Rng rng(2026);
    auto kp = scheme.keygen(rng);

    // Build the transaction batch.
    std::vector<Transaction> txs(count);
    for (unsigned i = 0; i < count; ++i)
        txs[i] = Transaction{rng.next(), rng.next(),
                             rng.below(1'000'000), i};

    const auto dev = gpu::DeviceProps::rtx4090();
    SignEngine graph_engine(params, dev, EngineConfig::hero());
    EngineConfig no_graph = EngineConfig::hero();
    no_graph.useGraph = false;
    no_graph.name = "HERO-nograph";
    SignEngine stream_engine(params, dev, no_graph);

    // Functionally sign + verify a sample (the whole batch would be
    // identical work; the timeline model covers the rest).
    const unsigned sample = std::min(count, 4u);
    for (unsigned i = 0; i < sample; ++i) {
        ByteVec msg = txs[i].serialize();
        auto outcome = graph_engine.sign(msg, kp.sk);
        if (!scheme.verify(msg, outcome.signature, kp.pk)) {
            std::cerr << "tx " << i << ": verification FAILED\n";
            return 1;
        }
    }
    std::cout << "functionally signed+verified " << sample
              << " sample transactions\n";

    auto graph = graph_engine.signBatchTiming(count);
    auto streams = stream_engine.signBatchTiming(count);

    std::cout << "batch of " << count << " transactions on simulated "
              << dev.name << ":\n"
              << "  task-graph submission: " << graph.kops
              << " KOPS, makespan " << graph.makespanUs / 1000.0
              << " ms, launch latency " << graph.launchLatencyUs
              << " us\n"
              << "  stream submission:     " << streams.kops
              << " KOPS, makespan " << streams.makespanUs / 1000.0
              << " ms, launch latency " << streams.launchLatencyUs
              << " us\n"
              << "  launch-latency reduction: "
              << streams.launchLatencyUs / graph.launchLatencyUs
              << "x\n";

    // Block finalization budget check: a 400 ms block interval.
    const double block_ms = 400.0;
    const double capacity =
        graph.kops * block_ms; // signatures per block interval
    std::cout << "  sustainable tx/block at " << block_ms
              << " ms interval: " << static_cast<uint64_t>(capacity)
              << "\n";
    return 0;
}
