/**
 * @file
 * Blockchain-style batch signing: a block producer signs a batch of
 * transactions with SPHINCS+-128f, the motivating high-throughput
 * scenario of the paper's introduction.
 *
 * Unlike the earlier revisions of this example, the batch is signed
 * for real on the engine's multi-threaded BatchSigner (worker pool +
 * sharded queue); every signature is verified, and the measured
 * wall-clock makespan is reported next to the simulated GPU
 * timeline's prediction for the same batch.
 *
 *   $ ./blockchain_batch [num_transactions] [workers]
 */

#include <iostream>
#include <string>

#include "common/hex.hh"
#include "common/random.hh"
#include "core/engine.hh"
#include "hash/sha256.hh"
#include "sphincs/sphincs.hh"

using namespace herosign;
using core::EngineConfig;
using core::SignEngine;
using sphincs::Params;
using sphincs::SphincsPlus;

namespace
{

/** A toy transaction: payer, payee, amount, nonce. */
struct Transaction
{
    uint64_t payer, payee, amount, nonce;

    ByteVec
    serialize() const
    {
        ByteVec out(32);
        storeBe64(out.data(), payer);
        storeBe64(out.data() + 8, payee);
        storeBe64(out.data() + 16, amount);
        storeBe64(out.data() + 24, nonce);
        return out;
    }
};

} // namespace

int
main(int argc, char **argv)
{
    const unsigned count =
        argc > 1 ? static_cast<unsigned>(std::stoul(argv[1])) : 64;
    const unsigned workers =
        argc > 2 ? static_cast<unsigned>(std::stoul(argv[2])) : 0;

    const Params &params = Params::sphincs128f();
    SphincsPlus scheme(params);
    Rng rng(2026);
    auto kp = scheme.keygen(rng);

    // Build and serialize the transaction batch.
    std::vector<ByteVec> msgs;
    msgs.reserve(count);
    for (unsigned i = 0; i < count; ++i) {
        Transaction tx{rng.next(), rng.next(), rng.below(1'000'000),
                       i};
        msgs.push_back(tx.serialize());
    }

    const auto dev = gpu::DeviceProps::rtx4090();
    SignEngine engine(params, dev, EngineConfig::hero());

    // Sign the whole batch for real on the worker pool.
    auto run = engine.signBatch(msgs, kp.sk, workers);
    for (unsigned i = 0; i < count; ++i) {
        if (!scheme.verify(msgs[i], run.signatures[i], kp.pk)) {
            std::cerr << "tx " << i << ": verification FAILED\n";
            return 1;
        }
    }

    std::cout << "signed+verified " << count << " transactions on "
              << run.workers << " workers / "
              << engine.config().streams << " queue shards\n"
              << "  measured makespan:  "
              << run.measuredMakespanUs / 1000.0 << " ms ("
              << run.stats.sigsPerSec << " sigs/s, "
              << run.stats.crossShardPops << " cross-shard pops)\n"
              << "  predicted makespan: "
              << run.predictedMakespanUs / 1000.0
              << " ms (simulated " << dev.name << " timeline)\n";

    // The simulated timeline still answers the planning question the
    // paper poses: stream vs graph submission on the target GPU.
    EngineConfig no_graph = EngineConfig::hero();
    no_graph.useGraph = false;
    no_graph.name = "HERO-nograph";
    SignEngine stream_engine(params, dev, no_graph);
    auto graph = engine.signBatchTiming(count);
    auto streams = stream_engine.signBatchTiming(count);
    std::cout << "  simulated task-graph: " << graph.kops
              << " KOPS, launch latency " << graph.launchLatencyUs
              << " us\n"
              << "  simulated streams:    " << streams.kops
              << " KOPS, launch latency " << streams.launchLatencyUs
              << " us\n";

    // Block finalization budget check: a 400 ms block interval on
    // the simulated device.
    const double block_ms = 400.0;
    const double capacity = graph.kops * block_ms;
    std::cout << "  sustainable tx/block at " << block_ms
              << " ms interval: " << static_cast<uint64_t>(capacity)
              << " (simulated GPU)\n";
    return 0;
}
