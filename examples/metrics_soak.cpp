/**
 * @file
 * Metrics soak: run a duration-bounded mixed sign+verify workload
 * through a shared-registry serving fabric while a MetricsReporter
 * thread appends one JSON snapshot line per period, then validate
 * the final Prometheus exposition with the built-in format checker
 * and print a sampled trace timeline.
 *
 *   $ ./metrics_soak [--seconds N] [--out FILE.jsonl]
 *                    [--period-ms P] [--tenants T]
 *
 * Exit code 0 requires: the workload completed, the reporter wrote
 * at least two snapshot lines (one periodic + the final flush), and
 * exportPrometheus() passed promCheck(). This is the binary behind
 * `METRICS_SOAK=1 ./ci.sh`.
 */

#include <chrono>
#include <cstring>
#include <future>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/random.hh"
#include "service/sign_service.hh"
#include "service/verify_service.hh"
#include "telemetry/prom_check.hh"
#include "telemetry/reporter.hh"

using namespace herosign;
using service::KeyStore;
using service::ServiceConfig;
using service::ServiceStats;
using service::SignService;
using service::StatsRegistry;
using service::VerifyService;

int
main(int argc, char **argv)
{
    double seconds = 3.0;
    std::string out = "metrics_soak.jsonl";
    unsigned period_ms = 250;
    unsigned tenants = 3;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--seconds" && i + 1 < argc)
            seconds = std::stod(argv[++i]);
        else if (a == "--out" && i + 1 < argc)
            out = argv[++i];
        else if (a == "--period-ms" && i + 1 < argc)
            period_ms = static_cast<unsigned>(std::stoul(argv[++i]));
        else if (a == "--tenants" && i + 1 < argc)
            tenants = std::max(
                1u, static_cast<unsigned>(std::stoul(argv[++i])));
    }

    const sphincs::Params &p = sphincs::Params::sphincs128f();
    sphincs::SphincsPlus scheme(p);
    Rng rng(0x50a4);
    KeyStore store;
    std::vector<std::pair<ByteVec, ByteVec>> vpool;
    for (unsigned t = 0; t < tenants; ++t) {
        const std::string id =
            std::string("tenant-").append(std::to_string(t));
        auto kp = scheme.keygenFromSeed(rng.bytes(3 * p.n));
        store.addKey(id, kp);
        ByteVec m = rng.bytes(32);
        vpool.emplace_back(m, scheme.sign(m, kp.sk));
    }

    ServiceConfig cfg;
    cfg.workers = 2;
    cfg.shards = 2;
    cfg.verifyWorkers = 2;
    cfg.verifyShards = 2;
    cfg.telemetry.sampleEvery = 16;
    SignService sign_svc(store, cfg);
    VerifyService verify_svc(store, cfg, sign_svc.contextCache(),
                             sign_svc.statsRegistry(),
                             sign_svc.admission());

    telemetry::MetricsReporter reporter(
        out, std::chrono::milliseconds(period_ms),
        [&]() -> std::string {
            return StatsRegistry::exportJson(
                sign_svc.stats().mergedWith(verify_svc.stats()));
        });

    // Closed-loop mixed traffic until the deadline: each producer
    // keeps one request in flight, alternating planes.
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(seconds));
    std::vector<std::thread> producers;
    for (unsigned t = 0; t < 2; ++t) {
        producers.emplace_back([&, t] {
            Rng prng(0xfeed + t);
            unsigned i = 0;
            while (std::chrono::steady_clock::now() < deadline) {
                const unsigned tenant = (t + i) % tenants;
                const std::string id =
                    std::string("tenant-").append(
                        std::to_string(tenant));
                if (i++ % 2 == 0)
                    sign_svc.submitSign(id, prng.bytes(32)).get();
                else
                    verify_svc
                        .submitVerify(id, vpool[tenant].first,
                                      vpool[tenant].second)
                        .get();
            }
        });
    }
    for (auto &th : producers)
        th.join();
    sign_svc.drain();
    verify_svc.drain();
    reporter.stop();

    const ServiceStats stats =
        sign_svc.stats().mergedWith(verify_svc.stats());
    std::cout << "soak: " << stats.signsCompleted << " signs, "
              << stats.verifies << " verifies in " << seconds
              << " s; " << reporter.linesWritten()
              << " snapshot lines -> " << out << "\n";

    // Per-stage latency summary straight from the merged snapshot.
    for (const auto &[key, snap] : stats.stages) {
        if (key.find("group_size") != std::string::npos ||
            key.find("lane_fill_pct") != std::string::npos)
            continue;
        std::cout << "  " << key << ": n=" << snap.count
                  << " p50=" << snap.percentile(0.50) / 1e6
                  << "ms p99=" << snap.percentile(0.99) / 1e6
                  << "ms\n";
    }

    // A few sampled spans: complete reconstructed timelines.
    const auto &tel = sign_svc.statsRegistry()->telemetry();
    auto spans = tel.recorder().dump();
    std::cout << "sampled spans: " << spans.size() << " (1 in "
              << cfg.telemetry.sampleEvery << ")\n";
    for (size_t i = 0; i < spans.size() && i < 3; ++i) {
        const auto &s = spans[i];
        std::cout << "  span #" << s.index << " plane="
                  << telemetry::planeName(s.plane) << " tenant="
                  << s.tenant << " e2e="
                  << (s.ts[6] - s.ts[0]) / 1e6 << "ms\n";
    }

    // Validate the Prometheus exposition with the built-in checker.
    const std::string prom = StatsRegistry::exportPrometheus(stats);
    const auto check = telemetry::promCheck(prom);
    std::cout << "prometheus exposition: " << check.samples
              << " samples, " << check.typeDecls << " TYPE decls, "
              << (check.ok ? "format OK" : "FORMAT ERRORS") << "\n";
    for (const auto &e : check.errors)
        std::cerr << "  prom_check: " << e << "\n";

    bool ok = check.ok;
    if (telemetry::compiledIn() && stats.stages.empty()) {
        std::cerr << "soak: no stage histograms recorded\n";
        ok = false;
    }
    if (reporter.linesWritten() < 2) {
        std::cerr << "soak: expected >= 2 snapshot lines, got "
                  << reporter.linesWritten() << "\n";
        ok = false;
    }
    if (stats.signsCompleted == 0 || stats.verifies == 0) {
        std::cerr << "soak: workload did not complete\n";
        ok = false;
    }
    return ok ? 0 : 1;
}
