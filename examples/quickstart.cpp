/**
 * @file
 * Quickstart: generate a SPHINCS+-128f keypair, sign a message with
 * the HERO-Sign engine on a simulated RTX 4090, cross-check against
 * the scalar reference, and verify.
 *
 *   $ ./quickstart [message]
 */

#include <chrono>
#include <iostream>
#include <string>

#include "common/hex.hh"
#include "common/random.hh"
#include "core/engine.hh"
#include "sphincs/sphincs.hh"

using namespace herosign;
using core::EngineConfig;
using core::SignEngine;
using sphincs::Params;
using sphincs::SphincsPlus;

int
main(int argc, char **argv)
{
    const std::string text =
        argc > 1 ? argv[1] : "hello, post-quantum world";
    ByteVec msg(text.begin(), text.end());

    const Params &params = Params::sphincs128f();
    std::cout << "Parameter set: " << params.name << "\n"
              << "  signature bytes: " << params.sigBytes() << "\n"
              << "  public key bytes: " << params.pkBytes() << "\n";

    // 1. Key generation (CPU reference; keys are shared objects).
    SphincsPlus scheme(params);
    Rng rng = Rng::fromOs();
    auto t0 = std::chrono::steady_clock::now();
    auto kp = scheme.keygen(rng);
    auto t1 = std::chrono::steady_clock::now();
    std::cout << "keygen: "
              << std::chrono::duration<double, std::milli>(t1 - t0)
                     .count()
              << " ms\n";

    // 2. Sign through the simulated GPU engine.
    SignEngine engine(params, gpu::DeviceProps::rtx4090(),
                      EngineConfig::hero());
    t0 = std::chrono::steady_clock::now();
    auto outcome = engine.sign(msg, kp.sk);
    t1 = std::chrono::steady_clock::now();
    std::cout << "HERO-Sign (functional simulation): "
              << std::chrono::duration<double, std::milli>(t1 - t0)
                     .count()
              << " ms host time\n";

    // 3. Cross-check against the scalar reference.
    ByteVec ref = scheme.sign(msg, kp.sk);
    std::cout << "matches scalar reference: "
              << (outcome.signature == ref ? "yes" : "NO") << "\n";

    // 4. Verify.
    bool ok = scheme.verify(msg, outcome.signature, kp.pk);
    std::cout << "verifies: " << (ok ? "yes" : "NO") << "\n";

    // 5. Simulated device throughput for a batch.
    auto batch = engine.signBatchTiming(1024);
    std::cout << "simulated RTX 4090 batch throughput: "
              << batch.kops << " KOPS (1024 messages in "
              << batch.makespanUs / 1000.0 << " ms)\n";

    std::cout << "signature head: "
              << hexEncode(ByteSpan(outcome.signature.data(), 16))
              << "...\n";
    return ok && outcome.signature == ref ? 0 : 1;
}
