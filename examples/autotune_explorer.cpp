/**
 * @file
 * Measurement-driven autotuner for the CPU serving stack: search the
 * knob space (workers/shards/coalescing on both serving planes plus
 * the warm-context cache capacity) with short measured trials, then
 * persist the winning configuration as a per-host profile that
 * ServiceConfig::fromProfile() / BatchSignerConfig::fromProfile()
 * consume as the recommended construction path.
 *
 *   $ ./autotune_explorer --budget 60s --set 128f --out profile.json
 *
 * Flags:
 *   --budget D     wall-time budget, e.g. 60s / 500ms / 30 (seconds)
 *   --set NAME     parameter set (default 128f)
 *   --mini         tiny non-standard set for smoke tests (seconds)
 *   --tenants T    distinct keys driving the fabric (default 4)
 *   --trials N     measured candidates; overrides the budget sizing
 *   --trial-ms M   milliseconds per trial (default 250)
 *   --median K     probes per candidate, median scored (default 3)
 *   --seed S       search seed (same seed => same trajectory)
 *   --out PATH     write the winning profile as JSON
 *   --check PATH   load+validate a profile against this host and exit
 *   --csv / --json from the shared bench options
 *
 * The run prints the search trajectory, the tuned-vs-default
 * comparison (interleaved default/tuned trials, median of 3) and the
 * persisted profile path. The comparison table's ops/s row pair is
 * what the BENCH_autotune snapshot gates on.
 */

#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/table.hh"
#include "tune/knob_space.hh"
#include "tune/prior.hh"
#include "tune/profile.hh"
#include "tune/search.hh"
#include "tune/trial_runner.hh"

using namespace herosign;
using namespace herosign::bench;
using sphincs::Params;

namespace
{

/** Parse "60s" / "500ms" / "30" (seconds) into seconds. */
double
parseBudget(const std::string &s)
{
    size_t end = 0;
    const double v = std::stod(s, &end);
    const std::string unit = s.substr(end);
    if (unit == "ms")
        return v / 1000.0;
    if (unit.empty() || unit == "s")
        return v;
    throw std::invalid_argument("unknown budget unit '" + unit + "'");
}

/**
 * A deliberately tiny parameter set for smoke testing the whole
 * search loop in seconds (same shape the tier-1 batch tests use);
 * not a standard SPHINCS+ set.
 */
Params
miniParams()
{
    Params p;
    p.name = "mini";
    p.n = 16;
    p.fullHeight = 6;
    p.layers = 3;
    p.forsHeight = 4;
    p.forsTrees = 8;
    p.wotsW = 16;
    p.validate();
    return p;
}

/** The median-by-ops/s measurement of @p probes. */
tune::TrialMeasurement
medianTrial(std::vector<tune::TrialMeasurement> &probes)
{
    std::sort(probes.begin(), probes.end(),
              [](const tune::TrialMeasurement &a,
                 const tune::TrialMeasurement &b) {
                  return a.opsPerSec < b.opsPerSec;
              });
    return probes[probes.size() / 2];
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt = Options::parse(argc, argv);
    double budget_s = 30.0;
    std::string set_name = "128f";
    bool mini = false;
    unsigned tenants = 4;
    unsigned trials = 0;
    unsigned trial_ms = 250;
    unsigned median_of = 3;
    uint64_t seed = 1;
    std::string out_path;
    std::string check_path;
    try {
        for (int i = 1; i < argc; ++i) {
            const std::string a = argv[i];
            const bool has_val = i + 1 < argc;
            if (a == "--budget" && has_val)
                budget_s = parseBudget(argv[++i]);
            else if (a == "--set" && has_val)
                set_name = argv[++i];
            else if (a == "--mini")
                mini = true;
            else if (a == "--tenants" && has_val)
                tenants = std::max(1, std::stoi(argv[++i]));
            else if (a == "--trials" && has_val)
                trials = std::stoul(argv[++i]);
            else if (a == "--trial-ms" && has_val)
                trial_ms = std::max(10, std::stoi(argv[++i]));
            else if (a == "--median" && has_val)
                median_of = std::max(1, std::stoi(argv[++i]));
            else if (a == "--seed" && has_val)
                seed = std::stoull(argv[++i]);
            else if (a == "--out" && has_val)
                out_path = argv[++i];
            else if (a == "--check" && has_val)
                check_path = argv[++i];
            else if (a == "--help" || a == "-h") {
                std::cout
                    << "usage: autotune_explorer [options]\n"
                       "  --budget <N[s|ms]>  search budget "
                       "(default 30s)\n"
                       "  --set <name>        parameter set "
                       "(default 128f)\n"
                       "  --mini              tiny test parameters\n"
                       "  --tenants <N>       workload tenants "
                       "(default 4)\n"
                       "  --trials <N>        fixed trial count "
                       "(overrides budget)\n"
                       "  --trial-ms <N>      per-probe duration "
                       "(default 250)\n"
                       "  --median <K>        probes per config "
                       "(default 3)\n"
                       "  --seed <N>          search seed "
                       "(default 1)\n"
                       "  --out <path>        persist the tuned "
                       "profile as JSON\n"
                       "  --check <path>      validate an existing "
                       "profile, no search\n"
                       "  --csv / --json <p>  table emission "
                       "(shared bench flags)\n";
                return 0;
            }
        }
    } catch (const std::exception &e) {
        std::cerr << "bad flag value: " << e.what() << "\n";
        return 2;
    }

    const Params p = mini ? miniParams() : Params::byName(set_name);
    const auto fp = tune::HostFingerprint::current(p.name);

    // --check: validate an existing profile against this host.
    if (!check_path.empty()) {
        try {
            const tune::Profile prof =
                tune::loadProfileMatching(check_path, fp);
            std::cout << "profile " << check_path << " (hash "
                      << prof.hash() << ") matches this host:\n"
                      << "  host    " << prof.fingerprint.cpuModel
                      << ", " << prof.fingerprint.cores << " cores, "
                      << prof.fingerprint.dispatch << ", "
                      << prof.fingerprint.paramSet << "\n"
                      << "  config  " << prof.config.label() << "\n"
                      << "  tuned   " << fmtF(prof.tunedOpsPerSec, 1)
                      << " ops/s vs baseline "
                      << fmtF(prof.baselineOpsPerSec, 1) << " ("
                      << prof.trials << " trials, seed " << prof.seed
                      << ")\n";
            return 0;
        } catch (const tune::ProfileError &e) {
            std::cerr << "profile rejected: " << e.what() << "\n";
            return 1;
        }
    }

    const tune::KnobSpace space = tune::KnobSpace::standard();
    std::cout << "== autotune: " << p.name << " on " << fp.cpuModel
              << " (" << fp.cores << " cores, " << fp.dispatch
              << ") ==\n"
              << "knob space: " << space.dims() << " knobs, "
              << space.size() << " configurations; budget "
              << fmtF(budget_s, 1) << "s\n";

    tune::FabricWorkload wl;
    wl.tenants = tenants;
    wl.trialSeconds = trial_ms / 1000.0;
    wl.seed = seed;
    tune::FabricTrialRunner runner(p, wl);

    tune::SearchOptions sopts;
    sopts.seed = seed;
    sopts.maxTrials = trials;
    // Reserve ~30% of the budget for the tuned-vs-default comparison
    // pass below; the search plan is sized from the rest.
    sopts.budgetSeconds = budget_s * 0.7;
    sopts.medianOf = median_of;
    sopts.trialSecondsHint = wl.trialSeconds;
    sopts.prior.tenants = tenants;

    const tune::SearchResult res = tune::search(space, runner, sopts);

    // Trajectory headers deliberately avoid the bench_trend gated
    // patterns (ops/s, p99 ms): trajectory rows vary run to run and
    // must stay informational in snapshot diffs.
    TextTable tt({"trial", "config", "probes", "throughput (1/s)",
                  "p99(ms)", "note"});
    for (const auto &r : res.trajectory) {
        std::string note = r.pruned ? "pruned" : "";
        if (r.accepted)
            note += note.empty() ? "accepted" : ", accepted";
        if (r.improvedBest)
            note += note.empty() ? "best" : ", best";
        tt.addRow({std::to_string(r.index), r.config.label(),
                   std::to_string(r.probes), fmtF(r.score, 1),
                   fmtF(r.measurement.p99Ms), note});
    }

    // Tuned vs default: interleaved D/T/D/T probes at a longer trial
    // length, median of 3 each, so drift hits both sides equally.
    // This table's headers ARE the gated ones — the snapshot row pair
    // bench_trend protects.
    tune::FabricWorkload cwl = wl;
    cwl.trialSeconds = std::max(wl.trialSeconds * 2, 0.4);
    tune::FabricTrialRunner cmp(p, cwl);
    const tune::KnobConfig defaults;
    std::vector<tune::TrialMeasurement> dmeas, tmeas;
    for (unsigned k = 0; k < 3; ++k) {
        dmeas.push_back(cmp.measure(defaults));
        tmeas.push_back(cmp.measure(res.bestConfig));
    }
    const auto dmed = medianTrial(dmeas);
    const auto tmed = medianTrial(tmeas);

    TextTable ct({"config", "knobs", "requests", "ops/s", "p50 ms",
                  "p99 ms", "vs default"});
    ct.addRow({"default", defaults.label(),
               std::to_string(dmed.ops), fmtF(dmed.opsPerSec, 1),
               fmtF(dmed.p50Ms), fmtF(dmed.p99Ms), fmtX(1.0)});
    ct.addRow({"tuned", res.bestConfig.label(),
               std::to_string(tmed.ops), fmtF(tmed.opsPerSec, 1),
               fmtF(tmed.p50Ms), fmtF(tmed.p99Ms),
               fmtX(dmed.opsPerSec > 0
                        ? tmed.opsPerSec / dmed.opsPerSec
                        : 1.0)});

    tune::Profile prof;
    prof.fingerprint = fp;
    prof.config = res.bestConfig;
    prof.tunedOpsPerSec = tmed.opsPerSec;
    prof.baselineOpsPerSec = dmed.opsPerSec;
    prof.tunedP99Ms = tmed.p99Ms;
    prof.seed = seed;
    prof.trials = res.measurements;

    // Stamp the snapshot meta with the profile this run produced
    // before any table is emitted to --json.
    tune::setActiveProfileHash(prof.hash());

    emit(opt, "Autotune search trajectory (" + p.name + ")", tt,
         "simulated annealing from the analytic-prior warm start; " +
             std::to_string(res.measurements) + " measured trials of " +
             std::to_string(res.trialsPlanned) + " planned, " +
             std::to_string(sopts.medianOf) + "-probe median, seed " +
             std::to_string(seed));
    emit(opt, "Tuned vs default (mixed sign+verify fabric)", ct,
         "interleaved default/tuned closed-loop trials (" +
             fmtF(cwl.trialSeconds, 2) + "s each, median of 3), " +
             std::to_string(tenants) +
             " tenants; tuned knobs from the search above");

    if (!out_path.empty()) {
        try {
            tune::saveProfile(out_path, prof);
        } catch (const tune::ProfileError &e) {
            std::cerr << "cannot save profile: " << e.what() << "\n";
            return 1;
        }
        std::cout << "profile written to " << out_path << " (hash "
                  << prof.hash()
                  << "); load with ServiceConfig::fromProfile()\n";
    }
    return 0;
}
