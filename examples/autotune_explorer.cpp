/**
 * @file
 * Auto-tuning explorer: runs the Tree Tuning search (Algorithm 1)
 * for every parameter set on every GPU platform, printing the chosen
 * configuration and the near-optimal candidate set — the workflow of
 * paper Fig. 1's tuner box.
 *
 *   $ ./autotune_explorer [set]   (e.g. 128f; default: all)
 */

#include <iostream>
#include <string>

#include "common/table.hh"
#include "core/tuning.hh"

using namespace herosign;
using core::autoTreeTuning;
using core::treeTuningSearch;
using core::TuningInputs;
using sphincs::Params;

int
main(int argc, char **argv)
{
    std::vector<Params> sets;
    if (argc > 1)
        sets.push_back(Params::byName(argv[1]));
    else
        sets = Params::all();

    for (const Params &p : sets) {
        std::cout << "=== " << p.name << " (k=" << p.forsTrees
                  << ", t=" << p.forsLeaves() << ", n=" << p.n
                  << ") ===\n";
        TextTable t({"GPU", "Smem budget KB", "T_set", "Ntree", "F",
                     "U_T", "U_S", "sync", "relax"});
        for (const auto &dev : gpu::DeviceProps::allPlatforms()) {
            auto best = autoTreeTuning(p, dev);
            const size_t budget =
                std::min(dev.staticSmemPerBlock,
                         dev.maxDynamicSmemPerBlock);
            t.addRow({dev.name, std::to_string(budget / 1024),
                      std::to_string(best.threadsPerSet),
                      std::to_string(best.treesPerSet),
                      std::to_string(best.fusedSets),
                      fmtF(best.threadUtil, 3), fmtF(best.smemUtil, 3),
                      fmtF(best.syncPoints, 1),
                      best.relax ? "yes" : "no"});
        }
        std::cout << t.render() << "\n";

        // Show the whole candidate set on the RTX 4090 for insight.
        TuningInputs in;
        in.forsTrees = p.forsTrees;
        in.forsHeight = p.forsHeight;
        in.n = p.n;
        in.smemPerBlock = 48 * 1024;
        const size_t tree_bytes =
            static_cast<size_t>(p.forsLeaves()) * p.n;
        in.relax = tree_bytes >= 16 * 1024;
        auto cands = treeTuningSearch(in);
        std::cout << "RTX 4090 candidate set (" << cands.size()
                  << " configurations):\n";
        TextTable c({"T_set", "Ntree", "F", "U_T", "U_S", "sync"});
        for (const auto &x : cands) {
            c.addRow({std::to_string(x.threadsPerSet),
                      std::to_string(x.treesPerSet),
                      std::to_string(x.fusedSets),
                      fmtF(x.threadUtil, 3), fmtF(x.smemUtil, 3),
                      fmtF(x.syncPoints, 1)});
        }
        std::cout << c.render() << "\n";
    }
    return 0;
}
