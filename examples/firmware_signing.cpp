/**
 * @file
 * IoT firmware signing: SPHINCS+-256f (highest security level) signs
 * a firmware image; the device side verifies and detects tampering —
 * the long-lived-signature use case hash-based schemes target.
 *
 *   $ ./firmware_signing [firmware_kib]
 */

#include <chrono>
#include <iostream>
#include <string>

#include "common/hex.hh"
#include "common/random.hh"
#include "core/engine.hh"
#include "hash/sha256.hh"
#include "sphincs/sphincs.hh"

using namespace herosign;
using core::EngineConfig;
using core::SignEngine;
using sphincs::Params;
using sphincs::SphincsPlus;

int
main(int argc, char **argv)
{
    const size_t kib =
        argc > 1 ? std::stoul(argv[1]) : 256; // firmware size

    const Params &params = Params::sphincs256f();
    SphincsPlus scheme(params);

    // Vendor side: key generation (done once, offline).
    Rng rng(7);
    auto kp = scheme.keygen(rng);
    std::cout << "vendor key: pk = "
              << hexEncode(ByteSpan(kp.pk.pkRoot.data(), 8))
              << "... (" << params.pkBytes() << " bytes)\n";

    // A synthetic firmware image; in practice the image is hashed
    // and the digest is signed.
    ByteVec firmware = rng.bytes(kib * 1024);
    auto digest = Sha256::digest(firmware);
    ByteVec msg(digest.begin(), digest.end());

    // Sign on the simulated GPU (build-server scenario: thousands of
    // per-device firmware images per release).
    SignEngine engine(params, gpu::DeviceProps::rtx4090(),
                      EngineConfig::hero());
    auto t0 = std::chrono::steady_clock::now();
    auto outcome = engine.sign(msg, kp.sk);
    auto t1 = std::chrono::steady_clock::now();
    std::cout << "signed " << kib << " KiB firmware ("
              << params.sigBytes() << "-byte signature, "
              << std::chrono::duration<double, std::milli>(t1 - t0)
                     .count()
              << " ms host time)\n";

    // Device side: verify the genuine image.
    auto device_digest = Sha256::digest(firmware);
    ByteVec device_msg(device_digest.begin(), device_digest.end());
    if (!scheme.verify(device_msg, outcome.signature, kp.pk)) {
        std::cerr << "genuine firmware REJECTED\n";
        return 1;
    }
    std::cout << "genuine firmware accepted\n";

    // Tampered image: flip one byte.
    ByteVec tampered = firmware;
    tampered[tampered.size() / 2] ^= 0x01;
    auto bad_digest = Sha256::digest(tampered);
    ByteVec bad_msg(bad_digest.begin(), bad_digest.end());
    if (scheme.verify(bad_msg, outcome.signature, kp.pk)) {
        std::cerr << "tampered firmware ACCEPTED (bug!)\n";
        return 1;
    }
    std::cout << "tampered firmware rejected\n";

    // Release-scale throughput: how fast can the build server sign a
    // fleet's worth of images?
    auto batch = engine.signBatchTiming(1024);
    std::cout << "simulated fleet signing: " << batch.kops
              << " KOPS at 256f (1024 images in "
              << batch.makespanUs / 1000.0 << " ms)\n";
    return 0;
}
