/**
 * @file
 * Search: the annealing walk is a pure function of (seed,
 * measurements) — replaying a recorded trial log reproduces the same
 * trajectory and the same chosen config — the baseline is always
 * trial 0, pruning spends one probe on hopeless candidates, the score
 * cache never re-measures a point, and the plan is sized from the
 * budget without consulting a clock.
 */

#include <cmath>
#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "tune/search.hh"

using namespace herosign;
using tune::KnobConfig;
using tune::KnobSpace;
using tune::SearchOptions;
using tune::SearchResult;
using tune::TrialMeasurement;

namespace
{

/**
 * Deterministic synthetic oracle: a smooth peak plus a per-call
 * wobble, so measurements depend on call order (like a real noisy
 * host) while staying exactly reproducible.
 */
struct FakeRunner : tune::TrialRunner
{
    std::vector<KnobConfig> log; ///< every config measured, in order
    unsigned calls = 0;

    static double
    landscape(const KnobConfig &c)
    {
        double s = 1000.0;
        s -= 60.0 * std::abs(static_cast<int>(c.signWorkers) - 2);
        s -= 40.0 * std::abs(static_cast<int>(c.verifyWorkers) - 1);
        s -= 2.0 * std::abs(static_cast<int>(c.signCoalesce) - 16);
        s -= 1.0 * std::abs(static_cast<int>(c.verifyCoalesce) - 64);
        s -= 5.0 * std::abs(static_cast<int>(c.signShards) -
                            static_cast<int>(c.signWorkers));
        s -= 0.5 * std::abs(static_cast<int>(c.cacheCapacity) - 16);
        return s;
    }

    TrialMeasurement
    measure(const KnobConfig &cfg) override
    {
        log.push_back(cfg);
        TrialMeasurement m;
        m.opsPerSec = landscape(cfg) + 0.25 * (calls % 5);
        m.p50Ms = 1.0;
        m.p99Ms = 2.0;
        m.ops = 100;
        m.wallMs = 10.0;
        ++calls;
        return m;
    }
};

/**
 * Serves a previously recorded trial log verbatim, failing the test
 * if the search ever requests a different config than the recording
 * — the "same measurements" half of the determinism contract.
 */
struct ReplayRunner : tune::TrialRunner
{
    const std::vector<KnobConfig> &configs;
    const std::vector<TrialMeasurement> &results;
    size_t next = 0;

    ReplayRunner(const std::vector<KnobConfig> &c,
                 const std::vector<TrialMeasurement> &r)
        : configs(c), results(r)
    {
    }

    TrialMeasurement
    measure(const KnobConfig &cfg) override
    {
        EXPECT_LT(next, configs.size())
            << "search requested more trials than recorded";
        if (next < configs.size()) {
            EXPECT_EQ(cfg, configs[next])
                << "trial " << next
                << " diverged from the recorded log";
        }
        return results[next < results.size() ? next++ : 0];
    }
};

SearchOptions
fixedOptions(uint64_t seed = 1234)
{
    SearchOptions o;
    o.seed = seed;
    o.maxTrials = 24;
    o.medianOf = 3;
    return o;
}

} // namespace

TEST(SearchTest, SameSeedSameMeasurementsSameChosenConfig)
{
    const KnobSpace space = KnobSpace::standard(4, 16);
    FakeRunner r1, r2;
    const SearchResult a = tune::search(space, r1, fixedOptions());
    const SearchResult b = tune::search(space, r2, fixedOptions());

    EXPECT_EQ(a.bestConfig, b.bestConfig);
    EXPECT_EQ(a.bestScore, b.bestScore);
    EXPECT_EQ(a.measurements, b.measurements);
    ASSERT_EQ(a.trajectory.size(), b.trajectory.size());
    for (size_t i = 0; i < a.trajectory.size(); ++i) {
        EXPECT_EQ(a.trajectory[i].config, b.trajectory[i].config);
        EXPECT_EQ(a.trajectory[i].score, b.trajectory[i].score);
        EXPECT_EQ(a.trajectory[i].probes, b.trajectory[i].probes);
        EXPECT_EQ(a.trajectory[i].accepted, b.trajectory[i].accepted);
    }
    // The full measurement sequence replays too, not just the result.
    EXPECT_EQ(r1.log, r2.log);
}

TEST(SearchTest, ReplayingARecordedTrialLogReproducesTheResult)
{
    const KnobSpace space = KnobSpace::standard(4, 16);

    // Record a live run: every measured config and its measurement.
    FakeRunner live;
    std::vector<TrialMeasurement> recorded;
    struct Recorder : tune::TrialRunner
    {
        FakeRunner &inner;
        std::vector<TrialMeasurement> &out;
        Recorder(FakeRunner &i, std::vector<TrialMeasurement> &o)
            : inner(i), out(o)
        {
        }
        TrialMeasurement
        measure(const KnobConfig &cfg) override
        {
            out.push_back(inner.measure(cfg));
            return out.back();
        }
    } recorder(live, recorded);
    const SearchResult first =
        tune::search(space, recorder, fixedOptions(77));

    // Replay the log through a fresh search with the same seed: the
    // request sequence must match the recording and the chosen
    // config must be identical.
    ReplayRunner replay(live.log, recorded);
    const SearchResult second =
        tune::search(space, replay, fixedOptions(77));
    EXPECT_EQ(second.bestConfig, first.bestConfig);
    EXPECT_EQ(second.bestScore, first.bestScore);
    EXPECT_EQ(second.trajectory.size(), first.trajectory.size());
    EXPECT_EQ(replay.next, live.log.size())
        << "replay consumed a different number of trials";
}

TEST(SearchTest, TrialZeroIsTheBaselineAndBestNeverFallsBelowIt)
{
    const KnobSpace space = KnobSpace::standard(4, 16);
    FakeRunner r;
    const SearchResult res = tune::search(space, r, fixedOptions());

    ASSERT_FALSE(res.trajectory.empty());
    EXPECT_EQ(res.trajectory[0].config,
              space.configAt(space.defaultPoint()));
    EXPECT_GE(res.bestScore, res.trajectory[0].score);
    for (const auto &t : res.trajectory)
        EXPECT_GE(res.bestScore, t.score);
    // On this smooth landscape the walk must find an improvement
    // over the 4+2-worker baseline.
    EXPECT_GT(res.bestScore, res.trajectory[0].score);
}

TEST(SearchTest, BudgetSizesThePlanWithoutAClock)
{
    const KnobSpace space = KnobSpace::standard(4, 16);
    FakeRunner r;
    SearchOptions o;
    o.seed = 5;
    o.maxTrials = 0; // derive from the budget
    o.budgetSeconds = 30.0;
    o.trialSecondsHint = 0.5;
    o.medianOf = 3;
    const SearchResult res = tune::search(space, r, o);
    EXPECT_EQ(res.trialsPlanned, 20u); // 30 / (0.5 * 3)
    EXPECT_LE(res.trajectory.size(), res.trialsPlanned);
    EXPECT_GE(res.trajectory.size(), 2u);
}

TEST(SearchTest, PruningSpendsOneProbeOnHopelessCandidates)
{
    const KnobSpace space = KnobSpace::standard(4, 16);
    // A cliff landscape: the baseline region scores 1000, everything
    // else 100 — every move off the plateau should be pruned after
    // its first probe.
    struct CliffRunner : tune::TrialRunner
    {
        unsigned calls = 0;
        TrialMeasurement
        measure(const KnobConfig &cfg) override
        {
            ++calls;
            TrialMeasurement m;
            const KnobConfig base;
            m.opsPerSec =
                (cfg.signWorkers == base.signWorkers &&
                 cfg.verifyWorkers == base.verifyWorkers)
                    ? 1000.0
                    : 100.0;
            m.ops = 1;
            return m;
        }
    } r;
    const SearchResult res = tune::search(space, r, fixedOptions());

    unsigned pruned = 0;
    for (const auto &t : res.trajectory) {
        if (t.pruned) {
            ++pruned;
            EXPECT_EQ(t.probes, 1u);
        }
    }
    EXPECT_GT(pruned, 0u);
    // The chosen best stays on the plateau.
    EXPECT_EQ(res.bestScore, 1000.0);
}

TEST(SearchTest, ScoreCacheNeverRemeasuresAPoint)
{
    const KnobSpace space = KnobSpace::standard(4, 16);
    FakeRunner r;
    const SearchResult res = tune::search(space, r, fixedOptions());

    // Every runner call is accounted to exactly one trajectory
    // record, and no config is evaluated twice.
    unsigned probes = 0;
    for (const auto &t : res.trajectory)
        probes += t.probes;
    EXPECT_EQ(probes, r.calls);
    EXPECT_EQ(res.measurements, r.calls);
    for (size_t i = 0; i < res.trajectory.size(); ++i)
        for (size_t j = i + 1; j < res.trajectory.size(); ++j)
            EXPECT_FALSE(res.trajectory[i].config ==
                         res.trajectory[j].config)
                << "config measured twice: "
                << res.trajectory[i].config.label();
}
