/**
 * @file
 * Profile persistence: JSON round-trips exactly, every malformed or
 * stale document is rejected with a typed ProfileError, and the
 * fromProfile() construction path is indistinguishable from setting
 * the same knobs directly — including out-of-range values, which
 * clamp identically on both paths. Explicit user overrides always
 * beat profile values.
 */

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "../batch/batch_test_util.hh"
#include "batch/batch_signer.hh"
#include "service/key_store.hh"
#include "service/sign_service.hh"
#include "sphincs/sphincs.hh"
#include "tune/profile.hh"

using namespace herosign;
using batchtest::miniParams;
using tune::BatchKnobOverrides;
using tune::HostFingerprint;
using tune::KnobConfig;
using tune::Profile;
using tune::ProfileError;
using tune::ServiceKnobOverrides;

namespace
{

Profile
sampleProfile()
{
    Profile p;
    p.fingerprint = HostFingerprint::current("128f");
    p.config.signWorkers = 2;
    p.config.signShards = 1;
    p.config.signCoalesce = 16;
    p.config.verifyWorkers = 1;
    p.config.verifyShards = 1;
    p.config.verifyCoalesce = 64;
    p.config.cacheCapacity = 4;
    p.tunedOpsPerSec = 1234.5;
    p.baselineOpsPerSec = 1000.25;
    p.tunedP99Ms = 7.5;
    p.seed = 42;
    p.trials = 17;
    return p;
}

/** RAII temp file that disappears with the test. */
struct TempPath
{
    std::string path;
    explicit TempPath(const std::string &name)
        : path(std::string(::testing::TempDir()) + name)
    {
    }
    ~TempPath() { std::remove(path.c_str()); }
};

} // namespace

TEST(HostFingerprintTest, CurrentIsPlausible)
{
    const auto fp = HostFingerprint::current("128f");
    EXPECT_GE(fp.cores, 1u);
    EXPECT_TRUE(fp.dispatch == "avx512" || fp.dispatch == "avx2" ||
                fp.dispatch == "portable")
        << fp.dispatch;
    EXPECT_EQ(fp.paramSet, "128f");
    EXPECT_TRUE(fp.describeMismatch(fp).empty());

    auto other = fp;
    other.paramSet = "256f";
    EXPECT_NE(fp, other);
    EXPECT_NE(fp.describeMismatch(other).find("param"),
              std::string::npos);
}

TEST(ProfileTest, JsonRoundTripsExactly)
{
    const Profile p = sampleProfile();
    const Profile q = Profile::fromJson(p.toJson());
    EXPECT_EQ(q.fingerprint, p.fingerprint);
    EXPECT_EQ(q.config, p.config);
    EXPECT_DOUBLE_EQ(q.tunedOpsPerSec, p.tunedOpsPerSec);
    EXPECT_DOUBLE_EQ(q.baselineOpsPerSec, p.baselineOpsPerSec);
    EXPECT_DOUBLE_EQ(q.tunedP99Ms, p.tunedP99Ms);
    EXPECT_EQ(q.seed, p.seed);
    EXPECT_EQ(q.trials, p.trials);
    // Stable serialization => stable content hash.
    EXPECT_EQ(q.toJson(), p.toJson());
    EXPECT_EQ(q.hash(), p.hash());
}

TEST(ProfileTest, MalformedJsonRejectedWithParseError)
{
    const std::string good = sampleProfile().toJson();
    const std::string bad_docs[] = {
        "",
        "not json at all",
        "{",
        good.substr(0, good.size() / 2), // truncated mid-document
        "[1, 2, 3]",                     // wrong top-level shape
        "{\"version\": 1}",              // missing required sections
        "{\"version\": 1, \"config\": {}}", // missing fingerprint
        good + "trailing garbage",
    };
    for (const std::string &doc : bad_docs) {
        try {
            (void)Profile::fromJson(doc);
            FAIL() << "accepted malformed profile: "
                   << doc.substr(0, 40);
        } catch (const ProfileError &e) {
            EXPECT_EQ(e.kind(), ProfileError::Kind::Parse)
                << e.what();
        }
    }
}

TEST(ProfileTest, VersionMismatchRejectedAsVersion)
{
    std::string doc = sampleProfile().toJson();
    const auto pos = doc.find("\"version\": 1");
    ASSERT_NE(pos, std::string::npos);
    doc.replace(pos, 12, "\"version\": 9");
    try {
        (void)Profile::fromJson(doc);
        FAIL() << "accepted future-versioned profile";
    } catch (const ProfileError &e) {
        EXPECT_EQ(e.kind(), ProfileError::Kind::Version);
    }
}

TEST(ProfileTest, SaveLoadAndFingerprintGuard)
{
    const Profile p = sampleProfile();
    TempPath tmp("herosign_profile_test.json");
    tune::saveProfile(tmp.path, p);
    const Profile q = tune::loadProfile(tmp.path);
    EXPECT_EQ(q.config, p.config);

    // Matching fingerprint loads; any mismatch is typed Fingerprint.
    EXPECT_EQ(tune::loadProfileMatching(tmp.path, p.fingerprint)
                  .config,
              p.config);
    auto stale = p.fingerprint;
    stale.dispatch = "portable";
    try {
        (void)tune::loadProfileMatching(tmp.path, stale);
        FAIL() << "accepted stale-fingerprint profile";
    } catch (const ProfileError &e) {
        EXPECT_EQ(e.kind(), ProfileError::Kind::Fingerprint);
    }

    // Missing file is a typed Io failure.
    try {
        (void)tune::loadProfile(tmp.path + ".does-not-exist");
        FAIL() << "loaded a missing file";
    } catch (const ProfileError &e) {
        EXPECT_EQ(e.kind(), ProfileError::Kind::Io);
    }
}

TEST(ProfileTest, OutOfRangeKnobsClampIdenticallyToDirectConfig)
{
    // A hostile/corrupt-but-parseable profile: every knob out of
    // range. Loading it through fromProfile() must produce exactly
    // the construction a user setting those values directly gets.
    Profile p = sampleProfile();
    p.config.signWorkers = 0;
    p.config.signShards = 0;
    p.config.signCoalesce = 33; // beyond the 16-lane lockstep bound
    p.config.verifyWorkers = 0;
    p.config.verifyShards = 0;
    p.config.cacheCapacity = 0;

    const auto params = miniParams();
    sphincs::SphincsPlus scheme(params);
    const auto kp = scheme.keygenFromSeed(batchtest::fixedSeed(params));

    // Batch plane: direct vs profile-loaded BatchSigner.
    batch::BatchSignerConfig direct;
    direct.workers = 0;
    direct.shards = 0;
    direct.laneGroup = 33;
    batch::BatchSigner a(params, kp.sk, direct);
    batch::BatchSigner b(params, kp.sk,
                         batch::BatchSignerConfig::fromProfile(p));
    EXPECT_EQ(a.workers(), b.workers());
    EXPECT_EQ(a.shards(), b.shards());
    EXPECT_EQ(a.laneGroup(), b.laneGroup());
    EXPECT_EQ(b.workers(), 1u);
    EXPECT_EQ(b.laneGroup(), 16u);

    // Service plane: direct vs profile-loaded SignService. The
    // profile path caps the sign window at the 16-lane lockstep
    // bound (the largest group the scheduler signs in one pass), so
    // the direct equivalent of an over-wide profile value is 16.
    service::KeyStore store;
    store.addKey("t", kp);
    service::ServiceConfig sdirect;
    sdirect.workers = 0;
    sdirect.shards = 0;
    sdirect.signCoalesce = 16;
    sdirect.verifyWorkers = 0;
    sdirect.verifyShards = 0;
    sdirect.contextCacheCapacity = 0;
    service::SignService sa(store, sdirect);
    service::SignService sb(store,
                            service::ServiceConfig::fromProfile(p));
    EXPECT_EQ(sa.workers(), sb.workers());
    EXPECT_EQ(sa.coalesceWindow(), sb.coalesceWindow());
    EXPECT_EQ(sb.workers(), 1u);
}

TEST(ProfileTest, UserOverridesAlwaysWin)
{
    const Profile p = sampleProfile();

    ServiceKnobOverrides su;
    su.workers = 7;
    su.contextCacheCapacity = 99;
    const auto scfg = service::ServiceConfig::fromProfile(p, su);
    EXPECT_EQ(scfg.workers, 7u);
    EXPECT_EQ(scfg.contextCacheCapacity, 99u);
    // Un-overridden knobs still come from the profile.
    EXPECT_EQ(scfg.shards, p.config.signShards);
    EXPECT_EQ(scfg.verifyCoalesce, p.config.verifyCoalesce);

    BatchKnobOverrides bu;
    bu.laneGroup = 1;
    const auto bcfg = batch::BatchSignerConfig::fromProfile(p, bu);
    EXPECT_EQ(bcfg.laneGroup, 1u);
    EXPECT_EQ(bcfg.workers, p.config.signWorkers);
}

TEST(ProfileTest, ActiveProfileHashIsProcessWide)
{
    tune::setActiveProfileHash("");
    EXPECT_EQ(tune::activeProfileHash(), "");
    tune::setActiveProfileHash("abc123");
    EXPECT_EQ(tune::activeProfileHash(), "abc123");
    tune::setActiveProfileHash("");
}
