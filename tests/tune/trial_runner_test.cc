/**
 * @file
 * FabricTrialRunner: a short bounded trial against the real mixed
 * sign+verify fabric yields sane measurements (positive throughput,
 * ordered percentiles, wall time at least the budget), degenerate
 * workloads are clamped to something runnable, and back-to-back
 * trials on the same runner don't interfere.
 */

#include <gtest/gtest.h>

#include "../batch/batch_test_util.hh"
#include "tune/trial_runner.hh"

using namespace herosign;
using batchtest::miniParams;
using tune::FabricTrialRunner;
using tune::FabricWorkload;
using tune::KnobConfig;
using tune::TrialMeasurement;

namespace
{

FabricWorkload
tinyWorkload()
{
    FabricWorkload w;
    w.tenants = 2;
    w.producers = 2;
    w.trialSeconds = 0.05;
    w.seed = 0x7e57;
    return w;
}

} // namespace

TEST(FabricTrialRunnerTest, MeasuresTheMixedFabric)
{
    FabricTrialRunner runner(miniParams(), tinyWorkload());
    KnobConfig cfg;
    cfg.signWorkers = 1;
    cfg.signShards = 1;
    cfg.verifyWorkers = 1;
    cfg.verifyShards = 1;
    cfg.cacheCapacity = 4;
    const TrialMeasurement m = runner.measure(cfg);

    EXPECT_GT(m.ops, 0u);
    EXPECT_GT(m.opsPerSec, 0.0);
    // The producers run for at least the trial budget.
    EXPECT_GE(m.wallMs, 0.05 * 1000.0 * 0.9);
    // Percentiles are recorded in milliseconds and ordered.
    EXPECT_GT(m.p50Ms, 0.0);
    EXPECT_GE(m.p99Ms, m.p50Ms);
    // Throughput is consistent with the op count and wall time
    // (producers overlap, so ops/s can exceed ops/wall of one lane —
    // but never the aggregate by more than the producer count).
    EXPECT_LE(m.opsPerSec,
              static_cast<double>(m.ops) / (m.wallMs / 1e3) * 1.01);
}

TEST(FabricTrialRunnerTest, DegenerateWorkloadIsClamped)
{
    FabricWorkload w;
    w.tenants = 0;      // -> 1
    w.producers = 0;    // -> 1
    w.trialSeconds = 0; // -> minimum runnable budget
    FabricTrialRunner runner(miniParams(), w);
    const TrialMeasurement m = runner.measure(KnobConfig{});
    EXPECT_GT(m.ops, 0u);
    EXPECT_GT(m.opsPerSec, 0.0);
}

TEST(FabricTrialRunnerTest, BackToBackTrialsAreIndependent)
{
    FabricTrialRunner runner(miniParams(), tinyWorkload());
    KnobConfig a; // defaults
    KnobConfig b;
    b.signWorkers = 1;
    b.signShards = 1;
    b.verifyWorkers = 1;
    b.verifyShards = 1;
    const TrialMeasurement ma = runner.measure(a);
    const TrialMeasurement mb = runner.measure(b);
    EXPECT_GT(ma.ops, 0u);
    EXPECT_GT(mb.ops, 0u);
    // Each trial builds a fresh service pair; the second one is not
    // poisoned by the first having drained and closed.
    const TrialMeasurement ma2 = runner.measure(a);
    EXPECT_GT(ma2.ops, 0u);
}
