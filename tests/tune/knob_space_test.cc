/**
 * @file
 * KnobSpace: the default config IS the hand-set baseline, the
 * standard space is well-formed and hardware-derived, point/config
 * mappings round-trip, the annealing move is valid and replayable,
 * and clamp() mirrors the consuming constructors exactly.
 */

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "batch/lane_scheduler.hh"
#include "common/random.hh"
#include "tune/knob_space.hh"

using namespace herosign;
using tune::Knob;
using tune::KnobConfig;
using tune::KnobSpace;

TEST(KnobConfig, DefaultsEqualHandSetBaseline)
{
    const KnobConfig k;
    const service::ServiceConfig s = k.toServiceConfig();
    const service::ServiceConfig hand;
    EXPECT_EQ(s.workers, hand.workers);
    EXPECT_EQ(s.shards, hand.shards);
    EXPECT_EQ(s.signCoalesce, hand.signCoalesce);
    EXPECT_EQ(s.verifyWorkers, hand.verifyWorkers);
    EXPECT_EQ(s.verifyShards, hand.verifyShards);
    EXPECT_EQ(s.verifyCoalesce, hand.verifyCoalesce);
    EXPECT_EQ(s.contextCacheCapacity, hand.contextCacheCapacity);

    const batch::BatchSignerConfig b = k.toBatchSignerConfig();
    const batch::BatchSignerConfig hand_b;
    EXPECT_EQ(b.workers, hand_b.workers);
    EXPECT_EQ(b.shards, hand_b.shards);
    EXPECT_EQ(b.laneGroup, hand_b.laneGroup);
}

TEST(KnobSpace, StandardSpaceIsWellFormed)
{
    const KnobSpace space = KnobSpace::standard(4, 16);
    ASSERT_EQ(space.dims(), 7u);
    size_t product = 1;
    for (const Knob &k : space.knobs()) {
        ASSERT_FALSE(k.values.empty()) << k.name;
        EXPECT_TRUE(std::is_sorted(k.values.begin(), k.values.end()))
            << k.name;
        EXPECT_EQ(std::set<unsigned>(k.values.begin(),
                                     k.values.end())
                      .size(),
                  k.values.size())
            << k.name << " has duplicate values";
        product *= k.values.size();
    }
    EXPECT_EQ(space.size(), product);

    // The sign coalescing axis never exceeds the lockstep bound.
    const Knob &sign_co = space.knobs()[2];
    EXPECT_EQ(sign_co.name, "sign_coalesce");
    EXPECT_LE(sign_co.values.back(), batch::LaneScheduler::maxGroup);

    // Worker axes reach the mild-oversubscription cap.
    EXPECT_EQ(space.knobs()[0].name, "sign_workers");
    EXPECT_EQ(space.knobs()[0].values.back(), 8u);
    EXPECT_EQ(space.knobs()[0].values.front(), 1u);
}

TEST(KnobSpace, HardwareBoundsScaleTheWorkerAxis)
{
    const KnobSpace big = KnobSpace::standard(32, 8);
    EXPECT_EQ(big.knobs()[0].values.back(), 64u);
    // Degenerate hardware report: still a usable ladder.
    const KnobSpace tiny = KnobSpace::standard(1, 8);
    EXPECT_EQ(tiny.knobs()[0].values.front(), 1u);
    EXPECT_GE(tiny.knobs()[0].values.size(), 2u);
}

TEST(KnobSpace, PointConfigRoundTrip)
{
    const KnobSpace space = KnobSpace::standard(4, 16);
    Rng rng(42);
    for (int i = 0; i < 50; ++i) {
        const KnobSpace::Point pt = space.randomPoint(rng);
        for (size_t d = 0; d < space.dims(); ++d)
            ASSERT_LT(pt[d], space.knobs()[d].values.size());
        // Axis values are unique, so nearest inverts configAt.
        EXPECT_EQ(space.nearestPoint(space.configAt(pt)), pt);
    }
}

TEST(KnobSpace, DefaultPointDenotesTheBaseline)
{
    const KnobSpace space = KnobSpace::standard(4, 16);
    const KnobConfig def = space.configAt(space.defaultPoint());
    // Worker/shard/capacity baselines are on their axes verbatim;
    // the 0 = auto coalescing windows resolve to their effective
    // widths (sign: lane width 16, verify: 4x = 64), so the denoted
    // config behaves exactly like ServiceConfig{}.
    EXPECT_EQ(def.signWorkers, 4u);
    EXPECT_EQ(def.signShards, 4u);
    EXPECT_EQ(def.signCoalesce, 16u);
    EXPECT_EQ(def.verifyWorkers, 2u);
    EXPECT_EQ(def.verifyShards, 2u);
    EXPECT_EQ(def.verifyCoalesce, 64u);
    EXPECT_EQ(def.cacheCapacity, 64u);
}

TEST(KnobSpace, NeighborMovesExactlyOneKnobToAValidSlot)
{
    const KnobSpace space = KnobSpace::standard(4, 16);
    Rng rng(7);
    KnobSpace::Point pt = space.defaultPoint();
    for (int i = 0; i < 200; ++i) {
        const KnobSpace::Point next = space.neighbor(pt, rng);
        size_t changed = 0;
        for (size_t d = 0; d < space.dims(); ++d) {
            ASSERT_LT(next[d], space.knobs()[d].values.size());
            if (next[d] != pt[d])
                ++changed;
        }
        EXPECT_EQ(changed, 1u);
        pt = next;
    }
}

TEST(KnobSpace, NeighborWalkReplaysUnderTheSameSeed)
{
    const KnobSpace space = KnobSpace::standard(4, 16);
    Rng a(99), b(99);
    KnobSpace::Point pa = space.defaultPoint(), pb = pa;
    for (int i = 0; i < 100; ++i) {
        pa = space.neighbor(pa, a);
        pb = space.neighbor(pb, b);
        ASSERT_EQ(pa, pb) << "walks diverged at step " << i;
    }
}

TEST(KnobSpace, ClampMirrorsTheConstructors)
{
    KnobConfig bad;
    bad.signWorkers = 0;
    bad.signShards = 0;
    bad.verifyWorkers = 0;
    bad.verifyShards = 0;
    bad.cacheCapacity = 0;
    bad.signCoalesce = 33; // beyond the lockstep bound
    const KnobConfig c = KnobSpace::clamp(bad);
    EXPECT_EQ(c.signWorkers, 1u);
    EXPECT_EQ(c.signShards, 1u);
    EXPECT_EQ(c.verifyWorkers, 1u);
    EXPECT_EQ(c.verifyShards, 1u);
    EXPECT_EQ(c.cacheCapacity, 1u);
    EXPECT_EQ(c.signCoalesce, batch::LaneScheduler::maxGroup);

    // 0 = auto survives clamping; in-range values pass through.
    KnobConfig ok;
    ok.signCoalesce = 0;
    EXPECT_EQ(KnobSpace::clamp(ok), ok);
}

TEST(KnobConfig, LabelIsCompactAndComplete)
{
    KnobConfig k;
    k.signWorkers = 2;
    k.signShards = 1;
    k.signCoalesce = 16;
    k.verifyWorkers = 3;
    k.verifyShards = 5;
    k.verifyCoalesce = 64;
    k.cacheCapacity = 4;
    EXPECT_EQ(k.label(), "w2/s1/c16 vw3/vs5/vc64 cap4");
}
