/**
 * @file
 * Timeline simulator tests: stream ordering, cross-stream overlap,
 * dependency handling, idle accounting, and the graph-vs-stream
 * launch latency mechanism of Fig. 12.
 */

#include <gtest/gtest.h>

#include "gpusim/scheduler.hh"

using namespace herosign::gpu;

namespace
{

DeviceProps
testDevice()
{
    DeviceProps d = DeviceProps::rtx4090();
    d.kernelLaunchOverheadUs = 4.0;
    d.graphLaunchOverheadUs = 8.0;
    d.graphNodeOverheadUs = 0.05;
    return d;
}

KernelExecDesc
kernel(const std::string &name, double us, double util)
{
    return KernelExecDesc{name, us, util};
}

} // namespace

TEST(DeviceSim, SingleKernelTimeline)
{
    DeviceProps dev = testDevice();
    DeviceSim sim(dev);
    sim.launch(kernel("k", 100, 1.0), 0);
    auto r = sim.run();
    ASSERT_EQ(r.entries.size(), 1u);
    EXPECT_DOUBLE_EQ(r.entries[0].submitUs, 4.0);
    EXPECT_DOUBLE_EQ(r.entries[0].startUs, 4.0);
    EXPECT_DOUBLE_EQ(r.entries[0].endUs, 104.0);
    EXPECT_DOUBLE_EQ(r.makespanUs, 104.0);
    // The pre-start gap counts as idle.
    EXPECT_DOUBLE_EQ(r.idleUs, 4.0);
}

TEST(DeviceSim, StreamOrderingSerializes)
{
    DeviceProps dev = testDevice();
    DeviceSim sim(dev);
    sim.launch(kernel("a", 50, 0.3), 0);
    sim.launch(kernel("b", 50, 0.3), 0);
    auto r = sim.run();
    // Same stream: b starts only after a ends despite low utilization.
    EXPECT_GE(r.entries[1].startUs, r.entries[0].endUs);
}

TEST(DeviceSim, LowUtilizationKernelsOverlapAcrossStreams)
{
    DeviceProps dev = testDevice();
    DeviceSim sim(dev);
    sim.launch(kernel("a", 100, 0.4), 0);
    sim.launch(kernel("b", 100, 0.4), 1);
    auto r = sim.run();
    // Total utilization 0.8 <= 1: full overlap, no slowdown.
    EXPECT_LT(r.makespanUs, 100 + 100); // far less than serial
    EXPECT_NEAR(r.entries[1].endUs, r.entries[1].startUs + 100, 1.0);
}

TEST(DeviceSim, SaturatingKernelsShareThroughput)
{
    DeviceProps dev = testDevice();
    DeviceSim sim(dev);
    sim.launch(kernel("a", 100, 1.0), 0);
    sim.launch(kernel("b", 100, 1.0), 1);
    auto r = sim.run();
    // Two saturating kernels: fluid sharing -> both roughly double.
    EXPECT_GT(r.makespanUs, 190);
    EXPECT_LT(r.makespanUs, 230);
}

TEST(DeviceSim, CrossStreamDependencyHonored)
{
    DeviceProps dev = testDevice();
    DeviceSim sim(dev);
    int a = sim.launch(kernel("fors", 50, 0.5), 0);
    int b = sim.launch(kernel("tree", 80, 0.5), 1);
    sim.launch(kernel("wots", 30, 0.5), 0, {a, b});
    auto r = sim.run();
    EXPECT_GE(r.entries[2].startUs,
              std::max(r.entries[0].endUs, r.entries[1].endUs));
}

TEST(DeviceSim, IdleTimeBetweenDependentKernels)
{
    DeviceProps dev = testDevice();
    dev.kernelLaunchOverheadUs = 10.0;
    DeviceSim sim(dev);
    // Host submits the second kernel only after 2 x 10us of API time;
    // the first kernel (10us long) finishes before the second is
    // submitted -> a visible device gap.
    sim.launch(kernel("a", 5, 1.0), 0);
    sim.launch(kernel("b", 5, 1.0), 0);
    auto r = sim.run();
    EXPECT_GT(r.idleUs, 0.0);
}

TEST(DeviceSim, LaunchLatencyIncludesQueueing)
{
    DeviceProps dev = testDevice();
    DeviceSim sim(dev);
    sim.launch(kernel("a", 100, 1.0), 0);
    sim.launch(kernel("b", 100, 1.0), 0); // queued behind a
    auto r = sim.run();
    // b waits ~96us in the stream queue plus its API overhead.
    EXPECT_GT(r.entries[1].launchLatencyUs, 90.0);
    EXPECT_GT(r.launchLatencyUs, r.entries[1].launchLatencyUs);
}

TEST(DeviceSim, GraphNodesPayOnlyDispatchOverhead)
{
    DeviceProps dev = testDevice();

    // Stream version: 3 dependent kernels.
    DeviceSim streams(dev);
    int a = streams.launch(kernel("a", 50, 1.0), 0);
    int b = streams.launch(kernel("b", 50, 1.0), 1);
    streams.launch(kernel("c", 50, 1.0), 0, {a, b});
    auto rs = streams.run();

    // Graph version of the same DAG.
    TaskGraph g;
    int ga = g.addNode(kernel("a", 50, 1.0));
    int gb = g.addNode(kernel("b", 50, 1.0));
    g.addNode(kernel("c", 50, 1.0), {ga, gb});
    DeviceSim graphs(dev);
    graphs.launchGraph(g, 0);
    auto rg = graphs.run();

    // Same execution structure...
    EXPECT_NEAR(rg.entries[2].endUs - rg.entries[0].startUs,
                rs.entries[2].endUs - rs.entries[0].startUs, 20.0);
    // ...but about two orders of magnitude lower launch latency.
    EXPECT_LT(rg.launchLatencyUs, rs.launchLatencyUs / 5.0);
    EXPECT_NEAR(rg.launchLatencyUs,
                dev.graphLaunchOverheadUs + 3 * dev.graphNodeOverheadUs,
                1e-9);
}

TEST(DeviceSim, GraphDagParallelismExploited)
{
    DeviceProps dev = testDevice();
    TaskGraph g;
    int a = g.addNode(kernel("fors", 60, 0.45));
    int b = g.addNode(kernel("tree", 60, 0.45));
    g.addNode(kernel("wots", 20, 0.5), {a, b});
    DeviceSim sim(dev);
    sim.launchGraph(g, 0);
    auto r = sim.run();
    // fors and tree overlap (combined utilization < 1).
    EXPECT_LT(r.entries[1].startUs, r.entries[0].endUs);
    EXPECT_GE(r.entries[2].startUs, r.entries[0].endUs);
}

TEST(DeviceSim, MultipleGraphLaunchesOnStreamsOverlap)
{
    DeviceProps dev = testDevice();
    TaskGraph g;
    int a = g.addNode(kernel("fors", 40, 0.3));
    g.addNode(kernel("wots", 20, 0.3), {a});

    DeviceSim sim(dev);
    for (int s = 0; s < 4; ++s)
        sim.launchGraph(g, s);
    auto r = sim.run();
    ASSERT_EQ(r.entries.size(), 8u);
    // Four independent 60us chains at 0.3 utilization overlap well:
    // makespan must be far below 4 x 60.
    EXPECT_LT(r.makespanUs, 150.0);
}

TEST(DeviceSim, GraphOrderedAfterStreamWork)
{
    DeviceProps dev = testDevice();
    DeviceSim sim(dev);
    sim.launch(kernel("pre", 50, 1.0), 0);
    TaskGraph g;
    g.addNode(kernel("g0", 10, 1.0));
    sim.launchGraph(g, 0);
    auto r = sim.run();
    EXPECT_GE(r.entries[1].startUs, r.entries[0].endUs);
}

TEST(DeviceSim, PerKernelBusyAccounting)
{
    DeviceProps dev = testDevice();
    DeviceSim sim(dev);
    sim.launch(kernel("x", 30, 1.0), 0);
    sim.launch(kernel("x", 30, 1.0), 0);
    sim.launch(kernel("y", 10, 1.0), 0);
    auto r = sim.run();
    auto busy = r.perKernelBusyUs();
    EXPECT_NEAR(busy["x"], 60.0, 1e-6);
    EXPECT_NEAR(busy["y"], 10.0, 1e-6);
}

TEST(DeviceSim, RejectsBadDependencyIds)
{
    DeviceProps dev = testDevice();
    DeviceSim sim(dev);
    EXPECT_THROW(sim.launch(kernel("a", 10, 1.0), 0, {5}),
                 std::invalid_argument);
}

TEST(TaskGraph, RejectsForwardEdges)
{
    TaskGraph g;
    EXPECT_THROW(g.addNode(kernel("a", 1, 1), {0}),
                 std::invalid_argument);
    int a = g.addNode(kernel("a", 1, 1));
    EXPECT_NO_THROW(g.addNode(kernel("b", 1, 1), {a}));
    EXPECT_THROW(g.addNode(kernel("c", 1, 1), {7}),
                 std::invalid_argument);
}

TEST(DeviceSim, EmptyRunIsClean)
{
    DeviceProps dev = testDevice();
    DeviceSim sim(dev);
    auto r = sim.run();
    EXPECT_EQ(r.entries.size(), 0u);
    EXPECT_DOUBLE_EQ(r.makespanUs, 0.0);
    EXPECT_DOUBLE_EQ(r.launchLatencyUs, 0.0);
}
