/**
 * @file
 * Compile-cost model tests: the Table XI mechanism (compile-time
 * branching beats runtime branching) and its scaling behaviour.
 */

#include <gtest/gtest.h>

#include "gpusim/compile_model.hh"

using namespace herosign::gpu;

TEST(CompileModel, KernelSizesKnowTableVSelections)
{
    auto k128 = sphincsKernelSizes("SPHINCS+-128f");
    ASSERT_EQ(k128.size(), 3u);
    EXPECT_TRUE(k128[0].selectsPtx);   // FORS: PTX on all sets
    EXPECT_FALSE(k128[1].selectsPtx);  // TREE native on 128f
    EXPECT_FALSE(k128[2].selectsPtx);  // WOTS native on 128f

    auto k256 = sphincsKernelSizes("SPHINCS+-256f");
    EXPECT_TRUE(k256[0].selectsPtx);
    EXPECT_TRUE(k256[1].selectsPtx);   // TREE PTX on 256f
    EXPECT_TRUE(k256[2].selectsPtx);
}

TEST(CompileModel, RejectsUnknownSet)
{
    EXPECT_THROW(sphincsKernelSizes("SPHINCS+-512f"),
                 std::invalid_argument);
}

TEST(CompileModel, PtxBodiesAreSmaller)
{
    for (const auto &k : sphincsKernelSizes("SPHINCS+-192f"))
        EXPECT_LT(k.ptxBodyUnits, k.nativeBodyUnits) << k.name;
}

class CompileModelSets
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(CompileModelSets, CompileTimeBranchingIsFaster)
{
    auto kernels = sphincsKernelSizes(GetParam());
    double baseline =
        compileSeconds(CompileStrategy::BaselineRuntimeBranch, kernels);
    double hero =
        compileSeconds(CompileStrategy::CompileTimeBranch, kernels);
    // Table XI: HERO-Sign compiles 1.07x-1.28x faster; allow a
    // modest band around the paper's ratios.
    EXPECT_GT(baseline / hero, 1.02) << GetParam();
    EXPECT_LT(baseline / hero, 1.55) << GetParam();
}

TEST_P(CompileModelSets, AbsoluteTimesInPaperBallpark)
{
    // Table XI: totals around 14-25 seconds.
    auto kernels = sphincsKernelSizes(GetParam());
    double baseline =
        compileSeconds(CompileStrategy::BaselineRuntimeBranch, kernels);
    double hero =
        compileSeconds(CompileStrategy::CompileTimeBranch, kernels);
    EXPECT_GT(hero, 5.0);
    EXPECT_LT(baseline, 40.0);
}

INSTANTIATE_TEST_SUITE_P(Sets, CompileModelSets,
    ::testing::Values("SPHINCS+-128f", "SPHINCS+-192f",
                      "SPHINCS+-256f"));

TEST(CompileModel, LargerNCompilesSlower)
{
    auto k128 = sphincsKernelSizes("SPHINCS+-128f");
    auto k256 = sphincsKernelSizes("SPHINCS+-256f");
    EXPECT_LT(
        compileSeconds(CompileStrategy::BaselineRuntimeBranch, k128),
        compileSeconds(CompileStrategy::BaselineRuntimeBranch, k256));
}

TEST(CompileModel, InstantiationCostVisibleButSmall)
{
    // With a zero-size optimizer body, compile-time branching should
    // cost slightly more (instantiation overhead) — confirming the
    // paper's claim that the PTX saving, not the template machinery,
    // drives the win.
    std::vector<KernelCodeSize> tiny = {
        {"K", 0.0, 0.0, true},
    };
    double baseline =
        compileSeconds(CompileStrategy::BaselineRuntimeBranch, tiny);
    double hero =
        compileSeconds(CompileStrategy::CompileTimeBranch, tiny);
    EXPECT_GT(hero, baseline);
}
