/**
 * @file
 * Functional executor tests: phase/barrier semantics, shared-memory
 * correctness, cycle accounting, and warp-instruction grouping.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "gpusim/exec.hh"

using namespace herosign::gpu;

namespace
{

const DeviceProps &
dev()
{
    static DeviceProps d = DeviceProps::rtx4090();
    return d;
}

const CostParams &
cp()
{
    static CostParams p;
    return p;
}

/**
 * A toy tree-sum kernel: leaves are (blockIdx + tid), reduced by
 * addition level by level — same phase structure as the Merkle
 * reduction, easy to verify exactly.
 */
class TreeSumKernel : public KernelBody
{
  public:
    explicit TreeSumKernel(unsigned leaves, std::vector<uint32_t> *out)
        : leaves_(leaves), out_(out)
    {
    }

    std::string name() const override { return "TreeSum"; }

    unsigned
    numPhases(unsigned) const override
    {
        unsigned levels = 0;
        for (unsigned v = leaves_; v > 1; v >>= 1)
            ++levels;
        return 1 + levels; // populate + reduce
    }

    void
    run(unsigned phase, BlockContext &blk, unsigned tid) override
    {
        if (phase == 0) {
            if (tid < leaves_) {
                uint32_t v = blk.blockIdx() + tid;
                blk.storeShared(tid, tid * 4,
                                reinterpret_cast<uint8_t *>(&v), 4);
                blk.chargeCycles(tid, 1);
            }
            return;
        }
        const unsigned level = phase - 1;
        const unsigned parents = leaves_ >> (level + 1);
        if (tid >= parents)
            return;
        // Level l values live at stride 2^l (in-place reduction).
        const uint32_t stride = 1u << level;
        uint32_t a, b;
        blk.loadShared(tid, (2 * tid) * stride * 4,
                       reinterpret_cast<uint8_t *>(&a), 4);
        blk.loadShared(tid, (2 * tid + 1) * stride * 4,
                       reinterpret_cast<uint8_t *>(&b), 4);
        uint32_t sum = a + b;
        blk.storeShared(tid, (2 * tid) * stride * 4,
                        reinterpret_cast<uint8_t *>(&sum), 4);
        blk.chargeCycles(tid, 1);
        if (parents == 1 && tid == 0 && out_)
            (*out_)[blk.blockIdx()] = sum;
    }

  private:
    unsigned leaves_;
    std::vector<uint32_t> *out_;
};

/** Kernel charging known per-thread costs for accounting tests. */
class CostKernel : public KernelBody
{
  public:
    std::string name() const override { return "Cost"; }
    unsigned numPhases(unsigned) const override { return 2; }

    void
    run(unsigned phase, BlockContext &blk, unsigned tid) override
    {
        if (phase == 0) {
            blk.chargeHash(tid, 2);
        } else if (tid == 0) {
            blk.chargeHash(tid, 5); // imbalanced second phase
            blk.chargeGlobal(tid, 100);
            blk.chargeConstant(tid, 64);
        }
    }
};

} // namespace

TEST(Exec, TreeSumComputesCorrectSums)
{
    const unsigned leaves = 64;
    std::vector<uint32_t> results(4, 0);
    LaunchSpec spec;
    spec.body = std::make_shared<TreeSumKernel>(leaves, &results);
    spec.gridDim = 4;
    spec.blockDim = 64;
    spec.sharedBytes = leaves * 4;

    executeLaunch(dev(), cp(), spec);

    for (unsigned b = 0; b < 4; ++b) {
        uint32_t expected = 0;
        for (unsigned t = 0; t < leaves; ++t)
            expected += b + t;
        EXPECT_EQ(results[b], expected) << "block " << b;
    }
}

TEST(Exec, PhaseCountAndBarriers)
{
    LaunchSpec spec;
    spec.body = std::make_shared<TreeSumKernel>(16, nullptr);
    spec.gridDim = 1;
    spec.blockDim = 16;
    spec.sharedBytes = 64;

    auto result = executeLaunch(dev(), cp(), spec);
    EXPECT_EQ(result.profile.phases.size(), 5u); // populate + 4 levels
    EXPECT_EQ(result.profile.counters.barriers, 5u);
}

TEST(Exec, ActiveLanesShrinkThroughReduction)
{
    LaunchSpec spec;
    spec.body = std::make_shared<TreeSumKernel>(64, nullptr);
    spec.gridDim = 1;
    spec.blockDim = 64;
    spec.sharedBytes = 256;

    auto result = executeLaunch(dev(), cp(), spec);
    const auto &ph = result.profile.phases;
    ASSERT_EQ(ph.size(), 7u);
    EXPECT_EQ(ph[0].activeLanes, 64u);
    EXPECT_EQ(ph[1].activeLanes, 32u);
    EXPECT_EQ(ph[6].activeLanes, 1u);
}

TEST(Exec, CycleAccountingPerPhase)
{
    LaunchSpec spec;
    spec.body = std::make_shared<CostKernel>();
    spec.gridDim = 1;
    spec.blockDim = 32;
    spec.sharedBytes = 0;
    spec.cyclesPerHash = 100.0;

    auto result = executeLaunch(dev(), cp(), spec);
    ASSERT_EQ(result.profile.phases.size(), 2u);
    // Phase 0: every thread does 2 hashes = 200 cycles.
    EXPECT_DOUBLE_EQ(result.profile.phases[0].maxThreadCycles, 200.0);
    EXPECT_EQ(result.profile.phases[0].activeLanes, 32u);
    // Phase 1: only thread 0, 5 hashes + memory charges.
    EXPECT_EQ(result.profile.phases[1].activeLanes, 1u);
    EXPECT_GT(result.profile.phases[1].maxThreadCycles, 500.0);
    // Counters aggregate across phases.
    EXPECT_EQ(result.profile.counters.hashes, 32u * 2 + 5);
    EXPECT_EQ(result.profile.counters.globalBytes, 100u);
    EXPECT_EQ(result.profile.counters.constantBytes, 64u);
}

TEST(Exec, SharedMemoryBoundsChecked)
{
    class OobKernel : public KernelBody
    {
      public:
        std::string name() const override { return "Oob"; }
        unsigned numPhases(unsigned) const override { return 1; }
        void
        run(unsigned, BlockContext &blk, unsigned tid) override
        {
            uint8_t v = 0;
            blk.storeShared(tid, blk.sharedSize(), &v, 1);
        }
    };
    LaunchSpec spec;
    spec.body = std::make_shared<OobKernel>();
    spec.gridDim = 1;
    spec.blockDim = 1;
    spec.sharedBytes = 16;
    EXPECT_THROW(executeLaunch(dev(), cp(), spec), std::out_of_range);
}

TEST(Exec, WarpInstructionGroupingCountsConflicts)
{
    // A kernel whose 32 threads all load distinct words of bank 0:
    // one load instruction with 31 conflicts.
    class ConflictKernel : public KernelBody
    {
      public:
        std::string name() const override { return "Conflict"; }
        unsigned numPhases(unsigned) const override { return 1; }
        void
        run(unsigned, BlockContext &blk, unsigned tid) override
        {
            uint32_t v;
            blk.loadShared(tid, tid * 128,
                           reinterpret_cast<uint8_t *>(&v), 4);
        }
    };
    LaunchSpec spec;
    spec.body = std::make_shared<ConflictKernel>();
    spec.gridDim = 1;
    spec.blockDim = 32;
    spec.sharedBytes = 32 * 128 + 4;

    auto result = executeLaunch(dev(), cp(), spec);
    EXPECT_EQ(result.profile.counters.sharedLoadInstrs, 1u);
    EXPECT_EQ(result.profile.counters.sharedLoadConflicts, 31u);
    EXPECT_EQ(result.profile.phases[0].bankConflicts, 31u);
    EXPECT_GT(result.profile.phases[0].worstWarpConflictCycles, 0.0);
}

TEST(Exec, ExecuteBlockProfilesRequestedBlock)
{
    std::vector<uint32_t> results(8, 0);
    LaunchSpec spec;
    spec.body = std::make_shared<TreeSumKernel>(16, &results);
    spec.gridDim = 8;
    spec.blockDim = 16;
    spec.sharedBytes = 64;

    auto result = executeBlock(dev(), cp(), spec, 5);
    // Only block 5 ran.
    EXPECT_NE(results[5], 0u);
    EXPECT_EQ(results[0], 0u);
    EXPECT_EQ(result.profile.phases.size(), 5u);
}

TEST(Exec, CriticalPathSumsPhaseMaxima)
{
    LaunchSpec spec;
    spec.body = std::make_shared<CostKernel>();
    spec.gridDim = 1;
    spec.blockDim = 32;
    spec.cyclesPerHash = 100.0;

    auto result = executeLaunch(dev(), cp(), spec);
    const double critical = result.profile.criticalPathCycles(cp());
    const double phase0 = result.profile.phases[0].maxThreadCycles;
    const double phase1 = result.profile.phases[1].maxThreadCycles;
    EXPECT_NEAR(critical,
                phase0 + phase1 + cp().cyclesPerBarrier, 1e-6);
}

TEST(Exec, TotalsAggregateAcrossBlocks)
{
    LaunchSpec spec;
    spec.body = std::make_shared<CostKernel>();
    spec.gridDim = 5;
    spec.blockDim = 32;
    spec.cyclesPerHash = 100.0;

    auto result = executeLaunch(dev(), cp(), spec);
    EXPECT_EQ(result.totals.hashes, 5u * (32 * 2 + 5));
}
