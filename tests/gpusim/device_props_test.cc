/**
 * @file
 * Device preset sanity: Table VII values, derived quantities.
 */

#include <gtest/gtest.h>

#include "gpusim/device_props.hh"

using namespace herosign::gpu;

TEST(DeviceProps, TableSevenClocks)
{
    EXPECT_DOUBLE_EQ(DeviceProps::gtx1070().baseClockMhz, 1506);
    EXPECT_DOUBLE_EQ(DeviceProps::v100().baseClockMhz, 1230);
    EXPECT_DOUBLE_EQ(DeviceProps::rtx2080ti().baseClockMhz, 1350);
    EXPECT_DOUBLE_EQ(DeviceProps::a100().baseClockMhz, 1095);
    EXPECT_DOUBLE_EQ(DeviceProps::rtx4090().baseClockMhz, 2235);
    EXPECT_DOUBLE_EQ(DeviceProps::h100().baseClockMhz, 1035);
}

TEST(DeviceProps, SmVersions)
{
    EXPECT_EQ(DeviceProps::gtx1070().smVersion, 61u);
    EXPECT_EQ(DeviceProps::v100().smVersion, 70u);
    EXPECT_EQ(DeviceProps::rtx2080ti().smVersion, 75u);
    EXPECT_EQ(DeviceProps::a100().smVersion, 80u);
    EXPECT_EQ(DeviceProps::rtx4090().smVersion, 89u);
    EXPECT_EQ(DeviceProps::h100().smVersion, 90u);
}

TEST(DeviceProps, PaperCoreCounts)
{
    // §IV-F quotes 1920 (Pascal), 16384 (4090), 16896 (H100).
    EXPECT_EQ(DeviceProps::gtx1070().cudaCores, 1920u);
    EXPECT_EQ(DeviceProps::rtx4090().cudaCores, 16384u);
    EXPECT_EQ(DeviceProps::h100().cudaCores, 16896u);
}

TEST(DeviceProps, CoresDivideEvenlyIntoSms)
{
    for (const auto &d : DeviceProps::allPlatforms()) {
        EXPECT_EQ(d.cudaCores % d.numSms, 0u) << d.name;
        EXPECT_GT(d.coresPerSm(), 0u) << d.name;
    }
}

TEST(DeviceProps, HopperHasLargestSharedMemory)
{
    // §IV-F: Hopper offers up to 228 KB per SM.
    EXPECT_EQ(DeviceProps::h100().smemPerSm, 228u * 1024);
    for (const auto &d : DeviceProps::allPlatforms())
        EXPECT_LE(d.smemPerSm, DeviceProps::h100().smemPerSm) << d.name;
}

TEST(DeviceProps, InstructionThroughputOrdering)
{
    // §IV-F: despite fewer cores, the RTX 4090 beats the H100 on
    // core-count x frequency.
    auto throughput = [](const DeviceProps &d) {
        return d.cudaCores * d.baseClockMhz;
    };
    EXPECT_GT(throughput(DeviceProps::rtx4090()),
              throughput(DeviceProps::h100()));
    // Pascal is the weakest platform.
    for (const auto &d : DeviceProps::allPlatforms()) {
        if (d.arch != Arch::Pascal) {
            EXPECT_GT(throughput(d), throughput(DeviceProps::gtx1070()))
                << d.name;
        }
    }
}

TEST(DeviceProps, ByArchRoundtrip)
{
    for (const auto &d : DeviceProps::allPlatforms())
        EXPECT_EQ(DeviceProps::byArch(d.arch).name, d.name);
}

TEST(DeviceProps, ArchNames)
{
    EXPECT_EQ(archName(Arch::Pascal), "Pascal");
    EXPECT_EQ(archName(Arch::Hopper), "Hopper");
    EXPECT_EQ(DeviceProps::allPlatforms().size(), 6u);
}

TEST(DeviceProps, StaticSmemLimitIs48K)
{
    // Paper §III-B1 reasons about the classic 48 KB static limit.
    for (const auto &d : DeviceProps::allPlatforms())
        EXPECT_EQ(d.staticSmemPerBlock, 48u * 1024) << d.name;
}
