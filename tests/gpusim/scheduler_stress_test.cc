/**
 * @file
 * Scheduler stress / property tests: randomized DAGs through the
 * fluid-flow timeline simulator must respect dependencies, conserve
 * work, and never lose kernels.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/random.hh"
#include "gpusim/scheduler.hh"

using namespace herosign;
using namespace herosign::gpu;

namespace
{

DeviceProps
dev()
{
    DeviceProps d = DeviceProps::rtx4090();
    d.kernelLaunchOverheadUs = 1.0;
    return d;
}

} // namespace

class SchedulerRandomDag : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(SchedulerRandomDag, InvariantsHold)
{
    Rng rng(GetParam());
    DeviceProps d = dev();
    DeviceSim sim(d);

    const int n = 20 + static_cast<int>(rng.below(40));
    std::vector<int> ids;
    std::vector<std::vector<int>> deps_of;
    double total_work = 0;

    for (int i = 0; i < n; ++i) {
        KernelExecDesc k;
        // Append rather than operator+: sidesteps GCC 12's spurious
        // -Wrestrict on inlined string concatenation (PR105651).
        k.name = "k";
        k.name += std::to_string(i);
        k.durationAloneUs = 1.0 + static_cast<double>(rng.below(200));
        k.utilization = 0.05 + 0.95 * (rng.below(100) / 100.0);
        total_work += k.durationAloneUs * k.utilization;

        std::vector<int> deps;
        if (!ids.empty() && rng.below(2) == 0)
            deps.push_back(ids[rng.below(ids.size())]);
        const int stream = static_cast<int>(rng.below(6));
        ids.push_back(sim.launch(k, stream, deps));
        deps_of.push_back(deps);
    }

    auto r = sim.run();
    ASSERT_EQ(r.entries.size(), static_cast<size_t>(n));

    for (int i = 0; i < n; ++i) {
        const auto &e = r.entries[i];
        // Sanity of each timeline entry.
        EXPECT_GE(e.startUs, e.submitUs - 1e-9) << i;
        EXPECT_GT(e.endUs, e.startUs) << i;
        EXPECT_LE(e.endUs, r.makespanUs + 1e-6) << i;
        // Fluid sharing can only stretch, never shrink, a kernel.
        // (Find the original duration via the launch order.)
        // Explicit dependencies honored.
        for (int dep : deps_of[i])
            EXPECT_GE(e.startUs, r.entries[dep].endUs - 1e-6)
                << i << " dep " << dep;
    }

    // Stream ordering: entries on the same stream never overlap.
    std::map<int, std::vector<const TimelineEntry *>> by_stream;
    for (const auto &e : r.entries)
        by_stream[e.stream].push_back(&e);
    for (auto &[stream, list] : by_stream) {
        for (size_t a = 0; a < list.size(); ++a) {
            for (size_t b = a + 1; b < list.size(); ++b) {
                const auto *x = list[a];
                const auto *y = list[b];
                const bool disjoint = x->endUs <= y->startUs + 1e-6 ||
                                      y->endUs <= x->startUs + 1e-6;
                EXPECT_TRUE(disjoint)
                    << "stream " << stream << " overlap";
            }
        }
    }

    // Work conservation: the device cannot finish faster than the
    // total utilization-weighted work.
    EXPECT_GE(r.makespanUs + 1e-6, total_work * 0.999 - 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerRandomDag,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u,
                                           21u, 34u));

TEST(SchedulerStress, LongDependencyChainSerializes)
{
    DeviceProps d = dev();
    DeviceSim sim(d);
    int prev = -1;
    const int n = 50;
    for (int i = 0; i < n; ++i) {
        std::vector<int> deps;
        if (prev >= 0)
            deps.push_back(prev);
        prev = sim.launch(KernelExecDesc{"c", 10.0, 0.1, 0},
                          i % 4, deps);
    }
    auto r = sim.run();
    // A chain cannot overlap: makespan >= n * duration.
    EXPECT_GE(r.makespanUs, n * 10.0 - 1e-6);
}

TEST(SchedulerStress, WideFanOutOverlapsUpToCapacity)
{
    DeviceProps d = dev();
    DeviceSim sim(d);
    const int n = 40;
    for (int i = 0; i < n; ++i)
        sim.launch(KernelExecDesc{"w", 100.0, 0.1, 0}, i);
    auto r = sim.run();
    // 40 kernels at 10% utilization: at most 10 run at full speed
    // concurrently -> makespan about n*util*duration once saturated.
    EXPECT_LT(r.makespanUs, 100.0 * n); // far better than serial
    EXPECT_GE(r.makespanUs, 100.0 * n * 0.1 * 0.9);
}

TEST(SchedulerStress, ManyGraphLaunchesStayConsistent)
{
    DeviceProps d = dev();
    TaskGraph g;
    int a = g.addNode(KernelExecDesc{"a", 5, 0.2, 0});
    int b = g.addNode(KernelExecDesc{"b", 5, 0.2, 0});
    g.addNode(KernelExecDesc{"c", 5, 0.2, 0}, {a, b});

    DeviceSim sim(d);
    for (int i = 0; i < 30; ++i)
        sim.launchGraph(g, i % 3);
    auto r = sim.run();
    ASSERT_EQ(r.entries.size(), 90u);
    for (size_t i = 0; i < r.entries.size(); i += 3) {
        EXPECT_GE(r.entries[i + 2].startUs,
                  std::max(r.entries[i].endUs, r.entries[i + 1].endUs) -
                      1e-6);
    }
}

TEST(SchedulerStress, PreGapDelaysDependentKernel)
{
    DeviceProps d = dev();
    DeviceSim sim(d);
    int a = sim.launch(KernelExecDesc{"a", 10, 1.0, 0}, 0);
    KernelExecDesc gapped{"b", 10, 1.0, 25.0};
    sim.launch(gapped, 0, {a});
    auto r = sim.run();
    EXPECT_GE(r.entries[1].startUs, r.entries[0].endUs + 25.0 - 1e-6);
    EXPECT_GE(r.idleUs, 25.0 - 1e-6);
}
