/**
 * @file
 * Bank-conflict model tests: Eq. 2/3 region math, conflict counting
 * on canonical patterns, and the Table VI property — the padded
 * even-odd reduction layout is conflict-free for 16/24/32-byte
 * accesses while the naive layout conflicts heavily.
 */

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "gpusim/banks.hh"

using namespace herosign::gpu;

TEST(BankModel, RegionRowsMatchesEq2AndEq3)
{
    // Eq. 2: 128 = Bn * 4 * Th -> R = 1 for 16B and 32B.
    EXPECT_EQ(BankModel::regionRows(16), 1u);
    EXPECT_EQ(BankModel::regionRows(32), 1u);
    // Eq. 3: 128 * R = Bn * 4 * Th -> R = 3 for 24B.
    EXPECT_EQ(BankModel::regionRows(24), 3u);
    EXPECT_EQ(BankModel::regionRows(4), 1u);
}

TEST(BankModel, LanesPerPhase)
{
    EXPECT_EQ(BankModel::lanesPerPhase(16), 8u);   // Th = 8
    EXPECT_EQ(BankModel::lanesPerPhase(32), 4u);   // Th = 4
    EXPECT_EQ(BankModel::lanesPerPhase(24), 16u);  // Th = 16 (Fig. 9)
    EXPECT_EQ(BankModel::lanesPerPhase(4), 32u);
}

TEST(BankModel, RejectsNonWordSizes)
{
    EXPECT_THROW(BankModel::regionRows(0), std::invalid_argument);
    EXPECT_THROW(BankModel::regionRows(6), std::invalid_argument);
}

TEST(BankModel, Stride1WordAccessIsConflictFree)
{
    BankModel model;
    WarpAccess acc;
    acc.bytesPerLane = 4;
    for (uint32_t i = 0; i < 32; ++i)
        acc.laneAddrs.push_back(i * 4);
    EXPECT_EQ(model.conflicts(acc), 0u);
}

TEST(BankModel, Stride2WordAccessIsTwoWay)
{
    // Lane i -> word 2i: banks repeat after 16 lanes -> one extra
    // wavefront for the 32-lane phase.
    BankModel model;
    WarpAccess acc;
    acc.bytesPerLane = 4;
    for (uint32_t i = 0; i < 32; ++i)
        acc.laneAddrs.push_back(i * 8);
    EXPECT_EQ(model.conflicts(acc), 1u);
}

TEST(BankModel, SameAddressBroadcastsWithoutConflict)
{
    BankModel model;
    WarpAccess acc;
    acc.bytesPerLane = 4;
    for (uint32_t i = 0; i < 32; ++i)
        acc.laneAddrs.push_back(128); // all lanes, same word
    EXPECT_EQ(model.conflicts(acc), 0u);
}

TEST(BankModel, WorstCaseSingleBank)
{
    // All lanes hit distinct words of one bank: 31 extra wavefronts.
    BankModel model;
    WarpAccess acc;
    acc.bytesPerLane = 4;
    for (uint32_t i = 0; i < 32; ++i)
        acc.laneAddrs.push_back(i * 128);
    EXPECT_EQ(model.conflicts(acc), 31u);
}

TEST(BankModel, Vector16ByteStride1ConflictFree)
{
    BankModel model;
    WarpAccess acc;
    acc.bytesPerLane = 16;
    for (uint32_t i = 0; i < 32; ++i)
        acc.laneAddrs.push_back(i * 16);
    EXPECT_EQ(model.conflicts(acc), 0u);
}

TEST(BankModel, Vector16ByteStride2Conflicts)
{
    // The reduction's child loads in the naive layout.
    BankModel model;
    WarpAccess acc;
    acc.bytesPerLane = 16;
    for (uint32_t i = 0; i < 32; ++i)
        acc.laneAddrs.push_back(i * 32);
    EXPECT_GT(model.conflicts(acc), 0u);
}

TEST(BankModel, Vector24ByteStride1ConflictFreeUnderEq3)
{
    // The paper's coalescing hypothesis: 16 lanes x 24 B = 3 rows of
    // 128 B merge into one transaction; stride-1 then needs exactly
    // R = 3 wavefronts -> zero conflicts.
    BankModel model;
    WarpAccess acc;
    acc.bytesPerLane = 24;
    for (uint32_t i = 0; i < 32; ++i)
        acc.laneAddrs.push_back(i * 24);
    EXPECT_EQ(model.conflicts(acc), 0u);
}

TEST(BankModel, EmptyAccessIsFree)
{
    BankModel model;
    WarpAccess acc;
    acc.bytesPerLane = 16;
    EXPECT_EQ(model.conflicts(acc), 0u);
}

namespace
{

ConflictCounts
runReduction(unsigned leaves, unsigned node_bytes, bool padded)
{
    BankModel model;
    if (padded) {
        PaddedReductionLayout layout(leaves, node_bytes, 0);
        return reductionConflicts(layout, 1024, model);
    }
    NaiveReductionLayout layout(leaves, node_bytes, 0);
    return reductionConflicts(layout, 1024, model);
}

} // namespace

class ReductionConflicts
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(ReductionConflicts, PaddedLayoutIsConflictFree)
{
    const auto [leaves, node_bytes] = GetParam();
    ConflictCounts counts = runReduction(leaves, node_bytes, true);
    EXPECT_EQ(counts.loadConflicts, 0u)
        << "t=" << leaves << " n=" << node_bytes;
    EXPECT_EQ(counts.storeConflicts, 0u)
        << "t=" << leaves << " n=" << node_bytes;
}

TEST_P(ReductionConflicts, NaiveLayoutConflictsHeavily)
{
    const auto [leaves, node_bytes] = GetParam();
    ConflictCounts counts = runReduction(leaves, node_bytes, false);
    if (leaves >= 32) {
        // Table VI baseline: FORS-sized trees conflict in both loads
        // and stores.
        EXPECT_GT(counts.loadConflicts, 0u);
        EXPECT_GT(counts.storeConflicts, 0u);
    } else {
        // Tiny hypertree subtrees fit one transaction phase; the
        // naive layout is never *better* than the padded one.
        ConflictCounts padded = runReduction(leaves, node_bytes, true);
        EXPECT_GE(counts.loadConflicts + counts.storeConflicts,
                  padded.loadConflicts + padded.storeConflicts);
    }
}

// The three SPHINCS+ FORS geometries (t x n): 64x16, 256x24, 512x32,
// plus the hypertree subtree geometries (8x16, 8x24, 16x32).
INSTANTIATE_TEST_SUITE_P(SphincsGeometries, ReductionConflicts,
    ::testing::Values(std::make_tuple(64u, 16u),
                      std::make_tuple(256u, 24u),
                      std::make_tuple(512u, 32u),
                      std::make_tuple(8u, 16u),
                      std::make_tuple(8u, 24u),
                      std::make_tuple(16u, 32u),
                      std::make_tuple(128u, 16u),
                      std::make_tuple(32u, 32u)));

TEST(ReductionLayouts, PaddedFootprintNearTN)
{
    // The padded layout must stay within the paper's t*n shared
    // memory accounting plus at most one row of padding.
    for (auto [t, n] : {std::pair{64u, 16u}, {256u, 24u}, {512u, 32u}}) {
        PaddedReductionLayout layout(t, n, 0);
        EXPECT_GE(layout.footprint(), t * n);
        EXPECT_LE(layout.footprint(), t * n + 128);
    }
}

TEST(ReductionLayouts, AddressesStayInsideFootprint)
{
    PaddedReductionLayout layout(64, 16, 0);
    unsigned levels = 6;
    for (unsigned level = 0; level <= levels; ++level) {
        const uint32_t count = 64u >> level;
        for (uint32_t j = 0; j < count; ++j) {
            EXPECT_LE(layout.nodeAddr(level, j) + 16,
                      layout.footprint())
                << "level " << level << " node " << j;
        }
    }
}

TEST(ReductionLayouts, PaddedAddressesDoNotAliasWithinLevel)
{
    PaddedReductionLayout layout(64, 16, 0);
    for (unsigned level = 0; level < 6; ++level) {
        const uint32_t count = 64u >> level;
        std::set<uint32_t> seen;
        for (uint32_t j = 0; j < count; ++j)
            EXPECT_TRUE(seen.insert(layout.nodeAddr(level, j)).second)
                << "level " << level << " node " << j;
    }
}

TEST(ReductionLayouts, OddSkewIs64Mod128)
{
    // The conflict-free property hinges on the odd array sitting 64
    // bytes (mod 128) past the even array.
    for (auto [t, n] : {std::pair{64u, 16u}, {256u, 24u}, {512u, 32u}}) {
        PaddedReductionLayout layout(t, n, 0);
        uint32_t even0 = layout.nodeAddr(0, 0);
        uint32_t odd0 = layout.nodeAddr(0, 1);
        EXPECT_EQ((odd0 - even0) % 128, 64u) << "t=" << t << " n=" << n;
    }
}

TEST(ReductionLayouts, BaseOffsetRespected)
{
    NaiveReductionLayout naive(64, 16, 4096);
    EXPECT_EQ(naive.nodeAddr(0, 0), 4096u);
    PaddedReductionLayout padded(64, 16, 4096);
    EXPECT_EQ(padded.nodeAddr(0, 0), 4096u);
}

TEST(ReductionLayouts, RejectsNonPowerOfTwo)
{
    EXPECT_THROW(PaddedReductionLayout(48, 16, 0),
                 std::invalid_argument);
    EXPECT_THROW(PaddedReductionLayout(1, 16, 0),
                 std::invalid_argument);
}
