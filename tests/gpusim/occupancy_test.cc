/**
 * @file
 * Occupancy calculator tests, including the paper's Eq. 1 view and
 * the concrete occupancy numbers the paper quotes.
 */

#include <gtest/gtest.h>

#include "gpusim/occupancy.hh"

using namespace herosign::gpu;

TEST(Occupancy, RegisterLimited)
{
    // 1024 threads x 128 regs = 131072 regs > 64K: zero blocks fit
    // at full block size... with warp granularity: 128*32=4096 per
    // warp, 32 warps -> 131072 > 65536 -> 0 blocks? Real HW refuses
    // such launches unless maxrregcount; here 64 regs x 1024 threads
    // = 65536 -> exactly 1 block.
    DeviceProps dev = DeviceProps::rtx4090();
    KernelResources res{64, 1024, 0};
    auto occ = computeOccupancy(dev, res);
    EXPECT_EQ(occ.blocksPerSm, 1u);
    EXPECT_EQ(occ.limiter, OccupancyLimiter::Registers);
    EXPECT_EQ(occ.activeWarpsPerSm, 32u);
    EXPECT_NEAR(occ.occupancy, 32.0 / 48.0, 1e-9);
}

TEST(Occupancy, PaperTreeSignNumbers)
{
    // Paper §III-C2: in 256f, TREE_Sign at 168 regs/thread has 19%
    // occupancy; the PTX branch's 95 regs lift it to 37.5%.
    // With 1024-thread blocks: 168 regs -> floor(64K / (168*1024)) = 0
    // blocks; the paper's occupancies correspond to the 512-thread
    // sub-blocks the launch bounds force. Use Eq. 1 with Tblock=512.
    DeviceProps dev = DeviceProps::rtx4090();
    KernelResources native{168, 512, 0};
    KernelResources ptx{95, 512, 0};
    // Eq. 1: floor(65536/(168*512)) = 0 ... the paper's numbers match
    // Tblock = 256: floor(65536/(168*256)) = 1, warps = 8, 8/48 = 16.7%
    // and floor(65536/(95*256)) = 2 -> 16/48 = 33%. The paper's 19%
    // and 37.5% sit between the 256- and 512-thread views; we verify
    // the *ratio* (1.97x) which is geometry independent.
    native.threadsPerBlock = 256;
    ptx.threadsPerBlock = 256;
    double occ_native = paperEq1Occupancy(dev, native);
    double occ_ptx = paperEq1Occupancy(dev, ptx);
    EXPECT_GT(occ_ptx / occ_native, 1.5);
    EXPECT_LT(occ_ptx / occ_native, 2.5);
}

TEST(Occupancy, SharedMemoryLimited)
{
    DeviceProps dev = DeviceProps::rtx4090();
    // 33 KB per block (128f FORS) with modest regs/threads.
    KernelResources res{32, 128, 33 * 1024};
    auto occ = computeOccupancy(dev, res);
    EXPECT_EQ(occ.limiter, OccupancyLimiter::SharedMemory);
    EXPECT_EQ(occ.blocksPerSm, (100u * 1024) / (33u * 1024));
}

TEST(Occupancy, ThreadSlotLimited)
{
    DeviceProps dev = DeviceProps::rtx4090(); // 1536 threads/SM
    KernelResources res{16, 1024, 0};
    auto occ = computeOccupancy(dev, res);
    EXPECT_EQ(occ.blocksPerSm, 1u);
    EXPECT_EQ(occ.limiter, OccupancyLimiter::ThreadSlots);
}

TEST(Occupancy, BlockSlotLimited)
{
    DeviceProps dev = DeviceProps::rtx4090(); // 24 blocks/SM
    KernelResources res{16, 32, 0};
    auto occ = computeOccupancy(dev, res);
    EXPECT_EQ(occ.blocksPerSm, 24u);
    EXPECT_EQ(occ.limiter, OccupancyLimiter::BlockSlots);
}

TEST(Occupancy, WarpGranularRegisterAllocation)
{
    DeviceProps dev = DeviceProps::rtx4090();
    // 33 regs/thread rounds to 1280 regs per warp (33*32=1056 -> 1280).
    KernelResources res{33, 1024, 0};
    auto occ = computeOccupancy(dev, res);
    // Per block: 32 warps * 1280 = 40960; 65536/40960 = 1 block.
    EXPECT_EQ(occ.blocksPerSm, 1u);
}

TEST(Occupancy, RejectsBadInputs)
{
    DeviceProps dev = DeviceProps::rtx4090();
    EXPECT_THROW(computeOccupancy(dev, {32, 0, 0}),
                 std::invalid_argument);
    EXPECT_THROW(computeOccupancy(dev, {32, 2048, 0}),
                 std::invalid_argument);
    EXPECT_THROW(computeOccupancy(dev, {0, 128, 0}),
                 std::invalid_argument);
}

TEST(Occupancy, Eq1MatchesFullCalculatorWhenRegisterBound)
{
    DeviceProps dev = DeviceProps::v100(); // 64 warps/SM
    for (unsigned regs : {64u, 96u, 128u}) {
        KernelResources res{regs, 1024, 0};
        auto full = computeOccupancy(dev, res);
        double eq1 = paperEq1Occupancy(dev, res);
        if (full.limiter == OccupancyLimiter::Registers) {
            // Eq. 1 ignores warp-granularity rounding; allow a small
            // gap but require agreement within one block quantum.
            EXPECT_NEAR(full.occupancy, eq1, 32.0 / dev.maxWarpsPerSm)
                << regs;
        }
    }
}

class OccupancyMonotonicity
    : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(OccupancyMonotonicity, MoreRegistersNeverRaiseOccupancy)
{
    DeviceProps dev = DeviceProps::rtx4090();
    const unsigned threads = GetParam();
    double prev = 2.0;
    for (unsigned regs = 32; regs <= 160; regs += 8) {
        auto occ = computeOccupancy(dev, KernelResources{regs, threads, 0});
        EXPECT_LE(occ.occupancy, prev + 1e-12)
            << "regs=" << regs << " threads=" << threads;
        prev = occ.occupancy;
    }
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, OccupancyMonotonicity,
                         ::testing::Values(64u, 128u, 256u, 512u, 1024u));
