/**
 * @file
 * WOTS+ tests: base-w digits, checksum, chain algebra, and the core
 * sign → pk-from-sig == pk-gen property across all parameter sets.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "sphincs/params.hh"
#include "sphincs/thash.hh"
#include "sphincs/wots.hh"

using namespace herosign;
using namespace herosign::sphincs;

namespace
{

class WotsTest : public ::testing::TestWithParam<const Params *>
{
  protected:
    const Params &p() const { return *GetParam(); }

    Context
    makeContext(Rng &rng) const
    {
        ByteVec pk_seed = rng.bytes(p().n);
        ByteVec sk_seed = rng.bytes(p().n);
        return Context(p(), pk_seed, sk_seed);
    }

    Address
    leafAddress() const
    {
        Address a;
        a.setLayer(2);
        a.setTree(1234);
        a.setType(AddrType::WotsHash);
        a.setKeypair(5);
        return a;
    }
};

} // namespace

TEST_P(WotsTest, ChainLengthsInRange)
{
    Rng rng(20);
    for (int trial = 0; trial < 20; ++trial) {
        ByteVec msg = rng.bytes(p().n);
        uint32_t lengths[maxWotsLen];
        chainLengths(lengths, p(), msg.data());
        for (unsigned i = 0; i < p().wotsLen(); ++i)
            EXPECT_LT(lengths[i], p().wotsW);
    }
}

TEST_P(WotsTest, ChecksumProperty)
{
    // The checksum digits encode sum(w-1-msg_i) shifted into whole
    // base-w digits; verify by recomputing from the digit split.
    Rng rng(21);
    ByteVec msg = rng.bytes(p().n);
    uint32_t lengths[maxWotsLen];
    chainLengths(lengths, p(), msg.data());

    uint32_t csum = 0;
    for (unsigned i = 0; i < p().wotsLen1(); ++i)
        csum += p().wotsW - 1 - lengths[i];

    const unsigned lg_w = p().lgW();
    const unsigned len2 = p().wotsLen2();
    uint32_t shifted = csum << ((8 - (len2 * lg_w) % 8) % 8);

    uint32_t decoded = 0;
    for (unsigned i = 0; i < len2; ++i)
        decoded = (decoded << lg_w) | lengths[p().wotsLen1() + i];

    // The decoded digits are the top len2*lg_w bits of the shifted
    // checksum byte string.
    const unsigned csum_bits = ((len2 * lg_w + 7) / 8) * 8;
    EXPECT_EQ(decoded, shifted >> (csum_bits - len2 * lg_w));
}

TEST_P(WotsTest, AllZeroMessageMaximizesChecksum)
{
    ByteVec msg(p().n, 0x00);
    uint32_t lengths[maxWotsLen];
    chainLengths(lengths, p(), msg.data());
    for (unsigned i = 0; i < p().wotsLen1(); ++i)
        EXPECT_EQ(lengths[i], 0u);
    // The checksum digits must decode to csum = len1 * (w-1).
    uint32_t decoded = 0;
    for (unsigned i = 0; i < p().wotsLen2(); ++i)
        decoded = (decoded << 4) | lengths[p().wotsLen1() + i];
    uint32_t expected = p().wotsLen1() * 15;
    uint32_t shifted = expected << ((8 - (p().wotsLen2() * 4) % 8) % 8);
    const unsigned csum_bits = ((p().wotsLen2() * 4 + 7) / 8) * 8;
    EXPECT_EQ(decoded, shifted >> (csum_bits - p().wotsLen2() * 4));
}

TEST_P(WotsTest, ChainComposition)
{
    // chain(x, 0, a+b) == chain(chain(x, 0, a), a, b)
    Rng rng(22);
    Context ctx = makeContext(rng);
    Address adrs = leafAddress();
    adrs.setChain(3);

    ByteVec x = rng.bytes(p().n);
    uint8_t full[maxN], part[maxN];

    Address a1 = adrs;
    genChain(full, x.data(), 0, 9, ctx, a1);

    Address a2 = adrs;
    genChain(part, x.data(), 0, 4, ctx, a2);
    Address a3 = adrs;
    genChain(part, part, 4, 5, ctx, a3);

    EXPECT_TRUE(ctEqual(ByteSpan(full, p().n), ByteSpan(part, p().n)));
}

TEST_P(WotsTest, ChainZeroStepsIsIdentity)
{
    Rng rng(23);
    Context ctx = makeContext(rng);
    Address adrs = leafAddress();
    ByteVec x = rng.bytes(p().n);
    uint8_t out[maxN];
    genChain(out, x.data(), 2, 0, ctx, adrs);
    EXPECT_TRUE(ctEqual(ByteSpan(out, p().n), x));
}

TEST_P(WotsTest, SignThenRecoverPkMatchesPkGen)
{
    Rng rng(24);
    Context ctx = makeContext(rng);
    Address adrs = leafAddress();

    uint8_t pk[maxN];
    wotsPkGen(pk, ctx, adrs);

    for (int trial = 0; trial < 5; ++trial) {
        ByteVec msg = rng.bytes(p().n);
        ByteVec sig(p().wotsSigBytes());
        wotsSign(sig.data(), msg.data(), ctx, adrs);

        uint8_t recovered[maxN];
        wotsPkFromSig(recovered, sig.data(), msg.data(), ctx, adrs);
        EXPECT_TRUE(ctEqual(ByteSpan(recovered, p().n),
                            ByteSpan(pk, p().n)))
            << "trial " << trial;
    }
}

TEST_P(WotsTest, WrongMessageYieldsWrongPk)
{
    Rng rng(25);
    Context ctx = makeContext(rng);
    Address adrs = leafAddress();

    uint8_t pk[maxN];
    wotsPkGen(pk, ctx, adrs);

    ByteVec msg = rng.bytes(p().n);
    ByteVec sig(p().wotsSigBytes());
    wotsSign(sig.data(), msg.data(), ctx, adrs);

    ByteVec tampered = msg;
    tampered[0] ^= 0x01;
    uint8_t recovered[maxN];
    wotsPkFromSig(recovered, sig.data(), tampered.data(), ctx, adrs);
    EXPECT_FALSE(ctEqual(ByteSpan(recovered, p().n), ByteSpan(pk, p().n)));
}

TEST_P(WotsTest, DifferentKeypairsDifferentPks)
{
    Rng rng(26);
    Context ctx = makeContext(rng);
    Address a1 = leafAddress(), a2 = leafAddress();
    a2.setKeypair(6);

    uint8_t pk1[maxN], pk2[maxN];
    wotsPkGen(pk1, ctx, a1);
    wotsPkGen(pk2, ctx, a2);
    EXPECT_FALSE(ctEqual(ByteSpan(pk1, p().n), ByteSpan(pk2, p().n)));
}

INSTANTIATE_TEST_SUITE_P(AllSets, WotsTest,
    ::testing::Values(&Params::sphincs128f(), &Params::sphincs192f(),
                      &Params::sphincs256f()),
    [](const ::testing::TestParamInfo<const Params *> &info) {
        std::string name = info.param->name;
        return name.substr(name.find('-') + 1);
    });
