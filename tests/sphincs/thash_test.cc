/**
 * @file
 * Tweakable-hash construction tests: seeded mid-state equivalence,
 * domain separation by address, PRF behaviour, H_msg structure.
 */

#include <gtest/gtest.h>

#include "common/hex.hh"
#include "common/random.hh"
#include "hash/mgf1.hh"
#include "hash/sha256.hh"
#include "sphincs/params.hh"
#include "sphincs/thash.hh"

using namespace herosign;
using namespace herosign::sphincs;

namespace
{

class ThashTest : public ::testing::TestWithParam<const Params *>
{
  protected:
    const Params &p() const { return *GetParam(); }
};

} // namespace

TEST_P(ThashTest, MatchesDirectShaConstruction)
{
    Rng rng(11);
    ByteVec pk_seed = rng.bytes(p().n);
    ByteVec sk_seed = rng.bytes(p().n);
    Context ctx(p(), pk_seed, sk_seed);

    Address adrs;
    adrs.setLayer(1);
    adrs.setTree(7);
    adrs.setType(AddrType::WotsHash);
    adrs.setKeypair(3);
    adrs.setChain(2);
    adrs.setHash(1);

    ByteVec in = rng.bytes(p().n);
    uint8_t out[maxN];
    thash(out, ctx, adrs, in);

    // Direct construction: SHA-256(pk_seed || 0^(64-n) || adrs_c || in)
    ByteVec direct_in(64, 0);
    std::memcpy(direct_in.data(), pk_seed.data(), p().n);
    auto c = adrs.compressed();
    append(direct_in, ByteSpan(c.data(), c.size()));
    append(direct_in, in);
    auto digest = Sha256::digest(direct_in);

    EXPECT_TRUE(ctEqual(ByteSpan(out, p().n),
                        ByteSpan(digest.data(), p().n)));
}

TEST_P(ThashTest, AddressSeparation)
{
    Rng rng(12);
    ByteVec pk_seed = rng.bytes(p().n);
    Context ctx(p(), pk_seed, {});

    ByteVec in = rng.bytes(p().n);
    Address a, b;
    a.setType(AddrType::WotsHash);
    b.setType(AddrType::WotsHash);
    b.setHash(1);

    uint8_t out_a[maxN], out_b[maxN];
    thash(out_a, ctx, a, in);
    thash(out_b, ctx, b, in);
    EXPECT_FALSE(ctEqual(ByteSpan(out_a, p().n), ByteSpan(out_b, p().n)));
}

TEST_P(ThashTest, PrfDependsOnSkSeed)
{
    Rng rng(13);
    ByteVec pk_seed = rng.bytes(p().n);
    ByteVec sk1 = rng.bytes(p().n);
    ByteVec sk2 = rng.bytes(p().n);
    Context c1(p(), pk_seed, sk1), c2(p(), pk_seed, sk2);

    Address adrs;
    adrs.setType(AddrType::WotsPrf);

    uint8_t o1[maxN], o2[maxN];
    prfAddr(o1, c1, adrs);
    prfAddr(o2, c2, adrs);
    EXPECT_FALSE(ctEqual(ByteSpan(o1, p().n), ByteSpan(o2, p().n)));
}

TEST_P(ThashTest, PrfMsgDeterministicInInputs)
{
    Rng rng(14);
    ByteVec pk_seed = rng.bytes(p().n);
    Context ctx(p(), pk_seed, {});
    ByteVec sk_prf = rng.bytes(p().n);
    ByteVec opt = rng.bytes(p().n);
    ByteVec msg = rng.bytes(100);

    uint8_t r1[maxN], r2[maxN];
    prfMsg(r1, ctx, sk_prf, opt, msg);
    prfMsg(r2, ctx, sk_prf, opt, msg);
    EXPECT_TRUE(ctEqual(ByteSpan(r1, p().n), ByteSpan(r2, p().n)));

    ByteVec opt2 = opt;
    opt2[0] ^= 1;
    prfMsg(r2, ctx, sk_prf, opt2, msg);
    EXPECT_FALSE(ctEqual(ByteSpan(r1, p().n), ByteSpan(r2, p().n)));
}

TEST_P(ThashTest, HashMessageMatchesMgf1Construction)
{
    Rng rng(15);
    ByteVec pk_seed = rng.bytes(p().n);
    Context ctx(p(), pk_seed, {});
    ByteVec r = rng.bytes(p().n);
    ByteVec pk_root = rng.bytes(p().n);
    ByteVec msg = rng.bytes(33);

    ByteVec digest(p().msgDigestBytes());
    hashMessage(digest, ctx, r, pk_root, msg);

    // Reconstruct: MGF1(R || pk_seed || SHA256(R||pk_seed||root||msg))
    ByteVec inner;
    append(inner, r);
    append(inner, pk_seed);
    append(inner, pk_root);
    append(inner, msg);
    auto seed1 = Sha256::digest(inner);

    ByteVec mgf_seed;
    append(mgf_seed, r);
    append(mgf_seed, pk_seed);
    append(mgf_seed, ByteSpan(seed1.data(), seed1.size()));
    ByteVec expected(p().msgDigestBytes());
    mgf1Sha256(expected, mgf_seed);

    EXPECT_EQ(hexEncode(digest), hexEncode(expected));
}

TEST_P(ThashTest, VariantsAgree)
{
    Rng rng(16);
    ByteVec pk_seed = rng.bytes(p().n);
    ByteVec sk_seed = rng.bytes(p().n);
    Context native(p(), pk_seed, sk_seed, Sha256Variant::Native);
    Context ptx(p(), pk_seed, sk_seed, Sha256Variant::Ptx);

    Address adrs;
    adrs.setType(AddrType::ForsTree);
    adrs.setTreeIndex(9);

    ByteVec in = rng.bytes(2 * p().n);
    uint8_t a[maxN], b[maxN];
    thash(a, native, adrs, in);
    thash(b, ptx, adrs, in);
    EXPECT_TRUE(ctEqual(ByteSpan(a, p().n), ByteSpan(b, p().n)));
}

TEST(ThashContext, RejectsBadSeeds)
{
    const Params &p = Params::sphincs128f();
    ByteVec good(p.n, 1), bad(p.n + 1, 1);
    EXPECT_NO_THROW(Context(p, good, good));
    EXPECT_NO_THROW(Context(p, good, {}));
    EXPECT_THROW(Context(p, bad, good), std::invalid_argument);
    EXPECT_THROW(Context(p, good, bad), std::invalid_argument);
}

TEST(ThashContext, SeededStateIsOneCompression)
{
    const Params &p = Params::sphincs128f();
    ByteVec pk_seed(p.n, 0x5a);
    Sha256::resetCompressionCount();
    Context ctx(p, pk_seed, {});
    EXPECT_EQ(Sha256::compressionCount(), 1u);
    EXPECT_EQ(ctx.seededState().bytesCompressed, 64u);
}

INSTANTIATE_TEST_SUITE_P(AllSets, ThashTest,
    ::testing::Values(&Params::sphincs128f(), &Params::sphincs192f(),
                      &Params::sphincs256f()),
    [](const ::testing::TestParamInfo<const Params *> &info) {
        std::string name = info.param->name;
        return name.substr(name.find('-') + 1);
    });
