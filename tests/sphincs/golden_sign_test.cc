/**
 * @file
 * Golden-vector fixtures for the scalar SPHINCS+ reference: for every
 * parameter set, a keypair expanded from a fixed seed and a
 * deterministic signature over a fixed message are pinned to recorded
 * digests. These are regression vectors generated from this
 * implementation (the custom thash/H_msg instantiation has no official
 * NIST KAT), but the hash substrate underneath them is KAT-validated
 * in tests/hash/hash_kat_test.cc, so any drift here is a real
 * behaviour change in the signature path.
 */

#include <gtest/gtest.h>

#include <numeric>
#include <string>

#include "common/hex.hh"
#include "hash/sha256.hh"
#include "sphincs/sphincs.hh"

using namespace herosign;
using sphincs::Params;
using sphincs::SphincsPlus;

namespace
{

/** The fixed 3n-byte keygen seed: 0x00, 0x01, 0x02, ... */
ByteVec
fixedSeed(const Params &p)
{
    ByteVec seed(3 * p.n);
    std::iota(seed.begin(), seed.end(), static_cast<uint8_t>(0));
    return seed;
}

/** The fixed message: "HERO-Sign golden vector" */
ByteVec
fixedMsg()
{
    const std::string s = "HERO-Sign golden vector";
    return ByteVec(s.begin(), s.end());
}

std::string
sigDigestHex(ByteSpan sig)
{
    auto d = Sha256::digest(sig);
    return hexEncode(ByteSpan(d.data(), d.size()));
}

struct GoldenVector
{
    const char *name;
    const char *pkRootHex;    ///< hex of the n-byte hypertree root
    const char *sigSha256Hex; ///< SHA-256 of the deterministic signature
    const char *optSigSha256Hex; ///< ... of the opt_rand = 0xa5..a5 one
};

const GoldenVector goldens[] = {
    {"128f",
     "3b56e816847f000386aeec2e2bb9e1b5",
     "2c1897faeda4485400c4187eca7484d4a4598db6fc2d335f4f23edac9d306e41",
     "2d172e8ec2aad773b3965d2fb1b3e4d20370ed01dea1b96767a7ae8cf5f440d3"},
    {"192f",
     "5e9993b30299a80e2dde8460cfa1afad73908194f2666a7b",
     "969ffa0f8c9e0b0bf3dd920e9f734799dc4cdb3c2baae66ea2225f42cf3db415",
     "58efebda0f25dd290c7ec784d2890ffab7721e53c20a0a146f0a2209dfaf8c66"},
    {"256f",
     "6312b178d4b40c007f3a8937715e7763ce0e3ec5fe31b04fe5f5ce7e949873cb",
     "04ca4d4d95484e5a9e8d5b3f5d5aaf8ff954983c768687a2ec051d4b1cd881b3",
     "9ae4f561a7da3085d7df887a75df49557a4a41562f86fb842cc8df7ab262bb3b"},
};

} // namespace

class GoldenSign : public ::testing::TestWithParam<GoldenVector>
{
};

TEST_P(GoldenSign, KeygenAndSignMatchRecordedVectors)
{
    const GoldenVector &g = GetParam();
    const Params &p = Params::byName(g.name);
    SphincsPlus scheme(p);

    auto kp = scheme.keygenFromSeed(fixedSeed(p));
    EXPECT_EQ(hexEncode(kp.pk.pkRoot), g.pkRootHex) << p.name;
    EXPECT_EQ(kp.sk.pkRoot, kp.pk.pkRoot);
    EXPECT_EQ(kp.sk.encode().size(), p.skBytes());
    EXPECT_EQ(kp.pk.encode().size(), p.pkBytes());

    ByteVec msg = fixedMsg();
    ByteVec sig = scheme.sign(msg, kp.sk);
    ASSERT_EQ(sig.size(), p.sigBytes());
    EXPECT_EQ(sigDigestHex(sig), g.sigSha256Hex) << p.name;
    EXPECT_TRUE(scheme.verify(msg, sig, kp.pk));

    // Deterministic signing is a function: sign twice, compare.
    EXPECT_EQ(scheme.sign(msg, kp.sk), sig);

    // Randomized variant with pinned opt_rand is deterministic too.
    ByteVec opt(p.n, 0xa5);
    ByteVec optSig = scheme.sign(msg, kp.sk, opt);
    EXPECT_EQ(sigDigestHex(optSig), g.optSigSha256Hex) << p.name;
    EXPECT_NE(optSig, sig);
    EXPECT_TRUE(scheme.verify(msg, optSig, kp.pk));
}

TEST_P(GoldenSign, TamperedSignatureOrMessageRejected)
{
    const GoldenVector &g = GetParam();
    const Params &p = Params::byName(g.name);
    SphincsPlus scheme(p);
    auto kp = scheme.keygenFromSeed(fixedSeed(p));
    ByteVec msg = fixedMsg();
    ByteVec sig = scheme.sign(msg, kp.sk);

    // Flip one bit in a few spread-out positions of the signature.
    for (size_t pos : {size_t{0}, sig.size() / 2, sig.size() - 1}) {
        ByteVec bad = sig;
        bad[pos] ^= 0x01;
        EXPECT_FALSE(scheme.verify(msg, bad, kp.pk)) << p.name;
    }

    ByteVec badMsg = msg;
    badMsg[0] ^= 0x80;
    EXPECT_FALSE(scheme.verify(badMsg, sig, kp.pk)) << p.name;

    // Truncated signature must be rejected, not crash.
    ByteVec shortSig(sig.begin(), sig.end() - 1);
    EXPECT_FALSE(scheme.verify(msg, shortSig, kp.pk)) << p.name;
}

TEST_P(GoldenSign, PtxVariantSignsIdentically)
{
    // The PTX-flavoured compression branch must not change signatures.
    const GoldenVector &g = GetParam();
    const Params &p = Params::byName(g.name);
    SphincsPlus native(p, Sha256Variant::Native);
    SphincsPlus ptx(p, Sha256Variant::Ptx);
    auto kpN = native.keygenFromSeed(fixedSeed(p));
    auto kpP = ptx.keygenFromSeed(fixedSeed(p));
    EXPECT_EQ(kpN.pk.pkRoot, kpP.pk.pkRoot);
    ByteVec msg = fixedMsg();
    EXPECT_EQ(native.sign(msg, kpN.sk), ptx.sign(msg, kpP.sk));
}

INSTANTIATE_TEST_SUITE_P(AllParamSets, GoldenSign,
    ::testing::ValuesIn(goldens),
    [](const ::testing::TestParamInfo<GoldenVector> &info) {
        return std::string("sphincs") + info.param.name;
    });
