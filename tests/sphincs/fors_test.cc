/**
 * @file
 * FORS tests: index extraction, leaf derivation, and the sign →
 * pk-from-sig roundtrip property.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "sphincs/fors.hh"
#include "sphincs/params.hh"
#include "sphincs/thash.hh"

using namespace herosign;
using namespace herosign::sphincs;

namespace
{

class ForsTest : public ::testing::TestWithParam<const Params *>
{
  protected:
    const Params &p() const { return *GetParam(); }

    Context
    makeContext(Rng &rng) const
    {
        return Context(p(), rng.bytes(p().n), rng.bytes(p().n));
    }

    Address
    forsAddress() const
    {
        Address a;
        a.setLayer(0);
        a.setTree(77);
        a.setType(AddrType::ForsTree);
        a.setKeypair(3);
        return a;
    }
};

} // namespace

TEST_P(ForsTest, IndicesInRangeAndBitExact)
{
    Rng rng(30);
    ByteVec mhash = rng.bytes(p().forsMsgBytes());
    uint32_t indices[64];
    messageToIndices(indices, p(), mhash.data());

    // Recompute by walking the bitstream.
    size_t bit = 0;
    for (unsigned i = 0; i < p().forsTrees; ++i) {
        uint32_t expected = 0;
        for (unsigned b = 0; b < p().forsHeight; ++b, ++bit) {
            expected = (expected << 1) |
                       ((mhash[bit >> 3] >> (7 - (bit & 7))) & 1u);
        }
        EXPECT_EQ(indices[i], expected) << "tree " << i;
        EXPECT_LT(indices[i], p().forsLeaves());
    }
}

TEST_P(ForsTest, IndicesAllZeroAllOnes)
{
    ByteVec zeros(p().forsMsgBytes(), 0x00);
    ByteVec ones(p().forsMsgBytes(), 0xff);
    uint32_t idx0[64], idx1[64];
    messageToIndices(idx0, p(), zeros.data());
    messageToIndices(idx1, p(), ones.data());
    for (unsigned i = 0; i < p().forsTrees; ++i) {
        EXPECT_EQ(idx0[i], 0u);
        EXPECT_EQ(idx1[i], p().forsLeaves() - 1);
    }
}

TEST_P(ForsTest, SignRecoverRoundtrip)
{
    Rng rng(31);
    Context ctx = makeContext(rng);
    Address adrs = forsAddress();

    ByteVec mhash = rng.bytes(p().forsMsgBytes());
    ByteVec sig(p().forsSigBytes());
    uint8_t pk[maxN];
    forsSign(sig.data(), pk, mhash.data(), ctx, adrs);

    uint8_t recovered[maxN];
    forsPkFromSig(recovered, sig.data(), mhash.data(), ctx, adrs);
    EXPECT_TRUE(ctEqual(ByteSpan(recovered, p().n), ByteSpan(pk, p().n)));
}

TEST_P(ForsTest, TamperedSignatureChangesPk)
{
    Rng rng(32);
    Context ctx = makeContext(rng);
    Address adrs = forsAddress();

    ByteVec mhash = rng.bytes(p().forsMsgBytes());
    ByteVec sig(p().forsSigBytes());
    uint8_t pk[maxN];
    forsSign(sig.data(), pk, mhash.data(), ctx, adrs);

    sig[0] ^= 0x01; // corrupt the first revealed secret value
    uint8_t recovered[maxN];
    forsPkFromSig(recovered, sig.data(), mhash.data(), ctx, adrs);
    EXPECT_FALSE(ctEqual(ByteSpan(recovered, p().n),
                         ByteSpan(pk, p().n)));
}

TEST_P(ForsTest, DifferentMessageDifferentPkRecovery)
{
    Rng rng(33);
    Context ctx = makeContext(rng);
    Address adrs = forsAddress();

    ByteVec mhash = rng.bytes(p().forsMsgBytes());
    ByteVec sig(p().forsSigBytes());
    uint8_t pk[maxN];
    forsSign(sig.data(), pk, mhash.data(), ctx, adrs);

    ByteVec other = mhash;
    other[0] ^= 0x80; // flips the first tree's index
    uint8_t recovered[maxN];
    forsPkFromSig(recovered, sig.data(), other.data(), ctx, adrs);
    EXPECT_FALSE(ctEqual(ByteSpan(recovered, p().n),
                         ByteSpan(pk, p().n)));
}

TEST_P(ForsTest, SkGenDistinctPerIndex)
{
    Rng rng(34);
    Context ctx = makeContext(rng);
    Address adrs = forsAddress();

    uint8_t sk0[maxN], sk1[maxN];
    forsSkGen(sk0, ctx, adrs, 0);
    forsSkGen(sk1, ctx, adrs, 1);
    EXPECT_FALSE(ctEqual(ByteSpan(sk0, p().n), ByteSpan(sk1, p().n)));
}

TEST_P(ForsTest, LeafIsThashOfSk)
{
    Rng rng(35);
    Context ctx = makeContext(rng);
    Address adrs = forsAddress();

    const uint32_t idx = 5;
    uint8_t sk[maxN];
    forsSkGen(sk, ctx, adrs, idx);

    Address leaf_adrs = adrs;
    leaf_adrs.setTreeHeight(0);
    leaf_adrs.setTreeIndex(idx);
    uint8_t expected[maxN];
    thashF(expected, ctx, leaf_adrs, sk);

    uint8_t leaf[maxN];
    forsGenLeaf(leaf, ctx, adrs, idx);
    EXPECT_TRUE(ctEqual(ByteSpan(leaf, p().n),
                        ByteSpan(expected, p().n)));
}

INSTANTIATE_TEST_SUITE_P(AllSets, ForsTest,
    ::testing::Values(&Params::sphincs128f(), &Params::sphincs192f(),
                      &Params::sphincs256f()),
    [](const ::testing::TestParamInfo<const Params *> &info) {
        std::string name = info.param->name;
        return name.substr(name.find('-') + 1);
    });
