/**
 * @file
 * ADRS layout tests: field placement, compression, type-change
 * semantics.
 */

#include <gtest/gtest.h>

#include "sphincs/address.hh"

using namespace herosign;
using namespace herosign::sphincs;

TEST(Address, DefaultIsZero)
{
    Address a;
    for (uint8_t b : a.full())
        EXPECT_EQ(b, 0);
}

TEST(Address, FieldPlacement)
{
    Address a;
    a.setLayer(0x0a);
    a.setTree(0x0102030405060708ULL);
    a.setType(AddrType::WotsHash);
    a.setKeypair(0x11223344);
    a.setChain(0x55667788);
    a.setHash(0x99aabbcc);

    ByteSpan f = a.full();
    EXPECT_EQ(f[3], 0x0a);           // layer low byte
    EXPECT_EQ(f[8], 0x01);           // tree high byte (of low 8)
    EXPECT_EQ(f[15], 0x08);          // tree low byte
    EXPECT_EQ(f[19], 0x00);          // type = WotsHash = 0
    EXPECT_EQ(f[20], 0x11);          // keypair
    EXPECT_EQ(f[24], 0x55);          // chain
    EXPECT_EQ(f[28], 0x99);          // hash

    EXPECT_EQ(a.layer(), 0x0au);
    EXPECT_EQ(a.tree(), 0x0102030405060708ULL);
    EXPECT_EQ(a.keypair(), 0x11223344u);
    EXPECT_EQ(a.chain(), 0x55667788u);
    EXPECT_EQ(a.hash(), 0x99aabbccu);
}

TEST(Address, SetTypeClearsTypeSpecificWords)
{
    Address a;
    a.setType(AddrType::WotsHash);
    a.setKeypair(7);
    a.setChain(8);
    a.setHash(9);
    a.setType(AddrType::Tree);
    EXPECT_EQ(a.keypair(), 0u);
    EXPECT_EQ(a.treeHeight(), 0u);
    EXPECT_EQ(a.treeIndex(), 0u);
    EXPECT_EQ(a.type(), AddrType::Tree);
}

TEST(Address, SetTypePreservesLayerAndTree)
{
    Address a;
    a.setLayer(3);
    a.setTree(42);
    a.setType(AddrType::ForsTree);
    EXPECT_EQ(a.layer(), 3u);
    EXPECT_EQ(a.tree(), 42u);
}

TEST(Address, CompressedLayout)
{
    Address a;
    a.setLayer(0x0b);
    a.setTree(0x1122334455667788ULL);
    a.setType(AddrType::ForsTree);
    a.setKeypair(5);
    a.setTreeHeight(2);
    a.setTreeIndex(0xdeadbeef);

    auto c = a.compressed();
    ASSERT_EQ(c.size(), 22u);
    EXPECT_EQ(c[0], 0x0b);                        // layer
    EXPECT_EQ(c[1], 0x11);                        // tree[0]
    EXPECT_EQ(c[8], 0x88);                        // tree[7]
    EXPECT_EQ(c[9], static_cast<uint8_t>(AddrType::ForsTree));
    EXPECT_EQ(c[10], 0x00);                       // keypair BE
    EXPECT_EQ(c[13], 0x05);
    EXPECT_EQ(c[14], 0x00);                       // height BE
    EXPECT_EQ(c[17], 0x02);
    EXPECT_EQ(c[18], 0xde);                       // index BE
    EXPECT_EQ(c[21], 0xef);
}

TEST(Address, CompressedDistinguishesTypes)
{
    Address a, b;
    a.setType(AddrType::WotsPrf);
    b.setType(AddrType::ForsPrf);
    EXPECT_NE(a.compressed(), b.compressed());
}

TEST(Address, CopySubtree)
{
    Address src;
    src.setLayer(2);
    src.setTree(99);
    src.setType(AddrType::WotsHash);
    src.setKeypair(4);

    Address dst;
    dst.setType(AddrType::Tree);
    dst.setTreeIndex(77);
    dst.copySubtree(src);

    EXPECT_EQ(dst.layer(), 2u);
    EXPECT_EQ(dst.tree(), 99u);
    EXPECT_EQ(dst.type(), AddrType::Tree);   // type untouched
    EXPECT_EQ(dst.treeIndex(), 77u);         // payload untouched
}

TEST(Address, CopyKeypair)
{
    Address src;
    src.setLayer(1);
    src.setTree(5);
    src.setType(AddrType::WotsHash);
    src.setKeypair(123);

    Address dst;
    dst.setType(AddrType::WotsPrf);
    dst.copyKeypair(src);

    EXPECT_EQ(dst.layer(), 1u);
    EXPECT_EQ(dst.tree(), 5u);
    EXPECT_EQ(dst.keypair(), 123u);
    EXPECT_EQ(dst.type(), AddrType::WotsPrf);
}

TEST(Address, Equality)
{
    Address a, b;
    a.setLayer(1);
    b.setLayer(1);
    EXPECT_TRUE(a == b);
    b.setTree(2);
    EXPECT_FALSE(a == b);
}
