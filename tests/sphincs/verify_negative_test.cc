/**
 * @file
 * Negative verification coverage: for every Table I parameter set,
 * flip a bit in every n-byte block of a golden signature — the
 * randomizer, each FORS secret value and auth-path node, every WOTS+
 * chain of every hypertree layer, and every hypertree auth-path node
 * — and assert that the scalar verifier and the batched lane-parallel
 * verifier both reject, and always agree. Valid lanes interleaved
 * into every batched group prove corruption cannot leak across lanes.
 */

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "sphincs/sphincs.hh"

using namespace herosign;
using namespace herosign::sphincs;

namespace
{

/** Human-readable region of the n-byte block at @p block_idx. */
std::string
regionOf(const Params &p, size_t block_idx)
{
    if (block_idx == 0)
        return "randomizer R";
    size_t b = block_idx - 1;

    const size_t fors_tree_blocks = p.forsHeight + 1;
    if (b < static_cast<size_t>(p.forsTrees) * fors_tree_blocks) {
        const size_t tree = b / fors_tree_blocks;
        const size_t off = b % fors_tree_blocks;
        return "FORS tree " + std::to_string(tree) +
               (off == 0 ? " sk" : " auth " + std::to_string(off - 1));
    }
    b -= static_cast<size_t>(p.forsTrees) * fors_tree_blocks;

    const size_t layer_blocks = p.wotsLen() + p.treeHeight();
    const size_t layer = b / layer_blocks;
    const size_t off = b % layer_blocks;
    if (off < p.wotsLen())
        return "layer " + std::to_string(layer) + " WOTS chain " +
               std::to_string(off);
    return "layer " + std::to_string(layer) + " auth " +
           std::to_string(off - p.wotsLen());
}

class VerifyNegative : public ::testing::TestWithParam<const Params *>
{
};

} // namespace

TEST_P(VerifyNegative, EveryCorruptedRegionRejectsOnBothPaths)
{
    const Params &p = *GetParam();
    SphincsPlus scheme(p);
    ByteVec seed(3 * p.n);
    std::iota(seed.begin(), seed.end(), static_cast<uint8_t>(0));
    auto kp = scheme.keygenFromSeed(seed);

    const std::string txt = "HERO-Sign golden vector";
    const ByteVec msg(txt.begin(), txt.end());
    const ByteVec good = scheme.sign(msg, kp.sk);
    ASSERT_EQ(good.size(), p.sigBytes());
    ASSERT_TRUE(scheme.verify(msg, good, kp.pk));

    const size_t blocks = p.sigBytes() / p.n;
    ASSERT_EQ(blocks,
              1 + static_cast<size_t>(p.forsTrees) * (p.forsHeight + 1) +
                  static_cast<size_t>(p.layers) *
                      (p.wotsLen() + p.treeHeight()));

    Context ctx(p, kp.pk.pkSeed, {});
    ByteVec flipped = good;
    std::vector<ByteVec> group_store;
    std::vector<size_t> group_blocks;
    group_store.reserve(7);

    auto flush_group = [&] {
        if (group_store.empty())
            return;
        // One valid lane rides in every batched group: corruption in
        // sibling lanes must not leak into it (or vice versa).
        std::vector<ByteSpan> msgs(group_store.size() + 1, ByteSpan(msg));
        std::vector<ByteSpan> sigs(group_store.size() + 1);
        for (size_t i = 0; i < group_store.size(); ++i)
            sigs[i] = ByteSpan(group_store[i]);
        sigs.back() = ByteSpan(good);
        std::unique_ptr<bool[]> ok(new bool[sigs.size()]);
        scheme.verifyBatch(ctx, msgs.data(), sigs.data(), kp.pk,
                           ok.get(), sigs.size());
        for (size_t i = 0; i < group_store.size(); ++i)
            EXPECT_FALSE(ok[i])
                << p.name << ": batched verify accepted corrupted "
                << regionOf(p, group_blocks[i]);
        EXPECT_TRUE(ok[group_store.size()])
            << p.name << ": valid lane rejected in corrupted company";
        group_store.clear();
        group_blocks.clear();
    };

    for (size_t b = 0; b < blocks; ++b) {
        const size_t byte = b * p.n;
        flipped[byte] ^= 0x01;
        EXPECT_FALSE(scheme.verify(ctx, msg, flipped, kp.pk))
            << p.name << ": scalar verify accepted corrupted "
            << regionOf(p, b);
        group_store.push_back(flipped);
        group_blocks.push_back(b);
        if (group_store.size() == 7)
            flush_group();
        flipped[byte] ^= 0x01; // restore
    }
    flush_group();

    // Length corruption rejects on both paths too.
    ByteVec shorter(good.begin(), good.end() - 1);
    ByteVec longer = good;
    longer.push_back(0);
    EXPECT_FALSE(scheme.verify(msg, shorter, kp.pk));
    EXPECT_FALSE(scheme.verify(msg, longer, kp.pk));
    ByteSpan m(msg);
    ByteSpan bad_sigs[2] = {ByteSpan(shorter), ByteSpan(longer)};
    ByteSpan msgs2[2] = {m, m};
    bool ok2[2] = {true, true};
    scheme.verifyBatch(ctx, msgs2, bad_sigs, kp.pk, ok2, 2);
    EXPECT_FALSE(ok2[0]);
    EXPECT_FALSE(ok2[1]);
}

INSTANTIATE_TEST_SUITE_P(TableI, VerifyNegative,
                         ::testing::Values(&Params::sphincs128f(),
                                           &Params::sphincs192f(),
                                           &Params::sphincs256f()),
                         [](const auto &info) {
                             return info.param->name.substr(
                                 info.param->name.find('-') + 1);
                         });
