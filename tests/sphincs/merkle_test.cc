/**
 * @file
 * Treehash / auth-path / computeRoot algebra, with a synthetic leaf
 * function so trees of several heights can be exercised cheaply, plus
 * the real wots_gen_leaf path.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "sphincs/merkle.hh"
#include "sphincs/params.hh"
#include "sphincs/thash.hh"
#include "sphincs/wots.hh"

using namespace herosign;
using namespace herosign::sphincs;

namespace
{

Context
makeContext(Rng &rng, const Params &p)
{
    return Context(p, rng.bytes(p.n), rng.bytes(p.n));
}

/** Deterministic synthetic leaf: F(index bytes) under a Tree address. */
LeafFn
syntheticLeaf(const Context &ctx, uint32_t idx_offset)
{
    return [&ctx, idx_offset](uint8_t *out, uint32_t idx) {
        uint8_t seed[maxN] = {};
        storeBe32(seed, idx + idx_offset);
        Address a;
        a.setType(AddrType::ForsTree);
        a.setTreeHeight(0);
        a.setTreeIndex(idx + idx_offset);
        thashF(out, ctx, a, seed);
    };
}

} // namespace

class TreehashProperty
    : public ::testing::TestWithParam<std::tuple<unsigned, uint32_t>>
{
};

TEST_P(TreehashProperty, AuthPathReconstructsRoot)
{
    const auto [height, leaf_pick] = GetParam();
    const Params &p = Params::sphincs128f();
    Rng rng(40 + height);
    Context ctx = makeContext(rng, p);

    const uint32_t leaves = 1u << height;
    const uint32_t leaf_idx = leaf_pick % leaves;

    Address tree_adrs;
    tree_adrs.setType(AddrType::ForsTree);

    auto leaf_fn = syntheticLeaf(ctx, 0);

    ByteVec auth(height * p.n);
    uint8_t root[maxN];
    treehash(root, auth.data(), ctx, leaf_idx, 0, height, leaf_fn,
             tree_adrs);

    uint8_t leaf[maxN];
    leaf_fn(leaf, leaf_idx);

    Address verify_adrs;
    verify_adrs.setType(AddrType::ForsTree);
    uint8_t rebuilt[maxN];
    computeRoot(rebuilt, ctx, leaf, leaf_idx, 0, auth.data(), height,
                verify_adrs);

    EXPECT_TRUE(ctEqual(ByteSpan(rebuilt, p.n), ByteSpan(root, p.n)));
}

INSTANTIATE_TEST_SUITE_P(HeightsAndLeaves, TreehashProperty,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 6u),
                       ::testing::Values(0u, 1u, 2u, 5u, 7u, 12u, 63u)));

TEST(Treehash, RootIndependentOfAuthLeaf)
{
    const Params &p = Params::sphincs128f();
    Rng rng(50);
    Context ctx = makeContext(rng, p);

    Address adrs_a, adrs_b;
    adrs_a.setType(AddrType::ForsTree);
    adrs_b.setType(AddrType::ForsTree);

    auto leaf_fn = syntheticLeaf(ctx, 0);
    const unsigned height = 4;

    ByteVec auth(height * p.n);
    uint8_t root_a[maxN], root_b[maxN];
    treehash(root_a, auth.data(), ctx, 3, 0, height, leaf_fn, adrs_a);
    treehash(root_b, auth.data(), ctx, 11, 0, height, leaf_fn, adrs_b);
    EXPECT_TRUE(ctEqual(ByteSpan(root_a, p.n), ByteSpan(root_b, p.n)));
}

TEST(Treehash, NullAuthPathAllowed)
{
    const Params &p = Params::sphincs128f();
    Rng rng(51);
    Context ctx = makeContext(rng, p);
    Address adrs;
    adrs.setType(AddrType::ForsTree);
    uint8_t root[maxN];
    auto leaf_fn = syntheticLeaf(ctx, 0);
    EXPECT_NO_THROW(
        treehash(root, nullptr, ctx, 0, 0, 3, leaf_fn, adrs));
}

TEST(Treehash, IdxOffsetChangesRoot)
{
    // FORS trees differ only by their index offset; the roots must
    // differ even for identical leaf contents ordering.
    const Params &p = Params::sphincs128f();
    Rng rng(52);
    Context ctx = makeContext(rng, p);

    Address a1, a2;
    a1.setType(AddrType::ForsTree);
    a2.setType(AddrType::ForsTree);

    uint8_t r1[maxN], r2[maxN];
    treehash(r1, nullptr, ctx, 0, 0, 3, syntheticLeaf(ctx, 0), a1);
    treehash(r2, nullptr, ctx, 0, 8, 3, syntheticLeaf(ctx, 8), a2);
    EXPECT_FALSE(ctEqual(ByteSpan(r1, p.n), ByteSpan(r2, p.n)));
}

TEST(MerkleSign, RootMatchesComputeRootThroughWots)
{
    const Params &p = Params::sphincs128f();
    Rng rng(53);
    Context ctx = makeContext(rng, p);

    const uint32_t layer = 1;
    const uint64_t tree = 9;
    const uint32_t leaf_idx = 5;

    ByteVec msg = rng.bytes(p.n);
    ByteVec sig(p.xmssSigBytes());
    uint8_t root[maxN];
    merkleSign(sig.data(), root, ctx, layer, tree, leaf_idx, msg.data());

    // Verify side: recover the WOTS pk, then climb the auth path.
    Address wots_adrs;
    wots_adrs.setLayer(layer);
    wots_adrs.setTree(tree);
    wots_adrs.setType(AddrType::WotsHash);
    wots_adrs.setKeypair(leaf_idx);

    uint8_t leaf[maxN];
    wotsPkFromSig(leaf, sig.data(), msg.data(), ctx, wots_adrs);

    Address tree_adrs;
    tree_adrs.setLayer(layer);
    tree_adrs.setTree(tree);
    tree_adrs.setType(AddrType::Tree);

    uint8_t rebuilt[maxN];
    computeRoot(rebuilt, ctx, leaf, leaf_idx, 0,
                sig.data() + p.wotsSigBytes(), p.treeHeight(), tree_adrs);
    EXPECT_TRUE(ctEqual(ByteSpan(rebuilt, p.n), ByteSpan(root, p.n)));
}

TEST(MerkleSign, WotsGenLeafMatchesPkGen)
{
    const Params &p = Params::sphincs128f();
    Rng rng(54);
    Context ctx = makeContext(rng, p);

    uint8_t leaf[maxN];
    wotsGenLeaf(leaf, ctx, 2, 4, 1);

    Address adrs;
    adrs.setLayer(2);
    adrs.setTree(4);
    adrs.setType(AddrType::WotsHash);
    adrs.setKeypair(1);
    uint8_t pk[maxN];
    wotsPkGen(pk, ctx, adrs);

    EXPECT_TRUE(ctEqual(ByteSpan(leaf, p.n), ByteSpan(pk, p.n)));
}
