/**
 * @file
 * Generality tests on custom (non-standard) parameter sets: the
 * library is not hard-wired to the three -f presets. Small sets make
 * exhaustive end-to-end checks cheap, including cross-validation of
 * the GPU-simulated engine against the scalar reference.
 */

#include <gtest/gtest.h>

#include "common/hex.hh"
#include "common/random.hh"
#include "core/engine.hh"
#include "sphincs/sphincs.hh"

using namespace herosign;
using namespace herosign::sphincs;

namespace
{

Params
miniParams(unsigned n, unsigned h, unsigned d, unsigned a, unsigned k)
{
    Params p;
    p.name = "mini-" + std::to_string(n * 8) + "-" + std::to_string(h);
    p.n = n;
    p.fullHeight = h;
    p.layers = d;
    p.forsHeight = a;
    p.forsTrees = k;
    p.wotsW = 16;
    return p;
}

} // namespace

class CustomParams : public ::testing::TestWithParam<Params>
{
};

TEST_P(CustomParams, Validates)
{
    EXPECT_NO_THROW(GetParam().validate());
}

TEST_P(CustomParams, SignVerifyRoundtrip)
{
    const Params p = GetParam();
    SphincsPlus scheme(p);
    Rng rng(808);
    auto kp = scheme.keygen(rng);
    ByteVec msg = rng.bytes(24);
    ByteVec sig = scheme.sign(msg, kp.sk);
    EXPECT_EQ(sig.size(), p.sigBytes());
    EXPECT_TRUE(scheme.verify(msg, sig, kp.pk));
    msg[0] ^= 1;
    EXPECT_FALSE(scheme.verify(msg, sig, kp.pk));
}

TEST_P(CustomParams, ManyMessagesAllVerify)
{
    const Params p = GetParam();
    SphincsPlus scheme(p);
    Rng rng(809);
    auto kp = scheme.keygen(rng);
    for (int i = 0; i < 8; ++i) {
        ByteVec msg = rng.bytes(1 + i * 3);
        ByteVec sig = scheme.sign(msg, kp.sk);
        EXPECT_TRUE(scheme.verify(msg, sig, kp.pk)) << "msg " << i;
    }
}

TEST_P(CustomParams, EngineMatchesReference)
{
    const Params p = GetParam();
    SphincsPlus scheme(p);
    Rng rng(810);
    auto kp = scheme.keygen(rng);
    ByteVec msg = rng.bytes(16);

    core::SignEngine engine(p, gpu::DeviceProps::rtx4090(),
                            core::EngineConfig::hero());
    auto outcome = engine.sign(msg, kp.sk);
    EXPECT_EQ(hexEncode(outcome.signature),
              hexEncode(scheme.sign(msg, kp.sk)))
        << p.name;
    EXPECT_TRUE(scheme.verify(msg, outcome.signature, kp.pk));
}

TEST_P(CustomParams, BaselineEngineMatchesReference)
{
    const Params p = GetParam();
    SphincsPlus scheme(p);
    Rng rng(811);
    auto kp = scheme.keygen(rng);
    ByteVec msg = rng.bytes(8);

    core::SignEngine engine(p, gpu::DeviceProps::rtx2080ti(),
                            core::EngineConfig::baseline());
    auto outcome = engine.sign(msg, kp.sk);
    EXPECT_EQ(hexEncode(outcome.signature),
              hexEncode(scheme.sign(msg, kp.sk)))
        << p.name;
}

INSTANTIATE_TEST_SUITE_P(MiniSets, CustomParams,
    ::testing::Values(
        // n, h, d, a, k — small hypertrees and forests.
        miniParams(16, 6, 3, 4, 8),
        miniParams(16, 8, 4, 5, 6),
        miniParams(24, 6, 2, 4, 10),
        miniParams(32, 8, 2, 6, 4),
        miniParams(16, 9, 3, 6, 33),
        miniParams(24, 10, 5, 8, 3)),
    [](const ::testing::TestParamInfo<Params> &info) {
        std::string n = info.param.name;
        for (auto &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

TEST(CustomParams, SignatureSizeScalesWithParameters)
{
    // More FORS trees, taller hypertrees, larger n -> strictly larger
    // signatures.
    Params small = miniParams(16, 6, 3, 4, 8);
    Params more_trees = miniParams(16, 6, 3, 4, 12);
    Params taller = miniParams(16, 9, 3, 4, 8);
    Params wider = miniParams(24, 6, 3, 4, 8);
    EXPECT_LT(small.sigBytes(), more_trees.sigBytes());
    EXPECT_LT(small.sigBytes(), taller.sigBytes());
    EXPECT_LT(small.sigBytes(), wider.sigBytes());
}

TEST(CustomParams, CrossSetSignaturesDoNotVerify)
{
    // A signature under one mini set must not verify under another
    // with the same key material length.
    Params a = miniParams(16, 6, 3, 4, 8);
    Params b = miniParams(16, 6, 3, 4, 12);
    SphincsPlus sa(a), sb(b);
    Rng rng(812);
    auto kp = sa.keygen(rng);
    ByteVec msg = rng.bytes(16);
    ByteVec sig = sa.sign(msg, kp.sk);

    PublicKey pk_b;
    pk_b.params = b;
    pk_b.pkSeed = kp.pk.pkSeed;
    pk_b.pkRoot = kp.pk.pkRoot;
    EXPECT_FALSE(sb.verify(msg, sig, pk_b)); // wrong length: rejected
}
