/**
 * @file
 * Full-scheme tests: keygen determinism, sign/verify roundtrips for
 * all parameter sets, negative verification paths, digest splitting,
 * and key serialization.
 */

#include <gtest/gtest.h>

#include "common/hex.hh"
#include "common/random.hh"
#include "sphincs/sphincs.hh"

using namespace herosign;
using namespace herosign::sphincs;

namespace
{

class SphincsRoundtrip : public ::testing::TestWithParam<const Params *>
{
  protected:
    const Params &p() const { return *GetParam(); }
};

} // namespace

TEST_P(SphincsRoundtrip, SignVerify)
{
    SphincsPlus scheme(p());
    Rng rng(60);
    KeyPair kp = scheme.keygen(rng);

    ByteVec msg = rng.bytes(64);
    ByteVec sig = scheme.sign(msg, kp.sk);
    EXPECT_EQ(sig.size(), p().sigBytes());
    EXPECT_TRUE(scheme.verify(msg, sig, kp.pk));
}

TEST_P(SphincsRoundtrip, TamperedMessageFails)
{
    SphincsPlus scheme(p());
    Rng rng(61);
    KeyPair kp = scheme.keygen(rng);

    ByteVec msg = rng.bytes(32);
    ByteVec sig = scheme.sign(msg, kp.sk);
    msg[5] ^= 0x01;
    EXPECT_FALSE(scheme.verify(msg, sig, kp.pk));
}

TEST_P(SphincsRoundtrip, TamperedSignatureFails)
{
    SphincsPlus scheme(p());
    Rng rng(62);
    KeyPair kp = scheme.keygen(rng);

    ByteVec msg = rng.bytes(32);
    ByteVec sig = scheme.sign(msg, kp.sk);

    // Corrupt one byte in several structurally distinct regions.
    const size_t offsets[] = {
        0,                                   // randomizer R
        p().n + 1,                           // FORS secret value
        p().n + p().forsSigBytes() + 3,      // first WOTS sig
        sig.size() - 1,                      // last auth path node
    };
    for (size_t off : offsets) {
        ByteVec bad = sig;
        bad[off] ^= 0x80;
        EXPECT_FALSE(scheme.verify(msg, bad, kp.pk)) << "offset " << off;
    }
}

TEST_P(SphincsRoundtrip, WrongPublicKeyFails)
{
    SphincsPlus scheme(p());
    Rng rng(63);
    KeyPair kp = scheme.keygen(rng);
    KeyPair other = scheme.keygen(rng);

    ByteVec msg = rng.bytes(32);
    ByteVec sig = scheme.sign(msg, kp.sk);
    EXPECT_FALSE(scheme.verify(msg, sig, other.pk));
}

TEST_P(SphincsRoundtrip, WrongLengthSignatureRejected)
{
    SphincsPlus scheme(p());
    Rng rng(64);
    KeyPair kp = scheme.keygen(rng);
    ByteVec msg = rng.bytes(16);
    ByteVec sig = scheme.sign(msg, kp.sk);

    ByteVec truncated(sig.begin(), sig.end() - 1);
    EXPECT_FALSE(scheme.verify(msg, truncated, kp.pk));
    ByteVec extended = sig;
    extended.push_back(0);
    EXPECT_FALSE(scheme.verify(msg, extended, kp.pk));
    EXPECT_FALSE(scheme.verify(msg, {}, kp.pk));
}

TEST_P(SphincsRoundtrip, EmptyMessageSigns)
{
    SphincsPlus scheme(p());
    Rng rng(65);
    KeyPair kp = scheme.keygen(rng);
    ByteVec sig = scheme.sign({}, kp.sk);
    EXPECT_TRUE(scheme.verify({}, sig, kp.pk));
}

INSTANTIATE_TEST_SUITE_P(AllSets, SphincsRoundtrip,
    ::testing::Values(&Params::sphincs128f(), &Params::sphincs192f(),
                      &Params::sphincs256f()),
    [](const ::testing::TestParamInfo<const Params *> &info) {
        std::string name = info.param->name;
        return name.substr(name.find('-') + 1);
    });

TEST(Sphincs, KeygenDeterministicFromSeed)
{
    const Params &p = Params::sphincs128f();
    SphincsPlus scheme(p);
    ByteVec seed(3 * p.n, 0x42);
    KeyPair a = scheme.keygenFromSeed(seed);
    KeyPair b = scheme.keygenFromSeed(seed);
    EXPECT_EQ(hexEncode(a.pk.pkRoot), hexEncode(b.pk.pkRoot));
    EXPECT_EQ(hexEncode(a.sk.encode()), hexEncode(b.sk.encode()));
}

TEST(Sphincs, DeterministicSignatures)
{
    const Params &p = Params::sphincs128f();
    SphincsPlus scheme(p);
    Rng rng(70);
    KeyPair kp = scheme.keygen(rng);
    ByteVec msg = rng.bytes(20);

    ByteVec s1 = scheme.sign(msg, kp.sk);
    ByteVec s2 = scheme.sign(msg, kp.sk);
    EXPECT_EQ(hexEncode(s1), hexEncode(s2));
}

TEST(Sphincs, RandomizedSignaturesDifferButVerify)
{
    const Params &p = Params::sphincs128f();
    SphincsPlus scheme(p);
    Rng rng(71);
    KeyPair kp = scheme.keygen(rng);
    ByteVec msg = rng.bytes(20);

    ByteVec r1 = rng.bytes(p.n);
    ByteVec r2 = rng.bytes(p.n);
    ByteVec s1 = scheme.sign(msg, kp.sk, r1);
    ByteVec s2 = scheme.sign(msg, kp.sk, r2);
    EXPECT_NE(hexEncode(s1), hexEncode(s2));
    EXPECT_TRUE(scheme.verify(msg, s1, kp.pk));
    EXPECT_TRUE(scheme.verify(msg, s2, kp.pk));
}

TEST(Sphincs, PtxVariantProducesIdenticalSignatures)
{
    const Params &p = Params::sphincs128f();
    SphincsPlus native(p, Sha256Variant::Native);
    SphincsPlus ptx(p, Sha256Variant::Ptx);

    ByteVec seed(3 * p.n, 0x17);
    KeyPair kn = native.keygenFromSeed(seed);
    KeyPair kx = ptx.keygenFromSeed(seed);
    EXPECT_EQ(hexEncode(kn.pk.pkRoot), hexEncode(kx.pk.pkRoot));

    ByteVec msg{'m', 's', 'g'};
    EXPECT_EQ(hexEncode(native.sign(msg, kn.sk)),
              hexEncode(ptx.sign(msg, kx.sk)));
}

TEST(Sphincs, KeySerializationRoundtrip)
{
    const Params &p = Params::sphincs192f();
    SphincsPlus scheme(p);
    Rng rng(72);
    KeyPair kp = scheme.keygen(rng);

    ByteVec sk_bytes = kp.sk.encode();
    EXPECT_EQ(sk_bytes.size(), p.skBytes());
    SecretKey sk2 = SecretKey::decode(p, sk_bytes);
    EXPECT_EQ(hexEncode(sk2.encode()), hexEncode(sk_bytes));

    ByteVec pk_bytes = kp.pk.encode();
    EXPECT_EQ(pk_bytes.size(), p.pkBytes());
    PublicKey pk2 = PublicKey::decode(p, pk_bytes);
    EXPECT_EQ(hexEncode(pk2.encode()), hexEncode(pk_bytes));

    // A decoded key still verifies signatures.
    ByteVec msg = rng.bytes(10);
    ByteVec sig = scheme.sign(msg, sk2);
    EXPECT_TRUE(scheme.verify(msg, sig, pk2));
}

TEST(Sphincs, DecodeRejectsWrongLength)
{
    const Params &p = Params::sphincs128f();
    ByteVec bad(p.skBytes() + 1, 0);
    EXPECT_THROW(SecretKey::decode(p, bad), std::invalid_argument);
    EXPECT_THROW(PublicKey::decode(p, bad), std::invalid_argument);
}

TEST(Sphincs, SplitDigestBitExact)
{
    const Params &p = Params::sphincs128f();
    ByteVec digest(p.msgDigestBytes(), 0xff);
    DigestSplit s = splitDigest(p, digest);
    EXPECT_EQ(s.forsMsg.size(), p.forsMsgBytes());
    // 63 tree bits, all ones.
    EXPECT_EQ(s.idxTree, (1ULL << 63) - 1);
    // 3 leaf bits, all ones.
    EXPECT_EQ(s.idxLeaf, 7u);

    ByteVec zeros(p.msgDigestBytes(), 0x00);
    DigestSplit z = splitDigest(p, zeros);
    EXPECT_EQ(z.idxTree, 0u);
    EXPECT_EQ(z.idxLeaf, 0u);
}

TEST(Sphincs, SplitDigest256fUses64TreeBits)
{
    const Params &p = Params::sphincs256f();
    ByteVec digest(p.msgDigestBytes(), 0xff);
    DigestSplit s = splitDigest(p, digest);
    EXPECT_EQ(s.idxTree, ~0ULL);
    EXPECT_EQ(s.idxLeaf, 15u);
}

TEST(Sphincs, SplitDigestRejectsShortInput)
{
    const Params &p = Params::sphincs128f();
    ByteVec digest(p.msgDigestBytes() - 1, 0);
    EXPECT_THROW(splitDigest(p, digest), std::invalid_argument);
}

TEST(Sphincs, SignRejectsBadOptRand)
{
    const Params &p = Params::sphincs128f();
    SphincsPlus scheme(p);
    Rng rng(73);
    KeyPair kp = scheme.keygen(rng);
    ByteVec msg = rng.bytes(8);
    ByteVec bad_rand(p.n + 1, 0);
    EXPECT_THROW(scheme.sign(msg, kp.sk, bad_rand),
                 std::invalid_argument);
}
