/**
 * @file
 * Batched tweakable-hash layer tests: thashFX/prfAddrX against the
 * scalar calls (full, partial and 16-lane batches), the batched
 * WOTS+/FORS leaf generators against scalar reconstructions from the
 * remaining scalar building blocks, batched-vs-scalar treehash, and
 * end-to-end sign/verify byte-equality plus compression-count parity
 * across the AVX-512 (width 16), AVX2 (width 8) and portable
 * backends.
 */

#include <gtest/gtest.h>

#include "common/hex.hh"
#include "common/random.hh"
#include "hash/sha256xN.hh"
#include "sphincs/fors.hh"
#include "sphincs/merkle.hh"
#include "sphincs/sphincs.hh"
#include "sphincs/thashx.hh"
#include "sphincs/wots.hh"

using namespace herosign;
using namespace herosign::sphincs;

namespace
{

Context
makeContext(const Params &p, uint64_t seed)
{
    Rng rng(seed);
    ByteVec pk_seed = rng.bytes(p.n);
    ByteVec sk_seed = rng.bytes(p.n);
    return Context(p, pk_seed, sk_seed);
}

TEST(ThashX, FullBatchMatchesScalarF)
{
    const Params &p = Params::sphincs128f();
    Context ctx = makeContext(p, 1);
    Rng rng(2);

    Address adrs[maxHashLanes];
    ByteVec inputs[maxHashLanes];
    const uint8_t *ins[maxHashLanes];
    uint8_t out[maxHashLanes][maxN];
    uint8_t *outs[maxHashLanes];
    for (unsigned l = 0; l < maxHashLanes; ++l) {
        adrs[l].setLayer(l);
        adrs[l].setTree(100 + l);
        adrs[l].setType(AddrType::WotsHash);
        adrs[l].setChain(l);
        adrs[l].setHash(2 * l);
        inputs[l] = rng.bytes(p.n);
        ins[l] = inputs[l].data();
        outs[l] = out[l];
    }
    thashFX(outs, ctx, adrs, ins, maxHashLanes);

    for (unsigned l = 0; l < maxHashLanes; ++l) {
        uint8_t expected[maxN];
        thashF(expected, ctx, adrs[l], inputs[l].data());
        EXPECT_EQ(hexEncode(ByteSpan(out[l], p.n)),
                  hexEncode(ByteSpan(expected, p.n)))
            << "lane " << l;
    }
}

TEST(ThashX, PartialBatchesMatchScalar)
{
    const Params &p = Params::sphincs192f();
    Context ctx = makeContext(p, 3);
    Rng rng(4);

    // Every count 1..16 crosses all greedy-split shapes: pure scalar
    // tails, one 8-wide chunk + tail, and the full 16-wide kernel.
    for (unsigned count = 1; count <= maxHashLanes; ++count) {
        Address adrs[maxHashLanes];
        ByteVec inputs[maxHashLanes];
        const uint8_t *ins[maxHashLanes];
        uint8_t out[maxHashLanes][maxN];
        uint8_t *outs[maxHashLanes];
        for (unsigned l = 0; l < count; ++l) {
            adrs[l].setType(AddrType::ForsTree);
            adrs[l].setTreeIndex(count * 100 + l);
            inputs[l] = rng.bytes(p.n);
            ins[l] = inputs[l].data();
            outs[l] = out[l];
        }
        thashFX(outs, ctx, adrs, ins, count);
        for (unsigned l = 0; l < count; ++l) {
            uint8_t expected[maxN];
            thashF(expected, ctx, adrs[l], inputs[l].data());
            EXPECT_EQ(hexEncode(ByteSpan(out[l], p.n)),
                      hexEncode(ByteSpan(expected, p.n)))
                << "count " << count << " lane " << l;
        }
    }
}

TEST(ThashX, BatchCompressionCountsMatchScalar)
{
    const Params &p = Params::sphincs128f();
    Context ctx = makeContext(p, 29);
    Rng rng(30);

    for (unsigned count : {1u, 7u, 8u, 9u, 16u}) {
        Address adrs[maxHashLanes];
        ByteVec inputs[maxHashLanes];
        const uint8_t *ins[maxHashLanes];
        uint8_t out[maxHashLanes][maxN];
        uint8_t *outs[maxHashLanes];
        for (unsigned l = 0; l < count; ++l) {
            adrs[l].setType(AddrType::WotsHash);
            adrs[l].setChain(l);
            inputs[l] = rng.bytes(p.n);
            ins[l] = inputs[l].data();
            outs[l] = out[l];
        }

        Sha256::resetCompressionCount();
        for (unsigned l = 0; l < count; ++l) {
            uint8_t expected[maxN];
            thashF(expected, ctx, adrs[l], inputs[l].data());
        }
        const uint64_t scalar_count = Sha256::compressionCount();

        Sha256::resetCompressionCount();
        thashFX(outs, ctx, adrs, ins, count);
        EXPECT_EQ(Sha256::compressionCount(), scalar_count)
            << "count " << count;
    }
}

TEST(ThashX, LongInputBatchMatchesScalarThash)
{
    const Params &p = Params::sphincs256f();
    Context ctx = makeContext(p, 5);
    Rng rng(6);

    // WOTS pk compression shape: len * n input per lane, at both SIMD
    // widths and a ragged width.
    const size_t in_len = static_cast<size_t>(p.wotsLen()) * p.n;
    for (unsigned count : {8u, 13u, 16u}) {
        Address adrs[maxHashLanes];
        ByteVec inputs[maxHashLanes];
        const uint8_t *ins[maxHashLanes];
        uint8_t out[maxHashLanes][maxN];
        uint8_t *outs[maxHashLanes];
        for (unsigned l = 0; l < count; ++l) {
            adrs[l].setType(AddrType::WotsPk);
            adrs[l].setKeypair(l);
            inputs[l] = rng.bytes(in_len);
            ins[l] = inputs[l].data();
            outs[l] = out[l];
        }
        thashX(outs, ctx, adrs, ins, in_len, count);

        for (unsigned l = 0; l < count; ++l) {
            uint8_t expected[maxN];
            thash(expected, ctx, adrs[l], inputs[l]);
            EXPECT_EQ(hexEncode(ByteSpan(out[l], p.n)),
                      hexEncode(ByteSpan(expected, p.n)))
                << "count " << count << " lane " << l;
        }
    }
}

TEST(ThashX, PrfBatchMatchesScalar)
{
    const Params &p = Params::sphincs128f();
    Context ctx = makeContext(p, 7);

    Address adrs[maxHashLanes];
    uint8_t out[maxHashLanes][maxN];
    uint8_t *outs[maxHashLanes];
    for (unsigned l = 0; l < maxHashLanes; ++l) {
        adrs[l].setType(AddrType::WotsPrf);
        adrs[l].setKeypair(3);
        adrs[l].setChain(l);
        outs[l] = out[l];
    }
    prfAddrX(outs, ctx, adrs, maxHashLanes);

    for (unsigned l = 0; l < maxHashLanes; ++l) {
        uint8_t expected[maxN];
        prfAddr(expected, ctx, adrs[l]);
        EXPECT_EQ(hexEncode(ByteSpan(out[l], p.n)),
                  hexEncode(ByteSpan(expected, p.n)));
    }
}

TEST(ThashX, RejectsBadCounts)
{
    const Params &p = Params::sphincs128f();
    Context ctx = makeContext(p, 8);
    Address adrs[1];
    uint8_t buf[maxN];
    uint8_t *outs[1] = {buf};
    const uint8_t *ins[1] = {buf};
    EXPECT_THROW(thashX(outs, ctx, adrs, ins, p.n, 0),
                 std::invalid_argument);
    EXPECT_THROW(thashX(outs, ctx, adrs, ins, p.n, maxHashLanes + 1),
                 std::invalid_argument);
}

/**
 * Reference WOTS+ leaf built only from the scalar building blocks
 * (wotsChainSk + genChain + thash), mirroring the pre-batching
 * implementation.
 */
void
scalarWotsLeaf(uint8_t *pk_out, const Context &ctx, uint32_t layer,
               uint64_t tree, uint32_t keypair)
{
    const Params &p = ctx.params();
    const unsigned len = p.wotsLen();
    const unsigned n = p.n;

    Address prf_adrs;
    prf_adrs.setLayer(layer);
    prf_adrs.setTree(tree);
    prf_adrs.setType(AddrType::WotsPrf);
    prf_adrs.setKeypair(keypair);
    Address hash_adrs;
    hash_adrs.setLayer(layer);
    hash_adrs.setTree(tree);
    hash_adrs.setType(AddrType::WotsHash);
    hash_adrs.setKeypair(keypair);

    uint8_t chains[maxWotsLen * maxN];
    for (unsigned i = 0; i < len; ++i) {
        uint8_t sk[maxN];
        wotsChainSk(sk, ctx, prf_adrs, i);
        hash_adrs.setChain(i);
        genChain(chains + i * n, sk, 0, p.wotsW - 1, ctx, hash_adrs);
    }

    Address pk_adrs;
    pk_adrs.setLayer(layer);
    pk_adrs.setTree(tree);
    pk_adrs.setType(AddrType::WotsPk);
    pk_adrs.setKeypair(keypair);
    thash(pk_out, ctx, pk_adrs, ByteSpan(chains, len * n));
}

TEST(BatchedLeaves, WotsPkGenXNMatchesScalarComposition)
{
    for (const Params *pp : {&Params::sphincs128f(),
                             &Params::sphincs192f(),
                             &Params::sphincs256f()}) {
        const Params &p = *pp;
        Context ctx = makeContext(p, 11);
        const uint32_t layer = 1, leaf0 = 4;
        const uint64_t tree = 77;

        for (unsigned count : {1u, 3u, 8u, 11u, 16u}) {
            std::vector<uint8_t> pks(count * p.n);
            wotsPkGenXN(pks.data(), ctx, layer, tree, leaf0, count);
            for (unsigned j = 0; j < count; ++j) {
                uint8_t expected[maxN];
                scalarWotsLeaf(expected, ctx, layer, tree, leaf0 + j);
                EXPECT_EQ(hexEncode(ByteSpan(pks.data() + j * p.n, p.n)),
                          hexEncode(ByteSpan(expected, p.n)))
                    << p.name << " count " << count << " leaf " << j;
            }
        }
    }
}

TEST(BatchedLeaves, ForsGenLeavesXNMatchesScalar)
{
    const Params &p = Params::sphincs128f();
    Context ctx = makeContext(p, 13);

    Address fors_adrs;
    fors_adrs.setLayer(0);
    fors_adrs.setTree(5);
    fors_adrs.setType(AddrType::ForsTree);
    fors_adrs.setKeypair(9);

    for (unsigned count : {1u, 5u, 8u, 13u, 16u}) {
        std::vector<uint8_t> leaves(count * p.n);
        forsGenLeavesXN(leaves.data(), ctx, fors_adrs, 40, count);
        for (unsigned j = 0; j < count; ++j) {
            uint8_t expected[maxN];
            forsGenLeaf(expected, ctx, fors_adrs, 40 + j);
            EXPECT_EQ(
                hexEncode(ByteSpan(leaves.data() + j * p.n, p.n)),
                hexEncode(ByteSpan(expected, p.n)))
                << "count " << count << " leaf " << j;
        }
    }
}

TEST(BatchedTreehash, BatchedAndScalarLeafFnAgree)
{
    const Params &p = Params::sphincs128f();
    Context ctx = makeContext(p, 17);
    const unsigned height = 4;
    const uint32_t leaf_idx = 5;

    auto leaf_bytes = [&](uint32_t idx) {
        ByteVec leaf(p.n, 0);
        for (unsigned i = 0; i < p.n; ++i)
            leaf[i] = static_cast<uint8_t>(idx * 31 + i);
        return leaf;
    };

    Address adrs_a;
    adrs_a.setType(AddrType::Tree);
    uint8_t root_a[maxN], auth_a[maxTreeHeight * maxN];
    treehash(root_a, auth_a, ctx, leaf_idx, 0, height,
             LeafFn([&](uint8_t *out, uint32_t idx) {
                 auto leaf = leaf_bytes(idx);
                 std::memcpy(out, leaf.data(), p.n);
             }),
             adrs_a);

    Address adrs_b;
    adrs_b.setType(AddrType::Tree);
    uint8_t root_b[maxN], auth_b[maxTreeHeight * maxN];
    auto gen_batch = [&](uint8_t *out, uint32_t start, uint32_t count) {
        EXPECT_LE(count, hashLaneWidth());
        for (uint32_t j = 0; j < count; ++j) {
            auto leaf = leaf_bytes(start + j);
            std::memcpy(out + j * p.n, leaf.data(), p.n);
        }
    };
    treehash(root_b, auth_b, ctx, leaf_idx, 0, height, gen_batch,
             adrs_b);

    EXPECT_EQ(hexEncode(ByteSpan(root_a, p.n)),
              hexEncode(ByteSpan(root_b, p.n)));
    EXPECT_EQ(hexEncode(ByteSpan(auth_a, height * p.n)),
              hexEncode(ByteSpan(auth_b, height * p.n)));
}

TEST(BatchedTreehash, RejectsOversizedHeight)
{
    const Params &p = Params::sphincs128f();
    Context ctx = makeContext(p, 19);
    Address adrs;
    uint8_t root[maxN];
    auto no_leaves = [](uint8_t *, uint32_t, uint32_t) {};
    EXPECT_THROW(treehash(root, nullptr, ctx, 0, 0, maxTreeHeight + 1,
                          no_leaves, adrs),
                 std::invalid_argument);
}

/**
 * Sign/keygen under a specific lane configuration, returning the
 * signature, pk root and compression count of the sign() call.
 */
struct ModeResult
{
    ByteVec sig;
    ByteVec pkRoot;
    uint64_t signCompressions;
    bool verified;
};

ModeResult
runMode(const Params &p, const ByteVec &seed, const ByteVec &msg,
        bool scalar, bool no_avx512)
{
    SphincsPlus scheme(p);
    sha256LanesForceScalar(scalar);
    sha256LanesDisableAvx512(no_avx512);
    auto kp = scheme.keygenFromSeed(seed);
    Sha256::resetCompressionCount();
    ModeResult r;
    r.sig = scheme.sign(msg, kp.sk);
    r.signCompressions = Sha256::compressionCount();
    r.pkRoot = ByteVec(kp.pk.pkRoot.begin(), kp.pk.pkRoot.end());
    r.verified = scheme.verify(msg, r.sig, kp.pk);
    sha256LanesForceScalar(false);
    sha256LanesDisableAvx512(false);
    return r;
}

TEST(BackendEquivalence, SignaturesByteIdenticalAcrossAllWidths)
{
    // Cross-width byte-identity on every Table I set: the scalar
    // path, the width-8 path (AVX-512 disabled) and the full
    // dispatched path (width 16 where the host supports it) must
    // produce identical keys, identical signatures, identical verify
    // verdicts and identical compression counts.
    for (const Params *pp : {&Params::sphincs128f(),
                             &Params::sphincs192f(),
                             &Params::sphincs256f()}) {
        const Params &p = *pp;
        Rng rng(23);
        ByteVec seed = rng.bytes(3 * p.n);
        ByteVec msg = rng.bytes(57);

        ModeResult scalar = runMode(p, seed, msg, true, false);
        ModeResult x8 = runMode(p, seed, msg, false, true);
        ModeResult widest = runMode(p, seed, msg, false, false);

        EXPECT_EQ(hexEncode(scalar.pkRoot), hexEncode(x8.pkRoot))
            << p.name;
        EXPECT_EQ(hexEncode(scalar.pkRoot), hexEncode(widest.pkRoot))
            << p.name;
        EXPECT_EQ(hexEncode(scalar.sig), hexEncode(x8.sig)) << p.name;
        EXPECT_EQ(hexEncode(scalar.sig), hexEncode(widest.sig))
            << p.name;
        EXPECT_TRUE(scalar.verified) << p.name;
        EXPECT_TRUE(x8.verified) << p.name;
        EXPECT_TRUE(widest.verified) << p.name;
        EXPECT_EQ(scalar.signCompressions, x8.signCompressions)
            << p.name;
        EXPECT_EQ(scalar.signCompressions, widest.signCompressions)
            << p.name;
    }
}

TEST(BackendEquivalence, CrossBackendVerifyAgrees)
{
    // A signature produced at the widest dispatch verifies on the
    // scalar path and vice versa.
    const Params &p = Params::sphincs128f();
    SphincsPlus scheme(p);
    Rng rng(27);
    ByteVec seed = rng.bytes(3 * p.n);
    ByteVec msg = rng.bytes(33);

    auto kp = scheme.keygenFromSeed(seed);
    ByteVec sig_auto = scheme.sign(msg, kp.sk);

    sha256LanesForceScalar(true);
    auto kp_scalar = scheme.keygenFromSeed(seed);
    ByteVec sig_scalar = scheme.sign(msg, kp_scalar.sk);
    const bool verify_scalar = scheme.verify(msg, sig_auto, kp.pk);
    sha256LanesForceScalar(false);

    EXPECT_EQ(hexEncode(kp.pk.pkRoot), hexEncode(kp_scalar.pk.pkRoot));
    EXPECT_EQ(hexEncode(sig_auto), hexEncode(sig_scalar));
    EXPECT_TRUE(verify_scalar);
    EXPECT_TRUE(scheme.verify(msg, sig_scalar, kp.pk));
}

} // namespace
