/**
 * @file
 * Batched lane-parallel verification equivalence: verifyBatch must be
 * bool-identical to scalar verify for every lane composition — full
 * and ragged groups, mixed valid/invalid lanes, malformed lengths —
 * on the AVX-512 (width 16), AVX2 (width 8) and forced-scalar hash
 * backends, and the kernel-level XN primitives must be byte-identical
 * to their scalar counterparts at every lane count 1..16.
 * Golden-vector checks pin the real Table I parameter sets.
 */

#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "../batch/batch_test_util.hh"
#include "common/hex.hh"
#include "hash/sha256xN.hh"
#include "sphincs/fors.hh"
#include "sphincs/merkle.hh"
#include "sphincs/sphincs.hh"
#include "sphincs/thash.hh"
#include "sphincs/wots.hh"

using namespace herosign;
using namespace herosign::sphincs;
using batchtest::miniParams;
using batchtest::patternMsg;

namespace
{

/** Force-scalar guard so a test body runs on the portable lanes. */
struct ScalarGuard
{
    ScalarGuard() { sha256LanesForceScalar(true); }
    ~ScalarGuard() { sha256LanesForceScalar(false); }
};

std::vector<bool>
runVerifyBatch(const SphincsPlus &scheme, const PublicKey &pk,
               const std::vector<ByteVec> &msgs,
               const std::vector<ByteVec> &sigs)
{
    std::vector<ByteSpan> m(msgs.size());
    std::vector<ByteSpan> s(sigs.size());
    for (size_t i = 0; i < msgs.size(); ++i) {
        m[i] = ByteSpan(msgs[i]);
        s[i] = ByteSpan(sigs[i]);
    }
    std::unique_ptr<bool[]> ok(new bool[msgs.size()]);
    scheme.verifyBatch(m.data(), s.data(), pk, ok.get(), msgs.size());
    return std::vector<bool>(ok.get(), ok.get() + msgs.size());
}

void
expectBatchMatchesScalar(const SphincsPlus &scheme, const PublicKey &pk,
                         const std::vector<ByteVec> &msgs,
                         const std::vector<ByteVec> &sigs)
{
    auto batch = runVerifyBatch(scheme, pk, msgs, sigs);
    for (size_t i = 0; i < msgs.size(); ++i) {
        EXPECT_EQ(batch[i], scheme.verify(msgs[i], sigs[i], pk))
            << "lane " << i;
    }
}

} // namespace

TEST(VerifyBatch, RaggedCountsMatchScalarOnMini)
{
    const auto p = miniParams();
    SphincsPlus scheme(p);
    auto kp = scheme.keygenFromSeed(batchtest::fixedSeed(p));

    std::vector<ByteVec> msgs, sigs;
    for (unsigned i = 0; i < 19; ++i) {
        msgs.push_back(patternMsg(36, static_cast<uint8_t>(i)));
        sigs.push_back(scheme.sign(msgs.back(), kp.sk));
    }
    // Every group shape from 1 lane to beyond one full group at both
    // candidate widths (8 and 16).
    for (unsigned count : {1u, 2u, 7u, 8u, 9u, 11u, 15u, 16u, 19u}) {
        std::vector<ByteVec> m(msgs.begin(), msgs.begin() + count);
        std::vector<ByteVec> s(sigs.begin(), sigs.begin() + count);
        expectBatchMatchesScalar(scheme, kp.pk, m, s);
        auto ok = runVerifyBatch(scheme, kp.pk, m, s);
        for (unsigned i = 0; i < count; ++i)
            EXPECT_TRUE(ok[i]) << count << "/" << i;
    }
}

TEST(VerifyBatch, MixedValidInvalidAndMalformedLanes)
{
    const auto p = miniParams();
    SphincsPlus scheme(p);
    auto kp = scheme.keygenFromSeed(batchtest::fixedSeed(p));
    auto other = scheme.keygenFromSeed(batchtest::fixedSeed(p, 0x40));

    std::vector<ByteVec> msgs, sigs;
    for (unsigned i = 0; i < 10; ++i) {
        msgs.push_back(patternMsg(28, static_cast<uint8_t>(i)));
        sigs.push_back(scheme.sign(msgs.back(), kp.sk));
    }
    sigs[0][5] ^= 0x10;                  // corrupted randomizer
    sigs[2].clear();                     // empty -> length reject
    sigs[3] = scheme.sign(msgs[3], other.sk); // wrong key
    // pop_back rather than resize(size()-3): GCC's -O2+ASan
    // stringop-overflow analysis flags the (dead) grow path of a
    // shrinking resize it cannot prove shrinks.
    for (int t = 0; t < 3; ++t) // truncated
        sigs[5].pop_back();
    sigs[6].push_back(0);                // extended
    msgs[8][1] ^= 0x80;                  // message mismatch

    expectBatchMatchesScalar(scheme, kp.pk, msgs, sigs);
    auto ok = runVerifyBatch(scheme, kp.pk, msgs, sigs);
    EXPECT_EQ(ok, (std::vector<bool>{false, true, false, false, true,
                                     false, false, true, false, true}));

    // Same verdicts on the portable scalar lanes.
    ScalarGuard guard;
    expectBatchMatchesScalar(scheme, kp.pk, msgs, sigs);
    EXPECT_EQ(runVerifyBatch(scheme, kp.pk, msgs, sigs), ok);
}

TEST(VerifyBatch, WarmContextOverloadAndMismatchThrows)
{
    const auto p = miniParams();
    SphincsPlus scheme(p);
    auto kp = scheme.keygenFromSeed(batchtest::fixedSeed(p));
    auto other = scheme.keygenFromSeed(batchtest::fixedSeed(p, 0x23));

    ByteVec msg = patternMsg(32);
    ByteVec sig = scheme.sign(msg, kp.sk);
    Context ctx(p, kp.pk.pkSeed, {});

    ByteSpan m(msg), s(sig);
    bool ok = false;
    scheme.verifyBatch(ctx, &m, &s, kp.pk, &ok, 1);
    EXPECT_TRUE(ok);
    EXPECT_TRUE(scheme.verify(ctx, msg, sig, kp.pk));

    // Context bound to the wrong public key is a programming error.
    Context wrong(p, other.pk.pkSeed, {});
    EXPECT_THROW(scheme.verifyBatch(wrong, &m, &s, kp.pk, &ok, 1),
                 std::invalid_argument);
    EXPECT_THROW(scheme.verify(wrong, msg, sig, kp.pk),
                 std::invalid_argument);
    // Signing with a mismatched warm context is equally rejected.
    Context sign_ctx(p, kp.sk.pkSeed, kp.sk.skSeed);
    EXPECT_THROW(scheme.sign(sign_ctx, msg, other.sk),
                 std::invalid_argument);
    EXPECT_EQ(scheme.sign(sign_ctx, msg, kp.sk),
              scheme.sign(msg, kp.sk));
}

TEST(VerifyBatch, KernelPrimitivesByteIdenticalToScalar)
{
    const auto p = miniParams();
    SphincsPlus scheme(p);
    auto kp = scheme.keygenFromSeed(batchtest::fixedSeed(p));
    Context ctx(p, kp.sk.pkSeed, kp.sk.skSeed);
    const unsigned n = p.n;

    // Sixteen WOTS keypairs: sign a message each, then recompute the
    // leaf batched (every greedy-split shape) and scalar and compare
    // bytes.
    uint8_t sigs[16][maxWotsLen * maxN];
    uint8_t msgs[16][maxN];
    Address adrs[16];
    const uint8_t *sig_ptrs[16];
    const uint8_t *msg_ptrs[16];
    uint8_t batch_pk[16][maxN];
    uint8_t *batch_ptrs[16];
    for (unsigned l = 0; l < 16; ++l) {
        for (unsigned b = 0; b < n; ++b)
            msgs[l][b] = static_cast<uint8_t>(l * 31 + b);
        adrs[l].setLayer(l % p.layers);
        adrs[l].setTree(l);
        adrs[l].setType(AddrType::WotsHash);
        adrs[l].setKeypair(l + 1);
        wotsSign(sigs[l], msgs[l], ctx, adrs[l]);
        sig_ptrs[l] = sigs[l];
        msg_ptrs[l] = msgs[l];
        batch_ptrs[l] = batch_pk[l];
    }
    for (unsigned count : {1u, 3u, 8u, 11u, 16u}) {
        wotsPkFromSigXN(batch_ptrs, sig_ptrs, msg_ptrs, ctx, adrs,
                        count);
        for (unsigned l = 0; l < count; ++l) {
            uint8_t ref[maxN];
            wotsPkFromSig(ref, sigs[l], msgs[l], ctx, adrs[l]);
            EXPECT_EQ(hexEncode(ByteSpan(batch_pk[l], n)),
                      hexEncode(ByteSpan(ref, n)))
                << "count " << count << " lane " << l;
        }
    }

    // FORS: sign under 16 distinct addresses, recompute batched.
    const size_t fors_sig = p.forsSigBytes();
    std::vector<ByteVec> fsigs(16);
    uint8_t fmsgs[16][32];
    Address fadrs[16];
    const uint8_t *fsig_ptrs[16];
    const uint8_t *fmsg_ptrs[16];
    uint8_t froot_batch[16][maxN];
    uint8_t *froot_ptrs[16];
    for (unsigned l = 0; l < 16; ++l) {
        for (size_t b = 0; b < p.forsMsgBytes(); ++b)
            fmsgs[l][b] = static_cast<uint8_t>(5 * l + 3 * b + 1);
        fadrs[l].setLayer(0);
        fadrs[l].setTree(2 * l + 1);
        fadrs[l].setType(AddrType::ForsTree);
        fadrs[l].setKeypair(l);
        fsigs[l].resize(fors_sig);
        uint8_t root[maxN];
        forsSign(fsigs[l].data(), root, fmsgs[l], ctx, fadrs[l]);
        fsig_ptrs[l] = fsigs[l].data();
        fmsg_ptrs[l] = fmsgs[l];
        froot_ptrs[l] = froot_batch[l];
    }
    for (unsigned count : {1u, 5u, 8u, 13u, 16u}) {
        forsPkFromSigXN(froot_ptrs, fsig_ptrs, fmsg_ptrs, ctx, fadrs,
                        count);
        for (unsigned l = 0; l < count; ++l) {
            uint8_t ref[maxN];
            forsPkFromSig(ref, fsigs[l].data(), fmsgs[l], ctx,
                          fadrs[l]);
            EXPECT_EQ(hexEncode(ByteSpan(froot_batch[l], n)),
                      hexEncode(ByteSpan(ref, n)))
                << "count " << count << " lane " << l;
        }
    }
}

class VerifyBatchGolden : public ::testing::TestWithParam<const Params *>
{
};

TEST_P(VerifyBatchGolden, TableISetsMatchScalarOnBothBackends)
{
    const Params &p = *GetParam();
    SphincsPlus scheme(p);
    ByteVec seed(3 * p.n);
    std::iota(seed.begin(), seed.end(), static_cast<uint8_t>(0));
    auto kp = scheme.keygenFromSeed(seed);

    const std::string txt = "HERO-Sign golden vector";
    std::vector<ByteVec> msgs;
    std::vector<ByteVec> sigs;
    // The golden fixture message plus derived ones, and one tamper.
    for (unsigned i = 0; i < 4; ++i) {
        ByteVec m(txt.begin(), txt.end());
        m.push_back(static_cast<uint8_t>(i));
        msgs.push_back(std::move(m));
        sigs.push_back(scheme.sign(msgs.back(), kp.sk));
    }
    sigs[2][sigs[2].size() / 2] ^= 0x04;

    expectBatchMatchesScalar(scheme, kp.pk, msgs, sigs);
    auto avx = runVerifyBatch(scheme, kp.pk, msgs, sigs);
    EXPECT_EQ(avx,
              (std::vector<bool>{true, true, false, true}));

    ScalarGuard guard;
    expectBatchMatchesScalar(scheme, kp.pk, msgs, sigs);
    EXPECT_EQ(runVerifyBatch(scheme, kp.pk, msgs, sigs), avx);
}

INSTANTIATE_TEST_SUITE_P(TableI, VerifyBatchGolden,
                         ::testing::Values(&Params::sphincs128f(),
                                           &Params::sphincs192f(),
                                           &Params::sphincs256f()),
                         [](const auto &info) {
                             return info.param->name.substr(
                                 info.param->name.find('-') + 1);
                         });
