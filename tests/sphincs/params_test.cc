/**
 * @file
 * Parameter-set derivations against the published SPHINCS+ numbers
 * (paper Table I + the official -f signature/key sizes).
 */

#include <gtest/gtest.h>

#include "sphincs/params.hh"

using namespace herosign::sphincs;

TEST(Params, Table1Values128f)
{
    const Params &p = Params::sphincs128f();
    EXPECT_EQ(p.n, 16u);
    EXPECT_EQ(p.fullHeight, 66u);
    EXPECT_EQ(p.layers, 22u);
    EXPECT_EQ(p.forsHeight, 6u);
    EXPECT_EQ(p.forsTrees, 33u);
    EXPECT_EQ(p.wotsW, 16u);
    EXPECT_EQ(p.treeHeight(), 3u);
    EXPECT_EQ(p.treeLeaves(), 8u);
}

TEST(Params, Table1Values192f)
{
    const Params &p = Params::sphincs192f();
    EXPECT_EQ(p.n, 24u);
    EXPECT_EQ(p.fullHeight, 66u);
    EXPECT_EQ(p.layers, 22u);
    EXPECT_EQ(p.forsHeight, 8u);
    EXPECT_EQ(p.forsTrees, 33u);
    EXPECT_EQ(p.treeHeight(), 3u);
}

TEST(Params, Table1Values256f)
{
    const Params &p = Params::sphincs256f();
    EXPECT_EQ(p.n, 32u);
    EXPECT_EQ(p.fullHeight, 68u);
    EXPECT_EQ(p.layers, 17u);
    EXPECT_EQ(p.forsHeight, 9u);
    EXPECT_EQ(p.forsTrees, 35u);
    EXPECT_EQ(p.treeHeight(), 4u);
    EXPECT_EQ(p.treeLeaves(), 16u);
}

TEST(Params, WotsChainCounts)
{
    // len1 = 2n for w=16; len2 = 3 for all three sets; len matches the
    // paper's 35/51/67 chain counts.
    EXPECT_EQ(Params::sphincs128f().wotsLen1(), 32u);
    EXPECT_EQ(Params::sphincs128f().wotsLen2(), 3u);
    EXPECT_EQ(Params::sphincs128f().wotsLen(), 35u);
    EXPECT_EQ(Params::sphincs192f().wotsLen(), 51u);
    EXPECT_EQ(Params::sphincs256f().wotsLen(), 67u);
}

TEST(Params, OfficialSignatureSizes)
{
    // 17088 / 35664 / 49856 bytes are the published -f sizes; the
    // paper quotes 17088 for 128f in its introduction.
    EXPECT_EQ(Params::sphincs128f().sigBytes(), 17088u);
    EXPECT_EQ(Params::sphincs192f().sigBytes(), 35664u);
    EXPECT_EQ(Params::sphincs256f().sigBytes(), 49856u);
}

TEST(Params, KeySizes)
{
    EXPECT_EQ(Params::sphincs128f().pkBytes(), 32u);
    EXPECT_EQ(Params::sphincs128f().skBytes(), 64u);
    EXPECT_EQ(Params::sphincs256f().pkBytes(), 64u);
    EXPECT_EQ(Params::sphincs256f().skBytes(), 128u);
}

TEST(Params, HypertreeLeafCounts)
{
    // Paper §III-B1: 176 / 176 / 272 hypertree leaves.
    auto hypertree_leaves = [](const Params &p) {
        return p.layers * p.treeLeaves();
    };
    EXPECT_EQ(hypertree_leaves(Params::sphincs128f()), 176u);
    EXPECT_EQ(hypertree_leaves(Params::sphincs192f()), 176u);
    EXPECT_EQ(hypertree_leaves(Params::sphincs256f()), 272u);
}

TEST(Params, ForsLeafCounts)
{
    // Paper §III-B1: 2112 / 8448 / 17920 total FORS leaves.
    EXPECT_EQ(Params::sphincs128f().forsTotalLeaves(), 2112u);
    EXPECT_EQ(Params::sphincs192f().forsTotalLeaves(), 8448u);
    EXPECT_EQ(Params::sphincs256f().forsTotalLeaves(), 17920u);
}

TEST(Params, HashesPerWotsLeaf)
{
    // Paper §III: 560 / 816 / 1072 SHA-2 calls per wots_gen_leaf.
    EXPECT_EQ(Params::sphincs128f().hashesPerWotsLeaf(), 560u);
    EXPECT_EQ(Params::sphincs192f().hashesPerWotsLeaf(), 816u);
    EXPECT_EQ(Params::sphincs256f().hashesPerWotsLeaf(), 1072u);
}

TEST(Params, DigestSplitWidths)
{
    const Params &p128 = Params::sphincs128f();
    EXPECT_EQ(p128.forsMsgBytes(), 25u);  // ceil(33*6/8)
    EXPECT_EQ(p128.treeBits(), 63u);
    EXPECT_EQ(p128.leafBits(), 3u);
    EXPECT_EQ(p128.msgDigestBytes(), 34u);

    const Params &p256 = Params::sphincs256f();
    EXPECT_EQ(p256.forsMsgBytes(), 40u);  // ceil(35*9/8)
    EXPECT_EQ(p256.treeBits(), 64u);
    EXPECT_EQ(p256.leafBits(), 4u);
    EXPECT_EQ(p256.msgDigestBytes(), 49u);
}

TEST(Params, ValidateAcceptsPresets)
{
    for (const auto &p : Params::all())
        EXPECT_NO_THROW(p.validate()) << p.name;
}

TEST(Params, ValidateRejectsBadSets)
{
    Params p = Params::sphincs128f();
    p.n = 0;
    EXPECT_THROW(p.validate(), std::invalid_argument);

    p = Params::sphincs128f();
    p.wotsW = 4;
    EXPECT_THROW(p.validate(), std::invalid_argument);

    p = Params::sphincs128f();
    p.layers = 7; // 66 % 7 != 0
    EXPECT_THROW(p.validate(), std::invalid_argument);

    p = Params::sphincs128f();
    p.forsTrees = 0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Params, ByName)
{
    EXPECT_EQ(Params::byName("128f").n, 16u);
    EXPECT_EQ(Params::byName("SPHINCS+-192f").n, 24u);
    EXPECT_EQ(Params::byName("256f").n, 32u);
    EXPECT_THROW(Params::byName("512f"), std::invalid_argument);
}

TEST(Params, SigBytesDecomposition)
{
    for (const auto &p : Params::all()) {
        EXPECT_EQ(p.sigBytes(),
                  p.n + p.forsSigBytes() + p.layers * p.xmssSigBytes())
            << p.name;
        EXPECT_EQ(p.xmssSigBytes(),
                  p.wotsSigBytes() + p.treeHeight() * p.n)
            << p.name;
    }
}
