/**
 * @file
 * Published known-answer tests for the whole hash substrate: FIPS
 * 180-4 / NIST CAVP vectors for SHA-256 and SHA-512, RFC 4231 vectors
 * for HMAC-SHA-256, and RFC 8017 MGF1-SHA-256 vectors. Every SHA-256
 * vector is checked on both the Native and PTX-flavoured compression
 * branches — the KATs are the ground truth the PTX equivalence claims
 * rest on.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/hex.hh"
#include "hash/hmac.hh"
#include "hash/mgf1.hh"
#include "hash/sha256.hh"
#include "hash/sha512.hh"

using namespace herosign;

namespace
{

ByteVec
strBytes(const std::string &s)
{
    return ByteVec(s.begin(), s.end());
}

std::string
sha256Hex(ByteSpan data, Sha256Variant v)
{
    auto d = Sha256::digest(data, v);
    return hexEncode(ByteSpan(d.data(), d.size()));
}

std::string
sha512Hex(ByteSpan data)
{
    auto d = Sha512::digest(data);
    return hexEncode(ByteSpan(d.data(), d.size()));
}

std::string
hmacHex(ByteSpan key, ByteSpan msg)
{
    auto d = HmacSha256::mac(key, msg);
    return hexEncode(ByteSpan(d.data(), d.size()));
}

struct HashVector
{
    const char *msgHex;
    const char *digestHex;
};

// FIPS 180-4 examples plus NIST CAVP SHA256ShortMsg entries.
const HashVector sha256Vectors[] = {
    {"",
     "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"},
    {"616263", // "abc"
     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"},
    // "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
    {"6162636462636465636465666465666765666768666768696768696a68696a6b"
     "696a6b6c6a6b6c6d6b6c6d6e6c6d6e6f6d6e6f706e6f7071",
     "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"},
    {"bd", // CAVP SHA256ShortMsg Len=8
     "68325720aabd7c82f30f554b313d0570c95accbb7dc4b5aae11204c08ffe732b"},
    {"c98c8e55", // CAVP SHA256ShortMsg Len=32
     "7abc22c0ae5af26ce93dbb94433a0e0b2e119d014f8e7f65bd56c61ccccd9504"},
};

// FIPS 180-4 SHA-512 examples.
const HashVector sha512Vectors[] = {
    {"",
     "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce"
     "47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e"},
    {"616263", // "abc"
     "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a"
     "2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f"},
    // "abcdefghbcdefghi...nopqrstu" (the 896-bit example)
    {"61626364656667686263646566676869636465666768696a6465666768696a6b"
     "65666768696a6b6c666768696a6b6c6d6768696a6b6c6d6e68696a6b6c6d6e6f"
     "696a6b6c6d6e6f706a6b6c6d6e6f70716b6c6d6e6f7071726c6d6e6f70717273"
     "6d6e6f70717273746e6f707172737475",
     "8e959b75dae313da8cf4f72814fc143f8f7779c6eb9f7fa17299aeadb6889018"
     "501d289e4900f7e4331b99dec4b5433ac7d329eeb6dd26545e96e55b874be909"},
};

} // namespace

class Sha256Kat : public ::testing::TestWithParam<Sha256Variant>
{
};

TEST_P(Sha256Kat, PublishedVectors)
{
    for (const auto &v : sha256Vectors) {
        ByteVec msg = hexDecode(v.msgHex);
        EXPECT_EQ(sha256Hex(msg, GetParam()), v.digestHex)
            << "msg=" << v.msgHex;
    }
}

TEST_P(Sha256Kat, MillionA)
{
    // FIPS 180-4 long-message example: 1,000,000 repetitions of 'a',
    // absorbed in uneven chunks to exercise the buffering path.
    Sha256 ctx(GetParam());
    ByteVec chunk(997, 'a');
    size_t fed = 0;
    while (fed < 1000000) {
        size_t take = std::min(chunk.size(), 1000000 - fed);
        ctx.update(ByteSpan(chunk.data(), take));
        fed += take;
    }
    uint8_t out[Sha256::digestSize];
    ctx.final(out);
    EXPECT_EQ(
        hexEncode(ByteSpan(out, sizeof(out))),
        "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

INSTANTIATE_TEST_SUITE_P(BothVariants, Sha256Kat,
    ::testing::Values(Sha256Variant::Native, Sha256Variant::Ptx),
    [](const ::testing::TestParamInfo<Sha256Variant> &info) {
        return info.param == Sha256Variant::Native ? "Native" : "Ptx";
    });

TEST(Sha512Kat, PublishedVectors)
{
    for (const auto &v : sha512Vectors) {
        ByteVec msg = hexDecode(v.msgHex);
        EXPECT_EQ(sha512Hex(msg), v.digestHex) << "msg=" << v.msgHex;
    }
}

TEST(HmacKat, Rfc4231)
{
    struct HmacVector
    {
        ByteVec key;
        ByteVec msg;
        const char *macHex;
    };
    const HmacVector vectors[] = {
        // Test case 1
        {ByteVec(20, 0x0b), strBytes("Hi There"),
         "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"},
        // Test case 2: short key
        {strBytes("Jefe"), strBytes("what do ya want for nothing?"),
         "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"},
        // Test case 3: combined key+data longer than a block
        {ByteVec(20, 0xaa), ByteVec(50, 0xdd),
         "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"},
        // Test case 4
        {hexDecode("0102030405060708090a0b0c0d0e0f10111213141516171819"),
         ByteVec(50, 0xcd),
         "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b"},
        // Test case 6: key larger than one block (must be hashed)
        {ByteVec(131, 0xaa),
         strBytes("Test Using Larger Than Block-Size Key - Hash Key First"),
         "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"},
        // Test case 7: key and data both larger than one block
        {ByteVec(131, 0xaa),
         strBytes("This is a test using a larger than block-size key and a "
                  "larger than block-size data. The key needs to be hashed "
                  "before being used by the HMAC algorithm."),
         "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"},
    };
    for (const auto &v : vectors)
        EXPECT_EQ(hmacHex(v.key, v.msg), v.macHex);
}

TEST(Mgf1Kat, Rfc8017Vectors)
{
    struct MgfVector
    {
        ByteVec seed;
        size_t len;
        const char *maskHex;
    };
    const MgfVector vectors[] = {
        {strBytes("foo"), 3, "3bdaba"},
        {strBytes("bar"), 50,
         "382576a7841021cc28fc4c0948753fb8312090cea942ea4c4e735d10dc724b"
         "155f9f6069f289d61daca0cb814502ef04eae1"},
        // One full SHA-256 digest of output from an empty seed:
        // SHA-256(0x00000000).
        {ByteVec{}, 32,
         "df3f619804a92fdb4057192dc43dd748ea778adc52bc498ce80524c014b811"
         "19"},
    };
    for (const auto &v : vectors) {
        ByteVec mask(v.len);
        mgf1Sha256(mask, v.seed);
        EXPECT_EQ(hexEncode(mask), v.maskHex);
    }
}

TEST(Mgf1Kat, ZeroLengthOutput)
{
    ByteVec mask;
    mgf1Sha256(mask, strBytes("bar"));
    EXPECT_TRUE(mask.empty());
}

TEST(Mgf1Kat, OutputIsDigestPrefixConsistent)
{
    // MGF1 output for length L must be a prefix of the output for any
    // longer length (RFC 8017 counter construction).
    ByteVec longMask(100), shortMask(33);
    mgf1Sha256(longMask, strBytes("seed"));
    mgf1Sha256(shortMask, strBytes("seed"));
    EXPECT_TRUE(std::equal(shortMask.begin(), shortMask.end(),
                           longMask.begin()));
}
