/**
 * @file
 * Edge-case coverage for the common substrate: hex codec boundary
 * inputs (odd lengths, empty strings, bad nibbles in either position)
 * and Rng reseeding determinism / empty-buffer behaviour.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/hex.hh"
#include "common/random.hh"

using namespace herosign;

TEST(HexEdge, EmptyInputs)
{
    EXPECT_EQ(hexEncode(ByteSpan{}), "");
    EXPECT_TRUE(hexDecode("").empty());
}

TEST(HexEdge, OddLengthAlwaysThrows)
{
    for (const char *s : {"a", "abc", "00000"})
        EXPECT_THROW(hexDecode(s), std::invalid_argument) << s;
}

TEST(HexEdge, BadNibbleInEitherPosition)
{
    EXPECT_THROW(hexDecode("g0"), std::invalid_argument);
    EXPECT_THROW(hexDecode("0g"), std::invalid_argument);
    EXPECT_THROW(hexDecode("00 1"), std::invalid_argument);
    // The character one past each accepted range must be rejected.
    EXPECT_THROW(hexDecode("3a:0"), std::invalid_argument);
}

TEST(HexEdge, AllByteValuesRoundTrip)
{
    ByteVec all(256);
    for (int i = 0; i < 256; ++i)
        all[i] = static_cast<uint8_t>(i);
    std::string hex = hexEncode(all);
    ASSERT_EQ(hex.size(), 512u);
    EXPECT_EQ(hexDecode(hex), all);
}

TEST(HexEdge, MixedCaseDecodesIdentically)
{
    EXPECT_EQ(hexDecode("DeadBeef"), hexDecode("deadbeef"));
}

TEST(RngEdge, ReseedingSameSeedReplaysStream)
{
    Rng first(42);
    ByteVec a = first.bytes(37);
    uint64_t na = first.next();

    // A fresh Rng constructed with the same seed must replay the exact
    // stream, regardless of how the draws are chunked.
    Rng second(42);
    ByteVec b(37);
    second.fill(b);
    EXPECT_EQ(a, b);
    EXPECT_EQ(second.next(), na);
}

TEST(RngEdge, ReseedingDifferentSeedDiverges)
{
    Rng a(1000), b(1001);
    // Nearby seeds must not yield correlated first outputs.
    EXPECT_NE(a.next(), b.next());
}

TEST(RngEdge, EmptyBuffersAreNoOps)
{
    Rng rng(9);
    uint64_t before = Rng(9).next();
    rng.fill(MutByteSpan{});
    EXPECT_TRUE(rng.bytes(0).empty());
    // Filling zero bytes must not consume generator state... but the
    // implementation is allowed to burn a draw for a trailing partial
    // word only when there are trailing bytes; with none, the next
    // value matches a fresh generator's first draw.
    EXPECT_EQ(rng.next(), before);
}

TEST(RngEdge, BelowOneAlwaysZero)
{
    Rng rng(3);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.below(1), 0u);
}

TEST(RngEdge, ChunkedFillMatchesWholeFill)
{
    // fill() must produce the same bytes as bytes() for identical
    // seeds when the total length is word-aligned chunking.
    Rng a(77), b(77);
    ByteVec whole = a.bytes(32);
    ByteVec parts(32);
    b.fill(MutByteSpan(parts.data(), 16));
    b.fill(MutByteSpan(parts.data() + 16, 16));
    EXPECT_EQ(whole, parts);
}

TEST(RngEdge, FromOsProducesDistinctStreams)
{
    // Not a determinism test — just that OS seeding yields an Rng that
    // works and (overwhelmingly likely) differs between instances.
    Rng a = Rng::fromOs();
    Rng b = Rng::fromOs();
    bool anyDiff = false;
    for (int i = 0; i < 8; ++i)
        anyDiff |= (a.next() != b.next());
    EXPECT_TRUE(anyDiff);
}
