/**
 * @file
 * Tests for the common substrate: byte helpers, hex, RNG, table
 * printer.
 */

#include <gtest/gtest.h>

#include "common/bytes.hh"
#include "common/hex.hh"
#include "common/random.hh"
#include "common/table.hh"

using namespace herosign;

TEST(Bytes, BigEndianRoundTrip32)
{
    uint8_t buf[4];
    storeBe32(buf, 0x01020304u);
    EXPECT_EQ(buf[0], 0x01);
    EXPECT_EQ(buf[3], 0x04);
    EXPECT_EQ(loadBe32(buf), 0x01020304u);
}

TEST(Bytes, BigEndianRoundTrip64)
{
    uint8_t buf[8];
    storeBe64(buf, 0x0102030405060708ULL);
    EXPECT_EQ(buf[0], 0x01);
    EXPECT_EQ(buf[7], 0x08);
    EXPECT_EQ(loadBe64(buf), 0x0102030405060708ULL);
}

TEST(Bytes, ToByteMatchesSpec)
{
    uint8_t buf[4];
    toByte(buf, 0x1234, 4);
    EXPECT_EQ(buf[0], 0x00);
    EXPECT_EQ(buf[1], 0x00);
    EXPECT_EQ(buf[2], 0x12);
    EXPECT_EQ(buf[3], 0x34);

    // Truncating conversion keeps the low-order bytes.
    uint8_t two[2];
    toByte(two, 0xabcdef, 2);
    EXPECT_EQ(two[0], 0xcd);
    EXPECT_EQ(two[1], 0xef);
}

TEST(Bytes, CtEqual)
{
    ByteVec a{1, 2, 3}, b{1, 2, 3}, c{1, 2, 4}, d{1, 2};
    EXPECT_TRUE(ctEqual(a, b));
    EXPECT_FALSE(ctEqual(a, c));
    EXPECT_FALSE(ctEqual(a, d));
    EXPECT_TRUE(ctEqual({}, {}));
}

TEST(Hex, RoundTrip)
{
    ByteVec data{0x00, 0x01, 0xab, 0xff};
    EXPECT_EQ(hexEncode(data), "0001abff");
    EXPECT_EQ(hexDecode("0001abff"), data);
    EXPECT_EQ(hexDecode("0001ABFF"), data);
}

TEST(Hex, RejectsBadInput)
{
    EXPECT_THROW(hexDecode("abc"), std::invalid_argument);
    EXPECT_THROW(hexDecode("zz"), std::invalid_argument);
}

TEST(Rng, Deterministic)
{
    Rng a(123), b(123), c(124);
    EXPECT_EQ(a.next(), b.next());
    EXPECT_NE(a.next(), c.next());
}

TEST(Rng, BelowInRange)
{
    Rng rng(5);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversRange)
{
    Rng rng(6);
    bool seen[8] = {};
    for (int i = 0; i < 1000; ++i)
        seen[rng.below(8)] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(Rng, FillLengths)
{
    Rng rng(7);
    for (size_t len : {0u, 1u, 7u, 8u, 9u, 64u}) {
        ByteVec v = rng.bytes(len);
        EXPECT_EQ(v.size(), len);
    }
}

TEST(TextTable, RendersAlignedAndCsv)
{
    TextTable t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addSeparator();
    t.addRow({"b", "22"});
    std::string text = t.render();
    EXPECT_NE(text.find("| alpha | 1"), std::string::npos);
    EXPECT_NE(text.find("+-"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 2u);

    std::string csv = t.renderCsv();
    EXPECT_NE(csv.find("name,value"), std::string::npos);
    EXPECT_NE(csv.find("alpha,1"), std::string::npos);
}

TEST(TextTable, RejectsWrongWidth)
{
    TextTable t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), std::invalid_argument);
}

TEST(TextTable, CsvEscaping)
{
    TextTable t({"a"});
    t.addRow({"x,y \"z\""});
    EXPECT_EQ(t.renderCsv(), "a\n\"x,y \"\"z\"\"\"\n");
}

TEST(Format, Helpers)
{
    EXPECT_EQ(fmtF(1.23456, 2), "1.23");
    EXPECT_EQ(fmtX(2.5, 1), "2.5x");
    EXPECT_EQ(fmtGrouped(1234567), "1,234,567");
    EXPECT_EQ(fmtGrouped(12), "12");
}
