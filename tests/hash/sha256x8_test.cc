/**
 * @file
 * 8-lane SHA-256 engine tests: lane equivalence against the scalar
 * hasher (one-shot, mid-state resume, ragged final-block lengths),
 * forced-fallback behaviour, compression accounting, and the fused
 * seeded single-block kernel.
 */

#include <gtest/gtest.h>

#include "common/hex.hh"
#include "common/random.hh"
#include "hash/sha256xN.hh"

using namespace herosign;

namespace
{

/** Force the portable backend for one scope, restoring on exit. */
struct ScopedScalarLanes
{
    ScopedScalarLanes() { sha256x8ForceScalar(true); }
    ~ScopedScalarLanes() { sha256x8ForceScalar(false); }
};

/** Hash 8 lanes one-shot through Sha256x8. */
void
digestX8(const ByteVec msgs[8], uint8_t digests[8][32],
         Sha256Variant variant = Sha256Variant::Native)
{
    const uint8_t *ptrs[8];
    uint8_t *dptrs[8];
    for (int l = 0; l < 8; ++l) {
        ptrs[l] = msgs[l].data();
        dptrs[l] = digests[l];
    }
    Sha256x8 hasher(variant);
    hasher.update(ptrs, msgs[0].size());
    hasher.final(dptrs);
}

void
expectMatchesScalar(size_t len, uint64_t seed)
{
    Rng rng(seed);
    ByteVec msgs[8];
    for (auto &m : msgs)
        m = rng.bytes(len);

    uint8_t digests[8][32];
    digestX8(msgs, digests);

    for (int l = 0; l < 8; ++l) {
        auto expected = Sha256::digest(msgs[l]);
        EXPECT_EQ(hexEncode(ByteSpan(digests[l], 32)),
                  hexEncode(expected))
            << "lane " << l << " len " << len;
    }
}

TEST(Sha256x8, MatchesScalarAcrossLengths)
{
    // Ragged final-block lengths: around the 55/56 padding boundary,
    // the 64-byte block boundary, multi-block, and empty.
    const size_t lengths[] = {0,  1,  31, 32,  54,  55,  56,
                              63, 64, 65, 119, 128, 200, 576};
    uint64_t seed = 1;
    for (size_t len : lengths)
        expectMatchesScalar(len, seed++);
}

TEST(Sha256x8, MatchesScalarOnPortableBackend)
{
    ScopedScalarLanes scoped;
    EXPECT_FALSE(sha256x8Avx2Active());
    const size_t lengths[] = {0, 1, 55, 56, 64, 65, 200};
    uint64_t seed = 100;
    for (size_t len : lengths)
        expectMatchesScalar(len, seed++);
}

TEST(Sha256x8, PtxVariantLanesMatchScalar)
{
    Rng rng(7);
    ByteVec msgs[8];
    for (auto &m : msgs)
        m = rng.bytes(96);
    uint8_t digests[8][32];
    digestX8(msgs, digests, Sha256Variant::Ptx);
    for (int l = 0; l < 8; ++l) {
        auto expected = Sha256::digest(msgs[l], Sha256Variant::Ptx);
        EXPECT_EQ(hexEncode(ByteSpan(digests[l], 32)),
                  hexEncode(expected));
    }
}

TEST(Sha256x8, MidStateResumeMatchesScalar)
{
    Rng rng(11);
    ByteVec prefix = rng.bytes(64); // one whole block
    Sha256 seeded;
    seeded.update(prefix);
    const Sha256State mid = seeded.midState();

    for (size_t suffix_len : {0u, 16u, 54u, 55u, 64u, 130u}) {
        ByteVec suffixes[8];
        for (auto &s : suffixes)
            s = rng.bytes(suffix_len);

        const uint8_t *ptrs[8];
        uint8_t digests[8][32];
        uint8_t *dptrs[8];
        for (int l = 0; l < 8; ++l) {
            ptrs[l] = suffixes[l].data();
            dptrs[l] = digests[l];
        }
        Sha256x8 hasher(mid);
        hasher.update(ptrs, suffix_len);
        hasher.final(dptrs);

        for (int l = 0; l < 8; ++l) {
            Sha256 scalar(mid);
            scalar.update(suffixes[l]);
            uint8_t expected[32];
            scalar.final(expected);
            EXPECT_EQ(hexEncode(ByteSpan(digests[l], 32)),
                      hexEncode(ByteSpan(expected, 32)))
                << "suffix len " << suffix_len << " lane " << l;
        }
    }
}

TEST(Sha256x8, RejectsUnalignedMidState)
{
    Sha256State mid{};
    mid.bytesCompressed = 63;
    EXPECT_THROW(Sha256x8 h(mid), std::logic_error);
}

TEST(Sha256x8, CompressionCountMatchesEightScalarCalls)
{
    Rng rng(21);
    for (size_t len : {16u, 64u, 200u}) {
        ByteVec msgs[8];
        for (auto &m : msgs)
            m = rng.bytes(len);

        Sha256::resetCompressionCount();
        for (int l = 0; l < 8; ++l)
            (void)Sha256::digest(msgs[l]);
        const uint64_t scalar_count = Sha256::compressionCount();

        Sha256::resetCompressionCount();
        uint8_t digests[8][32];
        digestX8(msgs, digests);
        EXPECT_EQ(Sha256::compressionCount(), scalar_count)
            << "len " << len;
    }
}

TEST(Sha256x8, FusedSeededKernelMatchesIncremental)
{
    if (!sha256x8Avx2Active())
        GTEST_SKIP() << "AVX2 backend unavailable";

    Rng rng(31);
    ByteVec prefix = rng.bytes(64);
    Sha256 seeded;
    seeded.update(prefix);
    const Sha256State mid = seeded.midState();

    // One pre-padded block per lane carrying 40 bytes of data.
    const size_t data_len = 40;
    uint8_t blocks[8][64];
    const uint8_t *bptrs[8];
    ByteVec payloads[8];
    for (int l = 0; l < 8; ++l) {
        payloads[l] = rng.bytes(data_len);
        std::memcpy(blocks[l], payloads[l].data(), data_len);
        blocks[l][data_len] = 0x80;
        std::memset(blocks[l] + data_len + 1, 0, 64 - 9 - data_len);
        storeBe64(blocks[l] + 56, (mid.bytesCompressed + data_len) * 8);
        bptrs[l] = blocks[l];
    }
    uint8_t digests[8][32];
    uint8_t *dptrs[8];
    for (int l = 0; l < 8; ++l)
        dptrs[l] = digests[l];
    sha256Final8SeededAvx2(mid.h, bptrs, dptrs);

    for (int l = 0; l < 8; ++l) {
        Sha256 scalar(mid);
        scalar.update(payloads[l]);
        uint8_t expected[32];
        scalar.final(expected);
        EXPECT_EQ(hexEncode(ByteSpan(digests[l], 32)),
                  hexEncode(ByteSpan(expected, 32)));
    }
}

TEST(Sha256x8, DispatchQueriesAreConsistent)
{
    // Active implies supported implies compiled.
    if (sha256x8Avx2Active()) {
        EXPECT_TRUE(sha256x8Avx2Supported());
    }
    if (sha256x8Avx2Supported()) {
        EXPECT_TRUE(sha256x8Avx2Compiled());
    }

    // The force hook always wins over cpuid.
    sha256x8ForceScalar(true);
    EXPECT_FALSE(sha256x8Avx2Active());
    sha256x8ForceScalar(false);
}

} // namespace
