/**
 * @file
 * Semantics of the emulated PTX instructions (prmt.b32, mad.lo.u32)
 * used by the PTX-flavoured SHA-256 branch.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "hash/ptx_emu.hh"

using namespace herosign;

TEST(PtxPrmt, ByteSwapSelector)
{
    // prmt d, a, 0, 0x0123 reverses the four bytes of a.
    EXPECT_EQ(ptxPrmt(0x01020304u, 0, 0x0123), 0x04030201u);
    EXPECT_EQ(ptxPrmt(0xdeadbeefu, 0, 0x0123), 0xefbeaddeu);
    EXPECT_EQ(ptxByteSwap(0x01020304u), 0x04030201u);
}

TEST(PtxPrmt, IdentitySelector)
{
    // Selector 0x3210 keeps a unchanged.
    EXPECT_EQ(ptxPrmt(0x01020304u, 0xffffffffu, 0x3210), 0x01020304u);
}

TEST(PtxPrmt, SelectsFromSecondOperand)
{
    // Nibbles 4..7 index bytes of b.
    EXPECT_EQ(ptxPrmt(0x00000000u, 0x0a0b0c0du, 0x7654), 0x0a0b0c0du);
    // Mixed: byte0 from a, byte1 from b.
    EXPECT_EQ(ptxPrmt(0x000000aau, 0x000000bbu, 0x0040) & 0xffffu,
              0xbbaau);
}

TEST(PtxPrmt, ReplicateSingleByte)
{
    EXPECT_EQ(ptxPrmt(0x000000cdu, 0, 0x0000), 0xcdcdcdcdu);
}

TEST(PtxPrmt, ByteSwapIsInvolution)
{
    Rng rng(3);
    for (int i = 0; i < 100; ++i) {
        uint32_t v = static_cast<uint32_t>(rng.next());
        EXPECT_EQ(ptxByteSwap(ptxByteSwap(v)), v);
    }
}

TEST(PtxMadLo, BasicAndOverflow)
{
    EXPECT_EQ(ptxMadLo(3, 4, 5), 17u);
    // Low 32 bits only.
    EXPECT_EQ(ptxMadLo(0xffffffffu, 2, 1), 0xffffffffu);
    // With multiplier 1 it is a plain addition (the paper's m = 1).
    Rng rng(4);
    for (int i = 0; i < 100; ++i) {
        uint32_t a = static_cast<uint32_t>(rng.next());
        uint32_t c = static_cast<uint32_t>(rng.next());
        EXPECT_EQ(ptxMadLo(a, 1, c), a + c);
    }
}
