/**
 * @file
 * SHA-256 correctness: FIPS 180-4 / NIST CAVP vectors, incremental
 * API behaviour, mid-state capture, and native-vs-PTX equivalence.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/hex.hh"
#include "common/random.hh"
#include "hash/sha256.hh"

using namespace herosign;

namespace
{

ByteVec
strBytes(const std::string &s)
{
    return ByteVec(s.begin(), s.end());
}

std::string
sha256Hex(ByteSpan data, Sha256Variant v = Sha256Variant::Native)
{
    auto d = Sha256::digest(data, v);
    return hexEncode(ByteSpan(d.data(), d.size()));
}

} // namespace

TEST(Sha256, EmptyString)
{
    EXPECT_EQ(sha256Hex({}),
        "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b"
        "855");
}

TEST(Sha256, Abc)
{
    EXPECT_EQ(sha256Hex(strBytes("abc")),
        "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f2001"
        "5ad");
}

TEST(Sha256, TwoBlockMessage)
{
    EXPECT_EQ(sha256Hex(strBytes(
        "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
        "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db0"
        "6c1");
}

TEST(Sha256, MillionA)
{
    ByteVec msg(1000000, 'a');
    EXPECT_EQ(sha256Hex(msg),
        "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112"
        "cd0");
}

TEST(Sha256, ExactBlockBoundary)
{
    // 64 bytes: forces the padding into a second block.
    ByteVec msg(64, 0x61);
    EXPECT_EQ(sha256Hex(msg),
        "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df15466"
        "8eb");
}

TEST(Sha256, FiftyFiveAndFiftySixBytes)
{
    // 55 bytes is the largest single-block message; 56 forces two.
    ByteVec m55(55, 'a'), m56(56, 'a');
    EXPECT_EQ(sha256Hex(m55),
        "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734"
        "318");
    EXPECT_EQ(sha256Hex(m56),
        "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec67"
        "38a");
}

TEST(Sha256, IncrementalMatchesOneShotAcrossChunkings)
{
    Rng rng(1234);
    ByteVec data = rng.bytes(1024);
    auto expected = Sha256::digest(data);

    for (size_t chunk : {1u, 3u, 7u, 32u, 63u, 64u, 65u, 127u, 1000u}) {
        Sha256 ctx;
        size_t off = 0;
        while (off < data.size()) {
            size_t take = std::min(chunk, data.size() - off);
            ctx.update(ByteSpan(data.data() + off, take));
            off += take;
        }
        uint8_t out[32];
        ctx.final(out);
        EXPECT_EQ(hexEncode(ByteSpan(out, 32)),
                  hexEncode(ByteSpan(expected.data(), 32)))
            << "chunk=" << chunk;
    }
}

TEST(Sha256, EmptyUpdatesAreHarmless)
{
    Sha256 a, b;
    ByteVec msg = strBytes("hello world");
    a.update(msg);
    b.update({});
    b.update(ByteSpan(msg.data(), 5));
    b.update({});
    b.update(ByteSpan(msg.data() + 5, msg.size() - 5));
    uint8_t da[32], db[32];
    a.final(da);
    b.final(db);
    EXPECT_EQ(hexEncode(ByteSpan(da, 32)), hexEncode(ByteSpan(db, 32)));
}

TEST(Sha256, MidStateResume)
{
    Rng rng(99);
    ByteVec prefix = rng.bytes(64); // one full block
    ByteVec suffix = rng.bytes(37);

    Sha256 full;
    full.update(prefix);
    full.update(suffix);
    uint8_t expected[32];
    full.final(expected);

    Sha256 pre;
    pre.update(prefix);
    Sha256State state = pre.midState();

    Sha256 resumed(state);
    resumed.update(suffix);
    uint8_t got[32];
    resumed.final(got);

    EXPECT_EQ(hexEncode(ByteSpan(got, 32)),
              hexEncode(ByteSpan(expected, 32)));
}

TEST(Sha256, MidStateRequiresBlockAlignment)
{
    Sha256 ctx;
    ByteVec data(65, 0xab);
    ctx.update(data);
    EXPECT_THROW(ctx.midState(), std::logic_error);
}

TEST(Sha256, MidStateOfEmptyIsInitialState)
{
    Sha256 ctx;
    Sha256State s = ctx.midState();
    EXPECT_EQ(s.bytesCompressed, 0u);
    EXPECT_EQ(s.h[0], 0x6a09e667u);
    EXPECT_EQ(s.h[7], 0x5be0cd19u);
}

TEST(Sha256, CompressionCountAdvances)
{
    Sha256::resetCompressionCount();
    ByteVec data(128, 0);
    Sha256::digest(data); // 2 data blocks + 1 padding block
    EXPECT_EQ(Sha256::compressionCount(), 3u);
}

class Sha256VariantEquivalence : public ::testing::TestWithParam<size_t>
{
};

TEST_P(Sha256VariantEquivalence, PtxMatchesNative)
{
    Rng rng(GetParam() * 7919 + 1);
    ByteVec data = rng.bytes(GetParam());
    EXPECT_EQ(sha256Hex(data, Sha256Variant::Native),
              sha256Hex(data, Sha256Variant::Ptx));
}

INSTANTIATE_TEST_SUITE_P(Lengths, Sha256VariantEquivalence,
    ::testing::Values(0, 1, 31, 32, 55, 56, 63, 64, 65, 96, 127, 128,
                      129, 255, 256, 1000, 4096));

TEST(Sha256, PtxCompressDirectMatchesNative)
{
    Rng rng(5);
    for (int i = 0; i < 50; ++i) {
        ByteVec block = rng.bytes(64);
        std::array<uint32_t, 8> a = {1, 2, 3, 4, 5, 6, 7,
                                     static_cast<uint32_t>(i)};
        std::array<uint32_t, 8> b = a;
        sha256CompressNative(a, block.data());
        sha256CompressPtx(b, block.data());
        EXPECT_EQ(a, b) << "iteration " << i;
    }
}
