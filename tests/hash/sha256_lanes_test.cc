/**
 * @file
 * Width-generic SHA-256 lane engine tests: lane equivalence against
 * the scalar hasher at widths 8 and 16 (one-shot, mid-state resume,
 * ragged final-block lengths), forced-fallback behaviour, compression
 * accounting, the fused seeded single-block kernels of both SIMD
 * backends, and the unified laneDispatch() override precedence.
 */

#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "common/hex.hh"
#include "common/random.hh"
#include "hash/sha256xN.hh"

using namespace herosign;

namespace
{

/** Force the portable backend for one scope, restoring on exit. */
struct ScopedScalarLanes
{
    ScopedScalarLanes() { sha256LanesForceScalar(true); }
    ~ScopedScalarLanes() { sha256LanesForceScalar(false); }
};

/** Hash @p width lanes one-shot through Sha256Lanes. */
void
digestLanes(unsigned width, const std::vector<ByteVec> &msgs,
            uint8_t digests[][32],
            Sha256Variant variant = Sha256Variant::Native)
{
    const uint8_t *ptrs[Sha256Lanes::maxLanes];
    uint8_t *dptrs[Sha256Lanes::maxLanes];
    for (unsigned l = 0; l < width; ++l) {
        ptrs[l] = msgs[l].data();
        dptrs[l] = digests[l];
    }
    Sha256Lanes hasher(width, variant);
    hasher.update(ptrs, msgs[0].size());
    hasher.final(dptrs);
}

void
expectMatchesScalar(unsigned width, size_t len, uint64_t seed)
{
    Rng rng(seed);
    std::vector<ByteVec> msgs(width);
    for (auto &m : msgs)
        m = rng.bytes(len);

    uint8_t digests[Sha256Lanes::maxLanes][32];
    digestLanes(width, msgs, digests);

    for (unsigned l = 0; l < width; ++l) {
        auto expected = Sha256::digest(msgs[l]);
        EXPECT_EQ(hexEncode(ByteSpan(digests[l], 32)),
                  hexEncode(expected))
            << "width " << width << " lane " << l << " len " << len;
    }
}

TEST(Sha256Lanes, MatchesScalarAcrossLengthsAndWidths)
{
    // Ragged final-block lengths: around the 55/56 padding boundary,
    // the 64-byte block boundary, multi-block, and empty. Widths
    // cover both SIMD widths plus odd partial widths that exercise
    // the greedy 16/8/scalar chunking.
    const size_t lengths[] = {0,  1,  31, 32,  54,  55,  56,
                              63, 64, 65, 119, 128, 200, 576};
    uint64_t seed = 1;
    for (unsigned width : {1u, 3u, 8u, 11u, 16u})
        for (size_t len : lengths)
            expectMatchesScalar(width, len, seed++);
}

TEST(Sha256Lanes, MatchesScalarOnPortableBackend)
{
    ScopedScalarLanes scoped;
    EXPECT_FALSE(sha256LanesAvx2Active());
    EXPECT_FALSE(sha256LanesAvx512Active());
    const size_t lengths[] = {0, 1, 55, 56, 64, 65, 200};
    uint64_t seed = 100;
    for (unsigned width : {8u, 16u})
        for (size_t len : lengths)
            expectMatchesScalar(width, len, seed++);
}

TEST(Sha256Lanes, PtxVariantLanesMatchScalar)
{
    Rng rng(7);
    for (unsigned width : {8u, 16u}) {
        std::vector<ByteVec> msgs(width);
        for (auto &m : msgs)
            m = rng.bytes(96);
        uint8_t digests[Sha256Lanes::maxLanes][32];
        digestLanes(width, msgs, digests, Sha256Variant::Ptx);
        for (unsigned l = 0; l < width; ++l) {
            auto expected = Sha256::digest(msgs[l], Sha256Variant::Ptx);
            EXPECT_EQ(hexEncode(ByteSpan(digests[l], 32)),
                      hexEncode(expected));
        }
    }
}

TEST(Sha256Lanes, MidStateResumeMatchesScalar)
{
    Rng rng(11);
    ByteVec prefix = rng.bytes(64); // one whole block
    Sha256 seeded;
    seeded.update(prefix);
    const Sha256State mid = seeded.midState();

    for (unsigned width : {8u, 16u}) {
        for (size_t suffix_len : {0u, 16u, 54u, 55u, 64u, 130u}) {
            std::vector<ByteVec> suffixes(width);
            for (auto &s : suffixes)
                s = rng.bytes(suffix_len);

            const uint8_t *ptrs[Sha256Lanes::maxLanes];
            uint8_t digests[Sha256Lanes::maxLanes][32];
            uint8_t *dptrs[Sha256Lanes::maxLanes];
            for (unsigned l = 0; l < width; ++l) {
                ptrs[l] = suffixes[l].data();
                dptrs[l] = digests[l];
            }
            Sha256Lanes hasher(width, mid);
            hasher.update(ptrs, suffix_len);
            hasher.final(dptrs);

            for (unsigned l = 0; l < width; ++l) {
                Sha256 scalar(mid);
                scalar.update(suffixes[l]);
                uint8_t expected[32];
                scalar.final(expected);
                EXPECT_EQ(hexEncode(ByteSpan(digests[l], 32)),
                          hexEncode(ByteSpan(expected, 32)))
                    << "width " << width << " suffix len " << suffix_len
                    << " lane " << l;
            }
        }
    }
}

TEST(Sha256Lanes, RejectsUnalignedMidStateAndBadWidths)
{
    Sha256State mid{};
    mid.bytesCompressed = 63;
    EXPECT_THROW(Sha256Lanes h(8, mid), std::logic_error);
    EXPECT_THROW(Sha256Lanes h(0), std::invalid_argument);
    EXPECT_THROW(Sha256Lanes h(17), std::invalid_argument);
}

TEST(Sha256Lanes, CompressionCountMatchesScalarCallsAtEveryWidth)
{
    Rng rng(21);
    for (unsigned width : {5u, 8u, 16u}) {
        for (size_t len : {16u, 64u, 200u}) {
            std::vector<ByteVec> msgs(width);
            for (auto &m : msgs)
                m = rng.bytes(len);

            Sha256::resetCompressionCount();
            for (unsigned l = 0; l < width; ++l)
                (void)Sha256::digest(msgs[l]);
            const uint64_t scalar_count = Sha256::compressionCount();

            Sha256::resetCompressionCount();
            uint8_t digests[Sha256Lanes::maxLanes][32];
            digestLanes(width, msgs, digests);
            EXPECT_EQ(Sha256::compressionCount(), scalar_count)
                << "width " << width << " len " << len;
        }
    }
}

/** Pre-padded single-block lanes for the fused seeded kernels. */
template <size_t W>
void
fusedKernelCase(const Sha256State &mid,
                void (*kernel)(const std::array<uint32_t, 8> &,
                               const uint8_t *const[W],
                               uint8_t *const[W]))
{
    Rng rng(31 + W);
    const size_t data_len = 40;
    uint8_t blocks[W][64];
    const uint8_t *bptrs[W];
    ByteVec payloads[W];
    for (size_t l = 0; l < W; ++l) {
        payloads[l] = rng.bytes(data_len);
        std::memcpy(blocks[l], payloads[l].data(), data_len);
        blocks[l][data_len] = 0x80;
        std::memset(blocks[l] + data_len + 1, 0, 64 - 9 - data_len);
        storeBe64(blocks[l] + 56, (mid.bytesCompressed + data_len) * 8);
        bptrs[l] = blocks[l];
    }
    uint8_t digests[W][32];
    uint8_t *dptrs[W];
    for (size_t l = 0; l < W; ++l)
        dptrs[l] = digests[l];
    kernel(mid.h, bptrs, dptrs);

    for (size_t l = 0; l < W; ++l) {
        Sha256 scalar(mid);
        scalar.update(payloads[l]);
        uint8_t expected[32];
        scalar.final(expected);
        EXPECT_EQ(hexEncode(ByteSpan(digests[l], 32)),
                  hexEncode(ByteSpan(expected, 32)))
            << "fused width " << W << " lane " << l;
    }
}

TEST(Sha256Lanes, FusedSeededAvx2KernelMatchesIncremental)
{
    if (!sha256LanesAvx2Active())
        GTEST_SKIP() << "AVX2 backend unavailable";

    Rng rng(31);
    ByteVec prefix = rng.bytes(64);
    Sha256 seeded;
    seeded.update(prefix);
    fusedKernelCase<8>(seeded.midState(), sha256Final8SeededAvx2);
}

TEST(Sha256Lanes, FusedSeededAvx512KernelMatchesIncremental)
{
    if (!sha256LanesAvx512Active())
        GTEST_SKIP() << "AVX-512 backend unavailable";

    Rng rng(37);
    ByteVec prefix = rng.bytes(64);
    Sha256 seeded;
    seeded.update(prefix);
    fusedKernelCase<16>(seeded.midState(), sha256Final16SeededAvx512);
}

TEST(Sha256Lanes, GenericAvx512CompressionMatchesScalar)
{
    if (!sha256LanesAvx512Active())
        GTEST_SKIP() << "AVX-512 backend unavailable";

    Rng rng(41);
    std::array<uint32_t, 8> states[16];
    std::array<uint32_t, 8> expected[16];
    ByteVec blocks[16];
    const uint8_t *bptrs[16];
    for (int l = 0; l < 16; ++l) {
        ByteVec raw = rng.bytes(32);
        for (int i = 0; i < 8; ++i)
            states[l][i] = loadBe32(raw.data() + 4 * i);
        expected[l] = states[l];
        blocks[l] = rng.bytes(64);
        bptrs[l] = blocks[l].data();
        sha256CompressNative(expected[l], blocks[l].data());
    }
    sha256Compress16Avx512(states, bptrs);
    for (int l = 0; l < 16; ++l)
        EXPECT_EQ(states[l], expected[l]) << "lane " << l;
}

TEST(LaneDispatch, QueriesAreConsistent)
{
    // Active implies supported implies compiled, per ISA.
    if (sha256LanesAvx2Active()) {
        EXPECT_TRUE(sha256LanesAvx2Supported());
    }
    if (sha256LanesAvx2Supported()) {
        EXPECT_TRUE(sha256LanesAvx2Compiled());
    }
    if (sha256LanesAvx512Active()) {
        EXPECT_TRUE(sha256LanesAvx512Supported());
    }
    if (sha256LanesAvx512Supported()) {
        EXPECT_TRUE(sha256LanesAvx512Compiled());
    }

    // The struct and the per-ISA queries are one decision.
    const LaneDispatch d = laneDispatch();
    EXPECT_EQ(d.avx2, sha256LanesAvx2Active());
    EXPECT_EQ(d.avx512, sha256LanesAvx512Active());
    EXPECT_EQ(d.width, d.avx512 ? 16u : 8u);
    switch (d.backend) {
    case LaneBackend::Avx512: EXPECT_TRUE(d.avx512); break;
    case LaneBackend::Avx2:
        EXPECT_TRUE(d.avx2);
        EXPECT_FALSE(d.avx512);
        break;
    case LaneBackend::Scalar:
        EXPECT_FALSE(d.avx2);
        EXPECT_FALSE(d.avx512);
        break;
    }
}

TEST(LaneDispatch, OverridePrecedence)
{
    // Force-scalar beats cpuid for BOTH ISAs at once.
    sha256LanesForceScalar(true);
    EXPECT_FALSE(sha256LanesAvx2Active());
    EXPECT_FALSE(sha256LanesAvx512Active());
    EXPECT_EQ(laneDispatch().backend, LaneBackend::Scalar);
    EXPECT_EQ(laneDispatch().width, 8u);

    // The AVX-512 kill switch is subordinate to force-scalar...
    sha256LanesDisableAvx512(false);
    EXPECT_FALSE(sha256LanesAvx512Active());
    sha256LanesForceScalar(false);

    // ...and on its own only pins dispatch to the width-8 path.
    sha256LanesDisableAvx512(true);
    EXPECT_FALSE(sha256LanesAvx512Active());
    EXPECT_EQ(laneDispatch().width, 8u);
    EXPECT_EQ(sha256LanesAvx2Active(),
              sha256LanesAvx2Supported() &&
                  !laneEnvFlagEnabled("HEROSIGN_DISABLE_AVX2"));
    sha256LanesDisableAvx512(false);
}

TEST(LaneDispatch, EnvFlagParseSemantics)
{
#ifdef _WIN32
    GTEST_SKIP() << "POSIX setenv/unsetenv unavailable";
#else
    // The knob semantics shared by HEROSIGN_DISABLE_AVX2/AVX512:
    // any non-empty value except exactly "0" is truthy. (The dispatch
    // snapshot itself is taken at first use — process-level coverage
    // of the snapshot lives in the CI lane-matrix jobs.)
    const char *var = "HEROSIGN_TEST_LANE_FLAG";
    ::unsetenv(var);
    EXPECT_FALSE(laneEnvFlagEnabled(var));
    ::setenv(var, "", 1);
    EXPECT_FALSE(laneEnvFlagEnabled(var));
    ::setenv(var, "0", 1);
    EXPECT_FALSE(laneEnvFlagEnabled(var));
    ::setenv(var, "1", 1);
    EXPECT_TRUE(laneEnvFlagEnabled(var));
    ::setenv(var, "00", 1);
    EXPECT_TRUE(laneEnvFlagEnabled(var)); // only exactly "0" is false
    ::setenv(var, "off", 1);
    EXPECT_TRUE(laneEnvFlagEnabled(var));
    ::unsetenv(var);
#endif
}

} // namespace
