/**
 * @file
 * SHA-512 correctness against FIPS 180-4 vectors.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/hex.hh"
#include "common/random.hh"
#include "hash/sha512.hh"

using namespace herosign;

namespace
{

std::string
sha512Hex(ByteSpan data)
{
    auto d = Sha512::digest(data);
    return hexEncode(ByteSpan(d.data(), d.size()));
}

ByteVec
strBytes(const std::string &s)
{
    return ByteVec(s.begin(), s.end());
}

} // namespace

TEST(Sha512, Empty)
{
    EXPECT_EQ(sha512Hex({}),
        "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce"
        "9ce47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af9"
        "27da3e");
}

TEST(Sha512, Abc)
{
    EXPECT_EQ(sha512Hex(strBytes("abc")),
        "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d"
        "39a2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa5"
        "4ca49f");
}

TEST(Sha512, TwoBlockMessage)
{
    EXPECT_EQ(sha512Hex(strBytes(
        "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijkl"
        "mnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu")),
        "8e959b75dae313da8cf4f72814fc143f8f7779c6eb9f7fa17299aeadb6889"
        "018501d289e4900f7e4331b99dec4b5433ac7d329eeb6dd26545e96e55b87"
        "4be909");
}

TEST(Sha512, IncrementalMatchesOneShot)
{
    Rng rng(7);
    ByteVec data = rng.bytes(777);
    auto expected = Sha512::digest(data);

    for (size_t chunk : {1u, 63u, 64u, 127u, 128u, 129u, 500u}) {
        Sha512 ctx;
        size_t off = 0;
        while (off < data.size()) {
            size_t take = std::min(chunk, data.size() - off);
            ctx.update(ByteSpan(data.data() + off, take));
            off += take;
        }
        uint8_t out[64];
        ctx.final(out);
        EXPECT_EQ(hexEncode(ByteSpan(out, 64)),
                  hexEncode(ByteSpan(expected.data(), 64)))
            << "chunk=" << chunk;
    }
}

TEST(Sha512, BlockBoundaryLengths)
{
    // 111/112 straddle the single-block padding limit for SHA-512.
    for (size_t len : {111u, 112u, 127u, 128u, 129u}) {
        ByteVec data(len, 'x');
        Sha512 ctx;
        ctx.update(data);
        uint8_t out[64];
        ctx.final(out);
        // Compare against one-shot of the same implementation (an
        // internal-consistency check; absolute vectors above anchor
        // the implementation).
        auto expected = Sha512::digest(data);
        EXPECT_TRUE(ctEqual(ByteSpan(out, 64),
                            ByteSpan(expected.data(), 64)))
            << "len=" << len;
    }
}
