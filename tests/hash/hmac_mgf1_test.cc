/**
 * @file
 * HMAC-SHA-256 against RFC 4231 vectors; MGF1-SHA-256 against its
 * counter-block definition (RFC 8017 B.2.1).
 */

#include <gtest/gtest.h>

#include <string>

#include "common/hex.hh"
#include "common/random.hh"
#include "hash/hmac.hh"
#include "hash/mgf1.hh"
#include "hash/sha256.hh"

using namespace herosign;

namespace
{

std::string
hmacHex(ByteSpan key, ByteSpan msg)
{
    auto d = HmacSha256::mac(key, msg);
    return hexEncode(ByteSpan(d.data(), d.size()));
}

ByteVec
strBytes(const std::string &s)
{
    return ByteVec(s.begin(), s.end());
}

} // namespace

TEST(HmacSha256, Rfc4231Case1)
{
    ByteVec key(20, 0x0b);
    EXPECT_EQ(hmacHex(key, strBytes("Hi There")),
        "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32c"
        "ff7");
}

TEST(HmacSha256, Rfc4231Case2)
{
    EXPECT_EQ(hmacHex(strBytes("Jefe"),
                      strBytes("what do ya want for nothing?")),
        "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3"
        "843");
}

TEST(HmacSha256, Rfc4231Case3)
{
    ByteVec key(20, 0xaa);
    ByteVec msg(50, 0xdd);
    EXPECT_EQ(hmacHex(key, msg),
        "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced56"
        "5fe");
}

TEST(HmacSha256, Rfc4231Case6LargerThanBlockKey)
{
    ByteVec key(131, 0xaa);
    EXPECT_EQ(hmacHex(key, strBytes(
        "Test Using Larger Than Block-Size Key - Hash Key First")),
        "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37"
        "f54");
}

TEST(HmacSha256, IncrementalMatchesOneShot)
{
    Rng rng(42);
    ByteVec key = rng.bytes(32);
    ByteVec msg = rng.bytes(300);

    auto one_shot = HmacSha256::mac(key, msg);

    HmacSha256 ctx(key);
    ctx.update(ByteSpan(msg.data(), 100));
    ctx.update(ByteSpan(msg.data() + 100, 200));
    uint8_t out[32];
    ctx.final(out);

    EXPECT_TRUE(ctEqual(ByteSpan(out, 32),
                        ByteSpan(one_shot.data(), 32)));
}

TEST(Mgf1Sha256, MatchesCounterBlockDefinition)
{
    Rng rng(9);
    ByteVec seed = rng.bytes(48);

    ByteVec out(100);
    mgf1Sha256(out, seed);

    // Block i of the output must equal SHA-256(seed || BE32(i)).
    for (uint32_t i = 0; i * 32 < out.size(); ++i) {
        ByteVec block_in = seed;
        uint8_t ctr[4];
        storeBe32(ctr, i);
        append(block_in, ByteSpan(ctr, 4));
        auto block = Sha256::digest(block_in);
        size_t take = std::min<size_t>(32, out.size() - i * 32);
        EXPECT_TRUE(ctEqual(ByteSpan(out.data() + i * 32, take),
                            ByteSpan(block.data(), take)))
            << "block " << i;
    }
}

TEST(Mgf1Sha256, PrefixConsistency)
{
    // A longer mask must begin with the shorter mask of the same seed.
    Rng rng(10);
    ByteVec seed = rng.bytes(16);
    ByteVec short_mask(20), long_mask(77);
    mgf1Sha256(short_mask, seed);
    mgf1Sha256(long_mask, seed);
    EXPECT_TRUE(ctEqual(short_mask,
                        ByteSpan(long_mask.data(), short_mask.size())));
}

TEST(Mgf1Sha256, ZeroLengthOutput)
{
    ByteVec seed{1, 2, 3};
    ByteVec out;
    mgf1Sha256(out, seed); // must not crash
    EXPECT_TRUE(out.empty());
}
