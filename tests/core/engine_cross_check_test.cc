/**
 * @file
 * Cross-check: core::SignEngine (the GPU-simulated kernel path) must
 * produce byte-identical signatures to the plain sphincs::SphincsPlus
 * reference for keys expanded from the same fixed seed — across
 * parameter sets, engine configurations, message sizes and devices.
 * This is the contract every performance PR has to preserve.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "common/hex.hh"
#include "core/engine.hh"

using namespace herosign;
using namespace herosign::core;
using gpu::DeviceProps;
using sphincs::Params;
using sphincs::SphincsPlus;

namespace
{

ByteVec
fixedSeed(const Params &p)
{
    ByteVec seed(3 * p.n);
    std::iota(seed.begin(), seed.end(), static_cast<uint8_t>(0));
    return seed;
}

ByteVec
patternMsg(size_t len)
{
    ByteVec msg(len);
    for (size_t i = 0; i < len; ++i)
        msg[i] = static_cast<uint8_t>(0x37 + 11 * i);
    return msg;
}

} // namespace

TEST(EngineCrossCheck, SameSeedSameSignatureAllParamSets)
{
    for (const Params *pp :
         {&Params::sphincs128f(), &Params::sphincs192f(),
          &Params::sphincs256f()}) {
        SphincsPlus scheme(*pp);
        auto kp = scheme.keygenFromSeed(fixedSeed(*pp));
        SignEngine engine(*pp, DeviceProps::rtx4090(),
                          EngineConfig::hero());

        ByteVec msg = patternMsg(48);
        auto outcome = engine.sign(msg, kp.sk);
        ByteVec ref = scheme.sign(msg, kp.sk);
        EXPECT_EQ(hexEncode(outcome.signature), hexEncode(ref))
            << pp->name;
        EXPECT_TRUE(scheme.verify(msg, outcome.signature, kp.pk));
    }
}

TEST(EngineCrossCheck, AllConfigPresetsMatchReference)
{
    const Params &p = Params::sphincs128f();
    SphincsPlus scheme(p);
    auto kp = scheme.keygenFromSeed(fixedSeed(p));
    ByteVec msg = patternMsg(32);
    ByteVec ref = scheme.sign(msg, kp.sk);

    for (auto cfg :
         {EngineConfig::baseline(), EngineConfig::stepMmtp(),
          EngineConfig::stepFuse(), EngineConfig::stepPtx(),
          EngineConfig::stepHybridMem(), EngineConfig::stepFreeBank(),
          EngineConfig::hero()}) {
        SignEngine engine(p, DeviceProps::rtx4090(), cfg);
        auto outcome = engine.sign(msg, kp.sk);
        EXPECT_EQ(hexEncode(outcome.signature), hexEncode(ref))
            << cfg.name;
    }
}

TEST(EngineCrossCheck, MessageSizeSweep)
{
    const Params &p = Params::sphincs128f();
    SphincsPlus scheme(p);
    auto kp = scheme.keygenFromSeed(fixedSeed(p));
    SignEngine engine(p, DeviceProps::rtx4090(), EngineConfig::hero());

    for (size_t len : {size_t{0}, size_t{1}, size_t{63}, size_t{64},
                       size_t{65}, size_t{1000}}) {
        ByteVec msg = patternMsg(len);
        auto outcome = engine.sign(msg, kp.sk);
        EXPECT_EQ(hexEncode(outcome.signature),
                  hexEncode(scheme.sign(msg, kp.sk)))
            << "len=" << len;
    }
}

TEST(EngineCrossCheck, OptRandMatchesReference)
{
    const Params &p = Params::sphincs192f();
    SphincsPlus scheme(p);
    auto kp = scheme.keygenFromSeed(fixedSeed(p));
    SignEngine engine(p, DeviceProps::rtx4090(), EngineConfig::hero());

    ByteVec msg = patternMsg(24);
    ByteVec opt(p.n, 0x5a);
    auto outcome = engine.sign(msg, kp.sk, opt);
    EXPECT_EQ(hexEncode(outcome.signature),
              hexEncode(scheme.sign(msg, kp.sk, opt)));
}

TEST(EngineCrossCheck, EveryPlatformMatchesReference)
{
    const Params &p = Params::sphincs128f();
    SphincsPlus scheme(p);
    auto kp = scheme.keygenFromSeed(fixedSeed(p));
    ByteVec msg = patternMsg(16);
    ByteVec ref = scheme.sign(msg, kp.sk);

    for (const auto &dev : DeviceProps::allPlatforms()) {
        SignEngine engine(p, dev, EngineConfig::hero());
        auto outcome = engine.sign(msg, kp.sk);
        EXPECT_EQ(hexEncode(outcome.signature), hexEncode(ref))
            << dev.name;
    }
}

TEST(EngineCrossCheck, VerifyBatchMatchesScalarVerify)
{
    const Params &p = Params::sphincs128f();
    SphincsPlus scheme(p);
    auto kp = scheme.keygenFromSeed(fixedSeed(p));
    SignEngine engine(p, DeviceProps::rtx4090(), EngineConfig::hero());

    std::vector<ByteVec> msgs;
    std::vector<ByteVec> sigs;
    for (unsigned i = 0; i < 5; ++i) {
        msgs.push_back(patternMsg(16 + i));
        sigs.push_back(scheme.sign(msgs.back(), kp.sk));
    }
    sigs[3][40] ^= 0x02; // one corrupted lane

    auto out = engine.verifyBatch(msgs, sigs, kp.pk);
    ASSERT_EQ(out.ok.size(), msgs.size());
    EXPECT_EQ(out.accepted, 4u);
    EXPECT_EQ(out.rejected, 1u);
    EXPECT_GT(out.verifiesPerSec, 0.0);
    for (size_t i = 0; i < msgs.size(); ++i) {
        EXPECT_EQ(out.ok[i] != 0, scheme.verify(msgs[i], sigs[i], kp.pk))
            << "lane " << i;
    }

    EXPECT_THROW(engine.verifyBatch(msgs, {}, kp.pk),
                 std::invalid_argument);
    auto empty = engine.verifyBatch({}, {}, kp.pk);
    EXPECT_TRUE(empty.ok.empty());
}
