/**
 * @file
 * Direct kernel tests: each simulated kernel's functional output is
 * compared byte-for-byte against the scalar reference path, across
 * geometries (baseline / MMTP / fused / relax, naive / padded).
 */

#include <gtest/gtest.h>

#include "common/hex.hh"
#include "common/random.hh"
#include "core/kernels.hh"
#include "sphincs/fors.hh"
#include "sphincs/merkle.hh"
#include "sphincs/thash.hh"
#include "sphincs/wots.hh"

using namespace herosign;
using namespace herosign::core;
using sphincs::Address;
using sphincs::AddrType;
using sphincs::Context;
using sphincs::Params;

namespace
{

const gpu::DeviceProps &
dev()
{
    static gpu::DeviceProps d = gpu::DeviceProps::rtx4090();
    return d;
}

const gpu::CostParams &
cp()
{
    static gpu::CostParams p;
    return p;
}

/** Pack FORS indices into the mhash bit layout (a bits each, MSB). */
ByteVec
packIndices(const Params &p, const std::vector<uint32_t> &indices)
{
    ByteVec out(p.forsMsgBytes(), 0);
    size_t bit = 0;
    for (unsigned i = 0; i < p.forsTrees; ++i) {
        for (unsigned b = 0; b < p.forsHeight; ++b, ++bit) {
            const uint32_t v =
                (indices[i] >> (p.forsHeight - 1 - b)) & 1u;
            out[bit >> 3] |= v << (7 - (bit & 7));
        }
    }
    return out;
}

struct Fixture
{
    Params params;
    std::unique_ptr<Context> ctx;
    MessageJob job;

    explicit Fixture(const Params &p, uint64_t seed = 42) : params(p)
    {
        Rng rng(seed);
        ByteVec pk_seed = rng.bytes(p.n);
        ByteVec sk_seed = rng.bytes(p.n);
        ctx = std::make_unique<Context>(p, pk_seed, sk_seed);
        job.ctx = ctx.get();
        job.allocate(p);
        job.idxTree = rng.next() & ((p.treeBits() >= 64)
                                        ? ~0ULL
                                        : ((1ULL << p.treeBits()) - 1));
        job.idxLeaf = static_cast<uint32_t>(
            rng.below(p.treeLeaves()));
        job.forsIndices.resize(p.forsTrees);
        for (auto &v : job.forsIndices)
            v = static_cast<uint32_t>(rng.below(p.forsLeaves()));
        uint64_t tree = job.idxTree;
        uint32_t leaf = job.idxLeaf;
        for (unsigned layer = 0; layer < p.layers; ++layer) {
            job.layerTree[layer] = tree;
            job.layerLeaf[layer] = leaf;
            leaf = static_cast<uint32_t>(
                tree & ((1ULL << p.treeHeight()) - 1));
            tree >>= p.treeHeight();
        }
        Rng msg_rng(seed + 1);
        msg_rng.fill(job.wotsMessages);
    }

    Address
    forsAddress() const
    {
        Address a;
        a.setLayer(0);
        a.setTree(job.idxTree);
        a.setType(AddrType::ForsTree);
        a.setKeypair(job.idxLeaf);
        return a;
    }

    gpu::ExecResult
    runFors(const ForsGeometry &geo, bool hybrid = true,
            Sha256Variant v = Sha256Variant::Native)
    {
        ForsSignKernel body(job, geo, MemPolicy{hybrid}, v);
        gpu::LaunchSpec spec;
        spec.blockDim = body.blockThreads();
        spec.sharedBytes = body.sharedBytes();
        spec.gridDim = 1;
        // A fresh kernel instance owned by the spec.
        spec.body = std::make_shared<ForsSignKernel>(job, geo,
                                                     MemPolicy{hybrid},
                                                     v);
        return gpu::executeLaunch(dev(), cp(), spec);
    }
};

/** Reference FORS signature for the same job inputs. */
void
referenceFors(const Fixture &f, ByteVec &sig, ByteVec &pk)
{
    ByteVec mhash = packIndices(f.params, f.job.forsIndices);
    sig.assign(f.params.forsSigBytes(), 0);
    pk.assign(f.params.n, 0);
    sphincs::forsSign(sig.data(), pk.data(), mhash.data(), *f.ctx,
                      f.forsAddress());
}

} // namespace

using ForsGeomParam = std::tuple<const Params *, int>;

class ForsKernelGeometry : public ::testing::TestWithParam<ForsGeomParam>
{
};

TEST_P(ForsKernelGeometry, MatchesReference)
{
    const auto [pp, mode] = GetParam();
    const Params &p = *pp;
    Fixture f(p, 1000 + mode);

    ForsGeometry geo;
    const uint32_t t = p.forsLeaves();
    switch (mode) {
      case 0: // baseline: one tree at a time, naive layout
        geo = ForsGeometry{t, 1, 1, false, false};
        break;
      case 1: // MMTP: several whole trees, padded
        geo.treesPerSet = std::max(1u, std::min(p.forsTrees, 1024 / t));
        geo.fusedSets = 1;
        geo.threadsPerSet = geo.treesPerSet * t;
        geo.padded = true;
        break;
      case 2: // fused
        geo.treesPerSet = std::max(1u, std::min(p.forsTrees, 1024 / t));
        geo.fusedSets = 2;
        geo.threadsPerSet = geo.treesPerSet * t;
        geo.padded = true;
        break;
      case 3: // relax
        geo.relax = true;
        geo.treesPerSet = std::max(1u, std::min(p.forsTrees,
                                                1024 / (t / 2)));
        geo.fusedSets = 1;
        geo.threadsPerSet = geo.treesPerSet * (t / 2);
        geo.padded = true;
        break;
    }
    if (mode == 0) {
        geo.treesPerSet = 1;
        geo.fusedSets = 1;
        geo.threadsPerSet = t;
        geo.padded = false;
    }

    f.runFors(geo);

    ByteVec ref_sig, ref_pk;
    referenceFors(f, ref_sig, ref_pk);
    EXPECT_EQ(hexEncode(f.job.forsSig), hexEncode(ref_sig))
        << p.name << " mode " << mode;
    EXPECT_EQ(hexEncode(f.job.forsPk), hexEncode(ref_pk));
}

namespace
{

std::string
forsGeomName(const ::testing::TestParamInfo<ForsGeomParam> &info)
{
    static const char *modes[] = {"baseline", "mmtp", "fused", "relax"};
    std::string name = std::get<0>(info.param)->name;
    return name.substr(name.find('-') + 1) + "_" +
           modes[std::get<1>(info.param)];
}

} // namespace

INSTANTIATE_TEST_SUITE_P(AllSetsAndModes, ForsKernelGeometry,
    ::testing::Combine(
        ::testing::Values(&Params::sphincs128f(),
                          &Params::sphincs192f(),
                          &Params::sphincs256f()),
        ::testing::Values(0, 1, 2, 3)),
    forsGeomName);

TEST(ForsKernel, PaddedLayoutHasNoConflictsNaiveDoes)
{
    const Params &p = Params::sphincs128f();
    Fixture fp(p, 7), fn(p, 7);

    ForsGeometry padded{704, 11, 3, false, true};
    ForsGeometry naive{704, 11, 3, false, false};

    auto rp = fp.runFors(padded);
    auto rn = fn.runFors(naive);

    EXPECT_EQ(rp.profile.counters.sharedLoadConflicts, 0u);
    EXPECT_EQ(rp.profile.counters.sharedStoreConflicts, 0u);
    EXPECT_GT(rn.profile.counters.sharedLoadConflicts, 0u);
    // Both still produce identical signatures.
    EXPECT_EQ(hexEncode(fp.job.forsSig), hexEncode(fn.job.forsSig));
}

TEST(ForsKernel, RelaxHalvesSharedMemory)
{
    const Params &p = Params::sphincs256f();
    Fixture f(p, 9);
    ForsGeometry plain{512, 1, 1, false, true};
    ForsGeometry relax{256, 1, 1, true, true};
    ForsSignKernel kp(f.job, plain, MemPolicy{}, Sha256Variant::Native);
    ForsSignKernel kr(f.job, relax, MemPolicy{}, Sha256Variant::Native);
    // Relax keeps only levels >= 1: about half the footprint.
    EXPECT_LT(kr.sharedBytes(), kp.sharedBytes() * 0.6);
}

TEST(ForsKernel, HashCountMatchesClosedForm)
{
    // Leaf gen: t x (PRF + F); internal: t - 1 H per tree; final pk.
    const Params &p = Params::sphincs128f();
    Fixture f(p, 11);
    ForsGeometry geo{704, 11, 3, false, true};
    auto r = f.runFors(geo);
    const uint64_t t = p.forsLeaves();
    const uint64_t per_tree = 2 * t + (t - 1);
    const uint64_t expected_min = p.forsTrees * per_tree;
    EXPECT_GE(r.totals.hashes, expected_min);
    // The only extra hashing is the k-root compression.
    EXPECT_LE(r.totals.hashes, expected_min + 64);
}

TEST(ForsKernel, RejectsInconsistentGeometry)
{
    const Params &p = Params::sphincs128f();
    Fixture f(p, 13);
    ForsGeometry bad{703, 11, 3, false, true}; // not Ntree * t
    EXPECT_THROW(ForsSignKernel(f.job, bad, MemPolicy{},
                                Sha256Variant::Native),
                 std::invalid_argument);
}

class TreeKernelSets : public ::testing::TestWithParam<const Params *>
{
};

TEST_P(TreeKernelSets, MatchesMerkleSignReference)
{
    const Params &p = *GetParam();
    Fixture f(p, 21);

    TreeSignKernel body(f.job, true, MemPolicy{}, Sha256Variant::Native);
    gpu::LaunchSpec spec;
    spec.blockDim = body.blockThreads();
    spec.sharedBytes = body.sharedBytes();
    spec.gridDim = 1;
    spec.body = std::make_shared<TreeSignKernel>(
        f.job, true, MemPolicy{}, Sha256Variant::Native);
    gpu::executeLaunch(dev(), cp(), spec);

    // Reference: per layer, treehash root + auth path.
    for (unsigned layer = 0; layer < p.layers; ++layer) {
        Address tree_adrs;
        tree_adrs.setLayer(layer);
        tree_adrs.setTree(f.job.layerTree[layer]);
        tree_adrs.setType(AddrType::Tree);
        ByteVec root(p.n), auth(p.treeHeight() * p.n);
        auto gen_leaf = [&](uint8_t *out, uint32_t idx) {
            sphincs::wotsGenLeaf(out, *f.ctx, layer,
                                 f.job.layerTree[layer], idx);
        };
        sphincs::treehash(root.data(), auth.data(), *f.ctx,
                          f.job.layerLeaf[layer], 0, p.treeHeight(),
                          gen_leaf, tree_adrs);

        EXPECT_EQ(hexEncode(ByteSpan(
                      f.job.roots.data() + layer * p.n, p.n)),
                  hexEncode(root))
            << p.name << " layer " << layer;
        EXPECT_EQ(hexEncode(ByteSpan(f.job.authPaths.data() +
                                         layer * auth.size(),
                                     auth.size())),
                  hexEncode(auth))
            << p.name << " layer " << layer;
    }
}

INSTANTIATE_TEST_SUITE_P(AllSets, TreeKernelSets,
    ::testing::Values(&Params::sphincs128f(), &Params::sphincs192f(),
                      &Params::sphincs256f()),
    [](const ::testing::TestParamInfo<const Params *> &info) {
        std::string name = info.param->name;
        return name.substr(name.find('-') + 1);
    });

TEST(TreeKernel, SharedMemoryMatchesPaperFootprints)
{
    // §III-B1: roughly 1 KB / 4.125 KB / 8.5 KB for the d subtrees.
    auto footprint = [](const Params &p) {
        Fixture f(p, 31);
        TreeSignKernel body(f.job, true, MemPolicy{},
                            Sha256Variant::Native);
        return body.sharedBytes();
    };
    EXPECT_NEAR(footprint(Params::sphincs128f()), 176 * 16, 176 * 16);
    EXPECT_LE(footprint(Params::sphincs192f()), 6336u); // 4.125 KB + skew pads
    EXPECT_LE(footprint(Params::sphincs256f()), 10 * 1024);
}

class WotsKernelSets : public ::testing::TestWithParam<const Params *>
{
};

TEST_P(WotsKernelSets, MatchesWotsSignReference)
{
    const Params &p = *GetParam();
    Fixture f(p, 41);

    WotsSignKernel body(f.job, false, true, MemPolicy{},
                        Sha256Variant::Native);
    gpu::LaunchSpec spec;
    spec.blockDim = body.blockThreads();
    spec.gridDim = 1;
    spec.body = std::make_shared<WotsSignKernel>(
        f.job, false, true, MemPolicy{}, Sha256Variant::Native);
    gpu::executeLaunch(dev(), cp(), spec);

    for (unsigned layer = 0; layer < p.layers; ++layer) {
        Address adrs;
        adrs.setLayer(layer);
        adrs.setTree(f.job.layerTree[layer]);
        adrs.setType(AddrType::WotsHash);
        adrs.setKeypair(f.job.layerLeaf[layer]);
        ByteVec ref(p.wotsSigBytes());
        sphincs::wotsSign(ref.data(),
                          f.job.wotsMessages.data() + layer * p.n,
                          *f.ctx, adrs);
        EXPECT_EQ(hexEncode(ByteSpan(f.job.wotsSigs.data() +
                                         layer * p.wotsSigBytes(),
                                     p.wotsSigBytes())),
                  hexEncode(ref))
            << p.name << " layer " << layer;
    }
}

INSTANTIATE_TEST_SUITE_P(AllSets, WotsKernelSets,
    ::testing::Values(&Params::sphincs128f(), &Params::sphincs192f(),
                      &Params::sphincs256f()),
    [](const ::testing::TestParamInfo<const Params *> &info) {
        std::string name = info.param->name;
        return name.substr(name.find('-') + 1);
    });

TEST(WotsKernel, FullChainModeChargesMoreButSignsSame)
{
    const Params &p = Params::sphincs128f();
    Fixture fa(p, 51), fb(p, 51);

    auto run = [&](Fixture &f, bool full) {
        gpu::LaunchSpec spec;
        auto body = std::make_shared<WotsSignKernel>(
            f.job, full, !full, MemPolicy{}, Sha256Variant::Native);
        spec.blockDim = body->blockThreads();
        spec.gridDim = 1;
        spec.body = body;
        return gpu::executeLaunch(dev(), cp(), spec);
    };
    auto partial = run(fa, false);
    auto full = run(fb, true);

    EXPECT_EQ(hexEncode(fa.job.wotsSigs), hexEncode(fb.job.wotsSigs));
    // TCAS-style full chains hash substantially more (§IV-D).
    EXPECT_GT(full.totals.hashes, partial.totals.hashes * 3 / 2);
}

TEST(WotsKernel, BlockThreadsCapAt1024)
{
    const Params &p = Params::sphincs256f(); // 17 x 67 = 1139 chains
    Fixture f(p, 61);
    WotsSignKernel body(f.job, false, true, MemPolicy{},
                        Sha256Variant::Native);
    EXPECT_LE(body.blockThreads(), 1024u);
    EXPECT_EQ(body.blockThreads() % 32, 0u);
}
