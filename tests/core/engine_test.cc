/**
 * @file
 * Engine-level tests: resolved configurations (Table V PTX pattern,
 * tuner integration, launch bounds), and — most importantly — that
 * every engine configuration signs byte-identically to the scalar
 * reference implementation.
 */

#include <gtest/gtest.h>

#include "common/hex.hh"
#include "common/random.hh"
#include "core/engine.hh"

using namespace herosign;
using namespace herosign::core;
using gpu::DeviceProps;
using sphincs::Params;
using sphincs::SphincsPlus;

namespace
{

const DeviceProps &
rtx4090()
{
    static DeviceProps d = DeviceProps::rtx4090();
    return d;
}

struct KeyedScheme
{
    SphincsPlus scheme;
    sphincs::KeyPair kp;

    explicit KeyedScheme(const Params &p, uint64_t seed = 77)
        : scheme(p), kp([&] {
              Rng rng(seed);
              return scheme.keygen(rng);
          }())
    {
    }
};

} // namespace

using EngineParam = std::tuple<const Params *, const char *>;

class EngineSignatureMatch : public ::testing::TestWithParam<EngineParam>
{
};

TEST_P(EngineSignatureMatch, ByteIdenticalToReference)
{
    const auto [pp, cfg_name] = GetParam();
    const Params &p = *pp;

    EngineConfig cfg;
    const std::string cn = cfg_name;
    if (cn == "baseline")
        cfg = EngineConfig::baseline();
    else if (cn == "mmtp")
        cfg = EngineConfig::stepMmtp();
    else if (cn == "fuse")
        cfg = EngineConfig::stepFuse();
    else if (cn == "ptx")
        cfg = EngineConfig::stepPtx();
    else if (cn == "hybrid")
        cfg = EngineConfig::stepHybridMem();
    else
        cfg = EngineConfig::hero();

    SignEngine engine(p, rtx4090(), cfg);
    KeyedScheme ks(p);

    Rng rng(123);
    ByteVec msg = rng.bytes(48);

    auto outcome = engine.sign(msg, ks.kp.sk);
    ByteVec ref = ks.scheme.sign(msg, ks.kp.sk);

    ASSERT_EQ(outcome.signature.size(), ref.size());
    EXPECT_EQ(hexEncode(outcome.signature), hexEncode(ref))
        << p.name << " config " << cn;
    EXPECT_TRUE(ks.scheme.verify(msg, outcome.signature, ks.kp.pk));
}

namespace
{

std::string
engineParamName(const ::testing::TestParamInfo<EngineParam> &info)
{
    std::string name = std::get<0>(info.param)->name;
    return name.substr(name.find('-') + 1) + "_" +
           std::get<1>(info.param);
}

} // namespace

INSTANTIATE_TEST_SUITE_P(ConfigsAndSets, EngineSignatureMatch,
    ::testing::Combine(
        ::testing::Values(&Params::sphincs128f(),
                          &Params::sphincs192f(),
                          &Params::sphincs256f()),
        ::testing::Values("baseline", "hero")),
    engineParamName);

TEST(Engine, AblationStepsAllSignCorrectly)
{
    const Params &p = Params::sphincs128f();
    KeyedScheme ks(p);
    Rng rng(5);
    ByteVec msg = rng.bytes(32);
    ByteVec ref = ks.scheme.sign(msg, ks.kp.sk);

    for (auto cfg : {EngineConfig::stepMmtp(), EngineConfig::stepFuse(),
                     EngineConfig::stepPtx(),
                     EngineConfig::stepHybridMem(),
                     EngineConfig::stepFreeBank()}) {
        SignEngine engine(p, rtx4090(), cfg);
        auto outcome = engine.sign(msg, ks.kp.sk);
        EXPECT_EQ(hexEncode(outcome.signature), hexEncode(ref))
            << cfg.name;
    }
}

TEST(Engine, RandomizedSigningMatchesReference)
{
    const Params &p = Params::sphincs128f();
    KeyedScheme ks(p);
    SignEngine engine(p, rtx4090(), EngineConfig::hero());
    Rng rng(6);
    ByteVec msg = rng.bytes(16);
    ByteVec opt = rng.bytes(p.n);
    auto outcome = engine.sign(msg, ks.kp.sk, opt);
    EXPECT_EQ(hexEncode(outcome.signature),
              hexEncode(ks.scheme.sign(msg, ks.kp.sk, opt)));
}

TEST(Engine, Table5PtxSelectionPattern)
{
    // Paper Table V on the RTX 4090: FORS selects PTX on all sets;
    // TREE and WOTS+ stay native on 128f/192f and flip to PTX on
    // 256f. Our selection is profiling-driven; the pattern must
    // emerge from the model.
    struct Expect
    {
        const Params *p;
        bool fors_ptx, tree_ptx, wots_ptx;
    };
    const Expect table[] = {
        {&Params::sphincs128f(), true, false, false},
        {&Params::sphincs192f(), true, false, false},
        {&Params::sphincs256f(), true, true, true},
    };
    for (const auto &e : table) {
        SignEngine engine(*e.p, rtx4090(), EngineConfig::hero());
        const auto &ks = engine.kernels();
        EXPECT_EQ(ks[0].variant == Sha256Variant::Ptx, e.fors_ptx)
            << e.p->name << " FORS";
        EXPECT_EQ(ks[1].variant == Sha256Variant::Ptx, e.tree_ptx)
            << e.p->name << " TREE";
        EXPECT_EQ(ks[2].variant == Sha256Variant::Ptx, e.wots_ptx)
            << e.p->name << " WOTS";
    }
}

TEST(Engine, BaselineNeverSelectsPtx)
{
    SignEngine engine(Params::sphincs128f(), rtx4090(),
                      EngineConfig::baseline());
    for (const auto &k : engine.kernels())
        EXPECT_EQ(k.variant, Sha256Variant::Native);
}

TEST(Engine, TreeOccupancyLiftAt256f)
{
    // §III-C2: PTX lifts TREE_Sign occupancy from ~19% to 37.5%.
    SignEngine baseline(Params::sphincs256f(), rtx4090(),
                        EngineConfig::baseline());
    SignEngine hero(Params::sphincs256f(), rtx4090(),
                    EngineConfig::hero());
    const double base_occ =
        baseline.kernels()[1].timing.theoreticalOccupancy;
    const double hero_occ =
        hero.kernels()[1].timing.theoreticalOccupancy;
    EXPECT_NEAR(base_occ, 0.1875, 0.02);
    EXPECT_NEAR(hero_occ, 0.375, 0.02);
    EXPECT_GT(hero_occ / base_occ, 1.7);
}

TEST(Engine, TunerDrivesForsGeometry)
{
    SignEngine engine(Params::sphincs128f(), rtx4090(),
                      EngineConfig::hero());
    EXPECT_EQ(engine.forsGeometry().treesPerSet, 11u);
    EXPECT_EQ(engine.forsGeometry().fusedSets, 3u);
    EXPECT_EQ(engine.forsGeometry().threadsPerSet, 704u);
    EXPECT_FALSE(engine.forsGeometry().relax);

    SignEngine e256(Params::sphincs256f(), rtx4090(),
                    EngineConfig::hero());
    EXPECT_TRUE(e256.forsGeometry().relax);
}

TEST(Engine, BaselineForsIsSingleTree)
{
    SignEngine engine(Params::sphincs128f(), rtx4090(),
                      EngineConfig::baseline());
    EXPECT_EQ(engine.forsGeometry().treesPerSet, 1u);
    EXPECT_EQ(engine.forsGeometry().fusedSets, 1u);
    EXPECT_EQ(engine.forsGeometry().threadsPerSet, 64u);
}

TEST(Engine, HeroFasterThanBaselinePerKernel)
{
    // Table VIII: every kernel speeds up on every parameter set.
    for (const Params *pp :
         {&Params::sphincs128f(), &Params::sphincs192f(),
          &Params::sphincs256f()}) {
        SignEngine baseline(*pp, rtx4090(), EngineConfig::baseline());
        SignEngine hero(*pp, rtx4090(), EngineConfig::hero());
        for (int i = 0; i < 3; ++i) {
            const double base_us =
                baseline.kernels()[i].timing.durationUs;
            const double hero_us = hero.kernels()[i].timing.durationUs;
            EXPECT_LT(hero_us, base_us)
                << pp->name << " kernel " << i;
        }
    }
}

TEST(Engine, ForsConflictFreeUnderHero)
{
    SignEngine hero(Params::sphincs128f(), rtx4090(),
                    EngineConfig::hero());
    const auto &fors = hero.kernels()[0];
    EXPECT_EQ(fors.profile.counters.sharedLoadConflicts, 0u);
    EXPECT_EQ(fors.profile.counters.sharedStoreConflicts, 0u);

    SignEngine base(Params::sphincs128f(), rtx4090(),
                    EngineConfig::baseline());
    EXPECT_GT(base.kernels()[0].profile.counters.sharedLoadConflicts,
              0u);
}

TEST(Engine, ExplicitForsOverrideRespected)
{
    EngineConfig cfg = EngineConfig::hero();
    cfg.autoTune = false;
    cfg.forsConfig = ForsConfig{4, 2, 256, false, 1};
    cfg.forsConfig.threadsPerSet = 4 * 64;
    SignEngine engine(Params::sphincs128f(), rtx4090(), cfg);
    EXPECT_EQ(engine.forsGeometry().treesPerSet, 4u);
    EXPECT_EQ(engine.forsGeometry().fusedSets, 2u);
}

TEST(Engine, WorksOnAllPlatforms)
{
    Rng rng(9);
    ByteVec msg = rng.bytes(8);
    const Params &p = Params::sphincs128f();
    KeyedScheme ks(p);
    ByteVec ref = ks.scheme.sign(msg, ks.kp.sk);
    for (const auto &dev : DeviceProps::allPlatforms()) {
        SignEngine engine(p, dev, EngineConfig::hero());
        auto outcome = engine.sign(msg, ks.kp.sk);
        EXPECT_EQ(hexEncode(outcome.signature), hexEncode(ref))
            << dev.name;
    }
}
