/**
 * @file
 * Auto Tree Tuning (Algorithm 1) tests, anchored on the paper's
 * Table IV search results for the RTX 4090.
 */

#include <gtest/gtest.h>

#include "core/tuning.hh"

using namespace herosign;
using namespace herosign::core;
using gpu::DeviceProps;
using sphincs::Params;

TEST(TreeTuning, Table4Result128f)
{
    // Paper Table IV: 128f -> utilization 0.6875 / 0.6875, F = 3.
    auto best = autoTreeTuning(Params::sphincs128f(),
                               DeviceProps::rtx4090());
    EXPECT_EQ(best.threadsPerSet, 704u);   // 11 trees x 64 threads
    EXPECT_EQ(best.treesPerSet, 11u);
    EXPECT_EQ(best.fusedSets, 3u);
    EXPECT_NEAR(best.threadUtil, 0.6875, 1e-9);
    EXPECT_NEAR(best.smemUtil, 0.6875, 1e-9);
    EXPECT_FALSE(best.relax);
    // sync = log2(t) * ceil(k/Ntree) / F = 6 * 3 / 3.
    EXPECT_NEAR(best.syncPoints, 6.0, 1e-9);
}

TEST(TreeTuning, Table4Result192f)
{
    // Paper Table IV: 192f -> utilization 0.75 / 0.75, F = 2.
    auto best = autoTreeTuning(Params::sphincs192f(),
                               DeviceProps::rtx4090());
    EXPECT_EQ(best.threadsPerSet, 768u);   // 3 trees x 256 threads
    EXPECT_EQ(best.treesPerSet, 3u);
    EXPECT_EQ(best.fusedSets, 2u);
    EXPECT_NEAR(best.threadUtil, 0.75, 1e-9);
    EXPECT_NEAR(best.smemUtil, 0.75, 1e-9);
    EXPECT_FALSE(best.relax);
}

TEST(TreeTuning, Relax256fSelected)
{
    // §III-B4: a 256f tree's leaf level is 16 KB; the tuner must
    // switch to the Relax-FORS model.
    auto best = autoTreeTuning(Params::sphincs256f(),
                               DeviceProps::rtx4090());
    EXPECT_TRUE(best.relax);
    EXPECT_GE(best.treesPerSet, 1u);
    // Relax halves the per-tree footprint to 8 KB.
    EXPECT_LE(best.smemUsed, 48u * 1024);
}

TEST(TreeTuning, CandidatesSortedByPaperRanking)
{
    TuningInputs in;
    in.forsTrees = 33;
    in.forsHeight = 6;
    in.n = 16;
    in.smemPerBlock = 48 * 1024;
    auto cands = treeTuningSearch(in);
    ASSERT_GT(cands.size(), 1u);
    for (size_t i = 1; i < cands.size(); ++i) {
        const auto &a = cands[i - 1];
        const auto &b = cands[i];
        EXPECT_TRUE(a.syncPoints < b.syncPoints ||
                    (a.syncPoints == b.syncPoints &&
                     a.threadUtil >= b.threadUtil))
            << "rank " << i;
    }
}

TEST(TreeTuning, RespectsConstraints)
{
    TuningInputs in;
    in.forsTrees = 33;
    in.forsHeight = 6;
    in.n = 16;
    in.smemPerBlock = 48 * 1024;
    for (const auto &c : treeTuningSearch(in)) {
        EXPECT_LE(c.threadsPerSet, 1024u);
        EXPECT_LT(c.smemUsed, in.smemPerBlock); // saturation excluded
        EXPECT_GE(c.threadUtil, in.alpha);
        EXPECT_EQ(c.threadsPerSet, c.treesPerSet * 64u);
        EXPECT_LE(c.treesPerSet * c.fusedSets, 33u);
    }
}

TEST(TreeTuning, AlphaFilters)
{
    TuningInputs in;
    in.forsTrees = 33;
    in.forsHeight = 6;
    in.n = 16;
    in.smemPerBlock = 48 * 1024;
    in.alpha = 0.9;
    for (const auto &c : treeTuningSearch(in))
        EXPECT_GE(c.threadUtil, 0.9);
}

TEST(TreeTuning, SmallerSmemShrinksFusion)
{
    // Pascal-like budget: fewer fused sets fit.
    auto c48 = autoTreeTuning(Params::sphincs128f(),
                              DeviceProps::rtx4090());
    TuningInputs small;
    small.forsTrees = 33;
    small.forsHeight = 6;
    small.n = 16;
    small.smemPerBlock = 24 * 1024;
    auto cands = treeTuningSearch(small);
    ASSERT_FALSE(cands.empty());
    EXPECT_LE(cands.front().smemUsed, 24u * 1024);
    EXPECT_LE(cands.front().smemUsed, c48.smemUsed);
}

TEST(TreeTuning, SyncFormulaMatchesPaper)
{
    TuningInputs in;
    in.forsTrees = 33;
    in.forsHeight = 8;
    in.n = 24;
    in.smemPerBlock = 48 * 1024;
    for (const auto &c : treeTuningSearch(in)) {
        const unsigned sets =
            (in.forsTrees + c.treesPerSet - 1) / c.treesPerSet;
        EXPECT_NEAR(c.syncPoints,
                    8.0 * sets / c.fusedSets, 1e-9);
    }
}

TEST(TreeTuning, RelaxFallbackWhenTreeTooLarge)
{
    // A hypothetical set with t*n = 64 KB leaves no non-relax
    // configuration under 48 KB.
    TuningInputs in;
    in.forsTrees = 10;
    in.forsHeight = 11;  // t = 2048
    in.n = 32;
    in.smemPerBlock = 48 * 1024;
    auto plain = treeTuningSearch(in);
    EXPECT_TRUE(plain.empty());
    in.relax = true;
    auto relaxed = treeTuningSearch(in);
    ASSERT_FALSE(relaxed.empty());
    EXPECT_TRUE(relaxed.front().relax);
}

TEST(TreeTuning, AllPlatformsHaveAConfig)
{
    for (const auto &dev : DeviceProps::allPlatforms()) {
        for (const auto &p : Params::all()) {
            EXPECT_NO_THROW({
                auto best = autoTreeTuning(p, dev);
                EXPECT_GE(best.fusedSets, 1u);
            }) << dev.name << " / " << p.name;
        }
    }
}
