/**
 * @file
 * Batch scheduling tests: graph vs stream launch latency (Fig. 12
 * mechanism), idle-time behaviour (Table II), throughput scaling
 * with batch size (Fig. 13 shape).
 */

#include <gtest/gtest.h>

#include "core/engine.hh"

using namespace herosign;
using namespace herosign::core;
using gpu::DeviceProps;
using sphincs::Params;

namespace
{

const DeviceProps &
rtx4090()
{
    static DeviceProps d = DeviceProps::rtx4090();
    return d;
}

} // namespace

TEST(Batch, GraphCutsLaunchLatencyByOrdersOfMagnitude)
{
    const Params &p = Params::sphincs128f();
    EngineConfig with_graph = EngineConfig::hero();
    EngineConfig no_graph = EngineConfig::hero();
    no_graph.useGraph = false;

    SignEngine eg(p, rtx4090(), with_graph);
    SignEngine en(p, rtx4090(), no_graph);

    auto bg = eg.signBatchTiming(1024);
    auto bn = en.signBatchTiming(1024);

    // Fig. 12: two orders of magnitude on launch latency.
    EXPECT_LT(bg.launchLatencyUs * 5, bn.launchLatencyUs);
    // And the graph build never hurts throughput.
    EXPECT_LE(bg.makespanUs, bn.makespanUs * 1.05);
}

TEST(Batch, BaselineHasLargestLaunchLatency)
{
    const Params &p = Params::sphincs128f();
    SignEngine base(p, rtx4090(), EngineConfig::baseline());
    SignEngine hero(p, rtx4090(), EngineConfig::hero());
    auto bb = base.signBatchTiming(1024);
    auto bh = hero.signBatchTiming(1024);
    EXPECT_GT(bb.launchLatencyUs, bh.launchLatencyUs);
}

TEST(Batch, HeroBeatsBaselineThroughput)
{
    for (const Params *pp :
         {&Params::sphincs128f(), &Params::sphincs192f(),
          &Params::sphincs256f()}) {
        SignEngine base(*pp, rtx4090(), EngineConfig::baseline());
        SignEngine hero(*pp, rtx4090(), EngineConfig::hero());
        auto bb = base.signBatchTiming(1024);
        auto bh = hero.signBatchTiming(1024);
        // Fig. 12: 1.28x / 1.28x / 1.42x end-to-end.
        EXPECT_GT(bh.kops / bb.kops, 1.1) << (*pp).name;
        EXPECT_LT(bh.kops / bb.kops, 4.0) << (*pp).name;
    }
}

TEST(Batch, ThroughputOrderingAcrossSets)
{
    // 128f > 192f > 256f in KOPS for any engine.
    SignEngine e128(Params::sphincs128f(), rtx4090(),
                    EngineConfig::hero());
    SignEngine e192(Params::sphincs192f(), rtx4090(),
                    EngineConfig::hero());
    SignEngine e256(Params::sphincs256f(), rtx4090(),
                    EngineConfig::hero());
    auto b128 = e128.signBatchTiming(512);
    auto b192 = e192.signBatchTiming(512);
    auto b256 = e256.signBatchTiming(512);
    EXPECT_GT(b128.kops, b192.kops);
    EXPECT_GT(b192.kops, b256.kops);
}

TEST(Batch, ThroughputGrowsWithBatchSizeThenSaturates)
{
    // Fig. 13 shape: small batches underutilize the device.
    SignEngine hero(Params::sphincs128f(), rtx4090(),
                    EngineConfig::hero());
    auto small = hero.signBatchTiming(8, 8);
    auto medium = hero.signBatchTiming(128, 64);
    auto large = hero.signBatchTiming(1024, 64);
    EXPECT_GT(medium.kops, small.kops);
    EXPECT_GE(large.kops, medium.kops * 0.9);
}

TEST(Batch, IdleTimePresentInBaseline)
{
    SignEngine base(Params::sphincs128f(), rtx4090(),
                    EngineConfig::baseline());
    auto b = base.signBatchTiming(1024);
    EXPECT_GT(b.idleUs, 0.0);
    // Idle must be a minority of the makespan.
    EXPECT_LT(b.idleUs, b.makespanUs);
}

TEST(Batch, GraphReducesIdleVersusStreams)
{
    const Params &p = Params::sphincs192f();
    EngineConfig no_graph = EngineConfig::hero();
    no_graph.useGraph = false;
    SignEngine eg(p, rtx4090(), EngineConfig::hero());
    SignEngine en(p, rtx4090(), no_graph);
    auto bg = eg.signBatchTiming(512);
    auto bn = en.signBatchTiming(512);
    // The graph removes host round-trips; allow a small tolerance for
    // the different stream assignment of the two plans.
    EXPECT_LE(bg.idleUs, bn.idleUs + 10.0);
}

TEST(Batch, PerKernelBusyCoversAllThreeKernels)
{
    SignEngine hero(Params::sphincs128f(), rtx4090(),
                    EngineConfig::hero());
    auto b = hero.signBatchTiming(256);
    EXPECT_EQ(b.perKernelBusyUs.count("FORS_Sign"), 1u);
    EXPECT_EQ(b.perKernelBusyUs.count("TREE_Sign"), 1u);
    EXPECT_EQ(b.perKernelBusyUs.count("WOTS+_Sign"), 1u);
    // MSS (TREE) dominates (Table II shape).
    EXPECT_GT(b.perKernelBusyUs["TREE_Sign"],
              b.perKernelBusyUs["FORS_Sign"]);
    EXPECT_GT(b.perKernelBusyUs["TREE_Sign"],
              b.perKernelBusyUs["WOTS+_Sign"]);
}

TEST(Batch, KopsConsistentWithMakespan)
{
    SignEngine hero(Params::sphincs128f(), rtx4090(),
                    EngineConfig::hero());
    auto b = hero.signBatchTiming(512);
    EXPECT_NEAR(b.kops, 512 * 1000.0 / b.makespanUs, 1e-6);
}

TEST(Batch, ChunkOverrideChangesLaunchCount)
{
    SignEngine hero(Params::sphincs128f(), rtx4090(),
                    EngineConfig::hero());
    auto coarse = hero.signBatchTiming(512, 512);
    auto fine = hero.signBatchTiming(512, 32);
    EXPECT_GT(fine.schedule.entries.size(),
              coarse.schedule.entries.size());
}
