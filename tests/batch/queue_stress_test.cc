/**
 * @file
 * Stress and semantics tests for the sharded MPMC queue and the
 * BatchSigner under many small submissions from multiple producer
 * threads. These are the tests the ASan/UBSan CI job leans on to
 * guard the threaded queue against data races and lifetime bugs.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>

#include "batch/batch_signer.hh"
#include "batch/mpmc_queue.hh"
#include "batch_test_util.hh"
#include "common/hex.hh"

using namespace herosign;
using namespace herosign::batch;
using sphincs::Params;
using sphincs::SphincsPlus;

namespace
{

Params
miniParams()
{
    return batchtest::miniParams("mini-stress");
}

} // namespace

TEST(MpmcQueue, ManyProducersManyConsumers)
{
    constexpr unsigned producers = 4;
    constexpr unsigned consumers = 4;
    constexpr uint64_t per_producer = 5000;

    ShardedMpmcQueue<uint64_t> q(4);
    std::atomic<uint64_t> popped{0};
    std::atomic<uint64_t> sum{0};

    std::vector<std::thread> cs;
    for (unsigned c = 0; c < consumers; ++c) {
        cs.emplace_back([&, c] {
            uint64_t v;
            while (q.pop(v, c)) {
                sum.fetch_add(v, std::memory_order_relaxed);
                popped.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }

    std::vector<std::thread> ps;
    for (unsigned p = 0; p < producers; ++p) {
        ps.emplace_back([&, p] {
            for (uint64_t i = 0; i < per_producer; ++i)
                q.push(p * per_producer + i + 1);
        });
    }
    for (auto &t : ps)
        t.join();
    q.close();
    for (auto &t : cs)
        t.join();

    const uint64_t total = producers * per_producer;
    EXPECT_EQ(popped.load(), total);
    // Sum of 1..total (values were a permutation of that range).
    EXPECT_EQ(sum.load(), total * (total + 1) / 2);
    EXPECT_EQ(q.sizeApprox(), 0u);
}

TEST(MpmcQueue, SingleConsumerStealsFromSiblingShards)
{
    ShardedMpmcQueue<int> q(4);
    for (int i = 0; i < 16; ++i)
        q.push(i); // round-robin: every shard gets items

    int v;
    int count = 0;
    while (q.tryPop(v, 0))
        ++count;
    EXPECT_EQ(count, 16);
    // Home shard 0 held only a quarter; the rest were steals.
    EXPECT_GE(q.steals(), 8u);
}

TEST(MpmcQueue, CloseWakesBlockedConsumer)
{
    ShardedMpmcQueue<int> q(2);
    std::atomic<bool> returned{false};
    std::thread consumer([&] {
        int v;
        EXPECT_FALSE(q.pop(v, 0));
        returned.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(returned.load());
    q.close();
    consumer.join();
    EXPECT_TRUE(returned.load());
}

TEST(MpmcQueue, AcceptedPushWakesParkedConsumerPromptly)
{
    // Regression test for a lost-wakeup window: a consumer that had
    // finished its empty scan but not yet registered as a waiter was
    // invisible to push()'s sibling-waiter scan, so an accepted item
    // could sit for a full 5 ms max backoff before the timed wait
    // expired. pop() now registers the waiter BEFORE a final
    // occupancy re-check; the parkProbe seam injects a push into
    // exactly that historical window and the test asserts the item
    // is consumed without eating a backoff timeout.
    ShardedMpmcQueue<int> q(2);

    // Consume round-robin slot 0 so the probe's push lands on shard 1
    // (the parked consumer's sibling). The probe runs with the home
    // shard's mutex held, so a push routed to the home shard would
    // self-deadlock in the test harness itself.
    q.push(0);
    int v = -1;
    ASSERT_TRUE(q.tryPop(v, 0));

    std::atomic<int> parks{0};
    std::thread producer;
    std::chrono::steady_clock::time_point pushed_at;
    q.parkProbe = [&] {
        // Let the backoff saturate to its 5 ms cap first, so a
        // relapse into the old behaviour costs a full max backoff
        // rather than the initial 200 us and the latency assertion
        // below is unambiguous against scheduler jitter.
        if (parks.fetch_add(1) + 1 != 8)
            return;
        producer = std::thread([&] { q.push(42); });
        while (q.sizeApprox() == 0)
            std::this_thread::yield();
        pushed_at = std::chrono::steady_clock::now();
    };

    int got = -1;
    EXPECT_TRUE(q.pop(got, 0));
    const auto latency = std::chrono::steady_clock::now() - pushed_at;
    producer.join();
    EXPECT_EQ(got, 42);
    EXPECT_GE(parks.load(), 8);
    // The fixed path skips the wait via the occupancy re-check; the
    // lost-wakeup bug slept the full 5 ms cap.
    const double latency_ms =
        std::chrono::duration<double, std::milli>(latency).count();
    EXPECT_LT(latency_ms, 2.5);
}

TEST(MpmcQueue, ItemsPushedBeforeCloseStillDrain)
{
    ShardedMpmcQueue<int> q(3);
    for (int i = 0; i < 9; ++i)
        q.push(i);
    q.close();
    int v;
    int count = 0;
    while (q.pop(v, 1))
        ++count;
    EXPECT_EQ(count, 9);
}

TEST(MpmcQueue, PushAfterCloseThrows)
{
    ShardedMpmcQueue<int> q(2);
    q.close();
    EXPECT_THROW(q.push(1), std::runtime_error);
}

TEST(MpmcQueue, ZeroShardRequestClampsToOne)
{
    ShardedMpmcQueue<int> q(0);
    EXPECT_EQ(q.shards(), 1u);
    q.push(7);
    int v = 0;
    EXPECT_TRUE(q.tryPop(v, 5)); // any home index is valid
    EXPECT_EQ(v, 7);
}

TEST(BatchSignerStress, ManySmallSubmitsFromMultipleProducers)
{
    const Params p = miniParams();
    SphincsPlus scheme(p);
    ByteVec seed(3 * p.n);
    std::iota(seed.begin(), seed.end(), static_cast<uint8_t>(1));
    auto kp = scheme.keygenFromSeed(seed);

    BatchSignerConfig cfg;
    cfg.workers = 4;
    cfg.shards = 4;
    BatchSigner signer(p, kp.sk, cfg);

    constexpr unsigned producers = 4;
    constexpr unsigned per_producer = 32;
    std::atomic<unsigned> callbacks{0};

    std::mutex fm;
    std::vector<std::pair<ByteVec, std::future<ByteVec>>> results;

    std::vector<std::thread> ps;
    for (unsigned t = 0; t < producers; ++t) {
        ps.emplace_back([&, t] {
            for (unsigned i = 0; i < per_producer; ++i) {
                ByteVec msg{static_cast<uint8_t>(t),
                            static_cast<uint8_t>(i)};
                auto fut = signer.submit(
                    msg, [&](uint64_t, const ByteVec &) {
                        callbacks.fetch_add(1);
                    });
                std::lock_guard<std::mutex> lk(fm);
                results.emplace_back(std::move(msg), std::move(fut));
            }
        });
    }
    for (auto &t : ps)
        t.join();

    auto st = signer.drain();
    const unsigned total = producers * per_producer;
    EXPECT_EQ(st.jobs, total);
    EXPECT_EQ(st.failures, 0u);
    EXPECT_EQ(callbacks.load(), total);
    EXPECT_EQ(std::accumulate(st.perWorkerSigned.begin(),
                              st.perWorkerSigned.end(), uint64_t{0}),
              total);

    // Every future is ready and correct; spot-verify a sample and
    // byte-compare everything against the scalar path.
    ASSERT_EQ(results.size(), total);
    for (size_t i = 0; i < results.size(); ++i) {
        ByteVec sig = results[i].second.get();
        EXPECT_EQ(hexEncode(sig),
                  hexEncode(scheme.sign(results[i].first, kp.sk)))
            << i;
        if (i % 16 == 0) {
            EXPECT_TRUE(scheme.verify(results[i].first, sig, kp.pk));
        }
    }
}

TEST(BatchSignerStress, RepeatedDrainCyclesUnderLoad)
{
    const Params p = miniParams();
    SphincsPlus scheme(p);
    ByteVec seed(3 * p.n, 0x42);
    auto kp = scheme.keygenFromSeed(seed);

    BatchSignerConfig cfg;
    cfg.workers = 3;
    cfg.shards = 2;
    BatchSigner signer(p, kp.sk, cfg);

    uint64_t grand_total = 0;
    for (unsigned round = 0; round < 5; ++round) {
        std::vector<ByteVec> msgs;
        for (unsigned i = 0; i <= round; ++i)
            msgs.push_back({static_cast<uint8_t>(round),
                            static_cast<uint8_t>(i)});
        auto futures = signer.submitMany(msgs);
        for (auto &f : futures)
            EXPECT_EQ(f.get().size(), p.sigBytes());
        auto st = signer.drain();
        EXPECT_EQ(st.jobs, msgs.size()) << "round " << round;
        grand_total += st.jobs;
    }
    EXPECT_EQ(grand_total, 15u);
    EXPECT_EQ(signer.pending(), 0u);
}
