/**
 * @file
 * Shared fixtures for the batch test suites: the cheap "mini"
 * parameter set (full SPHINCS+ semantics, small trees — many
 * signatures per second even under sanitizers) and deterministic
 * seed/message builders matching the engine cross-check idiom.
 */

#ifndef HEROSIGN_TESTS_BATCH_BATCH_TEST_UTIL_HH
#define HEROSIGN_TESTS_BATCH_BATCH_TEST_UTIL_HH

#include <numeric>
#include <vector>

#include "common/bytes.hh"
#include "sphincs/params.hh"

namespace herosign::batchtest
{

/** A cheap custom set for tests that need many signatures. */
inline sphincs::Params
miniParams(const std::string &name = "mini-batch")
{
    sphincs::Params p;
    p.name = name;
    p.n = 16;
    p.fullHeight = 6;
    p.layers = 3;
    p.forsHeight = 4;
    p.forsTrees = 8;
    p.wotsW = 16;
    return p;
}

/** The fixed 3n keygen seed used across the byte-match suites. */
inline ByteVec
fixedSeed(const sphincs::Params &p, uint8_t first = 0)
{
    ByteVec seed(3 * p.n);
    std::iota(seed.begin(), seed.end(), first);
    return seed;
}

/** Deterministic message bytes, salted so batches differ per index. */
inline ByteVec
patternMsg(size_t len, uint8_t salt = 0)
{
    ByteVec msg(len);
    for (size_t i = 0; i < len; ++i)
        msg[i] = static_cast<uint8_t>(salt + 0x37 + 11 * i);
    return msg;
}

/** A batch of distinct deterministic messages. */
inline std::vector<ByteVec>
patternBatch(unsigned count, size_t len = 40)
{
    std::vector<ByteVec> msgs;
    msgs.reserve(count);
    for (unsigned i = 0; i < count; ++i)
        msgs.push_back(patternMsg(len, static_cast<uint8_t>(i)));
    return msgs;
}

} // namespace herosign::batchtest

#endif // HEROSIGN_TESTS_BATCH_BATCH_TEST_UTIL_HH
