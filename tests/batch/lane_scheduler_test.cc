/**
 * @file
 * Cross-signature lane batching correctness: LaneScheduler groups
 * must produce signatures byte-identical to the scalar
 * SphincsPlus::sign() path on every Table I parameter set, at every
 * lane width (1 / 8 / 16), for ragged group sizes that don't divide
 * the lane width, and mixed parameter-set groups must reject cleanly.
 */

#include <gtest/gtest.h>

#include "batch/lane_scheduler.hh"
#include "batch_test_util.hh"
#include "hash/sha256xN.hh"
#include "sphincs/sign_task.hh"
#include "sphincs/sphincs.hh"

using namespace herosign;
using namespace herosign::batchtest;
using batch::LaneScheduler;
using sphincs::Context;
using sphincs::Params;
using sphincs::SignTask;
using sphincs::SphincsPlus;

namespace
{

/** Pin the lane engine to one width for a scope. */
class ScopedWidth
{
  public:
    explicit ScopedWidth(unsigned width)
    {
        sha256LanesForceScalar(width == 1);
        sha256LanesDisableAvx512(width == 8);
    }
    ~ScopedWidth()
    {
        sha256LanesForceScalar(false);
        sha256LanesDisableAvx512(false);
    }
};

/** opt_rand for message i: empty (deterministic) for even i. */
ByteVec
optRandFor(const Params &p, unsigned i)
{
    if (i % 2 == 0)
        return {};
    ByteVec r(p.n);
    for (unsigned j = 0; j < p.n; ++j)
        r[j] = static_cast<uint8_t>(0xA0 + 7 * i + j);
    return r;
}

} // namespace

TEST(LaneSchedulerTest, GroupsMatchScalarOnAllSetsWidthsAndSizes)
{
    for (const Params &p : Params::all()) {
        SphincsPlus scheme(p);
        const auto kp = scheme.keygenFromSeed(fixedSeed(p));
        Context ctx(p, kp.sk.pkSeed, kp.sk.skSeed);

        // Scalar-width references: the ground truth every pooled
        // configuration must reproduce bit for bit.
        constexpr unsigned maxMsgs = 5;
        std::vector<ByteVec> msgs;
        std::vector<ByteVec> rands;
        std::vector<ByteVec> want;
        {
            ScopedWidth w(1);
            for (unsigned i = 0; i < maxMsgs; ++i) {
                msgs.push_back(patternMsg(48, static_cast<uint8_t>(i)));
                rands.push_back(optRandFor(p, i));
                want.push_back(
                    scheme.sign(ctx, msgs[i], kp.sk, rands[i]));
            }
        }

        for (unsigned width : {1u, 8u, 16u}) {
            ScopedWidth w(width);
            // Ragged sizes on purpose: 3 and 5 divide neither 8 nor
            // 16, so partial lane groups and tail chains exercise
            // the fallback kernels.
            for (unsigned group : {1u, 3u, 5u}) {
                std::vector<ByteSpan> msg_spans, rand_spans;
                for (unsigned i = 0; i < group; ++i) {
                    msg_spans.emplace_back(msgs[i]);
                    rand_spans.emplace_back(rands[i]);
                }
                std::vector<ByteVec> got(group);
                LaneScheduler::signGroup(ctx, kp.sk, msg_spans.data(),
                                         rand_spans.data(), got.data(),
                                         group);
                for (unsigned i = 0; i < group; ++i)
                    EXPECT_EQ(got[i], want[i])
                        << p.name << " width=" << width
                        << " group=" << group << " msg=" << i;
            }
        }
    }
}

TEST(LaneSchedulerTest, MixedParameterSetGroupRejects)
{
    const Params &pa = Params::sphincs128f();
    const Params &pb = Params::sphincs192f();
    SphincsPlus sa(pa), sb(pb);
    const auto ka = sa.keygenFromSeed(fixedSeed(pa));
    const auto kb = sb.keygenFromSeed(fixedSeed(pb));
    Context ca(pa, ka.sk.pkSeed, ka.sk.skSeed);
    Context cb(pb, kb.sk.pkSeed, kb.sk.skSeed);

    const ByteVec msg = patternMsg(32);
    SignTask ta(ca, ka.sk, msg);
    SignTask tb(cb, kb.sk, msg);
    SignTask *mixed[2] = {&ta, &tb};
    EXPECT_THROW(LaneScheduler::run(mixed, 2), std::invalid_argument);

    // Same parameter set but a different Context object is also a
    // mixed shard: the group invariant is one warm context.
    const auto ka2 = sa.keygenFromSeed(fixedSeed(pa, 99));
    Context ca2(pa, ka2.sk.pkSeed, ka2.sk.skSeed);
    SignTask ta2(ca2, ka2.sk, msg);
    SignTask *twoKeys[2] = {&ta, &ta2};
    EXPECT_THROW(LaneScheduler::run(twoKeys, 2),
                 std::invalid_argument);
}

TEST(LaneSchedulerTest, OversizedGroupRejects)
{
    const Params p = miniParams();
    SphincsPlus scheme(p);
    const auto kp = scheme.keygenFromSeed(fixedSeed(p));
    Context ctx(p, kp.sk.pkSeed, kp.sk.skSeed);

    const unsigned count = LaneScheduler::maxGroup + 1;
    std::vector<ByteVec> msgs = patternBatch(count);
    std::vector<ByteSpan> spans(msgs.begin(), msgs.end());
    std::vector<ByteVec> sigs(count);
    EXPECT_THROW(LaneScheduler::signGroup(ctx, kp.sk, spans.data(),
                                          nullptr, sigs.data(), count),
                 std::invalid_argument);
}

TEST(LaneSchedulerTest, TaskEnforcesPhaseOrder)
{
    const Params p = miniParams();
    SphincsPlus scheme(p);
    const auto kp = scheme.keygenFromSeed(fixedSeed(p));
    Context ctx(p, kp.sk.pkSeed, kp.sk.skSeed);

    const ByteVec msg = patternMsg(32);
    SignTask task(ctx, kp.sk, msg);
    EXPECT_THROW(task.beginLayer(0), std::logic_error);
    EXPECT_THROW(task.beginForsTree(1), std::logic_error);
    EXPECT_THROW(task.takeSignature(), std::logic_error);

    EXPECT_THROW(SignTask(ctx, kp.sk, msg, patternMsg(p.n + 1)),
                 std::invalid_argument);
}

TEST(LaneSchedulerTest, FullGroupOnMiniParams)
{
    // A full maxGroup lockstep group on the cheap set, checked
    // against scalar signing.
    const Params p = miniParams();
    SphincsPlus scheme(p);
    const auto kp = scheme.keygenFromSeed(fixedSeed(p));
    Context ctx(p, kp.sk.pkSeed, kp.sk.skSeed);

    const unsigned count = LaneScheduler::maxGroup;
    std::vector<ByteVec> msgs = patternBatch(count);
    std::vector<ByteSpan> spans(msgs.begin(), msgs.end());
    std::vector<ByteVec> sigs(count);
    LaneScheduler::signGroup(ctx, kp.sk, spans.data(), nullptr,
                             sigs.data(), count);
    for (unsigned i = 0; i < count; ++i)
        EXPECT_EQ(sigs[i], scheme.sign(ctx, msgs[i], kp.sk))
            << "msg " << i;
}
