/**
 * @file
 * BatchSigner robustness: the verify-after-sign guard (with SIMD-tier
 * quarantine and forced-scalar re-sign under injected lane faults),
 * per-request deadlines, worker supervision, close() fast-fail
 * semantics and the callback-error counter. Fault plans are armed
 * programmatically around drained windows, so every schedule is
 * deterministic.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <vector>

#include "batch/batch_signer.hh"
#include "batch_test_util.hh"
#include "common/errors.hh"
#include "common/fault.hh"
#include "hash/sha256xN.hh"
#include "sphincs/sphincs.hh"

using namespace herosign;
using namespace herosign::batch;
using batchtest::fixedSeed;
using batchtest::miniParams;
using batchtest::patternMsg;
using sphincs::SphincsPlus;

namespace
{

struct RobustnessTest : ::testing::Test
{
    sphincs::Params p = miniParams();
    SphincsPlus scheme{p};
    sphincs::KeyPair kp = scheme.keygenFromSeed(fixedSeed(p));

    void SetUp() override
    {
        FaultInjector::instance().disarm();
        sha256LanesClearQuarantines();
    }
    void TearDown() override
    {
        FaultInjector::instance().disarm();
        sha256LanesClearQuarantines();
    }

    BatchSignerConfig
    smallConfig(bool guard = false) const
    {
        BatchSignerConfig cfg;
        cfg.workers = 1;
        cfg.shards = 1;
        cfg.verifyAfterSign = guard;
        return cfg;
    }
};

} // namespace

TEST_F(RobustnessTest, VerifyAfterSignPassesCleanTrafficThrough)
{
    BatchSigner signer(p, kp.sk, smallConfig(true));
    std::vector<std::future<ByteVec>> futs;
    for (unsigned i = 0; i < 6; ++i)
        futs.push_back(signer.submit(patternMsg(40, i)));
    for (unsigned i = 0; i < 6; ++i) {
        const ByteVec sig = futs[i].get();
        EXPECT_TRUE(scheme.verify(patternMsg(40, i), sig, kp.pk));
    }
    const BatchStats st = signer.drain();
    EXPECT_EQ(st.jobs, 6u);
    EXPECT_EQ(st.failures, 0u);
    EXPECT_EQ(st.guardMismatches, 0u);
    EXPECT_EQ(st.laneQuarantines, 0u);
}

TEST_F(RobustnessTest, GuardRecoversFromInjectedSimdLaneFaults)
{
    if (laneDispatch().backend == LaneBackend::Scalar)
        GTEST_SKIP() << "needs active SIMD dispatch (the simd-lane "
                        "point never fires on scalar tails)";

    // Corrupt one SIMD-produced digest in every fused one-block
    // batch: effectively every signature from a SIMD tier is bad.
    FaultPlan plan;
    plan.rule(FaultPoint::SimdLane).active = true;
    FaultInjector::instance().arm(plan);

    BatchSigner signer(p, kp.sk, smallConfig(true));
    std::vector<std::future<ByteVec>> futs;
    for (unsigned i = 0; i < 4; ++i)
        futs.push_back(signer.submit(patternMsg(40, i)));
    std::vector<ByteVec> sigs;
    for (auto &f : futs)
        sigs.push_back(f.get()); // no SigningFault: scalar redo wins
    const BatchStats st = signer.drain();
    FaultInjector::instance().disarm();

    // Every released signature verifies pristinely — corrupt bytes
    // never escaped the guard.
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_TRUE(scheme.verify(patternMsg(40, i), sigs[i], kp.pk));
    EXPECT_EQ(st.failures, 0u);
    EXPECT_GE(st.guardMismatches, 1u);
    // The guard demoted the faulty tier(s); once dispatch reaches the
    // portable path the fault point goes dead by construction.
    EXPECT_GE(st.laneQuarantines, 1u);
    EXPECT_LE(st.laneQuarantines, 2u);
    EXPECT_GE(sha256LanesQuarantineCount(), 1u);
    EXPECT_EQ(laneDispatch().backend, LaneBackend::Scalar);
}

TEST_F(RobustnessTest, ExpiredDeadlinesDropWithTypedError)
{
    BatchSigner signer(p, kp.sk, smallConfig());
    const auto past =
        std::chrono::steady_clock::now() - std::chrono::seconds(1);

    SignRequest late;
    late.message = patternMsg(40, 1);
    late.deadline = past;
    auto late_fut = signer.submit(std::move(late));
    auto ok_fut = signer.submit(patternMsg(40, 2));

    EXPECT_THROW(late_fut.get(), DeadlineExceeded);
    EXPECT_TRUE(
        scheme.verify(patternMsg(40, 2), ok_fut.get(), kp.pk));
    const BatchStats st = signer.drain();
    EXPECT_EQ(st.jobs, 2u);
    EXPECT_EQ(st.expired, 1u);
    EXPECT_EQ(st.failures, 1u); // the expired job is the failure
}

TEST_F(RobustnessTest, ThrowingCallbackIsCountedNotFatal)
{
    BatchSigner signer(p, kp.sk, smallConfig());
    SignRequest req;
    req.message = patternMsg(40, 3);
    req.callback = [](uint64_t, const ByteVec &) {
        throw std::runtime_error("user callback bug");
    };
    auto fut = signer.submit(std::move(req));
    EXPECT_TRUE(scheme.verify(patternMsg(40, 3), fut.get(), kp.pk));
    const BatchStats st = signer.drain();
    EXPECT_EQ(st.failures, 0u);
    EXPECT_EQ(st.callbackErrors, 1u);
}

TEST_F(RobustnessTest, WorkerSurvivesEscapedExceptions)
{
    // The first two worker passes throw outside every per-job
    // handler; supervision must fail only those passes' jobs and
    // keep the (single) worker alive.
    FaultPlan plan;
    FaultRule &rule = plan.rule(FaultPoint::WorkerThrow);
    rule.active = true;
    rule.max = 2;
    FaultInjector::instance().arm(plan);

    BatchSigner signer(p, kp.sk, smallConfig());
    // Sequential submit + get so each job is its own pass.
    EXPECT_THROW(signer.submit(patternMsg(40, 0)).get(),
                 FaultInjected);
    EXPECT_THROW(signer.submit(patternMsg(40, 1)).get(),
                 FaultInjected);
    EXPECT_TRUE(scheme.verify(patternMsg(40, 2),
                              signer.submit(patternMsg(40, 2)).get(),
                              kp.pk));
    const BatchStats st = signer.drain();
    FaultInjector::instance().disarm();

    EXPECT_EQ(st.jobs, 3u);
    EXPECT_EQ(st.failures, 2u);
    EXPECT_EQ(st.workerRestarts, 2u);
    EXPECT_EQ(signer.workers(), 1u); // pool never shrank
}

TEST_F(RobustnessTest, CloseFailsQueuedJobsAndRejectsNewOnes)
{
    auto signer = std::make_unique<BatchSigner>(p, kp.sk,
                                                smallConfig());
    std::vector<std::future<ByteVec>> futs;
    for (unsigned i = 0; i < 16; ++i)
        futs.push_back(signer->submit(patternMsg(40, i)));
    signer->close();

    // Not one future is stranded: each either carries a signature
    // (it was in flight or signed before the close) or the typed
    // shutdown error.
    unsigned signed_ok = 0, shut_down = 0;
    for (unsigned i = 0; i < 16; ++i) {
        try {
            const ByteVec sig = futs[i].get();
            EXPECT_TRUE(
                scheme.verify(patternMsg(40, i), sig, kp.pk));
            ++signed_ok;
        } catch (const ServiceShutdown &) {
            ++shut_down;
        }
    }
    EXPECT_EQ(signed_ok + shut_down, 16u);
    EXPECT_EQ(signer->pending(), 0u);
    EXPECT_THROW(signer->submit(patternMsg(40, 99)),
                 ServiceShutdown);
    signer.reset(); // destructor after close() is a no-op join
}
