/**
 * @file
 * BatchSigner correctness: batch output must byte-match sequential
 * scalar SphincsPlus signing for the same seeds — for every Table I
 * parameter set, for any worker count, with callbacks and opt_rand —
 * plus drain-on-empty / zero-message edge cases and the SignEngine
 * signBatch wiring (measured vs predicted makespan).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "batch/batch_signer.hh"
#include "batch_test_util.hh"
#include "common/hex.hh"
#include "core/engine.hh"

using namespace herosign;
using namespace herosign::batch;
using batchtest::fixedSeed;
using batchtest::miniParams;
using batchtest::patternBatch;
using batchtest::patternMsg;
using sphincs::Params;
using sphincs::SphincsPlus;

TEST(BatchSigner, ByteMatchesScalarForEveryTableISet)
{
    for (const Params *pp :
         {&Params::sphincs128f(), &Params::sphincs192f(),
          &Params::sphincs256f()}) {
        SphincsPlus scheme(*pp);
        auto kp = scheme.keygenFromSeed(fixedSeed(*pp));

        BatchSignerConfig cfg;
        cfg.workers = 3;
        cfg.shards = 2;
        BatchSigner signer(*pp, kp.sk, cfg);

        auto msgs = patternBatch(3);
        auto futures = signer.submitMany(msgs);
        ASSERT_EQ(futures.size(), msgs.size());
        for (size_t i = 0; i < msgs.size(); ++i) {
            ByteVec got = futures[i].get();
            ByteVec ref = scheme.sign(msgs[i], kp.sk);
            EXPECT_EQ(hexEncode(got), hexEncode(ref))
                << pp->name << " msg " << i;
            EXPECT_TRUE(scheme.verify(msgs[i], got, kp.pk));
        }
        auto st = signer.drain();
        EXPECT_EQ(st.jobs, msgs.size());
        EXPECT_GT(st.wallUs, 0.0);
        EXPECT_GT(st.sigsPerSec, 0.0);
        EXPECT_EQ(st.failures, 0u);
    }
}

TEST(BatchSigner, WorkerCountInvariance1v8)
{
    const Params p = miniParams();
    SphincsPlus scheme(p);
    auto kp = scheme.keygenFromSeed(fixedSeed(p));
    auto msgs = patternBatch(12, 24);

    std::vector<std::string> sigs1, sigs8;
    {
        BatchSignerConfig cfg;
        cfg.workers = 1;
        cfg.shards = 1;
        BatchSigner signer(p, kp.sk, cfg);
        for (auto &f : signer.submitMany(msgs))
            sigs1.push_back(hexEncode(f.get()));
    }
    {
        BatchSignerConfig cfg;
        cfg.workers = 8;
        cfg.shards = 4;
        BatchSigner signer(p, kp.sk, cfg);
        for (auto &f : signer.submitMany(msgs))
            sigs8.push_back(hexEncode(f.get()));
    }
    EXPECT_EQ(sigs1, sigs8);
}

TEST(BatchSigner, CallbacksRunForEveryJob)
{
    const Params p = miniParams();
    SphincsPlus scheme(p);
    auto kp = scheme.keygenFromSeed(fixedSeed(p));

    BatchSignerConfig cfg;
    cfg.workers = 4;
    cfg.shards = 4;
    BatchSigner signer(p, kp.sk, cfg);

    constexpr unsigned count = 16;
    std::mutex m;
    std::vector<std::string> bySeq(count);
    std::atomic<unsigned> calls{0};

    std::vector<std::future<ByteVec>> futures;
    for (unsigned i = 0; i < count; ++i) {
        futures.push_back(signer.submit(
            patternMsg(20, static_cast<uint8_t>(i)),
            [&](uint64_t seq, const ByteVec &sig) {
                std::lock_guard<std::mutex> lk(m);
                bySeq.at(seq) = hexEncode(sig);
                calls.fetch_add(1);
            }));
    }
    auto st = signer.drain();
    EXPECT_EQ(st.jobs, count);
    EXPECT_EQ(calls.load(), count);
    for (unsigned i = 0; i < count; ++i) {
        // The callback saw exactly the bytes the future yields.
        EXPECT_EQ(bySeq[i], hexEncode(futures[i].get())) << i;
    }
}

TEST(BatchSigner, OptRandMatchesScalar)
{
    const Params &p = Params::sphincs128f();
    SphincsPlus scheme(p);
    auto kp = scheme.keygenFromSeed(fixedSeed(p));
    BatchSigner signer(p, kp.sk);

    ByteVec msg = patternMsg(32);
    ByteVec opt(p.n, 0x5a);
    auto fut = signer.submit(msg, opt);
    EXPECT_EQ(hexEncode(fut.get()),
              hexEncode(scheme.sign(msg, kp.sk, opt)));
}

TEST(BatchSigner, WrongLengthOptRandThrowsOnSubmit)
{
    const Params p = miniParams();
    SphincsPlus scheme(p);
    auto kp = scheme.keygenFromSeed(fixedSeed(p));
    BatchSigner signer(p, kp.sk);
    EXPECT_THROW(signer.submit(patternMsg(8), ByteVec(p.n + 1, 0)),
                 std::invalid_argument);
}

TEST(BatchSigner, DrainOnEmptyReturnsZeroStats)
{
    const Params p = miniParams();
    SphincsPlus scheme(p);
    auto kp = scheme.keygenFromSeed(fixedSeed(p));
    BatchSigner signer(p, kp.sk);

    auto st = signer.drain();
    EXPECT_EQ(st.jobs, 0u);
    EXPECT_EQ(st.wallUs, 0.0);
    EXPECT_EQ(st.sigsPerSec, 0.0);
    EXPECT_EQ(st.failures, 0u);
    ASSERT_EQ(st.perWorkerSigned.size(), signer.workers());
    for (uint64_t c : st.perWorkerSigned)
        EXPECT_EQ(c, 0u);
}

TEST(BatchSigner, ZeroMessageSubmitMany)
{
    const Params p = miniParams();
    SphincsPlus scheme(p);
    auto kp = scheme.keygenFromSeed(fixedSeed(p));
    BatchSigner signer(p, kp.sk);

    auto futures = signer.submitMany(std::vector<ByteVec>{});
    EXPECT_TRUE(futures.empty());
    EXPECT_EQ(signer.drain().jobs, 0u);
}

TEST(BatchSigner, SubmitManyPreservesOptRandAndCallbacks)
{
    // Regression: the message-only submitMany used to flatten batches
    // through submit(msg), silently dropping any per-request signing
    // randomness and completion callback. The request-struct overload
    // must honor both for every batch member.
    const Params p = miniParams();
    SphincsPlus scheme(p);
    auto kp = scheme.keygenFromSeed(fixedSeed(p));

    BatchSignerConfig cfg;
    cfg.workers = 4;
    cfg.shards = 2;
    BatchSigner signer(p, kp.sk, cfg);

    constexpr unsigned count = 10;
    std::mutex m;
    std::vector<std::string> bySeq(count);
    std::vector<SignRequest> reqs(count);
    std::vector<ByteVec> msgs, rands;
    for (unsigned i = 0; i < count; ++i) {
        msgs.push_back(patternMsg(24, static_cast<uint8_t>(i)));
        rands.push_back(i % 2 ? ByteVec(p.n, uint8_t(0x11 * i))
                              : ByteVec{});
        reqs[i].message = msgs[i];
        reqs[i].optRand = rands[i];
        reqs[i].callback = [&](uint64_t seq, const ByteVec &sig) {
            std::lock_guard<std::mutex> lk(m);
            bySeq.at(seq) = hexEncode(sig);
        };
    }
    auto futures = signer.submitMany(std::span<SignRequest>(reqs));
    ASSERT_EQ(futures.size(), count);
    for (unsigned i = 0; i < count; ++i) {
        const std::string got = hexEncode(futures[i].get());
        // Per-request opt_rand reached the signer (the deterministic
        // and randomized references differ, so a dropped optRand
        // would fail here)...
        EXPECT_EQ(got, hexEncode(scheme.sign(msgs[i], kp.sk, rands[i])))
            << i;
        // ...and so did the per-request callback.
        EXPECT_EQ(bySeq[i], got) << i;
    }
    EXPECT_EQ(signer.drain().failures, 0u);
}

TEST(BatchSigner, CoalescedGroupsByteMatchScalar)
{
    // Cross-signature coalescing at several worker counts: whatever
    // group shapes the queue races produce, output bytes must match
    // the scalar path per message.
    const Params p = miniParams();
    SphincsPlus scheme(p);
    auto kp = scheme.keygenFromSeed(fixedSeed(p));
    auto msgs = patternBatch(24, 20);

    std::vector<std::string> ref;
    for (const auto &msg : msgs)
        ref.push_back(hexEncode(scheme.sign(msg, kp.sk)));

    for (unsigned workers : {1u, 4u, 16u}) {
        BatchSignerConfig cfg;
        cfg.workers = workers;
        cfg.shards = 2;
        BatchSigner signer(p, kp.sk, cfg);
        auto futures = signer.submitMany(msgs);
        for (size_t i = 0; i < msgs.size(); ++i)
            EXPECT_EQ(hexEncode(futures[i].get()), ref[i])
                << "workers=" << workers << " msg=" << i;
        auto st = signer.drain();
        EXPECT_EQ(st.failures, 0u);
        EXPECT_LE(st.crossSignJobs, st.jobs);
    }
}

TEST(BatchSigner, LaneGroupOneDisablesCoalescing)
{
    const Params p = miniParams();
    SphincsPlus scheme(p);
    auto kp = scheme.keygenFromSeed(fixedSeed(p));

    BatchSignerConfig cfg;
    cfg.laneGroup = 1;
    BatchSigner signer(p, kp.sk, cfg);
    EXPECT_EQ(signer.laneGroup(), 1u);
    auto futures = signer.submitMany(patternBatch(8, 16));
    for (auto &f : futures)
        EXPECT_EQ(f.get().size(), p.sigBytes());
    auto st = signer.drain();
    EXPECT_EQ(st.laneGroups, 0u);
    EXPECT_EQ(st.crossSignJobs, 0u);
}

TEST(BatchSigner, DrainSeparatesEpochs)
{
    const Params p = miniParams();
    SphincsPlus scheme(p);
    auto kp = scheme.keygenFromSeed(fixedSeed(p));
    BatchSigner signer(p, kp.sk);

    auto f1 = signer.submitMany(patternBatch(5, 16));
    auto st1 = signer.drain();
    EXPECT_EQ(st1.jobs, 5u);
    EXPECT_EQ(std::accumulate(st1.perWorkerSigned.begin(),
                              st1.perWorkerSigned.end(), uint64_t{0}),
              5u);

    // A second drain with nothing new in between reports nothing.
    auto st2 = signer.drain();
    EXPECT_EQ(st2.jobs, 0u);

    auto f3 = signer.submitMany(patternBatch(3, 16));
    auto st3 = signer.drain();
    EXPECT_EQ(st3.jobs, 3u);
}

TEST(BatchSigner, DestructorCompletesPendingFutures)
{
    const Params p = miniParams();
    SphincsPlus scheme(p);
    auto kp = scheme.keygenFromSeed(fixedSeed(p));

    std::vector<std::future<ByteVec>> futures;
    {
        BatchSignerConfig cfg;
        cfg.workers = 2;
        cfg.shards = 2;
        BatchSigner signer(p, kp.sk, cfg);
        futures = signer.submitMany(patternBatch(6, 16));
        // No drain: the destructor must finish the queue.
    }
    for (size_t i = 0; i < futures.size(); ++i) {
        ByteVec sig = futures[i].get();
        EXPECT_EQ(sig.size(), p.sigBytes()) << i;
    }
}

TEST(EngineSignBatch, MatchesScalarAndReportsBothMakespans)
{
    const Params &p = Params::sphincs128f();
    SphincsPlus scheme(p);
    auto kp = scheme.keygenFromSeed(fixedSeed(p));
    core::SignEngine engine(p, gpu::DeviceProps::rtx4090(),
                            core::EngineConfig::hero());

    auto msgs = patternBatch(4);
    auto out = engine.signBatch(msgs, kp.sk, 2);
    ASSERT_EQ(out.signatures.size(), msgs.size());
    for (size_t i = 0; i < msgs.size(); ++i) {
        EXPECT_EQ(hexEncode(out.signatures[i]),
                  hexEncode(scheme.sign(msgs[i], kp.sk)))
            << i;
    }
    EXPECT_EQ(out.workers, 2u);
    EXPECT_EQ(out.stats.jobs, msgs.size());
    EXPECT_GT(out.measuredMakespanUs, 0.0);
    EXPECT_GT(out.predictedMakespanUs, 0.0);
    EXPECT_EQ(out.measuredMakespanUs, out.stats.wallUs);
}

TEST(EngineSignBatch, EmptyBatch)
{
    const Params p = miniParams();
    SphincsPlus scheme(p);
    auto kp = scheme.keygenFromSeed(fixedSeed(p));
    core::SignEngine engine(p, gpu::DeviceProps::rtx4090(),
                            core::EngineConfig::hero());

    auto out = engine.signBatch({}, kp.sk);
    EXPECT_TRUE(out.signatures.empty());
    EXPECT_EQ(out.stats.jobs, 0u);
    EXPECT_EQ(out.predictedMakespanUs, 0.0);
}
