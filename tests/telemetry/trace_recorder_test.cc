/**
 * @file
 * TraceClock and TraceRecorder suite: stage-delta semantics (missing
 * and inverted stamps degrade to 0, never underflow), deterministic
 * 1-in-N span sampling through Telemetry::complete, ring wrap
 * retention, flag/tenant preservation, and concurrent record+dump
 * (a TSan target — the recorder claims slots per-entry, no global
 * lock).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/recorder.hh"
#include "telemetry/telemetry.hh"
#include "telemetry/trace.hh"

using namespace herosign::telemetry;

namespace
{

TraceClock clockWithStamps(uint64_t base)
{
    TraceClock tc;
    tc.stamp(Stage::Admit, base);
    tc.stamp(Stage::Dequeue, base + 100);
    tc.stamp(Stage::GroupFormed, base + 150);
    tc.stamp(Stage::CryptoStart, base + 160);
    tc.stamp(Stage::CryptoEnd, base + 1160);
    tc.stamp(Stage::GuardEnd, base + 1360);
    tc.stamp(Stage::Done, base + 1400);
    return tc;
}

} // namespace

TEST(TraceClock, MetricsDecomposeTheTimeline)
{
    const TraceClock tc = clockWithStamps(5000);
    EXPECT_EQ(tc.metric(StageMetric::QueueWait), 100u);
    EXPECT_EQ(tc.metric(StageMetric::CoalesceWait), 50u);
    EXPECT_EQ(tc.metric(StageMetric::Crypto), 1000u);
    EXPECT_EQ(tc.metric(StageMetric::Guard), 200u);
    EXPECT_EQ(tc.metric(StageMetric::Callback), 40u);
    EXPECT_EQ(tc.metric(StageMetric::EndToEnd), 1400u);
    // Stage sums reconstruct the end-to-end latency exactly when
    // every checkpoint is stamped.
    uint64_t sum = 0;
    for (unsigned m = 0; m + 1 < kStageMetricCount; ++m)
        sum += tc.metric(static_cast<StageMetric>(m));
    // QueueWait+CoalesceWait+Crypto+Guard+Callback misses only the
    // GroupFormed→CryptoStart gap (10ns here).
    EXPECT_EQ(sum + 10, tc.metric(StageMetric::EndToEnd));
}

TEST(TraceClock, MissingOrInvertedStampsYieldZero)
{
    TraceClock tc;
    EXPECT_FALSE(tc.stamped(Stage::Admit));
    EXPECT_EQ(tc.metric(StageMetric::EndToEnd), 0u);

    tc.stamp(Stage::Admit, 1000);
    // Done never stamped.
    EXPECT_EQ(tc.metric(StageMetric::EndToEnd), 0u);
    // Inverted pair: Done before Admit (e.g. clock reuse) — 0, not
    // an underflowed huge number.
    tc.stamp(Stage::Done, 500);
    EXPECT_EQ(tc.metric(StageMetric::EndToEnd), 0u);
    EXPECT_EQ(tc.delta(Stage::Admit, Stage::Done), 0u);
    tc.stamp(Stage::Done, 1700);
    EXPECT_EQ(tc.metric(StageMetric::EndToEnd), 700u);
}

TEST(TraceRecorder, RoundTripsSpansWithFlagsAndTenant)
{
    TraceRecorder rec(8);
    TraceSpan s;
    s.seq = 42;
    s.plane = Plane::Verify;
    s.flags = kSpanFailed | kSpanLaneQuarantine;
    s.setTenant("tenant-zero");
    s.ts[0] = 10;
    s.ts[6] = 90;
    rec.record(s);

    auto spans = rec.dump();
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].seq, 42u);
    EXPECT_EQ(spans[0].plane, Plane::Verify);
    EXPECT_EQ(spans[0].flags, kSpanFailed | kSpanLaneQuarantine);
    EXPECT_STREQ(spans[0].tenant, "tenant-zero");
    EXPECT_EQ(spans[0].ts[0], 10u);
    EXPECT_EQ(spans[0].ts[6], 90u);
    EXPECT_EQ(rec.offered(), 1u);
    EXPECT_EQ(rec.dropped(), 0u);
}

TEST(TraceRecorder, TenantNamesTruncateSafely)
{
    TraceSpan s;
    const std::string longName(64, 'x');
    s.setTenant(longName);
    EXPECT_EQ(std::strlen(s.tenant), TraceSpan::kTenantBytes - 1);
}

TEST(TraceRecorder, RingWrapKeepsTheNewestSpans)
{
    constexpr size_t kCap = 16;
    TraceRecorder rec(kCap);
    for (uint64_t i = 0; i < 3 * kCap; ++i) {
        TraceSpan s;
        s.seq = i;
        rec.record(s);
    }
    auto spans = rec.dump();
    ASSERT_EQ(spans.size(), kCap);
    // Oldest-first, gap-free indices covering the last kCap records.
    for (size_t i = 0; i < spans.size(); ++i) {
        EXPECT_EQ(spans[i].index, 2 * kCap + i);
        EXPECT_EQ(spans[i].seq, 2 * kCap + i);
    }
}

TEST(TraceRecorder, ConcurrentRecordAndDumpNeverTear)
{
    TraceRecorder rec(32);
    std::atomic<bool> stop{false};
    std::vector<std::thread> writers;
    for (unsigned t = 0; t < 4; ++t) {
        writers.emplace_back([&rec, &stop, t] {
            uint64_t n = 0;
            while (!stop.load(std::memory_order_relaxed)) {
                TraceSpan s;
                s.seq = n++;
                // All stamps equal per span: a torn copy would show
                // mixed values.
                const uint64_t v = (uint64_t{t} << 32) | s.seq;
                for (auto &ts : s.ts)
                    ts = v;
                rec.record(s);
            }
        });
    }
    for (int i = 0; i < 500; ++i) {
        auto spans = rec.dump();
        for (const auto &s : spans) {
            for (unsigned j = 1; j < kStageCount; ++j)
                ASSERT_EQ(s.ts[j], s.ts[0]) << "torn span copy";
        }
    }
    stop.store(true, std::memory_order_relaxed);
    for (auto &w : writers)
        w.join();
    // Accounting closes: everything offered was either stored or
    // counted as dropped.
    EXPECT_GE(rec.offered(), rec.dropped());
}

TEST(Telemetry, SamplesDeterministicallyOneInN)
{
    if (!compiledIn())
        GTEST_SKIP() << "telemetry compiled out";
    TelemetryConfig cfg;
    cfg.sampleEvery = 4;
    cfg.traceCapacity = 256;
    cfg.histogramShards = 1;
    Telemetry tel(cfg);

    const std::string tenant = "t0";
    for (uint64_t i = 0; i < 100; ++i) {
        TraceClock tc = clockWithStamps(1000 * (i + 1));
        RequestOutcome out;
        out.plane = Plane::Sign;
        out.seq = i;
        out.tenant = &tenant;
        tel.complete(tc, out);
    }
    EXPECT_EQ(tel.sampled(), 25u);
    auto spans = tel.recorder().dump();
    ASSERT_EQ(spans.size(), 25u);
    // Sampled spans carry the full reconstructed timeline.
    for (const auto &s : spans) {
        EXPECT_EQ(s.plane, Plane::Sign);
        EXPECT_STREQ(s.tenant, "t0");
        for (unsigned j = 0; j < kStageCount; ++j)
            EXPECT_NE(s.ts[j], 0u);
        EXPECT_EQ(s.ts[6] - s.ts[0], 1400u);
    }
    // Histograms saw every completion, not just the sampled ones.
    auto stages = tel.snapshotStages(Plane::Sign);
    ASSERT_TRUE(stages.count("sign_end_to_end"));
    EXPECT_EQ(stages.at("sign_end_to_end").count, 100u);
    EXPECT_EQ(stages.at("sign_end_to_end").max, 1400u);
    ASSERT_TRUE(stages.count("sign_crypto"));
    EXPECT_EQ(stages.at("sign_crypto").count, 100u);
}

TEST(Telemetry, SampleEveryZeroDisablesSpans)
{
    if (!compiledIn())
        GTEST_SKIP() << "telemetry compiled out";
    TelemetryConfig cfg;
    cfg.sampleEvery = 0;
    cfg.histogramShards = 1;
    Telemetry tel(cfg);
    for (uint64_t i = 0; i < 10; ++i) {
        RequestOutcome out;
        tel.complete(clockWithStamps(100 * (i + 1)), out);
    }
    EXPECT_EQ(tel.sampled(), 0u);
    EXPECT_TRUE(tel.recorder().dump().empty());
    // Histograms still fed.
    auto stages = tel.snapshotStages(Plane::Sign);
    EXPECT_EQ(stages.at("sign_end_to_end").count, 10u);
}

TEST(Telemetry, FailedRequestsSkipHistogramsButKeepSpans)
{
    if (!compiledIn())
        GTEST_SKIP() << "telemetry compiled out";
    TelemetryConfig cfg;
    cfg.sampleEvery = 1;
    cfg.histogramShards = 1;
    Telemetry tel(cfg);
    RequestOutcome out;
    out.flags = kSpanFailed | kSpanExpired;
    out.recordHistograms = false;
    tel.complete(clockWithStamps(1000), out);

    auto stages = tel.snapshotStages(Plane::Sign);
    EXPECT_EQ(stages.count("sign_end_to_end"), 0u);
    auto spans = tel.recorder().dump();
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].flags, kSpanFailed | kSpanExpired);
}

TEST(Telemetry, RuntimeDisableStopsStampsAndCompletions)
{
    TelemetryConfig cfg;
    cfg.sampleEvery = 1;
    cfg.histogramShards = 1;
    Telemetry tel(cfg);
    tel.setEnabled(false);
    EXPECT_FALSE(tel.enabled());

    TraceClock tc;
    tel.stamp(tc, Stage::Admit);
    EXPECT_FALSE(tc.stamped(Stage::Admit));

    RequestOutcome out;
    tel.complete(clockWithStamps(1000), out);
    tel.recordGroup(Plane::Sign, 8, 8);
    EXPECT_EQ(tel.sampled(), 0u);
    EXPECT_TRUE(tel.snapshotAll().empty());

    if (compiledIn()) {
        tel.setEnabled(true);
        tel.stamp(tc, Stage::Admit);
        EXPECT_TRUE(tc.stamped(Stage::Admit));
    }
}

TEST(Telemetry, GroupShapeHistogramsTrackFillRatio)
{
    if (!compiledIn())
        GTEST_SKIP() << "telemetry compiled out";
    TelemetryConfig cfg;
    cfg.histogramShards = 1;
    Telemetry tel(cfg);
    tel.recordGroup(Plane::Sign, 8, 8);  // 100% fill
    tel.recordGroup(Plane::Sign, 4, 8);  // 50% fill
    tel.recordGroup(Plane::Verify, 2, 8);

    auto sign = tel.snapshotStages(Plane::Sign);
    ASSERT_TRUE(sign.count("sign_group_size"));
    EXPECT_EQ(sign.at("sign_group_size").count, 2u);
    EXPECT_EQ(sign.at("sign_group_size").max, 8u);
    ASSERT_TRUE(sign.count("sign_lane_fill_pct"));
    EXPECT_EQ(sign.at("sign_lane_fill_pct").max, 100u);
    EXPECT_EQ(sign.at("sign_lane_fill_pct").min, 50u);

    auto all = tel.snapshotAll();
    ASSERT_TRUE(all.count("verify_group_size"));
    EXPECT_EQ(all.at("verify_group_size").count, 1u);
}
