/**
 * @file
 * LatencyHistogram unit suite: bucket mapping invariants, exact-
 * bucket percentile semantics (never under-reporting, bounded
 * relative error), lock-free concurrent recording, and snapshot
 * merge algebra (buckets summed, min/max folded). The concurrent
 * cases are TSan targets.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include "telemetry/histogram.hh"

using herosign::telemetry::HistogramSnapshot;
using herosign::telemetry::LatencyHistogram;

TEST(LatencyHistogram, BucketIndexIsExactBelowSubBuckets)
{
    for (uint64_t v = 0; v < LatencyHistogram::kSubBuckets; ++v) {
        EXPECT_EQ(LatencyHistogram::bucketIndex(v), v);
        EXPECT_EQ(LatencyHistogram::bucketUpperBound(
                      static_cast<unsigned>(v)),
                  v);
    }
}

TEST(LatencyHistogram, BucketIndexIsMonotoneAndBoundsNest)
{
    unsigned prev = 0;
    for (uint64_t v = 1; v < (uint64_t{1} << 45); v = v * 2 + 7) {
        const unsigned idx = LatencyHistogram::bucketIndex(v);
        EXPECT_GE(idx, prev) << "value " << v;
        EXPECT_LT(idx, LatencyHistogram::kBuckets);
        prev = idx;
    }
    // Every value maps into a bucket whose upper bound is >= the
    // value (within the clamp range) and whose relative width is
    // bounded by 1/kSubBuckets * 2.
    std::mt19937_64 rng(42);
    for (int i = 0; i < 20000; ++i) {
        const uint64_t v = rng() % (uint64_t{1} << 40);
        const unsigned idx = LatencyHistogram::bucketIndex(v);
        const uint64_t ub = LatencyHistogram::bucketUpperBound(idx);
        EXPECT_GE(ub, v);
        if (v >= LatencyHistogram::kSubBuckets) {
            EXPECT_LE(static_cast<double>(ub),
                      static_cast<double>(v) *
                          (1.0 +
                           2.0 / LatencyHistogram::kSubBuckets) +
                          1.0)
                << "bucket too wide for " << v;
        }
    }
}

TEST(LatencyHistogram, PercentileNeverUnderReports)
{
    LatencyHistogram h(1);
    std::vector<uint64_t> values;
    std::mt19937_64 rng(7);
    for (int i = 0; i < 5000; ++i) {
        const uint64_t v = 50 + rng() % 2'000'000;
        values.push_back(v);
        h.record(v);
    }
    std::sort(values.begin(), values.end());
    auto snap = h.snapshot();
    ASSERT_EQ(snap.count, values.size());
    EXPECT_EQ(snap.min, values.front());
    EXPECT_EQ(snap.max, values.back());
    for (double q : {0.5, 0.9, 0.99, 0.999}) {
        const size_t rank = static_cast<size_t>(
            std::ceil(q * static_cast<double>(values.size())));
        const uint64_t exact = values[rank - 1];
        const uint64_t est = snap.percentile(q);
        EXPECT_GE(est, exact) << "q=" << q;
        EXPECT_LE(static_cast<double>(est),
                  static_cast<double>(exact) * 1.07 + 1.0)
            << "q=" << q;
    }
    EXPECT_EQ(snap.percentile(1.0), values.back());
}

TEST(LatencyHistogram, EmptySnapshotIsAllZero)
{
    LatencyHistogram h(2);
    auto snap = h.snapshot();
    EXPECT_TRUE(snap.empty());
    EXPECT_EQ(snap.count, 0u);
    EXPECT_EQ(snap.min, 0u);
    EXPECT_EQ(snap.max, 0u);
    EXPECT_EQ(snap.percentile(0.99), 0u);
    EXPECT_EQ(snap.mean(), 0.0);
}

TEST(LatencyHistogram, HugeValuesClampIntoTopBucket)
{
    LatencyHistogram h(1);
    h.record(UINT64_MAX);
    h.record(uint64_t{1} << 60);
    auto snap = h.snapshot();
    EXPECT_EQ(snap.count, 2u);
    // max keeps the exact value even though the bucket clamps.
    EXPECT_EQ(snap.max, UINT64_MAX);
    // Percentiles saturate at the top of the tracked range (~2^42 ns
    // = ~73 min — anything above is "off the scale", not a latency).
    EXPECT_GE(snap.percentile(1.0), uint64_t{1} << 42);
    EXPECT_LE(snap.percentile(1.0), snap.max);
}

TEST(LatencyHistogram, ConcurrentRecordsAreAllCounted)
{
    constexpr unsigned kThreads = 8;
    constexpr unsigned kPerThread = 20000;
    LatencyHistogram h; // auto shards
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&h, t] {
            std::mt19937_64 rng(1000 + t);
            for (unsigned i = 0; i < kPerThread; ++i)
                h.record(1 + rng() % 1'000'000);
        });
    }
    for (auto &th : threads)
        th.join();
    auto snap = h.snapshot();
    EXPECT_EQ(snap.count, uint64_t{kThreads} * kPerThread);
    EXPECT_GE(snap.min, 1u);
    EXPECT_LE(snap.max, 1'000'000u);
    uint64_t bucketTotal = 0;
    for (uint64_t c : snap.counts)
        bucketTotal += c;
    EXPECT_EQ(bucketTotal, snap.count);
}

TEST(LatencyHistogram, SnapshotWhileRecordingIsConsistent)
{
    LatencyHistogram h;
    std::atomic<bool> stop{false};
    std::thread writer([&] {
        uint64_t v = 1;
        while (!stop.load(std::memory_order_relaxed))
            h.record(1 + (v++ % 4096));
    });
    for (int i = 0; i < 200; ++i) {
        auto snap = h.snapshot();
        uint64_t bucketTotal = 0;
        for (uint64_t c : snap.counts)
            bucketTotal += c;
        EXPECT_EQ(bucketTotal, snap.count);
    }
    stop.store(true, std::memory_order_relaxed);
    writer.join();
}

TEST(HistogramSnapshot, MergeSumsBucketsAndFoldsExtremes)
{
    LatencyHistogram a(1);
    LatencyHistogram b(1);
    std::vector<uint64_t> all;
    std::mt19937_64 rng(99);
    for (int i = 0; i < 3000; ++i) {
        const uint64_t v = 10 + rng() % 500'000;
        all.push_back(v);
        (i % 2 ? a : b).record(v);
    }
    LatencyHistogram combined(1);
    for (uint64_t v : all)
        combined.record(v);

    auto merged = a.snapshot();
    merged.merge(b.snapshot());
    auto expect = combined.snapshot();

    EXPECT_EQ(merged.count, expect.count);
    EXPECT_EQ(merged.min, expect.min);
    EXPECT_EQ(merged.max, expect.max);
    EXPECT_EQ(merged.sum, expect.sum);
    ASSERT_EQ(merged.counts.size(), expect.counts.size());
    EXPECT_EQ(merged.counts, expect.counts);
    for (double q : {0.5, 0.9, 0.99})
        EXPECT_EQ(merged.percentile(q), expect.percentile(q));
}

TEST(HistogramSnapshot, MergeWithEmptyIsIdentity)
{
    LatencyHistogram a(1);
    a.record(100);
    a.record(300);
    auto snap = a.snapshot();
    HistogramSnapshot empty;
    auto merged = snap;
    merged.merge(empty);
    EXPECT_EQ(merged.count, snap.count);
    EXPECT_EQ(merged.min, snap.min);
    EXPECT_EQ(merged.max, snap.max);

    HistogramSnapshot fromEmpty;
    fromEmpty.merge(snap);
    EXPECT_EQ(fromEmpty.count, snap.count);
    EXPECT_EQ(fromEmpty.min, snap.min);
    EXPECT_EQ(fromEmpty.max, snap.max);
    EXPECT_EQ(fromEmpty.counts, snap.counts);
}
