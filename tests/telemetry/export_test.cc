/**
 * @file
 * Exporter suite: drives a live SignService/VerifyService fabric,
 * then validates that the merged ServiceStats snapshot renders to
 * (a) well-formed single-line JSON carrying per-stage percentiles
 * and (b) Prometheus text exposition that passes the promCheck
 * format validator. Also covers the MetricsReporter background
 * thread (JSONL appends, final flush on stop) and the promCheck
 * validator's own rejection paths.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "../batch/batch_test_util.hh"
#include "service/sign_service.hh"
#include "service/verify_service.hh"
#include "telemetry/prom_check.hh"
#include "telemetry/reporter.hh"

using namespace herosign;
using batchtest::miniParams;
using batchtest::patternMsg;
using service::KeyStore;
using service::ServiceConfig;
using service::ServiceStats;
using service::SignService;
using service::StatsRegistry;
using service::VerifyService;

namespace
{

struct Fabric
{
    sphincs::Params p = miniParams();
    sphincs::SphincsPlus scheme{p};
    KeyStore store;
    ByteVec msg = patternMsg(24, 0x5a);
    ByteVec sig;

    Fabric()
    {
        auto kp = scheme.keygenFromSeed(batchtest::fixedSeed(p, 3));
        store.addKey("t0", kp);
        store.addKey("t1",
                     scheme.keygenFromSeed(batchtest::fixedSeed(p, 8)));
        sig = scheme.sign(msg, kp.sk);
    }
};

/** Run mixed traffic and return the merged fabric snapshot. */
ServiceStats
runFabric(Fabric &fx)
{
    ServiceConfig cfg;
    cfg.workers = 2;
    cfg.shards = 2;
    cfg.verifyWorkers = 2;
    cfg.verifyShards = 2;
    cfg.telemetry.sampleEvery = 1;
    SignService sign_svc(fx.store, cfg);
    VerifyService verify_svc(fx.store, cfg, sign_svc.contextCache(),
                             sign_svc.statsRegistry(),
                             sign_svc.admission());

    std::vector<std::future<ByteVec>> sfuts;
    std::vector<std::future<bool>> vfuts;
    for (unsigned i = 0; i < 12; ++i) {
        sfuts.push_back(sign_svc.submitSign(
            i % 2 ? "t0" : "t1",
            patternMsg(16, static_cast<uint8_t>(i))));
        vfuts.push_back(
            verify_svc.submitVerify("t0", fx.msg, fx.sig));
    }
    for (auto &f : sfuts)
        f.get();
    for (auto &f : vfuts)
        EXPECT_TRUE(f.get());
    sign_svc.drain();
    verify_svc.drain();
    return sign_svc.stats().mergedWith(verify_svc.stats());
}

size_t
countOccurrences(const std::string &hay, const std::string &needle)
{
    size_t n = 0;
    for (size_t pos = hay.find(needle); pos != std::string::npos;
         pos = hay.find(needle, pos + needle.size()))
        ++n;
    return n;
}

} // namespace

TEST(Export, LiveFabricSnapshotCarriesStageHistograms)
{
    if (!telemetry::compiledIn())
        GTEST_SKIP() << "telemetry compiled out";
    Fabric fx;
    const ServiceStats snap = runFabric(fx);
    ASSERT_EQ(snap.signsCompleted, 12u);
    ASSERT_EQ(snap.verifies, 12u);

    // Every always-stamped stage appears for both planes.
    for (const char *key :
         {"sign_queue_wait", "sign_crypto", "sign_callback",
          "sign_end_to_end", "sign_group_size", "sign_lane_fill_pct",
          "verify_queue_wait", "verify_crypto", "verify_callback",
          "verify_end_to_end", "verify_group_size"}) {
        ASSERT_TRUE(snap.stages.count(key)) << "missing " << key;
        EXPECT_FALSE(snap.stages.at(key).empty()) << key;
    }
    EXPECT_EQ(snap.stages.at("sign_end_to_end").count, 12u);
    EXPECT_EQ(snap.stages.at("verify_end_to_end").count, 12u);
    EXPECT_GT(snap.stages.at("sign_end_to_end").percentile(0.99),
              snap.stages.at("sign_crypto").percentile(0.5) / 2);

    // Per-tenant end-to-end latency survived the plane-masked merge.
    ASSERT_TRUE(snap.tenants.count("t0"));
    EXPECT_EQ(snap.tenants.at("t0").signLatency.count, 6u);
    EXPECT_EQ(snap.tenants.at("t0").verifyLatency.count, 12u);
    EXPECT_EQ(snap.tenants.at("t1").signLatency.count, 6u);
}

TEST(Export, JsonIsSingleLineWithExpectedSections)
{
    Fabric fx;
    const ServiceStats snap = runFabric(fx);
    const std::string json = StatsRegistry::exportJson(snap);

    ASSERT_FALSE(json.empty());
    EXPECT_EQ(json.find('\n'), std::string::npos);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    // Balanced braces/brackets — a cheap structural check that does
    // not need a JSON parser.
    int depth = 0;
    bool inString = false;
    for (size_t i = 0; i < json.size(); ++i) {
        const char c = json[i];
        if (inString) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                inString = false;
            continue;
        }
        if (c == '"')
            inString = true;
        else if (c == '{' || c == '[')
            ++depth;
        else if (c == '}' || c == ']')
            --depth;
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
    EXPECT_FALSE(inString);

    for (const char *key :
         {"\"counters\"", "\"gauges\"", "\"cache\"", "\"tenants\"",
          "\"signs_completed\""})
        EXPECT_NE(json.find(key), std::string::npos) << key;
    if (telemetry::compiledIn()) {
        EXPECT_NE(json.find("\"stages\""), std::string::npos);
        EXPECT_NE(json.find("\"sign_end_to_end\""),
                  std::string::npos);
        EXPECT_NE(json.find("\"p99_ns\""), std::string::npos);
    }
}

TEST(Export, PrometheusOutputPassesFormatChecker)
{
    Fabric fx;
    const ServiceStats snap = runFabric(fx);
    const std::string prom = StatsRegistry::exportPrometheus(snap);

    auto check = telemetry::promCheck(prom);
    EXPECT_TRUE(check.ok) << [&] {
        std::string all;
        for (const auto &e : check.errors)
            all += e + "\n";
        return all;
    }();
    EXPECT_GT(check.samples, 10u);
    EXPECT_GT(check.typeDecls, 5u);

    EXPECT_NE(prom.find("herosign_signs_completed_total"),
              std::string::npos);
    EXPECT_NE(prom.find("herosign_queue_depth"), std::string::npos);
    if (telemetry::compiledIn()) {
        EXPECT_NE(prom.find("herosign_stage_latency_seconds_bucket"),
                  std::string::npos);
        EXPECT_NE(prom.find("plane=\"sign\""), std::string::npos);
        EXPECT_NE(prom.find("stage=\"end_to_end\""),
                  std::string::npos);
        EXPECT_NE(prom.find("herosign_tenant_latency_seconds"),
                  std::string::npos);
        // One +Inf bucket per emitted histogram series (each series
        // also emits exactly one _count sample).
        EXPECT_GT(countOccurrences(prom, "le=\"+Inf\""), 0u);
        EXPECT_EQ(countOccurrences(prom, "le=\"+Inf\""),
                  countOccurrences(prom, "_count{"));
    }
}

TEST(Export, PromCheckRejectsMalformedExposition)
{
    // Sample without a TYPE declaration.
    auto r1 = telemetry::promCheck("orphan_metric 1\n");
    EXPECT_FALSE(r1.ok);

    // Non-cumulative buckets.
    auto r2 = telemetry::promCheck(
        "# TYPE h histogram\n"
        "h_bucket{le=\"1\"} 5\n"
        "h_bucket{le=\"2\"} 3\n"
        "h_bucket{le=\"+Inf\"} 5\n"
        "h_sum 9\n"
        "h_count 5\n");
    EXPECT_FALSE(r2.ok);

    // +Inf bucket disagrees with _count.
    auto r3 = telemetry::promCheck(
        "# TYPE h histogram\n"
        "h_bucket{le=\"+Inf\"} 4\n"
        "h_sum 9\n"
        "h_count 5\n");
    EXPECT_FALSE(r3.ok);

    // Bad metric name and bad value.
    EXPECT_FALSE(telemetry::promCheck("# TYPE 9bad counter\n").ok);
    EXPECT_FALSE(telemetry::promCheck("# TYPE m counter\nm xyz\n").ok);

    // A tiny valid document is accepted.
    auto ok = telemetry::promCheck(
        "# HELP m total things\n"
        "# TYPE m counter\n"
        "m{tenant=\"t0\"} 42\n");
    EXPECT_TRUE(ok.ok);
    EXPECT_EQ(ok.samples, 1u);
}

TEST(Export, MetricsReporterAppendsJsonLines)
{
    const std::string path =
        testing::TempDir() + "herosign_reporter_test.jsonl";
    std::remove(path.c_str());

    int calls = 0;
    {
        telemetry::MetricsReporter reporter(
            path, std::chrono::milliseconds(20),
            [&calls]() -> std::string {
                return "{\"tick\":" + std::to_string(calls++) + "}";
            });
        std::this_thread::sleep_for(std::chrono::milliseconds(90));
        reporter.stop();
        EXPECT_GE(reporter.linesWritten(), 2u);
    }

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string line;
    size_t lines = 0;
    int lastTick = -1;
    while (std::getline(in, line)) {
        ASSERT_FALSE(line.empty());
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
        const int tick = std::stoi(line.substr(8));
        EXPECT_GT(tick, lastTick);
        lastTick = tick;
        ++lines;
    }
    EXPECT_GE(lines, 2u);
    std::remove(path.c_str());
}
