/**
 * @file
 * The deterministic fault-injection layer: plan grammar, firing
 * schedules, the quarantine switchboard and the forced-scalar scope.
 * Everything here is counter-based — a fixed plan over a fixed amount
 * of work always fires the same number of times, which is what lets
 * the chaos suite assert invariants instead of probabilities.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "common/fault.hh"
#include "hash/sha256xN.hh"

using namespace herosign;

namespace
{

/** Disarm + lift quarantines so tests cannot leak into each other
 *  (the fault-matrix CI mode starts this binary with an env plan
 *  already armed). */
struct CleanInjector : ::testing::Test
{
    void SetUp() override
    {
        FaultInjector::instance().disarm();
        sha256LanesClearQuarantines();
    }
    void TearDown() override
    {
        FaultInjector::instance().disarm();
        sha256LanesClearQuarantines();
    }
};

using FaultPlanTest = CleanInjector;
using FaultScheduleTest = CleanInjector;
using QuarantineTest = CleanInjector;

} // namespace

TEST_F(FaultPlanTest, ParsesTheDocumentedExample)
{
    const FaultPlan plan = FaultPlan::parse(
        "seed=7;simd-lane:every=5:max=40;"
        "worker-throw:start=10:every=97;queue-stall:every=50:ms=2");
    EXPECT_EQ(plan.seed, 7u);
    EXPECT_TRUE(plan.anyActive());

    const FaultRule &simd = plan.rule(FaultPoint::SimdLane);
    EXPECT_TRUE(simd.active);
    EXPECT_EQ(simd.every, 5u);
    EXPECT_EQ(simd.start, 0u);
    EXPECT_EQ(simd.max, 40u);

    const FaultRule &wt = plan.rule(FaultPoint::WorkerThrow);
    EXPECT_TRUE(wt.active);
    EXPECT_EQ(wt.start, 10u);
    EXPECT_EQ(wt.every, 97u);
    EXPECT_EQ(wt.max, UINT64_MAX);

    const FaultRule &qs = plan.rule(FaultPoint::QueueStall);
    EXPECT_TRUE(qs.active);
    EXPECT_EQ(qs.every, 50u);
    EXPECT_EQ(qs.ms, 2u);

    EXPECT_FALSE(plan.rule(FaultPoint::HashCompress).active);
    EXPECT_FALSE(plan.rule(FaultPoint::CallbackThrow).active);
}

TEST_F(FaultPlanTest, BarePointNameActivatesWithDefaults)
{
    const FaultPlan plan = FaultPlan::parse("callback-throw");
    const FaultRule &cb = plan.rule(FaultPoint::CallbackThrow);
    EXPECT_TRUE(cb.active);
    EXPECT_EQ(cb.every, 1u);
    EXPECT_EQ(cb.start, 0u);
}

TEST_F(FaultPlanTest, WhitespaceAndEmptyClausesAreTolerated)
{
    EXPECT_FALSE(FaultPlan::parse("").anyActive());
    EXPECT_FALSE(FaultPlan::parse(" ;  ; ").anyActive());
    const FaultPlan plan =
        FaultPlan::parse("  hash-compress:every=3 ;\n seed=9 ;");
    EXPECT_TRUE(plan.rule(FaultPoint::HashCompress).active);
    EXPECT_EQ(plan.seed, 9u);
}

TEST_F(FaultPlanTest, TyposFailLoudly)
{
    // A CI fault-matrix entry with a typo must fail, not silently
    // run fault-free.
    EXPECT_THROW(FaultPlan::parse("bogus-point"),
                 std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("simd-lane:flub=1"),
                 std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("simd-lane:every=0"),
                 std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("simd-lane:every"),
                 std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("seed=xyz"),
                 std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("simd-lane:every=5x"),
                 std::invalid_argument);
}

TEST_F(FaultScheduleTest, StartEveryMaxScheduleIsExact)
{
    FaultPlan plan;
    FaultRule &rule = plan.rule(FaultPoint::HashCompress);
    rule.active = true;
    rule.start = 2;
    rule.every = 3;
    rule.max = 4;
    FaultInjector &inj = FaultInjector::instance();
    inj.arm(plan);

    // Hits 1,2 skipped (start); then every 3rd hit fires: 3,6,9,12;
    // max=4 stops it there, so 15 and 18 do not fire.
    std::vector<uint64_t> firing_hits;
    for (uint64_t hit = 1; hit <= 20; ++hit) {
        if (FaultInjector::fire(FaultPoint::HashCompress))
            firing_hits.push_back(hit);
    }
    EXPECT_EQ(firing_hits,
              (std::vector<uint64_t>{3, 6, 9, 12}));
    EXPECT_EQ(inj.hits(FaultPoint::HashCompress), 20u);
    EXPECT_EQ(inj.fired(FaultPoint::HashCompress), 4u);
    // The other points never fired or counted.
    EXPECT_EQ(inj.hits(FaultPoint::SimdLane), 0u);
}

TEST_F(FaultScheduleTest, RearmResetsCounters)
{
    FaultPlan plan;
    plan.rule(FaultPoint::WorkerThrow).active = true;
    FaultInjector &inj = FaultInjector::instance();
    inj.arm(plan);
    EXPECT_TRUE(FaultInjector::fire(FaultPoint::WorkerThrow));
    EXPECT_EQ(inj.hits(FaultPoint::WorkerThrow), 1u);
    inj.arm(plan);
    EXPECT_EQ(inj.hits(FaultPoint::WorkerThrow), 0u);
    EXPECT_EQ(inj.fired(FaultPoint::WorkerThrow), 0u);
}

TEST_F(FaultScheduleTest, DisarmedFireIsFalseAndCountsNothing)
{
    FaultPlan plan;
    plan.rule(FaultPoint::WorkerThrow).active = true;
    FaultInjector &inj = FaultInjector::instance();
    inj.arm(plan);
    inj.disarm();
    EXPECT_FALSE(FaultInjector::armed());
    for (int i = 0; i < 5; ++i)
        EXPECT_FALSE(FaultInjector::fire(FaultPoint::WorkerThrow));
    EXPECT_EQ(inj.hits(FaultPoint::WorkerThrow), 0u);
}

TEST_F(FaultScheduleTest, ThrowIfFiresCarriesThePointName)
{
    FaultPlan plan;
    plan.rule(FaultPoint::CallbackThrow).active = true;
    FaultInjector::instance().arm(plan);
    try {
        FaultInjector::throwIfFires(FaultPoint::CallbackThrow);
        FAIL() << "expected FaultInjected";
    } catch (const FaultInjected &e) {
        EXPECT_NE(std::strstr(e.what(), "callback-throw"), nullptr);
    }
}

TEST_F(FaultScheduleTest, LaneChoiceIsSeededDeterministicAndBounded)
{
    FaultPlan plan;
    plan.seed = 42;
    plan.rule(FaultPoint::SimdLane).active = true;
    FaultInjector &inj = FaultInjector::instance();
    inj.arm(plan);
    std::vector<unsigned> lanes;
    for (uint64_t i = 1; i <= 64; ++i) {
        const unsigned lane = inj.laneFor(i, 16);
        ASSERT_LT(lane, 16u);
        lanes.push_back(lane);
    }
    // Re-arming with the same seed replays the identical walk.
    inj.arm(plan);
    for (uint64_t i = 1; i <= 64; ++i)
        EXPECT_EQ(inj.laneFor(i, 16), lanes[i - 1]);
    // The walk visits more than one lane (seeded, not stuck at 0).
    EXPECT_GT(std::set<unsigned>(lanes.begin(), lanes.end()).size(),
              1u);
}

TEST_F(FaultScheduleTest, HashCompressFaultFlipsExactlyOneLane)
{
    const uint8_t block[Sha256Lanes::blockSize] = {0x5a};
    const uint8_t *data[2] = {block, block};

    uint8_t clean[2][Sha256Lanes::digestSize];
    uint8_t *cleanp[2] = {clean[0], clean[1]};
    {
        Sha256Lanes h(2);
        h.update(data, sizeof(block));
        h.final(cleanp);
    }

    FaultPlan plan;
    FaultRule &rule = plan.rule(FaultPoint::HashCompress);
    rule.active = true;
    rule.max = 1;
    FaultInjector::instance().arm(plan);
    uint8_t faulty[2][Sha256Lanes::digestSize];
    uint8_t *faultyp[2] = {faulty[0], faulty[1]};
    {
        Sha256Lanes h(2);
        h.update(data, sizeof(block));
        h.final(faultyp);
    }
    FaultInjector::instance().disarm();

    const unsigned differing =
        (std::memcmp(clean[0], faulty[0], sizeof(clean[0])) != 0) +
        (std::memcmp(clean[1], faulty[1], sizeof(clean[1])) != 0);
    EXPECT_EQ(differing, 1u);
    EXPECT_EQ(FaultInjector::instance().fired(
                  FaultPoint::HashCompress),
              1u);
}

TEST_F(QuarantineTest, QuarantineDemotesDispatchProcessWide)
{
    const LaneBackend before = laneDispatch().backend;
    const uint64_t count0 = sha256LanesQuarantineCount();
    const LaneBackend hit = sha256LanesQuarantineActiveTier();
    EXPECT_EQ(hit, before);
    if (before == LaneBackend::Scalar) {
        // Portable host (or env-pinned): nothing below to demote to.
        EXPECT_EQ(sha256LanesQuarantineCount(), count0);
        return;
    }
    EXPECT_EQ(sha256LanesQuarantineCount(), count0 + 1);
    EXPECT_NE(laneDispatch().backend, before);
    // Quarantining the same tier again is idempotent.
    sha256LanesQuarantine(before);
    EXPECT_EQ(sha256LanesQuarantineCount(), count0 + 1);
    // Another thread sees the demotion too — the switch is global.
    LaneBackend other = before;
    std::thread([&other] { other = laneDispatch().backend; }).join();
    EXPECT_NE(other, before);

    sha256LanesClearQuarantines();
    EXPECT_EQ(laneDispatch().backend, before);
}

TEST_F(QuarantineTest, Avx2QuarantineDemotesToPortableOutright)
{
    if (laneDispatch().backend != LaneBackend::Avx512)
        GTEST_SKIP() << "needs active AVX-512 dispatch";
    // The shared vector unit is suspect: an AVX2 quarantine must not
    // leave the wider tier of the same unit selectable.
    sha256LanesQuarantine(LaneBackend::Avx2);
    EXPECT_EQ(laneDispatch().backend, LaneBackend::Scalar);
    sha256LanesClearQuarantines();
}

TEST_F(QuarantineTest, ScopedScalarLanesPinsOnlyThisThread)
{
    const LaneBackend before = laneDispatch().backend;
    EXPECT_FALSE(ScopedScalarLanes::activeOnThisThread());
    {
        ScopedScalarLanes outer;
        EXPECT_TRUE(ScopedScalarLanes::activeOnThisThread());
        EXPECT_EQ(laneDispatch().backend, LaneBackend::Scalar);
        {
            ScopedScalarLanes inner; // nestable
            EXPECT_EQ(laneDispatch().backend, LaneBackend::Scalar);
        }
        EXPECT_TRUE(ScopedScalarLanes::activeOnThisThread());
        // Sibling threads keep their SIMD dispatch.
        LaneBackend other = LaneBackend::Scalar;
        std::thread([&other] { other = laneDispatch().backend; })
            .join();
        EXPECT_EQ(other, before);
    }
    EXPECT_FALSE(ScopedScalarLanes::activeOnThisThread());
    EXPECT_EQ(laneDispatch().backend, before);
}
