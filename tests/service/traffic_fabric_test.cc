/**
 * @file
 * The unified traffic fabric: a SignService/VerifyService pair
 * sharing one ContextCache, StatsRegistry and AdmissionController
 * under multi-threaded mixed traffic. Asserts the ledger identities
 * that make the merged ServiceStats snapshot trustworthy, typed
 * overload rejection on every configured limit, and sync/async verify
 * verdict identity on all Table I parameter sets. This suite is a
 * primary target of the TSan CI job.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <map>
#include <thread>
#include <vector>

#include "../batch/batch_test_util.hh"
#include "service/admission.hh"
#include "service/sign_service.hh"
#include "service/verify_service.hh"
#include "sphincs/sphincs.hh"

using namespace herosign;
using batchtest::miniParams;
using batchtest::patternMsg;
using service::AdmissionController;
using service::AdmissionLimits;
using service::KeyStore;
using service::Plane;
using service::ServiceConfig;
using service::ServiceOverload;
using service::SignService;
using service::StatsRegistry;
using service::VerifyService;
using sphincs::SphincsPlus;

namespace
{

struct Tenancy
{
    sphincs::Params p = miniParams();
    SphincsPlus scheme{p};
    KeyStore store;
    std::map<std::string, sphincs::KeyPair> keys;

    explicit Tenancy(unsigned tenants)
    {
        for (unsigned i = 0; i < tenants; ++i) {
            const std::string id =
                std::string("t").append(std::to_string(i));
            auto kp = scheme.keygenFromSeed(batchtest::fixedSeed(
                p, static_cast<uint8_t>(5 * i + 3)));
            keys.emplace(id, kp);
            store.addKey(id, kp);
        }
    }
};

/** Sum a TenantStats field across every tenant in a snapshot. */
template <typename F>
uint64_t
tenantSum(const std::map<std::string, service::TenantStats> &tenants,
          F field)
{
    uint64_t sum = 0;
    for (const auto &[id, ts] : tenants)
        sum += field(ts);
    return sum;
}

} // namespace

TEST(TrafficFabric, MixedStressKeepsLedgerIdentities)
{
    constexpr unsigned kTenants = 3;
    constexpr unsigned kProducers = 4;
    constexpr unsigned kIters = 24;

    Tenancy fx(kTenants);

    // Pre-build verify traffic: one valid and one corrupted signature
    // per tenant, so producer threads only submit (no signing cost in
    // the loop) and the expected verdict of every request is known.
    std::map<std::string, std::pair<ByteVec, ByteVec>> good, bad;
    for (const auto &[id, kp] : fx.keys) {
        ByteVec msg = patternMsg(32, static_cast<uint8_t>(id.back()));
        ByteVec sig = fx.scheme.sign(msg, kp.sk);
        good[id] = {msg, sig};
        ByteVec tampered = sig;
        tampered[11] ^= 0x20;
        bad[id] = {msg, tampered};
    }

    ServiceConfig cfg;
    cfg.workers = 2;
    cfg.shards = 2;
    cfg.verifyWorkers = 2;
    cfg.verifyShards = 2;
    SignService sign_svc(fx.store, cfg);
    VerifyService verify_svc(fx.store, cfg, sign_svc.contextCache(),
                             sign_svc.statsRegistry(),
                             sign_svc.admission());

    std::atomic<uint64_t> verdicts_true{0}, verdicts_false{0};
    std::atomic<uint64_t> sign_ok{0};
    std::vector<std::thread> producers;
    for (unsigned t = 0; t < kProducers; ++t) {
        producers.emplace_back([&, t] {
            std::vector<std::future<bool>> vfuts;
            std::vector<std::future<ByteVec>> sfuts;
            for (unsigned i = 0; i < kIters; ++i) {
                const std::string id =
                    std::string("t").append(
                        std::to_string((t + i) % kTenants));
                switch (i % 4) {
                case 0:
                    sfuts.push_back(sign_svc.submitSign(
                        id, patternMsg(16, static_cast<uint8_t>(i))));
                    break;
                case 1:
                    vfuts.push_back(verify_svc.submitVerify(
                        id, good[id].first, good[id].second));
                    break;
                case 2:
                    vfuts.push_back(verify_svc.submitVerify(
                        id, bad[id].first, bad[id].second));
                    break;
                default:
                    // Unknown tenant: rejects without throwing and
                    // must reconcile via unknownTenantRejects.
                    vfuts.push_back(verify_svc.submitVerify(
                        "ghost", good["t0"].first, good["t0"].second));
                    break;
                }
            }
            for (auto &f : vfuts) {
                if (f.get())
                    verdicts_true.fetch_add(1);
                else
                    verdicts_false.fetch_add(1);
            }
            for (auto &f : sfuts) {
                if (!f.get().empty())
                    sign_ok.fetch_add(1);
            }
        });
    }
    for (auto &th : producers)
        th.join();
    sign_svc.drain();
    verify_svc.drain();

    const uint64_t per_kind = kProducers * kIters / 4;
    EXPECT_EQ(verdicts_true.load(), per_kind);      // valid sigs
    EXPECT_EQ(verdicts_false.load(), 2 * per_kind); // bad + ghost
    EXPECT_EQ(sign_ok.load(), per_kind);

    const auto ss = sign_svc.stats();
    const auto vs = verify_svc.stats();
    const auto merged = ss.mergedWith(vs);

    // Sign-plane ledger.
    EXPECT_EQ(ss.signsSubmitted, per_kind);
    EXPECT_EQ(ss.signsCompleted, ss.signsSubmitted);
    EXPECT_EQ(ss.signFailures, 0u);
    EXPECT_EQ(ss.inFlight, 0u);

    // Verify-plane ledger: every accepted request got a verdict.
    EXPECT_EQ(vs.verifiesSubmitted, 3 * per_kind);
    EXPECT_EQ(vs.verifies + vs.verifyFailures, vs.verifiesSubmitted);
    EXPECT_EQ(vs.verifyFailures, 0u);
    EXPECT_EQ(vs.verifyInFlight, 0u);
    EXPECT_EQ(vs.verifyRejects, 2 * per_kind);
    EXPECT_EQ(vs.unknownTenantRejects, per_kind);

    // Reconciliation: per-tenant ledgers plus the unknown bucket
    // account for the global counters exactly, on the merged view.
    EXPECT_EQ(tenantSum(merged.tenants,
                        [](const auto &t) { return t.verifies; }) +
                  merged.unknownTenantRejects,
              merged.verifies);
    EXPECT_EQ(tenantSum(merged.tenants,
                        [](const auto &t) { return t.verifyRejects; }) +
                  merged.unknownTenantRejects,
              merged.verifyRejects);
    EXPECT_EQ(tenantSum(merged.tenants,
                        [](const auto &t) { return t.signsCompleted; }),
              merged.signsCompleted);
    for (const auto &[id, ts] : merged.tenants) {
        EXPECT_EQ(ts.signsSubmitted, ts.signsCompleted + ts.signFailures)
            << id;
        EXPECT_EQ(ts.verifiesSubmitted, ts.verifies + ts.verifyFailures)
            << id;
        EXPECT_EQ(ts.pending, 0u) << id;
    }

    // The shared admission budget is fully returned after drain.
    EXPECT_EQ(sign_svc.admission()->pendingTotal(), 0u);
    EXPECT_EQ(merged.tenants.count("ghost"), 0u);
}

TEST(TrafficFabric, AdmissionControllerTypesEveryRefusal)
{
    StatsRegistry reg;
    auto &t0 = reg.tenant("t0");
    auto &t1 = reg.tenant("t1");

    {
        AdmissionLimits lim;
        lim.maxPendingSign = 1;
        AdmissionController ac(lim);
        ac.admit(Plane::Sign, t0, "t0");
        try {
            ac.admit(Plane::Sign, t1, "t1");
            FAIL() << "sign cap not enforced";
        } catch (const ServiceOverload &e) {
            EXPECT_EQ(e.kind(), ServiceOverload::Kind::SignCap);
        }
        // The verify plane is not bounded by the sign cap.
        ac.admit(Plane::Verify, t1, "t1");
        ac.release(Plane::Sign, t0);
        ac.release(Plane::Verify, t1);
        EXPECT_EQ(ac.pendingTotal(), 0u);
    }
    {
        AdmissionLimits lim;
        lim.maxPendingVerify = 1;
        AdmissionController ac(lim);
        ac.admit(Plane::Verify, t0, "t0");
        try {
            ac.admit(Plane::Verify, t1, "t1");
            FAIL() << "verify cap not enforced";
        } catch (const ServiceOverload &e) {
            EXPECT_EQ(e.kind(), ServiceOverload::Kind::VerifyCap);
        }
        ac.admit(Plane::Sign, t1, "t1"); // sign plane unaffected
        ac.release(Plane::Verify, t0);
        ac.release(Plane::Sign, t1);
    }
    {
        AdmissionLimits lim;
        lim.maxPendingTotal = 2;
        AdmissionController ac(lim);
        ac.admit(Plane::Sign, t0, "t0");
        ac.admit(Plane::Verify, t0, "t0");
        try {
            ac.admit(Plane::Sign, t1, "t1");
            FAIL() << "total cap not enforced";
        } catch (const ServiceOverload &e) {
            EXPECT_EQ(e.kind(), ServiceOverload::Kind::TotalCap);
        }
        ac.release(Plane::Sign, t0);
        ac.release(Plane::Verify, t0);
    }
    {
        AdmissionLimits lim;
        lim.maxPendingPerTenant = 1;
        AdmissionController ac(lim);
        ac.admit(Plane::Sign, t0, "t0");
        try {
            ac.admit(Plane::Verify, t0, "t0");
            FAIL() << "tenant quota not enforced";
        } catch (const ServiceOverload &e) {
            EXPECT_EQ(e.kind(), ServiceOverload::Kind::TenantQuota);
        }
        // A quota refusal must not leak budget on any ledger.
        EXPECT_EQ(ac.pendingTotal(), 1u);
        ac.admit(Plane::Verify, t1, "t1"); // other tenants unaffected
        ac.release(Plane::Sign, t0);
        ac.release(Plane::Verify, t1);
        EXPECT_EQ(t0.pending.load(), 0u);
        EXPECT_EQ(t1.pending.load(), 0u);
    }
}

TEST(TrafficFabric, ServicesRejectAgainstSharedBudget)
{
    // Pre-claim slots directly on the shared controller so the
    // service-level refusal paths trigger deterministically, without
    // racing the worker pools.
    Tenancy fx(2);
    ServiceConfig cfg;
    cfg.workers = 1;
    cfg.verifyWorkers = 1;
    cfg.maxPendingTotal = 1;
    SignService sign_svc(fx.store, cfg);
    VerifyService verify_svc(fx.store, cfg, sign_svc.contextCache(),
                             sign_svc.statsRegistry(),
                             sign_svc.admission());

    auto &ac = *sign_svc.admission();
    auto &blocker = sign_svc.statsRegistry()->tenant("t1");
    ac.admit(Plane::Sign, blocker, "t1"); // budget now exhausted

    ByteVec msg = patternMsg(16);
    ByteVec sig = fx.scheme.sign(msg, fx.keys.at("t0").sk);
    EXPECT_THROW(sign_svc.submitSign("t0", msg), ServiceOverload);
    EXPECT_THROW(verify_svc.submitVerify("t0", msg, sig),
                 ServiceOverload);
    EXPECT_EQ(sign_svc.stats().signsRejected, 1u);
    EXPECT_EQ(verify_svc.stats().verifiesRejected, 1u);
    // The synchronous verify path is admission-exempt: it runs on the
    // caller's thread and holds no queue slot.
    EXPECT_TRUE(verify_svc.verify("t0", msg, sig));

    ac.release(Plane::Sign, blocker, 1);
    EXPECT_TRUE(verify_svc.submitVerify("t0", msg, sig).get());
    verify_svc.drain();
    auto fut = sign_svc.submitSign("t0", msg);
    EXPECT_EQ(fut.get().size(), fx.p.sigBytes());
    sign_svc.drain();
    EXPECT_EQ(ac.pendingTotal(), 0u);
}

TEST(TrafficFabric, AsyncVerifyMatchesSyncOnTableIParams)
{
    // On every Table I parameter set, submitVerify() must return the
    // exact verdict the synchronous path computes — for valid
    // signatures, a bit flip, a truncated signature and a wrong
    // message alike.
    for (const auto &p : sphincs::Params::all()) {
        SphincsPlus scheme(p);
        KeyStore store;
        auto kp = scheme.keygenFromSeed(batchtest::fixedSeed(p, 0x2a));
        store.addKey(p.name, kp);

        ByteVec msg = patternMsg(48, 0x11);
        ByteVec sig = scheme.sign(msg, kp.sk);
        ByteVec flipped = sig;
        flipped[sig.size() / 2] ^= 0x04;
        ByteVec truncated(sig.begin(), sig.end() - 1);
        ByteVec wrong_msg = msg;
        wrong_msg[0] ^= 0x01;

        ServiceConfig cfg;
        cfg.verifyWorkers = 2;
        VerifyService svc(store, cfg);

        const std::vector<std::pair<ByteVec, ByteVec>> cases = {
            {msg, sig}, {msg, flipped}, {msg, truncated},
            {wrong_msg, sig}};
        std::vector<std::future<bool>> futs;
        std::vector<bool> sync_verdicts;
        for (const auto &[m, s] : cases) {
            sync_verdicts.push_back(svc.verify(p.name, m, s));
            futs.push_back(svc.submitVerify(p.name, ByteVec(m),
                                            ByteVec(s)));
        }
        for (size_t i = 0; i < cases.size(); ++i)
            EXPECT_EQ(futs[i].get(), sync_verdicts[i])
                << p.name << " case " << i;
        EXPECT_EQ(sync_verdicts,
                  (std::vector<bool>{true, false, false, false}))
            << p.name;
        svc.drain();
        auto st = svc.stats();
        EXPECT_EQ(st.verifies + st.verifyFailures,
                  st.verifiesSubmitted);
    }
}
