/**
 * @file
 * Serving-plane robustness: verify-after-sign behind
 * ServiceConfig::verifyAfterSign, per-request deadlines on both
 * planes, worker supervision, close() fast-fail and the
 * callback-error counter — all with the admission ledger identities
 * intact (every failure path releases its slot, so the shared budget
 * always drains back to zero).
 */

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <vector>

#include "../batch/batch_test_util.hh"
#include "common/errors.hh"
#include "common/fault.hh"
#include "hash/sha256xN.hh"
#include "service/sign_service.hh"
#include "service/verify_service.hh"
#include "sphincs/sphincs.hh"

using namespace herosign;
using batchtest::fixedSeed;
using batchtest::miniParams;
using batchtest::patternMsg;
using service::KeyStore;
using service::ServiceConfig;
using service::ServiceStats;
using service::SignService;
using service::VerifyService;
using sphincs::SphincsPlus;

namespace
{

struct ServiceRobustnessTest : ::testing::Test
{
    sphincs::Params p = miniParams();
    SphincsPlus scheme{p};
    KeyStore store;
    sphincs::KeyPair kp = scheme.keygenFromSeed(fixedSeed(p));

    void SetUp() override
    {
        FaultInjector::instance().disarm();
        sha256LanesClearQuarantines();
        store.addKey("t0", kp);
    }
    void TearDown() override
    {
        FaultInjector::instance().disarm();
        sha256LanesClearQuarantines();
    }

    ServiceConfig
    smallConfig(bool guard = false) const
    {
        ServiceConfig cfg;
        cfg.workers = 1;
        cfg.shards = 1;
        cfg.verifyWorkers = 1;
        cfg.verifyShards = 1;
        cfg.verifyAfterSign = guard;
        return cfg;
    }
};

} // namespace

TEST_F(ServiceRobustnessTest, GuardRecoversAndKeepsLedgerClean)
{
    if (laneDispatch().backend == LaneBackend::Scalar)
        GTEST_SKIP() << "needs active SIMD dispatch";

    FaultPlan plan;
    plan.rule(FaultPoint::SimdLane).active = true;
    FaultInjector::instance().arm(plan);

    SignService svc(store, smallConfig(true));
    std::vector<std::future<ByteVec>> futs;
    for (unsigned i = 0; i < 4; ++i)
        futs.push_back(svc.submitSign("t0", patternMsg(40, i)));
    std::vector<ByteVec> sigs;
    for (auto &f : futs)
        sigs.push_back(f.get());
    svc.drain();
    FaultInjector::instance().disarm();

    for (unsigned i = 0; i < 4; ++i)
        EXPECT_TRUE(scheme.verify(patternMsg(40, i), sigs[i], kp.pk));
    const ServiceStats st = svc.stats();
    EXPECT_EQ(st.signFailures, 0u);
    EXPECT_GE(st.guardMismatches, 1u);
    EXPECT_GE(st.laneQuarantines, 1u);
    EXPECT_EQ(svc.admission()->pendingTotal(), 0u);
}

TEST_F(ServiceRobustnessTest, DeadlinesDropOnBothPlanes)
{
    SignService sign_svc(store, smallConfig());
    const auto past =
        std::chrono::steady_clock::now() - std::chrono::seconds(1);

    batch::SignRequest late;
    late.message = patternMsg(40, 1);
    late.deadline = past;
    auto late_fut = sign_svc.submit("t0", std::move(late));
    auto ok_fut = sign_svc.submitSign("t0", patternMsg(40, 2));
    EXPECT_THROW(late_fut.get(), DeadlineExceeded);
    const ByteVec ok_sig = ok_fut.get();
    EXPECT_TRUE(scheme.verify(patternMsg(40, 2), ok_sig, kp.pk));
    sign_svc.drain();
    const ServiceStats sst = sign_svc.stats();
    EXPECT_EQ(sst.signExpired, 1u);
    EXPECT_EQ(sst.signFailures, 1u);
    // The dropped job returned its admission slot.
    EXPECT_EQ(sign_svc.admission()->pendingTotal(), 0u);

    VerifyService verify_svc(store, smallConfig());
    batch::VerifyRequest vlate;
    vlate.message = patternMsg(40, 2);
    vlate.signature = ok_sig;
    vlate.deadline = past;
    auto vlate_fut = verify_svc.submit("t0", std::move(vlate));
    auto vok_fut =
        verify_svc.submitVerify("t0", patternMsg(40, 2), ok_sig);
    EXPECT_THROW(vlate_fut.get(), DeadlineExceeded);
    EXPECT_TRUE(vok_fut.get());
    verify_svc.drain();
    const ServiceStats vst = verify_svc.stats();
    EXPECT_EQ(vst.verifyExpired, 1u);
    EXPECT_EQ(vst.verifyFailures, 1u);
    EXPECT_EQ(verify_svc.admission()->pendingTotal(), 0u);
}

TEST_F(ServiceRobustnessTest, ThrowingCallbackIsCountedNotFatal)
{
    SignService svc(store, smallConfig());
    batch::SignRequest req;
    req.message = patternMsg(40, 3);
    req.callback = [](uint64_t, const ByteVec &) {
        throw std::runtime_error("user callback bug");
    };
    auto fut = svc.submit("t0", std::move(req));
    EXPECT_TRUE(scheme.verify(patternMsg(40, 3), fut.get(), kp.pk));
    svc.drain();
    const ServiceStats st = svc.stats();
    EXPECT_EQ(st.signFailures, 0u);
    EXPECT_EQ(st.callbackErrors, 1u);
}

TEST_F(ServiceRobustnessTest, WorkersSurviveEscapedExceptions)
{
    FaultPlan plan;
    FaultRule &rule = plan.rule(FaultPoint::WorkerThrow);
    rule.active = true;
    rule.max = 1;
    FaultInjector::instance().arm(plan);

    SignService svc(store, smallConfig());
    EXPECT_THROW(svc.submitSign("t0", patternMsg(40, 0)).get(),
                 FaultInjected);
    // The supervised worker is still alive and signing.
    EXPECT_TRUE(scheme.verify(patternMsg(40, 1),
                              svc.submitSign("t0", patternMsg(40, 1))
                                  .get(),
                              kp.pk));
    svc.drain();
    FaultInjector::instance().disarm();
    const ServiceStats st = svc.stats();
    EXPECT_EQ(st.workerRestarts, 1u);
    EXPECT_EQ(st.signFailures, 1u);
    EXPECT_EQ(svc.admission()->pendingTotal(), 0u);
    EXPECT_EQ(svc.workers(), 1u);
}

TEST_F(ServiceRobustnessTest, CloseFailsQueuedWorkOnBothPlanes)
{
    auto sign_svc =
        std::make_unique<SignService>(store, smallConfig());
    std::vector<std::future<ByteVec>> futs;
    for (unsigned i = 0; i < 12; ++i)
        futs.push_back(sign_svc->submitSign("t0", patternMsg(40, i)));
    sign_svc->close();
    unsigned signed_ok = 0, shut_down = 0;
    for (unsigned i = 0; i < 12; ++i) {
        try {
            EXPECT_TRUE(scheme.verify(patternMsg(40, i),
                                      futs[i].get(), kp.pk));
            ++signed_ok;
        } catch (const ServiceShutdown &) {
            ++shut_down;
        }
    }
    EXPECT_EQ(signed_ok + shut_down, 12u);
    EXPECT_EQ(sign_svc->pending(), 0u);
    // Every slot came back, whether the job signed or was failed.
    EXPECT_EQ(sign_svc->admission()->pendingTotal(), 0u);
    EXPECT_THROW(sign_svc->submitSign("t0", patternMsg(40, 99)),
                 ServiceShutdown);
    sign_svc.reset();

    // Verify plane: sign a valid pair first, then close over a
    // backlog of async verifies.
    const ByteVec msg = patternMsg(40, 7);
    const ByteVec sig = scheme.sign(msg, kp.sk);
    auto verify_svc =
        std::make_unique<VerifyService>(store, smallConfig());
    std::vector<std::future<bool>> vfuts;
    for (unsigned i = 0; i < 12; ++i)
        vfuts.push_back(verify_svc->submitVerify("t0", msg, sig));
    verify_svc->close();
    unsigned verdicts = 0, vshut = 0;
    for (auto &f : vfuts) {
        try {
            EXPECT_TRUE(f.get());
            ++verdicts;
        } catch (const ServiceShutdown &) {
            ++vshut;
        }
    }
    EXPECT_EQ(verdicts + vshut, 12u);
    EXPECT_EQ(verify_svc->pending(), 0u);
    EXPECT_EQ(verify_svc->admission()->pendingTotal(), 0u);
    EXPECT_THROW(verify_svc->submitVerify("t0", msg, sig),
                 ServiceShutdown);
}
