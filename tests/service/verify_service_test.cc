/**
 * @file
 * VerifyService: batched multi-tenant verification agrees with the
 * scalar verifier on valid, corrupted and unknown-tenant traffic, and
 * the shared stats registry unifies sign + verify counters.
 */

#include <gtest/gtest.h>

#include "../batch/batch_test_util.hh"
#include "service/sign_service.hh"
#include "service/verify_service.hh"
#include "sphincs/sphincs.hh"

using namespace herosign;
using batchtest::miniParams;
using batchtest::patternMsg;
using service::KeyStore;
using service::VerifyRequest;
using service::VerifyService;
using sphincs::SphincsPlus;

namespace
{

struct Fixture
{
    sphincs::Params p = miniParams();
    SphincsPlus scheme{p};
    KeyStore store;
    std::map<std::string, sphincs::KeyPair> keys;

    explicit Fixture(unsigned tenants)
    {
        for (unsigned i = 0; i < tenants; ++i) {
            const std::string id = std::string("t").append(std::to_string(i));
            auto kp = scheme.keygenFromSeed(batchtest::fixedSeed(
                p, static_cast<uint8_t>(7 * i + 2)));
            keys.emplace(id, kp);
            store.addKey(id, kp);
        }
    }
};

} // namespace

TEST(VerifyService, MixedTenantBatchMatchesScalar)
{
    Fixture fx(3);
    VerifyService svc(fx.store);

    // Valid signatures from all tenants, plus corruption: a bit flip,
    // a cross-tenant swap, a truncated signature, a wrong message.
    std::vector<ByteVec> msgs;
    std::vector<ByteVec> sigs;
    std::vector<std::string> ids;
    for (unsigned i = 0; i < 9; ++i) {
        const std::string id = std::string("t").append(std::to_string(i % 3));
        ids.push_back(id);
        msgs.push_back(patternMsg(32, static_cast<uint8_t>(i)));
        sigs.push_back(fx.scheme.sign(msgs.back(),
                                      fx.keys.at(id).sk));
    }
    sigs[1][17] ^= 0x40;                   // bit flip -> reject
    ids[4] = "t0";                          // signed by t1 -> reject
    // pop_back rather than resize(size()-1): GCC's -O2+ASan
    // stringop-overflow analysis flags the (dead) grow path of a
    // shrinking resize it cannot prove shrinks.
    sigs[5].pop_back();                     // truncated -> reject
    msgs[7][0] ^= 0x01;                     // message mismatch -> reject

    std::vector<VerifyRequest> reqs;
    for (size_t i = 0; i < msgs.size(); ++i)
        reqs.push_back(
            VerifyRequest{ids[i], ByteSpan(msgs[i]), ByteSpan(sigs[i])});
    auto got = svc.verifyBatch(reqs);

    ASSERT_EQ(got.size(), reqs.size());
    unsigned rejects = 0;
    for (size_t i = 0; i < reqs.size(); ++i) {
        const bool ref = fx.scheme.verify(msgs[i], sigs[i],
                                          fx.keys.at(ids[i]).pk);
        EXPECT_EQ(got[i] != 0, ref) << "request " << i;
        if (!ref)
            ++rejects;
    }
    EXPECT_EQ(rejects, 4u);

    auto st = svc.stats();
    EXPECT_EQ(st.verifies, 9u);
    EXPECT_EQ(st.verifyRejects, 4u);
}

TEST(VerifyService, UnknownTenantRejectsWithoutThrowing)
{
    Fixture fx(1);
    VerifyService svc(fx.store);

    ByteVec msg = patternMsg(16);
    ByteVec sig = fx.scheme.sign(msg, fx.keys.at("t0").sk);
    EXPECT_TRUE(svc.verify("t0", msg, sig));
    EXPECT_FALSE(svc.verify("ghost", msg, sig));

    auto st = svc.stats();
    EXPECT_EQ(st.verifies, 2u);
    EXPECT_EQ(st.verifyRejects, 1u);
    EXPECT_EQ(st.unknownTenantRejects, 1u);
    // Unknown ids only hit the global counters: per-tenant registry
    // entries for attacker-supplied ids would grow without bound.
    EXPECT_EQ(st.tenants.count("ghost"), 0u);
    EXPECT_EQ(st.tenants.at("t0").verifies, 1u);

    // Reconciliation identities: the per-tenant ledgers plus the
    // unknown-tenant bucket account for every global count exactly.
    uint64_t tenant_verifies = 0, tenant_rejects = 0;
    for (const auto &[id, ts] : st.tenants) {
        tenant_verifies += ts.verifies;
        tenant_rejects += ts.verifyRejects;
    }
    EXPECT_EQ(tenant_verifies + st.unknownTenantRejects, st.verifies);
    EXPECT_EQ(tenant_rejects + st.unknownTenantRejects,
              st.verifyRejects);
}

TEST(VerifyService, SingleTenantConvenienceOverload)
{
    Fixture fx(1);
    VerifyService svc(fx.store);

    std::vector<ByteVec> msgs, sigs;
    for (unsigned i = 0; i < 5; ++i) {
        msgs.push_back(patternMsg(24, i));
        sigs.push_back(fx.scheme.sign(msgs.back(), fx.keys.at("t0").sk));
    }
    sigs[2][3] ^= 0x80;
    auto ok = svc.verifyBatch("t0", msgs, sigs);
    EXPECT_EQ(ok, (std::vector<uint8_t>{1, 1, 0, 1, 1}));

    EXPECT_THROW(svc.verifyBatch("t0", msgs,
                                 std::vector<ByteVec>(msgs.size() - 1)),
                 std::invalid_argument);
}

TEST(VerifyService, SharedCacheAndStatsWithSignService)
{
    Fixture fx(2);
    service::ServiceConfig cfg;
    cfg.workers = 2;
    service::SignService sign_svc(fx.store, cfg);
    VerifyService verify_svc(fx.store, cfg, sign_svc.contextCache(),
                             sign_svc.statsRegistry(),
                             sign_svc.admission());

    ByteVec msg = patternMsg(20);
    ByteVec sig = sign_svc.submitSign("t0", msg).get();
    EXPECT_TRUE(verify_svc.verify("t0", msg, sig));
    sign_svc.drain();

    // One warm context serves both directions: the verify was a hit.
    auto cache = sign_svc.contextCache()->stats();
    EXPECT_EQ(cache.misses, 1u);
    EXPECT_GE(cache.hits, 1u);

    // The unified per-tenant view shows both traffic directions.
    auto st = sign_svc.stats();
    const auto &t0 = st.tenants.at("t0");
    EXPECT_EQ(t0.signsCompleted, 1u);
    EXPECT_EQ(t0.verifies, 1u);
    EXPECT_EQ(t0.verifyRejects, 0u);
    auto vst = verify_svc.stats();
    EXPECT_EQ(vst.tenants.at("t0").signsCompleted, 1u);
}
