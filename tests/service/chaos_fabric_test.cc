/**
 * @file
 * Chaos fabric: mixed sign/verify traffic through a shared-budget
 * service pair while a multi-point fault plan is live (lane
 * corruption, worker-loop throws, queue stalls, throwing callbacks,
 * hash-compress bit flips). The suite asserts *invariants*, not
 * outcomes: every future settles with a value or a typed error, a
 * corrupt signature never escapes the verify-after-sign guard, the
 * per-tenant ledgers reconcile and the admission budget drains back to
 * idle. Runs under TSan in CI; the fault-matrix CI mode also starts it
 * with HEROSIGN_FAULT_PLAN already armed, which it detects and keeps.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "../batch/batch_test_util.hh"
#include "common/errors.hh"
#include "common/fault.hh"
#include "hash/sha256xN.hh"
#include "service/admission.hh"
#include "service/sign_service.hh"
#include "service/verify_service.hh"
#include "sphincs/sphincs.hh"

using namespace herosign;
using batchtest::miniParams;
using batchtest::patternMsg;
using service::KeyStore;
using service::ServiceConfig;
using service::ServiceOverload;
using service::ServiceStats;
using service::SignService;
using service::VerifyService;
using sphincs::SphincsPlus;

namespace
{

constexpr unsigned kTenants = 3;
constexpr unsigned kProducers = 2;
constexpr unsigned kIters = 24;

/// The canned plan used when the environment did not arm one: every
/// point lit, the destructive ones bounded so the fabric still makes
/// forward progress.
constexpr const char *kChaosPlan =
    "seed=11;simd-lane:every=7;worker-throw:every=23:max=4;"
    "queue-stall:every=11:ms=1;callback-throw:every=3;"
    "hash-compress:every=1009:max=6";

struct SignOutcome
{
    std::string tenant;
    uint8_t salt;
    ByteVec sig;
};

} // namespace

TEST(ChaosFabric, MixedTrafficUnderFaultsKeepsInvariants)
{
    sphincs::Params p = miniParams();
    SphincsPlus scheme(p);
    KeyStore store;
    std::map<std::string, sphincs::KeyPair> keys;
    std::map<std::string, std::pair<ByteVec, ByteVec>> good, bad;
    for (unsigned i = 0; i < kTenants; ++i) {
        const std::string id =
            std::string("t").append(std::to_string(i));
        auto kp = scheme.keygenFromSeed(
            batchtest::fixedSeed(p, static_cast<uint8_t>(5 * i + 3)));
        keys.emplace(id, kp);
        store.addKey(id, kp);
        // Verify traffic is pre-signed while everything is still
        // clean, so its expected verdicts are known-good inputs.
        ByteVec msg = patternMsg(32, static_cast<uint8_t>(0x40 + i));
        ByteVec sig = scheme.sign(msg, kp.sk);
        good[id] = {msg, sig};
        ByteVec tampered = sig;
        tampered[11] ^= 0x20;
        bad[id] = {msg, tampered};
    }

    sha256LanesClearQuarantines();
    // The fault-matrix CI mode launches this binary with a plan in
    // HEROSIGN_FAULT_PLAN; only arm the canned one when nothing is.
    const bool env_armed = FaultInjector::armed();
    if (!env_armed)
        FaultInjector::instance().arm(FaultPlan::parse(kChaosPlan));

    std::atomic<uint64_t> settled_sigs{0}, typed_errors{0},
        untyped_errors{0}, verdicts{0}, overloads{0};
    std::mutex outcomes_m;
    std::vector<SignOutcome> outcomes;
    ServiceStats ss, vs, merged;
    uint64_t pending_after = 0;
    unsigned sign_workers = 0, verify_workers = 0;

    {
        ServiceConfig cfg;
        cfg.workers = 2;
        cfg.shards = 2;
        cfg.verifyWorkers = 2;
        cfg.verifyShards = 2;
        cfg.verifyAfterSign = true;
        SignService sign_svc(store, cfg);
        VerifyService verify_svc(
            store, cfg, sign_svc.contextCache(),
            sign_svc.statsRegistry(), sign_svc.admission());

        std::vector<std::thread> producers;
        for (unsigned t = 0; t < kProducers; ++t) {
            producers.emplace_back([&, t] {
                std::vector<std::pair<SignOutcome,
                                      std::future<ByteVec>>> sfuts;
                std::vector<std::future<bool>> vfuts;
                for (unsigned i = 0; i < kIters; ++i) {
                    const std::string id = std::string("t").append(
                        std::to_string((t + i) % kTenants));
                    const auto salt =
                        static_cast<uint8_t>(t * kIters + i);
                    try {
                        switch (i % 4) {
                        case 0: {
                            sfuts.emplace_back(
                                SignOutcome{id, salt, {}},
                                sign_svc.submitSign(
                                    id, patternMsg(32, salt)));
                            break;
                        }
                        case 1:
                            vfuts.push_back(verify_svc.submitVerify(
                                id, good[id].first, good[id].second));
                            break;
                        case 2:
                            vfuts.push_back(verify_svc.submitVerify(
                                id, bad[id].first, bad[id].second));
                            break;
                        default: {
                            // Signed with a callback (feeding the
                            // callback-throw point) and, on the last
                            // lap, an already-expired deadline.
                            batch::SignRequest req;
                            req.message = patternMsg(32, salt);
                            req.callback = [](uint64_t,
                                              const ByteVec &) {};
                            if (i + 4 >= kIters)
                                req.deadline =
                                    std::chrono::steady_clock::now() -
                                    std::chrono::seconds(1);
                            sfuts.emplace_back(
                                SignOutcome{id, salt, {}},
                                sign_svc.submit(id, std::move(req)));
                            break;
                        }
                        }
                    } catch (const ServiceOverload &) {
                        overloads.fetch_add(1);
                    }
                }
                for (auto &[outcome, fut] : sfuts) {
                    try {
                        outcome.sig = fut.get();
                        settled_sigs.fetch_add(1);
                        const std::lock_guard lock(outcomes_m);
                        outcomes.push_back(std::move(outcome));
                    } catch (const FaultInjected &) {
                        typed_errors.fetch_add(1);
                    } catch (const SigningFault &) {
                        typed_errors.fetch_add(1);
                    } catch (const DeadlineExceeded &) {
                        typed_errors.fetch_add(1);
                    } catch (...) {
                        untyped_errors.fetch_add(1);
                    }
                }
                for (auto &fut : vfuts) {
                    // Verdicts may be wrong under injected hash
                    // corruption — settling is the invariant here.
                    try {
                        (void)fut.get();
                        verdicts.fetch_add(1);
                    } catch (const FaultInjected &) {
                        typed_errors.fetch_add(1);
                    } catch (...) {
                        untyped_errors.fetch_add(1);
                    }
                }
            });
        }
        for (auto &th : producers)
            th.join();
        sign_svc.drain();
        verify_svc.drain();

        ss = sign_svc.stats();
        vs = verify_svc.stats();
        merged = ss.mergedWith(vs);
        pending_after = sign_svc.admission()->pendingTotal();
        sign_workers = sign_svc.workers();
        verify_workers = verify_svc.workers();
    }

    // Faults off before the pristine re-verification below; the
    // services are already gone, so nothing races the injector.
    FaultInjector::instance().disarm();
    sha256LanesClearQuarantines();

    // Every submitted future settled, and only with typed errors.
    const uint64_t sign_subs = ss.signsSubmitted;
    const uint64_t verify_subs = vs.verifiesSubmitted;
    EXPECT_EQ(sign_subs + verify_subs + overloads.load(),
              static_cast<uint64_t>(kProducers) * kIters);
    EXPECT_EQ(settled_sigs.load() + verdicts.load() +
                  typed_errors.load(),
              sign_subs + verify_subs);
    EXPECT_EQ(untyped_errors.load(), 0u);

    // Zero corrupt escapes: every signature that was released
    // verifies pristinely now that the faults are gone.
    for (const SignOutcome &o : outcomes)
        EXPECT_TRUE(scheme.verify(patternMsg(32, o.salt), o.sig,
                                  keys.at(o.tenant).pk))
            << "corrupt signature escaped for " << o.tenant;

    // Ledger identities hold on both planes and per tenant.
    EXPECT_EQ(ss.inFlight, 0u);
    EXPECT_EQ(vs.verifyInFlight, 0u);
    EXPECT_EQ(ss.signsCompleted, sign_subs); // includes failed jobs
    EXPECT_EQ(vs.verifies + vs.verifyFailures, verify_subs);
    for (const auto &[id, ts] : merged.tenants) {
        EXPECT_EQ(ts.signsSubmitted,
                  ts.signsCompleted + ts.signFailures)
            << id;
        EXPECT_EQ(ts.verifiesSubmitted, ts.verifies + ts.verifyFailures)
            << id;
        EXPECT_EQ(ts.pending, 0u) << id;
    }

    // The shared admission budget drained back to idle, and no worker
    // was lost to an escaped exception.
    EXPECT_EQ(pending_after, 0u);
    EXPECT_EQ(sign_workers, 2u);
    EXPECT_EQ(verify_workers, 2u);

    // The canned plan injected real chaos (only provable when this
    // run armed it itself — an env plan may target other points).
    if (!env_armed) {
        const FaultInjector &inj = FaultInjector::instance();
        EXPECT_GT(inj.hits(FaultPoint::WorkerThrow), 0u);
        EXPECT_GT(inj.hits(FaultPoint::HashCompress), 0u);
    }
}
