/**
 * @file
 * Snapshot-consistency suite for the stats plane. A stats() snapshot
 * is taken under the same lock that serializes admission sequencing
 * and completion accounting, so its gauges must satisfy exact ledger
 * identities even while producer threads are mid-burst:
 *
 *   inFlight   == signsSubmitted - signsCompleted   (exactly)
 *   queueDepth <= inFlight                           (always)
 *
 * and the same pair on the verify plane. This suite hammers those
 * identities from a concurrent sampler (a TSan target), then checks
 * the mergedWith() algebra on the new histogram-carrying fields:
 * merged stage and per-tenant latency histograms equal the pairwise
 * merge (buckets summed, min/max folded).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include "../batch/batch_test_util.hh"
#include "service/sign_service.hh"
#include "service/verify_service.hh"

using namespace herosign;
using batchtest::miniParams;
using batchtest::patternMsg;
using service::KeyStore;
using service::ServiceConfig;
using service::ServiceStats;
using service::SignService;
using service::StatsRegistry;
using service::TenantStats;
using service::VerifyService;

namespace
{

struct Fixture
{
    sphincs::Params p = miniParams();
    sphincs::SphincsPlus scheme{p};
    KeyStore store;
    ByteVec msg = patternMsg(24, 0x33);
    ByteVec sig;

    Fixture()
    {
        auto kp = scheme.keygenFromSeed(batchtest::fixedSeed(p, 3));
        store.addKey("t0", kp);
        sig = scheme.sign(msg, kp.sk);
    }
};

telemetry::HistogramSnapshot
histOf(std::initializer_list<uint64_t> values)
{
    telemetry::LatencyHistogram h(1);
    for (uint64_t v : values)
        h.record(v);
    return h.snapshot();
}

} // namespace

TEST(StatsConsistency, SignGaugesHoldExactIdentitiesUnderLoad)
{
    Fixture fx;
    ServiceConfig cfg;
    cfg.workers = 2;
    cfg.shards = 2;
    SignService svc(fx.store, cfg);

    std::atomic<bool> stop{false};
    std::thread sampler([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            const ServiceStats st = svc.stats();
            // Exact, not approximate: the snapshot freezes the
            // submitted/completed pair and the queue under one lock.
            ASSERT_EQ(st.inFlight,
                      st.signsSubmitted - st.signsCompleted);
            ASSERT_LE(st.queueDepth, st.inFlight);
            ASSERT_LE(st.signsCompleted, st.signsSubmitted);
        }
    });

    std::vector<std::thread> producers;
    for (unsigned t = 0; t < 3; ++t) {
        producers.emplace_back([&, t] {
            std::vector<std::future<ByteVec>> futs;
            for (unsigned i = 0; i < 16; ++i)
                futs.push_back(svc.submitSign(
                    "t0",
                    patternMsg(16, static_cast<uint8_t>(t * 16 + i))));
            for (auto &f : futs)
                f.get();
        });
    }
    for (auto &p : producers)
        p.join();
    svc.drain();
    stop.store(true, std::memory_order_relaxed);
    sampler.join();

    const ServiceStats st = svc.stats();
    EXPECT_EQ(st.signsSubmitted, 48u);
    EXPECT_EQ(st.signsCompleted, 48u);
    EXPECT_EQ(st.inFlight, 0u);
    EXPECT_EQ(st.queueDepth, 0u);
}

TEST(StatsConsistency, VerifyGaugesHoldExactIdentitiesUnderLoad)
{
    Fixture fx;
    ServiceConfig cfg;
    cfg.verifyWorkers = 2;
    cfg.verifyShards = 2;
    VerifyService svc(fx.store, cfg);

    std::atomic<bool> stop{false};
    std::thread sampler([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            const ServiceStats st = svc.stats();
            // The submitted/completed pair and the queue length are
            // frozen under one lock, so the gauge identities are
            // exact; verdict counters (sampled relaxed, outside the
            // lock) can only be bounded by the later submitted read.
            ASSERT_LE(st.verifyQueueDepth, st.verifyInFlight);
            ASSERT_LE(st.verifyInFlight, st.verifiesSubmitted);
            ASSERT_GE(st.verifiesSubmitted,
                      st.verifies + st.verifyFailures);
        }
    });

    std::vector<std::thread> producers;
    for (unsigned t = 0; t < 3; ++t) {
        producers.emplace_back([&] {
            std::vector<std::future<bool>> futs;
            for (unsigned i = 0; i < 16; ++i)
                futs.push_back(
                    svc.submitVerify("t0", fx.msg, fx.sig));
            for (auto &f : futs)
                EXPECT_TRUE(f.get());
        });
    }
    for (auto &p : producers)
        p.join();
    svc.drain();
    stop.store(true, std::memory_order_relaxed);
    sampler.join();

    const ServiceStats st = svc.stats();
    EXPECT_EQ(st.verifiesSubmitted, 48u);
    EXPECT_EQ(st.verifies, 48u);
    EXPECT_EQ(st.verifyInFlight, 0u);
    EXPECT_EQ(st.verifyQueueDepth, 0u);
}

TEST(StatsConsistency, MergedWithSumsStageHistograms)
{
    ServiceStats a;
    a.stages["sign_crypto"] = histOf({100, 200, 300});
    a.stages["sign_end_to_end"] = histOf({1000});

    ServiceStats b;
    b.stages["verify_crypto"] = histOf({50, 60});
    b.stages["sign_crypto"] = histOf({400, 50});

    const ServiceStats m = a.mergedWith(b);

    // Disjoint keys pass through untouched.
    ASSERT_TRUE(m.stages.count("sign_end_to_end"));
    EXPECT_EQ(m.stages.at("sign_end_to_end").count, 1u);
    ASSERT_TRUE(m.stages.count("verify_crypto"));
    EXPECT_EQ(m.stages.at("verify_crypto").count, 2u);
    EXPECT_EQ(m.stages.at("verify_crypto").min, 50u);
    EXPECT_EQ(m.stages.at("verify_crypto").max, 60u);

    // Overlapping key: buckets summed, extremes folded.
    const auto &crypto = m.stages.at("sign_crypto");
    const auto expect = histOf({100, 200, 300, 400, 50});
    EXPECT_EQ(crypto.count, expect.count);
    EXPECT_EQ(crypto.min, expect.min);
    EXPECT_EQ(crypto.max, expect.max);
    EXPECT_EQ(crypto.sum, expect.sum);
    EXPECT_EQ(crypto.counts, expect.counts);

    // Merge is symmetric on the histogram fields.
    const ServiceStats m2 = b.mergedWith(a);
    EXPECT_EQ(m2.stages.at("sign_crypto").counts, crypto.counts);
    EXPECT_EQ(m2.stages.at("sign_crypto").min, crypto.min);
    EXPECT_EQ(m2.stages.at("sign_crypto").max, crypto.max);
}

TEST(StatsConsistency, MergedWithFoldsPerTenantLatency)
{
    // The sign-plane snapshot carries signLatency only, the verify-
    // plane snapshot verifyLatency only (plane masks keep them
    // disjoint); the merge must keep both without double counting.
    ServiceStats signSide;
    TenantStats &ts = signSide.tenants["t0"];
    ts.signsCompleted = 3;
    ts.signLatency = histOf({1000, 2000, 3000});

    ServiceStats verifySide;
    TenantStats &tv = verifySide.tenants["t0"];
    tv.verifies = 2;
    tv.verifyLatency = histOf({500, 700});
    verifySide.tenants["t1"].verifyLatency = histOf({900});

    const ServiceStats m = signSide.mergedWith(verifySide);
    ASSERT_TRUE(m.tenants.count("t0"));
    const TenantStats &t0 = m.tenants.at("t0");
    EXPECT_EQ(t0.signLatency.count, 3u);
    EXPECT_EQ(t0.signLatency.min, 1000u);
    EXPECT_EQ(t0.signLatency.max, 3000u);
    EXPECT_EQ(t0.verifyLatency.count, 2u);
    EXPECT_EQ(t0.verifyLatency.min, 500u);
    EXPECT_EQ(t0.verifyLatency.max, 700u);
    // Tenant present on one side only still carries its histogram.
    ASSERT_TRUE(m.tenants.count("t1"));
    EXPECT_EQ(m.tenants.at("t1").verifyLatency.count, 1u);
    EXPECT_EQ(m.tenants.at("t1").signLatency.count, 0u);
}

TEST(StatsConsistency, SharedRegistryFabricMergeMatchesPlaneSums)
{
    if (!telemetry::compiledIn())
        GTEST_SKIP() << "telemetry compiled out";
    Fixture fx;
    ServiceConfig cfg;
    cfg.workers = 2;
    cfg.shards = 2;
    cfg.verifyWorkers = 2;
    cfg.verifyShards = 2;
    SignService sign_svc(fx.store, cfg);
    VerifyService verify_svc(fx.store, cfg, sign_svc.contextCache(),
                             sign_svc.statsRegistry(),
                             sign_svc.admission());

    std::vector<std::future<ByteVec>> sfuts;
    std::vector<std::future<bool>> vfuts;
    for (unsigned i = 0; i < 8; ++i) {
        sfuts.push_back(sign_svc.submitSign(
            "t0", patternMsg(16, static_cast<uint8_t>(i))));
        vfuts.push_back(verify_svc.submitVerify("t0", fx.msg, fx.sig));
    }
    for (auto &f : sfuts)
        f.get();
    for (auto &f : vfuts)
        EXPECT_TRUE(f.get());
    sign_svc.drain();
    verify_svc.drain();

    const ServiceStats ss = sign_svc.stats();
    const ServiceStats vs = verify_svc.stats();
    // Plane masks keep each side's histograms on its own keys, so the
    // merged snapshot's counts are exactly the per-plane counts (no
    // double counting through the shared registry).
    EXPECT_EQ(ss.tenants.at("t0").verifyLatency.count, 0u);
    EXPECT_EQ(vs.tenants.at("t0").signLatency.count, 0u);
    EXPECT_EQ(ss.stages.count("verify_end_to_end"), 0u);
    EXPECT_EQ(vs.stages.count("sign_end_to_end"), 0u);

    const ServiceStats m = ss.mergedWith(vs);
    EXPECT_EQ(m.tenants.at("t0").signLatency.count,
              ss.tenants.at("t0").signLatency.count);
    EXPECT_EQ(m.tenants.at("t0").verifyLatency.count,
              vs.tenants.at("t0").verifyLatency.count);
    EXPECT_EQ(m.stages.at("sign_end_to_end").count, 8u);
    EXPECT_EQ(m.stages.at("verify_end_to_end").count, 8u);
}
