/**
 * @file
 * SignService: multi-tenant routing correctness (byte-identical to
 * the scalar per-key path), the no-per-sign-Context-construction
 * guarantee, admission control, and the unified stats surface.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <mutex>

#include "../batch/batch_test_util.hh"
#include "common/hex.hh"
#include "service/sign_service.hh"
#include "sphincs/sphincs.hh"

using namespace herosign;
using batchtest::miniParams;
using batchtest::patternMsg;
using service::KeyStore;
using service::ServiceConfig;
using service::ServiceOverload;
using service::SignService;
using sphincs::Context;
using sphincs::SphincsPlus;

namespace
{

struct Tenancy
{
    KeyStore store;
    std::map<std::string, sphincs::KeyPair> keys;
};

void
addTenants(Tenancy &t, const sphincs::Params &p, unsigned count)
{
    SphincsPlus scheme(p);
    for (unsigned i = 0; i < count; ++i) {
        const std::string id = std::string("tenant-").append(std::to_string(i));
        auto kp = scheme.keygenFromSeed(
            batchtest::fixedSeed(p, static_cast<uint8_t>(3 * i + 1)));
        t.keys.emplace(id, kp);
        t.store.addKey(id, kp);
    }
}

} // namespace

TEST(SignService, RoutesTenantsByteIdentically)
{
    const auto p = miniParams();
    Tenancy t;
    addTenants(t, p, 3);

    ServiceConfig cfg;
    cfg.workers = 3;
    cfg.shards = 2;
    SignService svc(t.store, cfg);

    // Interleave tenants so routing actually multiplexes.
    std::vector<std::pair<std::string, ByteVec>> jobs;
    std::vector<std::future<ByteVec>> futs;
    for (unsigned i = 0; i < 12; ++i) {
        const std::string id = std::string("tenant-").append(std::to_string(i % 3));
        ByteVec msg = patternMsg(40, static_cast<uint8_t>(i));
        futs.push_back(svc.submitSign(id, msg));
        jobs.emplace_back(id, std::move(msg));
    }

    SphincsPlus scheme(p);
    for (size_t i = 0; i < jobs.size(); ++i) {
        ByteVec got = futs[i].get();
        ByteVec ref =
            scheme.sign(jobs[i].second, t.keys.at(jobs[i].first).sk);
        EXPECT_EQ(hexEncode(got), hexEncode(ref)) << "job " << i;
    }
    svc.drain();

    auto st = svc.stats();
    EXPECT_EQ(st.signsSubmitted, 12u);
    EXPECT_EQ(st.signsCompleted, 12u);
    EXPECT_EQ(st.signFailures, 0u);
    EXPECT_EQ(st.inFlight, 0u);
    EXPECT_EQ(st.queueDepth, 0u);
    EXPECT_GT(st.sigsPerSec, 0.0);
    ASSERT_EQ(st.tenants.size(), 3u);
    for (const auto &[id, ts] : st.tenants) {
        EXPECT_EQ(ts.signsSubmitted, 4u) << id;
        EXPECT_EQ(ts.signsCompleted, 4u) << id;
        EXPECT_GT(ts.sigsPerSec, 0.0) << id;
    }
}

// The unified request-struct surface: per-request optRand and
// callbacks must survive the queue and the coalesced lane groups,
// with output bytes identical to the scalar per-key path.
TEST(SignService, RequestStructsCarryOptRandAndCallbacks)
{
    const auto p = miniParams();
    Tenancy t;
    addTenants(t, p, 2);

    ServiceConfig cfg;
    cfg.workers = 2;
    cfg.shards = 2;
    cfg.signCoalesce = 0; // auto: coalescing active
    SignService svc(t.store, cfg);

    std::mutex m;
    std::map<uint64_t, std::string> cb_sigs;

    std::vector<std::string> ids;
    std::vector<ByteVec> msgs, rands;
    std::vector<std::future<ByteVec>> futs;
    for (unsigned i = 0; i < 10; ++i) {
        const std::string id =
            std::string("tenant-").append(std::to_string(i % 2));
        batch::SignRequest req;
        req.message = patternMsg(33, static_cast<uint8_t>(0x40 + i));
        if (i % 2)
            req.optRand = ByteVec(p.n, static_cast<uint8_t>(0x21 * i));
        req.callback = [&](uint64_t seq, const ByteVec &sig) {
            std::lock_guard<std::mutex> lk(m);
            cb_sigs[seq] = hexEncode(sig);
        };
        ids.push_back(id);
        msgs.push_back(req.message);
        rands.push_back(req.optRand);
        futs.push_back(svc.submit(id, std::move(req)));
    }

    SphincsPlus scheme(p);
    std::vector<std::string> got;
    for (size_t i = 0; i < futs.size(); ++i) {
        ByteVec sig = futs[i].get();
        ByteVec ref = scheme.sign(msgs[i], t.keys.at(ids[i]).sk,
                                  rands[i]);
        EXPECT_EQ(hexEncode(sig), hexEncode(ref)) << "req " << i;
        got.push_back(hexEncode(sig));
    }
    svc.drain();

    // Every callback fired, each with its own request's bytes.
    ASSERT_EQ(cb_sigs.size(), futs.size());
    std::lock_guard<std::mutex> lk(m);
    for (const auto &[seq, hex] : cb_sigs) {
        EXPECT_NE(std::find(got.begin(), got.end(), hex), got.end())
            << "seq " << seq;
    }

    auto st = svc.stats();
    EXPECT_EQ(st.signsCompleted, 10u);
    EXPECT_EQ(st.signFailures, 0u);
    // Coalescing accounting stays consistent: every cross-signed job
    // belongs to some group of >= 2, and no more jobs than submitted.
    EXPECT_LE(st.signCrossSignJobs, 10u);
    EXPECT_LE(2 * st.signLaneGroups, st.signCrossSignJobs);
}

// submitMany(span) routes a whole burst for one tenant; coalescing
// disabled via signCoalesce=1 must report zero lane groups.
TEST(SignService, SubmitManySpanAndCoalesceOff)
{
    const auto p = miniParams();
    Tenancy t;
    addTenants(t, p, 1);

    ServiceConfig cfg;
    cfg.workers = 4;
    cfg.signCoalesce = 1; // within-signature only
    SignService svc(t.store, cfg);

    std::vector<ByteVec> msgs;
    std::vector<batch::SignRequest> reqs;
    for (unsigned i = 0; i < 8; ++i) {
        msgs.push_back(patternMsg(24, static_cast<uint8_t>(i)));
        reqs.push_back({msgs.back(), {}, {}, {}});
    }
    // submitMany moves from the span; msgs keeps the reference copy.
    auto futs = svc.submitMany("tenant-0", reqs);
    ASSERT_EQ(futs.size(), msgs.size());

    SphincsPlus scheme(p);
    for (size_t i = 0; i < futs.size(); ++i) {
        ByteVec ref = scheme.sign(msgs[i], t.keys.at("tenant-0").sk);
        EXPECT_EQ(hexEncode(futs[i].get()), hexEncode(ref));
    }
    svc.drain();

    auto st = svc.stats();
    EXPECT_EQ(st.signsCompleted, 8u);
    EXPECT_EQ(st.signLaneGroups, 0u);
    EXPECT_EQ(st.signCrossSignJobs, 0u);
}

TEST(SignService, HotPathConstructsNoContexts)
{
    const auto p = miniParams();
    Tenancy t;
    addTenants(t, p, 2);

    ServiceConfig cfg;
    cfg.workers = 2;
    SignService svc(t.store, cfg);

    // Warm-up wave: one context build per tenant, nothing else.
    const uint64_t ctx0 = Context::constructionCount();
    std::vector<std::future<ByteVec>> futs;
    for (unsigned i = 0; i < 8; ++i)
        futs.push_back(svc.submitSign(std::string("tenant-").append(std::to_string(i % 2)),
                                      patternMsg(32, i)));
    for (auto &f : futs)
        f.get();
    EXPECT_EQ(Context::constructionCount() - ctx0, 2u);

    // Steady state: zero constructions, pure cache hits.
    const uint64_t ctx1 = Context::constructionCount();
    futs.clear();
    for (unsigned i = 0; i < 8; ++i)
        futs.push_back(svc.submitSign(std::string("tenant-").append(std::to_string(i % 2)),
                                      patternMsg(32, 100 + i)));
    for (auto &f : futs)
        f.get();
    EXPECT_EQ(Context::constructionCount() - ctx1, 0u);

    auto st = svc.stats();
    EXPECT_EQ(st.cache.misses, 2u);
    EXPECT_EQ(st.cache.hits, 14u);
}

TEST(SignService, RejectsUnknownAndVerifyOnlyKeys)
{
    const auto p = miniParams();
    Tenancy t;
    addTenants(t, p, 1);
    SphincsPlus scheme(p);
    auto vkp = scheme.keygenFromSeed(batchtest::fixedSeed(p, 99));
    t.store.addVerifyKey("verify-only", vkp.pk);

    SignService svc(t.store);
    EXPECT_THROW(svc.submitSign("nope", patternMsg(8)),
                 std::invalid_argument);
    EXPECT_THROW(svc.submitSign("verify-only", patternMsg(8)),
                 std::invalid_argument);
    EXPECT_THROW(
        svc.submitSign("tenant-0", patternMsg(8), ByteVec(p.n + 1)),
        std::invalid_argument);

    // Well-formed opt_rand still works.
    auto f = svc.submitSign("tenant-0", patternMsg(8),
                            ByteVec(p.n, 0xa5));
    EXPECT_EQ(f.get(), scheme.sign(patternMsg(8),
                                   t.keys.at("tenant-0").sk,
                                   ByteVec(p.n, 0xa5)));
}

TEST(SignService, AdmissionControlBoundsPending)
{
    const auto p = miniParams();
    Tenancy t;
    addTenants(t, p, 1);

    ServiceConfig cfg;
    cfg.workers = 1;
    cfg.maxPending = 4;
    SignService svc(t.store, cfg);

    unsigned accepted = 0, rejected = 0;
    std::vector<std::future<ByteVec>> futs;
    for (unsigned i = 0; i < 64; ++i) {
        try {
            futs.push_back(
                svc.submitSign("tenant-0", patternMsg(16, i)));
            ++accepted;
        } catch (const ServiceOverload &) {
            ++rejected;
        }
    }
    // One worker cannot keep up with a 64-submit burst at cap 4.
    EXPECT_GT(rejected, 0u);
    EXPECT_GE(accepted, 4u);
    for (auto &f : futs)
        EXPECT_EQ(f.get().size(), p.sigBytes());
    svc.drain();

    auto st = svc.stats();
    EXPECT_EQ(st.signsSubmitted, accepted);
    EXPECT_EQ(st.signsCompleted, accepted);
    EXPECT_EQ(st.signsRejected, rejected);
    EXPECT_EQ(st.inFlight, 0u);
}

TEST(SignService, SharedCacheAcrossServices)
{
    const auto p = miniParams();
    Tenancy t;
    addTenants(t, p, 2);

    auto cache = std::make_shared<service::ContextCache>(8);
    ServiceConfig cfg;
    cfg.workers = 2;
    SignService a(t.store, cfg, cache);
    SignService b(t.store, cfg, cache);

    a.submitSign("tenant-0", patternMsg(8)).get();
    b.submitSign("tenant-0", patternMsg(9)).get();

    auto st = cache->stats();
    EXPECT_EQ(st.misses, 1u); // b reused a's warm context
    EXPECT_EQ(st.hits, 1u);
}
