/**
 * @file
 * KeyStore + ContextCache behaviour: shared immutable key material,
 * LRU eviction, hit/miss/eviction accounting, and the guarantee that
 * warm contexts make repeat acquisitions construction-free.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "../batch/batch_test_util.hh"
#include "service/context_cache.hh"
#include "service/key_store.hh"

using namespace herosign;
using batchtest::miniParams;
using service::ContextCache;
using service::KeyStore;
using sphincs::Context;
using sphincs::SphincsPlus;

namespace
{

sphincs::KeyPair
makeKeyPair(const sphincs::Params &p, uint8_t salt)
{
    SphincsPlus scheme(p);
    return scheme.keygenFromSeed(batchtest::fixedSeed(p, salt));
}

} // namespace

TEST(KeyStore, AddFindRemove)
{
    const auto p = miniParams();
    KeyStore store;
    auto kp = makeKeyPair(p, 1);
    auto rec = store.addKey("alice", kp);
    ASSERT_NE(rec, nullptr);
    EXPECT_TRUE(rec->canSign());
    EXPECT_EQ(rec->pk.pkRoot, kp.pk.pkRoot);

    EXPECT_EQ(store.find("alice"), rec);
    EXPECT_EQ(store.find("bob"), nullptr);
    EXPECT_EQ(store.size(), 1u);

    EXPECT_THROW(store.addKey("alice", kp), std::invalid_argument);

    store.addVerifyKey("bob", kp.pk);
    auto bob = store.find("bob");
    ASSERT_NE(bob, nullptr);
    EXPECT_FALSE(bob->canSign());
    EXPECT_EQ(store.ids(), (std::vector<std::string>{"alice", "bob"}));

    EXPECT_TRUE(store.remove("alice"));
    EXPECT_FALSE(store.remove("alice"));
    EXPECT_EQ(store.find("alice"), nullptr);

    // The removed record stays alive (and un-zeroized) through the
    // outstanding shared_ptr.
    EXPECT_FALSE(rec->sk.skSeed.empty());
    EXPECT_EQ(rec->pk.pkRoot, kp.pk.pkRoot);
}

TEST(ContextCache, HitsMissesAndSharing)
{
    const auto p = miniParams();
    KeyStore store;
    store.addKey("a", makeKeyPair(p, 1));
    store.addKey("b", makeKeyPair(p, 2));

    ContextCache cache(4);
    const uint64_t ctx0 = Context::constructionCount();

    auto wa1 = cache.acquire(store.find("a"));
    auto wb = cache.acquire(store.find("b"));
    auto wa2 = cache.acquire(store.find("a"));

    // The warm context is shared, not rebuilt.
    EXPECT_EQ(wa1.get(), wa2.get());
    EXPECT_NE(wa1.get(), wb.get());
    EXPECT_EQ(Context::constructionCount() - ctx0, 2u);

    auto st = cache.stats();
    EXPECT_EQ(st.hits, 1u);
    EXPECT_EQ(st.misses, 2u);
    EXPECT_EQ(st.evictions, 0u);
    EXPECT_EQ(st.size, 2u);
    EXPECT_EQ(st.capacity, 4u);

    // Warm contexts can sign and the result matches a cold context.
    ByteVec msg = batchtest::patternMsg(32);
    ByteVec warm_sig =
        wa1->scheme.sign(wa1->ctx, msg, wa1->key->sk);
    SphincsPlus scheme(p);
    auto kp = makeKeyPair(p, 1);
    EXPECT_EQ(warm_sig, scheme.sign(msg, kp.sk));
}

TEST(ContextCache, LruEviction)
{
    const auto p = miniParams();
    KeyStore store;
    for (int i = 0; i < 4; ++i)
        store.addKey(std::to_string(i),
                     makeKeyPair(p, static_cast<uint8_t>(i)));

    ContextCache cache(2);
    auto w0 = cache.acquire(store.find("0"));
    cache.acquire(store.find("1"));
    cache.acquire(store.find("0")); // 0 most recent
    cache.acquire(store.find("2")); // evicts 1
    auto st = cache.stats();
    EXPECT_EQ(st.evictions, 1u);
    EXPECT_EQ(st.size, 2u);

    // 1 is cold again, 0 is still warm.
    cache.acquire(store.find("1")); // miss, evicts 0
    cache.acquire(store.find("1")); // hit
    st = cache.stats();
    EXPECT_EQ(st.misses, 4u);
    EXPECT_EQ(st.hits, 2u);
    EXPECT_EQ(st.evictions, 2u);

    // The evicted warm context stays usable through our reference.
    ByteVec msg = batchtest::patternMsg(24);
    ByteVec sig = w0->scheme.sign(w0->ctx, msg, w0->key->sk);
    EXPECT_EQ(sig.size(), p.sigBytes());

    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
}

TEST(ContextCache, CapacityClampedToOne)
{
    const auto p = miniParams();
    KeyStore store;
    store.addKey("x", makeKeyPair(p, 7));
    ContextCache cache(0);
    EXPECT_EQ(cache.capacity(), 1u);
    EXPECT_NE(cache.acquire(store.find("x")), nullptr);
    EXPECT_THROW(cache.acquire(nullptr), std::invalid_argument);
}

TEST(ContextCache, TinyCapacityDoesNotChurnSingleTenant)
{
    // A capacity-0 request clamps to one usable slot. Without the
    // clamp an "empty" cache would evict on every insert, turning a
    // steady single-tenant stream into a miss+evict cycle that
    // constructs a Context per request. With it, every acquire after
    // the first is a hit and construction happens exactly once.
    const auto p = miniParams();
    KeyStore store;
    store.addKey("solo", makeKeyPair(p, 9));
    const uint64_t built_before = sphincs::Context::constructionCount();

    ContextCache cache(0);
    for (unsigned i = 0; i < 32; ++i)
        EXPECT_NE(cache.acquire(store.find("solo")), nullptr);

    auto st = cache.stats();
    EXPECT_EQ(st.misses, 1u);
    EXPECT_EQ(st.hits, 31u);
    EXPECT_EQ(st.evictions, 0u);
    EXPECT_EQ(st.size, 1u);
    EXPECT_EQ(sphincs::Context::constructionCount() - built_before,
              1u);
}

TEST(ContextCache, ConcurrentAcquireIsRaceFreeAndConsistent)
{
    // Capacity 1 with two hot keys forces constant eviction and
    // rebuilding, so concurrent acquirers exercise the
    // build-outside-the-lock path and the second-insert adoption
    // race — the paths the TSan CI job exists to watch.
    const auto p = miniParams();
    KeyStore store;
    store.addKey("a", makeKeyPair(p, 1));
    store.addKey("b", makeKeyPair(p, 2));
    ContextCache cache(1);

    constexpr unsigned kThreads = 4;
    constexpr unsigned kIters = 64;
    std::vector<std::thread> threads;
    std::atomic<unsigned> mismatches{0};
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (unsigned i = 0; i < kIters; ++i) {
                const std::string id = (t + i) % 2 ? "a" : "b";
                auto warm = cache.acquire(store.find(id));
                if (warm->key->id != id)
                    mismatches.fetch_add(1);
            }
        });
    }
    for (auto &th : threads)
        th.join();

    EXPECT_EQ(mismatches.load(), 0u);
    auto st = cache.stats();
    EXPECT_EQ(st.hits + st.misses, kThreads * kIters);
    EXPECT_GE(st.misses, 2u);
    EXPECT_LE(st.size, 1u);
}

TEST(ContextCache, KeyRotationInvalidatesStaleEntry)
{
    const auto p = miniParams();
    KeyStore store;
    store.addKey("rot", makeKeyPair(p, 1));
    ContextCache cache(4);

    auto old_warm = cache.acquire(store.find("rot"));

    // Rotate: remove and re-register the same id with a new key.
    ASSERT_TRUE(store.remove("rot"));
    auto new_kp = makeKeyPair(p, 0x55);
    store.addKey("rot", new_kp);

    auto new_warm = cache.acquire(store.find("rot"));
    EXPECT_NE(new_warm.get(), old_warm.get());
    EXPECT_EQ(new_warm->key->pk.pkRoot, new_kp.pk.pkRoot);

    // The rotated context signs with the NEW key.
    ByteVec msg = batchtest::patternMsg(20);
    SphincsPlus scheme(p);
    EXPECT_EQ(new_warm->scheme.sign(new_warm->ctx, msg,
                                    new_warm->key->sk),
              scheme.sign(msg, new_kp.sk));

    auto st = cache.stats();
    EXPECT_EQ(st.misses, 2u);
    EXPECT_EQ(st.evictions, 1u); // the stale entry
    EXPECT_EQ(st.size, 1u);
}

TEST(ContextCache, VerifyOnlyKeysGetVerifyContexts)
{
    const auto p = miniParams();
    KeyStore store;
    auto kp = makeKeyPair(p, 3);
    store.addVerifyKey("v", kp.pk);

    ContextCache cache(2);
    auto w = cache.acquire(store.find("v"));
    EXPECT_FALSE(w->ctx.canSign());

    SphincsPlus scheme(p);
    ByteVec msg = batchtest::patternMsg(16);
    ByteVec sig = scheme.sign(msg, kp.sk);
    EXPECT_TRUE(w->scheme.verify(w->ctx, msg, sig, w->key->pk));
}
