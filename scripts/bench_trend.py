#!/usr/bin/env python3
"""Diff two BENCH_*.json snapshots and flag throughput regressions.

The bench binaries emit machine-readable tables via ``--json <path>``
(see bench/bench_util.hh): a JSON array of
``{title, note, headers, rows: [{header: value}]}`` objects. This
script compares the throughput-like columns of two such snapshots —
the committed per-PR trajectory under bench/snapshots/ — and exits
non-zero when any matched row regressed by more than the threshold
(default 10%).

Two kinds of columns are gated: "higher is better" headers matching
KOPS, sigs/sec, rate or speedup (a drop regresses), and "lower is
better" tail-latency headers matching ``p99 ms`` (a rise regresses —
p50/p95 are reported but deliberately not gated; the tail is the SLO).
Rows are matched within same-titled tables by their first (label)
column; rows or columns present in only one snapshot are reported as
informational and never fail the run.

Usage:
  bench_trend.py --baseline OLD.json --current NEW.json [--threshold F]
  bench_trend.py --snapshot-dir DIR [--bench NAME] [--threshold F]
      Compare the two lexicographically newest ``*.json`` snapshots
      (optionally filtered by NAME in the filename). With fewer than
      two snapshots there is nothing to diff: prints a notice, exits 0.
  bench_trend.py --self-test
      Run the embedded fixtures (the CTest hook bench_trend_selftest).

Exit codes: 0 ok / nothing to compare, 1 regression found, 2 usage or
parse error.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

# Headers whose columns are throughput-like (higher is better). Times
# and sizes are deliberately not matched: wall-clock columns regress
# when machines differ, and the snapshots track one host.
THROUGHPUT_RE = re.compile(r"KOPS|sigs/s|sig/s|/sec|speedup|rate|ops",
                           re.IGNORECASE)

# Tail-latency headers (lower is better). Only the p99 column is
# gated: medians wobble with scheduling noise, but a tail regression
# is exactly what the stage-timing telemetry exists to catch.
LATENCY_RE = re.compile(r"p99\s*ms", re.IGNORECASE)

# The pseudo-table bench_util.hh's emitJson prepends to every
# snapshot: the recording host's fingerprint. Never compared as a
# table; used to decide whether two snapshots are comparable at all.
META_TITLE = "__meta__"

# Fingerprint fields that make measurements host-specific. The
# profile_hash (which autotuner profile was applied) is reported but
# not part of comparability: a tuning change on the same host is a
# legitimate, gateable perf change.
HOST_FP_FIELDS = ("cpu", "cores", "dispatch")


def split_meta(doc):
    """Strip the __meta__ entry: (fingerprint_or_None, tables)."""
    fp = None
    tables = []
    for table in doc:
        if table.get("title") == META_TITLE:
            fp = table.get("fingerprint") or {}
        else:
            tables.append(table)
    return fp, tables


def fingerprint_mismatch(a, b):
    """Human-readable list of differing host-fingerprint fields."""
    diffs = []
    for field in HOST_FP_FIELDS:
        if a.get(field) != b.get(field):
            diffs.append(f"{field}: {a.get(field)!r} -> "
                         f"{b.get(field)!r}")
    return diffs


def parse_number(cell):
    """Float value of a table cell, or None when not numeric."""
    if cell is None:
        return None
    text = str(cell).strip().rstrip("x").replace(",", "")
    try:
        return float(text)
    except ValueError:
        return None


def load_snapshot(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise SystemExit(f"bench_trend: cannot read {path}: {e}")
    if not isinstance(doc, list):
        raise SystemExit(f"bench_trend: {path}: expected a JSON array")
    fp, doc = split_meta(doc)
    tables = {}
    for table in doc:
        title = table.get("title", "")
        headers = table.get("headers", [])
        rows = {}
        label_col = headers[0] if headers else None
        for row in table.get("rows", []):
            label = row.get(label_col, "") if label_col else ""
            rows[label] = row
        tables[title] = {"headers": headers, "rows": rows}
    return fp, tables


def compare(baseline, current, threshold):
    """Return (regressions, notes): lists of human-readable strings."""
    regressions = []
    notes = []
    for title, cur_table in current.items():
        base_table = baseline.get(title)
        if base_table is None:
            notes.append(f"new table (not in baseline): {title!r}")
            continue
        headers = [h for h in cur_table["headers"]
                   if THROUGHPUT_RE.search(h)]
        lat_headers = [h for h in cur_table["headers"]
                       if LATENCY_RE.search(h)
                       and not THROUGHPUT_RE.search(h)]
        # Rows/columns that vanished from the current snapshot can
        # hide a regression (e.g. the fastest backend's row dropping
        # off on a less capable host) — surface them loudly.
        for h in base_table["headers"]:
            if (THROUGHPUT_RE.search(h) or LATENCY_RE.search(h)) \
                    and h not in cur_table["headers"]:
                notes.append(f"column dropped from current: "
                             f"{title!r} / {h!r}")
        for label in base_table["rows"]:
            if label not in cur_table["rows"]:
                notes.append(f"row dropped from current: "
                             f"{title!r} / {label!r}")
        for label, cur_row in cur_table["rows"].items():
            base_row = base_table["rows"].get(label)
            if base_row is None:
                notes.append(f"new row (not in baseline): "
                             f"{title!r} / {label!r}")
                continue
            for h in headers:
                cur_v = parse_number(cur_row.get(h))
                base_v = parse_number(base_row.get(h))
                if cur_v is None or base_v is None or base_v <= 0:
                    # A measured number degrading to "n/a" (backend
                    # unavailable on the recording host) must not
                    # vanish from the gate silently.
                    if base_v is not None and cur_v is None:
                        notes.append(
                            f"cell no longer numeric: {title!r} / "
                            f"{label!r} / {h!r} ({base_row.get(h)!r} "
                            f"-> {cur_row.get(h)!r})")
                    continue
                ratio = cur_v / base_v
                if ratio < 1.0 - threshold:
                    regressions.append(
                        f"{title!r} / {label!r} / {h!r}: "
                        f"{base_v:g} -> {cur_v:g} "
                        f"({(1.0 - ratio) * 100.0:.1f}% slower)")
            for h in lat_headers:
                cur_v = parse_number(cur_row.get(h))
                base_v = parse_number(base_row.get(h))
                if cur_v is None or base_v is None or base_v <= 0:
                    if base_v is not None and cur_v is None:
                        notes.append(
                            f"cell no longer numeric: {title!r} / "
                            f"{label!r} / {h!r} ({base_row.get(h)!r} "
                            f"-> {cur_row.get(h)!r})")
                    continue
                ratio = cur_v / base_v
                if ratio > 1.0 + threshold:
                    regressions.append(
                        f"{title!r} / {label!r} / {h!r}: "
                        f"{base_v:g} -> {cur_v:g} ms "
                        f"({(ratio - 1.0) * 100.0:.1f}% higher tail "
                        f"latency)")
    for title in baseline:
        if title not in current:
            notes.append(f"table dropped from current: {title!r}")
    return regressions, notes


def pick_snapshots(directory, bench):
    d = Path(directory)
    if not d.is_dir():
        raise SystemExit(f"bench_trend: no such directory: {d}")
    snaps = sorted(p for p in d.glob("*.json")
                   if bench is None or bench in p.name)
    return snaps


def run_diff(baseline_path, current_path, threshold):
    base_fp, baseline = load_snapshot(baseline_path)
    cur_fp, current = load_snapshot(current_path)
    regressions, notes = compare(baseline, current, threshold)

    # Snapshots from different hosts (or SIMD tiers) are not
    # comparable: a "regression" there is a machine change, not a code
    # change — warn instead of failing. Gate normally when either
    # snapshot predates fingerprints (the conservative default).
    demote = None
    if base_fp is not None and cur_fp is not None:
        diffs = fingerprint_mismatch(base_fp, cur_fp)
        if diffs:
            demote = "differing host fingerprints (" + \
                "; ".join(diffs) + ")"
        elif (base_fp.get("profile_hash") or "") != \
                (cur_fp.get("profile_hash") or ""):
            notes.append(
                f"autotune profile changed between snapshots "
                f"({base_fp.get('profile_hash')!r} -> "
                f"{cur_fp.get('profile_hash')!r}); same host, so "
                f"still gated")

    for n in notes:
        print(f"note: {n}")
    if regressions and demote:
        print(f"bench_trend: WARNING: {demote}; "
              f"{len(regressions)} would-be regression(s) reported "
              f"as warnings ({baseline_path} -> {current_path}):")
        for r in regressions:
            print(f"  warning: {r}")
        return 0
    if regressions:
        print(f"bench_trend: {len(regressions)} regression(s) over "
              f"{threshold * 100:.0f}% "
              f"({baseline_path} -> {current_path}):")
        for r in regressions:
            print(f"  REGRESSION {r}")
        return 1
    if demote:
        print(f"bench_trend: note: {demote}")
    print(f"bench_trend: no throughput regression over "
          f"{threshold * 100:.0f}% ({baseline_path} -> {current_path})")
    return 0


def self_test():
    """Deterministic fixtures for the CTest hook."""
    import copy
    import tempfile

    base = [{
        "title": "Table X: CPU comparison (KOPS)",
        "note": "",
        "headers": ["Implementation", "128f KOPS", "note col"],
        "rows": [
            {"Implementation": "x16 AVX-512 (measured)",
             "128f KOPS": "0.150", "note col": "text"},
            {"Implementation": "x8 AVX2 (measured)",
             "128f KOPS": "0.100", "note col": "text"},
        ],
    }]

    failures = []

    def check(name, cond):
        print(f"  {'ok' if cond else 'FAIL'}: {name}")
        if not cond:
            failures.append(name)

    # Identical snapshots: no regression.
    regs, _ = compare(load_obj(base), load_obj(base), 0.10)
    check("identical snapshots pass", regs == [])

    # 20% drop on a KOPS column: flagged.
    cur = copy.deepcopy(base)
    cur[0]["rows"][0]["128f KOPS"] = "0.120"
    regs, _ = compare(load_obj(base), load_obj(cur), 0.10)
    check("20% drop flagged", len(regs) == 1 and "x16" in regs[0])

    # 5% drop under a 10% threshold: allowed.
    cur = copy.deepcopy(base)
    cur[0]["rows"][0]["128f KOPS"] = "0.143"
    regs, _ = compare(load_obj(base), load_obj(cur), 0.10)
    check("5% drop under threshold passes", regs == [])

    # Improvements never flag.
    cur = copy.deepcopy(base)
    cur[0]["rows"][0]["128f KOPS"] = "0.500"
    regs, _ = compare(load_obj(base), load_obj(cur), 0.10)
    check("improvement passes", regs == [])

    # Non-throughput and non-numeric columns are ignored.
    cur = copy.deepcopy(base)
    cur[0]["rows"][0]["note col"] = "different text"
    regs, _ = compare(load_obj(base), load_obj(cur), 0.10)
    check("non-throughput column ignored", regs == [])

    # A measured cell degrading to "n/a" (e.g. the x16 row recorded on
    # a host without AVX-512) surfaces as a note.
    cur = copy.deepcopy(base)
    cur[0]["rows"][0]["128f KOPS"] = "n/a"
    regs, notes = compare(load_obj(base), load_obj(cur), 0.10)
    check("numeric-to-n/a cell surfaces a note",
          regs == [] and any("no longer numeric" in n for n in notes))

    # A row vanishing from the current snapshot (e.g. the x16 row on
    # a host without AVX-512) must at least be surfaced as a note.
    cur = copy.deepcopy(base)
    del cur[0]["rows"][0]
    regs, notes = compare(load_obj(base), load_obj(cur), 0.10)
    check("dropped row surfaces a note",
          regs == [] and any("row dropped" in n for n in notes))

    # Same for a throughput column disappearing.
    cur = copy.deepcopy(base)
    cur[0]["headers"] = ["Implementation", "note col"]
    for row in cur[0]["rows"]:
        row.pop("128f KOPS", None)
    regs, notes = compare(load_obj(base), load_obj(cur), 0.10)
    check("dropped column surfaces a note",
          regs == [] and any("column dropped" in n for n in notes))

    # New rows/tables are notes, not failures.
    cur = copy.deepcopy(base)
    cur[0]["rows"].append({"Implementation": "new row",
                           "128f KOPS": "0.001"})
    cur.append({"title": "new table", "headers": ["a"], "rows": []})
    regs, notes = compare(load_obj(base), load_obj(cur), 0.10)
    check("new rows/tables are notes", regs == [] and len(notes) == 2)

    # --- Latency-column gating (lower is better, p99 only) ---
    lat_base = [{
        "title": "Mixed traffic latency",
        "note": "",
        "headers": ["mode", "ops/s", "p50 ms", "p95 ms", "p99 ms"],
        "rows": [
            {"mode": "closed", "ops/s": "100.0", "p50 ms": "1.00",
             "p95 ms": "2.00", "p99 ms": "4.00"},
        ],
    }]

    # A 25% p99 rise over a 10% threshold is flagged.
    cur = copy.deepcopy(lat_base)
    cur[0]["rows"][0]["p99 ms"] = "5.00"
    regs, _ = compare(load_obj(lat_base), load_obj(cur), 0.10)
    check("p99 rise flagged",
          len(regs) == 1 and "tail latency" in regs[0])

    # A 5% rise under the threshold passes.
    cur = copy.deepcopy(lat_base)
    cur[0]["rows"][0]["p99 ms"] = "4.20"
    regs, _ = compare(load_obj(lat_base), load_obj(cur), 0.10)
    check("p99 rise under threshold passes", regs == [])

    # Latency improvements never flag.
    cur = copy.deepcopy(lat_base)
    cur[0]["rows"][0]["p99 ms"] = "1.00"
    regs, _ = compare(load_obj(lat_base), load_obj(cur), 0.10)
    check("p99 improvement passes", regs == [])

    # p50/p95 wobble is deliberately not gated.
    cur = copy.deepcopy(lat_base)
    cur[0]["rows"][0]["p50 ms"] = "9.00"
    cur[0]["rows"][0]["p95 ms"] = "9.00"
    regs, _ = compare(load_obj(lat_base), load_obj(cur), 0.10)
    check("p50/p95 not gated", regs == [])

    # Simultaneous throughput drop and p99 rise yields two findings.
    cur = copy.deepcopy(lat_base)
    cur[0]["rows"][0]["ops/s"] = "50.0"
    cur[0]["rows"][0]["p99 ms"] = "8.00"
    regs, _ = compare(load_obj(lat_base), load_obj(cur), 0.10)
    check("both gates fire independently", len(regs) == 2)

    # A p99 cell degrading to non-numeric surfaces a note.
    cur = copy.deepcopy(lat_base)
    cur[0]["rows"][0]["p99 ms"] = "n/a"
    regs, notes = compare(load_obj(lat_base), load_obj(cur), 0.10)
    check("p99 numeric-to-n/a surfaces a note",
          regs == [] and any("no longer numeric" in n for n in notes))

    # A dropped p99 column surfaces a note.
    cur = copy.deepcopy(lat_base)
    cur[0]["headers"] = ["mode", "ops/s", "p50 ms", "p95 ms"]
    for row in cur[0]["rows"]:
        row.pop("p99 ms", None)
    regs, notes = compare(load_obj(lat_base), load_obj(cur), 0.10)
    check("dropped p99 column surfaces a note",
          regs == [] and any("column dropped" in n for n in notes))

    # "1.41x"-style speedup cells parse.
    check("speedup cell parses", parse_number("1.41x") == 1.41)
    check("text cell skipped", parse_number("n/a") is None)

    # --- Host-fingerprint handling (__meta__ pseudo-table) ---
    fp_a = {"title": META_TITLE,
            "fingerprint": {"cpu": "Xeon 2.10GHz", "cores": 1,
                            "dispatch": "avx512", "profile_hash": ""}}
    fp_b = {"title": META_TITLE,
            "fingerprint": {"cpu": "EPYC 3.00GHz", "cores": 64,
                            "dispatch": "avx2", "profile_hash": ""}}

    # The __meta__ entry is stripped, never diffed as a table.
    cur = [copy.deepcopy(fp_a)] + copy.deepcopy(base)
    regs, notes = compare(load_obj(base), load_obj(cur), 0.10)
    check("__meta__ entry ignored in table diff",
          regs == [] and notes == [])
    check("fingerprint fields compared",
          fingerprint_mismatch(fp_a["fingerprint"],
                               fp_b["fingerprint"]) != [] and
          fingerprint_mismatch(fp_a["fingerprint"],
                               dict(fp_a["fingerprint"],
                                    profile_hash="deadbeef")) == [])

    # End-to-end through real files and the CLI path.
    with tempfile.TemporaryDirectory() as td:
        a = Path(td) / "0001-t.json"
        b = Path(td) / "0002-t.json"
        a.write_text(json.dumps(base))
        worse = copy.deepcopy(base)
        worse[0]["rows"][1]["128f KOPS"] = "0.050"
        b.write_text(json.dumps(worse))
        check("file diff flags regression",
              run_diff(str(a), str(b), 0.10) == 1)
        check("snapshot-dir picks two newest",
              pick_snapshots(td, "t") == [a, b])

        # Same host fingerprint on both sides: still gated.
        a.write_text(json.dumps([fp_a] + base))
        b.write_text(json.dumps([copy.deepcopy(fp_a)] + worse))
        check("regression across same fingerprint still fails",
              run_diff(str(a), str(b), 0.10) == 1)

        # Differing host fingerprints: the regression is demoted to a
        # warning (a machine change is not a code regression).
        b.write_text(json.dumps([fp_b] + worse))
        check("regression across differing fingerprints warns only",
              run_diff(str(a), str(b), 0.10) == 0)

        # One-sided fingerprint (old snapshot predates them): the
        # conservative default is to gate normally.
        a.write_text(json.dumps(base))
        check("regression with one-sided fingerprint still fails",
              run_diff(str(a), str(b), 0.10) == 1)

        # Profile-hash-only change on the same host: gated, noted.
        a.write_text(json.dumps([fp_a] + base))
        tuned_fp = copy.deepcopy(fp_a)
        tuned_fp["fingerprint"]["profile_hash"] = "deadbeef"
        b.write_text(json.dumps([tuned_fp] + worse))
        check("profile change on same host still gates",
              run_diff(str(a), str(b), 0.10) == 1)

    if failures:
        print(f"bench_trend --self-test: {len(failures)} failure(s)")
        return 1
    print("bench_trend --self-test: all checks passed")
    return 0


def load_obj(doc):
    """load_snapshot for an in-memory document (self-test helper),
    returning tables only (any __meta__ entry stripped)."""
    _, doc = split_meta(doc)
    tables = {}
    for table in doc:
        headers = table.get("headers", [])
        label_col = headers[0] if headers else None
        rows = {}
        for row in table.get("rows", []):
            rows[row.get(label_col, "") if label_col else ""] = row
        tables[table.get("title", "")] = {"headers": headers,
                                          "rows": rows}
    return tables


def main(argv):
    ap = argparse.ArgumentParser(
        description="Diff BENCH_*.json snapshots for regressions")
    ap.add_argument("--baseline", help="older snapshot file")
    ap.add_argument("--current", help="newer snapshot file")
    ap.add_argument("--snapshot-dir",
                    help="directory of accumulated snapshots; the two "
                         "lexicographically newest are compared")
    ap.add_argument("--bench",
                    help="with --snapshot-dir: only files whose name "
                         "contains this substring")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="relative drop that counts as a regression "
                         "(default 0.10)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the embedded fixtures and exit")
    args = ap.parse_args(argv)

    if args.self_test:
        return self_test()
    if args.snapshot_dir:
        snaps = pick_snapshots(args.snapshot_dir, args.bench)
        if len(snaps) < 2:
            print(f"bench_trend: {len(snaps)} snapshot(s) in "
                  f"{args.snapshot_dir}; nothing to compare")
            return 0
        return run_diff(str(snaps[-2]), str(snaps[-1]), args.threshold)
    if args.baseline and args.current:
        return run_diff(args.baseline, args.current, args.threshold)
    ap.print_usage(sys.stderr)
    print("bench_trend: need --self-test, --snapshot-dir, or "
          "--baseline + --current", file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
