/**
 * @file
 * Table VII: the experimental platforms — GPU architecture, SM
 * version and base clock, plus the simulator's resource model.
 */

#include "bench_util.hh"

using namespace herosign;
using namespace herosign::bench;

int
main(int argc, char **argv)
{
    Options o = Options::parse(argc, argv);

    TextTable t({"GPU", "Architecture", "SM", "Base MHz", "SMs",
                 "CUDA cores", "Smem/SM KB", "Max dyn smem KB"});
    for (const auto &d : gpu::DeviceProps::allPlatforms()) {
        t.addRow({d.name, gpu::archName(d.arch),
                  "SM" + std::to_string(d.smVersion),
                  fmtF(d.baseClockMhz, 0), std::to_string(d.numSms),
                  std::to_string(d.cudaCores),
                  std::to_string(d.smemPerSm / 1024),
                  std::to_string(d.maxDynamicSmemPerBlock / 1024)});
    }
    emit(o, "Table VII: GPU platform configurations", t,
         "Clocks and core counts follow the paper (1506/1230/1350/"
         "1095/2235/1035 MHz; 1920/16384/16896 cores quoted in "
         "SIV-F).");
    return 0;
}
