/**
 * @file
 * §IV-E-3: input-size sensitivity. Messages of 1K..4K bytes are
 * hashed once by H_msg; the signing workload is otherwise constant,
 * so throughput should be flat and the HERO/baseline speedup stable.
 */

#include "bench_util.hh"
#include "hash/sha256.hh"

using namespace herosign;
using namespace herosign::bench;
using core::EngineConfig;
using sphincs::Params;

int
main(int argc, char **argv)
{
    Options o = Options::parse(argc, argv);
    EngineCache cache;
    const auto dev = gpu::DeviceProps::rtx4090();

    const unsigned sizes[] = {1024, 2048, 3072, 4096};

    TextTable t({"Set", "Input bytes", "Baseline KOPS", "HERO KOPS",
                 "Speedup"});
    for (const Params &p : Params::all()) {
        auto &base = cache.get(p, dev, EngineConfig::baseline());
        auto &hero = cache.get(p, dev, EngineConfig::hero());
        for (unsigned len : sizes) {
            // H_msg hashes the message once on the host side; add
            // that (tiny) cost to the per-batch makespan.
            const double hmsg_us =
                (len / 64.0) * 0.01; // ~10 ns per compression
            auto rb = base.signBatchTiming(1024);
            auto rh = hero.signBatchTiming(1024);
            const double bk =
                1024 * 1000.0 / (rb.makespanUs + 1024 * hmsg_us);
            const double hk =
                1024 * 1000.0 / (rh.makespanUs + 1024 * hmsg_us);
            t.addRow({p.name, std::to_string(len), fmtF(bk, 2),
                      fmtF(hk, 2), fmtX(hk / bk)});
        }
        t.addSeparator();
    }
    emit(o, "Input-size sensitivity (block = 1024)", t,
         "Paper: average speedups 1.30x / 1.28x / 1.45x, flat across "
         "input sizes because the tree workload is fixed.");
    return 0;
}
