/**
 * @file
 * Table III: warp occupancy, theoretical occupancy and registers per
 * thread of the three baseline kernels for SPHINCS+-128f on the
 * RTX 4090.
 */

#include "bench_util.hh"

using namespace herosign;
using namespace herosign::bench;
using core::EngineConfig;
using core::KernelKind;
using sphincs::Params;

int
main(int argc, char **argv)
{
    Options o = Options::parse(argc, argv);
    EngineCache cache;
    const auto dev = gpu::DeviceProps::rtx4090();
    auto &engine = cache.get(Params::sphincs128f(), dev,
                             EngineConfig::baseline());

    struct PaperRow
    {
        const char *kernel;
        double warp, theo;
        unsigned regs;
    };
    const PaperRow paper[] = {
        {"FORS_Sign", 17.0, 66.67, 64},
        {"TREE_Sign", 25.0, 25.0, 128},
        {"WOTS+_Sign", 46.0, 52.08, 72},
    };

    const KernelKind kinds[] = {KernelKind::ForsSign,
                                KernelKind::TreeSign,
                                KernelKind::WotsSign};

    TextTable t({"Kernel", "Warp Occ %", "Theoretical %",
                 "Regs/Thread", "paper Warp", "paper Theo",
                 "paper Regs"});
    for (size_t i = 0; i < 3; ++i) {
        const auto &k = engine.kernels()[i];
        auto timing = engine.kernelTimingAt(kinds[i], 1024);
        t.addRow({paper[i].kernel, fmtF(100.0 * timing.occupancy, 2),
                  fmtF(100.0 * timing.theoreticalOccupancy, 2),
                  std::to_string(k.clampedRegs), fmtF(paper[i].warp, 2),
                  fmtF(paper[i].theo, 2),
                  std::to_string(paper[i].regs)});
    }
    emit(o, "Table III: baseline kernel occupancy (SPHINCS+-128f, "
            "RTX 4090)",
         t,
         "Shape: TREE_Sign low on both occupancies with the highest "
         "register count; FORS_Sign has a large theoretical/achieved "
         "gap.");
    return 0;
}
