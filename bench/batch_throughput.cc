/**
 * @file
 * Real batch-signing throughput: scalar loop vs BatchSigner with
 * 1/2/4/8 workers across the Table I parameter sets. This is the
 * executed counterpart of the Fig. 13 batch-size sweep — wall-clock
 * signatures per second instead of simulated makespan — with the
 * engine's predicted makespan printed alongside the measured one.
 *
 * A second table sweeps workers (1/2/4/8/16) x lane width
 * (scalar/x8/x16) x batching mode: "within" caps the coalescing
 * group at one job (each signature batches only its own hash work,
 * the pre-LaneScheduler behaviour) while "cross" lets workers
 * coalesce queued signatures into lockstep lane groups. The cross
 * rows are the sign-side counterpart of the verifier's
 * across-signature lane fill.
 *
 *   $ ./batch_throughput [--csv] [--json F] [--msgs N] [--set NAME]
 *
 * Worker scaling only shows above one hardware thread; on a 1-core
 * host the multi-worker rows degenerate to the scalar rate minus
 * queue overhead — the within-vs-cross delta, however, is a SIMD
 * lane-fill effect and survives at any core count.
 */

#include <chrono>
#include <cstdlib>
#include <thread>

#include "batch/batch_signer.hh"
#include "batch/lane_scheduler.hh"
#include "bench_util.hh"
#include "common/random.hh"
#include "hash/sha256xN.hh"
#include "sphincs/sphincs.hh"

using namespace herosign;
using namespace herosign::bench;
using batch::BatchSigner;
using batch::BatchSignerConfig;
using sphincs::Params;
using sphincs::SphincsPlus;

namespace
{

double
nowUs()
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

std::vector<ByteVec>
makeBatch(Rng &rng, unsigned count)
{
    std::vector<ByteVec> msgs;
    msgs.reserve(count);
    for (unsigned i = 0; i < count; ++i)
        msgs.push_back(rng.bytes(32));
    return msgs;
}

/**
 * Sequential scalar reference: one thread, no queue, duration-bounded
 * through the shared bench/tuner measurement helper (tune::measureFor)
 * but never fewer signatures than the batch the worker rows sign.
 */
MeasureResult
scalarSignRun(const SphincsPlus &scheme, const sphincs::SecretKey &sk,
              const std::vector<ByteVec> &msgs)
{
    size_t i = 0;
    const auto sign_one = [&] {
        ByteVec sig = scheme.sign(msgs[i++ % msgs.size()], sk);
        if (sig.size() != scheme.params().sigBytes())
            std::abort(); // keep the signing work observable
    };
    MeasureResult r = measureFor(0.20, /*warmup_iters=*/0, sign_one);
    while (r.iters < msgs.size()) {
        const double t0 = nowUs();
        sign_one();
        r.wallUs += nowUs() - t0;
        ++r.iters;
    }
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt = Options::parse(argc, argv);
    unsigned msgs_per_set = 24;
    std::string only_set;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--msgs" && i + 1 < argc)
            msgs_per_set = std::max(
                1u, static_cast<unsigned>(std::stoul(argv[++i])));
        else if (a == "--set" && i + 1 < argc)
            only_set = argv[++i];
    }

    TextTable table({"set", "mode", "msgs", "wall ms", "sigs/s",
                     "vs scalar", "steals", "predicted ms"});
    const auto dev = gpu::DeviceProps::rtx4090();
    EngineCache engines;

    bool first_set = true;
    for (const Params &p : Params::all()) {
        if (!only_set.empty() && p.name.find(only_set) ==
                                     std::string::npos)
            continue;
        if (!first_set)
            table.addSeparator();
        first_set = false;
        SphincsPlus scheme(p);
        Rng rng(0xb5ac + p.n);
        auto kp = scheme.keygenFromSeed(rng.bytes(3 * p.n));
        auto msgs = makeBatch(rng, msgs_per_set);

        core::SignEngine &engine =
            engines.get(p, dev, core::EngineConfig::hero());
        const double predicted_ms =
            engine.signBatchTiming(msgs_per_set).makespanUs / 1000.0;

        // Reference: one thread with the lane engine forced onto
        // the portable scalar backend (same batched code, scalar
        // lanes — compression counts match the pre-batching path
        // exactly). Everything below is "vs" this row, so the
        // single-thread xN row isolates the SIMD backend speedup and
        // the worker rows show threading on top.
        sha256LanesForceScalar(true);
        const MeasureResult ref = scalarSignRun(scheme, kp.sk, msgs);
        sha256LanesForceScalar(false);
        const double ref_rate = ref.opsPerSec();
        table.addRow({p.name, "scalar lanes (SIMD off)",
                      std::to_string(ref.iters),
                      fmtF(ref.wallUs / 1000.0), fmtF(ref_rate, 1),
                      fmtX(1.0), "0", fmtF(predicted_ms)});

        // Honest labeling: without an active SIMD backend this row
        // measures the same portable lanes as the reference.
        const MeasureResult xn = scalarSignRun(scheme, kp.sk, msgs);
        const double xn_rate = xn.opsPerSec();
        const char *xn_label =
            sha256LanesAvx512Active()  ? "single thread, x16 AVX-512"
            : sha256LanesAvx2Active() ? "single thread, x8 AVX2"
                                      : "single thread (no SIMD)";
        table.addRow({p.name, xn_label, std::to_string(xn.iters),
                      fmtF(xn.wallUs / 1000.0), fmtF(xn_rate, 1),
                      fmtX(xn_rate / ref_rate), "0",
                      fmtF(predicted_ms)});

        for (unsigned workers : {1u, 2u, 4u, 8u}) {
            BatchSignerConfig cfg;
            cfg.workers = workers;
            cfg.shards = engine.config().streams;
            BatchSigner signer(p, kp.sk, cfg);
            auto futures = signer.submitMany(msgs);
            for (auto &f : futures)
                f.get();
            auto st = signer.drain();
            table.addRow(
                {p.name,
                 std::to_string(workers) +
                     (workers == 1 ? " worker" : " workers"),
                 std::to_string(st.jobs),
                 fmtF(st.wallUs / 1000.0), fmtF(st.sigsPerSec, 1),
                 fmtX(st.sigsPerSec / ref_rate),
                 std::to_string(st.crossShardPops),
                 fmtF(predicted_ms)});
        }
    }

    emit(opt, "Batch signing throughput (real threads)", table,
         "hardware threads: " +
             std::to_string(std::thread::hardware_concurrency()) +
             "; predicted = simulated GPU makespan "
             "(signBatchTiming) at the same batch size");

    // --- Worker x lane-width x batching-mode scaling --------------
    struct Width
    {
        const char *name;
        bool forceScalar, noAvx512;
    };
    std::vector<Width> widths = {{"scalar", true, false}};
    if (sha256LanesAvx2Active())
        widths.push_back({"x8", false, true});
    if (sha256LanesAvx512Active())
        widths.push_back({"x16", false, false});

    TextTable scaling({"config", "set", "width", "workers", "mode",
                       "wall ms", "sigs/s", "vs within", "groups",
                       "cross jobs"});
    bool first_scaling_set = true;
    for (const Params &p : Params::all()) {
        if (!only_set.empty() && p.name.find(only_set) ==
                                     std::string::npos)
            continue;
        if (!first_scaling_set)
            scaling.addSeparator();
        first_scaling_set = false;
        SphincsPlus scheme(p);
        Rng rng(0x5ca1 + p.n);
        auto kp = scheme.keygenFromSeed(rng.bytes(3 * p.n));
        auto msgs = makeBatch(rng, msgs_per_set);

        for (const Width &w : widths) {
            sha256LanesForceScalar(w.forceScalar);
            sha256LanesDisableAvx512(w.noAvx512);
            for (unsigned workers : {1u, 2u, 4u, 8u, 16u}) {
                double within_rate = 0;
                for (bool cross : {false, true}) {
                    BatchSignerConfig cfg;
                    cfg.workers = workers;
                    cfg.shards = 4;
                    // laneGroup 1 pins the within-signature path;
                    // the cross rows always offer the full group so
                    // the mode split is identical at every width.
                    cfg.laneGroup =
                        cross ? batch::LaneScheduler::maxGroup : 1;
                    BatchSigner signer(p, kp.sk, cfg);
                    auto futures = signer.submitMany(msgs);
                    for (auto &f : futures)
                        f.get();
                    auto st = signer.drain();
                    if (!cross)
                        within_rate = st.sigsPerSec;
                    const std::string label =
                        p.name + "/" + w.name + "/w" +
                        std::to_string(workers) + "/" +
                        (cross ? "cross" : "within");
                    scaling.addRow(
                        {label, p.name, w.name,
                         std::to_string(workers),
                         cross ? "cross" : "within",
                         fmtF(st.wallUs / 1000.0),
                         fmtF(st.sigsPerSec, 1),
                         cross ? fmtX(st.sigsPerSec /
                                      std::max(1.0, within_rate))
                               : fmtX(1.0),
                         std::to_string(st.laneGroups),
                         std::to_string(st.crossSignJobs)});
                }
            }
            sha256LanesForceScalar(false);
            sha256LanesDisableAvx512(false);
        }
    }
    emit(opt,
         "Cross-signature lane fill (workers x width x mode)", scaling,
         "within = coalescing disabled (laneGroup 1, each signature "
         "batches only its own hash work); cross = workers coalesce "
         "queued signatures into lockstep lane groups "
         "(LaneScheduler). Byte-identical output in every cell.");
    return 0;
}
