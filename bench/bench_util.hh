/**
 * @file
 * Shared helpers for the table/figure reproduction binaries: CLI flag
 * handling (--csv), headers that identify the experiment, and an
 * engine cache so a bench constructing several configurations does
 * not re-profile needlessly.
 */

#ifndef HEROSIGN_BENCH_BENCH_UTIL_HH
#define HEROSIGN_BENCH_BENCH_UTIL_HH

#include <charconv>
#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <string>

#include "common/table.hh"
#include "core/engine.hh"

namespace herosign::bench
{

/** Parsed command-line options shared by all bench binaries. */
struct Options
{
    bool csv = false;
    unsigned iters = 0; ///< --iters N; 0 = the bench's own default

    static Options
    parse(int argc, char **argv)
    {
        Options o;
        for (int i = 1; i < argc; ++i) {
            std::string a = argv[i];
            if (a == "--csv") {
                o.csv = true;
            } else if (a == "--iters") {
                // Consume the value only when it parses, so a
                // following flag is not swallowed by a bad value.
                const char *v = i + 1 < argc ? argv[i + 1] : nullptr;
                bool ok = false;
                if (v) {
                    unsigned n = 0;
                    const char *end = v + std::strlen(v);
                    auto [p, ec] = std::from_chars(v, end, n);
                    if (ec == std::errc() && p == end && n > 0) {
                        o.iters = n;
                        ok = true;
                        ++i;
                    }
                }
                if (!ok) {
                    std::cerr << "--iters expects a positive integer, "
                                 "got '"
                              << (v ? v : "") << "'; ignoring\n";
                }
            }
        }
        return o;
    }
};

/** Print the experiment banner and the table (text or CSV). */
inline void
emit(const Options &o, const std::string &title, const TextTable &table,
     const std::string &note = "")
{
    if (o.csv) {
        std::cout << table.renderCsv();
        return;
    }
    std::cout << "== " << title << " ==\n";
    if (!note.empty())
        std::cout << note << "\n";
    std::cout << table.render() << "\n";
}

/** Cache of engines keyed by (set, device, config name). */
class EngineCache
{
  public:
    core::SignEngine &
    get(const sphincs::Params &p, const gpu::DeviceProps &dev,
        const core::EngineConfig &cfg)
    {
        const std::string key = p.name + "/" + dev.name + "/" + cfg.name;
        auto it = cache_.find(key);
        if (it == cache_.end()) {
            it = cache_
                     .emplace(key, std::make_unique<core::SignEngine>(
                                       p, dev, cfg))
                     .first;
        }
        return *it->second;
    }

  private:
    std::map<std::string, std::unique_ptr<core::SignEngine>> cache_;
};

/** KOPS of a kernel at the paper's reference batch of 1024. */
inline double
kernelKops(core::SignEngine &engine, core::KernelKind kind,
           unsigned batch = 1024)
{
    auto timing = engine.kernelTimingAt(kind, batch);
    return batch * 1000.0 / timing.durationUs;
}

} // namespace herosign::bench

#endif // HEROSIGN_BENCH_BENCH_UTIL_HH
