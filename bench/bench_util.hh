/**
 * @file
 * Shared helpers for the table/figure reproduction binaries: CLI flag
 * handling (--csv), headers that identify the experiment, and an
 * engine cache so a bench constructing several configurations does
 * not re-profile needlessly.
 */

#ifndef HEROSIGN_BENCH_BENCH_UTIL_HH
#define HEROSIGN_BENCH_BENCH_UTIL_HH

#include <charconv>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/table.hh"
#include "core/engine.hh"
#include "telemetry/histogram.hh"
#include "tune/measure.hh"
#include "tune/profile.hh"

namespace herosign::bench
{

/**
 * The shared duration-bounded measurement loop: run @p fn repeatedly
 * for ~seconds after a warmup, returning iterations and wall time.
 * This is the same helper the autotuner's TrialRunner times trials
 * with, so bench rows and tuning trials share one timing definition.
 */
using tune::measureFor;
using tune::MeasureResult;

/**
 * q-quantile (0..1) of @p lat_us, in milliseconds — computed through
 * the telemetry LatencyHistogram so bench tables and the live
 * exporters share one percentile definition (exact-bucket upper
 * bound, never under-reporting, ~3% bucket resolution).
 */
inline double
percentileMs(const std::vector<double> &lat_us, double q)
{
    if (lat_us.empty())
        return 0.0;
    telemetry::LatencyHistogram h(1);
    for (double us : lat_us)
        h.record(us <= 0 ? 0
                         : static_cast<uint64_t>(us * 1000.0 + 0.5));
    return static_cast<double>(h.snapshot().percentile(q)) / 1e6;
}

/** Parsed command-line options shared by all bench binaries. */
struct Options
{
    bool csv = false;
    unsigned iters = 0; ///< --iters N; 0 = the bench's own default
    std::string jsonPath; ///< --json <path>; empty = no JSON output

    static Options
    parse(int argc, char **argv)
    {
        Options o;
        for (int i = 1; i < argc; ++i) {
            std::string a = argv[i];
            if (a == "--csv") {
                o.csv = true;
            } else if (a == "--json") {
                // Consume the value only when it is not another flag,
                // matching the --iters convention below.
                const char *v = i + 1 < argc ? argv[i + 1] : nullptr;
                if (v && std::strncmp(v, "--", 2) != 0) {
                    o.jsonPath = v;
                    ++i;
                } else {
                    std::cerr << "--json expects a file path; "
                                 "ignoring\n";
                }
            } else if (a == "--iters") {
                // Consume the value only when it parses, so a
                // following flag is not swallowed by a bad value.
                const char *v = i + 1 < argc ? argv[i + 1] : nullptr;
                bool ok = false;
                if (v) {
                    unsigned n = 0;
                    const char *end = v + std::strlen(v);
                    auto [p, ec] = std::from_chars(v, end, n);
                    if (ec == std::errc() && p == end && n > 0) {
                        o.iters = n;
                        ok = true;
                        ++i;
                    }
                }
                if (!ok) {
                    std::cerr << "--iters expects a positive integer, "
                                 "got '"
                              << (v ? v : "") << "'; ignoring\n";
                }
            }
        }
        return o;
    }
};

/** Escape a string for embedding in a JSON document. */
inline std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/**
 * Accumulates every table a bench emits and rewrites the --json file
 * as one array of {title, note, headers, rows} objects, rows keyed by
 * header — the machine-readable record the BENCH_*.json perf
 * trajectory is built from. Benches are single-threaded; rewriting on
 * each emit keeps the file valid even if the bench aborts later.
 */
inline void
emitJson(const std::string &path, const std::string &title,
         const std::string &note, const TextTable &table)
{
    // Keyed by destination so two --json paths in one process (or a
    // future multi-file bench) cannot cross-contaminate.
    static std::map<std::string, std::vector<std::string>> rendered_by;
    std::vector<std::string> &rendered = rendered_by[path];

    // First table into a file: lead with the host fingerprint, so
    // trend comparisons can tell a regression from a host change
    // (scripts/bench_trend.py warns instead of failing across
    // differing fingerprints). profile_hash records the autotuner
    // profile applied to this process, "" when untuned.
    if (rendered.empty()) {
        const auto fp = tune::HostFingerprint::current("");
        std::string meta;
        meta.append("  {\n    \"title\": \"__meta__\",\n"
                    "    \"fingerprint\": {\"cpu\": \"");
        meta.append(jsonEscape(fp.cpuModel));
        meta.append("\", \"cores\": ");
        meta.append(std::to_string(fp.cores));
        meta.append(", \"dispatch\": \"");
        meta.append(jsonEscape(fp.dispatch));
        meta.append("\", \"profile_hash\": \"");
        meta.append(jsonEscape(tune::activeProfileHash()));
        meta.append("\"}\n  }");
        rendered.push_back(std::move(meta));
    }

    // Built with append() chains: GCC 12 raises a -Wrestrict false
    // positive on nested operator+ of temporaries here.
    const auto &headers = table.headers();
    std::string obj;
    obj.append("  {\n    \"title\": \"");
    obj.append(jsonEscape(title));
    obj.append("\",\n    \"note\": \"");
    obj.append(jsonEscape(note));
    obj.append("\",\n    \"headers\": [");
    for (size_t c = 0; c < headers.size(); ++c) {
        if (c)
            obj.append(", ");
        obj.append("\"");
        obj.append(jsonEscape(headers[c]));
        obj.append("\"");
    }
    obj.append("],\n    \"rows\": [\n");
    bool first_row = true;
    for (const auto &row : table.rawRows()) {
        if (row.empty())
            continue; // separator
        if (!first_row)
            obj.append(",\n");
        first_row = false;
        obj.append("      {");
        for (size_t c = 0; c < headers.size() && c < row.size(); ++c) {
            if (c)
                obj.append(", ");
            obj.append("\"");
            obj.append(jsonEscape(headers[c]));
            obj.append("\": \"");
            obj.append(jsonEscape(row[c]));
            obj.append("\"");
        }
        obj.append("}");
    }
    obj.append("\n    ]\n  }");
    rendered.push_back(std::move(obj));

    std::ofstream f(path, std::ios::trunc);
    if (!f) {
        std::cerr << "--json: cannot write '" << path << "'\n";
        return;
    }
    f << "[\n";
    for (size_t i = 0; i < rendered.size(); ++i)
        f << rendered[i] << (i + 1 < rendered.size() ? ",\n" : "\n");
    f << "]\n";
}

/** Print the experiment banner and the table (text, CSV, JSON). */
inline void
emit(const Options &o, const std::string &title, const TextTable &table,
     const std::string &note = "")
{
    if (!o.jsonPath.empty())
        emitJson(o.jsonPath, title, note, table);
    if (o.csv) {
        std::cout << table.renderCsv();
        return;
    }
    std::cout << "== " << title << " ==\n";
    if (!note.empty())
        std::cout << note << "\n";
    std::cout << table.render() << "\n";
}

/** Cache of engines keyed by (set, device, config name). */
class EngineCache
{
  public:
    core::SignEngine &
    get(const sphincs::Params &p, const gpu::DeviceProps &dev,
        const core::EngineConfig &cfg)
    {
        const std::string key = p.name + "/" + dev.name + "/" + cfg.name;
        auto it = cache_.find(key);
        if (it == cache_.end()) {
            it = cache_
                     .emplace(key, std::make_unique<core::SignEngine>(
                                       p, dev, cfg))
                     .first;
        }
        return *it->second;
    }

  private:
    std::map<std::string, std::unique_ptr<core::SignEngine>> cache_;
};

/** KOPS of a kernel at the paper's reference batch of 1024. */
inline double
kernelKops(core::SignEngine &engine, core::KernelKind kind,
           unsigned batch = 1024)
{
    auto timing = engine.kernelTimingAt(kind, batch);
    return batch * 1000.0 / timing.durationUs;
}

} // namespace herosign::bench

#endif // HEROSIGN_BENCH_BENCH_UTIL_HH
