/**
 * @file
 * Table VI: shared-memory bank conflicts during the reduction
 * process, baseline layout vs the padded even-odd layout, for
 * FORS_Sign and TREE_Sign (one block, i.e. one message).
 */

#include "bench_util.hh"

using namespace herosign;
using namespace herosign::bench;
using core::EngineConfig;
using sphincs::Params;

int
main(int argc, char **argv)
{
    Options o = Options::parse(argc, argv);
    EngineCache cache;
    const auto dev = gpu::DeviceProps::rtx4090();

    struct PaperRow
    {
        const Params *p;
        uint64_t fors_base_ld, fors_base_st, tree_base_ld,
            tree_base_st;
    };
    // Paper baseline magnitudes (padded columns are ~0 / 1).
    const PaperRow paper[] = {
        {&Params::sphincs128f(), 22099968, 12435456, 1568, 704},
        {&Params::sphincs192f(), 64152, 30096, 1203, 408},
        {&Params::sphincs256f(), 400960, 192640, 11905, 5377},
    };

    TextTable t({"Set", "Kernel", "Base Ld", "Base St", "Padded Ld",
                 "Padded St", "paper Base Ld", "paper Base St"});
    for (const auto &row : paper) {
        auto &base = cache.get(*row.p, dev, EngineConfig::baseline());
        auto &hero = cache.get(*row.p, dev, EngineConfig::hero());

        const auto &bf = base.kernels()[0].profile.counters;
        const auto &hf = hero.kernels()[0].profile.counters;
        t.addRow({row.p->name, "FORS_Sign",
                  fmtGrouped(bf.sharedLoadConflicts),
                  fmtGrouped(bf.sharedStoreConflicts),
                  fmtGrouped(hf.sharedLoadConflicts),
                  fmtGrouped(hf.sharedStoreConflicts),
                  fmtGrouped(row.fors_base_ld),
                  fmtGrouped(row.fors_base_st)});

        const auto &bt = base.kernels()[1].profile.counters;
        const auto &ht = hero.kernels()[1].profile.counters;
        t.addRow({row.p->name, "TREE_Sign",
                  fmtGrouped(bt.sharedLoadConflicts),
                  fmtGrouped(bt.sharedStoreConflicts),
                  fmtGrouped(ht.sharedLoadConflicts),
                  fmtGrouped(ht.sharedStoreConflicts),
                  fmtGrouped(row.tree_base_ld),
                  fmtGrouped(row.tree_base_st)});
        t.addSeparator();
    }
    emit(o, "Table VI: bank conflicts in the reduction (block = 1)", t,
         "Shape: the padded even-odd layout drives conflicts to ~0; "
         "absolute baseline magnitudes differ because Nsight counts "
         "replays across the whole profiled batch.");
    return 0;
}
