/**
 * @file
 * Ablation bench for the design choices DESIGN.md calls out:
 *   (a) fusion depth F (is the tuner's choice actually best?),
 *   (b) Relax-FORS on/off at 256f,
 *   (c) padded vs naive layout in isolation,
 *   (d) hybrid memory on/off in isolation.
 * Reports FORS_Sign KOPS on the simulated RTX 4090 at block = 1024.
 */

#include "bench_util.hh"
#include "core/tuning.hh"

using namespace herosign;
using namespace herosign::bench;
using core::EngineConfig;
using core::ForsConfig;
using core::KernelKind;
using sphincs::Params;

namespace
{

EngineConfig
withFors(EngineConfig base, unsigned trees, unsigned fused,
         unsigned threads, bool relax)
{
    base.autoTune = false;
    base.forsConfig = ForsConfig{trees, fused, threads, relax, 1};
    base.name += "/N" + std::to_string(trees) + "F" +
                 std::to_string(fused) + (relax ? "R" : "");
    return base;
}

} // namespace

int
main(int argc, char **argv)
{
    Options o = Options::parse(argc, argv);
    EngineCache cache;
    const auto dev = gpu::DeviceProps::rtx4090();

    // (a) Fusion depth sweep at 128f: Ntree = 11, F in 1..3 plus the
    // MMTP-style Ntree = 16 alternative.
    {
        const Params &p = Params::sphincs128f();
        TextTable t({"Config", "T_set", "F", "FORS KOPS"});
        struct Cand
        {
            unsigned trees, fused, threads;
        };
        const Cand cands[] = {
            {11, 1, 704}, {11, 2, 704}, {11, 3, 704}, {16, 1, 1024},
            {16, 2, 1024}, {8, 4, 512},
        };
        for (const auto &c : cands) {
            auto cfg = withFors(EngineConfig::hero(), c.trees, c.fused,
                                c.threads, false);
            auto &e = cache.get(p, dev, cfg);
            t.addRow({"Ntree=" + std::to_string(c.trees),
                      std::to_string(c.threads),
                      std::to_string(c.fused),
                      fmtF(kernelKops(e, KernelKind::ForsSign), 1)});
        }
        auto &tuned = cache.get(p, dev, EngineConfig::hero());
        t.addRow({"auto-tuned (Algorithm 1)",
                  std::to_string(tuned.forsGeometry().threadsPerSet),
                  std::to_string(tuned.forsGeometry().fusedSets),
                  fmtF(kernelKops(tuned, KernelKind::ForsSign), 1)});
        emit(o, "Ablation (a): fusion depth, 128f", t,
             "Fusion depth F increases throughput at fixed Ntree. "
             "Algorithm 1 minimizes sync points; the paper notes the "
             "final configuration is then selected among near-optimal "
             "candidates by empirical profiling — the occupancy-"
             "favoring Ntree=8/F=4 alternative shown here is exactly "
             "such a candidate.");
    }

    // (b) Relax-FORS at 256f.
    {
        const Params &p = Params::sphincs256f();
        TextTable t({"Config", "FORS KOPS", "Smem/block KB"});
        auto plain = withFors(EngineConfig::hero(), 2, 1, 1024, false);
        auto relax = withFors(EngineConfig::hero(), 4, 1, 1024, true);
        auto &ep = cache.get(p, dev, plain);
        auto &er = cache.get(p, dev, relax);
        t.addRow({"one thread per leaf (2 trees)",
                  fmtF(kernelKops(ep, KernelKind::ForsSign), 1),
                  fmtF(ep.kernels()[0].smemBytes / 1024.0, 1)});
        t.addRow({"Relax-FORS (4 trees, half smem)",
                  fmtF(kernelKops(er, KernelKind::ForsSign), 1),
                  fmtF(er.kernels()[0].smemBytes / 1024.0, 1)});
        emit(o, "Ablation (b): Relax-FORS at 256f", t,
             "Paper SIII-B4: trading register buffers for halved "
             "shared memory raises parallelism.");
    }

    // (c) Padding and (d) hybrid memory, each toggled in isolation
    // from the full HERO configuration.
    {
        TextTable t({"Set", "full HERO", "no FreeBank", "no HybridME"});
        for (const Params &p : Params::all()) {
            auto no_pad = EngineConfig::hero();
            no_pad.freeBank = false;
            no_pad.name += "/nopad";
            auto no_hybrid = EngineConfig::hero();
            no_hybrid.hybridMem = false;
            no_hybrid.name += "/nohyb";
            auto &full = cache.get(p, dev, EngineConfig::hero());
            auto &np = cache.get(p, dev, no_pad);
            auto &nh = cache.get(p, dev, no_hybrid);
            t.addRow({p.name,
                      fmtF(kernelKops(full, KernelKind::ForsSign), 1),
                      fmtF(kernelKops(np, KernelKind::ForsSign), 1),
                      fmtF(kernelKops(nh, KernelKind::ForsSign), 1)});
        }
        emit(o, "Ablation (c)/(d): FreeBank and HybridME in isolation",
             t,
             "Removing either optimization from the full stack should "
             "cost throughput on every set.");
    }
    return 0;
}
