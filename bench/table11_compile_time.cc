/**
 * @file
 * Table XI: average compilation time of the baseline (runtime
 * branching) vs HERO-Sign (compile-time constexpr-if branching),
 * from the documented compile-cost model.
 */

#include "bench_util.hh"
#include "gpusim/compile_model.hh"

using namespace herosign;
using namespace herosign::bench;
using gpu::compileSeconds;
using gpu::CompileStrategy;

int
main(int argc, char **argv)
{
    Options o = Options::parse(argc, argv);

    struct PaperRow
    {
        const char *set;
        double base, hero;
    };
    const PaperRow paper[] = {
        {"SPHINCS+-128f", 18.68, 14.61},
        {"SPHINCS+-192f", 23.25, 21.72},
        {"SPHINCS+-256f", 24.19, 19.18},
    };

    TextTable t({"Set", "Baseline s", "HERO-Sign s", "Speedup",
                 "paper Base", "paper HERO", "paper Speedup"});
    for (const auto &row : paper) {
        auto kernels = gpu::sphincsKernelSizes(row.set);
        const double base = compileSeconds(
            CompileStrategy::BaselineRuntimeBranch, kernels);
        const double hero = compileSeconds(
            CompileStrategy::CompileTimeBranch, kernels);
        t.addRow({row.set, fmtF(base), fmtF(hero), fmtX(base / hero),
                  fmtF(row.base), fmtF(row.hero),
                  fmtX(row.base / row.hero)});
    }
    emit(o, "Table XI: compilation time, baseline vs compile-time "
            "branching (model)",
         t,
         "Mechanism: the PTX branch shrinks the optimizer-visible "
         "code, outweighing template instantiation overhead "
         "(DESIGN.md documents this as an analytic model).");
    return 0;
}
