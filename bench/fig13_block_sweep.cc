/**
 * @file
 * Figure 13: throughput of Baseline vs HERO-Sign (with graph) under
 * varying block sizes (messages per batch) from 2 to 1024.
 */

#include "bench_util.hh"

using namespace herosign;
using namespace herosign::bench;
using core::EngineConfig;
using sphincs::Params;

int
main(int argc, char **argv)
{
    Options o = Options::parse(argc, argv);
    EngineCache cache;
    const auto dev = gpu::DeviceProps::rtx4090();

    const unsigned sizes[] = {2, 4, 8, 16, 32, 64, 128, 256, 512, 1024};

    for (const Params &p : Params::all()) {
        auto &base = cache.get(p, dev, EngineConfig::baseline());
        auto &hero = cache.get(p, dev, EngineConfig::hero());

        TextTable t({"Block size", "Baseline KOPS", "HERO KOPS",
                     "Speedup"});
        for (unsigned bs : sizes) {
            // One launch chunk per batch at small sizes, the default
            // chunking at large ones.
            const unsigned chunk = std::min(bs, 512u);
            auto rb = base.signBatchTiming(bs, chunk);
            auto rh = hero.signBatchTiming(bs, chunk);
            t.addRow({std::to_string(bs), fmtF(rb.kops, 2),
                      fmtF(rh.kops, 2), fmtX(rh.kops / rb.kops)});
        }
        emit(o, "Figure 13: block-size sensitivity, " + p.name, t,
             "Paper shape: largest speedups at small block sizes "
             "(3.1x / 2.9x / 2.6x around 2-64), narrowing as the "
             "device saturates.");
    }
    return 0;
}
