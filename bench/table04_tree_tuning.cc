/**
 * @file
 * Table IV: Auto Tree Tuning search results — shared-memory
 * utilization, thread utilization and the fused-set count F — plus
 * the top of the candidate set the search produced.
 */

#include "bench_util.hh"
#include "core/tuning.hh"

using namespace herosign;
using namespace herosign::bench;
using core::autoTreeTuning;
using core::treeTuningSearch;
using core::TuningInputs;
using sphincs::Params;

int
main(int argc, char **argv)
{
    Options o = Options::parse(argc, argv);
    const auto dev = gpu::DeviceProps::rtx4090();

    struct PaperRow
    {
        const Params *p;
        double smem, threads;
        unsigned f;
    };
    const PaperRow paper[] = {
        {&Params::sphincs128f(), 0.6875, 0.6875, 3},
        {&Params::sphincs192f(), 0.75, 0.75, 2},
    };

    TextTable t({"Set", "Smem Util", "Thread Util", "F", "T_set",
                 "Ntree", "sync", "relax", "paper Smem",
                 "paper Thread", "paper F"});
    for (const auto &row : paper) {
        auto best = autoTreeTuning(*row.p, dev);
        t.addRow({row.p->name, fmtF(best.smemUtil, 4),
                  fmtF(best.threadUtil, 4),
                  std::to_string(best.fusedSets),
                  std::to_string(best.threadsPerSet),
                  std::to_string(best.treesPerSet),
                  fmtF(best.syncPoints, 1), best.relax ? "yes" : "no",
                  fmtF(row.smem, 4), fmtF(row.threads, 4),
                  std::to_string(row.f)});
    }
    // 256f has no Table IV row; report the Relax-FORS result too.
    auto best256 = autoTreeTuning(Params::sphincs256f(), dev);
    t.addRow({"SPHINCS+-256f", fmtF(best256.smemUtil, 4),
              fmtF(best256.threadUtil, 4),
              std::to_string(best256.fusedSets),
              std::to_string(best256.threadsPerSet),
              std::to_string(best256.treesPerSet),
              fmtF(best256.syncPoints, 1),
              best256.relax ? "yes" : "no", "-", "-", "-"});
    emit(o, "Table IV: Tree Tuning search results (RTX 4090)", t);

    // The near-optimal candidate set for 128f (Algorithm 1 output).
    TuningInputs in;
    in.forsTrees = 33;
    in.forsHeight = 6;
    in.n = 16;
    in.smemPerBlock = 48 * 1024;
    auto cands = treeTuningSearch(in);
    TextTable c({"rank", "T_set", "Ntree", "F", "U_T", "U_S", "sync"});
    for (size_t i = 0; i < cands.size() && i < 8; ++i) {
        const auto &x = cands[i];
        c.addRow({std::to_string(i + 1),
                  std::to_string(x.threadsPerSet),
                  std::to_string(x.treesPerSet),
                  std::to_string(x.fusedSets), fmtF(x.threadUtil, 4),
                  fmtF(x.smemUtil, 4), fmtF(x.syncPoints, 1)});
    }
    emit(o, "Algorithm 1 candidate set (128f, top 8)", c);
    return 0;
}
