/**
 * @file
 * Table V: profiling-driven PTX branch selection per kernel per
 * parameter set on the RTX 4090 (block size 1024). A check mark means
 * the PTX branch outperformed native in the model's profiling pass.
 */

#include "bench_util.hh"

using namespace herosign;
using namespace herosign::bench;
using core::EngineConfig;
using sphincs::Params;

int
main(int argc, char **argv)
{
    Options o = Options::parse(argc, argv);
    EngineCache cache;
    const auto dev = gpu::DeviceProps::rtx4090();

    struct PaperRow
    {
        const Params *p;
        const char *fors, *tree, *wots;
    };
    const PaperRow paper[] = {
        {&Params::sphincs128f(), "PTX", "native", "native"},
        {&Params::sphincs192f(), "PTX", "native", "native"},
        {&Params::sphincs256f(), "PTX", "PTX", "PTX"},
    };

    auto mark = [](Sha256Variant v) {
        return v == Sha256Variant::Ptx ? std::string("PTX")
                                       : std::string("native");
    };

    TextTable t({"Set", "FORS_Sign", "TREE_Sign", "WOTS+_Sign",
                 "paper FORS", "paper TREE", "paper WOTS+"});
    for (const auto &row : paper) {
        auto &engine = cache.get(*row.p, dev, EngineConfig::hero());
        const auto &ks = engine.kernels();
        t.addRow({row.p->name, mark(ks[0].variant), mark(ks[1].variant),
                  mark(ks[2].variant), row.fors, row.tree, row.wots});
    }
    emit(o, "Table V: PTX branch selection (RTX 4090, block = 1024)",
         t,
         "Selection is profiling-driven; the pattern emerges from "
         "register pressure vs per-hash instruction cost.");
    return 0;
}
