/**
 * @file
 * Table X: CPU SIMD-lane comparison. The paper rows are literature
 * constants; the measured rows run this repository's own signer on
 * the host machine three times — with the lane engine forced onto the
 * portable scalar backend (the pre-batching reference), pinned to the
 * 8-lane AVX2 path (AVX-512 disabled), and on the full dispatch
 * (16-lane AVX-512 where the host supports it) — plus the resulting
 * single-thread speedups. Signatures are byte-identical across all
 * three backends.
 *
 * A second table scales worker threads (1/2/4/8/16) at each lane
 * width through the BatchSigner's cross-signature lane scheduler —
 * the row to hold against the paper's 16-thread AVX2 line
 * (0.828/0.560/0.356 KOPS). On a host with fewer cores the thread
 * rows flatten; the lane-width split remains.
 *
 * Flags: --iters N (signatures per measurement, default 3), --csv,
 * --json <path> (the machine-readable record the BENCH_*.json trend
 * snapshots and scripts/bench_trend.py consume).
 */

#include <chrono>
#include <thread>

#include "batch/batch_signer.hh"
#include "bench_util.hh"
#include "common/random.hh"
#include "hash/sha256xN.hh"
#include "sphincs/sphincs.hh"

using namespace herosign;
using namespace herosign::bench;
using sphincs::Params;
using sphincs::SphincsPlus;

namespace
{

/** KOPS of a threaded cross-signature BatchSigner run. */
double
measureThreadedKops(const Params &p, bool force_scalar, bool no_avx512,
                    unsigned workers, unsigned msgs)
{
    using batch::BatchSigner;
    using batch::BatchSignerConfig;

    sphincs::SphincsPlus scheme(p);
    Rng rng(1);
    auto kp = scheme.keygen(rng);
    std::vector<ByteVec> batch;
    batch.reserve(msgs);
    for (unsigned i = 0; i < msgs; ++i)
        batch.push_back(rng.bytes(64));

    sha256LanesForceScalar(force_scalar);
    sha256LanesDisableAvx512(no_avx512);
    BatchSignerConfig cfg;
    cfg.workers = workers;
    cfg.shards = 4;
    BatchSigner signer(p, kp.sk, cfg);
    {
        auto warm = signer.submit(rng.bytes(64));
        warm.get();
        signer.drain();
    }
    auto futures = signer.submitMany(batch);
    for (auto &f : futures)
        f.get();
    auto st = signer.drain();
    sha256LanesForceScalar(false);
    sha256LanesDisableAvx512(false);
    return st.sigsPerSec / 1000.0; // KOPS
}

double
measureKops(const Params &p, bool force_scalar, bool no_avx512,
            unsigned iters)
{
    SphincsPlus scheme(p);
    Rng rng(1);
    auto kp = scheme.keygen(rng);
    ByteVec msg = rng.bytes(64);

    sha256LanesForceScalar(force_scalar);
    sha256LanesDisableAvx512(no_avx512);
    scheme.sign(msg, kp.sk); // warm-up
    auto t0 = std::chrono::steady_clock::now();
    for (unsigned i = 0; i < iters; ++i)
        scheme.sign(msg, kp.sk);
    auto t1 = std::chrono::steady_clock::now();
    sha256LanesForceScalar(false);
    sha256LanesDisableAvx512(false);

    const double us =
        std::chrono::duration<double, std::micro>(t1 - t0).count() /
        iters;
    return 1000.0 / us; // KOPS
}

} // namespace

int
main(int argc, char **argv)
{
    Options o = Options::parse(argc, argv);
    const unsigned iters = o.iters ? o.iters : 3;

    struct Literature
    {
        const char *set;
        double single, threads16;
    };
    const Literature lit[] = {
        {"SPHINCS+-128f", 0.143, 0.828},
        {"SPHINCS+-192f", 0.087, 0.560},
        {"SPHINCS+-256f", 0.044, 0.356},
    };
    const Params *sets[] = {&Params::sphincs128f(),
                            &Params::sphincs192f(),
                            &Params::sphincs256f()};

    // Active (not merely supported): the HEROSIGN_DISABLE_* knobs
    // must not mislabel narrower-path numbers as a SIMD row.
    const bool have_avx2 = sha256LanesAvx2Active();
    const bool have_avx512 = sha256LanesAvx512Active();
    double scalar[3], x8[3], x16[3];
    for (int i = 0; i < 3; ++i) {
        scalar[i] = measureKops(*sets[i], true, false, iters);
        x8[i] = have_avx2 ? measureKops(*sets[i], false, true, iters)
                          : 0.0;
        x16[i] = have_avx512
                     ? measureKops(*sets[i], false, false, iters)
                     : 0.0;
    }

    TextTable t({"Implementation", "128f KOPS", "192f KOPS",
                 "256f KOPS"});
    t.addRow({"AVX2 single thread (paper)", fmtF(lit[0].single, 3),
              fmtF(lit[1].single, 3), fmtF(lit[2].single, 3)});
    t.addRow({"AVX2 16 threads (paper)", fmtF(lit[0].threads16, 3),
              fmtF(lit[1].threads16, 3), fmtF(lit[2].threads16, 3)});
    t.addRow({"this repo, scalar lanes (measured)", fmtF(scalar[0], 3),
              fmtF(scalar[1], 3), fmtF(scalar[2], 3)});
    if (have_avx2) {
        t.addRow({"this repo, x8 AVX2 (measured)", fmtF(x8[0], 3),
                  fmtF(x8[1], 3), fmtF(x8[2], 3)});
        t.addRow({"x8 AVX2 speedup vs scalar",
                  fmtF(x8[0] / scalar[0], 2), fmtF(x8[1] / scalar[1], 2),
                  fmtF(x8[2] / scalar[2], 2)});
    } else {
        t.addRow({"this repo, x8 AVX2 (measured)", "n/a", "n/a",
                  "n/a"});
    }
    if (have_avx512) {
        t.addRow({"this repo, x16 AVX-512 (measured)", fmtF(x16[0], 3),
                  fmtF(x16[1], 3), fmtF(x16[2], 3)});
        t.addRow({"x16 AVX-512 speedup vs scalar",
                  fmtF(x16[0] / scalar[0], 2),
                  fmtF(x16[1] / scalar[1], 2),
                  fmtF(x16[2] / scalar[2], 2)});
        if (have_avx2) {
            t.addRow({"x16 speedup vs x8", fmtF(x16[0] / x8[0], 2),
                      fmtF(x16[1] / x8[1], 2), fmtF(x16[2] / x8[2], 2)});
        }
    } else {
        t.addRow({"this repo, x16 AVX-512 (measured)", "n/a", "n/a",
                  "n/a"});
    }
    emit(o, "Table X: CPU comparison (KOPS)", t,
         "The paper's point: even multi-threaded AVX2 trails the GPU "
         "by two orders of magnitude. The measured rows compare this "
         "repo's batched signer on scalar vs 8-lane AVX2 vs 16-lane "
         "AVX-512 hash lanes.");

    // --- Thread scaling through the cross-signature scheduler -----
    struct Backend
    {
        const char *name;
        bool forceScalar, noAvx512;
    };
    std::vector<Backend> backends = {{"scalar", true, false}};
    if (have_avx2)
        backends.push_back({"x8 AVX2", false, true});
    if (have_avx512)
        backends.push_back({"x16 AVX-512", false, false});

    const unsigned msgs = o.iters ? o.iters * 4 : 16;
    TextTable ts({"Configuration", "128f KOPS", "192f KOPS",
                  "256f KOPS"});
    ts.addRow({"AVX2 16 threads (paper)", fmtF(lit[0].threads16, 3),
               fmtF(lit[1].threads16, 3), fmtF(lit[2].threads16, 3)});
    for (const Backend &b : backends) {
        for (unsigned threads : {1u, 2u, 4u, 8u, 16u}) {
            double kops[3];
            for (int i = 0; i < 3; ++i)
                kops[i] = measureThreadedKops(*sets[i], b.forceScalar,
                                              b.noAvx512, threads,
                                              msgs);
            ts.addRow({std::string(b.name) + ", " +
                           std::to_string(threads) +
                           (threads == 1 ? " thread" : " threads"),
                       fmtF(kops[0], 3), fmtF(kops[1], 3),
                       fmtF(kops[2], 3)});
        }
    }
    emit(o, "Table X+: thread scaling (KOPS, cross-signature batching)",
         ts,
         "BatchSigner workers coalescing queued signatures into "
         "lockstep lane groups; hardware threads on this host: " +
             std::to_string(std::thread::hardware_concurrency()) +
             ". Hold the 16-thread rows against the paper's AVX2 "
             "16-thread line.");
    return 0;
}
