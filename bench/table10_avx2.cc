/**
 * @file
 * Table X: CPU AVX2 comparison. The AVX2 rows are the paper's
 * literature constants; as an honest extra row we measure this
 * repository's own scalar CPU reference implementation on the host
 * machine.
 */

#include <chrono>

#include "bench_util.hh"
#include "common/random.hh"
#include "sphincs/sphincs.hh"

using namespace herosign;
using namespace herosign::bench;
using sphincs::Params;
using sphincs::SphincsPlus;

namespace
{

double
measureScalarKops(const Params &p)
{
    SphincsPlus scheme(p);
    Rng rng(1);
    auto kp = scheme.keygen(rng);
    ByteVec msg = rng.bytes(64);

    // Warm-up + measure a few signatures.
    auto t0 = std::chrono::steady_clock::now();
    const int iters = 3;
    for (int i = 0; i < iters; ++i)
        scheme.sign(msg, kp.sk);
    auto t1 = std::chrono::steady_clock::now();
    const double us =
        std::chrono::duration<double, std::micro>(t1 - t0).count() /
        iters;
    return 1000.0 / us; // KOPS
}

} // namespace

int
main(int argc, char **argv)
{
    Options o = Options::parse(argc, argv);

    struct Literature
    {
        const char *set;
        double single, threads16;
    };
    const Literature lit[] = {
        {"SPHINCS+-128f", 0.143, 0.828},
        {"SPHINCS+-192f", 0.087, 0.560},
        {"SPHINCS+-256f", 0.044, 0.356},
    };

    TextTable t({"Implementation", "128f KOPS", "192f KOPS",
                 "256f KOPS"});
    t.addRow({"AVX2 single thread (paper)", fmtF(lit[0].single, 3),
              fmtF(lit[1].single, 3), fmtF(lit[2].single, 3)});
    t.addRow({"AVX2 16 threads (paper)", fmtF(lit[0].threads16, 3),
              fmtF(lit[1].threads16, 3), fmtF(lit[2].threads16, 3)});
    t.addRow({"this repo, scalar reference (measured)",
              fmtF(measureScalarKops(Params::sphincs128f()), 3),
              fmtF(measureScalarKops(Params::sphincs192f()), 3),
              fmtF(measureScalarKops(Params::sphincs256f()), 3)});
    emit(o, "Table X: CPU comparison (KOPS)", t,
         "The paper's point: even multi-threaded AVX2 trails the GPU "
         "by two orders of magnitude.");
    return 0;
}
