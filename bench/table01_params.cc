/**
 * @file
 * Table I: the SPHINCS+-f parameter sets, plus the derived quantities
 * the paper quotes in the text (hypertree leaves, FORS leaves, hashes
 * per wots_gen_leaf, signature sizes).
 */

#include "bench_util.hh"
#include "sphincs/params.hh"

using namespace herosign;
using namespace herosign::bench;
using sphincs::Params;

int
main(int argc, char **argv)
{
    Options o = Options::parse(argc, argv);

    TextTable t({"Scheme", "n", "h", "d", "log(t)", "k", "w",
                 "sig bytes", "HT leaves", "FORS leaves",
                 "hash/wots_leaf"});
    for (const Params &p : Params::all()) {
        t.addRow({p.name, std::to_string(p.n),
                  std::to_string(p.fullHeight),
                  std::to_string(p.layers),
                  std::to_string(p.forsHeight),
                  std::to_string(p.forsTrees), std::to_string(p.wotsW),
                  std::to_string(p.sigBytes()),
                  std::to_string(p.layers * p.treeLeaves()),
                  std::to_string(p.forsTotalLeaves()),
                  std::to_string(p.hashesPerWotsLeaf())});
    }
    emit(o, "Table I: SPHINCS+-f parameter sets", t,
         "Paper anchors: 17088-byte 128f signatures; 176/176/272 "
         "hypertree leaves; 2112/8448/17920 FORS leaves; 560/816/1072 "
         "hashes per wots_gen_leaf.");
    return 0;
}
