/**
 * @file
 * Table II: time breakdown (ms) of the TCAS-SPHINCSp baseline for a
 * 1024-message batch on the RTX 4090 — FORS, idle, MSS (TREE) and
 * WOTS+ busy time from the simulated timeline.
 */

#include "bench_util.hh"

using namespace herosign;
using namespace herosign::bench;
using core::EngineConfig;
using sphincs::Params;

int
main(int argc, char **argv)
{
    Options o = Options::parse(argc, argv);
    EngineCache cache;
    const auto dev = gpu::DeviceProps::rtx4090();

    struct PaperRow
    {
        const Params *p;
        double fors, idle, mss, wots;
    };
    const PaperRow paper[] = {
        {&Params::sphincs128f(), 1.89, 2.27, 6.57, 0.93},
        {&Params::sphincs192f(), 7.75, 2.31, 10.06, 1.33},
        {&Params::sphincs256f(), 13.25, 2.29, 26.55, 1.47},
    };

    TextTable t({"Set", "FORS ms", "Idle ms", "MSS ms", "WOTS+ ms",
                 "paper FORS", "paper Idle", "paper MSS",
                 "paper WOTS+"});
    for (const auto &row : paper) {
        auto &engine = cache.get(*row.p, dev, EngineConfig::baseline());
        auto batch = engine.signBatchTiming(1024);
        // Kernel time as Nsight would attribute it: each kernel's
        // duration at the full batch; idle is the remainder of the
        // makespan (launch gaps + dependency stalls).
        const double fors_ms =
            engine.kernelTimingAt(core::KernelKind::ForsSign, 1024)
                .durationUs /
            1000.0;
        const double mss_ms =
            engine.kernelTimingAt(core::KernelKind::TreeSign, 1024)
                .durationUs /
            1000.0;
        const double wots_ms =
            engine.kernelTimingAt(core::KernelKind::WotsSign, 1024)
                .durationUs /
            1000.0;
        const double idle_ms =
            std::max(0.0, batch.makespanUs / 1000.0 -
                              (fors_ms + mss_ms + wots_ms));
        t.addRow({row.p->name, fmtF(fors_ms), fmtF(idle_ms),
                  fmtF(mss_ms), fmtF(wots_ms), fmtF(row.fors),
                  fmtF(row.idle), fmtF(row.mss), fmtF(row.wots)});
    }
    emit(o, "Table II: TCAS-SPHINCSp time breakdown (1024 messages, "
            "RTX 4090)",
         t,
         "Shape to reproduce: MSS dominates, FORS second, WOTS+ "
         "lightest, with non-negligible idle time.");
    return 0;
}
