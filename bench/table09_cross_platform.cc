/**
 * @file
 * Table IX: cross-platform comparison of SPHINCS+ variants. The FPGA
 * and ASIC rows are literature constants (as in the paper itself);
 * the HERO-Sign rows are measured on the simulated RTX 4090. PPS
 * (power per signature) uses the 450 W board power of the RTX 4090.
 */

#include "bench_util.hh"

using namespace herosign;
using namespace herosign::bench;
using core::EngineConfig;
using sphincs::Params;

int
main(int argc, char **argv)
{
    Options o = Options::parse(argc, argv);
    EngineCache cache;
    const auto dev = gpu::DeviceProps::rtx4090();
    constexpr double board_watts = 450.0;

    struct Literature
    {
        const char *set;
        double paper_hero, berthet, amiet, sphincslet;
    };
    const Literature lit[] = {
        {"SPHINCS+-128f", 119.47, 0.016, 0.99, 0.52},
        {"SPHINCS+-192f", 65.43, -1, 0.85, 0.20},
        {"SPHINCS+-256f", 33.88, 0.00057, 0.40, 0.10},
    };

    TextTable t({"Variant", "HERO KOPS (measured)", "PPS W",
                 "paper HERO", "Berthet FPGA", "Amiet FPGA",
                 "SPHINCSLET ASIC"});
    int i = 0;
    for (const Params &p : Params::all()) {
        auto &hero = cache.get(p, dev, EngineConfig::hero());
        auto batch = hero.signBatchTiming(1024);
        const double pps = board_watts / (batch.kops * 1000.0);
        t.addRow({p.name, fmtF(batch.kops, 2), fmtF(pps, 4),
                  fmtF(lit[i].paper_hero, 2),
                  lit[i].berthet < 0 ? "n/a" : fmtF(lit[i].berthet, 5),
                  fmtF(lit[i].amiet, 2), fmtF(lit[i].sphincslet, 2)});
        ++i;
    }
    emit(o, "Table IX: cross-platform throughput (KOPS)", t,
         "FPGA/ASIC columns are the paper's literature constants "
         "(Berthet et al. SHA-256, Amiet et al. SHAKE-256, "
         "SPHINCSLET SHA-256). Shape: the GPU leads by 2-3 orders of "
         "magnitude.");
    return 0;
}
