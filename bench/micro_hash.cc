/**
 * @file
 * google-benchmark micro benches for the hash substrate: native vs
 * PTX-flavoured SHA-256, HMAC and MGF1.
 */

#include <benchmark/benchmark.h>

#include "common/random.hh"
#include "hash/hmac.hh"
#include "hash/mgf1.hh"
#include "hash/sha256.hh"
#include "hash/sha256xN.hh"
#include "hash/sha512.hh"

using namespace herosign;

namespace
{

void
BM_Sha256Native(benchmark::State &state)
{
    Rng rng(1);
    ByteVec data = rng.bytes(state.range(0));
    for (auto _ : state) {
        auto d = Sha256::digest(data, Sha256Variant::Native);
        benchmark::DoNotOptimize(d);
    }
    state.SetBytesProcessed(state.iterations() * data.size());
}

void
BM_Sha256Ptx(benchmark::State &state)
{
    Rng rng(1);
    ByteVec data = rng.bytes(state.range(0));
    for (auto _ : state) {
        auto d = Sha256::digest(data, Sha256Variant::Ptx);
        benchmark::DoNotOptimize(d);
    }
    state.SetBytesProcessed(state.iterations() * data.size());
}

void
BM_Sha512(benchmark::State &state)
{
    Rng rng(1);
    ByteVec data = rng.bytes(state.range(0));
    for (auto _ : state) {
        auto d = Sha512::digest(data);
        benchmark::DoNotOptimize(d);
    }
    state.SetBytesProcessed(state.iterations() * data.size());
}

void
BM_HmacSha256(benchmark::State &state)
{
    Rng rng(2);
    ByteVec key = rng.bytes(32);
    ByteVec msg = rng.bytes(state.range(0));
    for (auto _ : state) {
        auto d = HmacSha256::mac(key, msg);
        benchmark::DoNotOptimize(d);
    }
}

/**
 * W messages through the lane engine in one shot; compare the x16
 * (AVX-512), x8 (AVX2) and forced-scalar rows against W x
 * BM_Sha256Native for the lanes-vs-scalar throughput columns.
 */
void
runSha256Lanes(benchmark::State &state, unsigned width,
               bool force_scalar, bool no_avx512)
{
    Rng rng(1);
    const size_t len = static_cast<size_t>(state.range(0));
    ByteVec data[Sha256Lanes::maxLanes];
    const uint8_t *ptrs[Sha256Lanes::maxLanes];
    for (size_t l = 0; l < width; ++l) {
        data[l] = rng.bytes(len);
        ptrs[l] = data[l].data();
    }
    uint8_t digests[Sha256Lanes::maxLanes][Sha256Lanes::digestSize];
    uint8_t *dptrs[Sha256Lanes::maxLanes];
    for (size_t l = 0; l < width; ++l)
        dptrs[l] = digests[l];

    sha256LanesForceScalar(force_scalar);
    sha256LanesDisableAvx512(no_avx512);
    for (auto _ : state) {
        Sha256Lanes hasher(width);
        hasher.update(ptrs, len);
        hasher.final(dptrs);
        benchmark::DoNotOptimize(digests);
    }
    sha256LanesForceScalar(false);
    sha256LanesDisableAvx512(false);
    state.SetBytesProcessed(state.iterations() * len * width);
    state.SetItemsProcessed(state.iterations() * width);
}

void
BM_Sha256x16(benchmark::State &state)
{
    runSha256Lanes(state, 16, false, false);
}

void
BM_Sha256x8(benchmark::State &state)
{
    runSha256Lanes(state, 8, false, true);
}

void
BM_Sha256x8ScalarLanes(benchmark::State &state)
{
    runSha256Lanes(state, 8, true, false);
}

void
BM_Mgf1(benchmark::State &state)
{
    Rng rng(3);
    ByteVec seed = rng.bytes(64);
    ByteVec out(state.range(0));
    for (auto _ : state) {
        mgf1Sha256(out, seed);
        benchmark::DoNotOptimize(out.data());
    }
}

} // namespace

BENCHMARK(BM_Sha256Native)->Arg(64)->Arg(576)->Arg(4096);
BENCHMARK(BM_Sha256Ptx)->Arg(64)->Arg(576)->Arg(4096);
BENCHMARK(BM_Sha256x16)->Arg(64)->Arg(576)->Arg(4096);
BENCHMARK(BM_Sha256x8)->Arg(64)->Arg(576)->Arg(4096);
BENCHMARK(BM_Sha256x8ScalarLanes)->Arg(64)->Arg(576)->Arg(4096);
BENCHMARK(BM_Sha512)->Arg(128)->Arg(4096);
BENCHMARK(BM_HmacSha256)->Arg(64)->Arg(1024);
BENCHMARK(BM_Mgf1)->Arg(34)->Arg(49);
