/**
 * @file
 * google-benchmark micro benches for the hash substrate: native vs
 * PTX-flavoured SHA-256, HMAC and MGF1.
 */

#include <benchmark/benchmark.h>

#include "common/random.hh"
#include "hash/hmac.hh"
#include "hash/mgf1.hh"
#include "hash/sha256.hh"
#include "hash/sha256xN.hh"
#include "hash/sha512.hh"

using namespace herosign;

namespace
{

void
BM_Sha256Native(benchmark::State &state)
{
    Rng rng(1);
    ByteVec data = rng.bytes(state.range(0));
    for (auto _ : state) {
        auto d = Sha256::digest(data, Sha256Variant::Native);
        benchmark::DoNotOptimize(d);
    }
    state.SetBytesProcessed(state.iterations() * data.size());
}

void
BM_Sha256Ptx(benchmark::State &state)
{
    Rng rng(1);
    ByteVec data = rng.bytes(state.range(0));
    for (auto _ : state) {
        auto d = Sha256::digest(data, Sha256Variant::Ptx);
        benchmark::DoNotOptimize(d);
    }
    state.SetBytesProcessed(state.iterations() * data.size());
}

void
BM_Sha512(benchmark::State &state)
{
    Rng rng(1);
    ByteVec data = rng.bytes(state.range(0));
    for (auto _ : state) {
        auto d = Sha512::digest(data);
        benchmark::DoNotOptimize(d);
    }
    state.SetBytesProcessed(state.iterations() * data.size());
}

void
BM_HmacSha256(benchmark::State &state)
{
    Rng rng(2);
    ByteVec key = rng.bytes(32);
    ByteVec msg = rng.bytes(state.range(0));
    for (auto _ : state) {
        auto d = HmacSha256::mac(key, msg);
        benchmark::DoNotOptimize(d);
    }
}

/**
 * 8 messages through the 8-lane engine in one shot; compare against
 * BM_Sha256x8ScalarLanes (same work, portable backend) and against
 * 8x BM_Sha256Native for the x8-vs-scalar throughput column.
 */
void
runSha256x8(benchmark::State &state, bool force_scalar)
{
    Rng rng(1);
    const size_t len = static_cast<size_t>(state.range(0));
    ByteVec data[Sha256x8::lanes];
    const uint8_t *ptrs[Sha256x8::lanes];
    for (size_t l = 0; l < Sha256x8::lanes; ++l) {
        data[l] = rng.bytes(len);
        ptrs[l] = data[l].data();
    }
    uint8_t digests[Sha256x8::lanes][Sha256x8::digestSize];
    uint8_t *dptrs[Sha256x8::lanes];
    for (size_t l = 0; l < Sha256x8::lanes; ++l)
        dptrs[l] = digests[l];

    sha256x8ForceScalar(force_scalar);
    for (auto _ : state) {
        Sha256x8 hasher;
        hasher.update(ptrs, len);
        hasher.final(dptrs);
        benchmark::DoNotOptimize(digests);
    }
    sha256x8ForceScalar(false);
    state.SetBytesProcessed(state.iterations() * len * Sha256x8::lanes);
    state.SetItemsProcessed(state.iterations() * Sha256x8::lanes);
}

void
BM_Sha256x8(benchmark::State &state)
{
    runSha256x8(state, false);
}

void
BM_Sha256x8ScalarLanes(benchmark::State &state)
{
    runSha256x8(state, true);
}

void
BM_Mgf1(benchmark::State &state)
{
    Rng rng(3);
    ByteVec seed = rng.bytes(64);
    ByteVec out(state.range(0));
    for (auto _ : state) {
        mgf1Sha256(out, seed);
        benchmark::DoNotOptimize(out.data());
    }
}

} // namespace

BENCHMARK(BM_Sha256Native)->Arg(64)->Arg(576)->Arg(4096);
BENCHMARK(BM_Sha256Ptx)->Arg(64)->Arg(576)->Arg(4096);
BENCHMARK(BM_Sha256x8)->Arg(64)->Arg(576)->Arg(4096);
BENCHMARK(BM_Sha256x8ScalarLanes)->Arg(64)->Arg(576)->Arg(4096);
BENCHMARK(BM_Sha512)->Arg(128)->Arg(4096);
BENCHMARK(BM_HmacSha256)->Arg(64)->Arg(1024);
BENCHMARK(BM_Mgf1)->Arg(34)->Arg(49);
