/**
 * @file
 * google-benchmark micro benches for the hash substrate: native vs
 * PTX-flavoured SHA-256, HMAC and MGF1.
 */

#include <benchmark/benchmark.h>

#include "common/random.hh"
#include "hash/hmac.hh"
#include "hash/mgf1.hh"
#include "hash/sha256.hh"
#include "hash/sha512.hh"

using namespace herosign;

namespace
{

void
BM_Sha256Native(benchmark::State &state)
{
    Rng rng(1);
    ByteVec data = rng.bytes(state.range(0));
    for (auto _ : state) {
        auto d = Sha256::digest(data, Sha256Variant::Native);
        benchmark::DoNotOptimize(d);
    }
    state.SetBytesProcessed(state.iterations() * data.size());
}

void
BM_Sha256Ptx(benchmark::State &state)
{
    Rng rng(1);
    ByteVec data = rng.bytes(state.range(0));
    for (auto _ : state) {
        auto d = Sha256::digest(data, Sha256Variant::Ptx);
        benchmark::DoNotOptimize(d);
    }
    state.SetBytesProcessed(state.iterations() * data.size());
}

void
BM_Sha512(benchmark::State &state)
{
    Rng rng(1);
    ByteVec data = rng.bytes(state.range(0));
    for (auto _ : state) {
        auto d = Sha512::digest(data);
        benchmark::DoNotOptimize(d);
    }
    state.SetBytesProcessed(state.iterations() * data.size());
}

void
BM_HmacSha256(benchmark::State &state)
{
    Rng rng(2);
    ByteVec key = rng.bytes(32);
    ByteVec msg = rng.bytes(state.range(0));
    for (auto _ : state) {
        auto d = HmacSha256::mac(key, msg);
        benchmark::DoNotOptimize(d);
    }
}

void
BM_Mgf1(benchmark::State &state)
{
    Rng rng(3);
    ByteVec seed = rng.bytes(64);
    ByteVec out(state.range(0));
    for (auto _ : state) {
        mgf1Sha256(out, seed);
        benchmark::DoNotOptimize(out.data());
    }
}

} // namespace

BENCHMARK(BM_Sha256Native)->Arg(64)->Arg(576)->Arg(4096);
BENCHMARK(BM_Sha256Ptx)->Arg(64)->Arg(576)->Arg(4096);
BENCHMARK(BM_Sha512)->Arg(128)->Arg(4096);
BENCHMARK(BM_HmacSha256)->Arg(64)->Arg(1024);
BENCHMARK(BM_Mgf1)->Arg(34)->Arg(49);
