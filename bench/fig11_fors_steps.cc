/**
 * @file
 * Figure 11: FORS_Sign optimization steps — Baseline, MMTP, +FS
 * (tree fusion / Relax-FORS), +PTX, +HybridME, +FreeBank — with the
 * per-step and cumulative speedups.
 */

#include "bench_util.hh"

using namespace herosign;
using namespace herosign::bench;
using core::EngineConfig;
using core::KernelKind;
using sphincs::Params;

int
main(int argc, char **argv)
{
    Options o = Options::parse(argc, argv);
    EngineCache cache;
    const auto dev = gpu::DeviceProps::rtx4090();

    struct PaperCol
    {
        const Params *p;
        double kops[6]; // baseline..+FreeBank
    };
    const PaperCol paper[] = {
        {&Params::sphincs128f(),
         {442.9, 702.7, 721.8, 752.0, 915.9, 946.3}},
        {&Params::sphincs192f(),
         {128.9, 174.1, 178.6, 206.4, 219.1, 222.0}},
        {&Params::sphincs256f(),
         {66.6, 73.5, 91.9, 97.8, 106.7, 116.4}},
    };

    const EngineConfig configs[] = {
        EngineConfig::baseline(),   EngineConfig::stepMmtp(),
        EngineConfig::stepFuse(),   EngineConfig::stepPtx(),
        EngineConfig::stepHybridMem(),
        EngineConfig::stepFreeBank(),
    };
    const char *labels[] = {"Baseline", "MMTP", "+FS", "+PTX",
                            "+HybridME", "+FreeBank"};

    for (const auto &col : paper) {
        TextTable t({"Step", "KOPS", "Step x", "Cumulative x",
                     "paper KOPS", "paper Cum x"});
        double prev = 0, base = 0;
        for (int i = 0; i < 6; ++i) {
            auto &engine = cache.get(*col.p, dev, configs[i]);
            const double kops =
                kernelKops(engine, KernelKind::ForsSign);
            if (i == 0) {
                base = kops;
                prev = kops;
            }
            t.addRow({labels[i], fmtF(kops, 1),
                      i ? fmtX(kops / prev) : "1.00x",
                      fmtX(kops / base), fmtF(col.kops[i], 1),
                      fmtX(col.kops[i] / col.kops[0])});
            prev = kops;
        }
        emit(o, std::string("Figure 11: FORS_Sign steps, ") +
                    col.p->name + " (block = 1024)",
             t);
    }
    return 0;
}
