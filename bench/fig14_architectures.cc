/**
 * @file
 * Figure 14: Baseline vs HERO-Sign (with graph) across the six GPU
 * architectures, block = 1024, with the tuner re-run per platform.
 */

#include "bench_util.hh"

using namespace herosign;
using namespace herosign::bench;
using core::EngineConfig;
using sphincs::Params;

int
main(int argc, char **argv)
{
    Options o = Options::parse(argc, argv);
    EngineCache cache;

    // Paper speedups per (arch, set) from Fig. 14.
    struct PaperArch
    {
        const char *arch;
        double speedup[3]; // 128f / 192f / 256f
    };
    const PaperArch paper[] = {
        {"Pascal", {1.17, 1.18, 1.24}},  {"Volta", {1.15, 1.20, 1.28}},
        {"Turing", {1.42, 1.17, 1.41}},  {"Ampere", {1.16, 1.34, 1.43}},
        {"Hopper", {1.33, 1.31, 1.88}},
    };
    (void)paper;

    TextTable t({"GPU", "Set", "Baseline KOPS", "HERO KOPS",
                 "Speedup"});
    for (const auto &dev : gpu::DeviceProps::allPlatforms()) {
        for (const Params &p : Params::all()) {
            auto &base = cache.get(p, dev, EngineConfig::baseline());
            auto &hero = cache.get(p, dev, EngineConfig::hero());
            auto rb = base.signBatchTiming(1024);
            auto rh = hero.signBatchTiming(1024);
            t.addRow({dev.name, p.name, fmtF(rb.kops, 2),
                      fmtF(rh.kops, 2), fmtX(rh.kops / rb.kops)});
        }
        t.addSeparator();
    }
    emit(o, "Figure 14: cross-architecture comparison (block = 1024)",
         t,
         "Paper shape: Pascal lowest absolute and lowest speedup; "
         "RTX 4090 highest absolute throughput despite H100's core "
         "count (frequency advantage); Hopper's 228 KB shared memory "
         "gives the largest 256f speedup.");
    return 0;
}
