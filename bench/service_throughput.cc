/**
 * @file
 * Serving-layer throughput: the batched lane-parallel verification
 * path against the scalar reference, and multi-tenant sign routing
 * through SignService's warm context cache.
 *
 *   $ ./service_throughput [--csv] [--json out.json] [--msgs N]
 *                          [--set NAME] [--tenants T]
 *
 * Verify rows per parameter set:
 *   - "scalar verify (SIMD off)": sphincs::verify with the lane hash
 *     engine forced onto scalar lanes — the pre-batching reference
 *     every other row is measured against (same convention as
 *     batch_throughput).
 *   - "scalar verify": the per-signature loop with the SIMD backend
 *     active (its WOTS chain recompute already fills lanes within one
 *     signature).
 *   - "verifyBatch xN": the batched path, lanes filled across
 *     signatures. The acceptance bar is >= 2x the scalar reference,
 *     single-threaded.
 *
 * The sign-routing section drives one SignService over T tenants and
 * reports throughput plus the context-cache counters proving the hot
 * path constructs no per-sign Context (misses == tenants).
 *
 * The traffic-fabric section drives a SignService/VerifyService pair
 * sharing one cache, stats registry and admission controller with
 * mixed traffic, in a closed loop (one request in flight per
 * producer) and an open loop (burst submit), reporting per-plane
 * throughput and p50/p95/p99 latency.
 */

#include <algorithm>
#include <memory>
#include <thread>
#include <utility>

#include "bench_util.hh"
#include "common/random.hh"
#include "hash/sha256xN.hh"
#include "service/sign_service.hh"
#include "service/verify_service.hh"
#include "sphincs/sphincs.hh"

using namespace herosign;
using namespace herosign::bench;
using service::KeyStore;
using service::ServiceConfig;
using service::SignService;
using service::VerifyService;
using sphincs::Context;
using sphincs::Params;
using sphincs::SphincsPlus;

namespace
{

double
nowUs()
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

std::vector<ByteVec>
makeBatch(Rng &rng, unsigned count)
{
    std::vector<ByteVec> msgs;
    msgs.reserve(count);
    for (unsigned i = 0; i < count; ++i)
        msgs.push_back(rng.bytes(32));
    return msgs;
}

/**
 * Scalar per-signature verification, duration-bounded through the
 * shared bench/tuner measurement helper (tune::measureFor). One
 * iteration verifies one signature.
 */
MeasureResult
scalarVerifyRun(const SphincsPlus &scheme, const sphincs::PublicKey &pk,
                const std::vector<ByteVec> &msgs,
                const std::vector<ByteVec> &sigs)
{
    size_t i = 0;
    return measureFor(0.20, /*warmup_iters=*/1, [&] {
        const size_t k = i++ % msgs.size();
        if (!scheme.verify(msgs[k], sigs[k], pk))
            std::abort(); // all inputs are valid by construction
    });
}

/**
 * Batched lane-parallel verification with a warm context, duration
 * bounded like the scalar reference. One iteration verifies the whole
 * batch (the unit the lane scheduler fills lanes across).
 */
MeasureResult
batchVerifyRun(const SphincsPlus &scheme, const Context &ctx,
               const sphincs::PublicKey &pk,
               const std::vector<ByteVec> &msgs,
               const std::vector<ByteVec> &sigs)
{
    std::vector<ByteSpan> m(msgs.size());
    std::vector<ByteSpan> s(sigs.size());
    for (size_t i = 0; i < msgs.size(); ++i) {
        m[i] = ByteSpan(msgs[i]);
        s[i] = ByteSpan(sigs[i]);
    }
    return measureFor(0.20, /*warmup_iters=*/1, [&] {
        auto ok = scheme.verifyBatch(ctx, m, s, pk);
        for (size_t i = 0; i < ok.size(); ++i)
            if (!ok[i])
                std::abort();
    });
}

/** Add one row per plane with throughput and latency percentiles. */
void
addLatencyRows(TextTable &table, const std::string &set,
               const std::string &mode, double wall_us,
               const std::vector<std::vector<double>> &sign_lat,
               const std::vector<std::vector<double>> &verify_lat)
{
    const std::pair<const char *,
                    const std::vector<std::vector<double>> *>
        planes[] = {{"sign", &sign_lat}, {"verify", &verify_lat}};
    for (const auto &[plane, shards] : planes) {
        std::vector<double> lat;
        for (const auto &v : *shards)
            lat.insert(lat.end(), v.begin(), v.end());
        const double rate =
            wall_us > 0 ? lat.size() * 1e6 / wall_us : 0.0;
        table.addRow({set, mode, plane, std::to_string(lat.size()),
                      fmtF(wall_us / 1000.0), fmtF(rate, 1),
                      fmtF(percentileMs(lat, 0.50)),
                      fmtF(percentileMs(lat, 0.95)),
                      fmtF(percentileMs(lat, 0.99))});
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt = Options::parse(argc, argv);
    unsigned msgs_per_set = 48;
    unsigned tenants = 4;
    std::string only_set;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--msgs" && i + 1 < argc)
            msgs_per_set = std::max(
                1u, static_cast<unsigned>(std::stoul(argv[++i])));
        else if (a == "--set" && i + 1 < argc)
            only_set = argv[++i];
        else if (a == "--tenants" && i + 1 < argc)
            tenants = std::max(
                1u, static_cast<unsigned>(std::stoul(argv[++i])));
    }

    // --- Batched verification vs the scalar reference. ---
    TextTable vt({"set", "mode", "sigs", "wall ms", "verifies/s",
                  "vs scalar"});
    bool first_set = true;
    for (const Params &p : Params::all()) {
        if (!only_set.empty() &&
            p.name.find(only_set) == std::string::npos)
            continue;
        if (!first_set)
            vt.addSeparator();
        first_set = false;

        SphincsPlus scheme(p);
        Rng rng(0x5e21 + p.n);
        auto kp = scheme.keygenFromSeed(rng.bytes(3 * p.n));
        auto msgs = makeBatch(rng, msgs_per_set);
        std::vector<ByteVec> sigs;
        sigs.reserve(msgs.size());
        for (const auto &m : msgs)
            sigs.push_back(scheme.sign(m, kp.sk));
        Context ctx(p, kp.pk.pkSeed, {});

        // Reference: scalar loop with the lane engine forced onto
        // scalar lanes (the pre-batching verify path).
        sha256LanesForceScalar(true);
        const MeasureResult ref =
            scalarVerifyRun(scheme, kp.pk, msgs, sigs);
        sha256LanesForceScalar(false);
        const double ref_rate = ref.opsPerSec();
        vt.addRow({p.name, "scalar verify (SIMD off)",
                   std::to_string(ref.iters), fmtF(ref.wallUs / 1000.0),
                   fmtF(ref_rate, 1), fmtX(1.0)});

        const bool simd = sha256LanesAvx2Active() ||
                          sha256LanesAvx512Active();
        const MeasureResult sc =
            scalarVerifyRun(scheme, kp.pk, msgs, sigs);
        const double sc_rate = sc.opsPerSec();
        vt.addRow({p.name,
                   simd ? "scalar verify" : "scalar verify (no SIMD)",
                   std::to_string(sc.iters), fmtF(sc.wallUs / 1000.0),
                   fmtF(sc_rate, 1), fmtX(sc_rate / ref_rate)});

        const MeasureResult bx =
            batchVerifyRun(scheme, ctx, kp.pk, msgs, sigs);
        const uint64_t bx_sigs = bx.iters * msgs.size();
        const double bx_rate =
            bx.wallUs > 0 ? bx_sigs * 1e6 / bx.wallUs : 0.0;
        const char *bx_label =
            sha256LanesAvx512Active()  ? "verifyBatch x16 AVX-512"
            : sha256LanesAvx2Active() ? "verifyBatch x8 AVX2"
                                      : "verifyBatch (no SIMD)";
        vt.addRow({p.name, bx_label, std::to_string(bx_sigs),
                   fmtF(bx.wallUs / 1000.0), fmtF(bx_rate, 1),
                   fmtX(bx_rate / ref_rate)});
    }
    emit(opt, "Batched verification throughput (single thread)", vt,
         "reference = scalar verify with the lane engine forced "
         "scalar; batched verify fills hash lanes across signatures");

    // --- Multi-tenant sign routing through the warm context cache ---
    // Same substring matching as the verify section above.
    const Params *routing_set = &Params::sphincs128f();
    for (const Params &cand : Params::all()) {
        if (!only_set.empty() &&
            cand.name.find(only_set) != std::string::npos) {
            routing_set = &cand;
            break;
        }
    }
    const Params &p = *routing_set;
    SphincsPlus scheme(p);
    Rng rng(0xc0de);
    KeyStore store;
    for (unsigned t = 0; t < tenants; ++t)
        store.addKey(std::string("tenant-").append(std::to_string(t)),
                     scheme.keygenFromSeed(rng.bytes(3 * p.n)));

    TextTable st({"set", "tenants", "workers", "sigs", "wall ms",
                  "sigs/s", "ctx builds", "cache hits"});
    for (unsigned workers : {1u, 4u}) {
        ServiceConfig cfg;
        cfg.workers = workers;
        cfg.shards = workers;
        const uint64_t ctx0 = Context::constructionCount();
        SignService svc(store, cfg);
        std::vector<std::future<ByteVec>> futs;
        futs.reserve(msgs_per_set);
        for (unsigned i = 0; i < msgs_per_set; ++i)
            futs.push_back(
                svc.submitSign(std::string("tenant-").append(std::to_string(i % tenants)),
                               rng.bytes(32)));
        for (auto &f : futs)
            f.get();
        svc.drain();
        auto stats = svc.stats();
        const uint64_t ctx_built = Context::constructionCount() - ctx0;
        st.addRow({p.name, std::to_string(tenants),
                   std::to_string(workers),
                   std::to_string(stats.signsCompleted),
                   fmtF(stats.wallUs / 1000.0),
                   fmtF(stats.sigsPerSec, 1),
                   std::to_string(ctx_built),
                   std::to_string(stats.cache.hits)});
    }
    emit(opt, "Multi-tenant sign routing (warm context cache)", st,
         "ctx builds counts every sphincs::Context constructed during "
         "the run: == tenants when the hot path is construction-free; "
         "hardware threads: " +
             std::to_string(std::thread::hardware_concurrency()));

    // --- Verify-after-sign guard: the release-gate overhead ---
    // Same routing workload with the fault-tolerance guard off and
    // on; the delta is the price of verifying every signature before
    // release (one verify per sign, fault-free).
    TextTable gt({"guard", "set", "workers", "sigs", "wall ms",
                  "sigs/s", "mismatches"});
    for (const bool guard : {false, true}) {
        ServiceConfig cfg;
        cfg.workers = 2;
        cfg.shards = 2;
        cfg.verifyAfterSign = guard;
        SignService svc(store, cfg);
        std::vector<std::future<ByteVec>> futs;
        futs.reserve(msgs_per_set);
        for (unsigned i = 0; i < msgs_per_set; ++i)
            futs.push_back(svc.submitSign(
                std::string("tenant-").append(
                    std::to_string(i % tenants)),
                rng.bytes(32)));
        for (auto &f : futs)
            f.get();
        svc.drain();
        auto stats = svc.stats();
        gt.addRow({guard ? "on" : "off", p.name, "2",
                   std::to_string(stats.signsCompleted),
                   fmtF(stats.wallUs / 1000.0),
                   fmtF(stats.sigsPerSec, 1),
                   std::to_string(stats.guardMismatches)});
    }
    emit(opt, "Verify-after-sign guard overhead", gt,
         "guard on verifies every signature before its future "
         "resolves (ServiceConfig::verifyAfterSign); mismatches stays "
         "0 on a fault-free run");

    // --- Mixed sign+verify through the unified traffic fabric ---
    // One SignService/VerifyService pair shares the warm context
    // cache, stats registry and admission controller. Closed loop:
    // each producer keeps exactly one request in flight, alternating
    // planes — the latency view. Open loop: the whole batch bursts in
    // up front and completions are stamped in submission order — the
    // throughput view.
    std::vector<std::pair<ByteVec, ByteVec>> vpool;
    for (unsigned t = 0; t < tenants; ++t) {
        ByteVec m = rng.bytes(32);
        ByteVec s = scheme.sign(
            m, store.find(std::string("tenant-").append(
                              std::to_string(t)))
                   ->sk);
        vpool.emplace_back(std::move(m), std::move(s));
    }

    TextTable mt({"set", "mode", "plane", "requests", "wall ms",
                  "ops/s", "p50 ms", "p95 ms", "p99 ms"});
    const unsigned producers = 2;
    const unsigned per_producer = msgs_per_set;

    ServiceConfig mcfg;
    mcfg.workers = 2;
    mcfg.shards = 2;
    mcfg.verifyWorkers = 2;
    mcfg.verifyShards = 2;
    {
        SignService ssvc(store, mcfg);
        VerifyService vsvc(store, mcfg, ssvc.contextCache(),
                           ssvc.statsRegistry(), ssvc.admission());
        std::vector<std::vector<double>> sign_lat(producers);
        std::vector<std::vector<double>> verify_lat(producers);
        const double t0 = nowUs();
        std::vector<std::thread> ts;
        for (unsigned t = 0; t < producers; ++t) {
            ts.emplace_back([&, t] {
                Rng trng(0xfab0 + t);
                for (unsigned i = 0; i < per_producer; ++i) {
                    const unsigned tenant = (t + i) % tenants;
                    const std::string id =
                        std::string("tenant-").append(
                            std::to_string(tenant));
                    const double s0 = nowUs();
                    if (i % 2 == 0) {
                        ssvc.submitSign(id, trng.bytes(32)).get();
                        sign_lat[t].push_back(nowUs() - s0);
                    } else {
                        vsvc.submitVerify(id, vpool[tenant].first,
                                          vpool[tenant].second)
                            .get();
                        verify_lat[t].push_back(nowUs() - s0);
                    }
                }
            });
        }
        for (auto &th : ts)
            th.join();
        const double wall = nowUs() - t0;
        ssvc.drain();
        vsvc.drain();
        addLatencyRows(mt, p.name, "closed", wall, sign_lat,
                       verify_lat);
    }
    {
        SignService ssvc(store, mcfg);
        VerifyService vsvc(store, mcfg, ssvc.contextCache(),
                           ssvc.statsRegistry(), ssvc.admission());
        struct Pending
        {
            double submitUs;
            std::future<ByteVec> sign;
            std::future<bool> verify;
        };
        std::vector<Pending> pend;
        pend.reserve(producers * per_producer);
        const double t0 = nowUs();
        for (unsigned i = 0; i < producers * per_producer; ++i) {
            const unsigned tenant = i % tenants;
            const std::string id = std::string("tenant-").append(
                std::to_string(tenant));
            Pending pd;
            pd.submitUs = nowUs();
            if (i % 2 == 0)
                pd.sign = ssvc.submitSign(id, rng.bytes(32));
            else
                pd.verify = vsvc.submitVerify(id, vpool[tenant].first,
                                              vpool[tenant].second);
            pend.push_back(std::move(pd));
        }
        // Stamp completions in submission order: each latency spans
        // queueing + coalescing + the lane-parallel pass.
        std::vector<std::vector<double>> sign_lat(1), verify_lat(1);
        for (auto &pd : pend) {
            if (pd.sign.valid()) {
                pd.sign.get();
                sign_lat[0].push_back(nowUs() - pd.submitUs);
            } else {
                pd.verify.get();
                verify_lat[0].push_back(nowUs() - pd.submitUs);
            }
        }
        const double wall = nowUs() - t0;
        ssvc.drain();
        vsvc.drain();
        addLatencyRows(mt, p.name, "open", wall, sign_lat, verify_lat);
    }
    emit(opt, "Mixed sign+verify traffic fabric", mt,
         "closed loop: " + std::to_string(producers) +
             " producers, one request in flight each; open loop: "
             "burst submit, completions stamped in submission order; "
             "shared cache/stats/admission across both planes");

    // --- Telemetry overhead: the armed vs disarmed serving fabric ---
    // Same open-loop mixed workload with the telemetry plane runtime-
    // disabled (one relaxed-load branch per stamp site) and armed
    // (stage stamps + histogram records + 1-in-64 span sampling).
    // The delta is the full price of observability on the hot path.
    TextTable tt({"telemetry", "set", "requests", "wall ms", "ops/s",
                  "vs off"});
    service::ServiceStats armed_stats;
    double off_rate = 0.0;
    for (const bool armed : {false, true}) {
        ServiceConfig cfg = mcfg;
        cfg.telemetry.enabled = armed;
        SignService ssvc(store, cfg);
        VerifyService vsvc(store, cfg, ssvc.contextCache(),
                           ssvc.statsRegistry(), ssvc.admission());
        // Untimed warmup: populate each fresh fabric's context cache
        // per tenant so the off/on rows compare warm against warm
        // rather than charging the first configuration the builds.
        for (unsigned tenant = 0; tenant < tenants; ++tenant) {
            const std::string id = std::string("tenant-").append(
                std::to_string(tenant));
            ssvc.submitSign(id, rng.bytes(32)).get();
            vsvc.submitVerify(id, vpool[tenant].first,
                              vpool[tenant].second)
                .get();
        }
        const unsigned total = producers * per_producer;
        std::vector<std::future<ByteVec>> sfuts;
        std::vector<std::future<bool>> vfuts;
        const double t0 = nowUs();
        for (unsigned i = 0; i < total; ++i) {
            const unsigned tenant = i % tenants;
            const std::string id = std::string("tenant-").append(
                std::to_string(tenant));
            if (i % 2 == 0)
                sfuts.push_back(ssvc.submitSign(id, rng.bytes(32)));
            else
                vfuts.push_back(vsvc.submitVerify(
                    id, vpool[tenant].first, vpool[tenant].second));
        }
        for (auto &f : sfuts)
            f.get();
        for (auto &f : vfuts)
            f.get();
        const double wall = nowUs() - t0;
        ssvc.drain();
        vsvc.drain();
        const double rate = total * 1e6 / wall;
        if (!armed)
            off_rate = rate;
        else
            armed_stats = ssvc.stats().mergedWith(vsvc.stats());
        tt.addRow({armed ? "on" : "off", p.name,
                   std::to_string(total), fmtF(wall / 1000.0),
                   fmtF(rate, 1),
                   fmtX(off_rate > 0 ? rate / off_rate : 1.0)});
    }
    emit(opt, "Telemetry overhead (open-loop fabric)", tt,
         "off = telemetry runtime-disabled (stamps fold to one "
         "relaxed load); on = stage histograms + 1-in-64 trace "
         "sampling armed; acceptance bar: <= 2% ops/s delta");

    // --- Per-stage latency decomposition from the armed run ---
    // The telemetry plane's own view of the run above: every
    // completed request's end-to-end latency decomposed into
    // queue-wait / coalesce / crypto / guard / callback stages.
    TextTable pt({"plane stage", "count", "p50 ms", "p95 ms",
                  "p99 ms"});
    for (const auto &[key, snap] : armed_stats.stages) {
        // Group-shape histograms are counts/percent, not latencies.
        if (key.find("group_size") != std::string::npos ||
            key.find("lane_fill_pct") != std::string::npos)
            continue;
        pt.addRow({key, std::to_string(snap.count),
                   fmtF(snap.percentile(0.50) / 1e6),
                   fmtF(snap.percentile(0.95) / 1e6),
                   fmtF(snap.percentile(0.99) / 1e6)});
    }
    emit(opt, "Per-stage latency decomposition (telemetry armed)", pt,
         "stage histograms from the armed open-loop run above "
         "(warmup requests included in the counts); values are "
         "exact-bucket percentiles (~3% resolution) from the "
         "lock-free telemetry histograms");
    return 0;
}
