/**
 * @file
 * google-benchmark micro benches for the scalar SPHINCS+ reference:
 * keygen, sign and verify per parameter set.
 */

#include <benchmark/benchmark.h>

#include "common/random.hh"
#include "sphincs/sphincs.hh"

using namespace herosign;
using sphincs::Params;
using sphincs::SphincsPlus;

namespace
{

const Params &
paramsByIndex(int64_t idx)
{
    return Params::all().at(static_cast<size_t>(idx));
}

void
BM_Keygen(benchmark::State &state)
{
    SphincsPlus scheme(paramsByIndex(state.range(0)));
    Rng rng(1);
    for (auto _ : state) {
        auto kp = scheme.keygen(rng);
        benchmark::DoNotOptimize(kp.pk.pkRoot.data());
    }
    state.SetLabel(paramsByIndex(state.range(0)).name);
}

void
BM_Sign(benchmark::State &state)
{
    SphincsPlus scheme(paramsByIndex(state.range(0)));
    Rng rng(2);
    auto kp = scheme.keygen(rng);
    ByteVec msg = rng.bytes(64);
    for (auto _ : state) {
        auto sig = scheme.sign(msg, kp.sk);
        benchmark::DoNotOptimize(sig.data());
    }
    state.SetLabel(paramsByIndex(state.range(0)).name);
}

void
BM_Verify(benchmark::State &state)
{
    SphincsPlus scheme(paramsByIndex(state.range(0)));
    Rng rng(3);
    auto kp = scheme.keygen(rng);
    ByteVec msg = rng.bytes(64);
    auto sig = scheme.sign(msg, kp.sk);
    for (auto _ : state) {
        bool ok = scheme.verify(msg, sig, kp.pk);
        benchmark::DoNotOptimize(ok);
    }
    state.SetLabel(paramsByIndex(state.range(0)).name);
}

} // namespace

BENCHMARK(BM_Keygen)->Arg(0)->Arg(1)->Arg(2)->Unit(
    benchmark::kMillisecond);
BENCHMARK(BM_Sign)->Arg(0)->Arg(1)->Arg(2)->Unit(
    benchmark::kMillisecond);
BENCHMARK(BM_Verify)->Arg(0)->Arg(1)->Arg(2)->Unit(
    benchmark::kMillisecond);
