/**
 * @file
 * Figure 12: end-to-end performance (KOPS) and kernel launch latency
 * (us) for Baseline and HERO-Sign, each with and without CUDA-Graph
 * batching, at block = 1024 on the RTX 4090.
 */

#include "bench_util.hh"

using namespace herosign;
using namespace herosign::bench;
using core::EngineConfig;
using sphincs::Params;

int
main(int argc, char **argv)
{
    Options o = Options::parse(argc, argv);
    EngineCache cache;
    const auto dev = gpu::DeviceProps::rtx4090();

    struct PaperRow
    {
        const Params *p;
        double base_kops, base_graph_kops, hero_kops,
            hero_graph_kops;
        double base_lat, hero_lat, hero_graph_lat;
    };
    const PaperRow paper[] = {
        {&Params::sphincs128f(), 93.17, 97.54, 116.48, 119.47, 4270.0,
         308.06, 49.41},
        {&Params::sphincs192f(), 51.18, 56.50, 60.94, 65.43, 4439.0,
         2722.75, 42.97},
        {&Params::sphincs256f(), 23.93, 25.74, 31.28, 33.88, 7102.0,
         5025.00, 32.10},
    };

    auto configWithGraph = [](EngineConfig c, bool graph) {
        c.useGraph = graph;
        c.name += graph ? "+graph" : "-nograph";
        return c;
    };

    TextTable perf({"Set", "Base", "Base+G", "HERO", "HERO+G",
                    "Speedup(+G)", "paper Base", "paper HERO+G",
                    "paper Speedup"});
    TextTable lat({"Set", "Base us", "HERO us", "HERO+G us",
                   "Reduction", "paper Base", "paper HERO+G",
                   "paper Reduction"});

    for (const auto &row : paper) {
        auto &bn = cache.get(*row.p, dev,
                             configWithGraph(EngineConfig::baseline(),
                                             false));
        auto &bg = cache.get(*row.p, dev,
                             configWithGraph(EngineConfig::baseline(),
                                             true));
        auto &hn = cache.get(*row.p, dev,
                             configWithGraph(EngineConfig::hero(),
                                             false));
        auto &hg = cache.get(*row.p, dev,
                             configWithGraph(EngineConfig::hero(),
                                             true));
        auto rbn = bn.signBatchTiming(1024);
        auto rbg = bg.signBatchTiming(1024);
        auto rhn = hn.signBatchTiming(1024);
        auto rhg = hg.signBatchTiming(1024);

        perf.addRow({row.p->name, fmtF(rbn.kops, 2), fmtF(rbg.kops, 2),
                     fmtF(rhn.kops, 2), fmtF(rhg.kops, 2),
                     fmtX(rhg.kops / rbn.kops), fmtF(row.base_kops, 2),
                     fmtF(row.hero_graph_kops, 2),
                     fmtX(row.hero_graph_kops / row.base_kops)});
        lat.addRow({row.p->name, fmtF(rbn.launchLatencyUs, 1),
                    fmtF(rhn.launchLatencyUs, 1),
                    fmtF(rhg.launchLatencyUs, 1),
                    fmtX(rbn.launchLatencyUs / rhg.launchLatencyUs, 1),
                    fmtF(row.base_lat, 1), fmtF(row.hero_graph_lat, 1),
                    fmtX(row.base_lat / row.hero_graph_lat, 1)});
    }
    emit(o, "Figure 12a: end-to-end throughput (KOPS, block = 1024)",
         perf);
    emit(o, "Figure 12b: kernel launch latency (us)", lat,
         "Shape: graphs cut launch latency by about two orders of "
         "magnitude (paper: up to 221.3x).");
    return 0;
}
