/**
 * @file
 * Table VIII: per-kernel performance comparison between the baseline
 * and HERO-Sign at block = 1024 — KOPS, occupancy, compute and memory
 * throughput, with the paper's values alongside.
 */

#include "bench_util.hh"

using namespace herosign;
using namespace herosign::bench;
using core::EngineConfig;
using core::KernelKind;
using sphincs::Params;

int
main(int argc, char **argv)
{
    Options o = Options::parse(argc, argv);
    EngineCache cache;
    const auto dev = gpu::DeviceProps::rtx4090();

    struct PaperRow
    {
        const char *kernel;
        double base_kops, hero_kops;
        double base_occ, hero_occ;
    };
    struct PaperSet
    {
        const Params *p;
        PaperRow rows[3];
    };
    const PaperSet paper[] = {
        {&Params::sphincs128f(),
         {{"FORS_Sign", 442.9, 946.3, 27.09, 36.02},
          {"TREE_Sign", 125.2, 157.7, 23.65, 23.88},
          {"WOTS+_Sign", 2493.1, 4915.7, 42.36, 46.54}}},
        {&Params::sphincs192f(),
         {{"FORS_Sign", 128.9, 222.0, 32.74, 47.05},
          {"TREE_Sign", 88.2, 93.6, 23.83, 23.87},
          {"WOTS+_Sign", 1457.6, 2464.9, 31.44, 35.09}}},
        {&Params::sphincs256f(),
         {{"FORS_Sign", 66.6, 116.4, 32.60, 63.76},
          {"TREE_Sign", 36.4, 44.9, 18.53, 62.43},
          {"WOTS+_Sign", 776.8, 1570.9, 35.37, 35.47}}},
    };
    const KernelKind kinds[] = {KernelKind::ForsSign,
                                KernelKind::TreeSign,
                                KernelKind::WotsSign};

    TextTable t({"Set", "Kernel", "Base KOPS", "HERO KOPS", "Speedup",
                 "paper Speedup", "Base Occ%", "HERO Occ%",
                 "HERO Cmp%", "HERO Mem%"});
    for (const auto &set : paper) {
        auto &base = cache.get(*set.p, dev, EngineConfig::baseline());
        auto &hero = cache.get(*set.p, dev, EngineConfig::hero());
        for (int i = 0; i < 3; ++i) {
            const double bk = kernelKops(base, kinds[i]);
            const double hk = kernelKops(hero, kinds[i]);
            auto bt = base.kernelTimingAt(kinds[i], 1024);
            auto ht = hero.kernelTimingAt(kinds[i], 1024);
            t.addRow({set.p->name, set.rows[i].kernel, fmtF(bk, 1),
                      fmtF(hk, 1), fmtX(hk / bk),
                      fmtX(set.rows[i].hero_kops /
                           set.rows[i].base_kops),
                      fmtF(100 * bt.occupancy, 2),
                      fmtF(100 * ht.occupancy, 2),
                      fmtF(ht.computeThroughputPct, 1),
                      fmtF(ht.memoryThroughputPct, 1)});
        }
        t.addSeparator();
    }
    emit(o, "Table VIII: kernel performance, baseline vs HERO-Sign "
            "(block = 1024, RTX 4090)",
         t);
    return 0;
}
