# Resolve GoogleTest for the test suites.
#
# Preference order:
#   1. An installed GTest (e.g. Debian's libgtest-dev CMake config) —
#      no network access needed on provisioned build hosts.
#   2. The distro source package at /usr/src/googletest, built in-tree.
#   3. A network fetch of a pinned release, as a last resort.
#
# Defines the GTest::gtest / GTest::gtest_main targets either way.
# Plain find_package-then-FetchContent keeps this working on CMake
# 3.20 (FetchContent's FIND_PACKAGE_ARGS shorthand needs 3.24).
find_package(GTest QUIET)

if(NOT TARGET GTest::gtest_main)
    include(FetchContent)

    set(gtest_force_shared_crt ON CACHE BOOL "" FORCE) # keep MSVC happy
    set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
    set(BUILD_GMOCK OFF CACHE BOOL "" FORCE)

    if(EXISTS /usr/src/googletest/CMakeLists.txt)
        FetchContent_Declare(googletest SOURCE_DIR /usr/src/googletest)
    else()
        FetchContent_Declare(googletest
            URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.tar.gz
            URL_HASH SHA256=8ad598c73ad796e0d8280b082cebd82a630d73e73cd3c70057938a6501bba5d7)
    endif()

    FetchContent_MakeAvailable(googletest)

    # The in-tree build exports plain gtest/gtest_main targets;
    # normalise to the namespaced form the rest of the build uses.
    if(NOT TARGET GTest::gtest)
        add_library(GTest::gtest ALIAS gtest)
        add_library(GTest::gtest_main ALIAS gtest_main)
    endif()
endif()
