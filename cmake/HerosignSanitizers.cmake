# Opt-in sanitizer instrumentation for the whole build.
#
# HEROSIGN_SANITIZE is a comma-separated sanitizer list passed
# straight to -fsanitize, e.g.
#
#   cmake -B build-sanitize -DHEROSIGN_SANITIZE=address,undefined ..
#
# (ci.sh wires the SANITIZE environment variable to this cache
# variable.) The flags are attached to the herosign_options interface
# target, which every library, test, bench and example target links,
# so the entire build is instrumented consistently. Errors are fatal
# (-fno-sanitize-recover) so CI cannot pass with findings.
set(HEROSIGN_SANITIZE "" CACHE STRING
    "Comma-separated sanitizers to enable (e.g. address,undefined)")

if(HEROSIGN_SANITIZE)
    if(MSVC)
        message(FATAL_ERROR
            "HEROSIGN_SANITIZE requires gcc or clang")
    endif()
    set(_herosign_san_flags
        -fsanitize=${HEROSIGN_SANITIZE}
        -fno-omit-frame-pointer
        -fno-sanitize-recover=all)
    target_compile_options(herosign_options
        INTERFACE ${_herosign_san_flags})
    target_link_options(herosign_options
        INTERFACE ${_herosign_san_flags})
    message(STATUS "herosign: sanitizers enabled: ${HEROSIGN_SANITIZE}")
endif()
