#!/usr/bin/env bash
# Tier-1 verify: configure, build everything (library, tests, bench,
# examples) and run the full CTest suite. This is the exact line every
# PR must keep green.
#
# Modes / knobs (all optional):
#   ./ci.sh                              # tier-1: configure+build+ctest
#   SANITIZE=address,undefined ./ci.sh   # instrumented build+suite,
#                                        # in its own build dir
#   SANITIZE=thread CTEST_REGEX='batch|queue|service|fabric' ./ci.sh
#                                        # TSan over the threaded
#                                        # suites only
#   BUILD_TYPE=Debug ./ci.sh             # CI matrix entry
#   CXX=clang++ ./ci.sh                  # compiler matrix entry
#   WERROR=OFF ./ci.sh                   # drop -Werror (default ON)
#   HEROSIGN_AVX512=OFF ./ci.sh          # AVX2-only build (no AVX-512
#                                        # backend compiled), own dir
#   HEROSIGN_AVX2=OFF ./ci.sh            # portable-only build (no SIMD
#                                        # backend compiled), own dir;
#                                        # implies HEROSIGN_AVX512=OFF
#   HEROSIGN_DISABLE_AVX512=1 ./ci.sh    # runtime fallback: AVX-512
#                                        # built but dispatch pinned to
#                                        # the 8-lane path
#   HEROSIGN_DISABLE_AVX2=1 ./ci.sh      # runtime fallback: fully
#                                        # portable lanes (disabling the
#                                        # narrower ISA implies AVX-512
#                                        # off too)
#   CTEST_REGEX='batch|service' ./ci.sh  # run a CTest subset (-R)
#   FAULT_MATRIX=1 ./ci.sh               # build once, then run the
#                                        # fault/robustness/chaos
#                                        # suites once per canned
#                                        # HEROSIGN_FAULT_PLAN entry
#                                        # (composes with SANITIZE)
#   METRICS_SOAK=1 ./ci.sh               # build, then run a duration-
#                                        # bounded mixed workload with
#                                        # a live MetricsReporter and
#                                        # validate the JSONL snapshot
#                                        # stream (SOAK_SECONDS=N)
#   TUNE_SMOKE=1 ./ci.sh                 # build, then run a seconds-
#                                        # budget autotuner search on
#                                        # the mini parameter set and
#                                        # assert the persisted profile
#                                        # loads back (TUNE_SECONDS=N)
#   ./ci.sh --format-check               # clang-format gate only
set -euo pipefail

cd "$(dirname "$0")"

if [[ "${1:-}" == "--format-check" ]]; then
    if ! command -v clang-format >/dev/null 2>&1; then
        # Local convenience skip only: on CI a missing clang-format
        # must fail loudly, not silently green-light the format job.
        if [[ -n "${CI:-}" ]]; then
            echo "ci.sh: clang-format not found (CI set): failing" >&2
            exit 1
        fi
        echo "ci.sh: clang-format not found; skipping format check" >&2
        exit 0
    fi
    mapfile -t files < <(git ls-files \
        'src/*.cc' 'src/*.hh' \
        'tests/*.cc' 'tests/*.hh' \
        'bench/*.cc' 'bench/*.hh' \
        'examples/*.cpp')
    clang-format --dry-run -Werror "${files[@]}"
    echo "ci.sh: clang-format check passed (${#files[@]} files)"
    exit 0
fi

JOBS=${JOBS:-$(nproc 2>/dev/null || echo 4)}
BUILD_TYPE=${BUILD_TYPE:-Release}
WERROR=${WERROR:-ON}
SANITIZE=${SANITIZE:-}
HEROSIGN_AVX2=${HEROSIGN_AVX2:-ON}
HEROSIGN_AVX512=${HEROSIGN_AVX512:-ON}
# A portable-only build makes no sense with the AVX-512 backend still
# compiled in; the wider gate follows the narrower one down.
if [[ "$HEROSIGN_AVX2" != "ON" ]]; then
    HEROSIGN_AVX512=OFF
fi
CTEST_REGEX=${CTEST_REGEX:-}
FAULT_MATRIX=${FAULT_MATRIX:-}
METRICS_SOAK=${METRICS_SOAK:-}
TUNE_SMOKE=${TUNE_SMOKE:-}

# Sanitized and portable-only builds get their own trees so neither
# cache clobbers (or masquerades as) the plain tier-1 build.
if [[ -n "$SANITIZE" ]]; then
    # One tree per sanitizer set: thread and address instrumentation
    # cannot share objects.
    BUILD_DIR=${BUILD_DIR:-build-sanitize-${SANITIZE//,/-}}
elif [[ "$HEROSIGN_AVX2" != "ON" ]]; then
    BUILD_DIR=${BUILD_DIR:-build-noavx2}
elif [[ "$HEROSIGN_AVX512" != "ON" ]]; then
    BUILD_DIR=${BUILD_DIR:-build-noavx512}
else
    BUILD_DIR=${BUILD_DIR:-build}
fi

CMAKE_ARGS=(
    -DCMAKE_BUILD_TYPE="$BUILD_TYPE"
    -DHEROSIGN_WERROR="$WERROR"
    -DHEROSIGN_ENABLE_AVX2="$HEROSIGN_AVX2"
    -DHEROSIGN_ENABLE_AVX512="$HEROSIGN_AVX512"
)
if [[ -n "$SANITIZE" ]]; then
    CMAKE_ARGS+=(-DHEROSIGN_SANITIZE="$SANITIZE")
    export UBSAN_OPTIONS=${UBSAN_OPTIONS:-print_stacktrace=1}
fi
if command -v ccache >/dev/null 2>&1; then
    CMAKE_ARGS+=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

CTEST_ARGS=(--output-on-failure -j "$JOBS")
if [[ -n "$CTEST_REGEX" ]]; then
    CTEST_ARGS+=(-R "$CTEST_REGEX")
fi

cmake -B "$BUILD_DIR" -S . "${CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR" -j "$JOBS"

if [[ -n "$FAULT_MATRIX" ]]; then
    # One canned plan per injection point, plus the all-points storm.
    # Each entry runs the fault-aware suites in a fresh process with
    # the plan armed from the environment; the chaos fabric keeps the
    # env plan live while the unit suites disarm it and drive their
    # own deterministic schedules on top.
    FAULT_PLANS=(
        'seed=101;hash-compress:every=701:max=8'
        'seed=102;simd-lane:every=5'
        'seed=103;worker-throw:every=11:max=8'
        'seed=104;queue-stall:every=7:ms=1'
        'seed=105;callback-throw:every=2'
        'seed=106;simd-lane:every=9;worker-throw:every=29:max=4;queue-stall:every=13:ms=1;callback-throw:every=5;hash-compress:every=997:max=4'
    )
    for plan in "${FAULT_PLANS[@]}"; do
        echo "ci.sh: fault matrix plan: $plan"
        HEROSIGN_FAULT_PLAN="$plan" ctest --test-dir "$BUILD_DIR" \
            --output-on-failure -j "$JOBS" \
            -R "${CTEST_REGEX:-fault|robustness|chaos}"
    done
    echo "ci.sh: fault matrix passed (${#FAULT_PLANS[@]} plans)"
    exit 0
fi

if [[ -n "$METRICS_SOAK" ]]; then
    # Duration-bounded mixed workload with the telemetry plane armed:
    # the metrics_soak example drives a shared-registry fabric while
    # a MetricsReporter appends one JSON snapshot per period, then
    # self-validates the Prometheus exposition. The python step
    # re-parses the JSONL stream independently.
    SOAK_SECONDS=${SOAK_SECONDS:-5}
    SOAK_OUT="$BUILD_DIR/metrics_soak.jsonl"
    rm -f "$SOAK_OUT"
    "$BUILD_DIR/examples/metrics_soak" \
        --seconds "$SOAK_SECONDS" --out "$SOAK_OUT" --period-ms 500
    python3 - "$SOAK_OUT" <<'EOF'
import json, sys
path = sys.argv[1]
with open(path, encoding="utf-8") as f:
    lines = [l for l in f if l.strip()]
assert len(lines) >= 2, f"expected >= 2 JSONL lines, got {len(lines)}"
prev_signs = -1
for i, line in enumerate(lines, 1):
    doc = json.loads(line)
    for section in ("counters", "gauges", "rates", "cache", "tenants"):
        assert section in doc, f"line {i}: missing {section!r}"
    signs = doc["counters"]["signs_completed"]
    assert signs >= prev_signs, f"line {i}: counter went backwards"
    prev_signs = signs
assert prev_signs > 0, "no signs completed during the soak"
print(f"ci.sh: metrics soak OK ({len(lines)} snapshot lines, "
      f"{prev_signs} signs)")
EOF
    exit 0
fi

if [[ -n "$TUNE_SMOKE" ]]; then
    # Seconds-budget autotuner search against the real serving fabric
    # on the mini parameter set: the explorer must finish inside the
    # budget, persist a profile, and the profile must load back clean
    # through both the explorer's own --check path and an independent
    # JSON re-parse.
    TUNE_SECONDS=${TUNE_SECONDS:-8}
    TUNE_OUT="$BUILD_DIR/tune_profile.json"
    rm -f "$TUNE_OUT"
    "$BUILD_DIR/examples/autotune_explorer" \
        --mini --budget "${TUNE_SECONDS}s" --trial-ms 120 \
        --seed 1 --out "$TUNE_OUT"
    "$BUILD_DIR/examples/autotune_explorer" --mini --check "$TUNE_OUT"
    python3 - "$TUNE_OUT" <<'EOF'
import json, sys
with open(sys.argv[1], encoding="utf-8") as f:
    doc = json.load(f)
assert doc["version"] == 1, doc["version"]
fp = doc["fingerprint"]
for field in ("cpu", "cores", "dispatch", "param_set"):
    assert fp.get(field), f"fingerprint missing {field!r}"
assert fp["param_set"] == "mini", fp["param_set"]
cfg = doc["config"]
for knob in ("sign_workers", "sign_shards", "sign_coalesce",
             "verify_workers", "verify_shards", "verify_coalesce",
             "cache_capacity"):
    assert knob in cfg, f"config missing {knob!r}"
    assert isinstance(cfg[knob], int), f"{knob} not an int"
assert cfg["sign_workers"] >= 1 and cfg["verify_workers"] >= 1
assert doc["measured"]["tuned_ops_per_sec"] > 0
print(f"ci.sh: tune smoke OK ({doc['trials']} trials, "
      f"best {cfg['sign_workers']}w/{cfg['verify_workers']}vw, "
      f"{doc['measured']['tuned_ops_per_sec']:.0f} ops/s)")
EOF
    exit 0
fi

ctest --test-dir "$BUILD_DIR" "${CTEST_ARGS[@]}"
