#!/usr/bin/env bash
# Tier-1 verify: configure, build everything (library, tests, bench,
# examples) and run the full CTest suite. This is the exact line every
# PR must keep green.
set -euo pipefail

cd "$(dirname "$0")"

JOBS=${JOBS:-$(nproc 2>/dev/null || echo 4)}
BUILD_DIR=${BUILD_DIR:-build}

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"
