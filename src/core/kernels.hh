/**
 * @file
 * The three component kernels of HERO-Sign (paper §III): FORS_Sign,
 * TREE_Sign and WOTS+_Sign, written as phase-structured bodies for
 * the GPU simulator. They are *real* implementations: executing them
 * produces signatures byte-identical to the scalar reference, while
 * the executor traces their shared-memory behaviour and operation
 * counts for the timing model.
 */

#ifndef HEROSIGN_CORE_KERNELS_HH
#define HEROSIGN_CORE_KERNELS_HH

#include <algorithm>
#include <memory>
#include <vector>

#include "core/config.hh"
#include "gpusim/banks.hh"
#include "gpusim/exec.hh"
#include "sphincs/context.hh"

namespace herosign::core
{

/**
 * Per-message inputs and output buffers shared by the kernels.
 * Buffers are owned by the engine; the kernels write signature parts
 * into them (modelled as global-memory stores).
 */
struct MessageJob
{
    const sphincs::Context *ctx = nullptr;

    uint64_t idxTree = 0;   ///< bottom-layer subtree chain
    uint32_t idxLeaf = 0;   ///< keypair within the bottom subtree
    std::vector<uint32_t> forsIndices;  ///< k FORS leaf selections

    /// Hypertree indices per layer (derived from idxTree/idxLeaf).
    std::vector<uint64_t> layerTree;  ///< d entries
    std::vector<uint32_t> layerLeaf;  ///< d entries

    // --- FORS_Sign outputs -------------------------------------
    std::vector<uint8_t> forsSig;   ///< k * (1 + a) * n
    std::vector<uint8_t> forsPk;    ///< n

    // --- TREE_Sign outputs -------------------------------------
    std::vector<uint8_t> authPaths; ///< d * (h/d) * n
    std::vector<uint8_t> roots;     ///< d * n (subtree roots)

    // --- WOTS+_Sign outputs ------------------------------------
    /// Message per layer: [0] = FORS pk, [i] = roots[i-1].
    std::vector<uint8_t> wotsMessages; ///< d * n
    std::vector<uint8_t> wotsSigs;     ///< d * len * n

    /** Allocate all buffers for @p params. */
    void allocate(const sphincs::Params &params);
};

/** Memory-placement policy for read-only inputs (paper §III-D). */
struct MemPolicy
{
    bool constantSeeds = true;  ///< seeds/state in constant memory

    /// Charge a read of @p bytes of read-only key material.
    void
    chargeSeedRead(gpu::BlockContext &blk, unsigned tid,
                   uint64_t bytes) const
    {
        if (constantSeeds)
            blk.chargeConstant(tid, bytes);
        else
            blk.chargeGlobal(tid, bytes);
    }
};

/** Resolved FORS kernel geometry. */
struct ForsGeometry
{
    unsigned threadsPerSet = 0;  ///< active threads (T_set)
    unsigned treesPerSet = 1;    ///< Ntree
    unsigned fusedSets = 1;      ///< F
    bool relax = false;
    bool padded = true;          ///< FreeBank layout vs naive
    /// Allocated block size; threads beyond threadsPerSet idle. The
    /// TCAS baseline launches 1024-thread blocks with only one
    /// subtree's worth active (Table III: 66.67% theoretical but 17%
    /// achieved occupancy). 0 means allocate exactly threadsPerSet.
    unsigned blockThreads = 0;

    unsigned setsTotal(unsigned k) const
    {
        return (k + treesPerSet - 1) / treesPerSet;
    }
    unsigned rounds(unsigned k) const
    {
        return (setsTotal(k) + fusedSets - 1) / fusedSets;
    }
};

/**
 * FORS_Sign: k Merkle trees of height a. Phase structure per round:
 * one leaf-generation phase followed by one phase per stored level;
 * a final phase compresses the k roots into the FORS public key.
 * Supports baseline (sequential trees), MMTP, Fusion and Relax-FORS
 * through ForsGeometry.
 */
class ForsSignKernel : public gpu::KernelBody
{
  public:
    ForsSignKernel(MessageJob &job, const ForsGeometry &geo,
                   const MemPolicy &mem, Sha256Variant variant);

    std::string name() const override { return "FORS_Sign"; }
    unsigned numPhases(unsigned block_idx) const override;
    void run(unsigned phase, gpu::BlockContext &blk,
             unsigned tid) override;

    /** Shared memory consumed per block (tree regions + roots). */
    size_t sharedBytes() const;

    /** Block size (threads), including idle allocation. */
    unsigned
    blockThreads() const
    {
        return std::max(geo_.blockThreads, geo_.threadsPerSet);
    }

  private:
    const gpu::ReductionLayout &treeLayout() const;
    uint32_t treeRegionBase(unsigned fused_idx,
                            unsigned tree_in_set) const;
    void leafGen(gpu::BlockContext &blk, unsigned tid, unsigned round);
    void reduceLevel(gpu::BlockContext &blk, unsigned tid,
                     unsigned round, unsigned sub);
    void compressRoots(gpu::BlockContext &blk, unsigned tid);

    MessageJob &job_;
    ForsGeometry geo_;
    MemPolicy mem_;
    Sha256Variant variant_;
    std::unique_ptr<gpu::ReductionLayout> layout_;
    unsigned storedLevels_;  ///< reduction phases per round
    uint32_t rootsBase_;     ///< shared offset of the roots region
};

/**
 * TREE_Sign: all d hypertree subtrees in parallel — one thread per
 * leaf runs wots_gen_leaf (the dominant cost), then per-level
 * reductions extract auth paths and roots.
 */
class TreeSignKernel : public gpu::KernelBody
{
  public:
    TreeSignKernel(MessageJob &job, bool padded, const MemPolicy &mem,
                   Sha256Variant variant);

    std::string name() const override { return "TREE_Sign"; }
    unsigned numPhases(unsigned block_idx) const override;
    void run(unsigned phase, gpu::BlockContext &blk,
             unsigned tid) override;

    size_t sharedBytes() const;
    unsigned blockThreads() const;

  private:
    MessageJob &job_;
    MemPolicy mem_;
    Sha256Variant variant_;
    std::unique_ptr<gpu::ReductionLayout> layout_;
};

/**
 * WOTS+_Sign: one thread per chain across all d layers. HERO-Sign
 * computes exactly b_i chain steps with shift/mask index math; the
 * baseline walks full chains and uses div/mod (paper §IV-D).
 */
class WotsSignKernel : public gpu::KernelBody
{
  public:
    WotsSignKernel(MessageJob &job, bool full_chains, bool shift_math,
                   const MemPolicy &mem, Sha256Variant variant);

    std::string name() const override { return "WOTS+_Sign"; }
    unsigned numPhases(unsigned) const override { return 1; }
    void run(unsigned phase, gpu::BlockContext &blk,
             unsigned tid) override;

    size_t sharedBytes() const { return 0; }
    unsigned blockThreads() const;

  private:
    MessageJob &job_;
    bool fullChains_;
    bool shiftMath_;
    MemPolicy mem_;
    Sha256Variant variant_;
};

} // namespace herosign::core

#endif // HEROSIGN_CORE_KERNELS_HH
