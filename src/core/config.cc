#include "core/config.hh"

#include <stdexcept>

namespace herosign::core
{

std::string
kernelName(KernelKind kind)
{
    switch (kind) {
      case KernelKind::ForsSign: return "FORS_Sign";
      case KernelKind::TreeSign: return "TREE_Sign";
      case KernelKind::WotsSign: return "WOTS+_Sign";
    }
    return "?";
}

unsigned
nominalRegs(KernelKind kind, const sphincs::Params &params,
            Sha256Variant variant)
{
    const bool ptx = variant == Sha256Variant::Ptx;
    switch (kind) {
      case KernelKind::ForsSign:
        // Table III: 64 for the native build.
        return ptx ? 56 : 64;
      case KernelKind::TreeSign:
        // Table III: 128 (128f); §III-C2: 168 native / 95 PTX (256f).
        if (params.n >= 32)
            return ptx ? 95 : 168;
        return ptx ? 99 : 128;
      case KernelKind::WotsSign:
        // Table III: 72 (128f). Larger n keeps more live state; the
        // PTX mad chains slightly raise live ranges at n = 24
        // (profiled behaviour behind Table V's 192f row).
        if (params.n >= 32)
            return ptx ? 78 : 104;
        if (params.n >= 24)
            return ptx ? 76 : 74;
        return ptx ? 66 : 72;
    }
    throw std::logic_error("nominalRegs: bad kind");
}

double
hashCycles(KernelKind kind, Sha256Variant variant)
{
    const bool ptx = variant == Sha256Variant::Ptx;
    switch (kind) {
      case KernelKind::ForsSign:
        // Short-input thash streams: the prmt endian conversion and
        // mad scheduling win (paper §III-C1).
        return ptx ? 1240 : 1300;
      case KernelKind::TreeSign:
        // Long WOTS chains: the compiler's cross-iteration
        // optimization of the native build wins per instruction.
        return ptx ? 1175 : 1100;
      case KernelKind::WotsSign:
        return ptx ? 1205 : 1150;
    }
    throw std::logic_error("hashCycles: bad kind");
}

EngineConfig
EngineConfig::baseline()
{
    EngineConfig c;
    c.name = "TCAS-SPHINCSp";
    c.mmtp = false;
    c.fuse = false;
    c.autoTune = false;
    c.adaptivePtx = false;
    c.hybridMem = false;
    c.freeBank = false;
    c.launchBounds = false;
    c.useGraph = false;
    c.wotsFullChains = true;
    c.chainShiftMath = false;
    c.forsConfig = ForsConfig{1, 1, 0, false, 1};
    // TCAS pipelines chunks over a small stream pool but host-syncs
    // between the component kernels of each chunk.
    c.streams = 2;
    c.chunkMessages = 512;
    return c;
}

EngineConfig
EngineConfig::hero()
{
    EngineConfig c;
    c.name = "HERO-Sign";
    return c;
}

EngineConfig
EngineConfig::stepMmtp()
{
    EngineConfig c = baseline();
    c.name = "MMTP";
    c.mmtp = true;
    return c;
}

EngineConfig
EngineConfig::stepFuse()
{
    EngineConfig c = stepMmtp();
    c.name = "+FS";
    c.fuse = true;
    c.autoTune = true;
    return c;
}

EngineConfig
EngineConfig::stepPtx()
{
    EngineConfig c = stepFuse();
    c.name = "+PTX";
    c.adaptivePtx = true;
    c.launchBounds = true;
    return c;
}

EngineConfig
EngineConfig::stepHybridMem()
{
    EngineConfig c = stepPtx();
    c.name = "+HybridME";
    c.hybridMem = true;
    return c;
}

EngineConfig
EngineConfig::stepFreeBank()
{
    EngineConfig c = stepHybridMem();
    c.name = "+FreeBank";
    c.freeBank = true;
    return c;
}

} // namespace herosign::core
