#include "core/tuning.hh"

#include <algorithm>
#include <stdexcept>

namespace herosign::core
{

std::vector<TuningCandidate>
treeTuningSearch(const TuningInputs &in)
{
    const uint32_t t = 1u << in.forsHeight;
    // Relax-FORS: one thread covers two leaves and only levels >= 1
    // are kept in shared memory (paper §III-B4).
    const unsigned t_min = in.relax ? t / 2 : t;
    const size_t tree_smem =
        static_cast<size_t>(in.relax ? t / 2 : t) * in.n;
    // One sync per stored level per round.
    const unsigned levels = in.relax ? in.forsHeight - 1 : in.forsHeight;

    std::vector<TuningCandidate> cands;
    if (t_min == 0 || t_min > in.maxThreads)
        return cands;

    for (unsigned t_set = t_min; t_set <= in.maxThreads;
         t_set += t_min) {
        const unsigned n_tree = t_set / t_min;
        if (n_tree > in.forsTrees)
            break;
        const size_t s_set = n_tree * tree_smem;
        if (s_set > in.smemPerBlock)
            continue;

        const unsigned f_max = std::min<unsigned>(
            static_cast<unsigned>(in.smemPerBlock / s_set),
            in.forsTrees / n_tree);

        for (unsigned f = 1; f <= std::max(1u, f_max); ++f) {
            const unsigned t_used = t_set; // threads fixed per Set
            const size_t s_used = f * s_set;
            if (t_used > in.maxThreads || s_used > in.smemPerBlock)
                continue;

            const double u_t =
                static_cast<double>(t_used) / in.maxThreads;
            const double u_s =
                static_cast<double>(s_used) / in.smemPerBlock;

            // Line 18: configurations that saturate both resources,
            // or saturate the shared-memory limit (no headroom for
            // the roots region / driver), or underuse threads below
            // alpha, are excluded — they raise contention and lower
            // warp occupancy in practice.
            if ((u_t >= 1.0 && u_s >= 1.0) || u_s >= 1.0 ||
                u_t < in.alpha) {
                continue;
            }

            const unsigned sets_total =
                (in.forsTrees + n_tree - 1) / n_tree;
            const double sync =
                static_cast<double>(levels) * sets_total / f;

            TuningCandidate c;
            c.threadsPerSet = t_set;
            c.treesPerSet = n_tree;
            c.fusedSets = f;
            c.threadUtil = u_t;
            c.smemUtil = u_s;
            c.syncPoints = sync;
            c.smemUsed = s_used;
            c.relax = in.relax;
            cands.push_back(c);
        }
    }

    // Line 25: argmin over (sync, -U_T, -U_S).
    std::sort(cands.begin(), cands.end(),
              [](const TuningCandidate &a, const TuningCandidate &b) {
                  if (a.syncPoints != b.syncPoints)
                      return a.syncPoints < b.syncPoints;
                  if (a.threadUtil != b.threadUtil)
                      return a.threadUtil > b.threadUtil;
                  if (a.smemUtil != b.smemUtil)
                      return a.smemUtil > b.smemUtil;
                  // Deterministic final tie-break.
                  return a.threadsPerSet < b.threadsPerSet;
              });
    return cands;
}

TuningCandidate
autoTreeTuning(const sphincs::Params &params, const gpu::DeviceProps &dev,
               double alpha)
{
    TuningInputs in;
    in.forsTrees = params.forsTrees;
    in.forsHeight = params.forsHeight;
    in.n = params.n;
    // SEMEPerBlock(): static limit by default; architectures with a
    // larger opt-in dynamic allocation use it (paper §IV-F), but the
    // static 48 KB is never exceeded on the RTX 4090 path because the
    // search excludes saturating configurations anyway.
    in.smemPerBlock = std::min(dev.staticSmemPerBlock,
                               dev.maxDynamicSmemPerBlock);
    in.maxThreads = dev.maxThreadsPerBlock;
    in.alpha = alpha;

    // Relax-FORS when a single tree's leaf level is at least 16 KB
    // (256f: 512 x 32 B), per §III-B4.
    const size_t tree_bytes =
        static_cast<size_t>(params.forsLeaves()) * params.n;
    in.relax = tree_bytes >= 16 * 1024;

    auto cands = treeTuningSearch(in);
    if (cands.empty()) {
        // Small forests cannot satisfy the alpha utilization filter
        // (k * t below alpha * 1024 threads); alpha is "an optional
        // tune factor" (Algorithm 1, line 18) — drop it.
        in.alpha = 0.0;
        cands = treeTuningSearch(in);
    }
    if (cands.empty() && !in.relax) {
        // Fall back to the relax model if the plain search fails.
        in.relax = true;
        cands = treeTuningSearch(in);
    }
    if (cands.empty())
        throw std::runtime_error(
            "autoTreeTuning: no valid configuration for " + params.name +
            " on " + dev.name);
    return cands.front();
}

} // namespace herosign::core
