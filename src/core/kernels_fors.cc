#include <cstring>
#include <stdexcept>

#include "core/kernels.hh"
#include "sphincs/fors.hh"
#include "sphincs/thash.hh"

namespace herosign::core
{

using sphincs::Address;
using sphincs::AddrType;
using sphincs::maxN;

void
MessageJob::allocate(const sphincs::Params &params)
{
    forsSig.assign(params.forsSigBytes(), 0);
    forsPk.assign(params.n, 0);
    authPaths.assign(static_cast<size_t>(params.layers) *
                         params.treeHeight() * params.n,
                     0);
    roots.assign(static_cast<size_t>(params.layers) * params.n, 0);
    wotsMessages.assign(static_cast<size_t>(params.layers) * params.n,
                        0);
    wotsSigs.assign(static_cast<size_t>(params.layers) *
                        params.wotsSigBytes(),
                    0);
    layerTree.assign(params.layers, 0);
    layerLeaf.assign(params.layers, 0);
}

namespace
{

/** Run a hash-bearing closure and charge its compressions to tid. */
template <typename Fn>
void
charged(gpu::BlockContext &blk, unsigned tid, Fn &&fn)
{
    const uint64_t before = Sha256::compressionCount();
    fn();
    blk.chargeHash(tid, Sha256::compressionCount() - before);
}

} // namespace

ForsSignKernel::ForsSignKernel(MessageJob &job, const ForsGeometry &geo,
                               const MemPolicy &mem,
                               Sha256Variant variant)
    : job_(job), geo_(geo), mem_(mem), variant_(variant)
{
    const sphincs::Params &p = job_.ctx->params();
    const uint32_t t = p.forsLeaves();
    const uint32_t layout_leaves = geo_.relax ? t / 2 : t;
    if (geo_.threadsPerSet == 0) {
        geo_.threadsPerSet =
            geo_.treesPerSet * (geo_.relax ? t / 2 : t);
    }
    if (geo_.threadsPerSet !=
        geo_.treesPerSet * (geo_.relax ? t / 2 : t)) {
        throw std::invalid_argument(
            "ForsSignKernel: threadsPerSet must be Ntree * Tmin");
    }

    if (geo_.padded) {
        layout_ = std::make_unique<gpu::PaddedReductionLayout>(
            layout_leaves, p.n, 0);
    } else {
        layout_ = std::make_unique<gpu::NaiveReductionLayout>(
            layout_leaves, p.n, 0);
    }
    storedLevels_ = geo_.relax ? p.forsHeight - 1 : p.forsHeight;
    rootsBase_ = geo_.fusedSets * geo_.treesPerSet *
                 layout_->footprint();
}

const gpu::ReductionLayout &
ForsSignKernel::treeLayout() const
{
    return *layout_;
}

uint32_t
ForsSignKernel::treeRegionBase(unsigned fused_idx,
                               unsigned tree_in_set) const
{
    return (fused_idx * geo_.treesPerSet + tree_in_set) *
           layout_->footprint();
}

size_t
ForsSignKernel::sharedBytes() const
{
    const sphincs::Params &p = job_.ctx->params();
    return rootsBase_ + static_cast<size_t>(p.forsTrees) * p.n;
}

unsigned
ForsSignKernel::numPhases(unsigned) const
{
    const sphincs::Params &p = job_.ctx->params();
    return geo_.rounds(p.forsTrees) * (1 + storedLevels_) + 1;
}

void
ForsSignKernel::run(unsigned phase, gpu::BlockContext &blk, unsigned tid)
{
    const sphincs::Params &p = job_.ctx->params();
    const unsigned per_round = 1 + storedLevels_;
    const unsigned rounds = geo_.rounds(p.forsTrees);
    if (phase == rounds * per_round) {
        compressRoots(blk, tid);
        return;
    }
    const unsigned round = phase / per_round;
    const unsigned sub = phase % per_round;
    if (sub == 0)
        leafGen(blk, tid, round);
    else
        reduceLevel(blk, tid, round, sub);
}

void
ForsSignKernel::leafGen(gpu::BlockContext &blk, unsigned tid,
                        unsigned round)
{
    const sphincs::Params &p = job_.ctx->params();
    const sphincs::Context &ctx = *job_.ctx;
    const unsigned n = p.n;
    const uint32_t t = p.forsLeaves();
    const unsigned t_min = geo_.relax ? t / 2 : t;
    if (tid >= geo_.threadsPerSet)
        return;
    const unsigned tree_in_set = tid / t_min;
    const unsigned pos = tid % t_min;
    const size_t sig_stride = static_cast<size_t>(p.forsHeight + 1) * n;

    Address fors_adrs;
    fors_adrs.setLayer(0);
    fors_adrs.setTree(job_.idxTree);
    fors_adrs.setType(AddrType::ForsTree);
    fors_adrs.setKeypair(job_.idxLeaf);

    for (unsigned f = 0; f < geo_.fusedSets; ++f) {
        const unsigned set = round * geo_.fusedSets + f;
        const unsigned g = set * geo_.treesPerSet + tree_in_set;
        if (set >= geo_.setsTotal(p.forsTrees) || g >= p.forsTrees)
            continue;
        const uint32_t region = treeRegionBase(f, tree_in_set);
        const uint32_t sel = job_.forsIndices[g];
        uint8_t *sig_tree = job_.forsSig.data() + g * sig_stride;

        auto make_leaf = [&](uint32_t j, uint8_t *leaf_out) {
            const uint32_t abs = g * t + j;
            uint8_t sk[maxN];
            charged(blk, tid, [&] {
                sphincs::forsSkGen(sk, ctx, fors_adrs, abs);
            });
            // FORS thash calls are short-lived: each re-reads the
            // seeded state block (64 B) — the traffic HybridME moves
            // to constant memory (paper §III-D).
            mem_.chargeSeedRead(blk, tid, 64);
            mem_.chargeSeedRead(blk, tid, 64); // the F call below
            if (j == sel) {
                std::memcpy(sig_tree, sk, n);
                blk.chargeGlobal(tid, n);
            }
            Address leaf_adrs = fors_adrs;
            leaf_adrs.setTreeHeight(0);
            leaf_adrs.setTreeIndex(abs);
            charged(blk, tid, [&] {
                sphincs::thashF(leaf_out, ctx, leaf_adrs, sk);
            });
            if (j == (sel ^ 1u)) {
                std::memcpy(sig_tree + n, leaf_out, n);
                blk.chargeGlobal(tid, n);
            }
        };

        if (!geo_.relax) {
            uint8_t leaf[maxN];
            make_leaf(pos, leaf);
            blk.storeShared(tid, region + layout_->nodeAddr(0, pos),
                            leaf, n);
        } else {
            // Relax-FORS: two leaves in the register relax buffer,
            // combine immediately, store only the level-1 parent.
            uint8_t leaf0[maxN], leaf1[maxN], parent[maxN];
            make_leaf(2 * pos, leaf0);
            make_leaf(2 * pos + 1, leaf1);
            Address h_adrs = fors_adrs;
            h_adrs.setTreeHeight(1);
            h_adrs.setTreeIndex(pos + ((g * t) >> 1));
            charged(blk, tid, [&] {
                sphincs::thashH(parent, ctx, h_adrs, leaf0, leaf1);
            });
            mem_.chargeSeedRead(blk, tid, 64);
            blk.storeShared(tid, region + layout_->nodeAddr(0, pos),
                            parent, n);
            if (pos == ((sel >> 1) ^ 1u)) {
                // The level-1 auth node is produced right here.
                std::memcpy(sig_tree + 2 * n, parent, n);
                blk.chargeGlobal(tid, n);
            }
        }
    }
}

void
ForsSignKernel::reduceLevel(gpu::BlockContext &blk, unsigned tid,
                            unsigned round, unsigned sub)
{
    const sphincs::Params &p = job_.ctx->params();
    const sphincs::Context &ctx = *job_.ctx;
    const unsigned n = p.n;
    const uint32_t t = p.forsLeaves();
    const uint32_t layout_leaves = geo_.relax ? t / 2 : t;
    const uint32_t parents_per_tree = layout_leaves >> sub;
    const size_t sig_stride = static_cast<size_t>(p.forsHeight + 1) * n;
    // Level produced in real tree coordinates.
    const unsigned out_level = geo_.relax ? sub + 1 : sub;

    // Threads keep their leaf-generation tree assignment ("Threads
    // Fixed per Set", Algorithm 1 line 12): each tree's reduction is
    // handled by the warps that own its leaves, so a warp never
    // mixes trees — which is what keeps the padded layout fully
    // conflict-free (Table VI) at every level.
    const unsigned t_min = geo_.relax ? t / 2 : t;
    if (tid >= geo_.threadsPerSet)
        return;
    const unsigned tree_in_set = tid / t_min;
    const uint32_t parent = tid % t_min;
    if (parent >= parents_per_tree)
        return;

    Address fors_adrs;
    fors_adrs.setLayer(0);
    fors_adrs.setTree(job_.idxTree);
    fors_adrs.setType(AddrType::ForsTree);
    fors_adrs.setKeypair(job_.idxLeaf);

    for (unsigned f = 0; f < geo_.fusedSets; ++f) {
        const unsigned set = round * geo_.fusedSets + f;
        const unsigned g = set * geo_.treesPerSet + tree_in_set;
        if (set >= geo_.setsTotal(p.forsTrees) || g >= p.forsTrees)
            continue;
        const uint32_t region = treeRegionBase(f, tree_in_set);
        const uint32_t sel = job_.forsIndices[g];
        uint8_t *sig_tree = job_.forsSig.data() + g * sig_stride;

        uint8_t left[maxN], right[maxN], node[maxN];
        blk.loadShared(tid,
                       region + layout_->nodeAddr(sub - 1, 2 * parent),
                       left, n);
        blk.loadShared(tid,
                       region +
                           layout_->nodeAddr(sub - 1, 2 * parent + 1),
                       right, n);

        Address h_adrs = fors_adrs;
        h_adrs.setTreeHeight(out_level);
        h_adrs.setTreeIndex(parent + ((g * t) >> out_level));
        charged(blk, tid, [&] {
            sphincs::thashH(node, ctx, h_adrs, left, right);
        });
        mem_.chargeSeedRead(blk, tid, 64);

        if (parents_per_tree == 1) {
            // Root: stash in the shared roots region for the final
            // compression phase.
            blk.storeShared(tid, rootsBase_ + g * n, node, n);
        } else {
            blk.storeShared(tid,
                            region + layout_->nodeAddr(sub, parent),
                            node, n);
        }

        if (out_level < p.forsHeight &&
            parent == ((sel >> out_level) ^ 1u)) {
            std::memcpy(sig_tree + (1 + out_level) * n, node, n);
            blk.chargeGlobal(tid, n);
        }
    }
}

void
ForsSignKernel::compressRoots(gpu::BlockContext &blk, unsigned tid)
{
    if (tid != 0)
        return;
    const sphincs::Params &p = job_.ctx->params();
    const sphincs::Context &ctx = *job_.ctx;
    const unsigned n = p.n;

    std::vector<uint8_t> roots(static_cast<size_t>(p.forsTrees) * n);
    for (unsigned g = 0; g < p.forsTrees; ++g) {
        blk.loadShared(tid, rootsBase_ + g * n, roots.data() + g * n,
                       n);
    }

    Address pk_adrs;
    pk_adrs.setLayer(0);
    pk_adrs.setTree(job_.idxTree);
    pk_adrs.setType(AddrType::ForsRoots);
    pk_adrs.setKeypair(job_.idxLeaf);
    charged(blk, tid, [&] {
        sphincs::thash(job_.forsPk.data(), ctx, pk_adrs, roots);
    });
    mem_.chargeSeedRead(blk, tid, 64);
    blk.chargeGlobal(tid, n);
}

} // namespace herosign::core
