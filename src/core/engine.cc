#include "core/engine.hh"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <memory>
#include <stdexcept>

#include "batch/batch_signer.hh"
#include "sphincs/fors.hh"
#include "sphincs/thash.hh"

namespace herosign::core
{

using sphincs::Context;
using sphincs::DigestSplit;
using sphincs::Params;
using sphincs::SecretKey;

namespace
{

/** Highest register count that still fits one block on the SM. */
unsigned
maxFeasibleRegs(const gpu::DeviceProps &dev, unsigned threads)
{
    const unsigned warps = (threads + dev.warpSize - 1) / dev.warpSize;
    // Per-warp allocation granularity of 256 registers.
    const uint32_t per_warp_budget = dev.registersPerSm / warps;
    const uint32_t granular = per_warp_budget / 256 * 256;
    return std::min<uint32_t>(dev.maxRegsPerThread,
                              granular / dev.warpSize);
}

uint64_t
maskBits(unsigned bits)
{
    return bits >= 64 ? ~0ULL : ((1ULL << bits) - 1);
}

} // namespace

SignEngine::SignEngine(const Params &params, const gpu::DeviceProps &dev,
                       const EngineConfig &config)
    : params_(params), dev_(dev), config_(config)
{
    params_.validate();

    // Deterministic profiling key; timing is key-independent.
    ByteVec seed(3 * static_cast<size_t>(params_.n), 0x5c);
    sphincs::SphincsPlus scheme(params_);
    auto kp = scheme.keygenFromSeed(seed);
    profKey_ = std::make_unique<SecretKey>(kp.sk);
    profCtx_ = std::make_unique<Context>(params_, profKey_->pkSeed,
                                         profKey_->skSeed);

    resolveFors();
    resolveKernels();
}

void
SignEngine::resolveFors()
{
    const uint32_t t = params_.forsLeaves();
    forsGeo_.padded = config_.freeBank;
    if (config_.autoTune && config_.fuse) {
        tuning_ = autoTreeTuning(params_, dev_);
        forsGeo_.treesPerSet = tuning_.treesPerSet;
        forsGeo_.fusedSets = tuning_.fusedSets;
        forsGeo_.threadsPerSet = tuning_.threadsPerSet;
        forsGeo_.relax = tuning_.relax;
    } else if (config_.mmtp) {
        // MMTP without fusion: as many whole trees per block as the
        // thread limit allows, one Set at a time.
        const unsigned per_block =
            std::max(1u, dev_.maxThreadsPerBlock / t);
        forsGeo_.treesPerSet =
            std::min<unsigned>(params_.forsTrees, per_block);
        forsGeo_.fusedSets = 1;
        forsGeo_.threadsPerSet = forsGeo_.treesPerSet * t;
        forsGeo_.relax = false;
    } else {
        // TCAS baseline: one tree at a time, but launched as a full
        // 1024-thread block (Table III: theoretical occupancy 66.67%
        // with only 17% achieved).
        forsGeo_.treesPerSet = 1;
        forsGeo_.fusedSets = 1;
        forsGeo_.threadsPerSet = t;
        forsGeo_.relax = false;
        forsGeo_.blockThreads =
            std::max(t, std::min(512u, dev_.maxThreadsPerBlock));
    }
    forsGeo_.threadsPerSet =
        std::min(forsGeo_.threadsPerSet, dev_.maxThreadsPerBlock);
    if (config_.forsConfig.threadsPerSet != 0) {
        // Explicit override (tests / ablations).
        forsGeo_.treesPerSet = config_.forsConfig.treesPerSet;
        forsGeo_.fusedSets = config_.forsConfig.fusedSets;
        forsGeo_.threadsPerSet = config_.forsConfig.threadsPerSet;
        forsGeo_.relax = config_.forsConfig.relax;
    }
}

MessageJob
SignEngine::makeProfilingJob() const
{
    MessageJob job;
    job.ctx = profCtx_.get();
    job.allocate(params_);
    job.idxTree = 0x0123456789abcdefULL & maskBits(params_.treeBits());
    job.idxLeaf = 3 % params_.treeLeaves();
    job.forsIndices.resize(params_.forsTrees);
    for (unsigned i = 0; i < params_.forsTrees; ++i)
        job.forsIndices[i] = (i * 37 + 11) % params_.forsLeaves();

    uint64_t tree = job.idxTree;
    uint32_t leaf = job.idxLeaf;
    for (unsigned layer = 0; layer < params_.layers; ++layer) {
        job.layerTree[layer] = tree;
        job.layerLeaf[layer] = leaf;
        leaf = static_cast<uint32_t>(tree &
                                     maskBits(params_.treeHeight()));
        tree >>= params_.treeHeight();
    }
    // Plausible WOTS messages for profiling.
    for (auto &b : job.wotsMessages)
        b = 0xa5;
    return job;
}

std::unique_ptr<gpu::KernelBody>
SignEngine::makeKernel(KernelKind kind, MessageJob &job,
                       Sha256Variant variant) const
{
    MemPolicy mem{config_.hybridMem};
    switch (kind) {
      case KernelKind::ForsSign:
        return std::make_unique<ForsSignKernel>(job, forsGeo_, mem,
                                                variant);
      case KernelKind::TreeSign:
        return std::make_unique<TreeSignKernel>(job, config_.freeBank,
                                                mem, variant);
      case KernelKind::WotsSign:
        return std::make_unique<WotsSignKernel>(
            job, config_.wotsFullChains, config_.chainShiftMath, mem,
            variant);
    }
    throw std::logic_error("makeKernel: bad kind");
}

KernelChoice
SignEngine::profileKernel(KernelKind kind, Sha256Variant variant,
                          MessageJob &job) const
{
    KernelChoice choice;
    choice.kind = kind;
    choice.variant = variant;
    choice.nominalRegs = nominalRegs(kind, params_, variant);

    auto body = makeKernel(kind, job, variant);
    gpu::LaunchSpec spec;
    spec.blockDim = [&] {
        switch (kind) {
          case KernelKind::ForsSign:
            return static_cast<ForsSignKernel *>(body.get())
                ->blockThreads();
          case KernelKind::TreeSign:
            return static_cast<TreeSignKernel *>(body.get())
                ->blockThreads();
          case KernelKind::WotsSign:
            return static_cast<WotsSignKernel *>(body.get())
                ->blockThreads();
        }
        return 1u;
    }();
    spec.sharedBytes = [&] {
        switch (kind) {
          case KernelKind::ForsSign:
            return static_cast<ForsSignKernel *>(body.get())
                ->sharedBytes();
          case KernelKind::TreeSign:
            return static_cast<TreeSignKernel *>(body.get())
                ->sharedBytes();
          default:
            return size_t{0};
        }
    }();
    spec.gridDim = 1;
    spec.cyclesPerHash = hashCycles(kind, variant);
    choice.threads = spec.blockDim;
    choice.smemBytes = spec.sharedBytes;
    choice.cyclesPerHash = spec.cyclesPerHash;

    spec.body = std::shared_ptr<gpu::KernelBody>(std::move(body));
    auto result = gpu::executeLaunch(dev_, cp_, spec);
    choice.profile = result.profile;

    // Launch-bounds resolution: the kernel must fit at least one
    // block; beyond that, profiling decides whether trading spills
    // for occupancy pays off (paper §III-A / §III-C2).
    const unsigned feasible = maxFeasibleRegs(dev_, choice.threads);
    std::vector<unsigned> clamp_cands{
        std::min(choice.nominalRegs, feasible)};
    if (config_.launchBounds) {
        // Moderate clamps only: deeper clamps spill so much local
        // state that profiling never selects them on real parts.
        for (unsigned c : {102u, 96u}) {
            if (c < std::min(choice.nominalRegs, feasible))
                clamp_cands.push_back(c);
        }
    }

    double best = 0;
    for (unsigned clamp : clamp_cands) {
        const unsigned spilled = choice.nominalRegs > clamp
                                     ? choice.nominalRegs - clamp
                                     : 0;
        gpu::KernelResources res{clamp, choice.threads,
                                 choice.smemBytes};
        auto timing = gpu::kernelTiming(dev_, cp_, res, choice.profile,
                                        referenceBatch);
        timing.durationUs *= 1.0 + spillPenaltyPerReg * spilled;
        if (best == 0 || timing.durationUs < best) {
            best = timing.durationUs;
            choice.clampedRegs = clamp;
            choice.spilledRegs = spilled;
            choice.timing = timing;
        }
    }
    choice.cyclesPerHash *=
        1.0 + spillPenaltyPerReg * choice.spilledRegs;
    return choice;
}

void
SignEngine::resolveKernels()
{
    MessageJob job = makeProfilingJob();
    const std::array<KernelKind, 3> kinds = {
        KernelKind::ForsSign, KernelKind::TreeSign,
        KernelKind::WotsSign};

    for (size_t i = 0; i < kinds.size(); ++i) {
        KernelChoice native =
            profileKernel(kinds[i], Sha256Variant::Native, job);
        if (config_.adaptivePtx) {
            KernelChoice ptx =
                profileKernel(kinds[i], Sha256Variant::Ptx, job);
            kernels_[i] = ptx.timing.durationUs <
                                  native.timing.durationUs
                              ? ptx
                              : native;
        } else {
            kernels_[i] = native;
        }
    }
}

void
SignEngine::prepareJob(MessageJob &job, const Context &ctx, ByteSpan msg,
                       const SecretKey &sk, ByteSpan opt_rand,
                       uint8_t *r_out) const
{
    job.ctx = &ctx;
    job.allocate(params_);

    ByteSpan rand = opt_rand.empty() ? ByteSpan(sk.pkSeed) : opt_rand;
    if (rand.size() != params_.n)
        throw std::invalid_argument("sign: opt_rand must be n bytes");
    sphincs::prfMsg(r_out, ctx, sk.skPrf, rand, msg);

    ByteVec digest(params_.msgDigestBytes());
    sphincs::hashMessage(digest, ctx, ByteSpan(r_out, params_.n),
                         sk.pkRoot, msg);
    DigestSplit split = sphincs::splitDigest(params_, digest);

    job.idxTree = split.idxTree;
    job.idxLeaf = split.idxLeaf;
    job.forsIndices.resize(params_.forsTrees);
    sphincs::messageToIndices(job.forsIndices.data(), params_,
                              split.forsMsg.data());

    uint64_t tree = split.idxTree;
    uint32_t leaf = split.idxLeaf;
    for (unsigned layer = 0; layer < params_.layers; ++layer) {
        job.layerTree[layer] = tree;
        job.layerLeaf[layer] = leaf;
        leaf = static_cast<uint32_t>(
            tree & maskBits(params_.treeHeight()));
        tree >>= params_.treeHeight();
    }
}

SignOutcome
SignEngine::sign(ByteSpan msg, const SecretKey &sk,
                 ByteSpan opt_rand) const
{
    Context ctx(params_, sk.pkSeed, sk.skSeed);
    MessageJob job;
    uint8_t r[sphincs::maxN];
    prepareJob(job, ctx, msg, sk, opt_rand, r);

    SignOutcome out;
    out.kernels = kernels_;

    // FORS_Sign.
    {
        auto body =
            makeKernel(KernelKind::ForsSign, job, kernels_[0].variant);
        gpu::LaunchSpec spec;
        spec.blockDim = kernels_[0].threads;
        spec.sharedBytes = kernels_[0].smemBytes;
        spec.gridDim = 1;
        spec.cyclesPerHash = kernels_[0].cyclesPerHash;
        spec.regsPerThread = kernels_[0].clampedRegs;
        spec.body = std::shared_ptr<gpu::KernelBody>(std::move(body));
        auto res = gpu::executeLaunch(dev_, cp_, spec);
        out.kernels[0].profile = res.profile;
    }

    // TREE_Sign (independent of FORS).
    {
        auto body =
            makeKernel(KernelKind::TreeSign, job, kernels_[1].variant);
        gpu::LaunchSpec spec;
        spec.blockDim = kernels_[1].threads;
        spec.sharedBytes = kernels_[1].smemBytes;
        spec.gridDim = 1;
        spec.cyclesPerHash = kernels_[1].cyclesPerHash;
        spec.regsPerThread = kernels_[1].clampedRegs;
        spec.body = std::shared_ptr<gpu::KernelBody>(std::move(body));
        auto res = gpu::executeLaunch(dev_, cp_, spec);
        out.kernels[1].profile = res.profile;
    }

    // WOTS+_Sign: needs the FORS pk and the subtree roots.
    std::memcpy(job.wotsMessages.data(), job.forsPk.data(), params_.n);
    for (unsigned layer = 1; layer < params_.layers; ++layer) {
        std::memcpy(job.wotsMessages.data() +
                        static_cast<size_t>(layer) * params_.n,
                    job.roots.data() +
                        static_cast<size_t>(layer - 1) * params_.n,
                    params_.n);
    }
    {
        auto body =
            makeKernel(KernelKind::WotsSign, job, kernels_[2].variant);
        gpu::LaunchSpec spec;
        spec.blockDim = kernels_[2].threads;
        spec.gridDim = 1;
        spec.cyclesPerHash = kernels_[2].cyclesPerHash;
        spec.regsPerThread = kernels_[2].clampedRegs;
        spec.body = std::shared_ptr<gpu::KernelBody>(std::move(body));
        auto res = gpu::executeLaunch(dev_, cp_, spec);
        out.kernels[2].profile = res.profile;
    }

    // Assemble R || FORS || per layer (WOTS sig || auth path).
    out.signature.reserve(params_.sigBytes());
    out.signature.insert(out.signature.end(), r, r + params_.n);
    append(out.signature, job.forsSig);
    const size_t wots_bytes = params_.wotsSigBytes();
    const size_t auth_bytes =
        static_cast<size_t>(params_.treeHeight()) * params_.n;
    for (unsigned layer = 0; layer < params_.layers; ++layer) {
        append(out.signature,
               ByteSpan(job.wotsSigs.data() + layer * wots_bytes,
                        wots_bytes));
        append(out.signature,
               ByteSpan(job.authPaths.data() + layer * auth_bytes,
                        auth_bytes));
    }
    if (out.signature.size() != params_.sigBytes())
        throw std::logic_error("sign: assembled size mismatch");
    return out;
}

gpu::KernelTiming
SignEngine::kernelTimingAt(KernelKind kind, unsigned messages) const
{
    const KernelChoice &k =
        kernels_[static_cast<size_t>(kind == KernelKind::ForsSign
                                         ? 0
                                         : kind == KernelKind::TreeSign
                                               ? 1
                                               : 2)];
    auto timing = gpu::kernelTiming(dev_, cp_, k.resources(), k.profile,
                                    messages);
    timing.durationUs *= 1.0 + spillPenaltyPerReg * k.spilledRegs;
    return timing;
}

BatchExecOutcome
SignEngine::signBatch(const std::vector<ByteVec> &messages,
                      const SecretKey &sk,
                      unsigned worker_override) const
{
    batch::BatchSignerConfig bc;
    bc.workers = std::max(
        1u, worker_override ? worker_override : config_.batchWorkers);
    bc.shards = std::max(1u, config_.streams);

    batch::BatchSigner signer(params_, sk, bc);
    return signBatch(messages, signer);
}

BatchExecOutcome
SignEngine::signBatch(const std::vector<ByteVec> &messages,
                      batch::BatchSigner &signer) const
{
    if (signer.params().name != params_.name ||
        signer.params().n != params_.n)
        throw std::invalid_argument(
            "signBatch: signer is bound to parameter set '" +
            signer.params().name + "', engine runs '" + params_.name +
            "'");

    BatchExecOutcome out;
    out.workers = signer.workers();

    auto futures = signer.submitMany(messages);
    out.signatures.reserve(futures.size());
    for (auto &f : futures)
        out.signatures.push_back(f.get());
    out.stats = signer.drain();
    out.measuredMakespanUs = out.stats.wallUs;
    if (!messages.empty())
        out.predictedMakespanUs =
            signBatchTiming(static_cast<unsigned>(messages.size()))
                .makespanUs;
    return out;
}

VerifyExecOutcome
SignEngine::verifyBatch(const std::vector<ByteVec> &messages,
                        const std::vector<ByteVec> &signatures,
                        const sphincs::PublicKey &pk) const
{
    if (messages.size() != signatures.size())
        throw std::invalid_argument(
            "verifyBatch: message/signature count mismatch");

    VerifyExecOutcome out;
    if (messages.empty())
        return out;

    sphincs::SphincsPlus scheme(params_);
    sphincs::Context ctx(params_, pk.pkSeed, {});
    std::vector<ByteSpan> msgs(messages.size());
    std::vector<ByteSpan> sigs(messages.size());
    for (size_t i = 0; i < messages.size(); ++i) {
        msgs[i] = ByteSpan(messages[i]);
        sigs[i] = ByteSpan(signatures[i]);
    }

    const auto t0 = std::chrono::steady_clock::now();
    out.ok = scheme.verifyBatch(ctx, msgs, sigs, pk);
    const auto t1 = std::chrono::steady_clock::now();

    for (size_t i = 0; i < messages.size(); ++i) {
        if (out.ok[i])
            ++out.accepted;
        else
            ++out.rejected;
    }
    out.wallUs =
        std::chrono::duration<double, std::micro>(t1 - t0).count();
    out.verifiesPerSec =
        out.wallUs > 0 ? messages.size() * 1e6 / out.wallUs : 0.0;
    return out;
}

BatchOutcome
SignEngine::signBatchTiming(unsigned messages,
                            unsigned chunk_override) const
{
    const unsigned chunk = std::max(
        1u, std::min(chunk_override ? chunk_override
                                    : config_.chunkMessages,
                     messages));
    const unsigned chunks = (messages + chunk - 1) / chunk;

    // Per-chunk kernel descriptors.
    auto desc = [&](size_t i, unsigned chunk_msgs) {
        const KernelChoice &k = kernels_[i];
        auto timing = gpu::kernelTiming(dev_, cp_, k.resources(),
                                        k.profile, chunk_msgs);
        timing.durationUs *=
            1.0 + spillPenaltyPerReg * k.spilledRegs;
        gpu::KernelExecDesc d;
        d.name = kernelName(k.kind);
        d.durationAloneUs = timing.durationUs;
        const double work =
            k.profile.totalLaneCycles() * chunk_msgs;
        d.utilization = std::min(
            1.0, work / (timing.durationUs * dev_.intLanesPerUs()));
        return d;
    };

    gpu::DeviceSim sim(dev_);
    unsigned remaining = messages;
    for (unsigned c = 0; c < chunks; ++c) {
        const unsigned m = std::min(chunk, remaining);
        remaining -= m;
        if (config_.useGraph) {
            gpu::TaskGraph g;
            int fors = g.addNode(desc(0, m));
            int tree = g.addNode(desc(1, m));
            g.addNode(desc(2, m), {fors, tree});
            sim.launchGraph(g, static_cast<int>(c % config_.streams));
        } else if (config_.name == "TCAS-SPHINCSp" ||
                   !config_.mmtp) {
            // Baseline: strictly sequential in one stream per chunk,
            // with a host synchronization + intermediate-result copy
            // between component kernels (the source of Table II's
            // roughly constant idle time).
            constexpr double host_sync_gap_us = 380.0;
            const int s = static_cast<int>(c % config_.streams);
            auto d0 = desc(0, m);
            auto d1 = desc(1, m);
            auto d2 = desc(2, m);
            d1.preGapUs = host_sync_gap_us;
            d2.preGapUs = host_sync_gap_us;
            if (c > 0)
                d0.preGapUs = host_sync_gap_us;
            sim.launch(d0, s);
            sim.launch(d1, s);
            sim.launch(d2, s);
        } else {
            // HERO without graphs: FORS/TREE on sibling streams,
            // WOTS joins them.
            const int s =
                static_cast<int>(2 * (c % config_.streams));
            int fors = sim.launch(desc(0, m), s);
            int tree = sim.launch(desc(1, m), s + 1);
            sim.launch(desc(2, m), s, {fors, tree});
        }
    }

    BatchOutcome out;
    out.messages = messages;
    out.schedule = sim.run();
    out.makespanUs = out.schedule.makespanUs;
    out.idleUs = out.schedule.idleUs;
    out.launchLatencyUs = out.schedule.launchLatencyUs;
    out.perKernelBusyUs = out.schedule.perKernelBusyUs();
    out.kops = out.makespanUs > 0
                   ? messages * 1000.0 / out.makespanUs
                   : 0;
    return out;
}

} // namespace herosign::core
