#include <cstring>

#include "core/kernels.hh"
#include "sphincs/thash.hh"
#include "sphincs/wots.hh"

namespace herosign::core
{

using sphincs::Address;
using sphincs::AddrType;
using sphincs::maxN;
using sphincs::maxWotsLen;

namespace
{

template <typename Fn>
void
charged(gpu::BlockContext &blk, unsigned tid, Fn &&fn)
{
    const uint64_t before = Sha256::compressionCount();
    fn();
    blk.chargeHash(tid, Sha256::compressionCount() - before);
}

} // namespace

WotsSignKernel::WotsSignKernel(MessageJob &job, bool full_chains,
                               bool shift_math, const MemPolicy &mem,
                               Sha256Variant variant)
    : job_(job), fullChains_(full_chains), shiftMath_(shift_math),
      mem_(mem), variant_(variant)
{
}

unsigned
WotsSignKernel::blockThreads() const
{
    const sphincs::Params &p = job_.ctx->params();
    const unsigned chains = p.layers * p.wotsLen();
    const unsigned rounded = ((chains + 31) / 32) * 32;
    return std::min(1024u, rounded);
}

void
WotsSignKernel::run(unsigned phase, gpu::BlockContext &blk, unsigned tid)
{
    (void)phase;
    const sphincs::Params &p = job_.ctx->params();
    const sphincs::Context &ctx = *job_.ctx;
    const unsigned n = p.n;
    const unsigned len = p.wotsLen();
    const unsigned chains = p.layers * len;
    const unsigned threads = blockThreads();

    const double math_cycles =
        shiftMath_ ? chainMathCyclesShift : chainMathCyclesDivMod;

    for (unsigned c = tid; c < chains; c += threads) {
        const unsigned layer = c / len;
        const unsigned chain = c % len;

        // Read the n-byte message this layer signs (FORS pk or the
        // subtree root below).
        const uint8_t *msg =
            job_.wotsMessages.data() + static_cast<size_t>(layer) * n;
        blk.chargeGlobal(tid, n);

        // Chain length for this digit. Checksum digits require the
        // sum over all len1 message digits.
        uint32_t lengths[maxWotsLen];
        sphincs::chainLengths(lengths, p, msg);
        const unsigned digit_work =
            chain < p.wotsLen1() ? 1 : p.wotsLen1();
        blk.chargeCycles(tid, math_cycles * digit_work);

        Address adrs;
        adrs.setLayer(layer);
        adrs.setTree(job_.layerTree[layer]);
        adrs.setType(AddrType::WotsPrf);
        adrs.setKeypair(job_.layerLeaf[layer]);

        uint8_t sk[maxN];
        charged(blk, tid, [&] {
            sphincs::wotsChainSk(sk, ctx, adrs, chain);
        });
        mem_.chargeSeedRead(blk, tid, 2ull * n);

        Address hash_adrs;
        hash_adrs.setLayer(layer);
        hash_adrs.setTree(job_.layerTree[layer]);
        hash_adrs.setType(AddrType::WotsHash);
        hash_adrs.setKeypair(job_.layerLeaf[layer]);
        hash_adrs.setChain(chain);

        uint8_t *out = job_.wotsSigs.data() +
                       (static_cast<size_t>(layer) * len + chain) * n;
        charged(blk, tid, [&] {
            sphincs::genChain(out, sk, 0, lengths[chain], ctx,
                              hash_adrs);
        });
        blk.chargeCycles(tid, math_cycles * lengths[chain]);
        blk.chargeGlobal(tid, n);

        if (fullChains_) {
            // TCAS walks every chain to w-1 and selects afterwards;
            // charge the surplus steps (one compression each).
            const unsigned surplus = p.wotsW - 1 - lengths[chain];
            blk.chargeHash(tid, surplus);
            blk.chargeCycles(tid, math_cycles * surplus);
        }
    }
}

} // namespace herosign::core
