/**
 * @file
 * The Auto Tree Tuning search (paper Algorithm 1).
 *
 * Enumerates (T_set, F) configurations for FORS under the target
 * GPU's shared-memory and thread constraints, filters per the
 * paper's heuristics, and ranks candidates by
 * (sync points asc, thread utilization desc, smem utilization desc).
 */

#ifndef HEROSIGN_CORE_TUNING_HH
#define HEROSIGN_CORE_TUNING_HH

#include <vector>

#include "gpusim/device_props.hh"
#include "sphincs/params.hh"

namespace herosign::core
{

/** One (T_set, F) candidate produced by the search. */
struct TuningCandidate
{
    unsigned threadsPerSet = 0;  ///< T_set
    unsigned treesPerSet = 0;    ///< Ntree = T_set / T_min
    unsigned fusedSets = 0;      ///< F
    double threadUtil = 0;       ///< U_T = T_set / 1024
    double smemUtil = 0;         ///< U_S = S_used / S_max
    double syncPoints = 0;       ///< log2(t) * ceil(k/Ntree) / F
    size_t smemUsed = 0;         ///< F * S_set bytes
    bool relax = false;          ///< searched under Relax-FORS
};

/** Inputs of Algorithm 1. */
struct TuningInputs
{
    unsigned forsTrees;      ///< k
    unsigned forsHeight;     ///< log2(t)
    unsigned n;              ///< node bytes
    size_t smemPerBlock;     ///< SEMEPerBlock()
    unsigned maxThreads = 1024;
    double alpha = 0.5;      ///< minimum thread utilization filter
    bool relax = false;      ///< halve T_min and per-tree smem
};

/**
 * Algorithm 1: enumerate and filter the candidate set. Candidates
 * are returned sorted by the paper's ranking; empty when nothing
 * satisfies the constraints.
 */
std::vector<TuningCandidate> treeTuningSearch(const TuningInputs &in);

/**
 * The full offline tuner for a parameter set on a device: queries
 * the device limits (cudaGetDeviceProperties in the paper), decides
 * whether the Relax-FORS model is needed (per-tree footprint
 * >= 16 KB, §III-B4), runs the search, and returns the winner.
 * @throws std::runtime_error if no valid configuration exists.
 */
TuningCandidate autoTreeTuning(const sphincs::Params &params,
                               const gpu::DeviceProps &dev,
                               double alpha = 0.5);

} // namespace herosign::core

#endif // HEROSIGN_CORE_TUNING_HH
