#include <cstring>

#include "core/kernels.hh"
#include "sphincs/merkle.hh"
#include "sphincs/thash.hh"
#include "sphincs/wots.hh"

namespace herosign::core
{

using sphincs::Address;
using sphincs::AddrType;
using sphincs::maxN;

namespace
{

template <typename Fn>
void
charged(gpu::BlockContext &blk, unsigned tid, Fn &&fn)
{
    const uint64_t before = Sha256::compressionCount();
    fn();
    blk.chargeHash(tid, Sha256::compressionCount() - before);
}

} // namespace

TreeSignKernel::TreeSignKernel(MessageJob &job, bool padded,
                               const MemPolicy &mem,
                               Sha256Variant variant)
    : job_(job), mem_(mem), variant_(variant)
{
    const sphincs::Params &p = job_.ctx->params();
    if (padded) {
        layout_ = std::make_unique<gpu::PaddedReductionLayout>(
            p.treeLeaves(), p.n, 0);
    } else {
        layout_ = std::make_unique<gpu::NaiveReductionLayout>(
            p.treeLeaves(), p.n, 0);
    }
}

unsigned
TreeSignKernel::blockThreads() const
{
    const sphincs::Params &p = job_.ctx->params();
    return p.layers * p.treeLeaves();
}

size_t
TreeSignKernel::sharedBytes() const
{
    const sphincs::Params &p = job_.ctx->params();
    return static_cast<size_t>(p.layers) * layout_->footprint();
}

unsigned
TreeSignKernel::numPhases(unsigned) const
{
    return 1 + job_.ctx->params().treeHeight();
}

void
TreeSignKernel::run(unsigned phase, gpu::BlockContext &blk, unsigned tid)
{
    const sphincs::Params &p = job_.ctx->params();
    const sphincs::Context &ctx = *job_.ctx;
    const unsigned n = p.n;
    const uint32_t leaves = p.treeLeaves();
    const unsigned th = p.treeHeight();

    if (phase == 0) {
        // wots_gen_leaf: one thread per hypertree leaf.
        if (tid >= p.layers * leaves)
            return;
        const unsigned layer = tid / leaves;
        const uint32_t leaf_idx = tid % leaves;
        const uint32_t region = layer * layout_->footprint();

        uint8_t leaf[maxN];
        charged(blk, tid, [&] {
            sphincs::wotsGenLeaf(leaf, ctx, layer,
                                 job_.layerTree[layer], leaf_idx);
        });
        // Each of the len chains derives a secret (sk_seed) and runs
        // under the pk_seed mid-state.
        mem_.chargeSeedRead(blk, tid, 2ull * p.wotsLen() * n);

        blk.storeShared(tid, region + layout_->nodeAddr(0, leaf_idx),
                        leaf, n);
        if (leaf_idx == (job_.layerLeaf[layer] ^ 1u)) {
            std::memcpy(job_.authPaths.data() +
                            (static_cast<size_t>(layer) * th + 0) * n,
                        leaf, n);
            blk.chargeGlobal(tid, n);
        }
        return;
    }

    // Reduction phases: level `phase` is produced from level
    // `phase - 1`, all d subtrees in parallel.
    const unsigned sub = phase;
    const uint32_t parents_per_tree = leaves >> sub;
    if (tid >= p.layers * parents_per_tree)
        return;
    const unsigned layer = tid / parents_per_tree;
    const uint32_t parent = tid % parents_per_tree;
    const uint32_t region = layer * layout_->footprint();

    uint8_t left[maxN], right[maxN], node[maxN];
    blk.loadShared(tid, region + layout_->nodeAddr(sub - 1, 2 * parent),
                   left, n);
    blk.loadShared(tid,
                   region + layout_->nodeAddr(sub - 1, 2 * parent + 1),
                   right, n);

    Address tree_adrs;
    tree_adrs.setLayer(layer);
    tree_adrs.setTree(job_.layerTree[layer]);
    tree_adrs.setType(AddrType::Tree);
    tree_adrs.setTreeHeight(sub);
    tree_adrs.setTreeIndex(parent);
    charged(blk, tid, [&] {
        sphincs::thashH(node, ctx, tree_adrs, left, right);
    });

    if (parents_per_tree == 1) {
        // Subtree root: consumed by WOTS+_Sign and the verifier path.
        std::memcpy(job_.roots.data() + static_cast<size_t>(layer) * n,
                    node, n);
        blk.chargeGlobal(tid, n);
    } else {
        blk.storeShared(tid, region + layout_->nodeAddr(sub, parent),
                        node, n);
    }

    if (sub < th && parent == ((job_.layerLeaf[layer] >> sub) ^ 1u)) {
        std::memcpy(job_.authPaths.data() +
                        (static_cast<size_t>(layer) * th + sub) * n,
                    node, n);
        blk.chargeGlobal(tid, n);
    }
}

} // namespace herosign::core
