/**
 * @file
 * The HERO-Sign engine: resolves an EngineConfig against a parameter
 * set and a simulated device (running the Tree Tuning search and the
 * profiling-driven PTX / launch-bounds selection), signs messages
 * functionally through the three simulated kernels, and produces
 * batch timelines through the stream / task-graph scheduler.
 *
 * The same class implements the TCAS-SPHINCSp baseline and every
 * Fig. 11 ablation step — they are just EngineConfig presets.
 */

#ifndef HEROSIGN_CORE_ENGINE_HH
#define HEROSIGN_CORE_ENGINE_HH

#include <array>
#include <map>
#include <memory>
#include <string>

#include "batch/batch_stats.hh"
#include "core/config.hh"
#include "core/kernels.hh"
#include "core/tuning.hh"
#include "gpusim/cost_model.hh"
#include "gpusim/scheduler.hh"
#include "sphincs/sphincs.hh"

namespace herosign::batch
{
class BatchSigner;
}

namespace herosign::core
{

/** Resolved per-kernel execution choice. */
struct KernelChoice
{
    KernelKind kind;
    Sha256Variant variant = Sha256Variant::Native;
    unsigned nominalRegs = 0;
    unsigned clampedRegs = 0;   ///< after __launch_bounds__
    unsigned spilledRegs = 0;
    unsigned threads = 0;
    size_t smemBytes = 0;
    double cyclesPerHash = 0;   ///< incl. spill penalty

    gpu::BlockProfile profile;  ///< representative block
    gpu::KernelTiming timing;   ///< at the reference batch size

    /** Effective resources for the occupancy calculator. */
    gpu::KernelResources
    resources() const
    {
        return gpu::KernelResources{clampedRegs, threads, smemBytes};
    }
};

/** Result of signing one message. */
struct SignOutcome
{
    ByteVec signature;
    std::array<KernelChoice, 3> kernels; ///< FORS, TREE, WOTS order
};

/**
 * Result of executing a batch for real on the worker pool, with the
 * simulator's prediction for the same batch alongside so callers can
 * report measured vs predicted makespan.
 */
struct BatchExecOutcome
{
    std::vector<ByteVec> signatures; ///< in submission order
    batch::BatchStats stats;         ///< wall-clock run statistics
    double measuredMakespanUs = 0;   ///< == stats.wallUs
    double predictedMakespanUs = 0;  ///< signBatchTiming's makespan
    unsigned workers = 0;            ///< worker threads used
};

/** Result of executing a verification batch. */
struct VerifyExecOutcome
{
    std::vector<uint8_t> ok;  ///< 1 per accepted signature, in order
    uint64_t accepted = 0;
    uint64_t rejected = 0;
    double wallUs = 0;
    double verifiesPerSec = 0;
};

/** Result of a batch timing simulation. */
struct BatchOutcome
{
    unsigned messages = 0;
    double makespanUs = 0;
    double idleUs = 0;
    double launchLatencyUs = 0;
    double kops = 0;
    std::map<std::string, double> perKernelBusyUs;
    gpu::ScheduleResult schedule;
};

/** A configured signing engine bound to (params, device, config). */
class SignEngine
{
  public:
    /**
     * Resolve the configuration: run the Tree Tuning search (when
     * enabled), profile both SHA-256 branches per kernel, and pick
     * variant + launch bounds per the paper's profiling-driven flow.
     */
    SignEngine(const sphincs::Params &params,
               const gpu::DeviceProps &dev, const EngineConfig &config);

    const sphincs::Params &params() const { return params_; }
    const gpu::DeviceProps &device() const { return dev_; }
    const EngineConfig &config() const { return config_; }
    const gpu::CostParams &costParams() const { return cp_; }

    /** The FORS geometry in use (from the tuner or the config). */
    const ForsGeometry &forsGeometry() const { return forsGeo_; }

    /** The tuning candidate chosen (valid when autoTune was on). */
    const TuningCandidate &tuning() const { return tuning_; }

    /** Resolved choices, in FORS / TREE / WOTS order. */
    const std::array<KernelChoice, 3> &kernels() const
    {
        return kernels_;
    }

    /**
     * Sign @p msg with @p sk, executing the three kernels
     * functionally. The signature is byte-identical to
     * sphincs::SphincsPlus::sign.
     */
    SignOutcome sign(ByteSpan msg, const sphincs::SecretKey &sk,
                     ByteSpan opt_rand = {}) const;

    /**
     * Sign @p messages for real on a batch::BatchSigner worker pool
     * (workers from the config's batchWorkers, queue shards from its
     * streams). Signatures are byte-identical to sign() / the scalar
     * SphincsPlus path and are returned in submission order, along
     * with measured wall-clock stats and the simulator's predicted
     * makespan for the same batch size.
     * @param worker_override worker thread count (0 = config)
     */
    BatchExecOutcome signBatch(const std::vector<ByteVec> &messages,
                               const sphincs::SecretKey &sk,
                               unsigned worker_override = 0) const;

    /**
     * Sign @p messages on a caller-provided signer, reusing its
     * worker pool, queue and warm context across calls instead of
     * constructing a fresh BatchSigner (threads + Context) per batch.
     * The signer must be bound to this engine's parameter set —
     * checked, throws std::invalid_argument on mismatch.
     */
    BatchExecOutcome signBatch(const std::vector<ByteVec> &messages,
                               batch::BatchSigner &signer) const;

    /**
     * Verify @p signatures over @p messages under one public key with
     * the lane-batched verifier: one warm Context for the whole batch
     * and every hot loop a full hash-lane width of signatures wide.
     * Results are bool-identical
     * to scalar sphincs::SphincsPlus::verify per pair.
     */
    VerifyExecOutcome
    verifyBatch(const std::vector<ByteVec> &messages,
                const std::vector<ByteVec> &signatures,
                const sphincs::PublicKey &pk) const;

    /**
     * Simulate a batch of @p messages through the configured
     * stream / graph plan and return the timeline metrics.
     * @param chunk_override messages per launch chunk (0 = config)
     */
    BatchOutcome signBatchTiming(unsigned messages,
                                 unsigned chunk_override = 0) const;

    /** Per-kernel timing at an arbitrary batch size. */
    gpu::KernelTiming kernelTimingAt(KernelKind kind,
                                     unsigned messages) const;

  private:
    void resolveFors();
    void resolveKernels();
    KernelChoice profileKernel(KernelKind kind, Sha256Variant variant,
                               MessageJob &job) const;
    std::unique_ptr<gpu::KernelBody>
    makeKernel(KernelKind kind, MessageJob &job,
               Sha256Variant variant) const;
    MessageJob makeProfilingJob() const;
    void prepareJob(MessageJob &job, const sphincs::Context &ctx,
                    ByteSpan msg, const sphincs::SecretKey &sk,
                    ByteSpan opt_rand, uint8_t *r_out) const;

    sphincs::Params params_;
    gpu::DeviceProps dev_;   // by value: engines outlive their inputs
    EngineConfig config_;
    gpu::CostParams cp_;
    ForsGeometry forsGeo_;
    TuningCandidate tuning_;
    std::array<KernelChoice, 3> kernels_;
    // Profiling context/key (deterministic; used only for timing).
    std::unique_ptr<sphincs::SecretKey> profKey_;
    std::unique_ptr<sphincs::Context> profCtx_;

    static constexpr unsigned referenceBatch = 1024;
};

} // namespace herosign::core

#endif // HEROSIGN_CORE_ENGINE_HH
