/**
 * @file
 * Engine configuration: which HERO-Sign optimizations are active,
 * per-kernel register/instruction profiles, and batching plans.
 *
 * The per-kernel register counts are the Nsight-profiled values the
 * paper quotes (Table III: FORS 64, TREE 128, WOTS+ 72 for the
 * baseline; §III-C2: TREE 168 native / 95 PTX at 256f); values the
 * paper does not state are interpolated and documented here. The
 * cycles-per-hash profiles encode the paper's observation that the
 * PTX branch wins for short-input thash streams (FORS) but loses to
 * the compiler's chain-local optimization in wots_gen_leaf-heavy
 * kernels (TREE/WOTS) unless register pressure is the bottleneck.
 */

#ifndef HEROSIGN_CORE_CONFIG_HH
#define HEROSIGN_CORE_CONFIG_HH

#include <string>

#include "hash/sha256.hh"
#include "sphincs/params.hh"

namespace herosign::core
{

/** The three component kernels of the paper. */
enum class KernelKind { ForsSign, TreeSign, WotsSign };

std::string kernelName(KernelKind kind);

/** Nominal (unconstrained) registers per thread for a kernel. */
unsigned nominalRegs(KernelKind kind, const sphincs::Params &params,
                     Sha256Variant variant);

/** Per-compression cycle cost of a kernel's SHA-256 stream. */
double hashCycles(KernelKind kind, Sha256Variant variant);

/** Extra per-hash cost fraction per register spilled by launch
 *  bounds (local-memory traffic). */
constexpr double spillPenaltyPerReg = 0.0022;

/**
 * Cycles charged per WOTS chain step for index bookkeeping. The
 * baseline uses division/modulo; HERO-Sign rewrites them as shifts
 * and masks (paper §IV-D).
 */
constexpr double chainMathCyclesDivMod = 48.0;
constexpr double chainMathCyclesShift = 6.0;

/** FORS processing configuration (paper §III-B). */
struct ForsConfig
{
    unsigned treesPerSet = 1;    ///< Ntree
    unsigned fusedSets = 1;      ///< F
    unsigned threadsPerSet = 0;  ///< T_set (0 = derive from t)
    bool relax = false;          ///< Relax-FORS model (§III-B4)
    unsigned blocksPerMessage = 1; ///< MMTP splits trees over blocks
};

/** Full engine configuration. */
struct EngineConfig
{
    std::string name;

    /// Multiple-Merkle-tree parallelization for FORS (III-A): when
    /// false, one tree at a time inside a single block (TCAS).
    bool mmtp = true;
    /// FORS fusion (III-B); when false each block/round handles one
    /// Set at a time.
    bool fuse = true;
    /// Run the offline Tree Tuning search to pick the FORS config;
    /// when false, forsConfig is used as given.
    bool autoTune = true;
    /// Adaptive PTX/native branch selection (III-C); when false the
    /// native branch is always used.
    bool adaptivePtx = true;
    /// Hybrid memory placement: read-only seeds in constant memory
    /// (III-D); when false everything is read from global.
    bool hybridMem = true;
    /// Bank-conflict-free padding (III-E); when false naive layout.
    bool freeBank = true;
    /// launch_bounds register constraining (III-A), profile-driven.
    bool launchBounds = true;
    /// Task-graph batching (III-F); when false plain streams.
    bool useGraph = true;
    /// Baseline WOTS behaviour: compute full chains then select
    /// (TCAS implementation detail; HERO computes only b_i steps).
    bool wotsFullChains = false;
    /// Baseline chain math uses div/mod; HERO uses shifts.
    bool chainShiftMath = true;

    ForsConfig forsConfig;

    /// Batch execution plan. The paper (§IV-E1) recommends batch
    /// chunks >= 512 on the RTX 4090 to maximize throughput.
    unsigned streams = 4;
    unsigned chunkMessages = 512; ///< messages per kernel launch chunk
    /// Worker threads for the real (executed, not simulated) batch
    /// signing path; each worker models one stream's host-side
    /// submitter. The queue shard count always follows `streams`.
    unsigned batchWorkers = 4;

    /** The TCAS-SPHINCSp-like baseline (Kim et al.). */
    static EngineConfig baseline();

    /** Fully optimized HERO-Sign. */
    static EngineConfig hero();

    /** Fig. 11 ablation steps, cumulative. */
    static EngineConfig stepMmtp();       // Baseline + MMTP
    static EngineConfig stepFuse();       // + FS (tree fusion / relax)
    static EngineConfig stepPtx();        // + PTX
    static EngineConfig stepHybridMem();  // + HybridME
    static EngineConfig stepFreeBank();   // + FreeBank (== hero sans graph)
};

} // namespace herosign::core

#endif // HEROSIGN_CORE_CONFIG_HH
