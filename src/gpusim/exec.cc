#include "gpusim/exec.hh"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace herosign::gpu
{

BlockContext::BlockContext(const DeviceProps &dev, const CostParams &cp,
                           unsigned block_idx, unsigned block_dim,
                           size_t shared_bytes, double cycles_per_hash)
    : dev_(dev), cp_(cp), bankModel_(dev), blockIdx_(block_idx),
      blockDim_(block_dim), cyclesPerHash_(cycles_per_hash),
      shared_(shared_bytes, 0), threadCycles_(block_dim, 0.0),
      accesses_(block_dim)
{
}

void
BlockContext::loadShared(unsigned tid, uint32_t addr, uint8_t *dst,
                         unsigned bytes)
{
    if (addr + bytes > shared_.size())
        throw std::out_of_range("loadShared: out of shared memory");
    std::memcpy(dst, shared_.data() + addr, bytes);
    accesses_[tid].push_back({addr, bytes, false});
    threadCycles_[tid] += cp_.cyclesPerSharedWord * (bytes / 4.0);
    counters_.sharedBytes += bytes;
}

void
BlockContext::storeShared(unsigned tid, uint32_t addr, const uint8_t *src,
                          unsigned bytes)
{
    if (addr + bytes > shared_.size())
        throw std::out_of_range("storeShared: out of shared memory");
    std::memcpy(shared_.data() + addr, src, bytes);
    accesses_[tid].push_back({addr, bytes, true});
    threadCycles_[tid] += cp_.cyclesPerSharedWord * (bytes / 4.0);
    counters_.sharedBytes += bytes;
}

void
BlockContext::chargeHash(unsigned tid, uint64_t count)
{
    threadCycles_[tid] += cyclesPerHash_ * count;
    counters_.hashes += count;
}

void
BlockContext::chargeGlobal(unsigned tid, uint64_t bytes)
{
    threadCycles_[tid] += cp_.cyclesPerGlobalByte * bytes;
    counters_.globalBytes += bytes;
}

void
BlockContext::chargeConstant(unsigned tid, uint64_t bytes)
{
    threadCycles_[tid] += cp_.cyclesPerConstantByte * bytes;
    counters_.constantBytes += bytes;
}

void
BlockContext::chargeCycles(unsigned tid, double cycles)
{
    threadCycles_[tid] += cycles;
}

void
BlockContext::beginPhase()
{
    std::fill(threadCycles_.begin(), threadCycles_.end(), 0.0);
    for (auto &a : accesses_)
        a.clear();
}

void
BlockContext::flushWarpInstructions(PhaseStats &stats)
{
    const unsigned warp = dev_.warpSize;
    const unsigned num_warps = (blockDim_ + warp - 1) / warp;
    for (unsigned w = 0; w < num_warps; ++w) {
        const unsigned lane_lo = w * warp;
        const unsigned lane_hi = std::min(blockDim_, lane_lo + warp);
        size_t max_ops = 0;
        for (unsigned t = lane_lo; t < lane_hi; ++t)
            max_ops = std::max(max_ops, accesses_[t].size());

        double warp_conflict_cycles = 0;
        for (size_t op = 0; op < max_ops; ++op) {
            WarpAccess acc;
            bool is_store = false;
            for (unsigned t = lane_lo; t < lane_hi; ++t) {
                if (op < accesses_[t].size()) {
                    acc.laneAddrs.push_back(accesses_[t][op].addr);
                    acc.bytesPerLane = accesses_[t][op].bytes;
                    is_store = accesses_[t][op].isStore;
                }
            }
            const uint64_t conf = bankModel_.conflicts(acc);
            stats.bankConflicts += conf;
            warp_conflict_cycles += conf * cp_.cyclesPerConflict;
            if (is_store) {
                counters_.sharedStoreInstrs += 1;
                counters_.sharedStoreConflicts += conf;
            } else {
                counters_.sharedLoadInstrs += 1;
                counters_.sharedLoadConflicts += conf;
            }
        }
        stats.worstWarpConflictCycles =
            std::max(stats.worstWarpConflictCycles, warp_conflict_cycles);
    }
}

PhaseStats
BlockContext::endPhase()
{
    PhaseStats stats;
    for (unsigned t = 0; t < blockDim_; ++t) {
        if (threadCycles_[t] > 0) {
            ++stats.activeLanes;
            stats.sumThreadCycles += threadCycles_[t];
            stats.maxThreadCycles =
                std::max(stats.maxThreadCycles, threadCycles_[t]);
        }
    }
    flushWarpInstructions(stats);
    // A conflict replay burns issue slots in addition to stretching
    // the worst warp's path.
    stats.sumThreadCycles += static_cast<double>(stats.bankConflicts) *
                             cp_.cyclesPerConflict *
                             cp_.conflictIssueLanes;
    ++counters_.barriers;
    return stats;
}

namespace
{

ExecResult
executeRange(const DeviceProps &dev, const CostParams &cp,
             const LaunchSpec &spec, unsigned first, unsigned last,
             unsigned profile_block)
{
    ExecResult out;
    for (unsigned b = first; b < last; ++b) {
        BlockContext blk(dev, cp, b, spec.blockDim, spec.sharedBytes,
                         spec.cyclesPerHash);
        const unsigned phases = spec.body->numPhases(b);
        BlockProfile profile;
        for (unsigned p = 0; p < phases; ++p) {
            blk.beginPhase();
            for (unsigned t = 0; t < spec.blockDim; ++t)
                spec.body->run(p, blk, t);
            profile.phases.push_back(blk.endPhase());
        }
        profile.counters = blk.counters();
        out.totals.add(blk.counters());
        if (b == profile_block)
            out.profile = std::move(profile);
    }
    return out;
}

} // namespace

ExecResult
executeLaunch(const DeviceProps &dev, const CostParams &cp,
              const LaunchSpec &spec)
{
    return executeRange(dev, cp, spec, 0, spec.gridDim, 0);
}

ExecResult
executeBlock(const DeviceProps &dev, const CostParams &cp,
             const LaunchSpec &spec, unsigned block_idx)
{
    return executeRange(dev, cp, spec, block_idx, block_idx + 1,
                        block_idx);
}

} // namespace herosign::gpu
