/**
 * @file
 * Aggregated operation counters collected while executing simulated
 * kernels. These play the role Nsight Compute metrics play in the
 * paper: everything the cost model and the bench tables report is
 * derived from them.
 */

#ifndef HEROSIGN_GPUSIM_PERF_COUNTERS_HH
#define HEROSIGN_GPUSIM_PERF_COUNTERS_HH

#include <cstdint>

namespace herosign::gpu
{

/** Operation counts for one kernel (or one block). */
struct PerfCounters
{
    uint64_t hashes = 0;           ///< SHA-256 compressions executed
    uint64_t sharedLoadInstrs = 0; ///< warp-level load instructions
    uint64_t sharedStoreInstrs = 0;
    uint64_t sharedLoadConflicts = 0;  ///< extra wavefronts (loads)
    uint64_t sharedStoreConflicts = 0; ///< extra wavefronts (stores)
    uint64_t sharedBytes = 0;
    uint64_t globalBytes = 0;
    uint64_t constantBytes = 0;
    uint64_t barriers = 0;         ///< block-wide synchronizations

    void
    add(const PerfCounters &o)
    {
        hashes += o.hashes;
        sharedLoadInstrs += o.sharedLoadInstrs;
        sharedStoreInstrs += o.sharedStoreInstrs;
        sharedLoadConflicts += o.sharedLoadConflicts;
        sharedStoreConflicts += o.sharedStoreConflicts;
        sharedBytes += o.sharedBytes;
        globalBytes += o.globalBytes;
        constantBytes += o.constantBytes;
        barriers += o.barriers;
    }
};

} // namespace herosign::gpu

#endif // HEROSIGN_GPUSIM_PERF_COUNTERS_HH
