/**
 * @file
 * Shared-memory bank-conflict model and the conflict-free reduction
 * layouts of paper §III-E.
 *
 * Model. A warp instruction where each lane accesses one B-byte node
 * is split into *transaction phases* of Th consecutive lanes, where
 * Th * B = 128 * R bytes and R is the smallest integer making 128*R
 * divisible by B (R = 1 for 16- and 32-byte nodes, R = 3 for 24-byte
 * nodes — the paper's Eq. 2 and Eq. 3). A phase requests 32*R words;
 * the banks service it in max-over-banks(distinct word addresses)
 * wavefronts, of which R are unavoidable. Conflicts = wavefronts - R,
 * summed over phases. This encodes the paper's hypothesis that the
 * hardware coalesces limited strided 128-byte rows into one larger
 * transaction.
 *
 * Layouts. The reduction (Fig. 7) combines nodes 2i and 2i+1 into
 * node i, level by level.
 *  * NaiveReductionLayout stores level-l node j at its classic
 *    in-place position j * 2^l, so loads stride by 2^(l+1) nodes and
 *    conflict heavily (doubling per level).
 *  * PaddedReductionLayout implements the paper's even-odd storage:
 *    each level is stored as an even-index array and an odd-index
 *    array, with padding banks inserted so the odd array is skewed by
 *    64 bytes (mod 128) relative to the even array. Loads of children
 *    (even[i], odd[i]) and interleaved stores of parents are then
 *    conflict-free under the model for all three access widths.
 */

#ifndef HEROSIGN_GPUSIM_BANKS_HH
#define HEROSIGN_GPUSIM_BANKS_HH

#include <cstdint>
#include <vector>

#include "gpusim/device_props.hh"

namespace herosign::gpu
{

/** One warp-level shared-memory access: per-lane starting address. */
struct WarpAccess
{
    /// Starting byte address per active lane (inactive lanes absent).
    std::vector<uint32_t> laneAddrs;
    /// Bytes accessed per lane (16, 24 or 32 in SPHINCS+).
    unsigned bytesPerLane = 4;
};

/** Load/store conflict tallies. */
struct ConflictCounts
{
    uint64_t loadConflicts = 0;
    uint64_t storeConflicts = 0;
    uint64_t loadInstructions = 0;
    uint64_t storeInstructions = 0;

    void
    add(const ConflictCounts &other)
    {
        loadConflicts += other.loadConflicts;
        storeConflicts += other.storeConflicts;
        loadInstructions += other.loadInstructions;
        storeInstructions += other.storeInstructions;
    }
};

/** Bank-conflict counting for warp accesses. */
class BankModel
{
  public:
    explicit BankModel(const DeviceProps &dev)
        : numBanks_(dev.numBanks), bankBytes_(dev.bankBytes)
    {
    }

    BankModel() : numBanks_(32), bankBytes_(4) {}

    /**
     * The paper's transaction-region factor R: smallest R >= 1 with
     * 128 * R divisible by bytesPerLane (Eq. 2 / Eq. 3).
     */
    static unsigned regionRows(unsigned bytes_per_lane);

    /** Lanes per transaction phase: Th = 128 * R / bytesPerLane. */
    static unsigned lanesPerPhase(unsigned bytes_per_lane);

    /**
     * Count the extra serialized wavefronts ("conflicts") for one
     * warp access under the transaction-phase model.
     */
    uint64_t conflicts(const WarpAccess &access) const;

  private:
    unsigned numBanks_;
    unsigned bankBytes_;
};

/**
 * Shared-memory placement of Merkle-reduction nodes. Implementations
 * provide the address of each node at each level plus the total
 * footprint, so both the functional kernels and the conflict model
 * use identical addresses.
 */
class ReductionLayout
{
  public:
    /**
     * @param leaves number of leaves (power of two)
     * @param node_bytes node size (n)
     * @param base byte offset of this tree's region in shared memory
     */
    ReductionLayout(uint32_t leaves, unsigned node_bytes, uint32_t base)
        : leaves_(leaves), nodeBytes_(node_bytes), base_(base)
    {
    }

    virtual ~ReductionLayout() = default;

    /** Byte address of node @p index at @p level (0 = leaves). */
    virtual uint32_t nodeAddr(unsigned level, uint32_t index) const = 0;

    /** Total shared-memory bytes consumed by the tree region. */
    virtual uint32_t footprint() const = 0;

    uint32_t leaves() const { return leaves_; }
    unsigned nodeBytes() const { return nodeBytes_; }
    uint32_t base() const { return base_; }

  protected:
    uint32_t leaves_;
    unsigned nodeBytes_;
    uint32_t base_;
};

/** Classic in-place layout: level-l node j sits at slot j * 2^l. */
class NaiveReductionLayout : public ReductionLayout
{
  public:
    using ReductionLayout::ReductionLayout;

    uint32_t nodeAddr(unsigned level, uint32_t index) const override;
    uint32_t footprint() const override;
};

/**
 * The paper's conflict-free layout: per level, even-index and
 * odd-index nodes live in separate arrays, with the odd array skewed
 * by 64 bytes (mod 128) via inserted padding banks. Level l >= 1
 * reuses the region of level l-1's grandparents (ping-pong inside the
 * same footprint), modelled here by giving every level its own
 * even/odd pair inside a footprint that is still O(leaves).
 */
class PaddedReductionLayout : public ReductionLayout
{
  public:
    PaddedReductionLayout(uint32_t leaves, unsigned node_bytes,
                          uint32_t base);

    uint32_t nodeAddr(unsigned level, uint32_t index) const override;
    uint32_t footprint() const override;

    /** The skew (bytes) applied between the even and odd arrays. */
    static constexpr uint32_t oddSkewBytes = 64;

  private:
    /// Base of each level's even array, and of its odd array.
    std::vector<uint32_t> evenBase_;
    std::vector<uint32_t> oddBase_;
    uint32_t footprint_ = 0;
};

/**
 * Count the load/store conflicts of a full bottom-up reduction of
 * @p layout executed by one block of @p block_threads threads, where
 * at level l thread i handles parent node i (loads children 2i and
 * 2i+1, stores parent i). This is the access trace of the paper's
 * Table VI experiment.
 */
ConflictCounts reductionConflicts(const ReductionLayout &layout,
                                  unsigned block_threads,
                                  const BankModel &model);

} // namespace herosign::gpu

#endif // HEROSIGN_GPUSIM_BANKS_HH
