#include "gpusim/occupancy.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace herosign::gpu
{

std::string
limiterName(OccupancyLimiter limiter)
{
    switch (limiter) {
      case OccupancyLimiter::Registers: return "registers";
      case OccupancyLimiter::SharedMemory: return "shared-memory";
      case OccupancyLimiter::ThreadSlots: return "thread-slots";
      case OccupancyLimiter::BlockSlots: return "block-slots";
      case OccupancyLimiter::WarpSlots: return "warp-slots";
    }
    return "?";
}

OccupancyResult
computeOccupancy(const DeviceProps &dev, const KernelResources &res)
{
    if (res.threadsPerBlock == 0 ||
        res.threadsPerBlock > dev.maxThreadsPerBlock) {
        throw std::invalid_argument("computeOccupancy: bad block size");
    }
    if (res.regsPerThread == 0 || res.regsPerThread > dev.maxRegsPerThread)
        throw std::invalid_argument("computeOccupancy: bad reg count");

    const unsigned warps_per_block =
        (res.threadsPerBlock + dev.warpSize - 1) / dev.warpSize;

    // Registers are allocated per warp with 256-register granularity.
    const uint32_t regs_per_warp =
        ((res.regsPerThread * dev.warpSize + 255) / 256) * 256;
    const uint32_t regs_per_block = regs_per_warp * warps_per_block;

    auto consider = [](unsigned &blocks, OccupancyLimiter &lim,
                       unsigned candidate, OccupancyLimiter why) {
        if (candidate < blocks) {
            blocks = candidate;
            lim = why;
        }
    };

    unsigned blocks = dev.maxBlocksPerSm;
    OccupancyLimiter lim = OccupancyLimiter::BlockSlots;

    consider(blocks, lim, dev.registersPerSm / regs_per_block,
             OccupancyLimiter::Registers);
    if (res.smemPerBlock > 0) {
        consider(blocks, lim,
                 static_cast<unsigned>(dev.smemPerSm / res.smemPerBlock),
                 OccupancyLimiter::SharedMemory);
    }
    consider(blocks, lim, dev.maxThreadsPerSm / res.threadsPerBlock,
             OccupancyLimiter::ThreadSlots);
    consider(blocks, lim, dev.maxWarpsPerSm / warps_per_block,
             OccupancyLimiter::WarpSlots);

    OccupancyResult out;
    out.blocksPerSm = blocks;
    out.activeWarpsPerSm = blocks * warps_per_block;
    out.occupancy = static_cast<double>(out.activeWarpsPerSm) /
                    dev.maxWarpsPerSm;
    out.limiter = lim;
    return out;
}

double
paperEq1Occupancy(const DeviceProps &dev, const KernelResources &res)
{
    const double blocks =
        std::floor(static_cast<double>(dev.registersPerSm) /
                   (static_cast<double>(res.regsPerThread) *
                    res.threadsPerBlock));
    const double warps_per_block =
        static_cast<double>(res.threadsPerBlock) / dev.warpSize;
    return std::min(1.0,
                    blocks * warps_per_block / dev.maxWarpsPerSm);
}

} // namespace herosign::gpu
