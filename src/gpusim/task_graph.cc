#include "gpusim/task_graph.hh"

#include <stdexcept>

namespace herosign::gpu
{

int
TaskGraph::addNode(const KernelExecDesc &kernel,
                   const std::vector<int> &deps)
{
    const int idx = static_cast<int>(nodes_.size());
    for (int d : deps) {
        if (d < 0 || d >= idx)
            throw std::invalid_argument(
                "TaskGraph: dependency on unknown or later node");
    }
    nodes_.push_back(GraphNode{kernel, deps});
    return idx;
}

void
TaskGraph::validate() const
{
    // addNode only permits edges to earlier nodes, so the graph is a
    // DAG by construction; re-check the invariant for deserialized or
    // hand-built graphs.
    for (size_t i = 0; i < nodes_.size(); ++i) {
        for (int d : nodes_[i].deps) {
            if (d < 0 || static_cast<size_t>(d) >= i)
                throw std::logic_error("TaskGraph: invalid edge");
        }
    }
}

} // namespace herosign::gpu
