/**
 * @file
 * CUDA-class device property presets for the six GPUs of the paper's
 * Table VII. The simulator enforces the same resource limits a real
 * launch would hit (registers/SM, shared memory/block and /SM, thread
 * and block slots), so HERO-Sign's tuning decisions face the same
 * trade-offs as on silicon.
 */

#ifndef HEROSIGN_GPUSIM_DEVICE_PROPS_HH
#define HEROSIGN_GPUSIM_DEVICE_PROPS_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace herosign::gpu
{

/** GPU micro-architecture generations used in the paper. */
enum class Arch { Pascal, Volta, Turing, Ampere, Ada, Hopper };

/** Human-readable architecture name ("Pascal", ...). */
std::string archName(Arch arch);

/**
 * Device properties. The subset of cudaDeviceProp the paper's
 * optimizations actually depend on, plus calibrated launch-overhead
 * constants for the scheduling model.
 */
struct DeviceProps
{
    std::string name;          ///< marketing name, e.g. "RTX 4090"
    Arch arch;
    unsigned smVersion;        ///< 61, 70, 75, 80, 89, 90
    unsigned numSms;
    unsigned cudaCores;        ///< total across the device
    double baseClockMhz;

    unsigned maxThreadsPerBlock = 1024;
    unsigned maxThreadsPerSm;
    unsigned maxWarpsPerSm;    ///< W_max in the paper's Eq. 1
    unsigned maxBlocksPerSm;
    uint32_t registersPerSm = 65536;  ///< R_total in Eq. 1
    unsigned maxRegsPerThread = 255;

    size_t staticSmemPerBlock = 48 * 1024;  ///< classic 48 KB limit
    size_t smemPerSm;                       ///< usable per SM
    size_t maxDynamicSmemPerBlock;          ///< opt-in per-block max

    unsigned warpSize = 32;
    unsigned numBanks = 32;
    unsigned bankBytes = 4;

    double peakBwGBs;          ///< global-memory bandwidth

    /// Host-side cost of one stream kernel launch (us).
    double kernelLaunchOverheadUs = 4.0;
    /// One-time cost of launching an instantiated graph (us).
    double graphLaunchOverheadUs = 8.0;
    /// Device-side dispatch cost per graph node (us).
    double graphNodeOverheadUs = 0.2;

    /// INT32-capable fraction of the "CUDA cores" (SHA-256 is almost
    /// entirely 32-bit integer work; on most of these parts half the
    /// FP32 lanes dual-issue INT32).
    double intIssueFraction = 0.5;

    unsigned coresPerSm() const { return cudaCores / numSms; }

    /// Peak integer lane throughput in lane-cycles per microsecond.
    double
    intLanesPerUs() const
    {
        return cudaCores * intIssueFraction * baseClockMhz;
    }

    /** The six platforms of Table VII. */
    static DeviceProps gtx1070();
    static DeviceProps v100();
    static DeviceProps rtx2080ti();
    static DeviceProps a100();
    static DeviceProps rtx4090();
    static DeviceProps h100();

    /** All Table VII platforms, in the paper's order. */
    static const std::vector<DeviceProps> &allPlatforms();

    /** Preset lookup by architecture. */
    static const DeviceProps &byArch(Arch arch);
};

} // namespace herosign::gpu

#endif // HEROSIGN_GPUSIM_DEVICE_PROPS_HH
