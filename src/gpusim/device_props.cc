#include "gpusim/device_props.hh"

#include <stdexcept>

namespace herosign::gpu
{

std::string
archName(Arch arch)
{
    switch (arch) {
      case Arch::Pascal: return "Pascal";
      case Arch::Volta: return "Volta";
      case Arch::Turing: return "Turing";
      case Arch::Ampere: return "Ampere";
      case Arch::Ada: return "Ada";
      case Arch::Hopper: return "Hopper";
    }
    return "?";
}

DeviceProps
DeviceProps::gtx1070()
{
    DeviceProps d;
    d.name = "GTX 1070";
    d.arch = Arch::Pascal;
    d.smVersion = 61;
    d.numSms = 15;
    d.cudaCores = 1920;
    d.baseClockMhz = 1506;          // Table VII
    d.maxThreadsPerSm = 2048;
    d.maxWarpsPerSm = 64;
    d.maxBlocksPerSm = 32;
    d.smemPerSm = 96 * 1024;
    d.maxDynamicSmemPerBlock = 48 * 1024; // no opt-in beyond 48 KB
    d.peakBwGBs = 256;
    d.intIssueFraction = 0.5;       // no INT/FP dual issue on Pascal;
                                    // INT ops steal FP32 slots
    return d;
}

DeviceProps
DeviceProps::v100()
{
    DeviceProps d;
    d.name = "V100";
    d.arch = Arch::Volta;
    d.smVersion = 70;
    d.numSms = 80;
    d.cudaCores = 5120;
    d.baseClockMhz = 1230;          // Table VII
    d.maxThreadsPerSm = 2048;
    d.maxWarpsPerSm = 64;
    d.maxBlocksPerSm = 32;
    d.smemPerSm = 96 * 1024;
    d.maxDynamicSmemPerBlock = 96 * 1024;
    d.peakBwGBs = 900;
    d.intIssueFraction = 1.0;       // dedicated INT32 pipe per FP32
    return d;
}

DeviceProps
DeviceProps::rtx2080ti()
{
    DeviceProps d;
    d.name = "RTX 2080 Ti";
    d.arch = Arch::Turing;
    d.smVersion = 75;
    d.numSms = 68;
    d.cudaCores = 4352;
    d.baseClockMhz = 1350;          // Table VII
    d.maxThreadsPerSm = 1024;
    d.maxWarpsPerSm = 32;
    d.maxBlocksPerSm = 16;
    d.smemPerSm = 64 * 1024;
    d.maxDynamicSmemPerBlock = 64 * 1024;
    d.peakBwGBs = 616;
    d.intIssueFraction = 1.0;       // Turing keeps the INT32 pipe
    return d;
}

DeviceProps
DeviceProps::a100()
{
    DeviceProps d;
    d.name = "A100";
    d.arch = Arch::Ampere;
    d.smVersion = 80;
    d.numSms = 108;
    d.cudaCores = 6912;
    d.baseClockMhz = 1095;          // Table VII
    d.maxThreadsPerSm = 2048;
    d.maxWarpsPerSm = 64;
    d.maxBlocksPerSm = 32;
    d.smemPerSm = 164 * 1024;
    d.maxDynamicSmemPerBlock = 163 * 1024;
    d.peakBwGBs = 1555;
    d.intIssueFraction = 0.5;       // half the FP32 lanes are FP/INT
    return d;
}

DeviceProps
DeviceProps::rtx4090()
{
    DeviceProps d;
    d.name = "RTX 4090";
    d.arch = Arch::Ada;
    d.smVersion = 89;
    d.numSms = 128;
    d.cudaCores = 16384;            // paper §IV-F
    d.baseClockMhz = 2235;          // Table VII
    d.maxThreadsPerSm = 1536;
    d.maxWarpsPerSm = 48;
    d.maxBlocksPerSm = 24;
    d.smemPerSm = 100 * 1024;
    d.maxDynamicSmemPerBlock = 99 * 1024;
    d.peakBwGBs = 1008;
    d.intIssueFraction = 0.5;
    return d;
}

DeviceProps
DeviceProps::h100()
{
    DeviceProps d;
    d.name = "H100";
    d.arch = Arch::Hopper;
    d.smVersion = 90;
    d.numSms = 132;
    d.cudaCores = 16896;            // paper §IV-F
    d.baseClockMhz = 1035;          // Table VII
    d.maxThreadsPerSm = 2048;
    d.maxWarpsPerSm = 64;
    d.maxBlocksPerSm = 32;
    d.smemPerSm = 228 * 1024;       // paper §IV-F: up to 228 KB
    d.maxDynamicSmemPerBlock = 227 * 1024;
    d.peakBwGBs = 2039;
    d.intIssueFraction = 0.5;
    return d;
}

const std::vector<DeviceProps> &
DeviceProps::allPlatforms()
{
    static const std::vector<DeviceProps> all = {
        gtx1070(), v100(), rtx2080ti(), a100(), rtx4090(), h100(),
    };
    return all;
}

const DeviceProps &
DeviceProps::byArch(Arch arch)
{
    for (const auto &d : allPlatforms()) {
        if (d.arch == arch)
            return d;
    }
    throw std::invalid_argument("DeviceProps: unknown arch");
}

} // namespace herosign::gpu
