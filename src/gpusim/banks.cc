#include "gpusim/banks.hh"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

namespace herosign::gpu
{

unsigned
BankModel::regionRows(unsigned bytes_per_lane)
{
    if (bytes_per_lane == 0 || bytes_per_lane % 4 != 0)
        throw std::invalid_argument("BankModel: bytes must be word sized");
    for (unsigned r = 1; r <= 32; ++r) {
        if ((128 * r) % bytes_per_lane == 0)
            return r;
    }
    throw std::invalid_argument("BankModel: no region factor <= 32");
}

unsigned
BankModel::lanesPerPhase(unsigned bytes_per_lane)
{
    return 128 * regionRows(bytes_per_lane) / bytes_per_lane;
}

uint64_t
BankModel::conflicts(const WarpAccess &access) const
{
    if (access.laneAddrs.empty())
        return 0;
    const unsigned rows = regionRows(access.bytesPerLane);
    const unsigned lanes_per_phase = lanesPerPhase(access.bytesPerLane);
    const unsigned words_per_lane = access.bytesPerLane / bankBytes_;

    uint64_t total = 0;
    for (size_t begin = 0; begin < access.laneAddrs.size();
         begin += lanes_per_phase) {
        const size_t end = std::min(access.laneAddrs.size(),
                                    begin + lanes_per_phase);
        // Distinct word addresses per bank within the phase.
        std::map<unsigned, std::set<uint32_t>> bank_words;
        for (size_t lane = begin; lane < end; ++lane) {
            for (unsigned w = 0; w < words_per_lane; ++w) {
                uint32_t word =
                    access.laneAddrs[lane] / bankBytes_ + w;
                bank_words[word % numBanks_].insert(word);
            }
        }
        uint64_t wavefronts = 0;
        for (const auto &[bank, words] : bank_words)
            wavefronts = std::max<uint64_t>(wavefronts, words.size());
        // R wavefronts are unavoidable for a full phase; partial
        // phases still need at least one.
        const uint64_t unavoidable =
            std::min<uint64_t>(rows, wavefronts == 0 ? 0 : wavefronts);
        total += wavefronts - std::min(wavefronts, unavoidable);
    }
    return total;
}

uint32_t
NaiveReductionLayout::nodeAddr(unsigned level, uint32_t index) const
{
    // In-place: level-l node j occupies the slot of its leftmost leaf.
    return base_ + (index << level) * nodeBytes_;
}

uint32_t
NaiveReductionLayout::footprint() const
{
    return leaves_ * nodeBytes_;
}

PaddedReductionLayout::PaddedReductionLayout(uint32_t leaves,
                                             unsigned node_bytes,
                                             uint32_t base)
    : ReductionLayout(leaves, node_bytes, base)
{
    if (leaves < 2 || (leaves & (leaves - 1)) != 0)
        throw std::invalid_argument(
            "PaddedReductionLayout: leaves must be a power of two >= 2");

    // Two fixed half-buffers: buf0 holds even-index nodes, buf1 holds
    // odd-index nodes of every level; levels shrink inside them. The
    // odd buffer is skewed to 64 bytes (mod 128) past the even buffer
    // by inserting padding banks (Eq. 2 / Eq. 3 regions).
    const uint32_t half = leaves / 2 * node_bytes;
    uint32_t skew_pad =
        (oddSkewBytes + 128 - (half % 128)) % 128;
    evenBase_.assign(1, base);
    oddBase_.assign(1, base + half + skew_pad);
    footprint_ = 2 * half + skew_pad;
}

uint32_t
PaddedReductionLayout::nodeAddr(unsigned level, uint32_t index) const
{
    (void)level; // bases are level-invariant; slots shrink per level
    const uint32_t slot = index / 2;
    if (index % 2 == 0)
        return evenBase_[0] + slot * nodeBytes_;
    return oddBase_[0] + slot * nodeBytes_;
}

uint32_t
PaddedReductionLayout::footprint() const
{
    return footprint_;
}

ConflictCounts
reductionConflicts(const ReductionLayout &layout, unsigned block_threads,
                   const BankModel &model)
{
    ConflictCounts out;
    const unsigned node_bytes = layout.nodeBytes();
    const unsigned warp = 32;

    unsigned levels = 0;
    for (uint32_t v = layout.leaves(); v > 1; v >>= 1)
        ++levels;

    for (unsigned level = 0; level < levels; ++level) {
        const uint32_t parents = layout.leaves() >> (level + 1);
        const uint32_t active =
            std::min<uint32_t>(parents, block_threads);
        // Threads loop if the block is smaller than the level width;
        // each pass is its own set of warp instructions.
        for (uint32_t pass = 0; pass * active < parents; ++pass) {
            const uint32_t lo = pass * active;
            const uint32_t hi = std::min(parents, lo + active);
            for (uint32_t w = lo; w < hi; w += warp) {
                const uint32_t lanes = std::min<uint32_t>(warp, hi - w);
                WarpAccess left, right, store;
                left.bytesPerLane = node_bytes;
                right.bytesPerLane = node_bytes;
                store.bytesPerLane = node_bytes;
                for (uint32_t lane = 0; lane < lanes; ++lane) {
                    const uint32_t i = w + lane;
                    left.laneAddrs.push_back(
                        layout.nodeAddr(level, 2 * i));
                    right.laneAddrs.push_back(
                        layout.nodeAddr(level, 2 * i + 1));
                    store.laneAddrs.push_back(
                        layout.nodeAddr(level + 1, i));
                }
                out.loadConflicts += model.conflicts(left);
                out.loadConflicts += model.conflicts(right);
                out.storeConflicts += model.conflicts(store);
                out.loadInstructions += 2;
                out.storeInstructions += 1;
            }
        }
    }
    return out;
}

} // namespace herosign::gpu
