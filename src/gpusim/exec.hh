/**
 * @file
 * Functional execution of simulated CUDA kernels.
 *
 * Kernels are written as *phase-structured* bodies: the code between
 * two block-wide barriers is one phase, and the executor runs every
 * thread's phase body in sequence before moving to the next phase —
 * giving exactly the synchronization semantics of __syncthreads()
 * without needing fibers. Tree reductions map naturally onto this
 * (one level per phase, as in the paper's Fig. 7).
 *
 * While a block runs, the context traces shared-memory accesses
 * (grouped into warp instructions by call order), charges per-thread
 * cycles through the calibrated CostParams, and produces the
 * BlockProfile the timing model consumes. Functional state (shared
 * memory contents) is real: kernels compute actual signatures.
 */

#ifndef HEROSIGN_GPUSIM_EXEC_HH
#define HEROSIGN_GPUSIM_EXEC_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "gpusim/banks.hh"
#include "gpusim/cost_model.hh"
#include "gpusim/device_props.hh"
#include "gpusim/perf_counters.hh"

namespace herosign::gpu
{

class BlockContext;

/** A simulated kernel body. */
class KernelBody
{
  public:
    virtual ~KernelBody() = default;

    /** Kernel name for reports ("FORS_Sign", ...). */
    virtual std::string name() const = 0;

    /** Number of barrier-delimited phases for @p block_idx. */
    virtual unsigned numPhases(unsigned block_idx) const = 0;

    /**
     * Run phase @p phase of thread @p tid in block @p block_idx.
     * Implementations must be deterministic and must not communicate
     * between threads except through the shared-memory API of
     * BlockContext.
     */
    virtual void run(unsigned phase, BlockContext &blk, unsigned tid) = 0;
};

/** Execution context of one thread block. */
class BlockContext
{
  public:
    BlockContext(const DeviceProps &dev, const CostParams &cp,
                 unsigned block_idx, unsigned block_dim,
                 size_t shared_bytes, double cycles_per_hash);

    unsigned blockIdx() const { return blockIdx_; }
    unsigned blockDim() const { return blockDim_; }

    /** Raw shared-memory backing store (functional state). */
    uint8_t *shared() { return shared_.data(); }
    size_t sharedSize() const { return shared_.size(); }

    /**
     * Load @p bytes from shared memory at @p addr into @p dst,
     * tracing the access for bank-conflict accounting and charging
     * @p tid the word-transfer cycles.
     */
    void loadShared(unsigned tid, uint32_t addr, uint8_t *dst,
                    unsigned bytes);

    /** Store counterpart of loadShared. */
    void storeShared(unsigned tid, uint32_t addr, const uint8_t *src,
                     unsigned bytes);

    /** Charge @p count SHA-256 compressions to @p tid. */
    void chargeHash(unsigned tid, uint64_t count = 1);

    /** Charge a global-memory transfer to @p tid. */
    void chargeGlobal(unsigned tid, uint64_t bytes);

    /** Charge a constant-memory (broadcast) read to @p tid. */
    void chargeConstant(unsigned tid, uint64_t bytes);

    /** Charge raw ALU cycles (index math, base-w conversion, ...). */
    void chargeCycles(unsigned tid, double cycles);

    /// @{ Executor-side hooks.
    void beginPhase();
    PhaseStats endPhase();
    const PerfCounters &counters() const { return counters_; }
    /// @}

  private:
    struct TracedAccess
    {
        uint32_t addr;
        unsigned bytes;
        bool isStore;
    };

    void flushWarpInstructions(PhaseStats &stats);

    const DeviceProps &dev_;
    const CostParams &cp_;
    BankModel bankModel_;
    unsigned blockIdx_;
    unsigned blockDim_;
    double cyclesPerHash_;

    std::vector<uint8_t> shared_;
    std::vector<double> threadCycles_;
    std::vector<std::vector<TracedAccess>> accesses_;
    PerfCounters counters_;
};

/** How to derive timing profiles. */
enum class ExecMode
{
    /// Execute every block functionally; profile block 0.
    Functional,
    /// Execute nothing; caller supplies an analytic profile.
    Analytic,
};

/** A kernel launch: body + geometry + resources. */
struct LaunchSpec
{
    std::shared_ptr<KernelBody> body;
    unsigned gridDim = 1;
    unsigned blockDim = 1;
    size_t sharedBytes = 0;
    unsigned regsPerThread = 32;
    double cyclesPerHash = 2400;   ///< variant-dependent

    KernelResources
    resources() const
    {
        return KernelResources{regsPerThread, blockDim, sharedBytes};
    }
};

/** Result of executing a launch functionally. */
struct ExecResult
{
    BlockProfile profile;      ///< representative block (block 0)
    PerfCounters totals;       ///< summed over all executed blocks
};

/**
 * Execute all blocks of @p spec functionally (sequentially) against
 * live memory, returning the block-0 profile and summed counters.
 */
ExecResult executeLaunch(const DeviceProps &dev, const CostParams &cp,
                         const LaunchSpec &spec);

/**
 * Execute only block @p block_idx (used to profile a representative
 * block when functional output is not needed for every block).
 */
ExecResult executeBlock(const DeviceProps &dev, const CostParams &cp,
                        const LaunchSpec &spec, unsigned block_idx);

} // namespace herosign::gpu

#endif // HEROSIGN_GPUSIM_EXEC_HH
