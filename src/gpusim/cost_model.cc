#include "gpusim/cost_model.hh"

#include <algorithm>
#include <cmath>

namespace herosign::gpu
{

double
BlockProfile::criticalPathCycles(const CostParams &cp) const
{
    double total = 0;
    for (const auto &ph : phases)
        total += ph.maxThreadCycles + ph.worstWarpConflictCycles;
    // One barrier between consecutive phases.
    if (phases.size() > 1)
        total += (phases.size() - 1) * cp.cyclesPerBarrier;
    return total;
}

double
BlockProfile::totalLaneCycles() const
{
    double total = 0;
    for (const auto &ph : phases)
        total += ph.sumThreadCycles;
    return total;
}

double
issueEfficiency(const CostParams &cp, double occupancy)
{
    if (occupancy >= cp.saturationOccupancy)
        return 1.0;
    return std::max(cp.minIssueEfficiency,
                    occupancy / cp.saturationOccupancy);
}

KernelTiming
kernelTiming(const DeviceProps &dev, const CostParams &cp,
             const KernelResources &res, const BlockProfile &profile,
             unsigned grid_blocks)
{
    KernelTiming out;
    if (grid_blocks == 0)
        return out;

    const OccupancyResult occ = computeOccupancy(dev, res);
    out.blocksPerSm = occ.blocksPerSm;
    out.theoreticalOccupancy = occ.occupancy;
    if (occ.blocksPerSm == 0) {
        // Launch failure on real HW; model as a single serialized
        // block at minimum efficiency so callers see a wall.
        out.durationUs = profile.criticalPathCycles(cp) * grid_blocks /
                         (dev.baseClockMhz * cp.minIssueEfficiency);
        return out;
    }

    // How many blocks actually run per SM concurrently, given the
    // grid may be too small to fill the device.
    const unsigned wave_capacity = occ.blocksPerSm * dev.numSms;
    out.waves = (grid_blocks + wave_capacity - 1) / wave_capacity;

    const double critical = profile.criticalPathCycles(cp);
    const double work = profile.totalLaneCycles();

    // Fraction of the block's allocated lanes that are active over
    // the critical path: the barrier-delimited phase structure (idle
    // upper tree levels, fused-set loops) shows up here, exactly as
    // Nsight's achieved-vs-theoretical occupancy gap does.
    const double activity = std::clamp(
        work / (critical * res.threadsPerBlock + 1e-9), 0.02, 1.0);

    const unsigned warps_per_block =
        (res.threadsPerBlock + dev.warpSize - 1) / dev.warpSize;

    double duration_us = 0;
    unsigned blocks_left = grid_blocks;
    while (blocks_left > 0) {
        const unsigned in_wave =
            std::min(blocks_left, wave_capacity);
        // Resident blocks per SM in this wave (ceil over SMs).
        const unsigned resident =
            std::min<unsigned>(occ.blocksPerSm,
                               (in_wave + dev.numSms - 1) / dev.numSms);
        // Achieved occupancy of this wave determines how well the
        // resident warps hide issue latency; the SM's integer lanes
        // then drain the wave's total work at that efficiency.
        const double achieved_occ =
            static_cast<double>(resident * warps_per_block) /
            dev.maxWarpsPerSm * activity;
        const double eff = issueEfficiency(cp, achieved_occ);
        const double rate =
            dev.coresPerSm() * dev.intIssueFraction * eff;
        const double wave_cycles =
            std::max(resident * work / rate, critical);
        duration_us += wave_cycles / dev.baseClockMhz;
        blocks_left -= in_wave;
    }

    out.durationUs = duration_us;
    out.occupancy = out.theoreticalOccupancy * activity;

    // Compute throughput: useful lane-cycles vs peak over duration.
    const double total_work = work * grid_blocks;
    const double peak_lane_cycles =
        dev.intLanesPerUs() * duration_us;
    out.computeThroughputPct =
        100.0 * std::min(1.0, total_work / (peak_lane_cycles + 1e-9));

    // Memory throughput: global traffic vs peak bandwidth.
    const double bytes =
        static_cast<double>(profile.counters.globalBytes) * grid_blocks;
    const double peak_bytes = dev.peakBwGBs * 1e3 * duration_us;
    out.memoryThroughputPct =
        100.0 * std::min(1.0, bytes / (peak_bytes + 1e-9));
    return out;
}

} // namespace herosign::gpu
