/**
 * @file
 * Device-level execution timeline simulator.
 *
 * Kernels are submitted to streams (in-order per stream, concurrent
 * across streams) or as instantiated task graphs. The simulator uses
 * a fluid-flow model: at any instant the set of runnable kernels
 * shares the device's throughput in proportion to each kernel's
 * standalone utilization, capped at 1.0 — so two half-utilization
 * kernels overlap perfectly while two saturating kernels serialize.
 * This reproduces the paper's observations about inter-kernel idle
 * time, multi-stream overlap limits, and the benefit of scheduling
 * FORS_Sign and TREE_Sign concurrently.
 *
 * Metrics:
 *  * launch latency — for stream launches, the time from the host
 *    API call to the kernel starting on the device (queueing included,
 *    Nsight-style); for graph launches, the one-time graph submission
 *    plus the per-node device-side dispatch cost.
 *  * idle time — wall time within the makespan where nothing runs.
 */

#ifndef HEROSIGN_GPUSIM_SCHEDULER_HH
#define HEROSIGN_GPUSIM_SCHEDULER_HH

#include <map>
#include <string>
#include <vector>

#include "gpusim/device_props.hh"
#include "gpusim/task_graph.hh"

namespace herosign::gpu
{

/** Timeline record of one executed kernel. */
struct TimelineEntry
{
    std::string name;
    int stream = 0;
    double submitUs = 0;  ///< host API call completion
    double readyUs = 0;   ///< all dependencies satisfied
    double startUs = 0;
    double endUs = 0;
    double launchLatencyUs = 0;
    bool fromGraph = false;
};

/** Aggregate result of a timeline simulation. */
struct ScheduleResult
{
    std::vector<TimelineEntry> entries;
    double makespanUs = 0;
    double idleUs = 0;            ///< device-empty time in makespan
    double launchLatencyUs = 0;   ///< summed latency metric
    double hostSubmitUs = 0;      ///< host time spent in launch APIs

    /** Sum of (end - start) per kernel name. */
    std::map<std::string, double> perKernelBusyUs() const;
};

/**
 * A simulated device timeline. Typical use: construct, submit
 * launches / graphs in host order, then run().
 */
class DeviceSim
{
  public:
    explicit DeviceSim(const DeviceProps &dev);

    /**
     * Submit a kernel to @p stream. Host submission cost is the
     * device's kernelLaunchOverheadUs.
     * @param deps extra cross-stream dependencies (kernel ids)
     * @return kernel id usable as a dependency
     */
    int launch(const KernelExecDesc &kernel, int stream,
               const std::vector<int> &deps = {});

    /**
     * Launch an instantiated task graph on @p stream with a single
     * host API call. Returns the ids of the graph's kernels in node
     * order (the last nodes' completion orders the stream).
     */
    std::vector<int> launchGraph(const TaskGraph &graph, int stream);

    /** Simulate and return the timeline. */
    ScheduleResult run();

  private:
    struct Pending
    {
        KernelExecDesc kernel;
        int stream;
        std::vector<int> deps;
        double submitUs;
        bool fromGraph;
        double dispatchOverheadUs;
    };

    const DeviceProps &dev_;
    std::vector<Pending> pending_;
    std::map<int, int> streamTail_; ///< last kernel id per stream
    double hostClockUs_ = 0;
    double graphLaunchCostUs_ = 0;  ///< accumulated graph API cost
};

} // namespace herosign::gpu

#endif // HEROSIGN_GPUSIM_SCHEDULER_HH
