#include "gpusim/compile_model.hh"

#include <cmath>
#include <stdexcept>

namespace herosign::gpu
{

namespace
{

double
optCost(double units, const CompileCostParams &p)
{
    return p.optSecondsPerUnit *
           std::pow(units, p.optSuperlinearExponent);
}

} // namespace

double
compileSeconds(CompileStrategy strategy,
               const std::vector<KernelCodeSize> &kernels,
               const CompileCostParams &p)
{
    double total = p.linkFixedSeconds;
    for (const auto &k : kernels) {
        total += p.perKernelFixedSeconds;
        switch (strategy) {
          case CompileStrategy::BaselineRuntimeBranch: {
            // Both bodies live in one kernel: the front end parses
            // both and the optimizer sees their sum.
            const double units = k.nativeBodyUnits + k.ptxBodyUnits;
            total += p.frontEndSecondsPerUnit * units;
            total += optCost(units, p);
            break;
          }
          case CompileStrategy::CompileTimeBranch: {
            // constexpr-if: the discarded branch is parsed but never
            // reaches the optimizer; add the instantiation cost.
            const double kept =
                k.selectsPtx ? k.ptxBodyUnits : k.nativeBodyUnits;
            const double parsed = k.nativeBodyUnits + k.ptxBodyUnits;
            total += p.frontEndSecondsPerUnit * parsed;
            total += optCost(kept, p);
            total += p.templateInstantiationSeconds;
            break;
          }
        }
    }
    return total;
}

std::vector<KernelCodeSize>
sphincsKernelSizes(const std::string &set)
{
    // Body sizes scale with n (more unrolled message-schedule work)
    // and with the per-kernel surrounding logic. PTX bodies are about
    // 40% the optimizer-visible size: the SHA rounds are opaque asm,
    // only the glue remains visible.
    double n;
    bool ptx_tree, ptx_wots;
    if (set == "SPHINCS+-128f") {
        n = 16;
        ptx_tree = false;
        ptx_wots = false;
    } else if (set == "SPHINCS+-192f") {
        n = 24;
        ptx_tree = false;
        ptx_wots = false;
    } else if (set == "SPHINCS+-256f") {
        n = 32;
        ptx_tree = true;
        ptx_wots = true;
    } else {
        throw std::invalid_argument(
            "sphincsKernelSizes: unknown set " + set);
    }

    const double sha_units = 260 + 6.0 * n; // unrolled SHA-256 body
    auto kernel = [&](const std::string &name, double glue,
                      bool selects_ptx) {
        KernelCodeSize k;
        k.name = name;
        k.nativeBodyUnits = sha_units + glue;
        k.ptxBodyUnits = 0.40 * sha_units + glue;
        k.selectsPtx = selects_ptx;
        return k;
    };

    return {
        kernel("FORS_Sign", 180, true), // PTX wins on all sets (Tab. V)
        kernel("TREE_Sign", 260, ptx_tree),
        kernel("WOTS+_Sign", 150, ptx_wots),
    };
}

} // namespace herosign::gpu
