/**
 * @file
 * CUDA occupancy calculator.
 *
 * Two views are provided: the paper's simplified register-only Eq. 1,
 * and the full calculator that also applies shared-memory, thread-slot
 * and block-slot limits (what cudaOccupancyMaxActiveBlocksPerSM
 * reports). HERO-Sign's PTX branch selection and the tuner both reason
 * in terms of this model.
 */

#ifndef HEROSIGN_GPUSIM_OCCUPANCY_HH
#define HEROSIGN_GPUSIM_OCCUPANCY_HH

#include <string>

#include "gpusim/device_props.hh"

namespace herosign::gpu
{

/** Per-launch resource requirements of a kernel. */
struct KernelResources
{
    unsigned regsPerThread = 32;
    unsigned threadsPerBlock = 1024;
    size_t smemPerBlock = 0;   ///< static + dynamic shared memory
};

/** What bound the resident-block count. */
enum class OccupancyLimiter
{
    Registers,
    SharedMemory,
    ThreadSlots,
    BlockSlots,
    WarpSlots,
};

std::string limiterName(OccupancyLimiter limiter);

/** Result of the occupancy computation for one SM. */
struct OccupancyResult
{
    unsigned blocksPerSm = 0;
    unsigned activeWarpsPerSm = 0;
    double occupancy = 0.0;   ///< activeWarps / maxWarpsPerSm
    OccupancyLimiter limiter = OccupancyLimiter::BlockSlots;
};

/**
 * Full occupancy computation: resident blocks per SM under register,
 * shared-memory, thread-slot, warp-slot and block-slot limits.
 * Register allocation is modelled with per-warp granularity of 256
 * registers, as on real parts.
 */
OccupancyResult computeOccupancy(const DeviceProps &dev,
                                 const KernelResources &res);

/**
 * The paper's Eq. 1:
 *   Occupancy = (1/Wmax) * floor(Rtotal / (Rthread * Tblock))
 *             * (Tblock / 32)
 * i.e. the register-limited occupancy ignoring other constraints.
 */
double paperEq1Occupancy(const DeviceProps &dev,
                         const KernelResources &res);

} // namespace herosign::gpu

#endif // HEROSIGN_GPUSIM_OCCUPANCY_HH
