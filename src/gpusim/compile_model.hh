/**
 * @file
 * Analytic model of nvcc compilation cost (paper Table XI).
 *
 * Mechanism being modelled: ptxas optimization time grows with the
 * size of the code it is free to optimize. The hand-written PTX
 * branch is mostly opaque inline assembly, which *shrinks* the
 * optimization space; compile-time branch selection (constexpr-if)
 * means each kernel contains a single body, while the baseline's
 * runtime branching carries both bodies through the optimizer.
 * Template instantiation adds a small per-kernel front-end cost.
 * The paper's observation — HERO-Sign compiles 1.07x-1.28x *faster*
 * despite the extra instantiations — falls out of this accounting.
 *
 * This is a documented model, not a measurement of a real compiler
 * (DESIGN.md §1).
 */

#ifndef HEROSIGN_GPUSIM_COMPILE_MODEL_HH
#define HEROSIGN_GPUSIM_COMPILE_MODEL_HH

#include <string>
#include <vector>

namespace herosign::gpu
{

/** Compilation strategies compared in Table XI. */
enum class CompileStrategy
{
    /// Runtime branch selection: every kernel carries native + PTX
    /// bodies through optimization.
    BaselineRuntimeBranch,
    /// HERO-Sign: constexpr-if specialization, one body per kernel,
    /// plus template instantiation overhead.
    CompileTimeBranch,
};

/** Per-kernel code-size description (arbitrary "statement" units). */
struct KernelCodeSize
{
    std::string name;
    double nativeBodyUnits;  ///< optimizer-visible statements, native
    double ptxBodyUnits;     ///< mostly opaque asm: smaller space
    bool selectsPtx;         ///< which body the HERO build keeps
};

/** Tunable constants of the compile-cost model. */
struct CompileCostParams
{
    double frontEndSecondsPerUnit = 0.0015;
    /// Optimization cost per optimizer-visible statement unit.
    double optSecondsPerUnit = 0.004;
    double optSuperlinearExponent = 1.0;
    double perKernelFixedSeconds = 1.2;
    double templateInstantiationSeconds = 0.25;
    double linkFixedSeconds = 1.6;
};

/**
 * Seconds to build the three-kernel SPHINCS+ module under the given
 * strategy. @p kernels describes the per-kernel code sizes; block-size
 * variations re-instantiate launch bounds, adding front-end work.
 */
double compileSeconds(CompileStrategy strategy,
                      const std::vector<KernelCodeSize> &kernels,
                      const CompileCostParams &params = {});

/**
 * The code-size description of the three HERO-Sign kernels for a
 * given parameter set name ("SPHINCS+-128f", ...), including which
 * kernels select the PTX body (paper Table V).
 */
std::vector<KernelCodeSize> sphincsKernelSizes(const std::string &set);

} // namespace herosign::gpu

#endif // HEROSIGN_GPUSIM_COMPILE_MODEL_HH
