/**
 * @file
 * The kernel timing model.
 *
 * Calibration contract (DESIGN.md §5): the constants below are
 * calibrated once against the paper's RTX 4090 baseline measurements
 * and then held fixed for every experiment and architecture; all
 * relative effects (fusion, PTX selection, padding, graphs, other
 * GPUs) are emergent.
 *
 * Timing of one block = sum over barrier-delimited phases of the
 * slowest thread's cycles in that phase (critical path), plus
 * bank-conflict serialization of the worst warp. A kernel's duration
 * on the device divides its blocks into resident waves (occupancy
 * calculator) and applies an issue-efficiency factor that models how
 * well the resident warps hide ALU latency — the mechanism by which
 * occupancy gains from PTX register savings translate into speedups.
 */

#ifndef HEROSIGN_GPUSIM_COST_MODEL_HH
#define HEROSIGN_GPUSIM_COST_MODEL_HH

#include <cstdint>
#include <vector>

#include "gpusim/device_props.hh"
#include "gpusim/occupancy.hh"
#include "gpusim/perf_counters.hh"

namespace herosign::gpu
{

/** Calibrated cost constants (units: per-thread cycles). */
struct CostParams
{
    /// Serial cycles per SHA-256 compression, plain-C build.
    double cyclesPerHashNative = 2400;
    /// PTX branch: prmt replaces shift chains, mad keeps IADD3 out.
    double cyclesPerHashPtx = 2250;
    /// Per 4-byte shared-memory word moved by a thread.
    double cyclesPerSharedWord = 2.0;
    /// Extra cycles per serialized conflict wavefront.
    double cyclesPerConflict = 30.0;
    /// Issue lanes wasted per conflict wavefront replay.
    double conflictIssueLanes = 8.0;
    /// Per-byte global memory cost (short, poorly-coalesced reads of
    /// key material dominate the paper's HybridME discussion).
    double cyclesPerGlobalByte = 4.0;
    /// Constant memory broadcast: near-SRAM latency.
    double cyclesPerConstantByte = 0.25;
    /// Block-wide barrier cost.
    double cyclesPerBarrier = 40.0;
    /// Occupancy at which the SM's integer pipes saturate; below it,
    /// issue efficiency degrades linearly (latency not hidden).
    double saturationOccupancy = 0.40;
    /// Issue efficiency floor at occupancy -> 0.
    double minIssueEfficiency = 0.10;
};

/** Per-phase execution statistics of one block. */
struct PhaseStats
{
    uint32_t activeLanes = 0;      ///< threads that did work
    double maxThreadCycles = 0;    ///< critical path of the phase
    double sumThreadCycles = 0;    ///< total work in the phase
    uint64_t bankConflicts = 0;    ///< all warps
    double worstWarpConflictCycles = 0; ///< serialization added
};

/** Execution profile of one (representative) block. */
struct BlockProfile
{
    std::vector<PhaseStats> phases;
    PerfCounters counters;

    /** Critical-path cycles: barrier-to-barrier maxima summed. */
    double criticalPathCycles(const CostParams &cp) const;

    /** Total lane-cycles of useful work. */
    double totalLaneCycles() const;
};

/** Timing + throughput result for one kernel launch. */
struct KernelTiming
{
    double durationUs = 0;
    double occupancy = 0;          ///< achieved warp occupancy
    double theoreticalOccupancy = 0;
    double computeThroughputPct = 0;
    double memoryThroughputPct = 0;
    unsigned blocksPerSm = 0;
    unsigned waves = 0;
};

/**
 * Compute the duration of a kernel launch of @p grid_blocks blocks,
 * each behaving like @p profile, with resources @p res, on @p dev.
 */
KernelTiming kernelTiming(const DeviceProps &dev, const CostParams &cp,
                          const KernelResources &res,
                          const BlockProfile &profile,
                          unsigned grid_blocks);

/**
 * Issue efficiency at a given occupancy: how much of the peak integer
 * throughput resident warps can sustain.
 */
double issueEfficiency(const CostParams &cp, double occupancy);

} // namespace herosign::gpu

#endif // HEROSIGN_GPUSIM_COST_MODEL_HH
