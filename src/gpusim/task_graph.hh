/**
 * @file
 * CUDA-Graph-like task graphs (paper §III-F).
 *
 * A TaskGraph captures kernel nodes and their dependency edges once;
 * an instantiated graph is launched with a single host API call, so
 * the per-kernel host launch overhead and the host-side stream
 * round-trips between dependent kernels disappear — the mechanism
 * behind the paper's two-orders-of-magnitude launch-latency
 * reduction (Fig. 12).
 */

#ifndef HEROSIGN_GPUSIM_TASK_GRAPH_HH
#define HEROSIGN_GPUSIM_TASK_GRAPH_HH

#include <string>
#include <vector>

namespace herosign::gpu
{

/** Scheduling-level description of a kernel execution. */
struct KernelExecDesc
{
    std::string name;
    /// Duration when running alone on the device (from kernelTiming).
    double durationAloneUs = 0;
    /// Fraction of device throughput consumed when running alone.
    double utilization = 1.0;
    /// Device gap before this kernel may start once its dependencies
    /// complete — models host synchronization + intermediate-result
    /// copies between component kernels (the TCAS baseline's idle
    /// time, paper Table II).
    double preGapUs = 0;
};

/** One node of a task graph. */
struct GraphNode
{
    KernelExecDesc kernel;
    /// Indices of nodes (within the graph) that must finish first.
    std::vector<int> deps;
};

/** A captured kernel DAG. */
class TaskGraph
{
  public:
    /**
     * Add a node; returns its index.
     * @param deps intra-graph dependencies (must be existing indices)
     */
    int addNode(const KernelExecDesc &kernel,
                const std::vector<int> &deps = {});

    const std::vector<GraphNode> &nodes() const { return nodes_; }
    bool empty() const { return nodes_.empty(); }
    size_t size() const { return nodes_.size(); }

    /** Validate the dependency structure (indices, acyclicity). */
    void validate() const;

  private:
    std::vector<GraphNode> nodes_;
};

} // namespace herosign::gpu

#endif // HEROSIGN_GPUSIM_TASK_GRAPH_HH
