#include "gpusim/scheduler.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace herosign::gpu
{

std::map<std::string, double>
ScheduleResult::perKernelBusyUs() const
{
    std::map<std::string, double> out;
    for (const auto &e : entries)
        out[e.name] += e.endUs - e.startUs;
    return out;
}

DeviceSim::DeviceSim(const DeviceProps &dev) : dev_(dev)
{
}

int
DeviceSim::launch(const KernelExecDesc &kernel, int stream,
                  const std::vector<int> &deps)
{
    hostClockUs_ += dev_.kernelLaunchOverheadUs;
    Pending p;
    p.kernel = kernel;
    p.stream = stream;
    p.deps = deps;
    auto it = streamTail_.find(stream);
    if (it != streamTail_.end())
        p.deps.push_back(it->second);
    p.submitUs = hostClockUs_;
    p.fromGraph = false;
    p.dispatchOverheadUs = 0;
    const int id = static_cast<int>(pending_.size());
    for (int d : p.deps) {
        if (d < 0 || d >= id)
            throw std::invalid_argument("DeviceSim: bad dependency id");
    }
    pending_.push_back(std::move(p));
    streamTail_[stream] = id;
    return id;
}

std::vector<int>
DeviceSim::launchGraph(const TaskGraph &graph, int stream)
{
    graph.validate();
    // One host API call for the whole graph.
    hostClockUs_ += dev_.graphLaunchOverheadUs;
    graphLaunchCostUs_ += dev_.graphLaunchOverheadUs;

    const int base = static_cast<int>(pending_.size());
    std::vector<int> ids;
    ids.reserve(graph.size());

    // The graph as a whole is ordered after prior work on the stream.
    std::vector<int> stream_dep;
    auto it = streamTail_.find(stream);
    if (it != streamTail_.end())
        stream_dep.push_back(it->second);

    for (size_t i = 0; i < graph.nodes().size(); ++i) {
        const GraphNode &node = graph.nodes()[i];
        Pending p;
        p.kernel = node.kernel;
        p.stream = stream;
        for (int d : node.deps)
            p.deps.push_back(base + d);
        if (node.deps.empty())
            p.deps = stream_dep; // roots wait for the stream only
        p.submitUs = hostClockUs_;
        p.fromGraph = true;
        p.dispatchOverheadUs = dev_.graphNodeOverheadUs;
        pending_.push_back(std::move(p));
        ids.push_back(base + static_cast<int>(i));
    }
    if (!ids.empty()) {
        // Stream ordering continues after the graph's sink nodes; for
        // simplicity order after the last node (graphs here always
        // end in a sink).
        streamTail_[stream] = ids.back();
    }
    return ids;
}

ScheduleResult
DeviceSim::run()
{
    const size_t n = pending_.size();
    ScheduleResult out;
    out.entries.resize(n);
    out.hostSubmitUs = hostClockUs_;

    std::vector<double> remaining(n); // alone-us of work left
    std::vector<double> ready_at(n, 0);
    std::vector<bool> started(n, false), done(n, false);
    std::vector<double> end_time(n, 0);

    for (size_t i = 0; i < n; ++i) {
        remaining[i] =
            std::max(pending_[i].kernel.durationAloneUs, 1e-6);
        out.entries[i].name = pending_[i].kernel.name;
        out.entries[i].stream = pending_[i].stream;
        out.entries[i].submitUs = pending_[i].submitUs;
        out.entries[i].fromGraph = pending_[i].fromGraph;
    }

    auto compute_ready = [&](size_t i) {
        double t = pending_[i].submitUs;
        for (int d : pending_[i].deps)
            t = std::max(t, end_time[d] + pending_[i].kernel.preGapUs);
        return t + pending_[i].dispatchOverheadUs;
    };

    size_t completed = 0;
    double clock = 0;
    double idle = 0;
    // Guard against cycles / logic errors.
    size_t iterations = 0;
    const size_t max_iterations = 4 * n + 16;

    while (completed < n) {
        if (++iterations > max_iterations)
            throw std::logic_error("DeviceSim: schedule did not settle");

        // Runnable set: not done, all deps done, submitted.
        std::vector<size_t> running;
        double next_ready = std::numeric_limits<double>::infinity();
        for (size_t i = 0; i < n; ++i) {
            if (done[i])
                continue;
            bool deps_ok = true;
            for (int d : pending_[i].deps)
                deps_ok = deps_ok && done[d];
            if (!deps_ok)
                continue;
            ready_at[i] = compute_ready(i);
            if (ready_at[i] <= clock + 1e-12) {
                running.push_back(i);
            } else {
                next_ready = std::min(next_ready, ready_at[i]);
            }
        }

        if (running.empty()) {
            if (!std::isfinite(next_ready))
                throw std::logic_error("DeviceSim: deadlock");
            idle += next_ready - clock;
            clock = next_ready;
            continue;
        }

        for (size_t i : running) {
            if (!started[i]) {
                started[i] = true;
                out.entries[i].readyUs = ready_at[i];
                out.entries[i].startUs = clock;
            }
        }

        // Fluid sharing: total demanded utilization, uniform slowdown.
        double total_util = 0;
        for (size_t i : running)
            total_util += pending_[i].kernel.utilization;
        const double factor =
            total_util > 1.0 ? 1.0 / total_util : 1.0;

        // Advance to the earliest of: a running kernel finishing, or
        // a new kernel becoming ready.
        double dt = std::numeric_limits<double>::infinity();
        for (size_t i : running)
            dt = std::min(dt, remaining[i] / factor);
        if (std::isfinite(next_ready))
            dt = std::min(dt, next_ready - clock);

        clock += dt;
        for (size_t i : running) {
            remaining[i] -= dt * factor;
            if (remaining[i] <= 1e-9) {
                done[i] = true;
                ++completed;
                end_time[i] = clock;
                out.entries[i].endUs = clock;
            }
        }
    }

    out.makespanUs = clock;
    out.idleUs = idle;

    for (size_t i = 0; i < n; ++i) {
        if (pending_[i].fromGraph) {
            out.entries[i].launchLatencyUs =
                pending_[i].dispatchOverheadUs;
        } else {
            out.entries[i].launchLatencyUs =
                std::max(0.0,
                         out.entries[i].startUs -
                             out.entries[i].submitUs) +
                dev_.kernelLaunchOverheadUs;
        }
        out.launchLatencyUs += out.entries[i].launchLatencyUs;
    }
    out.launchLatencyUs += graphLaunchCostUs_;
    return out;
}

} // namespace herosign::gpu
