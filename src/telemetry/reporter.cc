#include "reporter.hh"

#include <fstream>

namespace herosign::telemetry
{

MetricsReporter::MetricsReporter(std::string path,
                                 std::chrono::milliseconds period,
                                 Producer producer)
    : path_(std::move(path)), period_(period),
      producer_(std::move(producer)),
      thread_([this] { run(); })
{
}

MetricsReporter::~MetricsReporter() { stop(); }

void
MetricsReporter::stop()
{
    {
        std::lock_guard<std::mutex> lock(m_);
        if (stopping_)
            return;
        stopping_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable())
        thread_.join();
    // Final flush: a short soak must still capture its end state.
    appendLine();
}

uint64_t
MetricsReporter::linesWritten() const
{
    std::lock_guard<std::mutex> lock(m_);
    return lines_;
}

void
MetricsReporter::run()
{
    std::unique_lock<std::mutex> lock(m_);
    while (!stopping_)
    {
        if (cv_.wait_for(lock, period_,
                         [this] { return stopping_; }))
            break;
        lock.unlock();
        appendLine();
        lock.lock();
    }
}

void
MetricsReporter::appendLine()
{
    std::string line = producer_();
    std::ofstream out(path_, std::ios::app);
    if (!out)
        return;
    out << line << '\n';
    if (out)
    {
        std::lock_guard<std::mutex> lock(m_);
        ++lines_;
    }
}

} // namespace herosign::telemetry
