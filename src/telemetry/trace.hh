/**
 * @file
 * Stage-timed request tracing primitives.
 *
 * Every request travelling through the serving fabric carries a
 * TraceClock: a fixed array of nanosecond timestamps, one per Stage.
 * Hot paths stamp stages as the request passes checkpoints; on
 * completion the deltas between consecutive stamps decompose the
 * end-to-end latency into queue-wait / coalesce-wait / crypto /
 * guard / callback stages, each feeding its own per-plane histogram.
 *
 * The compile-time kill switch: building with
 * -DHEROSIGN_TELEMETRY_DISABLED (CMake option
 * HEROSIGN_ENABLE_TELEMETRY=OFF) makes compiledIn() a constexpr
 * false, so every stamp and record folds away entirely. With
 * telemetry compiled in but runtime-disabled, the cost is one
 * relaxed-load branch per stamp.
 */

#ifndef HEROSIGN_TELEMETRY_TRACE_HH
#define HEROSIGN_TELEMETRY_TRACE_HH

#include <chrono>
#include <cstdint>

namespace herosign::telemetry
{

/** Which serving plane a request belongs to. */
enum class Plane : uint8_t
{
    Sign = 0,
    Verify = 1,
};

constexpr const char *
planeName(Plane p)
{
    return p == Plane::Sign ? "sign" : "verify";
}

/** Checkpoints stamped onto a request as it moves through a plane. */
enum class Stage : uint8_t
{
    Admit = 0,       ///< accepted by admission control, enqueued
    Dequeue = 1,     ///< popped from the shard queue by a worker
    GroupFormed = 2, ///< coalesce chunk / same-context group sealed
    CryptoStart = 3, ///< sign/verify kernel begins
    CryptoEnd = 4,   ///< sign/verify kernel returns
    GuardEnd = 5,    ///< verify-after-sign guard done (== CryptoEnd
                     ///< when the guard is off)
    Done = 6,        ///< promise settled, callback returned
};

constexpr unsigned kStageCount = 7;

/** Derived per-request latency decompositions fed to histograms. */
enum class StageMetric : uint8_t
{
    QueueWait = 0,    ///< Admit → Dequeue
    CoalesceWait = 1, ///< Dequeue → GroupFormed
    Crypto = 2,       ///< CryptoStart → CryptoEnd
    Guard = 3,        ///< CryptoEnd → GuardEnd
    Callback = 4,     ///< GuardEnd → Done
    EndToEnd = 5,     ///< Admit → Done
};

constexpr unsigned kStageMetricCount = 6;

constexpr const char *
stageMetricName(StageMetric m)
{
    switch (m)
    {
    case StageMetric::QueueWait:
        return "queue_wait";
    case StageMetric::CoalesceWait:
        return "coalesce_wait";
    case StageMetric::Crypto:
        return "crypto";
    case StageMetric::Guard:
        return "guard";
    case StageMetric::Callback:
        return "callback";
    case StageMetric::EndToEnd:
        return "end_to_end";
    }
    return "unknown";
}

constexpr bool
compiledIn()
{
#ifdef HEROSIGN_TELEMETRY_DISABLED
    return false;
#else
    return true;
#endif
}

/** Monotonic wall-free nanosecond clock used for every stamp. */
inline uint64_t
nowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/**
 * Compact per-request stamp card: kStageCount nanosecond timestamps,
 * 0 = never stamped. Plain (non-atomic) fields — a request is owned
 * by exactly one thread at every checkpoint, and the queue handoff
 * between stamping threads synchronises the earlier stamps.
 */
struct TraceClock
{
    uint64_t ts[kStageCount] = {};

    void
    stamp(Stage s, uint64_t ns)
    {
        ts[static_cast<unsigned>(s)] = ns;
    }

    void stamp(Stage s) { stamp(s, nowNs()); }

    uint64_t
    at(Stage s) const
    {
        return ts[static_cast<unsigned>(s)];
    }

    bool stamped(Stage s) const { return at(s) != 0; }

    /**
     * Nanoseconds from @p from to @p to; 0 when either stamp is
     * missing or the pair is inverted (e.g. a request failed before
     * reaching @p from).
     */
    uint64_t
    delta(Stage from, Stage to) const
    {
        const uint64_t a = at(from);
        const uint64_t b = at(to);
        if (a == 0 || b == 0 || b < a)
            return 0;
        return b - a;
    }

    uint64_t
    metric(StageMetric m) const
    {
        switch (m)
        {
        case StageMetric::QueueWait:
            return delta(Stage::Admit, Stage::Dequeue);
        case StageMetric::CoalesceWait:
            return delta(Stage::Dequeue, Stage::GroupFormed);
        case StageMetric::Crypto:
            return delta(Stage::CryptoStart, Stage::CryptoEnd);
        case StageMetric::Guard:
            return delta(Stage::CryptoEnd, Stage::GuardEnd);
        case StageMetric::Callback:
            return delta(Stage::GuardEnd, Stage::Done);
        case StageMetric::EndToEnd:
            return delta(Stage::Admit, Stage::Done);
        }
        return 0;
    }
};

} // namespace herosign::telemetry

#endif // HEROSIGN_TELEMETRY_TRACE_HH
