/**
 * @file
 * TraceRecorder: a bounded ring buffer of full per-request span
 * records for a deterministically sampled subset of traffic.
 *
 * Writers claim a slot by CAS-ing its version counter from even to
 * odd, copy the span in, and release by bumping back to even.
 * dump() takes the same lock per slot, so readers never observe a
 * torn span and the whole structure is TSan-clean without a global
 * mutex. A writer that loses the CAS (another writer or a dump holds
 * the slot) drops its sample and counts the drop — the hot path
 * never spins, blocks, or allocates.
 */

#ifndef HEROSIGN_TELEMETRY_RECORDER_HH
#define HEROSIGN_TELEMETRY_RECORDER_HH

#include "telemetry/trace.hh"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

namespace herosign::telemetry
{

/// Span flag bits: failure/fault context captured with the timeline.
inline constexpr uint32_t kSpanFailed = 1u << 0;
inline constexpr uint32_t kSpanExpired = 1u << 1;
inline constexpr uint32_t kSpanGuardMismatch = 1u << 2;
inline constexpr uint32_t kSpanLaneQuarantine = 1u << 3;
inline constexpr uint32_t kSpanFaultArmed = 1u << 4;

/** One sampled request timeline. Fixed-size, trivially copyable. */
struct TraceSpan
{
    static constexpr unsigned kTenantBytes = 24;

    uint64_t index = 0; ///< global sample ordinal (gap-free per
                        ///< recorder; holes mean dropped samples)
    uint64_t seq = 0;   ///< the plane's request sequence number
    uint64_t ts[kStageCount] = {}; ///< stage stamps (ns, 0 = unset)
    uint32_t flags = 0;            ///< kSpan* bits
    Plane plane = Plane::Sign;
    char tenant[kTenantBytes] = {}; ///< NUL-terminated, truncated

    void
    setTenant(const std::string &id)
    {
        const size_t n =
            std::min(id.size(), size_t{kTenantBytes - 1});
        std::memcpy(tenant, id.data(), n);
        tenant[n] = '\0';
    }
};

class TraceRecorder
{
  public:
    explicit TraceRecorder(size_t capacity)
        : capacity_(capacity == 0 ? 1 : capacity),
          slots_(std::make_unique<Slot[]>(
              capacity == 0 ? 1 : capacity))
    {
    }

    /**
     * Publish @p span into the ring (overwriting the oldest entry).
     * Lock-free fast path; drops (and counts) on slot contention.
     */
    void
    record(TraceSpan span)
    {
        const uint64_t idx =
            writeIndex_.fetch_add(1, std::memory_order_relaxed);
        span.index = idx;
        Slot &slot = slots_[idx % capacity_];
        uint64_t ver = slot.version.load(std::memory_order_relaxed);
        if ((ver & 1) != 0 ||
            !slot.version.compare_exchange_strong(
                ver, ver + 1, std::memory_order_acquire))
        {
            dropped_.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        slot.span = span;
        slot.full = true;
        slot.version.store(ver + 2, std::memory_order_release);
    }

    /**
     * Copy out every recorded span, oldest first. Skips (and leaves
     * untouched) slots a writer holds mid-copy.
     */
    std::vector<TraceSpan>
    dump() const
    {
        std::vector<TraceSpan> out;
        out.reserve(capacity_);
        for (size_t i = 0; i < capacity_; ++i)
        {
            Slot &slot = slots_[i];
            uint64_t ver =
                slot.version.load(std::memory_order_relaxed);
            if ((ver & 1) != 0 ||
                !slot.version.compare_exchange_strong(
                    ver, ver + 1, std::memory_order_acquire))
                continue;
            TraceSpan copy = slot.span;
            const bool full = slot.full;
            slot.version.store(ver + 2, std::memory_order_release);
            if (full)
                out.push_back(copy);
        }
        std::sort(out.begin(), out.end(),
                  [](const TraceSpan &a, const TraceSpan &b) {
                      return a.index < b.index;
                  });
        return out;
    }

    size_t capacity() const { return capacity_; }

    /** Samples lost to slot contention (writer/dump collisions). */
    uint64_t
    dropped() const
    {
        return dropped_.load(std::memory_order_relaxed);
    }

    /** Samples offered so far (recorded + dropped). */
    uint64_t
    offered() const
    {
        return writeIndex_.load(std::memory_order_relaxed);
    }

  private:
    struct Slot
    {
        /// Even = free, odd = held by a writer or a dump.
        std::atomic<uint64_t> version{0};
        bool full = false;
        TraceSpan span;
    };

    size_t capacity_;
    mutable std::unique_ptr<Slot[]> slots_;
    std::atomic<uint64_t> writeIndex_{0};
    std::atomic<uint64_t> dropped_{0};
};

} // namespace herosign::telemetry

#endif // HEROSIGN_TELEMETRY_RECORDER_HH
