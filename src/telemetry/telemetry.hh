/**
 * @file
 * Telemetry: the per-fabric telemetry plane. One instance is owned
 * by a StatsRegistry (so services sharing a registry feed one merged
 * view) and another by each standalone BatchSigner.
 *
 * Aggregates three sinks:
 *  - per-plane, per-stage LatencyHistograms (queue/coalesce/crypto/
 *    guard/callback/end-to-end), plus group-size and lane-fill-ratio
 *    histograms fed from the coalescing paths;
 *  - a TraceRecorder capturing complete timelines for a
 *    deterministic 1-in-N sample of requests;
 *  - drop/sample counters for self-diagnosis.
 *
 * Disarmed cost: enabled() is one relaxed load (and a constexpr
 * false when compiled out), checked once per stamp/record call site.
 */

#ifndef HEROSIGN_TELEMETRY_TELEMETRY_HH
#define HEROSIGN_TELEMETRY_TELEMETRY_HH

#include "telemetry/histogram.hh"
#include "telemetry/recorder.hh"
#include "telemetry/trace.hh"

#include <atomic>
#include <map>
#include <optional>
#include <string>

namespace herosign::telemetry
{

struct TelemetryConfig
{
    /// Runtime master switch; compile-time switch is
    /// HEROSIGN_ENABLE_TELEMETRY (see trace.hh).
    bool enabled = true;
    /// Record a full TraceSpan for every Nth completed request
    /// (per plane, deterministic). 0 disables span sampling.
    unsigned sampleEvery = 64;
    /// TraceRecorder ring capacity (spans retained).
    size_t traceCapacity = 1024;
    /// Histogram writer shards; 0 = auto from hardware concurrency.
    unsigned histogramShards = 0;
};

/** Everything known about one finished request, for complete(). */
struct RequestOutcome
{
    Plane plane = Plane::Sign;
    uint64_t seq = 0;
    const std::string *tenant = nullptr; ///< optional label for spans
    uint32_t flags = 0;                  ///< kSpan* bits
    /// When false (failures), stage histograms are skipped so
    /// latency percentiles describe successful traffic only; the
    /// span (with its failure flags) is still sampled.
    bool recordHistograms = true;
    /// Optional per-tenant end-to-end sink (owned by the caller's
    /// stats registry); fed the EndToEnd metric when non-null.
    LatencyHistogram *tenantEndToEnd = nullptr;
};

class Telemetry
{
  public:
    explicit Telemetry(const TelemetryConfig &config = {});

    /** True when telemetry is compiled in and runtime-enabled. */
    bool
    enabled() const
    {
        return compiledIn() &&
               enabled_.load(std::memory_order_relaxed);
    }

    void
    setEnabled(bool on)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }

    const TelemetryConfig &config() const { return config_; }

    /** Stamp @p stage on @p tc now (no-op when disarmed). */
    void
    stamp(TraceClock &tc, Stage stage) const
    {
        if (enabled())
            tc.stamp(stage);
    }

    /**
     * Record a sealed coalesce/lockstep group: its size and its fill
     * ratio (percent of @p preferred, the lane width the scheduler
     * aims for).
     */
    void recordGroup(Plane plane, size_t size, size_t preferred);

    /**
     * Fold a finished request into the histograms and (1-in-N)
     * the trace ring. The TraceClock must carry its final stamps.
     */
    void complete(const TraceClock &tc, const RequestOutcome &out);

    /**
     * Merged snapshots of every stage histogram for @p plane, keyed
     * "<plane>_<metric>" (plus "<plane>_group_size" and
     * "<plane>_lane_fill_pct"). Empty histograms are skipped.
     */
    std::map<std::string, HistogramSnapshot>
    snapshotStages(Plane plane) const;

    /** Both planes merged into one map. */
    std::map<std::string, HistogramSnapshot> snapshotAll() const;

    const TraceRecorder &recorder() const { return recorder_; }

    /** Spans sampled into the ring so far (pre-drop). */
    uint64_t
    sampled() const
    {
        return sampled_.load(std::memory_order_relaxed);
    }

  private:
    struct PlaneSinks
    {
        explicit PlaneSinks(unsigned shards)
            : groupSize(shards), laneFillPct(shards)
        {
            for (auto &h : stages)
                h.emplace(shards);
        }

        std::optional<LatencyHistogram> stages[kStageMetricCount];
        LatencyHistogram groupSize;
        LatencyHistogram laneFillPct;
        std::atomic<uint64_t> sampleTick{0};
    };

    PlaneSinks &plane(Plane p) { return p == Plane::Sign ? sign_ : verify_; }
    const PlaneSinks &
    plane(Plane p) const
    {
        return p == Plane::Sign ? sign_ : verify_;
    }

    TelemetryConfig config_;
    std::atomic<bool> enabled_;
    PlaneSinks sign_;
    PlaneSinks verify_;
    TraceRecorder recorder_;
    std::atomic<uint64_t> sampled_{0};
};

} // namespace herosign::telemetry

#endif // HEROSIGN_TELEMETRY_TELEMETRY_HH
