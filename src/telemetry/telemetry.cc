#include "telemetry.hh"

namespace herosign::telemetry
{

Telemetry::Telemetry(const TelemetryConfig &config)
    : config_(config), enabled_(config.enabled),
      sign_(config.histogramShards), verify_(config.histogramShards),
      recorder_(config.traceCapacity)
{
}

void
Telemetry::recordGroup(Plane p, size_t size, size_t preferred)
{
    if (!enabled())
        return;
    PlaneSinks &sinks = plane(p);
    sinks.groupSize.record(size);
    if (preferred != 0)
        sinks.laneFillPct.record(size * 100 / preferred);
}

void
Telemetry::complete(const TraceClock &tc, const RequestOutcome &out)
{
    if (!enabled())
        return;
    PlaneSinks &sinks = plane(out.plane);
    if (out.recordHistograms)
    {
        for (unsigned m = 0; m < kStageMetricCount; ++m)
        {
            const uint64_t ns =
                tc.metric(static_cast<StageMetric>(m));
            if (ns != 0)
                sinks.stages[m]->record(ns);
        }
        if (out.tenantEndToEnd != nullptr)
        {
            const uint64_t e2e = tc.metric(StageMetric::EndToEnd);
            if (e2e != 0)
                out.tenantEndToEnd->record(e2e);
        }
    }
    const unsigned every = config_.sampleEvery;
    if (every == 0)
        return;
    const uint64_t tick =
        sinks.sampleTick.fetch_add(1, std::memory_order_relaxed);
    if (tick % every != 0)
        return;
    TraceSpan span;
    span.seq = out.seq;
    span.plane = out.plane;
    span.flags = out.flags;
    for (unsigned s = 0; s < kStageCount; ++s)
        span.ts[s] = tc.ts[s];
    if (out.tenant != nullptr)
        span.setTenant(*out.tenant);
    sampled_.fetch_add(1, std::memory_order_relaxed);
    recorder_.record(span);
}

std::map<std::string, HistogramSnapshot>
Telemetry::snapshotStages(Plane p) const
{
    std::map<std::string, HistogramSnapshot> out;
    if (!compiledIn())
        return out;
    const PlaneSinks &sinks = plane(p);
    const std::string prefix = std::string(planeName(p)) + "_";
    for (unsigned m = 0; m < kStageMetricCount; ++m)
    {
        auto snap = sinks.stages[m]->snapshot();
        if (!snap.empty())
            out.emplace(
                prefix +
                    stageMetricName(static_cast<StageMetric>(m)),
                std::move(snap));
    }
    if (auto snap = sinks.groupSize.snapshot(); !snap.empty())
        out.emplace(prefix + "group_size", std::move(snap));
    if (auto snap = sinks.laneFillPct.snapshot(); !snap.empty())
        out.emplace(prefix + "lane_fill_pct", std::move(snap));
    return out;
}

std::map<std::string, HistogramSnapshot>
Telemetry::snapshotAll() const
{
    auto out = snapshotStages(Plane::Sign);
    auto verify = snapshotStages(Plane::Verify);
    for (auto &[key, snap] : verify)
        out.emplace(key, std::move(snap));
    return out;
}

} // namespace herosign::telemetry
