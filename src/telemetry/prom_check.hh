/**
 * @file
 * Minimal Prometheus text-exposition format checker, used by tests
 * and the metrics-soak example to validate exportPrometheus()
 * output without an external scraper.
 *
 * Checks the subset of the format the exporter emits:
 *  - every non-comment line is `name{labels} value` or `name value`;
 *  - metric names and label keys are legal identifiers;
 *  - label values are double-quoted with no raw quotes inside;
 *  - every sample's base name was declared by a preceding # TYPE;
 *  - histogram series carry _bucket/_sum/_count suffixes, buckets
 *    are cumulative (non-decreasing by `le`) and end at le="+Inf"
 *    with a count equal to the _count sample.
 */

#ifndef HEROSIGN_TELEMETRY_PROM_CHECK_HH
#define HEROSIGN_TELEMETRY_PROM_CHECK_HH

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace herosign::telemetry
{

struct PromCheckResult
{
    bool ok = true;
    std::vector<std::string> errors;
    size_t samples = 0;
    size_t typeDecls = 0;

    void
    fail(size_t lineNo, const std::string &why)
    {
        ok = false;
        errors.push_back("line " + std::to_string(lineNo) + ": " +
                         why);
    }
};

namespace prom_detail
{

inline bool
validName(const std::string &s)
{
    if (s.empty())
        return false;
    if (!(std::isalpha(static_cast<unsigned char>(s[0])) ||
          s[0] == '_' || s[0] == ':'))
        return false;
    for (char c : s)
        if (!(std::isalnum(static_cast<unsigned char>(c)) ||
              c == '_' || c == ':'))
            return false;
    return true;
}

inline bool
validValue(const std::string &s)
{
    if (s.empty())
        return false;
    if (s == "+Inf" || s == "-Inf" || s == "NaN")
        return true;
    char *end = nullptr;
    std::string copy = s;
    std::strtod(copy.c_str(), &end);
    return end != nullptr && *end == '\0';
}

/// Base metric name of a sample: strips a histogram suffix.
inline std::string
baseName(const std::string &name)
{
    for (const char *suffix : {"_bucket", "_sum", "_count"})
    {
        const std::string suf(suffix);
        if (name.size() > suf.size() &&
            name.compare(name.size() - suf.size(), suf.size(),
                         suf) == 0)
            return name.substr(0, name.size() - suf.size());
    }
    return name;
}

} // namespace prom_detail

/**
 * Validate @p text as Prometheus text exposition output.
 * All violations are collected (not just the first).
 */
inline PromCheckResult
promCheck(const std::string &text)
{
    using namespace prom_detail;
    PromCheckResult result;
    std::map<std::string, std::string> types; // base name -> type
    // Per histogram+label-set (minus `le`): bucket counts in order,
    // the +Inf count, and the _count sample value.
    struct HistState
    {
        std::vector<double> buckets;
        bool sawInf = false;
        double infCount = 0;
        bool sawCount = false;
        double countValue = 0;
    };
    std::map<std::string, HistState> hists;

    std::istringstream in(text);
    std::string line;
    size_t lineNo = 0;
    while (std::getline(in, line))
    {
        ++lineNo;
        if (line.empty())
            continue;
        if (line[0] == '#')
        {
            std::istringstream ls(line);
            std::string hash, kind, name, rest;
            ls >> hash >> kind >> name;
            if (kind == "TYPE")
            {
                std::string type;
                ls >> type;
                if (!validName(name))
                    result.fail(lineNo, "bad TYPE name: " + name);
                else if (type != "counter" && type != "gauge" &&
                         type != "histogram" && type != "summary" &&
                         type != "untyped")
                    result.fail(lineNo, "bad TYPE kind: " + type);
                else
                {
                    types[name] = type;
                    ++result.typeDecls;
                }
            }
            else if (kind != "HELP")
                result.fail(lineNo,
                            "unknown comment directive: " + kind);
            continue;
        }

        // Sample line: name[{labels}] value
        size_t brace = line.find('{');
        size_t nameEnd = brace == std::string::npos
                             ? line.find(' ')
                             : brace;
        if (nameEnd == std::string::npos)
        {
            result.fail(lineNo, "no value: " + line);
            continue;
        }
        const std::string name = line.substr(0, nameEnd);
        if (!validName(name))
        {
            result.fail(lineNo, "bad metric name: " + name);
            continue;
        }
        std::string labels;
        size_t valueStart;
        if (brace != std::string::npos)
        {
            size_t close = line.find('}', brace);
            if (close == std::string::npos)
            {
                result.fail(lineNo, "unterminated label set");
                continue;
            }
            labels = line.substr(brace + 1, close - brace - 1);
            valueStart = close + 1;
        }
        else
            valueStart = nameEnd;
        while (valueStart < line.size() && line[valueStart] == ' ')
            ++valueStart;
        const std::string value = line.substr(valueStart);
        if (!validValue(value))
        {
            result.fail(lineNo, "bad sample value: '" + value + "'");
            continue;
        }

        // Label pairs: key="value",...
        std::string le;
        std::string otherLabels;
        size_t pos = 0;
        bool labelsOk = true;
        while (pos < labels.size())
        {
            size_t eq = labels.find('=', pos);
            if (eq == std::string::npos ||
                eq + 1 >= labels.size() || labels[eq + 1] != '"')
            {
                result.fail(lineNo, "malformed label set: {" +
                                        labels + "}");
                labelsOk = false;
                break;
            }
            const std::string key = labels.substr(pos, eq - pos);
            size_t endQuote = labels.find('"', eq + 2);
            if (!validName(key) || endQuote == std::string::npos)
            {
                result.fail(lineNo, "malformed label: " + key);
                labelsOk = false;
                break;
            }
            const std::string val =
                labels.substr(eq + 2, endQuote - eq - 2);
            if (key == "le")
                le = val;
            else
            {
                if (!otherLabels.empty())
                    otherLabels += ',';
                otherLabels += key + "=" + val;
            }
            pos = endQuote + 1;
            if (pos < labels.size() && labels[pos] == ',')
                ++pos;
        }
        if (!labelsOk)
            continue;

        const std::string base = baseName(name);
        auto typeIt = types.find(base);
        if (typeIt == types.end() &&
            types.find(name) == types.end())
        {
            result.fail(lineNo,
                        "sample without preceding # TYPE: " + name);
            continue;
        }
        ++result.samples;

        const bool isHist =
            typeIt != types.end() && typeIt->second == "histogram";
        if (isHist)
        {
            HistState &hs = hists[base + "|" + otherLabels];
            const double v = std::strtod(value.c_str(), nullptr);
            if (name == base + "_bucket")
            {
                if (le.empty())
                    result.fail(lineNo, "bucket without le label");
                else if (le == "+Inf")
                {
                    hs.sawInf = true;
                    hs.infCount = v;
                }
                else
                {
                    if (!hs.buckets.empty() &&
                        v < hs.buckets.back())
                        result.fail(
                            lineNo,
                            "non-cumulative bucket in " + base);
                    hs.buckets.push_back(v);
                }
            }
            else if (name == base + "_count")
            {
                hs.sawCount = true;
                hs.countValue = v;
            }
        }
    }

    for (const auto &[key, hs] : hists)
    {
        const std::string base = key.substr(0, key.find('|'));
        if (!hs.sawInf)
            result.fail(0, "histogram " + base +
                               " missing le=\"+Inf\" bucket");
        if (!hs.sawCount)
            result.fail(0,
                        "histogram " + base + " missing _count");
        if (hs.sawInf && hs.sawCount &&
            hs.infCount != hs.countValue)
            result.fail(0, "histogram " + base +
                               " +Inf bucket != _count");
        if (hs.sawInf && !hs.buckets.empty() &&
            hs.infCount < hs.buckets.back())
            result.fail(0, "histogram " + base +
                               " +Inf below last bucket");
    }
    return result;
}

} // namespace herosign::telemetry

#endif // HEROSIGN_TELEMETRY_PROM_CHECK_HH
