#include "histogram.hh"

#include <algorithm>
#include <cmath>
#include <thread>

namespace herosign::telemetry
{

namespace
{

unsigned
autoShards()
{
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0)
        hw = 4;
    // Shards beyond the core count buy nothing; cap the footprint.
    return std::min(hw, 16u);
}

/// Round-robin thread→shard binding: each thread draws one ticket the
/// first time it records anywhere and keeps it for life.
unsigned
threadTicket()
{
    static std::atomic<unsigned> next{0};
    thread_local unsigned ticket =
        next.fetch_add(1, std::memory_order_relaxed);
    return ticket;
}

} // namespace

uint64_t
HistogramSnapshot::percentile(double q) const
{
    if (count == 0)
        return 0;
    q = std::clamp(q, 0.0, 1.0);
    const auto target = static_cast<uint64_t>(
        std::ceil(q * static_cast<double>(count)));
    uint64_t cumulative = 0;
    for (size_t i = 0; i < counts.size(); ++i)
    {
        cumulative += counts[i];
        if (cumulative >= target && counts[i] != 0)
        {
            const uint64_t bound = LatencyHistogram::bucketUpperBound(
                static_cast<unsigned>(i));
            // The top bucket's nominal bound exceeds anything actually
            // recorded; the tracked max is the tighter truth there.
            return std::min(bound, max);
        }
    }
    return max;
}

void
HistogramSnapshot::merge(const HistogramSnapshot &other)
{
    if (other.counts.size() > counts.size())
        counts.resize(other.counts.size(), 0);
    for (size_t i = 0; i < other.counts.size(); ++i)
        counts[i] += other.counts[i];
    if (other.count != 0)
    {
        min = count == 0 ? other.min : std::min(min, other.min);
        max = std::max(max, other.max);
    }
    count += other.count;
    sum += other.sum;
}

LatencyHistogram::LatencyHistogram(unsigned shards)
{
    if (shards == 0)
        shards = autoShards();
    shards_.reserve(shards);
    for (unsigned i = 0; i < shards; ++i)
        shards_.push_back(std::make_unique<Shard>());
}

unsigned
LatencyHistogram::bucketIndex(uint64_t value)
{
    if (value < kSubBuckets)
        return static_cast<unsigned>(value);
    const unsigned msb =
        63u - static_cast<unsigned>(std::countl_zero(value));
    unsigned shift = msb - kSubBits + 1;
    if (shift > kMaxShift)
    {
        shift = kMaxShift;
        value = (uint64_t{kSubBuckets} << kMaxShift) - 1;
    }
    const auto mantissa =
        static_cast<unsigned>(value >> shift); // in [16, 32)
    return kSubBuckets + (shift - 1) * (kSubBuckets / 2) +
           (mantissa - kSubBuckets / 2);
}

uint64_t
LatencyHistogram::bucketUpperBound(unsigned index)
{
    if (index < kSubBuckets)
        return index;
    const unsigned shift = (index - kSubBuckets) / (kSubBuckets / 2) + 1;
    const unsigned mantissa =
        (index - kSubBuckets) % (kSubBuckets / 2) + kSubBuckets / 2;
    return ((uint64_t{mantissa} + 1) << shift) - 1;
}

LatencyHistogram::Shard &
LatencyHistogram::shardForThisThread()
{
    return *shards_[threadTicket() %
                    static_cast<unsigned>(shards_.size())];
}

void
LatencyHistogram::record(uint64_t value)
{
    Shard &shard = shardForThisThread();
    shard.buckets[bucketIndex(value)].fetch_add(
        1, std::memory_order_relaxed);
    shard.sum.fetch_add(value, std::memory_order_relaxed);
    uint64_t seen = shard.min.load(std::memory_order_relaxed);
    while (value < seen &&
           !shard.min.compare_exchange_weak(
               seen, value, std::memory_order_relaxed))
    {
    }
    seen = shard.max.load(std::memory_order_relaxed);
    while (value > seen &&
           !shard.max.compare_exchange_weak(
               seen, value, std::memory_order_relaxed))
    {
    }
}

HistogramSnapshot
LatencyHistogram::snapshot() const
{
    HistogramSnapshot out;
    std::vector<uint64_t> counts(kBuckets, 0);
    uint64_t total = 0;
    uint64_t minSeen = UINT64_MAX;
    for (const auto &shard : shards_)
    {
        for (unsigned i = 0; i < kBuckets; ++i)
        {
            const uint64_t c =
                shard->buckets[i].load(std::memory_order_relaxed);
            counts[i] += c;
            total += c;
        }
        minSeen = std::min(
            minSeen, shard->min.load(std::memory_order_relaxed));
        out.max = std::max(
            out.max, shard->max.load(std::memory_order_relaxed));
        out.sum += shard->sum.load(std::memory_order_relaxed);
    }
    out.count = total;
    out.min = minSeen == UINT64_MAX ? 0 : minSeen;
    // Trim the (usually long) empty tail so snapshots stay small.
    unsigned last = 0;
    for (unsigned i = 0; i < kBuckets; ++i)
        if (counts[i] != 0)
            last = i + 1;
    counts.resize(last);
    out.counts = std::move(counts);
    return out;
}

} // namespace herosign::telemetry
