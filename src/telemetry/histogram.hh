/**
 * @file
 * LatencyHistogram: a lock-free, per-worker-sharded, log-linear
 * (HDR-style) histogram for the telemetry plane.
 *
 * Values are unsigned 64-bit (the serving layer records nanoseconds;
 * the group-size metrics record raw counts). Buckets are exact up to
 * kSubBuckets, then each power-of-two octave is split into
 * kSubBuckets/2 linear sub-buckets, giving a bounded relative error
 * of 1/kSubBuckets (~3%) at every magnitude. record() is
 * constant-time — one index computation plus four relaxed atomic
 * updates on the calling thread's shard — and never allocates or
 * locks, so it is safe on every hot path. snapshot() merges the
 * shards into an immutable HistogramSnapshot that supports exact
 * bucket-walk percentiles (p50/p90/p99/p999), min/max/mean, and
 * merge() with another snapshot (buckets summed, min/max folded) for
 * fabric-wide views.
 */

#ifndef HEROSIGN_TELEMETRY_HISTOGRAM_HH
#define HEROSIGN_TELEMETRY_HISTOGRAM_HH

#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

namespace herosign::telemetry
{

/** Immutable merged view of a LatencyHistogram (or several). */
struct HistogramSnapshot
{
    /// Per-bucket counts, trimmed after the last non-empty bucket
    /// (indices follow LatencyHistogram::bucketIndex).
    std::vector<uint64_t> counts;
    uint64_t count = 0; ///< total recorded values
    uint64_t min = 0;   ///< smallest recorded value (0 when empty)
    uint64_t max = 0;   ///< largest recorded value
    /// Sum of recorded values; may lag `count` by in-flight records
    /// torn between the bucket and sum updates of a live snapshot.
    uint64_t sum = 0;

    bool empty() const { return count == 0; }

    double
    mean() const
    {
        return count == 0
                   ? 0.0
                   : static_cast<double>(sum) /
                         static_cast<double>(count);
    }

    /**
     * The value at quantile @p q in (0, 1]: the upper bound of the
     * bucket where the cumulative count first reaches ceil(q*count),
     * so a percentile is never under-reported. 0 when empty.
     */
    uint64_t percentile(double q) const;

    /** Fold @p other in: buckets summed, min/max folded, sums added. */
    void merge(const HistogramSnapshot &other);
};

/**
 * The live, writable histogram. Shard count fixes at construction
 * (0 = auto); each recording thread is bound round-robin to one
 * shard, so concurrent writers on different shards never contend on
 * a cache line of counters.
 */
class LatencyHistogram
{
  public:
    /// Sub-bucket precision: 2^5 = 32 exact values, then 16 linear
    /// sub-buckets per octave (~3% relative error).
    static constexpr unsigned kSubBits = 5;
    static constexpr unsigned kSubBuckets = 1u << kSubBits;
    /// Largest distinguishable value: 2^42 ns is ~73 minutes; larger
    /// values clamp into the top bucket.
    static constexpr unsigned kMaxShift = 42 - kSubBits + 1;
    static constexpr unsigned kBuckets =
        kSubBuckets + kMaxShift * (kSubBuckets / 2);

    /** @param shards writer shards; 0 = auto (a small fixed fan-out) */
    explicit LatencyHistogram(unsigned shards = 0);

    LatencyHistogram(const LatencyHistogram &) = delete;
    LatencyHistogram &operator=(const LatencyHistogram &) = delete;

    /** Record one value. Lock-free, constant-time, no allocation. */
    void record(uint64_t value);

    /** Merge every shard into one immutable snapshot. */
    HistogramSnapshot snapshot() const;

    unsigned
    shards() const
    {
        return static_cast<unsigned>(shards_.size());
    }

    /** Bucket index of @p value (monotone in value). */
    static unsigned bucketIndex(uint64_t value);

    /** Largest value mapping into bucket @p index. */
    static uint64_t bucketUpperBound(unsigned index);

  private:
    struct Shard
    {
        std::atomic<uint64_t> buckets[kBuckets];
        std::atomic<uint64_t> min{UINT64_MAX};
        std::atomic<uint64_t> max{0};
        std::atomic<uint64_t> sum{0};

        Shard()
        {
            for (auto &b : buckets)
                b.store(0, std::memory_order_relaxed);
        }
    };

    Shard &shardForThisThread();

    std::vector<std::unique_ptr<Shard>> shards_;
};

} // namespace herosign::telemetry

#endif // HEROSIGN_TELEMETRY_HISTOGRAM_HH
