/**
 * @file
 * MetricsReporter: a background thread that periodically appends
 * one-line JSON snapshots to a file (JSONL), for soak runs and
 * post-hoc trend analysis.
 *
 * The reporter is layered below the service: it takes an opaque
 * producer callback (typically StatsRegistry::exportJson bound over
 * the live registry) rather than depending on the stats types, so
 * the telemetry library stays free of service headers.
 */

#ifndef HEROSIGN_TELEMETRY_REPORTER_HH
#define HEROSIGN_TELEMETRY_REPORTER_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

namespace herosign::telemetry
{

class MetricsReporter
{
  public:
    /// Produces one snapshot line (single-line JSON, no trailing
    /// newline). Called from the reporter thread.
    using Producer = std::function<std::string()>;

    /**
     * Start reporting: append one produced line to @p path every
     * @p period until stop()/destruction. The first line is written
     * after the first period elapses; stop() flushes a final line so
     * short runs still capture an end-state snapshot.
     */
    MetricsReporter(std::string path, std::chrono::milliseconds period,
                    Producer producer);

    MetricsReporter(const MetricsReporter &) = delete;
    MetricsReporter &operator=(const MetricsReporter &) = delete;

    ~MetricsReporter();

    /** Stop the thread, appending one final snapshot line. */
    void stop();

    /** Lines successfully appended so far. */
    uint64_t linesWritten() const;

  private:
    void run();
    void appendLine();

    std::string path_;
    std::chrono::milliseconds period_;
    Producer producer_;
    mutable std::mutex m_;
    std::condition_variable cv_;
    bool stopping_ = false;
    uint64_t lines_ = 0;
    std::thread thread_;
};

} // namespace herosign::telemetry

#endif // HEROSIGN_TELEMETRY_REPORTER_HH
