#include "sphincs/context.hh"

#include <atomic>
#include <stdexcept>

#include "common/zeroize.hh"

namespace herosign::sphincs
{

namespace
{
std::atomic<uint64_t> constructions{0};
} // namespace

uint64_t
Context::constructionCount()
{
    return constructions.load(std::memory_order_relaxed);
}

Context::~Context()
{
    secureZero(skSeed_);
}

Context::Context(const Params &params, ByteSpan pk_seed, ByteSpan sk_seed,
                 Sha256Variant variant)
    : params_(params), pkSeed_(pk_seed.begin(), pk_seed.end()),
      skSeed_(sk_seed.begin(), sk_seed.end()), variant_(variant)
{
    constructions.fetch_add(1, std::memory_order_relaxed);
    params_.validate();
    if (pkSeed_.size() != params_.n)
        throw std::invalid_argument("Context: pk_seed must be n bytes");
    if (!skSeed_.empty() && skSeed_.size() != params_.n)
        throw std::invalid_argument("Context: sk_seed must be n bytes");

    // Precompute SHA-256 state of the padded seed block
    // pk_seed || toByte(0, 64 - n): exactly one compression.
    uint8_t block[Sha256::blockSize] = {};
    std::memcpy(block, pkSeed_.data(), params_.n);
    Sha256 hasher(variant_);
    hasher.update(ByteSpan(block, sizeof(block)));
    seeded_ = hasher.midState();
}

} // namespace herosign::sphincs
