#include "sphincs/thashx.hh"

#include <stdexcept>

#include "hash/sha256xN.hh"

namespace herosign::sphincs
{

namespace
{

/**
 * Largest data length that still fits one padded SHA-256 block
 * (64 - 1 pad byte - 8 length bytes).
 */
constexpr size_t oneBlockMax = Sha256::blockSize - 9;

/**
 * Fused single-block batch: every hot batched call (WOTS chain step,
 * PRF, FORS leaf) hashes adrs_c || input of 22 + n <= 54 bytes on top
 * of the per-keypair mid-state — exactly one padded compression per
 * lane. Building the padded blocks directly and running one 8-wide
 * compression skips the incremental engine entirely; the AVX2 kernel
 * additionally broadcasts the shared mid-state instead of transposing
 * eight copies of it.
 */
void
thashX8OneBlock(uint8_t *const out[], const Context &ctx,
                const Address adrs[], const uint8_t *const in[],
                size_t in_len)
{
    const unsigned n = ctx.params().n;
    const Sha256State &mid = ctx.seededState();
    const size_t data_len = Address::compressedSize + in_len;
    const uint64_t bit_len = (mid.bytesCompressed + data_len) * 8;

    uint8_t blocks[hashLanes][Sha256::blockSize];
    const uint8_t *bptrs[hashLanes];
    for (unsigned l = 0; l < hashLanes; ++l) {
        const auto adrs_c = adrs[l].compressed();
        std::memcpy(blocks[l], adrs_c.data(), Address::compressedSize);
        std::memcpy(blocks[l] + Address::compressedSize, in[l], in_len);
        blocks[l][data_len] = 0x80;
        std::memset(blocks[l] + data_len + 1, 0,
                    Sha256::blockSize - 9 - data_len);
        storeBe64(blocks[l] + Sha256::blockSize - 8, bit_len);
        bptrs[l] = blocks[l];
    }

    const bool avx2 =
        ctx.variant() == Sha256Variant::Native && sha256x8Avx2Active();
    if (avx2) {
        uint8_t digests[hashLanes][Sha256::digestSize];
        uint8_t *dptrs[hashLanes];
        for (unsigned l = 0; l < hashLanes; ++l)
            dptrs[l] = digests[l];
        sha256Final8SeededAvx2(mid.h, bptrs, dptrs);
        for (unsigned l = 0; l < hashLanes; ++l)
            std::memcpy(out[l], digests[l], n);
    } else {
        for (unsigned l = 0; l < hashLanes; ++l) {
            std::array<uint32_t, 8> h = mid.h;
            if (ctx.variant() == Sha256Variant::Native)
                sha256CompressNative(h, blocks[l]);
            else
                sha256CompressPtx(h, blocks[l]);
            uint8_t digest[Sha256::digestSize];
            for (int i = 0; i < 8; ++i)
                storeBe32(digest + 4 * i, h[i]);
            std::memcpy(out[l], digest, n);
        }
    }
    Sha256::addCompressions(hashLanes);
}

} // namespace

void
thashX(uint8_t *const out[], const Context &ctx, const Address adrs[],
       const uint8_t *const in[], size_t in_len, unsigned count)
{
    if (count == 0 || count > hashLanes)
        throw std::invalid_argument("thashX: count must be 1..8");
    const unsigned n = ctx.params().n;

    if (count == hashLanes &&
        Address::compressedSize + in_len <= oneBlockMax) {
        thashX8OneBlock(out, ctx, adrs, in, in_len);
        return;
    }

    if (count == hashLanes) {
        // Long inputs (e.g. the T_len public-key compression of a
        // whole leaf's chains): the incremental 8-lane engine.
        Sha256x8 hasher(ctx.seededState(), ctx.variant());

        std::array<uint8_t, Address::compressedSize> adrs_c[hashLanes];
        const uint8_t *ptrs[hashLanes];
        for (unsigned l = 0; l < hashLanes; ++l) {
            adrs_c[l] = adrs[l].compressed();
            ptrs[l] = adrs_c[l].data();
        }
        hasher.update(ptrs, Address::compressedSize);
        hasher.update(in, in_len);

        uint8_t digests[hashLanes][Sha256::digestSize];
        uint8_t *dptrs[hashLanes];
        for (unsigned l = 0; l < hashLanes; ++l)
            dptrs[l] = digests[l];
        hasher.final(dptrs);
        for (unsigned l = 0; l < hashLanes; ++l)
            std::memcpy(out[l], digests[l], n);
        return;
    }

    // Partial batch: scalar per lane, identical digests and counts.
    for (unsigned l = 0; l < count; ++l)
        thash(out[l], ctx, adrs[l], ByteSpan(in[l], in_len));
}

void
prfAddrx8(uint8_t *const out[], const Context &ctx, const Address adrs[],
          unsigned count)
{
    const uint8_t *ins[hashLanes];
    for (unsigned l = 0; l < count; ++l)
        ins[l] = ctx.skSeed().data();
    thashX(out, ctx, adrs, ins, ctx.params().n, count);
}

} // namespace herosign::sphincs
