#include "sphincs/thashx.hh"

#include <stdexcept>

#include "common/fault.hh"

namespace herosign::sphincs
{

namespace
{

/**
 * Largest data length that still fits one padded SHA-256 block
 * (64 - 1 pad byte - 8 length bytes).
 */
constexpr size_t oneBlockMax = Sha256::blockSize - 9;

/**
 * Fused single-block batch: every hot batched call (WOTS chain step,
 * PRF, FORS leaf) hashes adrs_c || input of 22 + n <= 54 bytes on top
 * of the per-keypair mid-state — exactly one padded compression per
 * lane. Building the padded blocks directly and running the widest
 * compressions available skips the incremental engine entirely; the
 * SIMD kernels additionally broadcast the shared mid-state instead of
 * transposing per-lane copies of it. The batch is consumed greedily:
 * 16-wide AVX-512 chunks, then 8-wide AVX2 chunks, then scalar lanes
 * — digests and compression counts are identical for every split.
 */
void
thashXOneBlock(uint8_t *const out[], const Context &ctx,
               const Address adrs[], const uint8_t *const in[],
               size_t in_len, unsigned count)
{
    const unsigned n = ctx.params().n;
    const Sha256State &mid = ctx.seededState();
    const size_t data_len = Address::compressedSize + in_len;
    const uint64_t bit_len = (mid.bytesCompressed + data_len) * 8;

    // Cache-line aligned: each lane block is loaded as whole vectors
    // by the SIMD kernels, so keep every 64-byte block on one line.
    alignas(64) uint8_t blocks[maxHashLanes][Sha256::blockSize];
    const uint8_t *bptrs[maxHashLanes];
    for (unsigned l = 0; l < count; ++l) {
        const auto adrs_c = adrs[l].compressed();
        std::memcpy(blocks[l], adrs_c.data(), Address::compressedSize);
        std::memcpy(blocks[l] + Address::compressedSize, in[l], in_len);
        blocks[l][data_len] = 0x80;
        std::memset(blocks[l] + data_len + 1, 0,
                    Sha256::blockSize - 9 - data_len);
        storeBe64(blocks[l] + Sha256::blockSize - 8, bit_len);
        bptrs[l] = blocks[l];
    }

    const LaneDispatch d = laneDispatch();
    const bool native = ctx.variant() == Sha256Variant::Native;
    uint8_t digests[maxHashLanes][Sha256::digestSize];
    uint8_t *dptrs[maxHashLanes];
    for (unsigned l = 0; l < count; ++l)
        dptrs[l] = digests[l];

    unsigned l = 0;
    while (native && d.avx512 && count - l >= 16) {
        sha256Final16SeededAvx512(mid.h, bptrs + l, dptrs + l);
        l += 16;
    }
    while (native && d.avx2 && count - l >= 8) {
        sha256Final8SeededAvx2(mid.h, bptrs + l, dptrs + l);
        l += 8;
    }
    // Fault seam: a simd-lane rule corrupts one digest produced by
    // the SIMD kernels above — never a scalar-tail lane, so a
    // forced-scalar (or quarantined) path is immune by construction
    // and the verify-after-sign guard's re-sign converges.
    if (l > 0 && FaultInjector::fire(FaultPoint::SimdLane)) {
        FaultInjector &inj = FaultInjector::instance();
        const unsigned victim =
            inj.laneFor(inj.fired(FaultPoint::SimdLane), l);
        digests[victim][0] ^= 1u;
    }
    for (; l < count; ++l) {
        std::array<uint32_t, 8> h = mid.h;
        if (native)
            sha256CompressNative(h, blocks[l]);
        else
            sha256CompressPtx(h, blocks[l]);
        for (int i = 0; i < 8; ++i)
            storeBe32(digests[l] + 4 * i, h[i]);
    }
    for (unsigned j = 0; j < count; ++j)
        std::memcpy(out[j], digests[j], n);
    Sha256::addCompressions(count);
}

} // namespace

void
thashX(uint8_t *const out[], const Context &ctx, const Address adrs[],
       const uint8_t *const in[], size_t in_len, unsigned count)
{
    if (count == 0 || count > maxHashLanes)
        throw std::invalid_argument("thashX: count must be 1..16");
    const unsigned n = ctx.params().n;

    if (Address::compressedSize + in_len <= oneBlockMax) {
        thashXOneBlock(out, ctx, adrs, in, in_len, count);
        return;
    }

    // Long inputs (e.g. the T_len public-key compression of a whole
    // leaf's chains): the incremental lane engine at exactly the
    // batch's width — it picks the widest kernels internally.
    Sha256Lanes hasher(count, ctx.seededState(), ctx.variant());

    std::array<uint8_t, Address::compressedSize> adrs_c[maxHashLanes];
    const uint8_t *ptrs[maxHashLanes];
    for (unsigned l = 0; l < count; ++l) {
        adrs_c[l] = adrs[l].compressed();
        ptrs[l] = adrs_c[l].data();
    }
    hasher.update(ptrs, Address::compressedSize);
    hasher.update(in, in_len);

    uint8_t digests[maxHashLanes][Sha256::digestSize];
    uint8_t *dptrs[maxHashLanes];
    for (unsigned l = 0; l < count; ++l)
        dptrs[l] = digests[l];
    hasher.final(dptrs);
    for (unsigned l = 0; l < count; ++l)
        std::memcpy(out[l], digests[l], n);
}

void
prfAddrX(uint8_t *const out[], const Context &ctx, const Address adrs[],
         unsigned count)
{
    const uint8_t *ins[maxHashLanes];
    for (unsigned l = 0; l < count; ++l)
        ins[l] = ctx.skSeed().data();
    thashX(out, ctx, adrs, ins, ctx.params().n, count);
}

} // namespace herosign::sphincs
