/**
 * @file
 * Merkle tree machinery shared by FORS and the hypertree (MSS):
 * stack-based treehash with authentication-path extraction, the
 * verification-side root reconstruction, and the MSS layer signing
 * step (WOTS+ sign + auth path) of paper §II-A3/A4.
 */

#ifndef HEROSIGN_SPHINCS_MERKLE_HH
#define HEROSIGN_SPHINCS_MERKLE_HH

#include <functional>
#include <type_traits>

#include "common/bytes.hh"
#include "sphincs/address.hh"
#include "sphincs/context.hh"

namespace herosign::sphincs
{

/**
 * Leaf generator callback: produce the n-byte leaf with *local* index
 * @p leaf_idx (offsets are applied by the callback via its captured
 * addressing state).
 */
using LeafFn = std::function<void(uint8_t *out, uint32_t leaf_idx)>;

/**
 * Non-owning reference to a batched leaf generator: a callable
 * producing @p count consecutive leaves (local indices leaf_start ..
 * leaf_start + count - 1, count <= maxHashLanes) contiguously into
 * @p out. Lets
 * the generator run its hash calls across SIMD lanes (see
 * sphincs/thashx.hh). A lightweight function_ref rather than
 * std::function so the signing hot path never heap-allocates for the
 * callback; the referenced callable must outlive the treehash call
 * (passing a lambda as the argument is fine).
 */
class BatchLeafRef
{
  public:
    template <typename F,
              typename = std::enable_if_t<std::is_invocable_v<
                  const F &, uint8_t *, uint32_t, uint32_t>>>
    BatchLeafRef(const F &fn) // NOLINT: implicit by design
        : obj_(&fn), call_([](const void *obj, uint8_t *out,
                              uint32_t leaf_start, uint32_t count) {
              (*static_cast<const F *>(obj))(out, leaf_start, count);
          })
    {
    }

    void
    operator()(uint8_t *out, uint32_t leaf_start, uint32_t count) const
    {
        call_(obj_, out, leaf_start, count);
    }

  private:
    const void *obj_;
    void (*call_)(const void *, uint8_t *, uint32_t, uint32_t);
};

/**
 * Incremental stack-based treehash over one Merkle tree: leaves are
 * absorbed in index order (any batch sizes), the root and the
 * authentication path for one leaf fall out once all 2^height leaves
 * have been absorbed. This is the resumable core the cross-signature
 * LaneScheduler drives — a signing context parks a stream per tree
 * and an external pool feeds it leaves — and the one-shot treehash()
 * below is a thin wrapper over it, so the two paths are
 * byte-identical by construction.
 *
 * Streams of identical shape (same height, absorbed in lockstep) can
 * additionally pool their node-combine hashes across trees via
 * absorbLockstep(): same-shape trees at the same leaf position have
 * identical stack states, so every combine triggered by one absorbed
 * leaf runs as one lane-batched thashX call across the group instead
 * of per-tree scalar calls.
 */
class TreehashStream
{
  public:
    /** Largest tree height a stream can hold. */
    static constexpr unsigned maxHeight =
        maxTreeHeight > maxForsHeight ? maxTreeHeight : maxForsHeight;

    TreehashStream() = default;

    /**
     * Arm the stream for one tree. Absorbed-leaf state resets.
     * @param ctx hashing context (must outlive the stream's use)
     * @param height tree height (at most maxHeight)
     * @param leaf_idx leaf whose auth path to extract (local index)
     * @param idx_offset added to node indices in the hash addresses
     * @param auth_path out, height * n bytes (nullptr to skip)
     * @param tree_adrs address with layer/tree/type set
     */
    void begin(const Context &ctx, unsigned height, uint32_t leaf_idx,
               uint32_t idx_offset, uint8_t *auth_path,
               const Address &tree_adrs);

    /**
     * Absorb @p count consecutive leaves (n bytes each, contiguous),
     * combining nodes with scalar hash calls as the stack collapses.
     */
    void absorb(const uint8_t *leaves, uint32_t count);

    /** Leaves absorbed so far. */
    uint32_t absorbed() const { return next_; }

    /** Total leaves this tree expects (2^height). */
    uint32_t total() const { return total_; }

    /** True once every leaf has been absorbed. */
    bool done() const { return next_ == total_; }

    /** The n-byte root; valid only when done(). */
    const uint8_t *root() const;

    /**
     * Absorb one leaf into each of @p count same-shape streams in
     * lockstep, running each collapse level as one thashX batch
     * across the group. All streams must share one Context and have
     * equal height and absorbed count (checked, throws
     * std::invalid_argument); results are byte-identical to absorbing
     * each stream separately.
     * @param leaves count pointers to n-byte leaves (leaves[l] feeds
     *        streams[l])
     * @param count 1..maxHashLanes streams
     */
    static void absorbLockstep(TreehashStream *const streams[],
                               const uint8_t *const leaves[],
                               unsigned count);

  private:
    void absorbOne(const uint8_t *leaf);

    const Context *ctx_ = nullptr;
    Address adrs_;
    uint8_t *auth_ = nullptr;
    uint32_t leafIdx_ = 0;
    uint32_t idxOffset_ = 0;
    uint32_t next_ = 0;
    uint32_t total_ = 0;
    unsigned height_ = 0;
    unsigned sp_ = 0;
    uint8_t stack_[(maxHeight + 1) * maxN];
    unsigned stackHeights_[maxHeight + 1];
};

/**
 * Stack-based treehash: computes the root of a 2^height-leaf Merkle
 * tree and the authentication path for @p leaf_idx. The leaf layer is
 * produced hashLaneWidth() leaves per callback so independent leaves
 * fill the dispatched hash lanes; the node combining above it is
 * inherently serial.
 *
 * @param root out, n bytes
 * @param auth_path out, height * n bytes (may be nullptr to skip)
 * @param leaf_idx index of the authenticated leaf (local, 0-based)
 * @param idx_offset added to node indices in the hash addresses (used
 *        by FORS where tree i starts at leaf index i * t)
 * @param height tree height (at most maxTreeHeight)
 * @param gen_leaves batched leaf generator (receives local indices;
 *        must apply idx_offset itself when addressing)
 * @param tree_adrs address with layer/tree/type set; height/index
 *        fields are managed here
 */
void treehash(uint8_t *root, uint8_t *auth_path, const Context &ctx,
              uint32_t leaf_idx, uint32_t idx_offset, unsigned height,
              BatchLeafRef gen_leaves, Address &tree_adrs);

/** Scalar-leaf convenience overload wrapping @p gen_leaf. */
void treehash(uint8_t *root, uint8_t *auth_path, const Context &ctx,
              uint32_t leaf_idx, uint32_t idx_offset, unsigned height,
              const LeafFn &gen_leaf, Address &tree_adrs);

/**
 * Verification-side root reconstruction from a leaf and its auth path.
 */
void computeRoot(uint8_t *root, const Context &ctx, const uint8_t *leaf,
                 uint32_t leaf_idx, uint32_t idx_offset,
                 const uint8_t *auth_path, unsigned height,
                 Address &tree_adrs);

/**
 * Batched root reconstruction: up to maxHashLanes independent
 * auth-path walks of one shared @p height advanced level by level in
 * hash lanes of the dispatched width. Lane l reconstructs from
 * leaf[l] / auth_path[l] with its own leaf index, index offset and
 * subtree address, so the lanes may come from different FORS trees,
 * different signatures, or both. Results are byte-identical to count
 * computeRoot calls at every width.
 *
 * @param root count pointers to n-byte outputs (may alias leaf[l])
 * @param tree_adrs count addresses with layer/tree/type set; the
 *        height/index fields are managed here (the array is scratch)
 * @param count active lanes, 1..maxHashLanes
 */
void computeRootXN(uint8_t *const root[], const Context &ctx,
                   const uint8_t *const leaf[], const uint32_t leaf_idx[],
                   const uint32_t idx_offset[],
                   const uint8_t *const auth_path[], unsigned height,
                   Address tree_adrs[], unsigned count);

/**
 * Generate the hypertree leaf (compressed WOTS+ public key) for
 * keypair @p leaf_idx in the subtree addressed by layer/tree.
 */
void wotsGenLeaf(uint8_t *leaf_out, const Context &ctx, uint32_t layer,
                 uint64_t tree, uint32_t leaf_idx);

/**
 * One MSS layer of the hypertree signature: WOTS+-sign @p msg with
 * keypair @p leaf_idx of subtree (layer, tree), emit the WOTS+
 * signature followed by the auth path, and return the subtree root.
 *
 * @param sig out, xmssSigBytes() = wots sig + treeHeight * n
 * @param root_out out, n bytes: the subtree root (message for the
 *        next layer)
 */
void merkleSign(uint8_t *sig, uint8_t *root_out, const Context &ctx,
                uint32_t layer, uint64_t tree, uint32_t leaf_idx,
                const uint8_t *msg);

} // namespace herosign::sphincs

#endif // HEROSIGN_SPHINCS_MERKLE_HH
