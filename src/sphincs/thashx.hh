/**
 * @file
 * Lane-batched SPHINCS+ tweakable hashes: up to maxHashLanes
 * independent T/F/PRF calls advanced in lockstep on the width-generic
 * SHA-256 lane engine (hash/sha256xN.hh). This is the CPU analogue of
 * HERO-Sign's batched GPU hash calls (paper §III): WOTS+ chains, FORS
 * leaves and Merkle leaf layers are all independent calls of one
 * shape, so they fill SIMD lanes exactly.
 *
 * Every function takes a lane count `count <= maxHashLanes` and is
 * width-agnostic: the batch is processed greedily with the widest
 * active kernels (16-wide AVX-512 chunks, then 8-wide AVX2 chunks,
 * then scalar lanes), so digests AND Sha256::compressionCount()
 * accounting stay bit-for-bit identical to the scalar path for any
 * count on any backend. Callers that choose their own batch size
 * should fill hashLaneWidth() lanes per pass — the width the
 * dispatched backend actually executes.
 */

#ifndef HEROSIGN_SPHINCS_THASHX_HH
#define HEROSIGN_SPHINCS_THASHX_HH

#include "common/bytes.hh"
#include "hash/sha256xN.hh"
#include "sphincs/address.hh"
#include "sphincs/context.hh"
#include "sphincs/thash.hh"

namespace herosign::sphincs
{

/** Hard upper bound on the lane count of one batched hash call. */
constexpr unsigned maxHashLanes =
    static_cast<unsigned>(maxSha256Lanes);

/**
 * Lane width of the dispatched backend: 16 with AVX-512 active, 8
 * otherwise (AVX2 and portable). The natural batch size for the hot
 * loops — a full batch of this width runs entirely on the widest
 * kernel.
 */
inline unsigned
hashLaneWidth()
{
    return laneDispatch().width;
}

/**
 * Batched generic tweakable hash: out[l] = T(adrs[l], in[l]) for
 * l < count, with a uniform input length.
 * @param out count pointers to n-byte outputs
 * @param adrs count hash addresses
 * @param in count pointers to in_len-byte inputs
 * @param in_len input length shared by all lanes (a multiple of n for
 *        T_l calls, or the PRF message length)
 * @param count active lanes, 1..maxHashLanes
 *
 * out[l] may alias in[l] (chain steps hash in place).
 */
void thashX(uint8_t *const out[], const Context &ctx,
            const Address adrs[], const uint8_t *const in[],
            size_t in_len, unsigned count);

/** Batched F: out[l] = F(adrs[l], in[l]), single n-byte inputs. */
inline void
thashFX(uint8_t *const out[], const Context &ctx, const Address adrs[],
        const uint8_t *const in[], unsigned count)
{
    thashX(out, ctx, adrs, in, ctx.params().n, count);
}

/** Batched PRF: out[l] = PRF(pk_seed, sk_seed, adrs[l]). */
void prfAddrX(uint8_t *const out[], const Context &ctx,
              const Address adrs[], unsigned count);

} // namespace herosign::sphincs

#endif // HEROSIGN_SPHINCS_THASHX_HH
