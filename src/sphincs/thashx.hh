/**
 * @file
 * Lane-batched SPHINCS+ tweakable hashes: up to 8 independent T/F/PRF
 * calls advanced in lockstep on the 8-lane SHA-256 engine
 * (hash/sha256xN.hh). This is the CPU analogue of HERO-Sign's batched
 * GPU hash calls (paper §III): WOTS+ chains, FORS leaves and Merkle
 * leaf layers are all independent calls of one shape, so they fill
 * SIMD lanes exactly.
 *
 * Every function takes a lane count `count <= 8`. A full batch of 8
 * runs 8-wide; partial batches fall back to per-lane scalar calls so
 * digests AND Sha256::compressionCount() accounting stay bit-for-bit
 * identical to the scalar path for any count.
 */

#ifndef HEROSIGN_SPHINCS_THASHX_HH
#define HEROSIGN_SPHINCS_THASHX_HH

#include "common/bytes.hh"
#include "sphincs/address.hh"
#include "sphincs/context.hh"
#include "sphincs/thash.hh"

namespace herosign::sphincs
{

/** Lane width of the batched hash layer. */
constexpr unsigned hashLanes = 8;

/**
 * Batched generic tweakable hash: out[l] = T(adrs[l], in[l]) for
 * l < count, with a uniform input length.
 * @param out count pointers to n-byte outputs
 * @param adrs count hash addresses
 * @param in count pointers to in_len-byte inputs
 * @param in_len input length shared by all lanes (a multiple of n for
 *        T_l calls, or the PRF message length)
 * @param count active lanes, 1..8; 8 runs the x8 engine
 *
 * out[l] may alias in[l] (chain steps hash in place).
 */
void thashX(uint8_t *const out[], const Context &ctx,
            const Address adrs[], const uint8_t *const in[],
            size_t in_len, unsigned count);

/** Batched F: out[l] = F(adrs[l], in[l]), single n-byte inputs. */
inline void
thashFx8(uint8_t *const out[], const Context &ctx, const Address adrs[],
         const uint8_t *const in[], unsigned count)
{
    thashX(out, ctx, adrs, in, ctx.params().n, count);
}

/** Batched PRF: out[l] = PRF(pk_seed, sk_seed, adrs[l]). */
void prfAddrx8(uint8_t *const out[], const Context &ctx,
               const Address adrs[], unsigned count);

} // namespace herosign::sphincs

#endif // HEROSIGN_SPHINCS_THASHX_HH
