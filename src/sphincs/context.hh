/**
 * @file
 * Per-keypair hashing context.
 *
 * Holds the parameter set, the seeds, and the captured SHA-256
 * mid-state of the 64-byte block "pk_seed || toByte(0, 64-n)". Every
 * tweakable hash call (T/F/H/PRF) starts from that mid-state, which is
 * both the spec's intent and the optimization every fast SPHINCS+
 * implementation (including HERO-Sign) relies on.
 */

#ifndef HEROSIGN_SPHINCS_CONTEXT_HH
#define HEROSIGN_SPHINCS_CONTEXT_HH

#include <cstdint>

#include "common/bytes.hh"
#include "hash/sha256.hh"
#include "sphincs/params.hh"

namespace herosign::sphincs
{

/** Hashing context bound to one keypair (or one public key). */
class Context
{
  public:
    /**
     * Build a signing context.
     * @param params parameter set
     * @param pk_seed public seed (n bytes)
     * @param sk_seed secret seed (n bytes; empty for verify-only)
     * @param variant which SHA-256 implementation to run
     */
    Context(const Params &params, ByteSpan pk_seed, ByteSpan sk_seed,
            Sha256Variant variant = Sha256Variant::Native);

    Context(const Context &) = default;
    Context(Context &&) = default;
    // Assignment would let vector assignment free the previous
    // secret-seed buffer without zeroizing it; no caller needs it.
    Context &operator=(const Context &) = delete;
    Context &operator=(Context &&) = delete;

    /** The secret seed copy is zeroized, never just freed. */
    ~Context();

    const Params &params() const { return params_; }
    ByteSpan pkSeed() const { return pkSeed_; }
    ByteSpan skSeed() const { return skSeed_; }
    Sha256Variant variant() const { return variant_; }

    /** True if this context can derive secrets (sk_seed present). */
    bool canSign() const { return !skSeed_.empty(); }

    /** The precomputed mid-state of pk_seed || zero padding. */
    const Sha256State &seededState() const { return seeded_; }

    /** Start a hasher resumed from the seeded mid-state. */
    Sha256 seededHasher() const { return Sha256(seeded_, variant_); }

    /**
     * Process-wide count of Context constructions (copies excluded).
     * The serving layer keeps warm per-key contexts precisely so this
     * does not grow per signature; tests and the service stats use the
     * counter to prove the hot path stays construction-free.
     */
    static uint64_t constructionCount();

  private:
    Params params_;
    ByteVec pkSeed_;
    ByteVec skSeed_;
    Sha256Variant variant_;
    Sha256State seeded_;
};

} // namespace herosign::sphincs

#endif // HEROSIGN_SPHINCS_CONTEXT_HH
