#include "sphincs/address.hh"

namespace herosign::sphincs
{

void
Address::setLayer(uint32_t layer)
{
    storeBe32(bytes_.data(), layer);
}

void
Address::setTree(uint64_t tree)
{
    // The tree field is 12 bytes (offsets 4..15); the top 4 bytes stay
    // zero because tree indices fit in 64 bits for all parameter sets.
    storeBe32(bytes_.data() + 4, 0);
    storeBe64(bytes_.data() + 8, tree);
}

void
Address::setType(AddrType type)
{
    storeBe32(bytes_.data() + 16, static_cast<uint32_t>(type));
    storeBe32(bytes_.data() + 20, 0);
    storeBe32(bytes_.data() + 24, 0);
    storeBe32(bytes_.data() + 28, 0);
}

void
Address::setKeypair(uint32_t keypair)
{
    storeBe32(bytes_.data() + 20, keypair);
}

void
Address::setChain(uint32_t chain)
{
    storeBe32(bytes_.data() + 24, chain);
}

void
Address::setHash(uint32_t hash)
{
    storeBe32(bytes_.data() + 28, hash);
}

void
Address::setTreeHeight(uint32_t height)
{
    storeBe32(bytes_.data() + 24, height);
}

void
Address::setTreeIndex(uint32_t index)
{
    storeBe32(bytes_.data() + 28, index);
}

void
Address::copySubtree(const Address &other)
{
    std::memcpy(bytes_.data(), other.bytes_.data(), 16);
}

void
Address::copyKeypair(const Address &other)
{
    std::memcpy(bytes_.data(), other.bytes_.data(), 16);
    std::memcpy(bytes_.data() + 20, other.bytes_.data() + 20, 4);
}

std::array<uint8_t, Address::compressedSize>
Address::compressed() const
{
    std::array<uint8_t, compressedSize> out;
    out[0] = bytes_[3];                          // layer, low byte
    std::memcpy(out.data() + 1, bytes_.data() + 8, 8);   // tree, low 8B
    out[9] = bytes_[19];                         // type, low byte
    std::memcpy(out.data() + 10, bytes_.data() + 20, 12);
    return out;
}

} // namespace herosign::sphincs
