#include "sphincs/thash.hh"

#include <stdexcept>

#include "hash/hmac.hh"
#include "hash/mgf1.hh"

namespace herosign::sphincs
{

void
thash(uint8_t *out, const Context &ctx, const Address &adrs, ByteSpan in)
{
    Sha256 hasher = ctx.seededHasher();
    auto adrs_c = adrs.compressed();
    hasher.update(ByteSpan(adrs_c.data(), adrs_c.size()));
    hasher.update(in);
    uint8_t digest[Sha256::digestSize];
    hasher.final(digest);
    std::memcpy(out, digest, ctx.params().n);
}

void
prfAddr(uint8_t *out, const Context &ctx, const Address &adrs)
{
    thash(out, ctx, adrs, ctx.skSeed());
}

void
prfMsg(uint8_t *out, const Context &ctx, ByteSpan sk_prf,
       ByteSpan opt_rand, ByteSpan msg)
{
    HmacSha256 mac(sk_prf);
    mac.update(opt_rand);
    mac.update(msg);
    uint8_t full[HmacSha256::digestSize];
    mac.final(full);
    std::memcpy(out, full, ctx.params().n);
}

void
hashMessage(MutByteSpan digest, const Context &ctx, ByteSpan r,
            ByteSpan pk_root, ByteSpan msg)
{
    // seed1 = SHA-256(R || pk_seed || pk_root || msg)
    Sha256 inner(ctx.variant());
    inner.update(r);
    inner.update(ctx.pkSeed());
    inner.update(pk_root);
    inner.update(msg);
    uint8_t seed1[Sha256::digestSize];
    inner.final(seed1);

    // digest = MGF1(R || pk_seed || seed1, m). R and pk_seed are n
    // bytes each, so the seed fits a fixed stack buffer — this runs
    // once per sign/verify and must not allocate. Enforce the bound
    // the buffer relies on (Context already guarantees pk_seed == n).
    if (r.size() > maxN || ctx.pkSeed().size() > maxN)
        throw std::invalid_argument("hashMessage: seed exceeds maxN");
    uint8_t mgf_seed[2 * maxN + sizeof(seed1)];
    size_t len = 0;
    std::memcpy(mgf_seed + len, r.data(), r.size());
    len += r.size();
    std::memcpy(mgf_seed + len, ctx.pkSeed().data(), ctx.pkSeed().size());
    len += ctx.pkSeed().size();
    std::memcpy(mgf_seed + len, seed1, sizeof(seed1));
    len += sizeof(seed1);
    mgf1Sha256(digest, ByteSpan(mgf_seed, len));
}

} // namespace herosign::sphincs
