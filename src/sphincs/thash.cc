#include "sphincs/thash.hh"

#include "hash/hmac.hh"
#include "hash/mgf1.hh"

namespace herosign::sphincs
{

void
thash(uint8_t *out, const Context &ctx, const Address &adrs, ByteSpan in)
{
    Sha256 hasher = ctx.seededHasher();
    auto adrs_c = adrs.compressed();
    hasher.update(ByteSpan(adrs_c.data(), adrs_c.size()));
    hasher.update(in);
    uint8_t digest[Sha256::digestSize];
    hasher.final(digest);
    std::memcpy(out, digest, ctx.params().n);
}

void
prfAddr(uint8_t *out, const Context &ctx, const Address &adrs)
{
    thash(out, ctx, adrs, ctx.skSeed());
}

void
prfMsg(uint8_t *out, const Context &ctx, ByteSpan sk_prf,
       ByteSpan opt_rand, ByteSpan msg)
{
    HmacSha256 mac(sk_prf);
    mac.update(opt_rand);
    mac.update(msg);
    uint8_t full[HmacSha256::digestSize];
    mac.final(full);
    std::memcpy(out, full, ctx.params().n);
}

void
hashMessage(MutByteSpan digest, const Context &ctx, ByteSpan r,
            ByteSpan pk_root, ByteSpan msg)
{
    // seed1 = SHA-256(R || pk_seed || pk_root || msg)
    Sha256 inner(ctx.variant());
    inner.update(r);
    inner.update(ctx.pkSeed());
    inner.update(pk_root);
    inner.update(msg);
    uint8_t seed1[Sha256::digestSize];
    inner.final(seed1);

    // digest = MGF1(R || pk_seed || seed1, m)
    ByteVec mgf_seed;
    mgf_seed.reserve(r.size() + ctx.pkSeed().size() + sizeof(seed1));
    append(mgf_seed, r);
    append(mgf_seed, ctx.pkSeed());
    append(mgf_seed, ByteSpan(seed1, sizeof(seed1)));
    mgf1Sha256(digest, mgf_seed);
}

} // namespace herosign::sphincs
