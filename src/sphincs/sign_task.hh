/**
 * @file
 * SignTask: one SPHINCS+ signature as a resumable, step-wise
 * computation whose hash work is pooled externally.
 *
 * The monolithic SphincsPlus::sign() drives its own 8/16-wide loops,
 * so on parameter shapes whose subtrees are narrower than the lane
 * width (the -f sets have 2^(h/d) = 8..16 WOTS leaves per layer) the
 * lane engine starves on every layer boundary. A SignTask instead
 * exposes its remaining hash work as leaf descriptors
 * (sphincs::WotsLeafReq / sphincs::ForsLeafReq) and Merkle streams
 * (sphincs::TreehashStream), letting a scheduler aggregate the
 * descriptors of *several* in-flight signatures into full lane
 * batches — batch::LaneScheduler walks a group of tasks through FORS
 * and the d hypertree layers in lockstep.
 *
 * Two structural wins fall out of the step-wise form:
 *  - the signing keypair's WOTS+ signature is captured from its
 *    pk-generation chain walk (sig chain values are prefixes of the
 *    full chains), so the separate wotsSign() walk disappears;
 *  - node combines run lane-batched across the group's same-shape
 *    trees instead of scalar per signature.
 *
 * The produced signature is byte-identical to SphincsPlus::sign() at
 * every lane width and group size: every output byte is the result of
 * the same tweakable-hash calls, only pooled differently.
 *
 * Phase protocol (driven by the scheduler, same order as sign()):
 *   ctor                      R, digest, indices, FORS secret values
 *   for each FORS tree i:     beginForsTree(i) -> feed forsLeafReq()
 *                             leaves through treeStream() ->
 *                             endForsTree()
 *   finishFors()              T_k root compression
 *   for each layer l:         beginLayer(l) -> feed wotsLeafReq()
 *                             leaves through treeStream() ->
 *                             endLayer()
 *   takeSignature()
 */

#ifndef HEROSIGN_SPHINCS_SIGN_TASK_HH
#define HEROSIGN_SPHINCS_SIGN_TASK_HH

#include <vector>

#include "common/bytes.hh"
#include "sphincs/fors.hh"
#include "sphincs/merkle.hh"
#include "sphincs/sphincs.hh"
#include "sphincs/wots.hh"

namespace herosign::sphincs
{

/** One in-flight signature, advanced phase by phase from outside. */
class SignTask
{
  public:
    /**
     * Bind the task to a message: computes R, the message digest and
     * every (tree, leaf) index, derives the k FORS secret values into
     * the signature buffer. After this the remaining work is exactly
     * the leaf hashing and tree building the phases expose.
     * @param ctx warm context built for @p sk (checked, throws
     *        std::invalid_argument on mismatch; must outlive the task)
     * @param opt_rand n bytes of signing randomness; empty selects
     *        the deterministic variant
     */
    SignTask(const Context &ctx, const SecretKey &sk, ByteSpan msg,
             ByteSpan opt_rand = {});

    SignTask(const SignTask &) = delete;
    SignTask &operator=(const SignTask &) = delete;

    const Context &context() const { return *ctx_; }
    const Params &params() const { return ctx_->params(); }

    // --- FORS phase: k trees of 2^a leaves each -------------------

    unsigned forsTreeCount() const { return params().forsTrees; }
    uint32_t forsLeavesPerTree() const { return params().forsLeaves(); }

    /** Arm the Merkle stream for FORS tree @p tree (in order, 0..k-1). */
    void beginForsTree(unsigned tree);

    /**
     * Descriptor for leaf @p pos (0..2^a-1) of the current FORS tree,
     * to be produced into @p out (n bytes) by forsLeafBatch().
     */
    ForsLeafReq forsLeafReq(uint32_t pos, uint8_t *out) const;

    /** Collect the current tree's root; stream must be done(). */
    void endForsTree();

    /** Compress the k roots into the FORS public key (layer-0 message). */
    void finishFors();

    // --- Hypertree phase: d layers of 2^(h/d) WOTS leaves ---------

    unsigned layerCount() const { return params().layers; }
    uint32_t leavesPerLayer() const { return params().treeLeaves(); }

    /**
     * Arm layer @p layer (in order, 0..d-1): derives the WOTS chain
     * lengths from the running root — which is why layers are the
     * serial spine the lockstep group advances along.
     */
    void beginLayer(unsigned layer);

    /**
     * Descriptor for WOTS leaf (keypair) @p j of the current layer.
     * The leaf lands in an internal buffer (see layerLeaf()); the
     * signing keypair's request additionally carries the signature
     * capture, so no caller ever special-cases it.
     */
    WotsLeafReq wotsLeafReq(uint32_t j);

    /** The produced leaf @p j of the current layer (after hashing). */
    const uint8_t *layerLeaf(uint32_t j) const;

    /** Collect the layer root; the last layer completes the task. */
    void endLayer();

    // --------------------------------------------------------------

    /**
     * The Merkle stream of the current tree/layer; the scheduler
     * feeds it via absorb()/absorbLockstep().
     */
    TreehashStream &treeStream() { return stream_; }

    /** True once endLayer() ran for the last layer. */
    bool finished() const { return finished_; }

    /** Move the finished signature out; valid only when finished(). */
    ByteVec takeSignature();

  private:
    uint8_t *forsSigBlock(unsigned tree);
    uint8_t *xmssSig(unsigned layer);

    const Context *ctx_;
    ByteVec sig_;
    ByteVec forsMsg_;
    ByteVec layerLeaves_;               ///< 2^(h/d) * n leaf scratch
    std::vector<uint64_t> layerTree_;   ///< subtree index per layer
    std::vector<uint32_t> layerLeaf_;   ///< signing keypair per layer
    uint32_t forsIndices_[64];
    uint8_t forsRoots_[64 * maxN];
    uint8_t root_[maxN];                ///< running message for layers
    uint32_t lengths_[maxWotsLen];      ///< current layer chain lengths
    TreehashStream stream_;
    Address forsBase_;                  ///< ForsTree adrs, keypair set
    unsigned curTree_ = 0;
    unsigned curLayer_ = 0;
    bool finished_ = false;
};

} // namespace herosign::sphincs

#endif // HEROSIGN_SPHINCS_SIGN_TASK_HH
