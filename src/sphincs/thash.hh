/**
 * @file
 * SPHINCS+ tweakable hash functions, sha256-simple construction:
 *
 *   T_l(pk_seed, adrs, m_1..m_l) =
 *       Trunc_n(SHA-256(pk_seed || toByte(0, 64-n) || adrs_c || m))
 *   F = T_1,  H = T_2
 *   PRF(pk_seed, sk_seed, adrs) = T-style with sk_seed as message
 *   PRF_msg(sk_prf, opt_rand, m) = Trunc_n(HMAC-SHA-256(...))
 *   H_msg(R, pk_seed, pk_root, m) =
 *       MGF1-SHA-256(R || pk_seed || SHA-256(R||pk_seed||pk_root||m), m)
 *
 * Following the paper, SHA-256 is used at every security level (see
 * DESIGN.md, "Hash baseline").
 */

#ifndef HEROSIGN_SPHINCS_THASH_HH
#define HEROSIGN_SPHINCS_THASH_HH

#include "common/bytes.hh"
#include "sphincs/address.hh"
#include "sphincs/context.hh"

namespace herosign::sphincs
{

/**
 * Generic tweakable hash: out = T(|in| / n inputs).
 * @param out n bytes
 * @param ctx hashing context (provides pk_seed mid-state)
 * @param adrs hash address
 * @param in concatenated n-byte inputs (any multiple of n, or the
 *        message for PRF-style calls)
 */
void thash(uint8_t *out, const Context &ctx, const Address &adrs,
           ByteSpan in);

/** F: one-input tweakable hash. */
inline void
thashF(uint8_t *out, const Context &ctx, const Address &adrs,
       const uint8_t *in)
{
    thash(out, ctx, adrs, ByteSpan(in, ctx.params().n));
}

/** H: two-input tweakable hash (Merkle node combine). */
inline void
thashH(uint8_t *out, const Context &ctx, const Address &adrs,
       const uint8_t *left, const uint8_t *right)
{
    uint8_t buf[2 * maxN];
    std::memcpy(buf, left, ctx.params().n);
    std::memcpy(buf + ctx.params().n, right, ctx.params().n);
    thash(out, ctx, adrs, ByteSpan(buf, 2 * ctx.params().n));
}

/** PRF(pk_seed, sk_seed, adrs): secret-key value derivation. */
void prfAddr(uint8_t *out, const Context &ctx, const Address &adrs);

/** PRF_msg: randomizer R derivation. */
void prfMsg(uint8_t *out, const Context &ctx, ByteSpan sk_prf,
            ByteSpan opt_rand, ByteSpan msg);

/**
 * H_msg: hash the message to the m-byte digest that selects FORS
 * indices, tree index and leaf index.
 * @param digest output, params.msgDigestBytes() long
 */
void hashMessage(MutByteSpan digest, const Context &ctx, ByteSpan r,
                 ByteSpan pk_root, ByteSpan msg);

} // namespace herosign::sphincs

#endif // HEROSIGN_SPHINCS_THASH_HH
