#include "sphincs/fors.hh"

#include "sphincs/merkle.hh"
#include "sphincs/thash.hh"

namespace herosign::sphincs
{

void
messageToIndices(uint32_t *indices, const Params &params,
                 const uint8_t *mhash)
{
    const unsigned a = params.forsHeight;
    size_t offset = 0; // bit offset into mhash
    for (unsigned i = 0; i < params.forsTrees; ++i) {
        uint32_t idx = 0;
        for (unsigned bit = 0; bit < a; ++bit) {
            idx <<= 1;
            idx |= (mhash[offset >> 3] >> (7 - (offset & 7))) & 1u;
            ++offset;
        }
        indices[i] = idx;
    }
}

void
forsSkGen(uint8_t *out, const Context &ctx, const Address &fors_adrs,
          uint32_t idx)
{
    Address sk_adrs = fors_adrs;
    sk_adrs.setType(AddrType::ForsPrf);
    sk_adrs.setKeypair(fors_adrs.keypair());
    sk_adrs.setTreeHeight(0);
    sk_adrs.setTreeIndex(idx);
    prfAddr(out, ctx, sk_adrs);
}

void
forsGenLeaf(uint8_t *out, const Context &ctx, const Address &fors_adrs,
            uint32_t idx)
{
    uint8_t sk[maxN];
    forsSkGen(sk, ctx, fors_adrs, idx);
    Address leaf_adrs = fors_adrs;
    leaf_adrs.setTreeHeight(0);
    leaf_adrs.setTreeIndex(idx);
    thashF(out, ctx, leaf_adrs, sk);
}

void
forsSign(uint8_t *sig, uint8_t *pk_out, const uint8_t *mhash,
         const Context &ctx, const Address &fors_adrs)
{
    const Params &p = ctx.params();
    const unsigned n = p.n;
    const uint32_t t = p.forsLeaves();

    uint32_t indices[64];
    messageToIndices(indices, p, mhash);

    uint8_t roots[64 * maxN];
    for (unsigned i = 0; i < p.forsTrees; ++i) {
        const uint32_t idx_offset = i * t;

        // Selected secret value.
        forsSkGen(sig, ctx, fors_adrs, indices[i] + idx_offset);
        sig += n;

        // Merkle tree over this subset, rooted at roots[i].
        Address tree_adrs = fors_adrs;
        tree_adrs.setType(AddrType::ForsTree);
        tree_adrs.setKeypair(fors_adrs.keypair());
        auto gen_leaf = [&](uint8_t *out, uint32_t idx) {
            forsGenLeaf(out, ctx, tree_adrs, idx + idx_offset);
        };
        treehash(roots + i * n, sig, ctx, indices[i], idx_offset,
                 p.forsHeight, gen_leaf, tree_adrs);
        sig += p.forsHeight * n;
    }

    Address pk_adrs = fors_adrs;
    pk_adrs.setType(AddrType::ForsRoots);
    pk_adrs.setKeypair(fors_adrs.keypair());
    thash(pk_out, ctx, pk_adrs, ByteSpan(roots, p.forsTrees * n));
}

void
forsPkFromSig(uint8_t *pk_out, const uint8_t *sig, const uint8_t *mhash,
              const Context &ctx, const Address &fors_adrs)
{
    const Params &p = ctx.params();
    const unsigned n = p.n;
    const uint32_t t = p.forsLeaves();

    uint32_t indices[64];
    messageToIndices(indices, p, mhash);

    uint8_t roots[64 * maxN];
    for (unsigned i = 0; i < p.forsTrees; ++i) {
        const uint32_t idx_offset = i * t;

        Address tree_adrs = fors_adrs;
        tree_adrs.setType(AddrType::ForsTree);
        tree_adrs.setKeypair(fors_adrs.keypair());

        // Leaf from the revealed secret value.
        uint8_t leaf[maxN];
        tree_adrs.setTreeHeight(0);
        tree_adrs.setTreeIndex(indices[i] + idx_offset);
        thashF(leaf, ctx, tree_adrs, sig);
        sig += n;

        computeRoot(roots + i * n, ctx, leaf, indices[i], idx_offset,
                    sig, p.forsHeight, tree_adrs);
        sig += p.forsHeight * n;
    }

    Address pk_adrs = fors_adrs;
    pk_adrs.setType(AddrType::ForsRoots);
    pk_adrs.setKeypair(fors_adrs.keypair());
    thash(pk_out, ctx, pk_adrs, ByteSpan(roots, p.forsTrees * n));
}

} // namespace herosign::sphincs
