#include "sphincs/fors.hh"

#include <algorithm>
#include <stdexcept>

#include "sphincs/merkle.hh"
#include "sphincs/thash.hh"
#include "sphincs/thashx.hh"

namespace herosign::sphincs
{

void
messageToIndices(uint32_t *indices, const Params &params,
                 const uint8_t *mhash)
{
    const unsigned a = params.forsHeight;
    size_t offset = 0; // bit offset into mhash
    for (unsigned i = 0; i < params.forsTrees; ++i) {
        uint32_t idx = 0;
        for (unsigned bit = 0; bit < a; ++bit) {
            idx <<= 1;
            idx |= (mhash[offset >> 3] >> (7 - (offset & 7))) & 1u;
            ++offset;
        }
        indices[i] = idx;
    }
}

void
forsSkGen(uint8_t *out, const Context &ctx, const Address &fors_adrs,
          uint32_t idx)
{
    Address sk_adrs = fors_adrs;
    sk_adrs.setType(AddrType::ForsPrf);
    sk_adrs.setKeypair(fors_adrs.keypair());
    sk_adrs.setTreeHeight(0);
    sk_adrs.setTreeIndex(idx);
    prfAddr(out, ctx, sk_adrs);
}

void
forsGenLeaf(uint8_t *out, const Context &ctx, const Address &fors_adrs,
            uint32_t idx)
{
    uint8_t sk[maxN];
    forsSkGen(sk, ctx, fors_adrs, idx);
    Address leaf_adrs = fors_adrs;
    leaf_adrs.setTreeHeight(0);
    leaf_adrs.setTreeIndex(idx);
    thashF(out, ctx, leaf_adrs, sk);
}

void
forsLeafBatch(const Context &ctx, const ForsLeafReq reqs[],
              unsigned count)
{
    const unsigned n = ctx.params().n;
    uint8_t sks[maxHashLanes * maxN];
    Address adrs[maxHashLanes];
    uint8_t *outs[maxHashLanes];
    const uint8_t *ins[maxHashLanes];

    for (unsigned base = 0; base < count; base += maxHashLanes) {
        const unsigned m = std::min(maxHashLanes, count - base);

        // Secret leaf values, one PRF batch.
        for (unsigned j = 0; j < m; ++j) {
            const ForsLeafReq &r = reqs[base + j];
            adrs[j] = r.adrs;
            adrs[j].setType(AddrType::ForsPrf);
            adrs[j].setKeypair(r.adrs.keypair());
            adrs[j].setTreeHeight(0);
            adrs[j].setTreeIndex(r.idx);
            outs[j] = sks + static_cast<size_t>(j) * n;
        }
        prfAddrX(outs, ctx, adrs, m);

        // Leaves = F(sk), one batch.
        for (unsigned j = 0; j < m; ++j) {
            const ForsLeafReq &r = reqs[base + j];
            adrs[j] = r.adrs;
            adrs[j].setTreeHeight(0);
            adrs[j].setTreeIndex(r.idx);
            outs[j] = r.out;
            ins[j] = sks + static_cast<size_t>(j) * n;
        }
        thashFX(outs, ctx, adrs, ins, m);
    }
}

void
forsGenLeavesXN(uint8_t *out, const Context &ctx, const Address &fors_adrs,
                uint32_t idx0, unsigned count)
{
    if (count == 0 || count > maxHashLanes)
        throw std::invalid_argument(
            "forsGenLeavesXN: count must be 1..16");
    const unsigned n = ctx.params().n;
    ForsLeafReq reqs[maxHashLanes];
    for (unsigned j = 0; j < count; ++j) {
        reqs[j].adrs = fors_adrs;
        reqs[j].idx = idx0 + j;
        reqs[j].out = out + static_cast<size_t>(j) * n;
    }
    forsLeafBatch(ctx, reqs, count);
}

void
forsSign(uint8_t *sig, uint8_t *pk_out, const uint8_t *mhash,
         const Context &ctx, const Address &fors_adrs)
{
    const Params &p = ctx.params();
    const unsigned n = p.n;
    const uint32_t t = p.forsLeaves();

    uint32_t indices[64];
    messageToIndices(indices, p, mhash);

    // Selected secret values for all k trees, one dispatched lane
    // width per PRF batch. The tree-i value lands at the head of its
    // signature block.
    {
        Address sk_base = fors_adrs;
        sk_base.setType(AddrType::ForsPrf);
        sk_base.setKeypair(fors_adrs.keypair());
        const size_t sig_stride =
            static_cast<size_t>(p.forsHeight + 1) * n;
        const unsigned width = hashLaneWidth();
        Address adrs[maxHashLanes];
        uint8_t *outs[maxHashLanes];
        for (unsigned g = 0; g < p.forsTrees; g += width) {
            const unsigned m = std::min(width, p.forsTrees - g);
            for (unsigned j = 0; j < m; ++j) {
                adrs[j] = sk_base;
                adrs[j].setTreeHeight(0);
                adrs[j].setTreeIndex(indices[g + j] + (g + j) * t);
                outs[j] = sig + (g + j) * sig_stride;
            }
            prfAddrX(outs, ctx, adrs, m);
        }
    }

    uint8_t roots[64 * maxN];
    for (unsigned i = 0; i < p.forsTrees; ++i) {
        const uint32_t idx_offset = i * t;
        sig += n; // selected secret value, written above

        // Merkle tree over this subset, rooted at roots[i]; leaves
        // generated one lane batch at a time.
        Address tree_adrs = fors_adrs;
        tree_adrs.setType(AddrType::ForsTree);
        tree_adrs.setKeypair(fors_adrs.keypair());
        auto gen_leaves = [&](uint8_t *out, uint32_t leaf_start,
                              uint32_t count) {
            forsGenLeavesXN(out, ctx, tree_adrs, leaf_start + idx_offset,
                            count);
        };
        treehash(roots + i * n, sig, ctx, indices[i], idx_offset,
                 p.forsHeight, gen_leaves, tree_adrs);
        sig += p.forsHeight * n;
    }

    Address pk_adrs = fors_adrs;
    pk_adrs.setType(AddrType::ForsRoots);
    pk_adrs.setKeypair(fors_adrs.keypair());
    thash(pk_out, ctx, pk_adrs, ByteSpan(roots, p.forsTrees * n));
}

void
forsPkFromSig(uint8_t *pk_out, const uint8_t *sig, const uint8_t *mhash,
              const Context &ctx, const Address &fors_adrs)
{
    const Params &p = ctx.params();
    const unsigned n = p.n;
    const uint32_t t = p.forsLeaves();

    uint32_t indices[64];
    messageToIndices(indices, p, mhash);

    uint8_t roots[64 * maxN];
    for (unsigned i = 0; i < p.forsTrees; ++i) {
        const uint32_t idx_offset = i * t;

        Address tree_adrs = fors_adrs;
        tree_adrs.setType(AddrType::ForsTree);
        tree_adrs.setKeypair(fors_adrs.keypair());

        // Leaf from the revealed secret value.
        uint8_t leaf[maxN];
        tree_adrs.setTreeHeight(0);
        tree_adrs.setTreeIndex(indices[i] + idx_offset);
        thashF(leaf, ctx, tree_adrs, sig);
        sig += n;

        computeRoot(roots + i * n, ctx, leaf, indices[i], idx_offset,
                    sig, p.forsHeight, tree_adrs);
        sig += p.forsHeight * n;
    }

    Address pk_adrs = fors_adrs;
    pk_adrs.setType(AddrType::ForsRoots);
    pk_adrs.setKeypair(fors_adrs.keypair());
    thash(pk_out, ctx, pk_adrs, ByteSpan(roots, p.forsTrees * n));
}

void
forsPkFromSigXN(uint8_t *const pk_out[], const uint8_t *const sig[],
                const uint8_t *const mhash[], const Context &ctx,
                const Address fors_adrs[], unsigned count)
{
    if (count == 0 || count > maxHashLanes)
        throw std::invalid_argument(
            "forsPkFromSigXN: count must be 1..16");
    const Params &p = ctx.params();
    const unsigned n = p.n;
    const unsigned k = p.forsTrees;
    const uint32_t t = p.forsLeaves();
    const size_t tree_sig = static_cast<size_t>(p.forsHeight + 1) * n;

    uint32_t indices[maxHashLanes][64];
    for (unsigned l = 0; l < count; ++l)
        messageToIndices(indices[l], p, mhash[l]);

    // Roots land contiguously per lane for the final compression.
    uint8_t roots[maxHashLanes][64 * maxN];

    // Walk the count * k (lane, tree) pairs in groups of the
    // dispatched lane width: the revealed leaf values hash one batch
    // per group, then the group's auth-path walks climb the shared
    // height a in lockstep.
    const unsigned width = hashLaneWidth();
    const unsigned pairs = count * k;
    uint8_t leaves[maxHashLanes][maxN];
    for (unsigned g = 0; g < pairs; g += width) {
        const unsigned m = std::min(width, pairs - g);
        Address adrs[maxHashLanes];
        uint8_t *louts[maxHashLanes];
        uint8_t *routs[maxHashLanes];
        const uint8_t *lins[maxHashLanes];
        const uint8_t *leafp[maxHashLanes];
        const uint8_t *auth[maxHashLanes];
        uint32_t leaf_idx[maxHashLanes];
        uint32_t idx_offset[maxHashLanes];

        for (unsigned j = 0; j < m; ++j) {
            const unsigned l = (g + j) / k;
            const unsigned i = (g + j) % k;
            const uint8_t *block = sig[l] + i * tree_sig;

            adrs[j] = fors_adrs[l];
            adrs[j].setType(AddrType::ForsTree);
            adrs[j].setKeypair(fors_adrs[l].keypair());
            adrs[j].setTreeHeight(0);
            adrs[j].setTreeIndex(indices[l][i] + i * t);
            louts[j] = leaves[j];
            lins[j] = block; // revealed secret value

            leafp[j] = leaves[j];
            leaf_idx[j] = indices[l][i];
            idx_offset[j] = i * t;
            auth[j] = block + n;
            routs[j] = roots[l] + static_cast<size_t>(i) * n;
        }
        thashFX(louts, ctx, adrs, lins, m);
        // The leaf addresses double as the walk scratch: computeRootXN
        // only touches the height/index words the leaf step set.
        computeRootXN(routs, ctx, leafp, leaf_idx, idx_offset, auth,
                      p.forsHeight, adrs, m);
    }

    // One batched k*n-byte root compression per lane.
    Address pk_adrs[maxHashLanes];
    const uint8_t *ins[maxHashLanes];
    for (unsigned l = 0; l < count; ++l) {
        pk_adrs[l] = fors_adrs[l];
        pk_adrs[l].setType(AddrType::ForsRoots);
        pk_adrs[l].setKeypair(fors_adrs[l].keypair());
        ins[l] = roots[l];
    }
    thashX(pk_out, ctx, pk_adrs, ins, static_cast<size_t>(k) * n, count);
}

} // namespace herosign::sphincs
