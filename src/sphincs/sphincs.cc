#include "sphincs/sphincs.hh"

#include <memory>
#include <stdexcept>

#include "common/zeroize.hh"

#include "sphincs/fors.hh"
#include "sphincs/merkle.hh"
#include "sphincs/thash.hh"
#include "sphincs/thashx.hh"
#include "sphincs/wots.hh"

namespace herosign::sphincs
{

namespace
{

uint64_t
maskBits(unsigned bits)
{
    return bits >= 64 ? ~0ULL : ((1ULL << bits) - 1);
}

uint64_t
bytesToU64(const uint8_t *in, size_t len)
{
    uint64_t v = 0;
    for (size_t i = 0; i < len; ++i)
        v = (v << 8) | in[i];
    return v;
}

} // namespace

ByteVec
SecretKey::encode() const
{
    ByteVec out;
    out.reserve(params.skBytes());
    append(out, skSeed);
    append(out, skPrf);
    append(out, pkSeed);
    append(out, pkRoot);
    return out;
}

void
SecretKey::zeroize()
{
    secureZero(skSeed);
    secureZero(skPrf);
}

SecretKey
SecretKey::decode(const Params &params, ByteSpan bytes)
{
    if (bytes.size() != params.skBytes())
        throw std::invalid_argument("SecretKey: wrong length");
    const unsigned n = params.n;
    SecretKey sk;
    sk.params = params;
    sk.skSeed.assign(bytes.begin(), bytes.begin() + n);
    sk.skPrf.assign(bytes.begin() + n, bytes.begin() + 2 * n);
    sk.pkSeed.assign(bytes.begin() + 2 * n, bytes.begin() + 3 * n);
    sk.pkRoot.assign(bytes.begin() + 3 * n, bytes.begin() + 4 * n);
    return sk;
}

ByteVec
PublicKey::encode() const
{
    ByteVec out;
    out.reserve(params.pkBytes());
    append(out, pkSeed);
    append(out, pkRoot);
    return out;
}

PublicKey
PublicKey::decode(const Params &params, ByteSpan bytes)
{
    if (bytes.size() != params.pkBytes())
        throw std::invalid_argument("PublicKey: wrong length");
    const unsigned n = params.n;
    PublicKey pk;
    pk.params = params;
    pk.pkSeed.assign(bytes.begin(), bytes.begin() + n);
    pk.pkRoot.assign(bytes.begin() + n, bytes.begin() + 2 * n);
    return pk;
}

DigestSplit
splitDigest(const Params &params, ByteSpan digest)
{
    if (digest.size() < params.msgDigestBytes())
        throw std::invalid_argument("splitDigest: digest too short");

    DigestSplit out;
    const size_t fors_bytes = params.forsMsgBytes();
    const size_t tree_bytes = (params.treeBits() + 7) / 8;
    const size_t leaf_bytes = (params.leafBits() + 7) / 8;

    out.forsMsg.assign(digest.begin(), digest.begin() + fors_bytes);
    out.idxTree = bytesToU64(digest.data() + fors_bytes, tree_bytes) &
                  maskBits(params.treeBits());
    out.idxLeaf = static_cast<uint32_t>(
        bytesToU64(digest.data() + fors_bytes + tree_bytes, leaf_bytes) &
        maskBits(params.leafBits()));
    return out;
}

SphincsPlus::SphincsPlus(const Params &params, Sha256Variant variant)
    : params_(params), variant_(variant)
{
    params_.validate();
}

ByteVec
SphincsPlus::computePkRoot(ByteSpan sk_seed, ByteSpan pk_seed) const
{
    Context ctx(params_, pk_seed, sk_seed, variant_);
    const uint32_t top_layer = params_.layers - 1;

    Address tree_adrs;
    tree_adrs.setLayer(top_layer);
    tree_adrs.setTree(0);
    tree_adrs.setType(AddrType::Tree);

    ByteVec root(params_.n);
    auto gen_leaves = [&](uint8_t *out, uint32_t leaf_start,
                          uint32_t count) {
        wotsPkGenXN(out, ctx, top_layer, 0, leaf_start, count);
    };
    treehash(root.data(), nullptr, ctx, 0, 0, params_.treeHeight(),
             gen_leaves, tree_adrs);
    return root;
}

KeyPair
SphincsPlus::keygen(Rng &rng) const
{
    ByteVec seed = rng.bytes(3 * static_cast<size_t>(params_.n));
    return keygenFromSeed(seed);
}

KeyPair
SphincsPlus::keygenFromSeed(ByteSpan seed) const
{
    const unsigned n = params_.n;
    if (seed.size() != 3 * static_cast<size_t>(n))
        throw std::invalid_argument("keygenFromSeed: need 3n bytes");

    KeyPair kp;
    kp.sk.params = params_;
    kp.sk.skSeed.assign(seed.begin(), seed.begin() + n);
    kp.sk.skPrf.assign(seed.begin() + n, seed.begin() + 2 * n);
    kp.sk.pkSeed.assign(seed.begin() + 2 * n, seed.begin() + 3 * n);
    kp.sk.pkRoot = computePkRoot(kp.sk.skSeed, kp.sk.pkSeed);

    kp.pk.params = params_;
    kp.pk.pkSeed = kp.sk.pkSeed;
    kp.pk.pkRoot = kp.sk.pkRoot;
    return kp;
}

ByteVec
SphincsPlus::sign(ByteSpan msg, const SecretKey &sk,
                  ByteSpan opt_rand) const
{
    Context ctx(params_, sk.pkSeed, sk.skSeed, variant_);
    return sign(ctx, msg, sk, opt_rand);
}

ByteVec
SphincsPlus::sign(const Context &ctx, ByteSpan msg, const SecretKey &sk,
                  ByteSpan opt_rand) const
{
    const unsigned n = params_.n;
    if (ctx.params().n != n ||
        !ctEqual(ctx.pkSeed(), ByteSpan(sk.pkSeed)) ||
        !ctEqual(ctx.skSeed(), ByteSpan(sk.skSeed)))
        throw std::invalid_argument(
            "sign: context does not match the secret key");

    ByteVec sig(params_.sigBytes());
    uint8_t *out = sig.data();

    // R = PRF_msg(sk_prf, opt_rand, msg); deterministic variant uses
    // opt_rand = pk_seed.
    ByteSpan rand = opt_rand.empty() ? ByteSpan(sk.pkSeed) : opt_rand;
    if (rand.size() != n)
        throw std::invalid_argument("sign: opt_rand must be n bytes");
    prfMsg(out, ctx, sk.skPrf, rand, msg);
    ByteSpan r(out, n);
    out += n;

    // Message digest and index split.
    ByteVec digest(params_.msgDigestBytes());
    hashMessage(digest, ctx, r, sk.pkRoot, msg);
    DigestSplit split = splitDigest(params_, digest);

    uint64_t idx_tree = split.idxTree;
    uint32_t idx_leaf = split.idxLeaf;

    // FORS at the bottom.
    Address fors_adrs;
    fors_adrs.setLayer(0);
    fors_adrs.setTree(idx_tree);
    fors_adrs.setType(AddrType::ForsTree);
    fors_adrs.setKeypair(idx_leaf);

    uint8_t root[maxN];
    forsSign(out, root, split.forsMsg.data(), ctx, fors_adrs);
    out += params_.forsSigBytes();

    // Hypertree layers, bottom-up (paper Fig. 2 snippet).
    for (uint32_t layer = 0; layer < params_.layers; ++layer) {
        merkleSign(out, root, ctx, layer, idx_tree, idx_leaf, root);
        out += params_.xmssSigBytes();
        idx_leaf = static_cast<uint32_t>(idx_tree &
                                         maskBits(params_.treeHeight()));
        idx_tree >>= params_.treeHeight();
    }

    return sig;
}

bool
SphincsPlus::verify(ByteSpan msg, ByteSpan sig, const PublicKey &pk) const
{
    if (sig.size() != params_.sigBytes())
        return false;
    Context ctx(params_, pk.pkSeed, {}, variant_);
    return verify(ctx, msg, sig, pk);
}

bool
SphincsPlus::verify(const Context &ctx, ByteSpan msg, ByteSpan sig,
                    const PublicKey &pk) const
{
    const unsigned n = params_.n;
    if (ctx.params().n != n ||
        !ctEqual(ctx.pkSeed(), ByteSpan(pk.pkSeed)))
        throw std::invalid_argument(
            "verify: context does not match the public key");
    if (sig.size() != params_.sigBytes())
        return false;

    const uint8_t *in = sig.data();

    ByteSpan r(in, n);
    in += n;

    ByteVec digest(params_.msgDigestBytes());
    hashMessage(digest, ctx, r, pk.pkRoot, msg);
    DigestSplit split = splitDigest(params_, digest);

    uint64_t idx_tree = split.idxTree;
    uint32_t idx_leaf = split.idxLeaf;

    Address fors_adrs;
    fors_adrs.setLayer(0);
    fors_adrs.setTree(idx_tree);
    fors_adrs.setType(AddrType::ForsTree);
    fors_adrs.setKeypair(idx_leaf);

    uint8_t root[maxN];
    forsPkFromSig(root, in, split.forsMsg.data(), ctx, fors_adrs);
    in += params_.forsSigBytes();

    for (uint32_t layer = 0; layer < params_.layers; ++layer) {
        Address wots_adrs;
        wots_adrs.setLayer(layer);
        wots_adrs.setTree(idx_tree);
        wots_adrs.setType(AddrType::WotsHash);
        wots_adrs.setKeypair(idx_leaf);

        uint8_t leaf[maxN];
        wotsPkFromSig(leaf, in, root, ctx, wots_adrs);
        in += params_.wotsSigBytes();

        Address tree_adrs;
        tree_adrs.setLayer(layer);
        tree_adrs.setTree(idx_tree);
        tree_adrs.setType(AddrType::Tree);
        computeRoot(root, ctx, leaf, idx_leaf, 0, in,
                    params_.treeHeight(), tree_adrs);
        in += params_.treeHeight() * n;

        idx_leaf = static_cast<uint32_t>(idx_tree &
                                         maskBits(params_.treeHeight()));
        idx_tree >>= params_.treeHeight();
    }

    return ctEqual(ByteSpan(root, n), pk.pkRoot);
}

namespace
{

/**
 * Verify up to maxHashLanes signatures under one public key with
 * every hot loop batched across the lanes: the lanes walk FORS and
 * the d hypertree layers in lockstep (all lanes share the parameter
 * set, so the layer structure is identical even though each lane
 * selects its own subtree chain).
 */
void
verifyGroupXN(const Context &ctx, const Params &p, const ByteSpan msgs[],
              const ByteSpan sigs[], const PublicKey &pk, bool ok[],
              unsigned count)
{
    const unsigned n = p.n;

    const uint8_t *in[maxHashLanes];
    uint64_t idx_tree[maxHashLanes];
    uint32_t idx_leaf[maxHashLanes];
    ByteVec fors_msgs[maxHashLanes];

    for (unsigned l = 0; l < count; ++l) {
        in[l] = sigs[l].data();
        ByteSpan r(in[l], n);
        in[l] += n;

        ByteVec digest(p.msgDigestBytes());
        hashMessage(digest, ctx, r, pk.pkRoot, msgs[l]);
        DigestSplit split = splitDigest(p, digest);
        fors_msgs[l] = std::move(split.forsMsg);
        idx_tree[l] = split.idxTree;
        idx_leaf[l] = split.idxLeaf;
    }

    // FORS, all lanes' k trees batched together.
    uint8_t roots[maxHashLanes][maxN];
    {
        Address fors_adrs[maxHashLanes];
        uint8_t *root_ptrs[maxHashLanes];
        const uint8_t *mhash[maxHashLanes];
        for (unsigned l = 0; l < count; ++l) {
            fors_adrs[l].setLayer(0);
            fors_adrs[l].setTree(idx_tree[l]);
            fors_adrs[l].setType(AddrType::ForsTree);
            fors_adrs[l].setKeypair(idx_leaf[l]);
            root_ptrs[l] = roots[l];
            mhash[l] = fors_msgs[l].data();
        }
        forsPkFromSigXN(root_ptrs, in, mhash, ctx, fors_adrs, count);
        for (unsigned l = 0; l < count; ++l)
            in[l] += p.forsSigBytes();
    }

    // Hypertree layers in lockstep: every lane climbs layer by layer,
    // so the WOTS+ chain recompute runs count * len ragged chains per
    // layer and the auth-path walks fill lanes across signatures.
    for (uint32_t layer = 0; layer < p.layers; ++layer) {
        Address wots_adrs[maxHashLanes];
        Address tree_adrs[maxHashLanes];
        uint8_t leaves[maxHashLanes][maxN];
        uint8_t *leaf_ptrs[maxHashLanes];
        const uint8_t *leaf_in[maxHashLanes];
        const uint8_t *msg_ptrs[maxHashLanes];
        const uint8_t *auth[maxHashLanes];
        uint8_t *root_ptrs[maxHashLanes];
        uint32_t offsets[maxHashLanes];

        for (unsigned l = 0; l < count; ++l) {
            wots_adrs[l].setLayer(layer);
            wots_adrs[l].setTree(idx_tree[l]);
            wots_adrs[l].setType(AddrType::WotsHash);
            wots_adrs[l].setKeypair(idx_leaf[l]);
            leaf_ptrs[l] = leaves[l];
            msg_ptrs[l] = roots[l];
        }
        wotsPkFromSigXN(leaf_ptrs, in, msg_ptrs, ctx, wots_adrs, count);

        for (unsigned l = 0; l < count; ++l) {
            in[l] += p.wotsSigBytes();
            tree_adrs[l].setLayer(layer);
            tree_adrs[l].setTree(idx_tree[l]);
            tree_adrs[l].setType(AddrType::Tree);
            leaf_in[l] = leaves[l];
            auth[l] = in[l];
            root_ptrs[l] = roots[l];
            offsets[l] = 0;
        }
        computeRootXN(root_ptrs, ctx, leaf_in, idx_leaf, offsets, auth,
                      p.treeHeight(), tree_adrs, count);

        for (unsigned l = 0; l < count; ++l) {
            in[l] += p.treeHeight() * n;
            idx_leaf[l] = static_cast<uint32_t>(
                idx_tree[l] & maskBits(p.treeHeight()));
            idx_tree[l] >>= p.treeHeight();
        }
    }

    for (unsigned l = 0; l < count; ++l)
        ok[l] = ctEqual(ByteSpan(roots[l], n), pk.pkRoot);
}

} // namespace

void
SphincsPlus::verifyBatch(const ByteSpan msgs[], const ByteSpan sigs[],
                         const PublicKey &pk, bool ok[],
                         size_t count) const
{
    Context ctx(params_, pk.pkSeed, {}, variant_);
    verifyBatch(ctx, msgs, sigs, pk, ok, count);
}

std::vector<uint8_t>
SphincsPlus::verifyBatch(const Context &ctx,
                         const std::vector<ByteSpan> &msgs,
                         const std::vector<ByteSpan> &sigs,
                         const PublicKey &pk) const
{
    if (msgs.size() != sigs.size())
        throw std::invalid_argument(
            "verifyBatch: msgs/sigs size mismatch");
    std::vector<uint8_t> out(msgs.size(), 0);
    if (msgs.empty())
        return out;
    std::unique_ptr<bool[]> flags(new bool[msgs.size()]);
    verifyBatch(ctx, msgs.data(), sigs.data(), pk, flags.get(),
                msgs.size());
    for (size_t i = 0; i < msgs.size(); ++i)
        out[i] = flags[i] ? 1 : 0;
    return out;
}

void
SphincsPlus::verifyBatch(const Context &ctx, const ByteSpan msgs[],
                         const ByteSpan sigs[], const PublicKey &pk,
                         bool ok[], size_t count) const
{
    if (ctx.params().n != params_.n ||
        !ctEqual(ctx.pkSeed(), ByteSpan(pk.pkSeed)))
        throw std::invalid_argument(
            "verifyBatch: context does not match the public key");

    // Malformed lengths reject up front; survivors verify in lane
    // groups of the dispatched width (16 on AVX-512, 8 elsewhere).
    const unsigned width = hashLaneWidth();
    size_t valid[maxHashLanes];
    ByteSpan gmsgs[maxHashLanes];
    ByteSpan gsigs[maxHashLanes];
    bool gok[maxHashLanes];
    size_t pos = 0;
    while (pos < count) {
        unsigned m = 0;
        while (pos < count && m < width) {
            if (sigs[pos].size() != params_.sigBytes()) {
                ok[pos] = false;
            } else {
                valid[m] = pos;
                gmsgs[m] = msgs[pos];
                gsigs[m] = sigs[pos];
                ++m;
            }
            ++pos;
        }
        if (m == 0)
            continue;
        verifyGroupXN(ctx, params_, gmsgs, gsigs, pk, gok, m);
        for (unsigned j = 0; j < m; ++j)
            ok[valid[j]] = gok[j];
    }
}

} // namespace herosign::sphincs
