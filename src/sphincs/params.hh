/**
 * @file
 * SPHINCS+ parameter sets (paper Table I) and every derived size the
 * rest of the library needs. Parameters are a runtime value so one
 * code path serves 128f/192f/256f and arbitrary custom sets.
 */

#ifndef HEROSIGN_SPHINCS_PARAMS_HH
#define HEROSIGN_SPHINCS_PARAMS_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace herosign::sphincs
{

/** Hard bounds used for fixed-size scratch buffers. */
constexpr unsigned maxN = 32;
constexpr unsigned maxWotsLen = 67;
constexpr unsigned maxForsHeight = 16;
constexpr unsigned maxTreeHeight = 16;

/**
 * A SPHINCS+ parameter set. Field names follow the spec / paper
 * Table I: n (hash bytes), h (hypertree height), d (layers),
 * a = log2(t) (FORS tree height), k (FORS tree count), w (Winternitz
 * parameter, always 16 here → lgW = 4).
 */
struct Params
{
    std::string name;
    unsigned n;
    unsigned fullHeight;  ///< h
    unsigned layers;      ///< d
    unsigned forsHeight;  ///< a = log2(t)
    unsigned forsTrees;   ///< k
    unsigned wotsW;       ///< w

    /** Height of each hypertree subtree: h / d. */
    unsigned treeHeight() const { return fullHeight / layers; }

    /** Leaves per hypertree subtree: 2^(h/d). */
    uint32_t treeLeaves() const { return 1u << treeHeight(); }

    /** Leaves per FORS tree: t = 2^a. */
    uint32_t forsLeaves() const { return 1u << forsHeight; }

    /** Total FORS leaves across all k trees (paper §III-B1). */
    uint64_t forsTotalLeaves() const
    {
        return static_cast<uint64_t>(forsTrees) * forsLeaves();
    }

    /** log2(w); 4 for w = 16. */
    unsigned lgW() const;

    /** WOTS+ message chains: len1 = ceil(8n / lg w). */
    unsigned wotsLen1() const;

    /** WOTS+ checksum chains: len2. */
    unsigned wotsLen2() const;

    /** Total WOTS+ chains: len = len1 + len2. */
    unsigned wotsLen() const { return wotsLen1() + wotsLen2(); }

    /** Bytes of the FORS part of the message digest: ceil(k*a / 8). */
    size_t forsMsgBytes() const { return (forsTrees * forsHeight + 7) / 8; }

    /** Bits selecting the hypertree leaf within its subtree: h/d. */
    unsigned leafBits() const { return treeHeight(); }

    /** Bits selecting the subtree chain: h - h/d. */
    unsigned treeBits() const { return fullHeight - treeHeight(); }

    /** Message digest length m (spec: md + idx_tree + idx_leaf). */
    size_t msgDigestBytes() const;

    /** WOTS+ signature bytes: len * n. */
    size_t wotsSigBytes() const { return wotsLen() * n; }

    /** FORS signature bytes: k * (n + a*n). */
    size_t forsSigBytes() const
    {
        return static_cast<size_t>(forsTrees) * (forsHeight + 1) * n;
    }

    /** One hypertree layer's signature bytes: WOTS sig + auth path. */
    size_t xmssSigBytes() const
    {
        return wotsSigBytes() + static_cast<size_t>(treeHeight()) * n;
    }

    /** Full signature bytes: R + FORS + d XMSS layers. */
    size_t sigBytes() const
    {
        return n + forsSigBytes() + layers * xmssSigBytes();
    }

    /** Public key bytes: pk_seed + pk_root. */
    size_t pkBytes() const { return 2 * static_cast<size_t>(n); }

    /** Secret key bytes: sk_seed + sk_prf + pk_seed + pk_root. */
    size_t skBytes() const { return 4 * static_cast<size_t>(n); }

    /**
     * SHA-2 compressions inside one wots_gen_leaf call: len chains x
     * (1 PRF + (w-1) chain steps) = len * w. Matches the paper's 560 /
     * 816 / 1072 counts for 128f/192f/256f (§III intro).
     */
    uint64_t hashesPerWotsLeaf() const
    {
        return static_cast<uint64_t>(wotsLen()) * wotsW;
    }

    /** Validate internal consistency; throws std::invalid_argument. */
    void validate() const;

    /** The three -f parameter sets of the paper (Table I). */
    static const Params &sphincs128f();
    static const Params &sphincs192f();
    static const Params &sphincs256f();

    /** All paper parameter sets in ascending security order. */
    static const std::vector<Params> &all();

    /** Look up a set by name ("128f", "SPHINCS+-128f", ...). */
    static const Params &byName(const std::string &name);
};

} // namespace herosign::sphincs

#endif // HEROSIGN_SPHINCS_PARAMS_HH
