/**
 * @file
 * SPHINCS+ top level: key generation, signing and verification
 * (scalar CPU reference implementation). This is the library's
 * correctness oracle — the GPU-simulated engines must produce
 * byte-identical signatures.
 */

#ifndef HEROSIGN_SPHINCS_SPHINCS_HH
#define HEROSIGN_SPHINCS_SPHINCS_HH

#include <optional>

#include "common/bytes.hh"
#include "common/random.hh"
#include "sphincs/context.hh"
#include "sphincs/params.hh"

namespace herosign::sphincs
{

/** A SPHINCS+ secret key (sk_seed, sk_prf, pk_seed, pk_root). */
struct SecretKey
{
    Params params;
    ByteVec skSeed;
    ByteVec skPrf;
    ByteVec pkSeed;
    ByteVec pkRoot;

    /** Serialize as sk_seed || sk_prf || pk_seed || pk_root. */
    ByteVec encode() const;

    /** Parse from the serialized form. */
    static SecretKey decode(const Params &params, ByteSpan bytes);

    /**
     * Securely zeroize the secret seeds (sk_seed, sk_prf) in place.
     * The single definition of which fields are secret — every owner
     * releasing a key copy must call this, not hand-roll the list.
     */
    void zeroize();
};

/** A SPHINCS+ public key (pk_seed, pk_root). */
struct PublicKey
{
    Params params;
    ByteVec pkSeed;
    ByteVec pkRoot;

    /** Serialize as pk_seed || pk_root. */
    ByteVec encode() const;

    /** Parse from the serialized form. */
    static PublicKey decode(const Params &params, ByteSpan bytes);
};

/** A generated keypair. */
struct KeyPair
{
    SecretKey sk;
    PublicKey pk;
};

/**
 * The (idx_tree, idx_leaf, fors message) selection extracted from the
 * H_msg digest (spec Alg. 20 lines 7-12).
 */
struct DigestSplit
{
    ByteVec forsMsg;    ///< ceil(k*a/8) bytes feeding FORS
    uint64_t idxTree;   ///< which bottom-layer subtree chain
    uint32_t idxLeaf;   ///< leaf within the bottom subtree
};

/** Split an H_msg digest into its three fields. */
DigestSplit splitDigest(const Params &params, ByteSpan digest);

/**
 * The SPHINCS+ signature scheme over one parameter set.
 *
 * All methods are deterministic given their inputs; randomized signing
 * is obtained by passing fresh opt_rand.
 */
class SphincsPlus
{
  public:
    explicit SphincsPlus(const Params &params,
                         Sha256Variant variant = Sha256Variant::Native);

    const Params &params() const { return params_; }

    /** Generate a keypair from an RNG (draws 3n seed bytes). */
    KeyPair keygen(Rng &rng) const;

    /**
     * Generate a keypair from a fixed 3n-byte seed
     * (sk_seed || sk_prf || pk_seed) — deterministic, for tests.
     */
    KeyPair keygenFromSeed(ByteSpan seed) const;

    /**
     * Sign @p msg.
     * @param opt_rand n bytes of signing randomness; empty selects the
     *        deterministic variant (opt_rand = pk_seed).
     * @return the sigBytes()-long signature
     */
    ByteVec sign(ByteSpan msg, const SecretKey &sk,
                 ByteSpan opt_rand = {}) const;

    /**
     * Sign @p msg reusing a warm context. @p ctx must have been built
     * for @p sk (same pk_seed and sk_seed) — checked, throws
     * std::invalid_argument on mismatch. This is the serving-layer hot
     * path: no per-sign Context construction.
     */
    ByteVec sign(const Context &ctx, ByteSpan msg, const SecretKey &sk,
                 ByteSpan opt_rand = {}) const;

    /** Verify @p sig over @p msg under @p pk. */
    bool verify(ByteSpan msg, ByteSpan sig, const PublicKey &pk) const;

    /**
     * Verify reusing a warm context. @p ctx must carry the public
     * key's pk_seed (a signing context for the same keypair works) —
     * checked, throws std::invalid_argument on mismatch.
     */
    bool verify(const Context &ctx, ByteSpan msg, ByteSpan sig,
                const PublicKey &pk) const;

    /**
     * Batched verification: ok[i] = verify(msgs[i], sigs[i], pk) for
     * i < count, with the hot loops (WOTS+ chain recompute, FORS leaf
     * and auth-path walks, Merkle root reconstruction) advanced across
     * signatures in hash lanes of the dispatched width (16 on
     * AVX-512, 8 elsewhere). Results are bool-identical to
     * the scalar path on every backend; partial lane groups fall back
     * to the scalar hash calls so digests match bit for bit.
     */
    void verifyBatch(const ByteSpan msgs[], const ByteSpan sigs[],
                     const PublicKey &pk, bool ok[], size_t count) const;

    /** Batched verification reusing a warm context. */
    void verifyBatch(const Context &ctx, const ByteSpan msgs[],
                     const ByteSpan sigs[], const PublicKey &pk,
                     bool ok[], size_t count) const;

    /**
     * Vector convenience overload: out[i] is 1 when (msgs[i],
     * sigs[i]) verifies. Throws std::invalid_argument on a msgs/sigs
     * size mismatch.
     */
    std::vector<uint8_t> verifyBatch(const Context &ctx,
                                     const std::vector<ByteSpan> &msgs,
                                     const std::vector<ByteSpan> &sigs,
                                     const PublicKey &pk) const;

    /** Compute the hypertree root for a secret key (keygen internal). */
    ByteVec computePkRoot(ByteSpan sk_seed, ByteSpan pk_seed) const;

  private:
    Params params_;
    Sha256Variant variant_;
};

} // namespace herosign::sphincs

#endif // HEROSIGN_SPHINCS_SPHINCS_HH
