#include "sphincs/sign_task.hh"

#include <algorithm>
#include <stdexcept>

#include "sphincs/thash.hh"
#include "sphincs/thashx.hh"

namespace herosign::sphincs
{

namespace
{

uint64_t
maskBits(unsigned bits)
{
    return bits >= 64 ? ~0ULL : ((1ULL << bits) - 1);
}

} // namespace

SignTask::SignTask(const Context &ctx, const SecretKey &sk, ByteSpan msg,
                   ByteSpan opt_rand)
    : ctx_(&ctx)
{
    const Params &p = ctx.params();
    const unsigned n = p.n;
    if (p.n != sk.params.n || !ctEqual(ctx.pkSeed(), ByteSpan(sk.pkSeed)) ||
        !ctEqual(ctx.skSeed(), ByteSpan(sk.skSeed)))
        throw std::invalid_argument(
            "SignTask: context does not match the secret key");

    sig_.resize(p.sigBytes());
    uint8_t *out = sig_.data();

    // R = PRF_msg(sk_prf, opt_rand, msg); deterministic variant uses
    // opt_rand = pk_seed. Identical to SphincsPlus::sign().
    ByteSpan rand = opt_rand.empty() ? ByteSpan(sk.pkSeed) : opt_rand;
    if (rand.size() != n)
        throw std::invalid_argument("SignTask: opt_rand must be n bytes");
    prfMsg(out, ctx, sk.skPrf, rand, msg);
    ByteSpan r(out, n);

    // Message digest and the full index ladder: every layer's
    // (tree, leaf) position is derivable up front — only the WOTS
    // chain lengths depend on the lower layers' roots.
    ByteVec digest(p.msgDigestBytes());
    hashMessage(digest, ctx, r, sk.pkRoot, msg);
    DigestSplit split = splitDigest(p, digest);
    forsMsg_ = std::move(split.forsMsg);

    layerTree_.resize(p.layers);
    layerLeaf_.resize(p.layers);
    uint64_t idx_tree = split.idxTree;
    uint32_t idx_leaf = split.idxLeaf;
    for (unsigned l = 0; l < p.layers; ++l) {
        layerTree_[l] = idx_tree;
        layerLeaf_[l] = idx_leaf;
        idx_leaf =
            static_cast<uint32_t>(idx_tree & maskBits(p.treeHeight()));
        idx_tree >>= p.treeHeight();
    }

    forsBase_.setLayer(0);
    forsBase_.setTree(layerTree_[0]);
    forsBase_.setType(AddrType::ForsTree);
    forsBase_.setKeypair(layerLeaf_[0]);
    messageToIndices(forsIndices_, p, forsMsg_.data());

    // Selected secret values for all k trees into the signature
    // blocks, one dispatched lane width per PRF batch — the same
    // batching forsSign() performs.
    {
        Address sk_base = forsBase_;
        sk_base.setType(AddrType::ForsPrf);
        sk_base.setKeypair(layerLeaf_[0]);
        const uint32_t t = p.forsLeaves();
        const unsigned width = hashLaneWidth();
        Address adrs[maxHashLanes];
        uint8_t *outs[maxHashLanes];
        for (unsigned g = 0; g < p.forsTrees; g += width) {
            const unsigned m = std::min(width, p.forsTrees - g);
            for (unsigned j = 0; j < m; ++j) {
                adrs[j] = sk_base;
                adrs[j].setTreeHeight(0);
                adrs[j].setTreeIndex(forsIndices_[g + j] + (g + j) * t);
                outs[j] = forsSigBlock(g + j);
            }
            prfAddrX(outs, ctx, adrs, m);
        }
    }

    layerLeaves_.resize(static_cast<size_t>(p.treeLeaves()) * n);
}

uint8_t *
SignTask::forsSigBlock(unsigned tree)
{
    const Params &p = ctx_->params();
    const size_t stride = static_cast<size_t>(p.forsHeight + 1) * p.n;
    return sig_.data() + p.n + tree * stride;
}

uint8_t *
SignTask::xmssSig(unsigned layer)
{
    const Params &p = ctx_->params();
    return sig_.data() + p.n + p.forsSigBytes() +
           layer * p.xmssSigBytes();
}

void
SignTask::beginForsTree(unsigned tree)
{
    const Params &p = ctx_->params();
    if (tree != curTree_ || tree >= p.forsTrees)
        throw std::logic_error("SignTask: FORS trees must run in order");
    Address tree_adrs = forsBase_;
    stream_.begin(*ctx_, p.forsHeight, forsIndices_[tree],
                  tree * p.forsLeaves(), forsSigBlock(tree) + p.n,
                  tree_adrs);
}

ForsLeafReq
SignTask::forsLeafReq(uint32_t pos, uint8_t *out) const
{
    const Params &p = ctx_->params();
    ForsLeafReq req;
    req.adrs = forsBase_;
    req.idx = curTree_ * p.forsLeaves() + pos;
    req.out = out;
    return req;
}

void
SignTask::endForsTree()
{
    const unsigned n = ctx_->params().n;
    std::memcpy(forsRoots_ + static_cast<size_t>(curTree_) * n,
                stream_.root(), n);
    ++curTree_;
}

void
SignTask::finishFors()
{
    const Params &p = ctx_->params();
    if (curTree_ != p.forsTrees)
        throw std::logic_error("SignTask: FORS trees incomplete");
    Address pk_adrs = forsBase_;
    pk_adrs.setType(AddrType::ForsRoots);
    pk_adrs.setKeypair(layerLeaf_[0]);
    thash(root_, *ctx_, pk_adrs,
          ByteSpan(forsRoots_, static_cast<size_t>(p.forsTrees) * p.n));
}

void
SignTask::beginLayer(unsigned layer)
{
    const Params &p = ctx_->params();
    if (layer != curLayer_ || layer >= p.layers)
        throw std::logic_error("SignTask: layers must run in order");
    if (curTree_ != p.forsTrees)
        throw std::logic_error("SignTask: layer before FORS finished");

    // The serial dependency between layers: the chain lengths of this
    // layer's signing keypair come from the message root_ holds (the
    // FORS pk for layer 0, the previous layer's root above).
    chainLengths(lengths_, p, root_);

    Address tree_adrs;
    tree_adrs.setLayer(layer);
    tree_adrs.setTree(layerTree_[layer]);
    tree_adrs.setType(AddrType::Tree);
    stream_.begin(*ctx_, p.treeHeight(), layerLeaf_[layer], 0,
                  xmssSig(layer) + p.wotsSigBytes(), tree_adrs);
}

WotsLeafReq
SignTask::wotsLeafReq(uint32_t j)
{
    const Params &p = ctx_->params();
    WotsLeafReq req;
    req.layer = curLayer_;
    req.tree = layerTree_[curLayer_];
    req.keypair = j;
    req.leafOut = layerLeaves_.data() + static_cast<size_t>(j) * p.n;
    if (j == layerLeaf_[curLayer_]) {
        req.sigOut = xmssSig(curLayer_);
        req.lengths = lengths_;
    }
    return req;
}

const uint8_t *
SignTask::layerLeaf(uint32_t j) const
{
    return layerLeaves_.data() +
           static_cast<size_t>(j) * ctx_->params().n;
}

void
SignTask::endLayer()
{
    const Params &p = ctx_->params();
    std::memcpy(root_, stream_.root(), p.n);
    ++curLayer_;
    if (curLayer_ == p.layers)
        finished_ = true;
}

ByteVec
SignTask::takeSignature()
{
    if (!finished_)
        throw std::logic_error(
            "SignTask: signature taken before completion");
    return std::move(sig_);
}

} // namespace herosign::sphincs
