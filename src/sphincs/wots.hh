/**
 * @file
 * WOTS+ one-time signatures (spec §3). Each of the len chains is an
 * independent hash chain — the property HERO-Sign's WOTS+_Sign kernel
 * exploits with chain-level parallelism (paper §II-A1).
 */

#ifndef HEROSIGN_SPHINCS_WOTS_HH
#define HEROSIGN_SPHINCS_WOTS_HH

#include "common/bytes.hh"
#include "sphincs/address.hh"
#include "sphincs/context.hh"

namespace herosign::sphincs
{

/**
 * Compute the base-w chain lengths for a message: len1 message digits
 * followed by len2 checksum digits.
 * @param lengths output array of params.wotsLen() entries, each in
 *        [0, w-1]
 * @param msg the n-byte message (a Merkle root)
 */
void chainLengths(uint32_t *lengths, const Params &params,
                  const uint8_t *msg);

/**
 * Advance one WOTS+ hash chain.
 * @param out n bytes; may alias @p in
 * @param in n-byte chain value at position @p start
 * @param start current position in the chain
 * @param steps how many F applications to perform
 * @param adrs WOTS_HASH address with layer/tree/keypair/chain set;
 *        the hash position field is managed by this function
 */
void genChain(uint8_t *out, const uint8_t *in, uint32_t start,
              uint32_t steps, const Context &ctx, Address &adrs);

/**
 * Derive the secret chain start value for chain @p chain.
 * @param adrs a WOTS_PRF address with layer/tree/keypair set
 */
void wotsChainSk(uint8_t *out, const Context &ctx, Address &adrs,
                 uint32_t chain);

/**
 * Compute the WOTS+ compressed public key (the hypertree leaf) for
 * the keypair selected by @p leaf_adrs.
 * @param pk_out n bytes
 * @param leaf_adrs WOTS_HASH-style address with layer/tree/keypair set
 */
void wotsPkGen(uint8_t *pk_out, const Context &ctx,
               const Address &leaf_adrs);

/**
 * Compute @p count consecutive WOTS+ compressed public keys (the leaf
 * layer slice starting at keypair @p leaf0) with all count * len hash
 * chains advanced in lockstep lane batches of the dispatched width
 * (16 on AVX-512, 8 elsewhere) — the hot path of signing (~90% of
 * compressions). Byte-identical to count wotsPkGen calls at every
 * width.
 * @param pk_out count * n bytes
 * @param count 1..maxHashLanes leaves
 */
void wotsPkGenXN(uint8_t *pk_out, const Context &ctx, uint32_t layer,
                 uint64_t tree, uint32_t leaf0, unsigned count);

/**
 * One WOTS+ leaf of pooled hash work: generate the compressed public
 * key for keypair @p keypair of subtree (layer, tree), optionally
 * capturing the signature chain values on the way. The leaves of one
 * wotsLeafBatch() call may come from different layers, trees and
 * signatures — each request carries its own addressing — which is
 * what lets the cross-signature LaneScheduler keep the hash lanes
 * full on parameter shapes whose subtrees are narrower than the lane
 * width.
 *
 * When @p sigOut is set, @p lengths must point at the wotsLen()
 * chain-length digits of the message this keypair signs; sigOut[i]
 * receives the chain-i value at position lengths[i] — exactly the
 * bytes wotsSign() produces, captured for free while the chains run
 * to w-1 for the leaf, so the signing leaf costs no separate
 * chain-walk.
 */
struct WotsLeafReq
{
    uint32_t layer = 0;
    uint64_t tree = 0;
    uint32_t keypair = 0;
    uint8_t *leafOut = nullptr;      ///< n bytes: compressed pk
    uint8_t *sigOut = nullptr;       ///< optional, wotsSigBytes()
    const uint32_t *lengths = nullptr; ///< wotsLen() capture positions
};

/**
 * Generate @p count WOTS+ leaves described by @p reqs with every hash
 * pooled across requests: chain-start PRFs, chain steps and the final
 * T_len compressions all run in lane batches of the dispatched width,
 * maxHashLanes leaves per internal sub-batch. Leaf and captured
 * signature bytes are identical to per-leaf wotsPkGen()/wotsSign()
 * calls at every width. @p count is unbounded.
 */
void wotsLeafBatch(const Context &ctx, const WotsLeafReq reqs[],
                   unsigned count);

/**
 * Sign an n-byte message (a root) with the selected WOTS+ keypair.
 * @param sig out, wotsSigBytes() = len * n
 */
void wotsSign(uint8_t *sig, const uint8_t *msg, const Context &ctx,
              const Address &leaf_adrs);

/**
 * Recompute the compressed public key from a signature (verification
 * direction).
 */
void wotsPkFromSig(uint8_t *pk_out, const uint8_t *sig,
                   const uint8_t *msg, const Context &ctx,
                   const Address &leaf_adrs);

/**
 * Recompute up to maxHashLanes compressed public keys from signatures
 * in one lockstep pass — the hot loop of batched verification. All
 * count * len ragged chains advance together in lanes of the
 * dispatched width (lanes retire early and refill), and the final
 * T_len compressions run one per lane. The signatures may sit in
 * different hypertree positions (each lane has its own address) but
 * must share one context / parameter set. Byte-identical to count
 * wotsPkFromSig calls at every width.
 *
 * @param pk_out count pointers to n-byte outputs
 * @param sig count pointers to wotsSigBytes() signatures
 * @param msg count pointers to the n-byte signed roots
 * @param leaf_adrs count addresses with layer/tree/keypair set
 * @param count active lanes, 1..maxHashLanes
 */
void wotsPkFromSigXN(uint8_t *const pk_out[], const uint8_t *const sig[],
                     const uint8_t *const msg[], const Context &ctx,
                     const Address leaf_adrs[], unsigned count);

} // namespace herosign::sphincs

#endif // HEROSIGN_SPHINCS_WOTS_HH
