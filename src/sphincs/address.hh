/**
 * @file
 * SPHINCS+ hash-function addressing scheme (ADRS).
 *
 * A 32-byte structure that makes every hash call in the hypertree
 * domain-separated. For the SHA-256 instantiation a compressed 22-byte
 * form is fed to the hash (layer 1B | tree 8B | type 1B | 12B of
 * type-specific words).
 */

#ifndef HEROSIGN_SPHINCS_ADDRESS_HH
#define HEROSIGN_SPHINCS_ADDRESS_HH

#include <array>
#include <cstdint>

#include "common/bytes.hh"

namespace herosign::sphincs
{

/** ADRS type constants (spec §2.7.3 + v3.1 PRF types). */
enum class AddrType : uint32_t
{
    WotsHash = 0,
    WotsPk = 1,
    Tree = 2,
    ForsTree = 3,
    ForsRoots = 4,
    WotsPrf = 5,
    ForsPrf = 6,
};

/** A 32-byte SPHINCS+ hash address. */
class Address
{
  public:
    static constexpr size_t fullSize = 32;
    static constexpr size_t compressedSize = 22;

    Address() { bytes_.fill(0); }

    /** Set the hypertree layer (word 0). */
    void setLayer(uint32_t layer);

    /** Set the 64-bit tree index (low 8 bytes of the 12-byte field). */
    void setTree(uint64_t tree);

    /**
     * Set the address type. Per the spec, changing the type zeroes the
     * three type-specific words.
     */
    void setType(AddrType type);

    /** Keypair index within the subtree (WOTS/FORS addresses). */
    void setKeypair(uint32_t keypair);

    /** WOTS chain index. */
    void setChain(uint32_t chain);

    /** WOTS position within the chain. */
    void setHash(uint32_t hash);

    /** Node height inside a Merkle tree (Tree/ForsTree addresses). */
    void setTreeHeight(uint32_t height);

    /** Node index inside a Merkle tree level. */
    void setTreeIndex(uint32_t index);

    uint32_t layer() const { return loadBe32(bytes_.data()); }
    uint64_t tree() const { return loadBe64(bytes_.data() + 8); }
    AddrType type() const
    {
        return static_cast<AddrType>(loadBe32(bytes_.data() + 16));
    }
    uint32_t keypair() const { return loadBe32(bytes_.data() + 20); }
    uint32_t chain() const { return loadBe32(bytes_.data() + 24); }
    uint32_t hash() const { return loadBe32(bytes_.data() + 28); }
    uint32_t treeHeight() const { return loadBe32(bytes_.data() + 24); }
    uint32_t treeIndex() const { return loadBe32(bytes_.data() + 28); }

    /** Copy the layer + tree fields (bytes 0..15) from @p other. */
    void copySubtree(const Address &other);

    /** Copy layer + tree + keypair from @p other. */
    void copyKeypair(const Address &other);

    /** The full 32-byte encoding. */
    ByteSpan full() const { return ByteSpan(bytes_.data(), fullSize); }

    /** The 22-byte compressed encoding for SHA-256 tweaks. */
    std::array<uint8_t, compressedSize> compressed() const;

    bool operator==(const Address &other) const
    {
        return bytes_ == other.bytes_;
    }

  private:
    std::array<uint8_t, fullSize> bytes_;
};

} // namespace herosign::sphincs

#endif // HEROSIGN_SPHINCS_ADDRESS_HH
