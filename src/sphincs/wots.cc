#include "sphincs/wots.hh"

#include <algorithm>
#include <stdexcept>

#include "sphincs/thash.hh"
#include "sphincs/thashx.hh"

namespace herosign::sphincs
{

namespace
{

/**
 * Split @p in into consecutive lgW-bit digits, MSB first.
 */
void
baseW(uint32_t *out, size_t out_len, const uint8_t *in, unsigned lg_w)
{
    size_t in_idx = 0;
    unsigned bits = 0;
    uint8_t total = 0;
    for (size_t i = 0; i < out_len; ++i) {
        if (bits == 0) {
            total = in[in_idx++];
            bits = 8;
        }
        bits -= lg_w;
        out[i] = (total >> bits) & ((1u << lg_w) - 1);
    }
}

/**
 * Upper bound on chains advanced together: maxHashLanes leaves of len
 * chains.
 */
constexpr unsigned maxBatchChains = maxHashLanes * maxWotsLen;

/**
 * Advance @p num independent WOTS+ chains in lockstep lanes of the
 * dispatched width W (hashLaneWidth(): 16 on AVX-512, 8 elsewhere).
 * Chain c steps its value vals[c] (n bytes, in place) from position
 * pos[c] to end[c]; adrs[c] must have layer/tree/type/keypair/chain
 * set (the hash position is managed here). Lanes retire as chains
 * reach their end and are refilled from the pending chains, so lanes
 * stay full while at least W chains remain; the ragged tail falls
 * back to narrower kernels and scalar calls, keeping digests and
 * compression counts identical to the scalar path.
 *
 * When @p cap_out is non-null, chain c with cap_out[c] set copies its
 * value to cap_out[c] the moment its position reaches cap_pos[c]
 * (including a position already at the capture point on entry). The
 * chain keeps advancing to end[c] afterwards — this is how a signing
 * leaf's wotsSign() bytes fall out of its pk-generation walk.
 */
void
advanceChains(uint8_t *const vals[], Address adrs[], uint32_t pos[],
              const uint32_t end[], unsigned num, const Context &ctx,
              uint8_t *const cap_out[] = nullptr,
              const uint32_t cap_pos[] = nullptr)
{
    const unsigned n = ctx.params().n;
    unsigned active[maxBatchChains];
    unsigned nactive = 0;
    for (unsigned c = 0; c < num; ++c) {
        if (cap_out && cap_out[c] && pos[c] == cap_pos[c])
            std::memcpy(cap_out[c], vals[c], n);
        if (pos[c] < end[c])
            active[nactive++] = c;
    }

    const unsigned width = hashLaneWidth();
    Address lane_adrs[maxHashLanes];
    uint8_t *outs[maxHashLanes];
    const uint8_t *ins[maxHashLanes];
    while (nactive > 0) {
        const unsigned m = std::min(nactive, width);
        for (unsigned j = 0; j < m; ++j) {
            const unsigned c = active[j];
            adrs[c].setHash(pos[c]);
            lane_adrs[j] = adrs[c];
            outs[j] = vals[c];
            ins[j] = vals[c];
        }
        thashFX(outs, ctx, lane_adrs, ins, m);

        // Retire finished lanes, compacting survivors to the front so
        // pending chains slot in next round.
        unsigned w = 0;
        for (unsigned j = 0; j < m; ++j) {
            const unsigned c = active[j];
            ++pos[c];
            if (cap_out && cap_out[c] && pos[c] == cap_pos[c])
                std::memcpy(cap_out[c], vals[c], n);
            if (pos[c] < end[c])
                active[w++] = c;
        }
        for (unsigned j = m; j < nactive; ++j)
            active[w++] = active[j];
        nactive = w;
    }
}

/**
 * Derive the secret chain-start values for chains [0, num) described
 * by @p adrs (WOTS_PRF addresses, hash position 0), one dispatched
 * lane width per PRF batch, into vals[c].
 */
void
deriveChainSks(uint8_t *const vals[], const Address adrs[], unsigned num,
               const Context &ctx)
{
    const unsigned width = hashLaneWidth();
    uint8_t *outs[maxHashLanes];
    Address lane_adrs[maxHashLanes];
    for (unsigned g = 0; g < num; g += width) {
        const unsigned m = std::min(width, num - g);
        for (unsigned j = 0; j < m; ++j) {
            lane_adrs[j] = adrs[g + j];
            outs[j] = vals[g + j];
        }
        prfAddrX(outs, ctx, lane_adrs, m);
    }
}

} // namespace

void
chainLengths(uint32_t *lengths, const Params &params, const uint8_t *msg)
{
    const unsigned lg_w = params.lgW();
    const unsigned len1 = params.wotsLen1();
    const unsigned len2 = params.wotsLen2();

    baseW(lengths, len1, msg, lg_w);

    // Checksum over the message digits.
    uint32_t csum = 0;
    for (unsigned i = 0; i < len1; ++i)
        csum += params.wotsW - 1 - lengths[i];

    // Left-shift so the checksum occupies whole base-w digits from the
    // most significant bit of its byte string.
    csum <<= (8 - (len2 * lg_w) % 8) % 8;
    uint8_t csum_bytes[8];
    const size_t csum_len = (len2 * lg_w + 7) / 8;
    toByte(csum_bytes, csum, csum_len);
    baseW(lengths + len1, len2, csum_bytes, lg_w);
}

void
genChain(uint8_t *out, const uint8_t *in, uint32_t start, uint32_t steps,
         const Context &ctx, Address &adrs)
{
    const unsigned n = ctx.params().n;
    if (out != in)
        std::memcpy(out, in, n);
    for (uint32_t i = start; i < start + steps; ++i) {
        adrs.setHash(i);
        thashF(out, ctx, adrs, out);
    }
}

void
wotsChainSk(uint8_t *out, const Context &ctx, Address &adrs,
            uint32_t chain)
{
    adrs.setChain(chain);
    adrs.setHash(0);
    prfAddr(out, ctx, adrs);
}

void
wotsLeafBatch(const Context &ctx, const WotsLeafReq reqs[],
              unsigned count)
{
    const Params &p = ctx.params();
    const unsigned len = p.wotsLen();
    const unsigned n = p.n;

    // Chain c (= local leaf * len + i) lives at chains + c * n, so
    // each leaf's chains stay contiguous for its T_len compression.
    uint8_t chains[maxBatchChains * maxN];
    uint8_t *vals[maxBatchChains] = {};
    Address adrs[maxBatchChains];
    uint32_t pos[maxBatchChains];
    uint32_t end[maxBatchChains];
    uint8_t *cap_out[maxBatchChains];
    uint32_t cap_pos[maxBatchChains];

    for (unsigned base = 0; base < count; base += maxHashLanes) {
        const unsigned m = std::min(maxHashLanes, count - base);
        const unsigned total = m * len;
        bool any_capture = false;

        for (unsigned j = 0; j < m; ++j) {
            const WotsLeafReq &r = reqs[base + j];
            Address prf_base;
            prf_base.setLayer(r.layer);
            prf_base.setTree(r.tree);
            prf_base.setType(AddrType::WotsPrf);
            prf_base.setKeypair(r.keypair);
            for (unsigned i = 0; i < len; ++i) {
                const unsigned c = j * len + i;
                vals[c] = chains + static_cast<size_t>(c) * n;
                adrs[c] = prf_base;
                adrs[c].setChain(i);
                adrs[c].setHash(0);
                if (r.sigOut) {
                    any_capture = true;
                    cap_out[c] = r.sigOut + static_cast<size_t>(i) * n;
                    cap_pos[c] = r.lengths[i];
                } else {
                    cap_out[c] = nullptr;
                    cap_pos[c] = 0;
                }
            }
        }
        deriveChainSks(vals, adrs, total, ctx);

        // All m * len chains advance the full w-1 steps in lockstep;
        // capture chains copy out their signature value in passing.
        for (unsigned j = 0; j < m; ++j) {
            const WotsLeafReq &r = reqs[base + j];
            Address hash_base;
            hash_base.setLayer(r.layer);
            hash_base.setTree(r.tree);
            hash_base.setType(AddrType::WotsHash);
            hash_base.setKeypair(r.keypair);
            for (unsigned i = 0; i < len; ++i) {
                const unsigned c = j * len + i;
                adrs[c] = hash_base;
                adrs[c].setChain(i);
                pos[c] = 0;
                end[c] = p.wotsW - 1;
            }
        }
        advanceChains(vals, adrs, pos, end, total, ctx,
                      any_capture ? cap_out : nullptr,
                      any_capture ? cap_pos : nullptr);

        // Compress each leaf's public key, batched across leaves.
        Address pk_adrs[maxHashLanes];
        uint8_t *pks[maxHashLanes];
        const uint8_t *ins[maxHashLanes];
        for (unsigned j = 0; j < m; ++j) {
            const WotsLeafReq &r = reqs[base + j];
            pk_adrs[j].setLayer(r.layer);
            pk_adrs[j].setTree(r.tree);
            pk_adrs[j].setType(AddrType::WotsPk);
            pk_adrs[j].setKeypair(r.keypair);
            pks[j] = r.leafOut;
            ins[j] = chains + static_cast<size_t>(j) * len * n;
        }
        thashX(pks, ctx, pk_adrs, ins, static_cast<size_t>(len) * n, m);
    }
}

void
wotsPkGenXN(uint8_t *pk_out, const Context &ctx, uint32_t layer,
            uint64_t tree, uint32_t leaf0, unsigned count)
{
    if (count == 0 || count > maxHashLanes)
        throw std::invalid_argument("wotsPkGenXN: count must be 1..16");
    const unsigned n = ctx.params().n;
    WotsLeafReq reqs[maxHashLanes];
    for (unsigned j = 0; j < count; ++j) {
        reqs[j].layer = layer;
        reqs[j].tree = tree;
        reqs[j].keypair = leaf0 + j;
        reqs[j].leafOut = pk_out + static_cast<size_t>(j) * n;
    }
    wotsLeafBatch(ctx, reqs, count);
}

void
wotsPkGen(uint8_t *pk_out, const Context &ctx, const Address &leaf_adrs)
{
    wotsPkGenXN(pk_out, ctx, leaf_adrs.layer(), leaf_adrs.tree(),
                leaf_adrs.keypair(), 1);
}

void
wotsSign(uint8_t *sig, const uint8_t *msg, const Context &ctx,
         const Address &leaf_adrs)
{
    const Params &p = ctx.params();
    const unsigned len = p.wotsLen();
    const unsigned n = p.n;

    uint32_t lengths[maxWotsLen];
    chainLengths(lengths, p, msg);

    uint8_t *vals[maxWotsLen] = {};
    Address adrs[maxWotsLen];
    uint32_t pos[maxWotsLen];

    Address prf_base = leaf_adrs;
    prf_base.setType(AddrType::WotsPrf);
    prf_base.setKeypair(leaf_adrs.keypair());
    for (unsigned i = 0; i < len; ++i) {
        vals[i] = sig + static_cast<size_t>(i) * n;
        adrs[i] = prf_base;
        adrs[i].setChain(i);
        adrs[i].setHash(0);
    }
    deriveChainSks(vals, adrs, len, ctx);

    // Ragged chain lengths: lanes retire early and refill.
    Address hash_base = leaf_adrs;
    hash_base.setType(AddrType::WotsHash);
    hash_base.setKeypair(leaf_adrs.keypair());
    for (unsigned i = 0; i < len; ++i) {
        adrs[i] = hash_base;
        adrs[i].setChain(i);
        pos[i] = 0;
    }
    advanceChains(vals, adrs, pos, lengths, len, ctx);
}

void
wotsPkFromSigXN(uint8_t *const pk_out[], const uint8_t *const sig[],
                const uint8_t *const msg[], const Context &ctx,
                const Address leaf_adrs[], unsigned count)
{
    if (count == 0 || count > maxHashLanes)
        throw std::invalid_argument(
            "wotsPkFromSigXN: count must be 1..16");
    const Params &p = ctx.params();
    const unsigned len = p.wotsLen();
    const unsigned n = p.n;
    const unsigned total = count * len;

    // Chain c (= lane * len + i) lives at chains + c * n, so each
    // lane's recomputed chain heads stay contiguous for its T_len
    // compression.
    uint8_t chains[maxBatchChains * maxN];
    uint8_t *vals[maxBatchChains] = {};
    Address adrs[maxBatchChains];
    uint32_t pos[maxBatchChains];
    uint32_t end[maxBatchChains];

    for (unsigned l = 0; l < count; ++l) {
        uint32_t lengths[maxWotsLen];
        chainLengths(lengths, p, msg[l]);
        std::memcpy(chains + static_cast<size_t>(l) * len * n, sig[l],
                    static_cast<size_t>(len) * n);

        Address hash_base = leaf_adrs[l];
        hash_base.setType(AddrType::WotsHash);
        hash_base.setKeypair(leaf_adrs[l].keypair());
        for (unsigned i = 0; i < len; ++i) {
            const unsigned c = l * len + i;
            vals[c] = chains + static_cast<size_t>(c) * n;
            adrs[c] = hash_base;
            adrs[c].setChain(i);
            pos[c] = lengths[i];
            end[c] = p.wotsW - 1;
        }
    }
    advanceChains(vals, adrs, pos, end, total, ctx);

    // One T_len public-key compression per lane, batched.
    Address pk_adrs[maxHashLanes];
    const uint8_t *ins[maxHashLanes];
    for (unsigned l = 0; l < count; ++l) {
        pk_adrs[l] = leaf_adrs[l];
        pk_adrs[l].setType(AddrType::WotsPk);
        pk_adrs[l].setKeypair(leaf_adrs[l].keypair());
        ins[l] = chains + static_cast<size_t>(l) * len * n;
    }
    thashX(pk_out, ctx, pk_adrs, ins, static_cast<size_t>(len) * n,
           count);
}

void
wotsPkFromSig(uint8_t *pk_out, const uint8_t *sig, const uint8_t *msg,
              const Context &ctx, const Address &leaf_adrs)
{
    const Params &p = ctx.params();
    const unsigned len = p.wotsLen();
    const unsigned n = p.n;

    uint32_t lengths[maxWotsLen];
    chainLengths(lengths, p, msg);

    uint8_t chains[maxWotsLen * maxN];
    std::memcpy(chains, sig, static_cast<size_t>(len) * n);

    uint8_t *vals[maxWotsLen] = {};
    Address adrs[maxWotsLen];
    uint32_t end[maxWotsLen];

    Address hash_base = leaf_adrs;
    hash_base.setType(AddrType::WotsHash);
    hash_base.setKeypair(leaf_adrs.keypair());
    for (unsigned i = 0; i < len; ++i) {
        vals[i] = chains + static_cast<size_t>(i) * n;
        adrs[i] = hash_base;
        adrs[i].setChain(i);
        end[i] = p.wotsW - 1;
    }
    advanceChains(vals, adrs, lengths, end, len, ctx);

    Address pk_adrs = leaf_adrs;
    pk_adrs.setType(AddrType::WotsPk);
    pk_adrs.setKeypair(leaf_adrs.keypair());
    thash(pk_out, ctx, pk_adrs, ByteSpan(chains, len * n));
}

} // namespace herosign::sphincs
