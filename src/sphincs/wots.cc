#include "sphincs/wots.hh"

#include "sphincs/thash.hh"

namespace herosign::sphincs
{

namespace
{

/**
 * Split @p in into consecutive lgW-bit digits, MSB first.
 */
void
baseW(uint32_t *out, size_t out_len, const uint8_t *in, unsigned lg_w)
{
    size_t in_idx = 0;
    unsigned bits = 0;
    uint8_t total = 0;
    for (size_t i = 0; i < out_len; ++i) {
        if (bits == 0) {
            total = in[in_idx++];
            bits = 8;
        }
        bits -= lg_w;
        out[i] = (total >> bits) & ((1u << lg_w) - 1);
    }
}

} // namespace

void
chainLengths(uint32_t *lengths, const Params &params, const uint8_t *msg)
{
    const unsigned lg_w = params.lgW();
    const unsigned len1 = params.wotsLen1();
    const unsigned len2 = params.wotsLen2();

    baseW(lengths, len1, msg, lg_w);

    // Checksum over the message digits.
    uint32_t csum = 0;
    for (unsigned i = 0; i < len1; ++i)
        csum += params.wotsW - 1 - lengths[i];

    // Left-shift so the checksum occupies whole base-w digits from the
    // most significant bit of its byte string.
    csum <<= (8 - (len2 * lg_w) % 8) % 8;
    uint8_t csum_bytes[8];
    const size_t csum_len = (len2 * lg_w + 7) / 8;
    toByte(csum_bytes, csum, csum_len);
    baseW(lengths + len1, len2, csum_bytes, lg_w);
}

void
genChain(uint8_t *out, const uint8_t *in, uint32_t start, uint32_t steps,
         const Context &ctx, Address &adrs)
{
    const unsigned n = ctx.params().n;
    if (out != in)
        std::memcpy(out, in, n);
    for (uint32_t i = start; i < start + steps; ++i) {
        adrs.setHash(i);
        thashF(out, ctx, adrs, out);
    }
}

void
wotsChainSk(uint8_t *out, const Context &ctx, Address &adrs,
            uint32_t chain)
{
    adrs.setChain(chain);
    adrs.setHash(0);
    prfAddr(out, ctx, adrs);
}

void
wotsPkGen(uint8_t *pk_out, const Context &ctx, const Address &leaf_adrs)
{
    const Params &p = ctx.params();
    const unsigned len = p.wotsLen();
    const unsigned n = p.n;

    Address prf_adrs = leaf_adrs;
    prf_adrs.setType(AddrType::WotsPrf);
    prf_adrs.setKeypair(leaf_adrs.keypair());
    Address hash_adrs = leaf_adrs;
    hash_adrs.setType(AddrType::WotsHash);
    hash_adrs.setKeypair(leaf_adrs.keypair());

    uint8_t chains[maxWotsLen * maxN];
    for (unsigned i = 0; i < len; ++i) {
        uint8_t sk[maxN];
        wotsChainSk(sk, ctx, prf_adrs, i);
        hash_adrs.setChain(i);
        genChain(chains + i * n, sk, 0, p.wotsW - 1, ctx, hash_adrs);
    }

    Address pk_adrs = leaf_adrs;
    pk_adrs.setType(AddrType::WotsPk);
    pk_adrs.setKeypair(leaf_adrs.keypair());
    thash(pk_out, ctx, pk_adrs, ByteSpan(chains, len * n));
}

void
wotsSign(uint8_t *sig, const uint8_t *msg, const Context &ctx,
         const Address &leaf_adrs)
{
    const Params &p = ctx.params();
    const unsigned len = p.wotsLen();
    const unsigned n = p.n;

    uint32_t lengths[maxWotsLen];
    chainLengths(lengths, p, msg);

    Address prf_adrs = leaf_adrs;
    prf_adrs.setType(AddrType::WotsPrf);
    prf_adrs.setKeypair(leaf_adrs.keypair());
    Address hash_adrs = leaf_adrs;
    hash_adrs.setType(AddrType::WotsHash);
    hash_adrs.setKeypair(leaf_adrs.keypair());

    for (unsigned i = 0; i < len; ++i) {
        uint8_t sk[maxN];
        wotsChainSk(sk, ctx, prf_adrs, i);
        hash_adrs.setChain(i);
        genChain(sig + i * n, sk, 0, lengths[i], ctx, hash_adrs);
    }
}

void
wotsPkFromSig(uint8_t *pk_out, const uint8_t *sig, const uint8_t *msg,
              const Context &ctx, const Address &leaf_adrs)
{
    const Params &p = ctx.params();
    const unsigned len = p.wotsLen();
    const unsigned n = p.n;

    uint32_t lengths[maxWotsLen];
    chainLengths(lengths, p, msg);

    Address hash_adrs = leaf_adrs;
    hash_adrs.setType(AddrType::WotsHash);
    hash_adrs.setKeypair(leaf_adrs.keypair());

    uint8_t chains[maxWotsLen * maxN];
    for (unsigned i = 0; i < len; ++i) {
        hash_adrs.setChain(i);
        genChain(chains + i * n, sig + i * n, lengths[i],
                 p.wotsW - 1 - lengths[i], ctx, hash_adrs);
    }

    Address pk_adrs = leaf_adrs;
    pk_adrs.setType(AddrType::WotsPk);
    pk_adrs.setKeypair(leaf_adrs.keypair());
    thash(pk_out, ctx, pk_adrs, ByteSpan(chains, len * n));
}

} // namespace herosign::sphincs
