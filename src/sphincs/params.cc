#include "sphincs/params.hh"

#include <stdexcept>

namespace herosign::sphincs
{

unsigned
Params::lgW() const
{
    unsigned lg = 0;
    unsigned v = wotsW;
    while (v > 1) {
        v >>= 1;
        ++lg;
    }
    return lg;
}

unsigned
Params::wotsLen1() const
{
    return (8 * n + lgW() - 1) / lgW();
}

unsigned
Params::wotsLen2() const
{
    // Smallest len2 with w^len2 > len1 * (w - 1); the spec's closed
    // form floor(log2(len1*(w-1)) / lg(w)) + 1.
    unsigned lg = lgW();
    uint64_t limit = static_cast<uint64_t>(wotsLen1()) * (wotsW - 1);
    unsigned bits = 0;
    while ((limit >> bits) != 0)
        ++bits;
    // bits == floor(log2(limit)) + 1.
    return (bits - 1) / lg + 1;
}

size_t
Params::msgDigestBytes() const
{
    return forsMsgBytes() + (treeBits() + 7) / 8 + (leafBits() + 7) / 8;
}

void
Params::validate() const
{
    if (n == 0 || n > maxN)
        throw std::invalid_argument("Params: n out of range");
    if (wotsW != 16)
        throw std::invalid_argument("Params: only w = 16 is supported");
    if (layers == 0 || fullHeight % layers != 0)
        throw std::invalid_argument("Params: d must divide h");
    if (treeHeight() == 0 || treeHeight() > maxTreeHeight)
        throw std::invalid_argument("Params: tree height out of range");
    if (forsHeight == 0 || forsHeight > maxForsHeight)
        throw std::invalid_argument("Params: FORS height out of range");
    if (forsTrees == 0 || forsTrees > 64)
        throw std::invalid_argument("Params: k out of range (1..64)");
    if (wotsLen() > maxWotsLen)
        throw std::invalid_argument("Params: WOTS len exceeds bound");
    if (treeBits() > 64)
        throw std::invalid_argument("Params: tree index exceeds 64 bits");
}

const Params &
Params::sphincs128f()
{
    static const Params p{"SPHINCS+-128f", 16, 66, 22, 6, 33, 16};
    return p;
}

const Params &
Params::sphincs192f()
{
    static const Params p{"SPHINCS+-192f", 24, 66, 22, 8, 33, 16};
    return p;
}

const Params &
Params::sphincs256f()
{
    static const Params p{"SPHINCS+-256f", 32, 68, 17, 9, 35, 16};
    return p;
}

const std::vector<Params> &
Params::all()
{
    static const std::vector<Params> sets = {
        sphincs128f(), sphincs192f(), sphincs256f(),
    };
    return sets;
}

const Params &
Params::byName(const std::string &name)
{
    for (const auto &p : all()) {
        if (p.name == name || p.name == "SPHINCS+-" + name)
            return p;
    }
    throw std::invalid_argument("Params: unknown parameter set " + name);
}

} // namespace herosign::sphincs
