/**
 * @file
 * FORS — Forest of Random Subsets (spec §5). k Merkle trees of height
 * a; the message digest selects one leaf per tree. Each tree is
 * independent, the property HERO-Sign's FORS Fusion builds on
 * (paper §III-B).
 */

#ifndef HEROSIGN_SPHINCS_FORS_HH
#define HEROSIGN_SPHINCS_FORS_HH

#include "common/bytes.hh"
#include "sphincs/address.hh"
#include "sphincs/context.hh"

namespace herosign::sphincs
{

/**
 * Extract the k FORS leaf indices (a bits each, MSB first) from the
 * message-hash prefix.
 * @param indices out, k entries in [0, 2^a)
 * @param mhash at least forsMsgBytes() bytes
 */
void messageToIndices(uint32_t *indices, const Params &params,
                      const uint8_t *mhash);

/**
 * Derive the FORS secret leaf value at absolute leaf index @p idx
 * (idx = tree * t + leaf).
 * @param fors_adrs ForsTree-typed address with layer/tree/keypair set
 */
void forsSkGen(uint8_t *out, const Context &ctx, const Address &fors_adrs,
               uint32_t idx);

/**
 * Compute the FORS leaf (F of the secret value) at absolute index
 * @p idx.
 */
void forsGenLeaf(uint8_t *out, const Context &ctx,
                 const Address &fors_adrs, uint32_t idx);

/**
 * Compute @p count consecutive FORS leaves (absolute indices idx0 ..
 * idx0 + count - 1, count <= maxHashLanes) into @p out, running the
 * PRF and F calls across hash-lane batches of the dispatched width.
 * Byte-identical to count forsGenLeaf calls at every width.
 * @param out count * n bytes
 */
void forsGenLeavesXN(uint8_t *out, const Context &ctx,
                     const Address &fors_adrs, uint32_t idx0,
                     unsigned count);

/**
 * One FORS leaf of pooled hash work: leaf @p idx (absolute index,
 * tree * t + position) of the forest addressed by @p adrs, written to
 * @p out. Requests in one forsLeafBatch() call may come from
 * different trees, keypairs and signatures — each carries its own
 * base address — so the cross-signature LaneScheduler can fill hash
 * lanes across in-flight signatures.
 */
struct ForsLeafReq
{
    Address adrs;          ///< ForsTree-typed, layer/tree/keypair set
    uint32_t idx = 0;      ///< absolute leaf index
    uint8_t *out = nullptr; ///< n bytes
};

/**
 * Compute @p count FORS leaves described by @p reqs, pooling the PRF
 * and F calls into lane batches of the dispatched width
 * (maxHashLanes leaves per internal sub-batch). Byte-identical to
 * per-leaf forsGenLeaf() calls at every width. @p count is unbounded.
 */
void forsLeafBatch(const Context &ctx, const ForsLeafReq reqs[],
                   unsigned count);

/**
 * FORS signature: for each of the k trees, the selected secret value
 * followed by its authentication path.
 * @param sig out, forsSigBytes()
 * @param pk_out out, n bytes: the FORS public key (root compression),
 *        which is the message signed by the bottom hypertree layer
 * @param mhash the message-digest prefix (forsMsgBytes() bytes)
 * @param fors_adrs ForsTree-typed address with layer(0)/tree/keypair
 */
void forsSign(uint8_t *sig, uint8_t *pk_out, const uint8_t *mhash,
              const Context &ctx, const Address &fors_adrs);

/**
 * Verification direction: recompute the FORS public key from a
 * signature.
 */
void forsPkFromSig(uint8_t *pk_out, const uint8_t *sig,
                   const uint8_t *mhash, const Context &ctx,
                   const Address &fors_adrs);

/**
 * Batched verification direction for up to maxHashLanes signatures
 * sharing one context: all count * k revealed leaves hash in batches
 * of the dispatched lane width and the count * k independent
 * auth-path walks (equal height a) climb in lockstep lanes, followed
 * by one batched root compression per lane. Lanes may select
 * different hypertree positions (per-lane address). Byte-identical to
 * count forsPkFromSig calls at every width.
 *
 * @param pk_out count pointers to n-byte FORS public keys
 * @param sig count pointers to forsSigBytes() signature blocks
 * @param mhash count pointers to forsMsgBytes() digest prefixes
 * @param fors_adrs count ForsTree-typed addresses with
 *        layer(0)/tree/keypair set
 * @param count active lanes, 1..maxHashLanes
 */
void forsPkFromSigXN(uint8_t *const pk_out[], const uint8_t *const sig[],
                     const uint8_t *const mhash[], const Context &ctx,
                     const Address fors_adrs[], unsigned count);

} // namespace herosign::sphincs

#endif // HEROSIGN_SPHINCS_FORS_HH
