#include "sphincs/merkle.hh"

#include <algorithm>
#include <stdexcept>

#include "sphincs/thash.hh"
#include "sphincs/thashx.hh"
#include "sphincs/wots.hh"

namespace herosign::sphincs
{

void
TreehashStream::begin(const Context &ctx, unsigned height,
                      uint32_t leaf_idx, uint32_t idx_offset,
                      uint8_t *auth_path, const Address &tree_adrs)
{
    if (height > maxHeight)
        throw std::invalid_argument(
            "TreehashStream: height exceeds bound");
    ctx_ = &ctx;
    adrs_ = tree_adrs;
    auth_ = auth_path;
    leafIdx_ = leaf_idx;
    idxOffset_ = idx_offset;
    next_ = 0;
    total_ = 1u << height;
    height_ = height;
    sp_ = 0;
}

void
TreehashStream::absorbOne(const uint8_t *leaf)
{
    const unsigned n = ctx_->params().n;
    const uint32_t idx = next_;
    uint8_t node[maxN];
    std::memcpy(node, leaf, n);

    unsigned node_height = 0;
    if (auth_ && (leafIdx_ ^ 1u) == idx)
        std::memcpy(auth_, node, n);

    while (sp_ > 0 && stackHeights_[sp_ - 1] == node_height) {
        // Combine the stacked left sibling with this node.
        adrs_.setTreeHeight(node_height + 1);
        adrs_.setTreeIndex((idx >> (node_height + 1)) +
                           (idxOffset_ >> (node_height + 1)));
        const uint8_t *left = stack_ + static_cast<size_t>(sp_ - 1) * n;
        thashH(node, *ctx_, adrs_, left, node);
        --sp_;
        ++node_height;

        if (auth_ && ((leafIdx_ >> node_height) ^ 1u) ==
                         (idx >> node_height)) {
            std::memcpy(auth_ + node_height * n, node, n);
        }
    }
    std::memcpy(stack_ + static_cast<size_t>(sp_) * n, node, n);
    stackHeights_[sp_] = node_height;
    ++sp_;
    ++next_;
}

void
TreehashStream::absorb(const uint8_t *leaves, uint32_t count)
{
    if (!ctx_)
        throw std::logic_error("TreehashStream: absorb before begin");
    if (next_ + count > total_)
        throw std::invalid_argument(
            "TreehashStream: absorbing past the leaf count");
    const unsigned n = ctx_->params().n;
    for (uint32_t i = 0; i < count; ++i)
        absorbOne(leaves + static_cast<size_t>(i) * n);
}

const uint8_t *
TreehashStream::root() const
{
    if (!done())
        throw std::logic_error(
            "TreehashStream: root before all leaves absorbed");
    return stack_;
}

void
TreehashStream::absorbLockstep(TreehashStream *const streams[],
                               const uint8_t *const leaves[],
                               unsigned count)
{
    if (count == 0 || count > maxHashLanes)
        throw std::invalid_argument(
            "TreehashStream::absorbLockstep: count must be 1..16");
    const TreehashStream &lead = *streams[0];
    if (!lead.ctx_)
        throw std::logic_error(
            "TreehashStream: absorbLockstep before begin");
    for (unsigned l = 1; l < count; ++l) {
        if (streams[l]->ctx_ != lead.ctx_ ||
            streams[l]->height_ != lead.height_ ||
            streams[l]->next_ != lead.next_)
            throw std::invalid_argument(
                "TreehashStream::absorbLockstep: streams must share "
                "context, height and absorbed count");
    }

    const unsigned n = lead.ctx_->params().n;
    const uint32_t idx = lead.next_;
    if (idx >= lead.total_)
        throw std::invalid_argument(
            "TreehashStream: absorbing past the leaf count");

    // Per-stream current node plus the left||right pair scratch each
    // batched combine hashes from.
    uint8_t nodes[maxHashLanes][maxN];
    uint8_t pairs[maxHashLanes][2 * maxN];
    Address adrs[maxHashLanes];
    uint8_t *outs[maxHashLanes];
    const uint8_t *ins[maxHashLanes];
    for (unsigned l = 0; l < count; ++l) {
        std::memcpy(nodes[l], leaves[l], n);
        TreehashStream &s = *streams[l];
        if (s.auth_ && (s.leafIdx_ ^ 1u) == idx)
            std::memcpy(s.auth_, nodes[l], n);
        outs[l] = nodes[l];
        ins[l] = pairs[l];
    }

    // Same-shape streams at the same position collapse identically,
    // so the cascade depth is shared and each level is one batch.
    unsigned node_height = 0;
    while (lead.sp_ > 0 &&
           lead.stackHeights_[lead.sp_ - 1] == node_height) {
        for (unsigned l = 0; l < count; ++l) {
            TreehashStream &s = *streams[l];
            s.adrs_.setTreeHeight(node_height + 1);
            s.adrs_.setTreeIndex((idx >> (node_height + 1)) +
                                 (s.idxOffset_ >> (node_height + 1)));
            adrs[l] = s.adrs_;
            const uint8_t *left =
                s.stack_ + static_cast<size_t>(s.sp_ - 1) * n;
            std::memcpy(pairs[l], left, n);
            std::memcpy(pairs[l] + n, nodes[l], n);
        }
        thashX(outs, *lead.ctx_, adrs, ins, 2 * static_cast<size_t>(n),
               count);
        ++node_height;
        for (unsigned l = 0; l < count; ++l) {
            TreehashStream &s = *streams[l];
            --s.sp_;
            if (s.auth_ && ((s.leafIdx_ >> node_height) ^ 1u) ==
                               (idx >> node_height))
                std::memcpy(s.auth_ + node_height * n, nodes[l], n);
        }
    }

    for (unsigned l = 0; l < count; ++l) {
        TreehashStream &s = *streams[l];
        std::memcpy(s.stack_ + static_cast<size_t>(s.sp_) * n, nodes[l],
                    n);
        s.stackHeights_[s.sp_] = node_height;
        ++s.sp_;
        ++s.next_;
    }
}

void
treehash(uint8_t *root, uint8_t *auth_path, const Context &ctx,
         uint32_t leaf_idx, uint32_t idx_offset, unsigned height,
         BatchLeafRef gen_leaves, Address &tree_adrs)
{
    const unsigned n = ctx.params().n;

    // One stream absorbing full lane-width leaf batches reproduces
    // the historical one-shot treehash hash for hash.
    TreehashStream stream;
    stream.begin(ctx, height, leaf_idx, idx_offset, auth_path,
                 tree_adrs);

    uint8_t leaf_buf[maxHashLanes * maxN];
    const uint32_t leaves = 1u << height;
    const uint32_t width = hashLaneWidth();
    for (uint32_t base = 0; base < leaves; base += width) {
        const uint32_t batch = std::min<uint32_t>(width, leaves - base);
        gen_leaves(leaf_buf, base, batch);
        stream.absorb(leaf_buf, batch);
    }
    std::memcpy(root, stream.root(), n);
}

void
treehash(uint8_t *root, uint8_t *auth_path, const Context &ctx,
         uint32_t leaf_idx, uint32_t idx_offset, unsigned height,
         const LeafFn &gen_leaf, Address &tree_adrs)
{
    const unsigned n = ctx.params().n;
    auto gen_leaves = [&](uint8_t *out, uint32_t leaf_start,
                          uint32_t count) {
        for (uint32_t j = 0; j < count; ++j)
            gen_leaf(out + static_cast<size_t>(j) * n, leaf_start + j);
    };
    treehash(root, auth_path, ctx, leaf_idx, idx_offset, height,
             gen_leaves, tree_adrs);
}

void
computeRoot(uint8_t *root, const Context &ctx, const uint8_t *leaf,
            uint32_t leaf_idx, uint32_t idx_offset,
            const uint8_t *auth_path, unsigned height, Address &tree_adrs)
{
    const unsigned n = ctx.params().n;
    uint8_t node[maxN];
    std::memcpy(node, leaf, n);

    for (unsigned h = 0; h < height; ++h) {
        tree_adrs.setTreeHeight(h + 1);
        tree_adrs.setTreeIndex((leaf_idx >> (h + 1)) +
                               (idx_offset >> (h + 1)));
        if ((leaf_idx >> h) & 1u)
            thashH(node, ctx, tree_adrs, auth_path + h * n, node);
        else
            thashH(node, ctx, tree_adrs, node, auth_path + h * n);
    }
    std::memcpy(root, node, n);
}

void
computeRootXN(uint8_t *const root[], const Context &ctx,
              const uint8_t *const leaf[], const uint32_t leaf_idx[],
              const uint32_t idx_offset[],
              const uint8_t *const auth_path[], unsigned height,
              Address tree_adrs[], unsigned count)
{
    if (count == 0 || count > maxHashLanes)
        throw std::invalid_argument(
            "computeRootXN: count must be 1..16");
    const unsigned n = ctx.params().n;

    // Current node per lane; the walks advance in lockstep because
    // every lane climbs the same number of levels.
    uint8_t nodes[maxHashLanes][maxN];
    uint8_t pairs[maxHashLanes][2 * maxN];
    uint8_t *outs[maxHashLanes];
    const uint8_t *ins[maxHashLanes];
    for (unsigned l = 0; l < count; ++l) {
        std::memcpy(nodes[l], leaf[l], n);
        outs[l] = nodes[l];
        ins[l] = pairs[l];
    }

    for (unsigned h = 0; h < height; ++h) {
        for (unsigned l = 0; l < count; ++l) {
            tree_adrs[l].setTreeHeight(h + 1);
            tree_adrs[l].setTreeIndex((leaf_idx[l] >> (h + 1)) +
                                      (idx_offset[l] >> (h + 1)));
            const uint8_t *sibling = auth_path[l] + h * n;
            if ((leaf_idx[l] >> h) & 1u) {
                std::memcpy(pairs[l], sibling, n);
                std::memcpy(pairs[l] + n, nodes[l], n);
            } else {
                std::memcpy(pairs[l], nodes[l], n);
                std::memcpy(pairs[l] + n, sibling, n);
            }
        }
        thashX(outs, ctx, tree_adrs, ins, 2 * n, count);
    }
    for (unsigned l = 0; l < count; ++l)
        std::memcpy(root[l], nodes[l], n);
}

void
wotsGenLeaf(uint8_t *leaf_out, const Context &ctx, uint32_t layer,
            uint64_t tree, uint32_t leaf_idx)
{
    wotsPkGenXN(leaf_out, ctx, layer, tree, leaf_idx, 1);
}

void
merkleSign(uint8_t *sig, uint8_t *root_out, const Context &ctx,
           uint32_t layer, uint64_t tree, uint32_t leaf_idx,
           const uint8_t *msg)
{
    const Params &p = ctx.params();

    Address wots_adrs;
    wots_adrs.setLayer(layer);
    wots_adrs.setTree(tree);
    wots_adrs.setType(AddrType::WotsHash);
    wots_adrs.setKeypair(leaf_idx);
    wotsSign(sig, msg, ctx, wots_adrs);

    Address tree_adrs;
    tree_adrs.setLayer(layer);
    tree_adrs.setTree(tree);
    tree_adrs.setType(AddrType::Tree);

    auto gen_leaves = [&](uint8_t *out, uint32_t leaf_start,
                          uint32_t count) {
        wotsPkGenXN(out, ctx, layer, tree, leaf_start, count);
    };
    treehash(root_out, sig + p.wotsSigBytes(), ctx, leaf_idx, 0,
             p.treeHeight(), gen_leaves, tree_adrs);
}

} // namespace herosign::sphincs
