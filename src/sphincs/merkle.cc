#include "sphincs/merkle.hh"

#include <vector>

#include "sphincs/thash.hh"
#include "sphincs/wots.hh"

namespace herosign::sphincs
{

void
treehash(uint8_t *root, uint8_t *auth_path, const Context &ctx,
         uint32_t leaf_idx, uint32_t idx_offset, unsigned height,
         const LeafFn &gen_leaf, Address &tree_adrs)
{
    const unsigned n = ctx.params().n;
    // Node stack: at most height+1 entries, each n bytes, plus the
    // height of each stacked node.
    std::vector<uint8_t> stack((height + 1) * n);
    std::vector<unsigned> stack_heights;
    stack_heights.reserve(height + 1);

    const uint32_t leaves = 1u << height;
    for (uint32_t idx = 0; idx < leaves; ++idx) {
        uint8_t node[maxN];
        gen_leaf(node, idx);

        unsigned node_height = 0;
        if (auth_path && (leaf_idx ^ 1u) == idx)
            std::memcpy(auth_path, node, n);

        while (!stack_heights.empty() &&
               stack_heights.back() == node_height) {
            // Combine the stacked left sibling with this node.
            tree_adrs.setTreeHeight(node_height + 1);
            tree_adrs.setTreeIndex((idx >> (node_height + 1)) +
                                   (idx_offset >> (node_height + 1)));
            const uint8_t *left =
                stack.data() + (stack_heights.size() - 1) * n;
            thashH(node, ctx, tree_adrs, left, node);
            stack_heights.pop_back();
            ++node_height;

            if (auth_path &&
                ((leaf_idx >> node_height) ^ 1u) == (idx >> node_height)) {
                std::memcpy(auth_path + node_height * n, node, n);
            }
        }
        std::memcpy(stack.data() + stack_heights.size() * n, node, n);
        stack_heights.push_back(node_height);
    }
    std::memcpy(root, stack.data(), n);
}

void
computeRoot(uint8_t *root, const Context &ctx, const uint8_t *leaf,
            uint32_t leaf_idx, uint32_t idx_offset,
            const uint8_t *auth_path, unsigned height, Address &tree_adrs)
{
    const unsigned n = ctx.params().n;
    uint8_t node[maxN];
    std::memcpy(node, leaf, n);

    for (unsigned h = 0; h < height; ++h) {
        tree_adrs.setTreeHeight(h + 1);
        tree_adrs.setTreeIndex((leaf_idx >> (h + 1)) +
                               (idx_offset >> (h + 1)));
        if ((leaf_idx >> h) & 1u)
            thashH(node, ctx, tree_adrs, auth_path + h * n, node);
        else
            thashH(node, ctx, tree_adrs, node, auth_path + h * n);
    }
    std::memcpy(root, node, n);
}

void
wotsGenLeaf(uint8_t *leaf_out, const Context &ctx, uint32_t layer,
            uint64_t tree, uint32_t leaf_idx)
{
    Address adrs;
    adrs.setLayer(layer);
    adrs.setTree(tree);
    adrs.setType(AddrType::WotsHash);
    adrs.setKeypair(leaf_idx);
    wotsPkGen(leaf_out, ctx, adrs);
}

void
merkleSign(uint8_t *sig, uint8_t *root_out, const Context &ctx,
           uint32_t layer, uint64_t tree, uint32_t leaf_idx,
           const uint8_t *msg)
{
    const Params &p = ctx.params();

    Address wots_adrs;
    wots_adrs.setLayer(layer);
    wots_adrs.setTree(tree);
    wots_adrs.setType(AddrType::WotsHash);
    wots_adrs.setKeypair(leaf_idx);
    wotsSign(sig, msg, ctx, wots_adrs);

    Address tree_adrs;
    tree_adrs.setLayer(layer);
    tree_adrs.setTree(tree);
    tree_adrs.setType(AddrType::Tree);

    auto gen_leaf = [&](uint8_t *out, uint32_t idx) {
        wotsGenLeaf(out, ctx, layer, tree, idx);
    };
    treehash(root_out, sig + p.wotsSigBytes(), ctx, leaf_idx, 0,
             p.treeHeight(), gen_leaf, tree_adrs);
}

} // namespace herosign::sphincs
