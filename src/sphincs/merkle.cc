#include "sphincs/merkle.hh"

#include <algorithm>
#include <stdexcept>

#include "sphincs/thash.hh"
#include "sphincs/thashx.hh"
#include "sphincs/wots.hh"

namespace herosign::sphincs
{

void
treehash(uint8_t *root, uint8_t *auth_path, const Context &ctx,
         uint32_t leaf_idx, uint32_t idx_offset, unsigned height,
         BatchLeafRef gen_leaves, Address &tree_adrs)
{
    const unsigned n = ctx.params().n;
    constexpr unsigned max_height =
        maxTreeHeight > maxForsHeight ? maxTreeHeight : maxForsHeight;
    if (height > max_height)
        throw std::invalid_argument("treehash: height exceeds bound");

    // Node stack: at most height+1 entries, each n bytes, plus the
    // height of each stacked node. Fixed-size so the hot path never
    // touches the heap.
    uint8_t stack[(max_height + 1) * maxN];
    unsigned stack_heights[max_height + 1];
    unsigned sp = 0;

    uint8_t leaf_buf[maxHashLanes * maxN];
    const uint32_t leaves = 1u << height;
    const uint32_t width = hashLaneWidth();
    for (uint32_t base = 0; base < leaves; base += width) {
        const uint32_t batch = std::min<uint32_t>(width, leaves - base);
        gen_leaves(leaf_buf, base, batch);

        for (uint32_t b = 0; b < batch; ++b) {
            const uint32_t idx = base + b;
            uint8_t node[maxN];
            std::memcpy(node, leaf_buf + static_cast<size_t>(b) * n, n);

            unsigned node_height = 0;
            if (auth_path && (leaf_idx ^ 1u) == idx)
                std::memcpy(auth_path, node, n);

            while (sp > 0 && stack_heights[sp - 1] == node_height) {
                // Combine the stacked left sibling with this node.
                tree_adrs.setTreeHeight(node_height + 1);
                tree_adrs.setTreeIndex((idx >> (node_height + 1)) +
                                       (idx_offset >> (node_height + 1)));
                const uint8_t *left =
                    stack + static_cast<size_t>(sp - 1) * n;
                thashH(node, ctx, tree_adrs, left, node);
                --sp;
                ++node_height;

                if (auth_path && ((leaf_idx >> node_height) ^ 1u) ==
                                     (idx >> node_height)) {
                    std::memcpy(auth_path + node_height * n, node, n);
                }
            }
            std::memcpy(stack + static_cast<size_t>(sp) * n, node, n);
            stack_heights[sp] = node_height;
            ++sp;
        }
    }
    std::memcpy(root, stack, n);
}

void
treehash(uint8_t *root, uint8_t *auth_path, const Context &ctx,
         uint32_t leaf_idx, uint32_t idx_offset, unsigned height,
         const LeafFn &gen_leaf, Address &tree_adrs)
{
    const unsigned n = ctx.params().n;
    auto gen_leaves = [&](uint8_t *out, uint32_t leaf_start,
                          uint32_t count) {
        for (uint32_t j = 0; j < count; ++j)
            gen_leaf(out + static_cast<size_t>(j) * n, leaf_start + j);
    };
    treehash(root, auth_path, ctx, leaf_idx, idx_offset, height,
             gen_leaves, tree_adrs);
}

void
computeRoot(uint8_t *root, const Context &ctx, const uint8_t *leaf,
            uint32_t leaf_idx, uint32_t idx_offset,
            const uint8_t *auth_path, unsigned height, Address &tree_adrs)
{
    const unsigned n = ctx.params().n;
    uint8_t node[maxN];
    std::memcpy(node, leaf, n);

    for (unsigned h = 0; h < height; ++h) {
        tree_adrs.setTreeHeight(h + 1);
        tree_adrs.setTreeIndex((leaf_idx >> (h + 1)) +
                               (idx_offset >> (h + 1)));
        if ((leaf_idx >> h) & 1u)
            thashH(node, ctx, tree_adrs, auth_path + h * n, node);
        else
            thashH(node, ctx, tree_adrs, node, auth_path + h * n);
    }
    std::memcpy(root, node, n);
}

void
computeRootXN(uint8_t *const root[], const Context &ctx,
              const uint8_t *const leaf[], const uint32_t leaf_idx[],
              const uint32_t idx_offset[],
              const uint8_t *const auth_path[], unsigned height,
              Address tree_adrs[], unsigned count)
{
    if (count == 0 || count > maxHashLanes)
        throw std::invalid_argument(
            "computeRootXN: count must be 1..16");
    const unsigned n = ctx.params().n;

    // Current node per lane; the walks advance in lockstep because
    // every lane climbs the same number of levels.
    uint8_t nodes[maxHashLanes][maxN];
    uint8_t pairs[maxHashLanes][2 * maxN];
    uint8_t *outs[maxHashLanes];
    const uint8_t *ins[maxHashLanes];
    for (unsigned l = 0; l < count; ++l) {
        std::memcpy(nodes[l], leaf[l], n);
        outs[l] = nodes[l];
        ins[l] = pairs[l];
    }

    for (unsigned h = 0; h < height; ++h) {
        for (unsigned l = 0; l < count; ++l) {
            tree_adrs[l].setTreeHeight(h + 1);
            tree_adrs[l].setTreeIndex((leaf_idx[l] >> (h + 1)) +
                                      (idx_offset[l] >> (h + 1)));
            const uint8_t *sibling = auth_path[l] + h * n;
            if ((leaf_idx[l] >> h) & 1u) {
                std::memcpy(pairs[l], sibling, n);
                std::memcpy(pairs[l] + n, nodes[l], n);
            } else {
                std::memcpy(pairs[l], nodes[l], n);
                std::memcpy(pairs[l] + n, sibling, n);
            }
        }
        thashX(outs, ctx, tree_adrs, ins, 2 * n, count);
    }
    for (unsigned l = 0; l < count; ++l)
        std::memcpy(root[l], nodes[l], n);
}

void
wotsGenLeaf(uint8_t *leaf_out, const Context &ctx, uint32_t layer,
            uint64_t tree, uint32_t leaf_idx)
{
    wotsPkGenXN(leaf_out, ctx, layer, tree, leaf_idx, 1);
}

void
merkleSign(uint8_t *sig, uint8_t *root_out, const Context &ctx,
           uint32_t layer, uint64_t tree, uint32_t leaf_idx,
           const uint8_t *msg)
{
    const Params &p = ctx.params();

    Address wots_adrs;
    wots_adrs.setLayer(layer);
    wots_adrs.setTree(tree);
    wots_adrs.setType(AddrType::WotsHash);
    wots_adrs.setKeypair(leaf_idx);
    wotsSign(sig, msg, ctx, wots_adrs);

    Address tree_adrs;
    tree_adrs.setLayer(layer);
    tree_adrs.setTree(tree);
    tree_adrs.setType(AddrType::Tree);

    auto gen_leaves = [&](uint8_t *out, uint32_t leaf_start,
                          uint32_t count) {
        wotsPkGenXN(out, ctx, layer, tree, leaf_start, count);
    };
    treehash(root_out, sig + p.wotsSigBytes(), ctx, leaf_idx, 0,
             p.treeHeight(), gen_leaves, tree_adrs);
}

} // namespace herosign::sphincs
