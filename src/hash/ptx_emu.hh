/**
 * @file
 * Software emulation of the PTX instructions HERO-Sign's hand-tuned
 * SHA-2 branch relies on (paper Fig. 5): prmt.b32 byte permutation and
 * mad.lo.u32 multiply-add. The emulated semantics follow the PTX ISA
 * manual so the PTX-flavoured SHA-256 is bit-exact with the native one
 * while exercising a distinct instruction mix that the GPU cost model
 * prices separately.
 */

#ifndef HEROSIGN_HASH_PTX_EMU_HH
#define HEROSIGN_HASH_PTX_EMU_HH

#include <cstdint>

namespace herosign
{

/**
 * prmt.b32 d, a, b, c — pick four bytes out of the 64-bit value {b,a}
 * according to the four selector nibbles in c (default mode, no sign
 * or replicate flags). Selector nibble values 0-7 index bytes 0-7 of
 * the concatenation (a holds bytes 0-3, b holds bytes 4-7).
 */
inline uint32_t
ptxPrmt(uint32_t a, uint32_t b, uint32_t selector)
{
    uint64_t pool = (static_cast<uint64_t>(b) << 32) | a;
    uint32_t result = 0;
    for (int i = 0; i < 4; ++i) {
        uint32_t sel = (selector >> (4 * i)) & 0x7;
        uint32_t byte = static_cast<uint32_t>((pool >> (8 * sel)) & 0xff);
        result |= byte << (8 * i);
    }
    return result;
}

/**
 * The byte-reversal permutation "prmt.b32 d, a, 0, 0x0123" used to
 * replace shift-based big-endian loads (paper Fig. 5, 32-bit case).
 */
inline uint32_t
ptxByteSwap(uint32_t a)
{
    return ptxPrmt(a, 0, 0x0123);
}

/**
 * mad.lo.u32 d, a, b, c — low 32 bits of a*b + c. The paper feeds an
 * auxiliary multiplier m (=1) to stop ptxas from folding the mad back
 * into IADD3; functionally it is an addition when b == 1.
 */
inline uint32_t
ptxMadLo(uint32_t a, uint32_t b, uint32_t c)
{
    return a * b + c;
}

} // namespace herosign

#endif // HEROSIGN_HASH_PTX_EMU_HH
