/**
 * @file
 * AVX-512 backend of the lane-parallel SHA-256 engine: 16 lanes per
 * compression. This translation unit is the only one compiled with
 * -mavx512f (see src/hash/CMakeLists.txt), so the rest of the library
 * keeps the baseline ISA and dispatch can always fall back to the
 * AVX2 or portable paths.
 *
 * Layout: fully transposed. Each SHA-256 state word a..h is one
 * `__m512i` whose 32-bit element l belongs to lane l; the 64-entry
 * message schedule is likewise one `__m512i` per round, so schedule
 * expansion and the round function run once for all sixteen lanes.
 * Per-lane 64-byte blocks move into word-per-register layout through
 * four 8x8 32-bit transposes of 256-bit halves stitched together with
 * `_mm512_inserti64x4` (cheaper and simpler than a monolithic 16x16
 * network, and it reuses the proven AVX2 transpose shape). AVX-512F's
 * native rotates (`_mm512_ror_epi32`) and three-input bit logic
 * (`_mm512_ternarylogic_epi32` for Ch/Maj/xor3) shorten the round
 * function relative to the AVX2 kernel.
 *
 * Two entry points mirror the AVX2 backend:
 *  * sha256Compress16Avx512 — generic transposed compression for the
 *    incremental Sha256Lanes engine.
 *  * sha256Final16SeededAvx512 — the fused SPHINCS+ fast path: all
 *    lanes resume from ONE shared mid-state (a broadcast, no state
 *    transpose) and absorb exactly one pre-padded block, the shape of
 *    every batched F/PRF call.
 */

#ifdef HEROSIGN_HAVE_AVX512

#include <immintrin.h>

// GCC implements the AVX-512 cast/extract intrinsics on top of
// _mm256_undefined_si256(), which GCC 12 flags as used-uninitialized
// under -Werror (PR105593). The uninitialized upper half is by design
// — it is immediately overwritten — so silence the false positive for
// this TU only.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

#include "hash/sha256_tables.hh"
#include "hash/sha256xN.hh"

namespace herosign
{

namespace
{

using sha256tables::K;

/** x ^ y ^ z in one ternary-logic op (truth table 0x96). */
inline __m512i
xor3(__m512i x, __m512i y, __m512i z)
{
    return _mm512_ternarylogic_epi32(x, y, z, 0x96);
}

inline __m512i
sigma0(__m512i x)
{
    return xor3(_mm512_ror_epi32(x, 7), _mm512_ror_epi32(x, 18),
                _mm512_srli_epi32(x, 3));
}

inline __m512i
sigma1(__m512i x)
{
    return xor3(_mm512_ror_epi32(x, 17), _mm512_ror_epi32(x, 19),
                _mm512_srli_epi32(x, 10));
}

inline __m512i
bigSigma0(__m512i x)
{
    return xor3(_mm512_ror_epi32(x, 2), _mm512_ror_epi32(x, 13),
                _mm512_ror_epi32(x, 22));
}

inline __m512i
bigSigma1(__m512i x)
{
    return xor3(_mm512_ror_epi32(x, 6), _mm512_ror_epi32(x, 11),
                _mm512_ror_epi32(x, 25));
}

/** (e & f) ^ (~e & g): truth table 0xCA. */
inline __m512i
ch(__m512i e, __m512i f, __m512i g)
{
    return _mm512_ternarylogic_epi32(e, f, g, 0xCA);
}

/** Majority of three: truth table 0xE8. */
inline __m512i
maj(__m512i a, __m512i b, __m512i c)
{
    return _mm512_ternarylogic_epi32(a, b, c, 0xE8);
}

/** Byte-swap each 32-bit element of a 256-bit half (AVX2, available
 * under -mavx512f's implied ISA set). */
inline __m256i
bswap32Half(__m256i x)
{
    const __m256i mask = _mm256_set_epi8(
        12, 13, 14, 15, 8, 9, 10, 11, 4, 5, 6, 7, 0, 1, 2, 3, 12, 13,
        14, 15, 8, 9, 10, 11, 4, 5, 6, 7, 0, 1, 2, 3);
    return _mm256_shuffle_epi8(x, mask);
}

/**
 * In-place 8x8 32-bit transpose of 256-bit rows — the same
 * self-inverse network the AVX2 backend uses.
 */
inline void
transpose8x8Half(__m256i r[8])
{
    __m256i t0 = _mm256_unpacklo_epi32(r[0], r[1]);
    __m256i t1 = _mm256_unpackhi_epi32(r[0], r[1]);
    __m256i t2 = _mm256_unpacklo_epi32(r[2], r[3]);
    __m256i t3 = _mm256_unpackhi_epi32(r[2], r[3]);
    __m256i t4 = _mm256_unpacklo_epi32(r[4], r[5]);
    __m256i t5 = _mm256_unpackhi_epi32(r[4], r[5]);
    __m256i t6 = _mm256_unpacklo_epi32(r[6], r[7]);
    __m256i t7 = _mm256_unpackhi_epi32(r[6], r[7]);

    __m256i u0 = _mm256_unpacklo_epi64(t0, t2);
    __m256i u1 = _mm256_unpackhi_epi64(t0, t2);
    __m256i u2 = _mm256_unpacklo_epi64(t1, t3);
    __m256i u3 = _mm256_unpackhi_epi64(t1, t3);
    __m256i u4 = _mm256_unpacklo_epi64(t4, t6);
    __m256i u5 = _mm256_unpackhi_epi64(t4, t6);
    __m256i u6 = _mm256_unpacklo_epi64(t5, t7);
    __m256i u7 = _mm256_unpackhi_epi64(t5, t7);

    r[0] = _mm256_permute2x128_si256(u0, u4, 0x20);
    r[1] = _mm256_permute2x128_si256(u1, u5, 0x20);
    r[2] = _mm256_permute2x128_si256(u2, u6, 0x20);
    r[3] = _mm256_permute2x128_si256(u3, u7, 0x20);
    r[4] = _mm256_permute2x128_si256(u0, u4, 0x31);
    r[5] = _mm256_permute2x128_si256(u1, u5, 0x31);
    r[6] = _mm256_permute2x128_si256(u2, u6, 0x31);
    r[7] = _mm256_permute2x128_si256(u3, u7, 0x31);
}

/**
 * Load 8 consecutive 32-bit words from lanes [lane0, lane0+8) at byte
 * offset @p off, byteswapped to big-endian and transposed so half[i]
 * holds word (off/4 + i) of those eight lanes.
 */
inline void
loadTransposedHalf(__m256i half[8], const uint8_t *const blocks[16],
                   unsigned lane0, size_t off)
{
    for (int l = 0; l < 8; ++l) {
        half[l] = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(
            blocks[lane0 + l] + off));
        half[l] = bswap32Half(half[l]);
    }
    transpose8x8Half(half);
}

/**
 * Fill w[0..15] with the transposed message block of all 16 lanes:
 * w[i] element l = big-endian word i of lane l's 64-byte block.
 */
inline void
loadMessage16(__m512i w[16], const uint8_t *const blocks[16])
{
    // Quadrants: (lane half, word half) -> four 8x8 transposes.
    __m256i q[4][8];
    loadTransposedHalf(q[0], blocks, 0, 0);  // lanes 0-7,  words 0-7
    loadTransposedHalf(q[1], blocks, 8, 0);  // lanes 8-15, words 0-7
    loadTransposedHalf(q[2], blocks, 0, 32); // lanes 0-7,  words 8-15
    loadTransposedHalf(q[3], blocks, 8, 32); // lanes 8-15, words 8-15
    for (int i = 0; i < 8; ++i) {
        w[i] = _mm512_inserti64x4(_mm512_castsi256_si512(q[0][i]),
                                  q[1][i], 1);
        w[8 + i] = _mm512_inserti64x4(_mm512_castsi256_si512(q[2][i]),
                                      q[3][i], 1);
    }
}

/** Expand the schedule and run the 64 rounds; s is updated in place. */
inline void
rounds16(__m512i s[8], __m512i w[64])
{
    for (int i = 16; i < 64; ++i) {
        w[i] = _mm512_add_epi32(
            _mm512_add_epi32(w[i - 16], sigma0(w[i - 15])),
            _mm512_add_epi32(w[i - 7], sigma1(w[i - 2])));
    }

    __m512i a = s[0], b = s[1], c = s[2], d = s[3];
    __m512i e = s[4], f = s[5], g = s[6], h = s[7];

    for (int i = 0; i < 64; ++i) {
        __m512i t1 = _mm512_add_epi32(
            _mm512_add_epi32(
                _mm512_add_epi32(h, bigSigma1(e)),
                _mm512_add_epi32(
                    ch(e, f, g),
                    _mm512_set1_epi32(static_cast<int>(K[i])))),
            w[i]);
        __m512i t2 = _mm512_add_epi32(bigSigma0(a), maj(a, b, c));
        h = g;
        g = f;
        f = e;
        e = _mm512_add_epi32(d, t1);
        d = c;
        c = b;
        b = a;
        a = _mm512_add_epi32(t1, t2);
    }

    s[0] = _mm512_add_epi32(s[0], a);
    s[1] = _mm512_add_epi32(s[1], b);
    s[2] = _mm512_add_epi32(s[2], c);
    s[3] = _mm512_add_epi32(s[3], d);
    s[4] = _mm512_add_epi32(s[4], e);
    s[5] = _mm512_add_epi32(s[5], f);
    s[6] = _mm512_add_epi32(s[6], g);
    s[7] = _mm512_add_epi32(s[7], h);
}

/**
 * Per-lane states (16 rows of 8 words) -> word-per-register: s[i]
 * element l = state[l][i]. Two 8x8 half transposes per half of the
 * lanes, stitched with inserti64x4.
 */
inline void
loadStates16(__m512i s[8], const std::array<uint32_t, 8> state[16])
{
    __m256i lo[8], hi[8];
    for (int l = 0; l < 8; ++l) {
        lo[l] = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(state[l].data()));
        hi[l] = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(state[8 + l].data()));
    }
    transpose8x8Half(lo);
    transpose8x8Half(hi);
    for (int i = 0; i < 8; ++i)
        s[i] = _mm512_inserti64x4(_mm512_castsi256_si512(lo[i]), hi[i],
                                  1);
}

/** Inverse of loadStates16. */
inline void
storeStates16(std::array<uint32_t, 8> state[16], const __m512i s[8])
{
    __m256i lo[8], hi[8];
    for (int i = 0; i < 8; ++i) {
        lo[i] = _mm512_castsi512_si256(s[i]);
        hi[i] = _mm512_extracti64x4_epi64(s[i], 1);
    }
    transpose8x8Half(lo);
    transpose8x8Half(hi);
    for (int l = 0; l < 8; ++l) {
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(state[l].data()), lo[l]);
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(state[8 + l].data()), hi[l]);
    }
}

} // namespace

void
sha256Compress16Avx512(std::array<uint32_t, 8> state[16],
                       const uint8_t *const blocks[16])
{
    __m512i w[64];
    loadMessage16(w, blocks);

    __m512i s[8];
    loadStates16(s, state);

    rounds16(s, w);

    storeStates16(state, s);
}

void
sha256Final16SeededAvx512(const std::array<uint32_t, 8> &mid,
                          const uint8_t *const blocks[16],
                          uint8_t *const digests[16])
{
    __m512i w[64];
    loadMessage16(w, blocks);

    // All lanes resume from the same chaining state: a broadcast per
    // word, no transpose.
    __m512i s[8];
    for (int i = 0; i < 8; ++i)
        s[i] = _mm512_set1_epi32(static_cast<int>(mid[i]));

    rounds16(s, w);

    // word-per-register -> lane-per-register, then big-endian bytes.
    __m256i lo[8], hi[8];
    for (int i = 0; i < 8; ++i) {
        lo[i] = _mm512_castsi512_si256(s[i]);
        hi[i] = _mm512_extracti64x4_epi64(s[i], 1);
    }
    transpose8x8Half(lo);
    transpose8x8Half(hi);
    for (int l = 0; l < 8; ++l) {
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(digests[l]),
                            bswap32Half(lo[l]));
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(digests[8 + l]),
            bswap32Half(hi[l]));
    }
}

} // namespace herosign

#endif // HEROSIGN_HAVE_AVX512
