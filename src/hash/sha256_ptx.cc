/**
 * @file
 * PTX-flavoured SHA-256 compression function.
 *
 * Mirrors the structure of HERO-Sign's hand-written PTX branch: message
 * words are loaded with a single byte-permute (prmt) instead of four
 * shift/or operations, and the round additions are expressed through
 * mad.lo.u32 with the auxiliary multiplier m = 1 (paper §III-C.1). The
 * digest is identical to the native implementation; only the
 * instruction mix differs, which is what the GPU cost model prices.
 */

#include "hash/ptx_emu.hh"
#include "hash/sha256.hh"
#include "hash/sha256_tables.hh"

namespace herosign
{

namespace
{

using sha256tables::K;

inline uint32_t
rotr(uint32_t x, unsigned n)
{
    return (x >> n) | (x << (32 - n));
}

// The auxiliary multiplier the paper introduces to keep mad at SASS
// level (Fig. 5, "example with m = 1").
constexpr uint32_t mAux = 1;

} // namespace

void
sha256CompressPtx(std::array<uint32_t, 8> &state, const uint8_t *block)
{
    uint32_t w[64];
    // One prmt byte-permutation per word replaces the four-shift
    // big-endian load of the native path.
    for (int i = 0; i < 16; ++i) {
        uint32_t raw;
        std::memcpy(&raw, block + 4 * i, 4); // little-endian host load
        w[i] = ptxByteSwap(raw);
    }
    for (int i = 16; i < 64; ++i) {
        uint32_t s0 = rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^
                      (w[i - 15] >> 3);
        uint32_t s1 = rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^
                      (w[i - 2] >> 10);
        // w[i] = ((w[i-16]*1 + s0)*1 + w[i-7]) + s1, as chained mads.
        uint32_t acc = ptxMadLo(w[i - 16], mAux, s0);
        acc = ptxMadLo(acc, mAux, w[i - 7]);
        w[i] = ptxMadLo(acc, mAux, s1);
    }

    uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
    uint32_t e = state[4], f = state[5], g = state[6], h = state[7];

    for (int i = 0; i < 64; ++i) {
        uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
        uint32_t ch = (e & f) ^ (~e & g);
        // t1 = h + s1 + ch + K[i] + w[i] as a mad chain.
        uint32_t t1 = ptxMadLo(h, mAux, s1);
        t1 = ptxMadLo(t1, mAux, ch);
        t1 = ptxMadLo(t1, mAux, K[i]);
        t1 = ptxMadLo(t1, mAux, w[i]);
        uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
        uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
        uint32_t t2 = ptxMadLo(s0, mAux, maj);
        h = g;
        g = f;
        f = e;
        e = ptxMadLo(d, mAux, t1);
        d = c;
        c = b;
        b = a;
        a = ptxMadLo(t1, mAux, t2);
    }

    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
}

} // namespace herosign
