/**
 * @file
 * MGF1 mask generation function over SHA-256 (RFC 8017 B.2.1), used by
 * the SPHINCS+ sha256 instantiation of H_msg to stretch a digest to
 * the message-digest length m.
 */

#ifndef HEROSIGN_HASH_MGF1_HH
#define HEROSIGN_HASH_MGF1_HH

#include "common/bytes.hh"

namespace herosign
{

/**
 * Fill @p out with MGF1-SHA-256(seed). Output length is out.size().
 */
void mgf1Sha256(MutByteSpan out, ByteSpan seed);

} // namespace herosign

#endif // HEROSIGN_HASH_MGF1_HH
