/**
 * @file
 * SHA-256 (FIPS 180-4) with an incremental API and mid-state capture.
 *
 * Two compression-function implementations are provided:
 *
 *  * Variant::Native — the conventional shift/rotate implementation a
 *    CUDA kernel would compile from plain C.
 *  * Variant::Ptx    — a byte-permute (prmt) + multiply-add (mad)
 *    flavoured implementation mirroring HERO-Sign's hand-written PTX
 *    branch (paper §III-C, Fig. 5). It computes identical digests but
 *    exercises a different instruction mix, which the GPU cost model
 *    prices differently (fewer registers, different ALU profile).
 *
 * Mid-state capture (state after compressing whole blocks) enables the
 * SPHINCS+ optimization of precomputing the state of the 64-byte
 * pk_seed padding block once per keypair.
 *
 * For hot loops hashing many independent inputs of one shape, see the
 * lane-batched sibling in hash/sha256xN.hh: a width-generic lane
 * engine (16-lane AVX-512 and 8-lane AVX2 backends with a
 * bit-identical portable fallback) that resumes all lanes from the
 * same Sha256State and keeps compressionCount() consistent with the
 * same number of scalar calls.
 */

#ifndef HEROSIGN_HASH_SHA256_HH
#define HEROSIGN_HASH_SHA256_HH

#include <array>
#include <cstdint>

#include "common/bytes.hh"

namespace herosign
{

/** Which SHA-256 compression implementation to use. */
enum class Sha256Variant { Native, Ptx };

/** Captured SHA-256 chaining state after a whole number of blocks. */
struct Sha256State
{
    std::array<uint32_t, 8> h;
    uint64_t bytesCompressed = 0;
};

/** Incremental SHA-256 hasher. */
class Sha256
{
  public:
    static constexpr size_t digestSize = 32;
    static constexpr size_t blockSize = 64;

    explicit Sha256(Sha256Variant variant = Sha256Variant::Native);

    /** Resume from a previously captured mid-state. */
    explicit Sha256(const Sha256State &state,
                    Sha256Variant variant = Sha256Variant::Native);

    /** Absorb @p data. */
    void update(ByteSpan data);

    /**
     * Capture the chaining state. Only valid when a whole number of
     * 64-byte blocks has been absorbed (no buffered partial block).
     * @throws std::logic_error otherwise.
     */
    Sha256State midState() const;

    /** Finalize into @p out (32 bytes). The hasher must not be reused. */
    void final(uint8_t *out);

    /** One-shot convenience. */
    static std::array<uint8_t, digestSize>
    digest(ByteSpan data, Sha256Variant variant = Sha256Variant::Native);

    /**
     * Global (thread-local) count of compression-function invocations;
     * used by tests and by cost-model calibration to cross-check the
     * analytic operation counts against real executions.
     */
    static uint64_t compressionCount();
    static void resetCompressionCount();

    /**
     * Charge @p count compressions to the global counter. Used by the
     * multi-lane engine (hash/sha256xN.hh) so one W-wide compression
     * accounts like W scalar ones.
     */
    static void addCompressions(uint64_t count);

  private:
    void compress(const uint8_t *block);

    std::array<uint32_t, 8> h_;
    uint8_t buf_[blockSize];
    size_t bufLen_;
    uint64_t total_;
    Sha256Variant variant_;
};

/**
 * Compression-function entry points (exposed for the PTX unit tests;
 * normal users go through Sha256).
 */
void sha256CompressNative(std::array<uint32_t, 8> &state,
                          const uint8_t *block);
void sha256CompressPtx(std::array<uint32_t, 8> &state,
                       const uint8_t *block);

} // namespace herosign

#endif // HEROSIGN_HASH_SHA256_HH
