/**
 * @file
 * HMAC-SHA-256 (RFC 2104 / FIPS 198-1), used by SPHINCS+ PRF_msg.
 */

#ifndef HEROSIGN_HASH_HMAC_HH
#define HEROSIGN_HASH_HMAC_HH

#include <array>

#include "common/bytes.hh"
#include "hash/sha256.hh"

namespace herosign
{

/** Incremental HMAC-SHA-256. */
class HmacSha256
{
  public:
    static constexpr size_t digestSize = Sha256::digestSize;

    /** Initialize with @p key (any length). */
    explicit HmacSha256(ByteSpan key);

    /** Absorb message data. */
    void update(ByteSpan data);

    /** Finalize the MAC into @p out (32 bytes). */
    void final(uint8_t *out);

    /** One-shot convenience. */
    static std::array<uint8_t, digestSize> mac(ByteSpan key, ByteSpan msg);

  private:
    Sha256 inner_;
    std::array<uint8_t, Sha256::blockSize> opad_;
};

} // namespace herosign

#endif // HEROSIGN_HASH_HMAC_HH
