/**
 * @file
 * AVX2 backend of the lane-parallel SHA-256 engine: 8 lanes per
 * compression. This translation unit is the only one compiled with
 * -mavx2 (see src/hash/CMakeLists.txt), so the rest of the library
 * keeps the baseline ISA and the portable fallback stays usable on
 * any x86-64. Backend selection happens in laneDispatch()
 * (sha256xN.cc); the 16-lane AVX-512 sibling lives in
 * sha256x16_avx512.cc.
 *
 * Layout: fully transposed. Each SHA-256 state word a..h is one
 * __m256i whose 32-bit element l belongs to lane l; the 64-entry
 * message schedule is likewise one __m256i per round, so schedule
 * expansion and the round function run once for all eight lanes.
 * Blocks and states move between per-lane and transposed layout with
 * an 8x8 32-bit unpack/permute transpose; a byte shuffle performs the
 * big-endian conversion.
 *
 * Two entry points:
 *  * sha256Compress8Avx2 — generic transposed compression for the
 *    incremental Sha256Lanes engine.
 *  * sha256Final8SeededAvx2 — the fused SPHINCS+ fast path: all lanes
 *    resume from ONE shared mid-state (a broadcast, no state
 *    transpose) and absorb exactly one pre-padded block, which is the
 *    shape of every batched F/PRF call.
 */

#ifdef HEROSIGN_HAVE_AVX2

#include <immintrin.h>

#include "hash/sha256_tables.hh"
#include "hash/sha256xN.hh"

namespace herosign
{

namespace
{

using sha256tables::K;

inline __m256i
rotr(__m256i x, int n)
{
    return _mm256_or_si256(_mm256_srli_epi32(x, n),
                           _mm256_slli_epi32(x, 32 - n));
}

inline __m256i
sigma0(__m256i x)
{
    return _mm256_xor_si256(_mm256_xor_si256(rotr(x, 7), rotr(x, 18)),
                            _mm256_srli_epi32(x, 3));
}

inline __m256i
sigma1(__m256i x)
{
    return _mm256_xor_si256(_mm256_xor_si256(rotr(x, 17), rotr(x, 19)),
                            _mm256_srli_epi32(x, 10));
}

inline __m256i
bigSigma0(__m256i x)
{
    return _mm256_xor_si256(_mm256_xor_si256(rotr(x, 2), rotr(x, 13)),
                            rotr(x, 22));
}

inline __m256i
bigSigma1(__m256i x)
{
    return _mm256_xor_si256(_mm256_xor_si256(rotr(x, 6), rotr(x, 11)),
                            rotr(x, 25));
}

inline __m256i
ch(__m256i e, __m256i f, __m256i g)
{
    // (e & f) ^ (~e & g)
    return _mm256_xor_si256(_mm256_and_si256(e, f),
                            _mm256_andnot_si256(e, g));
}

inline __m256i
maj(__m256i a, __m256i b, __m256i c)
{
    return _mm256_xor_si256(
        _mm256_xor_si256(_mm256_and_si256(a, b), _mm256_and_si256(a, c)),
        _mm256_and_si256(b, c));
}

/** Byte-swap each 32-bit element. */
inline __m256i
bswap32(__m256i x)
{
    const __m256i mask = _mm256_set_epi8(
        12, 13, 14, 15, 8, 9, 10, 11, 4, 5, 6, 7, 0, 1, 2, 3, 12, 13,
        14, 15, 8, 9, 10, 11, 4, 5, 6, 7, 0, 1, 2, 3);
    return _mm256_shuffle_epi8(x, mask);
}

/**
 * In-place 8x8 32-bit transpose: r[i] element j  <->  r[j] element i.
 * Converts between "register per lane" and "register per word"
 * layouts (the network is its own inverse).
 */
inline void
transpose8x8(__m256i r[8])
{
    __m256i t0 = _mm256_unpacklo_epi32(r[0], r[1]);
    __m256i t1 = _mm256_unpackhi_epi32(r[0], r[1]);
    __m256i t2 = _mm256_unpacklo_epi32(r[2], r[3]);
    __m256i t3 = _mm256_unpackhi_epi32(r[2], r[3]);
    __m256i t4 = _mm256_unpacklo_epi32(r[4], r[5]);
    __m256i t5 = _mm256_unpackhi_epi32(r[4], r[5]);
    __m256i t6 = _mm256_unpacklo_epi32(r[6], r[7]);
    __m256i t7 = _mm256_unpackhi_epi32(r[6], r[7]);

    __m256i u0 = _mm256_unpacklo_epi64(t0, t2);
    __m256i u1 = _mm256_unpackhi_epi64(t0, t2);
    __m256i u2 = _mm256_unpacklo_epi64(t1, t3);
    __m256i u3 = _mm256_unpackhi_epi64(t1, t3);
    __m256i u4 = _mm256_unpacklo_epi64(t4, t6);
    __m256i u5 = _mm256_unpackhi_epi64(t4, t6);
    __m256i u6 = _mm256_unpacklo_epi64(t5, t7);
    __m256i u7 = _mm256_unpackhi_epi64(t5, t7);

    r[0] = _mm256_permute2x128_si256(u0, u4, 0x20);
    r[1] = _mm256_permute2x128_si256(u1, u5, 0x20);
    r[2] = _mm256_permute2x128_si256(u2, u6, 0x20);
    r[3] = _mm256_permute2x128_si256(u3, u7, 0x20);
    r[4] = _mm256_permute2x128_si256(u0, u4, 0x31);
    r[5] = _mm256_permute2x128_si256(u1, u5, 0x31);
    r[6] = _mm256_permute2x128_si256(u2, u6, 0x31);
    r[7] = _mm256_permute2x128_si256(u3, u7, 0x31);
}

/**
 * Load 8 consecutive 32-bit words from each lane's block at byte
 * offset @p off, byteswap to big-endian order and transpose so w[i]
 * holds word i of all lanes.
 */
inline void
loadTransposed8(__m256i w[8], const uint8_t *const blocks[8], size_t off)
{
    for (int l = 0; l < 8; ++l) {
        w[l] = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(blocks[l] + off));
        w[l] = bswap32(w[l]);
    }
    transpose8x8(w);
}

/** Expand the schedule and run the 64 rounds; s is updated in place. */
inline void
rounds8(__m256i s[8], __m256i w[64])
{
    for (int i = 16; i < 64; ++i) {
        w[i] = _mm256_add_epi32(
            _mm256_add_epi32(w[i - 16], sigma0(w[i - 15])),
            _mm256_add_epi32(w[i - 7], sigma1(w[i - 2])));
    }

    __m256i a = s[0], b = s[1], c = s[2], d = s[3];
    __m256i e = s[4], f = s[5], g = s[6], h = s[7];

    for (int i = 0; i < 64; ++i) {
        __m256i t1 = _mm256_add_epi32(
            _mm256_add_epi32(
                _mm256_add_epi32(h, bigSigma1(e)),
                _mm256_add_epi32(
                    ch(e, f, g),
                    _mm256_set1_epi32(static_cast<int>(K[i])))),
            w[i]);
        __m256i t2 = _mm256_add_epi32(bigSigma0(a), maj(a, b, c));
        h = g;
        g = f;
        f = e;
        e = _mm256_add_epi32(d, t1);
        d = c;
        c = b;
        b = a;
        a = _mm256_add_epi32(t1, t2);
    }

    s[0] = _mm256_add_epi32(s[0], a);
    s[1] = _mm256_add_epi32(s[1], b);
    s[2] = _mm256_add_epi32(s[2], c);
    s[3] = _mm256_add_epi32(s[3], d);
    s[4] = _mm256_add_epi32(s[4], e);
    s[5] = _mm256_add_epi32(s[5], f);
    s[6] = _mm256_add_epi32(s[6], g);
    s[7] = _mm256_add_epi32(s[7], h);
}

} // namespace

void
sha256Compress8Avx2(std::array<uint32_t, 8> state[8],
                    const uint8_t *const blocks[8])
{
    __m256i w[64];
    loadTransposed8(w, blocks, 0);
    loadTransposed8(w + 8, blocks, 32);

    // Per-lane states -> one register per state word.
    __m256i s[8];
    for (int l = 0; l < 8; ++l) {
        s[l] = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(state[l].data()));
    }
    transpose8x8(s);

    rounds8(s, w);

    transpose8x8(s);
    for (int l = 0; l < 8; ++l) {
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(state[l].data()),
                            s[l]);
    }
}

void
sha256Final8SeededAvx2(const std::array<uint32_t, 8> &mid,
                       const uint8_t *const blocks[8],
                       uint8_t *const digests[8])
{
    __m256i w[64];
    loadTransposed8(w, blocks, 0);
    loadTransposed8(w + 8, blocks, 32);

    // All lanes resume from the same chaining state: a broadcast per
    // word, no transpose.
    __m256i s[8];
    for (int i = 0; i < 8; ++i)
        s[i] = _mm256_set1_epi32(static_cast<int>(mid[i]));

    rounds8(s, w);

    // word-per-register -> lane-per-register, then big-endian bytes.
    transpose8x8(s);
    for (int l = 0; l < 8; ++l) {
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(digests[l]),
                            bswap32(s[l]));
    }
}

} // namespace herosign

#endif // HEROSIGN_HAVE_AVX2
