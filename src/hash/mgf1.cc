#include "hash/mgf1.hh"

#include "hash/sha256.hh"

namespace herosign
{

void
mgf1Sha256(MutByteSpan out, ByteSpan seed)
{
    uint8_t counter_be[4];
    size_t produced = 0;
    uint32_t counter = 0;
    while (produced < out.size()) {
        storeBe32(counter_be, counter++);
        Sha256 ctx;
        ctx.update(seed);
        ctx.update(ByteSpan(counter_be, 4));
        uint8_t block[Sha256::digestSize];
        ctx.final(block);
        size_t take = std::min(out.size() - produced,
                               sizeof(block));
        std::memcpy(out.data() + produced, block, take);
        produced += take;
    }
}

} // namespace herosign
