#include "hash/hmac.hh"

namespace herosign
{

HmacSha256::HmacSha256(ByteSpan key)
{
    std::array<uint8_t, Sha256::blockSize> k{};
    if (key.size() > Sha256::blockSize) {
        auto digest = Sha256::digest(key);
        std::memcpy(k.data(), digest.data(), digest.size());
    } else {
        std::memcpy(k.data(), key.data(), key.size());
    }
    std::array<uint8_t, Sha256::blockSize> ipad;
    for (size_t i = 0; i < k.size(); ++i) {
        ipad[i] = k[i] ^ 0x36;
        opad_[i] = k[i] ^ 0x5c;
    }
    inner_.update(ipad);
    secureZero(k);
}

void
HmacSha256::update(ByteSpan data)
{
    inner_.update(data);
}

void
HmacSha256::final(uint8_t *out)
{
    std::array<uint8_t, digestSize> inner_digest;
    inner_.final(inner_digest.data());
    Sha256 outer;
    outer.update(opad_);
    outer.update(inner_digest);
    outer.final(out);
}

std::array<uint8_t, HmacSha256::digestSize>
HmacSha256::mac(ByteSpan key, ByteSpan msg)
{
    HmacSha256 ctx(key);
    ctx.update(msg);
    std::array<uint8_t, digestSize> out;
    ctx.final(out.data());
    return out;
}

} // namespace herosign
