/**
 * @file
 * 8-lane SHA-256: eight independent hashes advanced in lockstep.
 *
 * This is the CPU analogue of HERO-Sign's core batching idea — the
 * SPHINCS+ hot loops (WOTS+ chains, FORS leaves, Merkle leaf layers)
 * are thousands of independent fixed-shape hash calls, so they map
 * onto parallel lanes. Two backends compute bit-identical digests:
 *
 *  * AVX2 — transposed state, one `__m256i` per SHA-256 state word
 *    (lane l lives in 32-bit element l), with the message schedule
 *    computed vectorized across all eight lanes. Compiled into its own
 *    translation unit with -mavx2 (see src/hash/sha256x8_avx2.cc) and
 *    selected at runtime via cpuid.
 *  * Portable — a scalar loop over the eight lanes using the same
 *    compression function as Sha256; always available.
 *
 * Selection order: the CMake gate HEROSIGN_ENABLE_AVX2 decides whether
 * the AVX2 backend is compiled at all; at runtime cpuid must report
 * AVX2; the HEROSIGN_DISABLE_AVX2 environment variable (any non-empty
 * value but "0") and the programmatic sha256x8ForceScalar() hook both
 * force the portable backend. The environment variable is read once,
 * on the first dispatch query, and the snapshot is used for the rest
 * of the process — set it before startup (as the CI fallback job
 * does); to switch backends mid-process use sha256x8ForceScalar().
 *
 * All eight lanes always absorb the same number of bytes per call —
 * exactly the shape of SPHINCS+ tweakable-hash batches, where every
 * lane hashes adrs_c || input of a common length. Each 8-wide
 * compression charges 8 to Sha256::compressionCount(), so hash
 * accounting matches eight scalar calls exactly.
 */

#ifndef HEROSIGN_HASH_SHA256XN_HH
#define HEROSIGN_HASH_SHA256XN_HH

#include <array>
#include <cstdint>

#include "common/bytes.hh"
#include "hash/sha256.hh"

namespace herosign
{

/** True if the AVX2 backend was compiled in (HEROSIGN_ENABLE_AVX2). */
bool sha256x8Avx2Compiled();

/** True if the backend is compiled in AND the CPU reports AVX2. */
bool sha256x8Avx2Supported();

/**
 * True if the next Sha256x8 will run the AVX2 backend: supported, not
 * disabled via HEROSIGN_DISABLE_AVX2, not forced off programmatically.
 */
bool sha256x8Avx2Active();

/**
 * Force the portable backend on (true) or return to automatic
 * dispatch (false). Process-wide; used by benches and the
 * forced-fallback tests. The HEROSIGN_DISABLE_AVX2 environment
 * variable still wins when set.
 */
void sha256x8ForceScalar(bool force);

/** Incremental 8-lane SHA-256 hasher (uniform lane lengths). */
class Sha256x8
{
  public:
    static constexpr size_t lanes = 8;
    static constexpr size_t digestSize = Sha256::digestSize;
    static constexpr size_t blockSize = Sha256::blockSize;

    explicit Sha256x8(Sha256Variant variant = Sha256Variant::Native);

    /**
     * Resume all 8 lanes from one captured mid-state — the SPHINCS+
     * per-keypair "pk_seed || padding" state shared by every
     * tweakable-hash call under one key.
     */
    explicit Sha256x8(const Sha256State &state,
                      Sha256Variant variant = Sha256Variant::Native);

    /** Absorb @p len bytes into lane l from data[l], for all lanes. */
    void update(const uint8_t *const data[lanes], size_t len);

    /**
     * Finalize lane l into out[l] (32 bytes each). The hasher must not
     * be reused.
     */
    void final(uint8_t *const out[lanes]);

  private:
    void compressAll(const uint8_t *const blocks[lanes]);
    void compressBuffers();

    std::array<uint32_t, 8> h_[lanes];
    uint8_t buf_[lanes][blockSize];
    size_t bufLen_;
    uint64_t total_;
    Sha256Variant variant_;
    bool useAvx2_;
};

/**
 * AVX2 backend entry points (defined in sha256x8_avx2.cc when
 * HEROSIGN_ENABLE_AVX2 is on; exposed for the unit tests and the
 * batched tweakable-hash layer — normal users go through Sha256x8).
 * Callers must check sha256x8Avx2Active() (or at least
 * sha256x8Avx2Supported()) first; the stubs throw otherwise. Neither
 * entry point touches Sha256::compressionCount() — callers account.
 */
void sha256Compress8Avx2(std::array<uint32_t, 8> state[8],
                         const uint8_t *const blocks[8]);

/**
 * Fused SPHINCS+ fast path: resume all 8 lanes from the shared
 * chaining state @p mid, compress exactly one pre-padded 64-byte
 * block per lane, and emit the 32-byte digests. This is the shape of
 * every batched F/PRF call (adrs_c || input fits one final block).
 */
void sha256Final8SeededAvx2(const std::array<uint32_t, 8> &mid,
                            const uint8_t *const blocks[8],
                            uint8_t *const digests[8]);

} // namespace herosign

#endif // HEROSIGN_HASH_SHA256XN_HH
