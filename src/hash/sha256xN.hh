/**
 * @file
 * Width-generic lane-parallel SHA-256: N independent hashes advanced
 * in lockstep, N chosen by the dispatched backend.
 *
 * This is the CPU analogue of HERO-Sign's core batching idea — the
 * SPHINCS+ hot loops (WOTS+ chains, FORS leaves, Merkle leaf layers)
 * are thousands of independent fixed-shape hash calls, so they map
 * onto parallel lanes. Three backends compute bit-identical digests:
 *
 *  * AVX-512 — 16 lanes, fully transposed state, one `__m512i` per
 *    SHA-256 state word. Compiled into its own translation unit with
 *    -mavx512f (see src/hash/sha256x16_avx512.cc).
 *  * AVX2 — 8 lanes, one `__m256i` per state word (see
 *    src/hash/sha256x8_avx2.cc, compiled with -mavx2).
 *  * Portable — a scalar loop over the lanes using the same
 *    compression function as Sha256; always available, any width.
 *
 * All gating lives in ONE place, laneDispatch(): the CMake gates
 * HEROSIGN_ENABLE_AVX512 / HEROSIGN_ENABLE_AVX2 decide whether a
 * backend is compiled at all; at runtime cpuid must report the ISA;
 * the HEROSIGN_DISABLE_AVX512 environment variable (any non-empty
 * value but "0") pins dispatch to the 8-lane path, and
 * HEROSIGN_DISABLE_AVX2 keeps its historical meaning of forcing the
 * fully portable path (it disables AVX-512 too — disabling the
 * narrower ISA implies the wider one); and the
 * programmatic hooks sha256LanesForceScalar() (everything off) and
 * sha256LanesDisableAvx512() (pin to width 8) override cpuid. Both
 * environment variables are snapshotted together on the first
 * dispatch query and the snapshot is used for the rest of the
 * process — set them before startup (as the CI lane-matrix jobs do);
 * to switch backends mid-process use the programmatic hooks.
 *
 * Dispatch order: AVX-512 (16 lanes) → AVX2 (8 lanes) → portable
 * (8 lanes, so batch shapes match the historical scalar path).
 *
 * All lanes always absorb the same number of bytes per call — exactly
 * the shape of SPHINCS+ tweakable-hash batches, where every lane
 * hashes adrs_c || input of a common length. Each W-wide compression
 * charges W to Sha256::compressionCount(), so hash accounting matches
 * W scalar calls exactly at every width.
 */

#ifndef HEROSIGN_HASH_SHA256XN_HH
#define HEROSIGN_HASH_SHA256XN_HH

#include <array>
#include <cstdint>

#include "common/bytes.hh"
#include "hash/sha256.hh"

namespace herosign
{

/** Hard upper bound on SIMD lane width (the AVX-512 backend). */
constexpr size_t maxSha256Lanes = 16;

/** Which lane backend the dispatcher selected. */
enum class LaneBackend { Scalar, Avx2, Avx512 };

/**
 * Snapshot of the lane dispatch decision: which SIMD kernels are
 * usable right now and the widest batch width callers should target.
 */
struct LaneDispatch
{
    bool avx2;           ///< 8-wide AVX2 kernels usable
    bool avx512;         ///< 16-wide AVX-512 kernels usable
    LaneBackend backend; ///< widest active backend
    unsigned width;      ///< lane width of @c backend (8 or 16)
};

/**
 * The single source of truth for backend selection. Combines, for
 * both ISAs at once: compile gate, cpuid, the environment snapshot
 * (HEROSIGN_DISABLE_AVX512 / HEROSIGN_DISABLE_AVX2, read once on the
 * first call), and the programmatic overrides. The two backends can
 * never disagree about gating because neither reads any of those
 * inputs anywhere else.
 */
LaneDispatch laneDispatch();

/** True if the AVX2 backend was compiled in (HEROSIGN_ENABLE_AVX2). */
bool sha256LanesAvx2Compiled();

/** True if the AVX2 backend is compiled in AND cpuid reports AVX2. */
bool sha256LanesAvx2Supported();

/** True if the next dispatch may run the AVX2 kernels. */
bool sha256LanesAvx2Active();

/** True if the AVX-512 backend was compiled in (HEROSIGN_ENABLE_AVX512). */
bool sha256LanesAvx512Compiled();

/** True if the backend is compiled in AND cpuid reports AVX512F. */
bool sha256LanesAvx512Supported();

/** True if the next dispatch may run the 16-lane AVX-512 kernels. */
bool sha256LanesAvx512Active();

/**
 * Force the portable backend on (true) or return to automatic
 * dispatch (false). Process-wide; used by benches and the
 * forced-fallback tests. The environment snapshot still wins when a
 * disable variable was set at startup.
 */
void sha256LanesForceScalar(bool force);

/**
 * Disable only the AVX-512 backend (true) so dispatch falls back to
 * AVX2/portable at width 8, or return to automatic dispatch (false).
 * Lets benches and tests compare width 16 against the width-8 path on
 * the same host. sha256LanesForceScalar() still wins when set.
 */
void sha256LanesDisableAvx512(bool disable);

/**
 * True when environment variable @p var is set to a truthy value
 * (non-empty and not exactly "0") — the parse the disable knobs use.
 * Reads the CURRENT environment, not the startup snapshot; exposed so
 * the override-precedence tests can pin the parse semantics.
 */
bool laneEnvFlagEnabled(const char *var);

/**
 * Quarantine one SIMD tier process-wide: laneDispatch() stops
 * selecting it for every subsequent call, on every thread. This is
 * the verify-after-sign guard's response to a signature that failed
 * verification — a faulty vector unit (or a fault-injection run)
 * must not keep producing corrupt hashes. Quarantining Avx512
 * demotes dispatch to the 8-lane path; quarantining Avx2 demotes to
 * fully portable lanes. Quarantining Scalar is a no-op (there is
 * nothing below it). Sticky until sha256LanesClearQuarantines().
 */
void sha256LanesQuarantine(LaneBackend tier);

/**
 * Quarantine whatever SIMD tier laneDispatch() currently selects and
 * return it; returns LaneBackend::Scalar (and changes nothing) when
 * dispatch is already portable.
 */
LaneBackend sha256LanesQuarantineActiveTier();

/** Tiers quarantined so far (process-wide, monotonic). */
uint64_t sha256LanesQuarantineCount();

/** Lift all quarantines (tests and operator intervention only). */
void sha256LanesClearQuarantines();

/**
 * RAII thread-local override pinning laneDispatch() to the portable
 * backend for the current thread only — the verify-after-sign
 * guard's forced-scalar re-sign path. Nestable; other threads keep
 * their SIMD dispatch.
 */
class ScopedScalarLanes
{
  public:
    ScopedScalarLanes();
    ~ScopedScalarLanes();
    ScopedScalarLanes(const ScopedScalarLanes &) = delete;
    ScopedScalarLanes &operator=(const ScopedScalarLanes &) = delete;

    /** True while any ScopedScalarLanes is live on this thread. */
    static bool activeOnThisThread();

  private:
    bool prev_;
};

/**
 * Incremental lane-parallel SHA-256 hasher over a fixed number of
 * lanes (uniform lane lengths). The width is a runtime constructor
 * argument, 1..maxSha256Lanes; compression steps greedily use the
 * widest active kernels (16-wide AVX-512 chunks, then 8-wide AVX2
 * chunks, then a scalar loop), so any width is valid on any backend
 * and digests are bit-identical everywhere.
 */
class Sha256Lanes
{
  public:
    static constexpr size_t maxLanes = maxSha256Lanes;
    static constexpr size_t digestSize = Sha256::digestSize;
    static constexpr size_t blockSize = Sha256::blockSize;

    explicit Sha256Lanes(unsigned width,
                         Sha256Variant variant = Sha256Variant::Native);

    /**
     * Resume all lanes from one captured mid-state — the SPHINCS+
     * per-keypair "pk_seed || padding" state shared by every
     * tweakable-hash call under one key.
     */
    Sha256Lanes(unsigned width, const Sha256State &state,
                Sha256Variant variant = Sha256Variant::Native);

    unsigned width() const { return width_; }

    /** Absorb @p len bytes into lane l from data[l], for all lanes. */
    void update(const uint8_t *const data[], size_t len);

    /**
     * Finalize lane l into out[l] (32 bytes each). The hasher must not
     * be reused.
     */
    void final(uint8_t *const out[]);

  private:
    void compressAll(const uint8_t *const blocks[]);
    void compressBuffers();

    std::array<uint32_t, 8> h_[maxLanes];
    uint8_t buf_[maxLanes][blockSize];
    size_t bufLen_;
    uint64_t total_;
    unsigned width_;
    Sha256Variant variant_;
    bool avx2_;
    bool avx512_;
};

/**
 * AVX2 backend entry points (defined in sha256x8_avx2.cc when
 * HEROSIGN_ENABLE_AVX2 is on; exposed for the unit tests and the
 * batched tweakable-hash layer — normal users go through
 * Sha256Lanes). Callers must check laneDispatch().avx2 (or at least
 * sha256LanesAvx2Supported()) first; the stubs throw otherwise.
 * Neither entry point touches Sha256::compressionCount() — callers
 * account.
 */
void sha256Compress8Avx2(std::array<uint32_t, 8> state[8],
                         const uint8_t *const blocks[8]);

/**
 * Fused SPHINCS+ fast path: resume all 8 lanes from the shared
 * chaining state @p mid, compress exactly one pre-padded 64-byte
 * block per lane, and emit the 32-byte digests. This is the shape of
 * every batched F/PRF call (adrs_c || input fits one final block).
 */
void sha256Final8SeededAvx2(const std::array<uint32_t, 8> &mid,
                            const uint8_t *const blocks[8],
                            uint8_t *const digests[8]);

/**
 * AVX-512 backend entry points (defined in sha256x16_avx512.cc when
 * HEROSIGN_ENABLE_AVX512 is on): the 16-lane analogues of the AVX2
 * pair above, with the same contracts — check laneDispatch().avx512
 * first, callers account for compressions.
 */
void sha256Compress16Avx512(std::array<uint32_t, 8> state[16],
                            const uint8_t *const blocks[16]);

/**
 * Fused 16-lane seeded single-block kernel: the shared mid-state is
 * broadcast (no state transpose), one pre-padded block per lane, 32
 * bytes of digest out per lane.
 */
void sha256Final16SeededAvx512(const std::array<uint32_t, 8> &mid,
                               const uint8_t *const blocks[16],
                               uint8_t *const digests[16]);

} // namespace herosign

#endif // HEROSIGN_HASH_SHA256XN_HH
