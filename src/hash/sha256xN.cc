#include "hash/sha256xN.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <stdexcept>

#include "common/fault.hh"
#include "hash/sha256_tables.hh"

namespace herosign
{

namespace
{

using sha256tables::initState;

std::atomic<bool> force_scalar{false};
std::atomic<bool> disable_avx512{false};

// Verify-after-sign quarantine state: sticky per-tier kill switches
// plus a monotonic count, all process-wide (a faulty vector unit is
// not a per-thread condition).
std::atomic<bool> quarantine_avx2{false};
std::atomic<bool> quarantine_avx512{false};
std::atomic<uint64_t> quarantine_count{0};

// The forced-scalar re-sign scope is per thread: one worker redoing
// a suspect signature must not demote its siblings' dispatch.
thread_local bool tl_force_scalar = false;

bool
cpuHasAvx2()
{
#if defined(HEROSIGN_HAVE_AVX2) && (defined(__GNUC__) || defined(__clang__))
    return __builtin_cpu_supports("avx2") != 0;
#else
    return false;
#endif
}

bool
cpuHasAvx512f()
{
#if defined(HEROSIGN_HAVE_AVX512) &&                                    \
    (defined(__GNUC__) || defined(__clang__))
    return __builtin_cpu_supports("avx512f") != 0;
#else
    return false;
#endif
}

/**
 * Startup snapshot of both disable variables, taken together on the
 * first dispatch query so the two ISAs gate off one consistent view
 * of the environment.
 */
struct EnvSnapshot
{
    bool disableAvx2;
    bool disableAvx512;
};

const EnvSnapshot &
envSnapshot()
{
    static const EnvSnapshot snap{
        laneEnvFlagEnabled("HEROSIGN_DISABLE_AVX2"),
        laneEnvFlagEnabled("HEROSIGN_DISABLE_AVX512"),
    };
    return snap;
}

} // namespace

bool
laneEnvFlagEnabled(const char *var)
{
    const char *v = std::getenv(var);
    return v != nullptr && v[0] != '\0' &&
           !(v[0] == '0' && v[1] == '\0');
}

bool
sha256LanesAvx2Compiled()
{
#ifdef HEROSIGN_HAVE_AVX2
    return true;
#else
    return false;
#endif
}

bool
sha256LanesAvx2Supported()
{
    static const bool supported = cpuHasAvx2();
    return sha256LanesAvx2Compiled() && supported;
}

bool
sha256LanesAvx512Compiled()
{
#ifdef HEROSIGN_HAVE_AVX512
    return true;
#else
    return false;
#endif
}

bool
sha256LanesAvx512Supported()
{
    static const bool supported = cpuHasAvx512f();
    return sha256LanesAvx512Compiled() && supported;
}

LaneDispatch
laneDispatch()
{
    const EnvSnapshot &env = envSnapshot();
    const bool forced = force_scalar.load(std::memory_order_relaxed) ||
                        tl_force_scalar;

    LaneDispatch d;
    d.avx2 = sha256LanesAvx2Supported() && !env.disableAvx2 &&
             !forced &&
             !quarantine_avx2.load(std::memory_order_relaxed);
    // Disabling the narrower ISA implies the wider one is off too
    // (AVX-512F hardware always has AVX2), so HEROSIGN_DISABLE_AVX2=1
    // keeps its historical meaning: fully portable lanes. This
    // mirrors ci.sh's build-gate cascade (AVX2=OFF forces AVX512=OFF).
    d.avx512 = sha256LanesAvx512Supported() && !env.disableAvx512 &&
               !env.disableAvx2 && !forced &&
               !disable_avx512.load(std::memory_order_relaxed) &&
               !quarantine_avx512.load(std::memory_order_relaxed) &&
               // An AVX2 quarantine demotes to portable outright: the
               // shared vector register file is suspect, so the wider
               // tier of the same unit is no safer.
               !quarantine_avx2.load(std::memory_order_relaxed);
    d.backend = d.avx512   ? LaneBackend::Avx512
                : d.avx2   ? LaneBackend::Avx2
                           : LaneBackend::Scalar;
    // The portable path batches 8 wide so scalar-mode hash shapes (and
    // the compression-count trace) match the historical 8-lane engine.
    d.width = d.avx512 ? 16u : 8u;
    return d;
}

bool
sha256LanesAvx2Active()
{
    return laneDispatch().avx2;
}

bool
sha256LanesAvx512Active()
{
    return laneDispatch().avx512;
}

void
sha256LanesForceScalar(bool force)
{
    force_scalar.store(force, std::memory_order_relaxed);
}

void
sha256LanesDisableAvx512(bool disable)
{
    disable_avx512.store(disable, std::memory_order_relaxed);
}

void
sha256LanesQuarantine(LaneBackend tier)
{
    switch (tier) {
    case LaneBackend::Avx512:
        if (!quarantine_avx512.exchange(true,
                                        std::memory_order_relaxed))
            quarantine_count.fetch_add(1, std::memory_order_relaxed);
        break;
    case LaneBackend::Avx2:
        if (!quarantine_avx2.exchange(true, std::memory_order_relaxed))
            quarantine_count.fetch_add(1, std::memory_order_relaxed);
        break;
    case LaneBackend::Scalar:
        break; // nothing below the portable tier to demote to
    }
}

LaneBackend
sha256LanesQuarantineActiveTier()
{
    const LaneBackend active = laneDispatch().backend;
    sha256LanesQuarantine(active);
    return active;
}

uint64_t
sha256LanesQuarantineCount()
{
    return quarantine_count.load(std::memory_order_relaxed);
}

void
sha256LanesClearQuarantines()
{
    quarantine_avx2.store(false, std::memory_order_relaxed);
    quarantine_avx512.store(false, std::memory_order_relaxed);
}

ScopedScalarLanes::ScopedScalarLanes() : prev_(tl_force_scalar)
{
    tl_force_scalar = true;
}

ScopedScalarLanes::~ScopedScalarLanes()
{
    tl_force_scalar = prev_;
}

bool
ScopedScalarLanes::activeOnThisThread()
{
    return tl_force_scalar;
}

Sha256Lanes::Sha256Lanes(unsigned width, Sha256Variant variant)
    : bufLen_(0), total_(0), width_(width), variant_(variant)
{
    if (width_ == 0 || width_ > maxLanes)
        throw std::invalid_argument("Sha256Lanes: width must be 1..16");
    const LaneDispatch d = laneDispatch();
    avx2_ = variant == Sha256Variant::Native && d.avx2;
    avx512_ = variant == Sha256Variant::Native && d.avx512;
    for (size_t l = 0; l < width_; ++l)
        h_[l] = initState;
}

Sha256Lanes::Sha256Lanes(unsigned width, const Sha256State &state,
                         Sha256Variant variant)
    : bufLen_(0), total_(state.bytesCompressed), width_(width),
      variant_(variant)
{
    if (width_ == 0 || width_ > maxLanes)
        throw std::invalid_argument("Sha256Lanes: width must be 1..16");
    if (state.bytesCompressed % blockSize != 0)
        throw std::logic_error("Sha256Lanes: mid-state not block aligned");
    const LaneDispatch d = laneDispatch();
    avx2_ = variant == Sha256Variant::Native && d.avx2;
    avx512_ = variant == Sha256Variant::Native && d.avx512;
    for (size_t l = 0; l < width_; ++l)
        h_[l] = state.h;
}

void
Sha256Lanes::compressAll(const uint8_t *const blocks[])
{
    // Greedy widest-first: 16-wide AVX-512 chunks, then 8-wide AVX2
    // chunks, then a scalar tail. Any width works on any backend and
    // every lane's digest is bit-identical regardless of the split.
    unsigned l = 0;
    while (avx512_ && width_ - l >= 16) {
        sha256Compress16Avx512(h_ + l, blocks + l);
        l += 16;
    }
    while (avx2_ && width_ - l >= 8) {
        sha256Compress8Avx2(h_ + l, blocks + l);
        l += 8;
    }
    for (; l < width_; ++l) {
        if (variant_ == Sha256Variant::Native)
            sha256CompressNative(h_[l], blocks[l]);
        else
            sha256CompressPtx(h_[l], blocks[l]);
    }
    // One W-wide step does the work of W scalar compressions; keep
    // the global accounting (tests, cost-model calibration) in sync.
    Sha256::addCompressions(width_);

    // Fault seam: a hash-compress rule flips one bit of one lane's
    // chaining state, modeling a transient ALU fault inside the
    // compression function. Disabled cost: one relaxed load.
    if (FaultInjector::fire(FaultPoint::HashCompress)) {
        FaultInjector &inj = FaultInjector::instance();
        const unsigned lane = inj.laneFor(
            inj.fired(FaultPoint::HashCompress), width_);
        h_[lane][0] ^= 1u;
    }
}

void
Sha256Lanes::compressBuffers()
{
    const uint8_t *blocks[maxLanes];
    for (size_t l = 0; l < width_; ++l)
        blocks[l] = buf_[l];
    compressAll(blocks);
}

void
Sha256Lanes::update(const uint8_t *const data[], size_t len)
{
    if (len == 0)
        return;
    const uint8_t *p[maxLanes];
    for (size_t l = 0; l < width_; ++l)
        p[l] = data[l];

    size_t off = 0;
    total_ += len;
    if (bufLen_ > 0) {
        const size_t take = std::min(blockSize - bufLen_, len);
        for (size_t l = 0; l < width_; ++l)
            std::memcpy(buf_[l] + bufLen_, p[l], take);
        bufLen_ += take;
        off += take;
        if (bufLen_ == blockSize) {
            compressBuffers();
            bufLen_ = 0;
        }
    }
    while (off + blockSize <= len) {
        const uint8_t *blocks[maxLanes];
        for (size_t l = 0; l < width_; ++l)
            blocks[l] = p[l] + off;
        compressAll(blocks);
        off += blockSize;
    }
    if (off < len) {
        for (size_t l = 0; l < width_; ++l)
            std::memcpy(buf_[l], p[l] + off, len - off);
        bufLen_ = len - off;
    }
}

void
Sha256Lanes::final(uint8_t *const out[])
{
    const uint64_t bit_len = total_ * 8;

    // Padding is identical across lanes since lengths are uniform:
    // 0x80, zeros to 56 mod 64, then the 64-bit bit length.
    size_t r = bufLen_;
    for (size_t l = 0; l < width_; ++l)
        buf_[l][r] = 0x80;
    ++r;
    if (r > blockSize - 8) {
        for (size_t l = 0; l < width_; ++l)
            std::memset(buf_[l] + r, 0, blockSize - r);
        compressBuffers();
        r = 0;
    }
    for (size_t l = 0; l < width_; ++l) {
        std::memset(buf_[l] + r, 0, blockSize - 8 - r);
        storeBe64(buf_[l] + blockSize - 8, bit_len);
    }
    compressBuffers();
    bufLen_ = 0;

    for (size_t l = 0; l < width_; ++l)
        for (int i = 0; i < 8; ++i)
            storeBe32(out[l] + 4 * i, h_[l][i]);
}

#ifndef HEROSIGN_HAVE_AVX2
void
sha256Compress8Avx2(std::array<uint32_t, 8>[8], const uint8_t *const[8])
{
    throw std::logic_error(
        "sha256Compress8Avx2: AVX2 backend not compiled in");
}

void
sha256Final8SeededAvx2(const std::array<uint32_t, 8> &,
                       const uint8_t *const[8], uint8_t *const[8])
{
    throw std::logic_error(
        "sha256Final8SeededAvx2: AVX2 backend not compiled in");
}
#endif

#ifndef HEROSIGN_HAVE_AVX512
void
sha256Compress16Avx512(std::array<uint32_t, 8>[16],
                       const uint8_t *const[16])
{
    throw std::logic_error(
        "sha256Compress16Avx512: AVX-512 backend not compiled in");
}

void
sha256Final16SeededAvx512(const std::array<uint32_t, 8> &,
                          const uint8_t *const[16], uint8_t *const[16])
{
    throw std::logic_error(
        "sha256Final16SeededAvx512: AVX-512 backend not compiled in");
}
#endif

} // namespace herosign
