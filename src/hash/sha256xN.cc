#include "hash/sha256xN.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <stdexcept>

#include "hash/sha256_tables.hh"

namespace herosign
{

namespace
{

using sha256tables::initState;

std::atomic<bool> force_scalar{false};

bool
cpuHasAvx2()
{
#if defined(HEROSIGN_HAVE_AVX2) && (defined(__GNUC__) || defined(__clang__))
    return __builtin_cpu_supports("avx2") != 0;
#else
    return false;
#endif
}

bool
envDisablesAvx2()
{
    const char *v = std::getenv("HEROSIGN_DISABLE_AVX2");
    return v != nullptr && v[0] != '\0' &&
           !(v[0] == '0' && v[1] == '\0');
}

} // namespace

bool
sha256x8Avx2Compiled()
{
#ifdef HEROSIGN_HAVE_AVX2
    return true;
#else
    return false;
#endif
}

bool
sha256x8Avx2Supported()
{
    static const bool supported = cpuHasAvx2();
    return sha256x8Avx2Compiled() && supported;
}

bool
sha256x8Avx2Active()
{
    static const bool env_disabled = envDisablesAvx2();
    return sha256x8Avx2Supported() && !env_disabled &&
           !force_scalar.load(std::memory_order_relaxed);
}

void
sha256x8ForceScalar(bool force)
{
    force_scalar.store(force, std::memory_order_relaxed);
}

Sha256x8::Sha256x8(Sha256Variant variant)
    : bufLen_(0), total_(0), variant_(variant),
      useAvx2_(variant == Sha256Variant::Native && sha256x8Avx2Active())
{
    for (size_t l = 0; l < lanes; ++l)
        h_[l] = initState;
}

Sha256x8::Sha256x8(const Sha256State &state, Sha256Variant variant)
    : bufLen_(0), total_(state.bytesCompressed), variant_(variant),
      useAvx2_(variant == Sha256Variant::Native && sha256x8Avx2Active())
{
    if (state.bytesCompressed % blockSize != 0)
        throw std::logic_error("Sha256x8: mid-state not block aligned");
    for (size_t l = 0; l < lanes; ++l)
        h_[l] = state.h;
}

void
Sha256x8::compressAll(const uint8_t *const blocks[lanes])
{
    if (useAvx2_) {
        sha256Compress8Avx2(h_, blocks);
    } else if (variant_ == Sha256Variant::Native) {
        for (size_t l = 0; l < lanes; ++l)
            sha256CompressNative(h_[l], blocks[l]);
    } else {
        for (size_t l = 0; l < lanes; ++l)
            sha256CompressPtx(h_[l], blocks[l]);
    }
    // One 8-wide step does the work of eight scalar compressions; keep
    // the global accounting (tests, cost-model calibration) in sync.
    Sha256::addCompressions(lanes);
}

void
Sha256x8::compressBuffers()
{
    const uint8_t *blocks[lanes];
    for (size_t l = 0; l < lanes; ++l)
        blocks[l] = buf_[l];
    compressAll(blocks);
}

void
Sha256x8::update(const uint8_t *const data[lanes], size_t len)
{
    if (len == 0)
        return;
    const uint8_t *p[lanes];
    for (size_t l = 0; l < lanes; ++l)
        p[l] = data[l];

    size_t off = 0;
    total_ += len;
    if (bufLen_ > 0) {
        const size_t take = std::min(blockSize - bufLen_, len);
        for (size_t l = 0; l < lanes; ++l)
            std::memcpy(buf_[l] + bufLen_, p[l], take);
        bufLen_ += take;
        off += take;
        if (bufLen_ == blockSize) {
            compressBuffers();
            bufLen_ = 0;
        }
    }
    while (off + blockSize <= len) {
        const uint8_t *blocks[lanes];
        for (size_t l = 0; l < lanes; ++l)
            blocks[l] = p[l] + off;
        compressAll(blocks);
        off += blockSize;
    }
    if (off < len) {
        for (size_t l = 0; l < lanes; ++l)
            std::memcpy(buf_[l], p[l] + off, len - off);
        bufLen_ = len - off;
    }
}

void
Sha256x8::final(uint8_t *const out[lanes])
{
    const uint64_t bit_len = total_ * 8;

    // Padding is identical across lanes since lengths are uniform:
    // 0x80, zeros to 56 mod 64, then the 64-bit bit length.
    size_t r = bufLen_;
    for (size_t l = 0; l < lanes; ++l)
        buf_[l][r] = 0x80;
    ++r;
    if (r > blockSize - 8) {
        for (size_t l = 0; l < lanes; ++l)
            std::memset(buf_[l] + r, 0, blockSize - r);
        compressBuffers();
        r = 0;
    }
    for (size_t l = 0; l < lanes; ++l) {
        std::memset(buf_[l] + r, 0, blockSize - 8 - r);
        storeBe64(buf_[l] + blockSize - 8, bit_len);
    }
    compressBuffers();
    bufLen_ = 0;

    for (size_t l = 0; l < lanes; ++l)
        for (int i = 0; i < 8; ++i)
            storeBe32(out[l] + 4 * i, h_[l][i]);
}

#ifndef HEROSIGN_HAVE_AVX2
void
sha256Compress8Avx2(std::array<uint32_t, 8>[8], const uint8_t *const[8])
{
    throw std::logic_error(
        "sha256Compress8Avx2: AVX2 backend not compiled in");
}

void
sha256Final8SeededAvx2(const std::array<uint32_t, 8> &,
                       const uint8_t *const[8], uint8_t *const[8])
{
    throw std::logic_error(
        "sha256Final8SeededAvx2: AVX2 backend not compiled in");
}
#endif

} // namespace herosign
