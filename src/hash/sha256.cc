#include "hash/sha256.hh"

#include <stdexcept>

#include "hash/sha256_tables.hh"

namespace herosign
{

namespace
{

thread_local uint64_t compression_count = 0;

using sha256tables::initState;
using sha256tables::K;

inline uint32_t
rotr(uint32_t x, unsigned n)
{
    return (x >> n) | (x << (32 - n));
}

} // namespace

void
sha256CompressNative(std::array<uint32_t, 8> &state, const uint8_t *block)
{
    uint32_t w[64];
    // Big-endian loads implemented with shifts, as plain C would be.
    for (int i = 0; i < 16; ++i)
        w[i] = loadBe32(block + 4 * i);
    for (int i = 16; i < 64; ++i) {
        uint32_t s0 = rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^
                      (w[i - 15] >> 3);
        uint32_t s1 = rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^
                      (w[i - 2] >> 10);
        w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
    uint32_t e = state[4], f = state[5], g = state[6], h = state[7];

    for (int i = 0; i < 64; ++i) {
        uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
        uint32_t ch = (e & f) ^ (~e & g);
        uint32_t t1 = h + s1 + ch + K[i] + w[i];
        uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
        uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
        uint32_t t2 = s0 + maj;
        h = g;
        g = f;
        f = e;
        e = d + t1;
        d = c;
        c = b;
        b = a;
        a = t1 + t2;
    }

    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
}

Sha256::Sha256(Sha256Variant variant)
    : h_(initState), bufLen_(0), total_(0), variant_(variant)
{
}

Sha256::Sha256(const Sha256State &state, Sha256Variant variant)
    : h_(state.h), bufLen_(0), total_(state.bytesCompressed),
      variant_(variant)
{
    if (state.bytesCompressed % blockSize != 0)
        throw std::logic_error("Sha256: mid-state not block aligned");
}

void
Sha256::update(ByteSpan data)
{
    if (data.empty())
        return;
    size_t off = 0;
    total_ += data.size();
    if (bufLen_ > 0) {
        size_t take = std::min(blockSize - bufLen_, data.size());
        std::memcpy(buf_ + bufLen_, data.data(), take);
        bufLen_ += take;
        off += take;
        if (bufLen_ == blockSize) {
            compress(buf_);
            bufLen_ = 0;
        }
    }
    while (off + blockSize <= data.size()) {
        compress(data.data() + off);
        off += blockSize;
    }
    if (off < data.size()) {
        std::memcpy(buf_, data.data() + off, data.size() - off);
        bufLen_ = data.size() - off;
    }
}

Sha256State
Sha256::midState() const
{
    if (bufLen_ != 0)
        throw std::logic_error("Sha256: mid-state with buffered bytes");
    return Sha256State{h_, total_};
}

void
Sha256::final(uint8_t *out)
{
    uint64_t bit_len = total_ * 8;
    uint8_t pad = 0x80;
    update(ByteSpan(&pad, 1));
    uint8_t zero = 0;
    while (bufLen_ != blockSize - 8)
        update(ByteSpan(&zero, 1));
    uint8_t len_be[8];
    storeBe64(len_be, bit_len);
    // Bypass the total_ accounting for the length field.
    std::memcpy(buf_ + bufLen_, len_be, 8);
    compress(buf_);
    bufLen_ = 0;
    for (int i = 0; i < 8; ++i)
        storeBe32(out + 4 * i, h_[i]);
}

std::array<uint8_t, Sha256::digestSize>
Sha256::digest(ByteSpan data, Sha256Variant variant)
{
    Sha256 ctx(variant);
    ctx.update(data);
    std::array<uint8_t, digestSize> out;
    ctx.final(out.data());
    return out;
}

void
Sha256::compress(const uint8_t *block)
{
    ++compression_count;
    if (variant_ == Sha256Variant::Native)
        sha256CompressNative(h_, block);
    else
        sha256CompressPtx(h_, block);
}

uint64_t
Sha256::compressionCount()
{
    return compression_count;
}

void
Sha256::resetCompressionCount()
{
    compression_count = 0;
}

void
Sha256::addCompressions(uint64_t count)
{
    compression_count += count;
}

} // namespace herosign
