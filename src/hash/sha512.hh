/**
 * @file
 * SHA-512 (FIPS 180-4), incremental API.
 *
 * Provided so library users can instantiate SPHINCS+ with SHA-512 at
 * higher security levels (the paper keeps SHA-256 everywhere; see
 * DESIGN.md "Hash baseline").
 */

#ifndef HEROSIGN_HASH_SHA512_HH
#define HEROSIGN_HASH_SHA512_HH

#include <array>
#include <cstdint>

#include "common/bytes.hh"

namespace herosign
{

/** Incremental SHA-512 hasher. */
class Sha512
{
  public:
    static constexpr size_t digestSize = 64;
    static constexpr size_t blockSize = 128;

    Sha512();

    /** Absorb @p data. */
    void update(ByteSpan data);

    /** Finalize into @p out (64 bytes). The hasher must not be reused. */
    void final(uint8_t *out);

    /** One-shot convenience. */
    static std::array<uint8_t, digestSize> digest(ByteSpan data);

  private:
    void compress(const uint8_t *block);

    std::array<uint64_t, 8> h_;
    uint8_t buf_[blockSize];
    size_t bufLen_;
    uint64_t total_;
};

} // namespace herosign

#endif // HEROSIGN_HASH_SHA512_HH
