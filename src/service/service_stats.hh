/**
 * @file
 * The unified statistics surface of the serving layer. SignService and
 * VerifyService write per-tenant counters into one shared
 * StatsRegistry, so a single snapshot answers the admission-control
 * questions — queue depth, jobs in flight, per-tenant signing rate,
 * verify failures — across both traffic directions. A ServiceStats
 * carries both planes' fields; a SignService/VerifyService pair
 * sharing one registry merges into one fabric-wide snapshot via
 * mergedWith().
 */

#ifndef HEROSIGN_SERVICE_SERVICE_STATS_HH
#define HEROSIGN_SERVICE_SERVICE_STATS_HH

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "telemetry/telemetry.hh"

namespace herosign::service
{

/** Context-cache behaviour counters (see ContextCache). */
struct CacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;      ///< == warm contexts built
    uint64_t evictions = 0;
    size_t size = 0;
    size_t capacity = 0;
};

/** Per-tenant snapshot values. */
struct TenantStats
{
    uint64_t signsSubmitted = 0;
    uint64_t signsCompleted = 0;  ///< successful signatures
    uint64_t signFailures = 0;    ///< sign jobs that threw
    uint64_t verifiesSubmitted = 0; ///< verify requests admitted
    uint64_t verifies = 0;        ///< verification attempts completed
    uint64_t verifyRejects = 0;   ///< verifications returning false
    uint64_t verifyFailures = 0;  ///< verify jobs that threw
    uint64_t pending = 0;         ///< admitted, not yet completed
    double sigsPerSec = 0;        ///< completed / epoch wall clock
    /// End-to-end latency of this tenant's completed sign jobs (ns).
    /// Filled only in sign-plane snapshots (see StatsRegistry::
    /// snapshot's plane mask), so fabric merges can sum buckets.
    telemetry::HistogramSnapshot signLatency;
    /// Same for the async verify plane.
    telemetry::HistogramSnapshot verifyLatency;
};

/** One snapshot of the whole serving layer. */
struct ServiceStats
{
    uint64_t queueDepth = 0;     ///< jobs waiting in the sign queue
    uint64_t inFlight = 0;       ///< sign submitted, not yet completed
    uint64_t signsSubmitted = 0;
    uint64_t signsCompleted = 0;
    uint64_t signFailures = 0;
    uint64_t signsRejected = 0;  ///< refused by admission control
    /// Cross-signature lane groups run by the sign workers (coalesced
    /// pops of >= 2 same-context jobs signed in lockstep).
    uint64_t signLaneGroups = 0;
    uint64_t signCrossSignJobs = 0; ///< jobs signed inside such groups

    uint64_t verifyQueueDepth = 0; ///< jobs waiting in the verify queue
    uint64_t verifyInFlight = 0;   ///< verify submitted, not completed
    uint64_t verifiesSubmitted = 0; ///< sync + async requests accepted
    uint64_t verifies = 0;          ///< attempts with a verdict
    uint64_t verifyRejects = 0;     ///< false verdicts (incl. unknown)
    uint64_t verifyFailures = 0;    ///< verify jobs that threw
    uint64_t verifiesRejected = 0;  ///< refused by admission control
    /// Requests for unregistered key ids: they reject and count in
    /// the globals but never create registry entries, so this is the
    /// exact difference between `verifies` and the per-tenant sums.
    uint64_t unknownTenantRejects = 0;

    /// Queued sign jobs dropped at dequeue because their deadline had
    /// passed (failed with DeadlineExceeded; included in failures).
    uint64_t signExpired = 0;
    /// Same for the verify plane.
    uint64_t verifyExpired = 0;
    /// Completion callbacks that threw (the result still reached its
    /// future untouched).
    uint64_t callbackErrors = 0;
    /// Sign worker-loop passes aborted by an escaped exception; the
    /// worker failed its in-flight jobs and kept running.
    uint64_t workerRestarts = 0;
    /// Same for the verify plane's workers.
    uint64_t verifyWorkerRestarts = 0;
    /// Verify-after-sign guard mismatches (signatures re-signed on
    /// the scalar path before release).
    uint64_t guardMismatches = 0;
    /// SIMD tiers quarantined by this service's guard.
    uint64_t laneQuarantines = 0;

    double wallUs = 0;           ///< first submit -> last completion
    double sigsPerSec = 0;
    double verifiesPerSec = 0;
    CacheStats cache;
    std::map<std::string, TenantStats> tenants;
    /// Per-stage latency and group-shape histograms from the
    /// telemetry plane, keyed "<plane>_<metric>" (e.g.
    /// "sign_queue_wait", "verify_crypto", "sign_group_size");
    /// latency values are nanoseconds. Each service fills only its
    /// own plane's keys, so the maps of a sign/verify pair are
    /// disjoint and mergedWith() can sum buckets.
    std::map<std::string, telemetry::HistogramSnapshot> stages;

    /**
     * Merge this snapshot with @p other into one fabric-wide view.
     * Intended for a SignService/VerifyService pair sharing one
     * ContextCache and StatsRegistry: plane-specific counters add
     * (each plane's fields are non-zero in only one input), while
     * per-tenant and cache counters — snapshots of the *same* shared
     * state taken instants apart — take the field-wise maximum (the
     * larger value is the later read of a monotonic counter).
     */
    ServiceStats
    mergedWith(const ServiceStats &other) const
    {
        ServiceStats m = *this;
        m.queueDepth += other.queueDepth;
        m.inFlight += other.inFlight;
        m.signsSubmitted += other.signsSubmitted;
        m.signsCompleted += other.signsCompleted;
        m.signFailures += other.signFailures;
        m.signsRejected += other.signsRejected;
        m.signLaneGroups += other.signLaneGroups;
        m.signCrossSignJobs += other.signCrossSignJobs;
        m.verifyQueueDepth += other.verifyQueueDepth;
        m.verifyInFlight += other.verifyInFlight;
        m.verifiesSubmitted += other.verifiesSubmitted;
        m.verifies += other.verifies;
        m.verifyRejects += other.verifyRejects;
        m.verifyFailures += other.verifyFailures;
        m.verifiesRejected += other.verifiesRejected;
        m.unknownTenantRejects += other.unknownTenantRejects;
        m.signExpired += other.signExpired;
        m.verifyExpired += other.verifyExpired;
        m.callbackErrors += other.callbackErrors;
        m.workerRestarts += other.workerRestarts;
        m.verifyWorkerRestarts += other.verifyWorkerRestarts;
        m.guardMismatches += other.guardMismatches;
        m.laneQuarantines += other.laneQuarantines;
        m.wallUs = std::max(wallUs, other.wallUs);
        m.sigsPerSec = std::max(sigsPerSec, other.sigsPerSec);
        m.verifiesPerSec =
            std::max(verifiesPerSec, other.verifiesPerSec);
        if (other.cache.hits + other.cache.misses >
            m.cache.hits + m.cache.misses)
            m.cache = other.cache;
        for (const auto &[id, t] : other.tenants) {
            TenantStats &dst = m.tenants[id];
            dst.signsSubmitted =
                std::max(dst.signsSubmitted, t.signsSubmitted);
            dst.signsCompleted =
                std::max(dst.signsCompleted, t.signsCompleted);
            dst.signFailures =
                std::max(dst.signFailures, t.signFailures);
            dst.verifiesSubmitted =
                std::max(dst.verifiesSubmitted, t.verifiesSubmitted);
            dst.verifies = std::max(dst.verifies, t.verifies);
            dst.verifyRejects =
                std::max(dst.verifyRejects, t.verifyRejects);
            dst.verifyFailures =
                std::max(dst.verifyFailures, t.verifyFailures);
            dst.pending = std::max(dst.pending, t.pending);
            dst.sigsPerSec = std::max(dst.sigsPerSec, t.sigsPerSec);
            // Latency histograms are plane-masked at snapshot time
            // (each input fills only its own plane), so summing
            // buckets never double-counts.
            dst.signLatency.merge(t.signLatency);
            dst.verifyLatency.merge(t.verifyLatency);
        }
        for (const auto &[key, snap] : other.stages)
            m.stages[key].merge(snap);
        return m;
    }
};

/** Live per-tenant counters; pointer-stable once created. */
struct TenantCounters
{
    /// The tenant's key id, fixed at creation; hot paths label trace
    /// spans with it without a registry lookup.
    std::string id;

    std::atomic<uint64_t> signsSubmitted{0};
    std::atomic<uint64_t> signsCompleted{0};
    std::atomic<uint64_t> signFailures{0};
    std::atomic<uint64_t> verifiesSubmitted{0};
    std::atomic<uint64_t> verifies{0};
    std::atomic<uint64_t> verifyRejects{0};
    std::atomic<uint64_t> verifyFailures{0};
    /// Jobs admitted and not yet completed across both planes — the
    /// value the per-tenant quota is enforced against (see
    /// AdmissionController).
    std::atomic<uint64_t> pending{0};

    /// Per-tenant end-to-end latency (ns), one histogram per plane.
    /// Single-sharded: per-tenant write rates don't justify the
    /// sharded footprint, and recording stays lock-free regardless.
    telemetry::LatencyHistogram signLatency{1};
    telemetry::LatencyHistogram verifyLatency{1};
};

/**
 * Registry of per-tenant counters shared by the sign and verify
 * services. Thread-safe; tenant() returns a reference that stays
 * valid for the registry's lifetime, so hot paths update atomics
 * without holding the registry lock.
 */
class StatsRegistry
{
  public:
    /// Plane-mask bits for snapshot(): which planes' per-tenant
    /// latency histograms to include. Services pass only their own
    /// plane so a sign/verify pair's snapshots stay disjoint and
    /// mergedWith() can sum buckets.
    static constexpr unsigned kSignPlane = 1u << 0;
    static constexpr unsigned kVerifyPlane = 1u << 1;
    static constexpr unsigned kBothPlanes = kSignPlane | kVerifyPlane;

    explicit StatsRegistry(
        const telemetry::TelemetryConfig &telemetry_config = {})
        : telemetry_(telemetry_config)
    {
    }

    /** Find or create the counters for @p tenant. */
    TenantCounters &
    tenant(const std::string &tenant_id)
    {
        std::lock_guard<std::mutex> lk(m_);
        auto &slot = tenants_[tenant_id];
        if (!slot) {
            slot = std::make_unique<TenantCounters>();
            slot->id = tenant_id;
        }
        return *slot;
    }

    /**
     * The registry's telemetry plane: every service wired to this
     * registry stamps and records into it, so one snapshot covers
     * the whole fabric.
     */
    telemetry::Telemetry &telemetry() { return telemetry_; }
    const telemetry::Telemetry &telemetry() const
    {
        return telemetry_;
    }

    /**
     * Snapshot every tenant's counters; @p wall_us > 0 fills the
     * per-tenant signing rates. @p plane_mask selects which planes'
     * latency histograms to include (kSignPlane/kVerifyPlane bits).
     */
    std::map<std::string, TenantStats>
    snapshot(double wall_us = 0,
             unsigned plane_mask = kBothPlanes) const
    {
        std::lock_guard<std::mutex> lk(m_);
        std::map<std::string, TenantStats> out;
        for (const auto &[id, c] : tenants_) {
            TenantStats t;
            t.signsSubmitted = c->signsSubmitted.load();
            t.signsCompleted = c->signsCompleted.load();
            t.signFailures = c->signFailures.load();
            t.verifiesSubmitted = c->verifiesSubmitted.load();
            t.verifies = c->verifies.load();
            t.verifyRejects = c->verifyRejects.load();
            t.verifyFailures = c->verifyFailures.load();
            t.pending = c->pending.load();
            if (wall_us > 0)
                t.sigsPerSec = t.signsCompleted * 1e6 / wall_us;
            if (plane_mask & kSignPlane)
                t.signLatency = c->signLatency.snapshot();
            if (plane_mask & kVerifyPlane)
                t.verifyLatency = c->verifyLatency.snapshot();
            out.emplace(id, t);
        }
        return out;
    }

    /**
     * Render @p snap (typically the mergedWith() of a fabric's
     * per-service snapshots) as one line of JSON: counters, gauges,
     * cache, per-stage histogram percentiles and per-tenant stats.
     */
    static std::string exportJson(const ServiceStats &snap);

    /**
     * Render @p snap in Prometheus text exposition format: TYPE/HELP
     * comments, counter/gauge samples, and cumulative _bucket/_sum/
     * _count series (latencies in seconds) per stage and tenant.
     */
    static std::string exportPrometheus(const ServiceStats &snap);

  private:
    mutable std::mutex m_;
    std::map<std::string, std::unique_ptr<TenantCounters>> tenants_;
    telemetry::Telemetry telemetry_;
};

} // namespace herosign::service

#endif // HEROSIGN_SERVICE_SERVICE_STATS_HH
