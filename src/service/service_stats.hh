/**
 * @file
 * The unified statistics surface of the serving layer. SignService and
 * VerifyService write per-tenant counters into one shared
 * StatsRegistry, so a single snapshot answers the admission-control
 * questions — queue depth, jobs in flight, per-tenant signing rate,
 * verify failures — across both traffic directions.
 */

#ifndef HEROSIGN_SERVICE_SERVICE_STATS_HH
#define HEROSIGN_SERVICE_SERVICE_STATS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace herosign::service
{

/** Context-cache behaviour counters (see ContextCache). */
struct CacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;      ///< == warm contexts built
    uint64_t evictions = 0;
    size_t size = 0;
    size_t capacity = 0;
};

/** Per-tenant snapshot values. */
struct TenantStats
{
    uint64_t signsSubmitted = 0;
    uint64_t signsCompleted = 0;  ///< successful signatures
    uint64_t signFailures = 0;    ///< sign jobs that threw
    uint64_t verifies = 0;        ///< verification attempts
    uint64_t verifyRejects = 0;   ///< verifications returning false
    double sigsPerSec = 0;        ///< completed / epoch wall clock
};

/** One snapshot of the whole serving layer. */
struct ServiceStats
{
    uint64_t queueDepth = 0;     ///< jobs waiting in the sign queue
    uint64_t inFlight = 0;       ///< submitted and not yet completed
    uint64_t signsSubmitted = 0;
    uint64_t signsCompleted = 0;
    uint64_t signFailures = 0;
    uint64_t signsRejected = 0;  ///< refused by admission control
    uint64_t verifies = 0;
    uint64_t verifyRejects = 0;
    double wallUs = 0;           ///< first submit -> last completion
    double sigsPerSec = 0;
    CacheStats cache;
    std::map<std::string, TenantStats> tenants;
};

/** Live per-tenant counters; pointer-stable once created. */
struct TenantCounters
{
    std::atomic<uint64_t> signsSubmitted{0};
    std::atomic<uint64_t> signsCompleted{0};
    std::atomic<uint64_t> signFailures{0};
    std::atomic<uint64_t> verifies{0};
    std::atomic<uint64_t> verifyRejects{0};
};

/**
 * Registry of per-tenant counters shared by the sign and verify
 * services. Thread-safe; tenant() returns a reference that stays
 * valid for the registry's lifetime, so hot paths update atomics
 * without holding the registry lock.
 */
class StatsRegistry
{
  public:
    /** Find or create the counters for @p tenant. */
    TenantCounters &
    tenant(const std::string &tenant_id)
    {
        std::lock_guard<std::mutex> lk(m_);
        auto &slot = tenants_[tenant_id];
        if (!slot)
            slot = std::make_unique<TenantCounters>();
        return *slot;
    }

    /**
     * Snapshot every tenant's counters; @p wall_us > 0 fills the
     * per-tenant signing rates.
     */
    std::map<std::string, TenantStats>
    snapshot(double wall_us = 0) const
    {
        std::lock_guard<std::mutex> lk(m_);
        std::map<std::string, TenantStats> out;
        for (const auto &[id, c] : tenants_) {
            TenantStats t;
            t.signsSubmitted = c->signsSubmitted.load();
            t.signsCompleted = c->signsCompleted.load();
            t.signFailures = c->signFailures.load();
            t.verifies = c->verifies.load();
            t.verifyRejects = c->verifyRejects.load();
            if (wall_us > 0)
                t.sigsPerSec = t.signsCompleted * 1e6 / wall_us;
            out.emplace(id, t);
        }
        return out;
    }

  private:
    mutable std::mutex m_;
    std::map<std::string, std::unique_ptr<TenantCounters>> tenants_;
};

} // namespace herosign::service

#endif // HEROSIGN_SERVICE_SERVICE_STATS_HH
