/**
 * @file
 * SignService: the multi-tenant signing front end. One worker pool
 * serves every registered key — each request is routed through the
 * warm ContextCache at admission, so the only per-tenant cost is the
 * first touch (one Context construction) and the hot path signs with
 * shared immutable state only. Admission control is a bounded
 * pending-job cap surfaced through the unified ServiceStats.
 */

#ifndef HEROSIGN_SERVICE_SIGN_SERVICE_HH
#define HEROSIGN_SERVICE_SIGN_SERVICE_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "batch/mpmc_queue.hh"
#include "service/context_cache.hh"
#include "service/key_store.hh"
#include "service/service_stats.hh"

namespace herosign::service
{

/** Thrown when admission control refuses a submit. */
class ServiceOverload : public std::runtime_error
{
  public:
    explicit ServiceOverload(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** Construction-time knobs shared by the serving-layer services. */
struct ServiceConfig
{
    unsigned workers = 4;  ///< sign worker threads (clamped to >= 1)
    unsigned shards = 4;   ///< queue shards (clamped to >= 1)
    size_t contextCacheCapacity = 64; ///< warm per-key contexts kept
    /// Reject submits once this many jobs are pending (0 = unbounded).
    uint64_t maxPending = 0;
    Sha256Variant variant = Sha256Variant::Native;
};

/**
 * Multi-tenant signing service over a KeyStore.
 *
 * Thread-safe: submit() may be called concurrently from any number of
 * producers. Each request resolves its tenant's warm context once at
 * admission; workers then sign with no shared-state construction at
 * all. The destructor drains outstanding work before joining.
 */
class SignService
{
  public:
    /**
     * @param store   key registry (must outlive the service)
     * @param config  pool/cache/admission knobs
     * @param cache   optional shared warm-context cache (e.g. the one
     *                a VerifyService uses); nullptr builds a private
     *                one sized by the config
     * @param stats   optional shared per-tenant stats registry;
     *                nullptr builds a private one
     */
    explicit SignService(KeyStore &store,
                         const ServiceConfig &config = {},
                         std::shared_ptr<ContextCache> cache = nullptr,
                         std::shared_ptr<StatsRegistry> stats = nullptr);
    ~SignService();

    SignService(const SignService &) = delete;
    SignService &operator=(const SignService &) = delete;

    /**
     * Queue one message for tenant @p key_id; the future yields the
     * signature (or the exception signing raised).
     * @throws std::invalid_argument for unknown or verify-only keys
     * @throws ServiceOverload when the pending cap is hit
     */
    std::future<ByteVec> submitSign(const std::string &key_id,
                                    ByteVec msg, ByteVec opt_rand = {});

    /** Block until everything submitted so far has completed. */
    void drain();

    /** Snapshot the unified serving-layer statistics. */
    ServiceStats stats() const;

    /** Jobs submitted and not yet completed (approximate). */
    uint64_t pending() const
    {
        const uint64_t done = completed_.load();
        const uint64_t sub = submitted_.load();
        return sub - done;
    }

    unsigned workers() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    const std::shared_ptr<ContextCache> &contextCache() const
    {
        return cache_;
    }

    const std::shared_ptr<StatsRegistry> &statsRegistry() const
    {
        return statsReg_;
    }

    KeyStore &keyStore() const { return store_; }

  private:
    /** One queued signing job, fully routed at admission. */
    struct Task
    {
        std::shared_ptr<const WarmContext> warm;
        TenantCounters *tenant = nullptr;
        ByteVec msg;
        ByteVec optRand;
        std::promise<ByteVec> promise;
    };

    struct Worker
    {
        std::thread thread;
    };

    void workerLoop(unsigned id);

    KeyStore &store_;
    ServiceConfig config_;
    std::shared_ptr<ContextCache> cache_;
    std::shared_ptr<StatsRegistry> statsReg_;
    batch::ShardedMpmcQueue<Task> queue_;
    std::vector<std::unique_ptr<Worker>> workers_;

    std::atomic<uint64_t> submitted_{0};
    std::atomic<uint64_t> completed_{0};
    std::atomic<uint64_t> failures_{0};
    std::atomic<uint64_t> rejected_{0};

    // Epoch bookkeeping for wall-clock rates, guarded by drainM_.
    mutable std::mutex drainM_;
    std::condition_variable drainCv_;
    std::chrono::steady_clock::time_point epochStart_;
    std::chrono::steady_clock::time_point lastCompletion_;
    bool epochOpen_ = false;
};

} // namespace herosign::service

#endif // HEROSIGN_SERVICE_SIGN_SERVICE_HH
