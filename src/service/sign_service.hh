/**
 * @file
 * SignService: the multi-tenant signing front end. One worker pool
 * serves every registered key — each request is routed through the
 * warm ContextCache at admission, so the only per-tenant cost is the
 * first touch (one Context construction) and the hot path signs with
 * shared immutable state only. Workers coalesce queued jobs per pass
 * and sign each same-context (same-tenant) run as one cross-signature
 * lane group via batch::LaneScheduler, so SIMD hash lanes fill across
 * signatures even under interleaved multi-tenant traffic. Admission
 * control is a bounded pending-job cap surfaced through the unified
 * ServiceStats.
 */

#ifndef HEROSIGN_SERVICE_SIGN_SERVICE_HH
#define HEROSIGN_SERVICE_SIGN_SERVICE_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <thread>
#include <vector>

#include "batch/mpmc_queue.hh"
#include "batch/sign_request.hh"
#include "service/admission.hh"
#include "service/context_cache.hh"
#include "service/key_store.hh"
#include "service/service_stats.hh"

namespace herosign::service
{

/**
 * Multi-tenant signing service over a KeyStore.
 *
 * Thread-safe: submit() may be called concurrently from any number of
 * producers. Each request resolves its tenant's warm context once at
 * admission; workers then sign with no shared-state construction at
 * all. The destructor drains outstanding work before joining.
 */
class SignService
{
  public:
    /**
     * @param store   key registry (must outlive the service)
     * @param config  pool/cache/admission knobs
     * @param cache   optional shared warm-context cache (e.g. the one
     *                a VerifyService uses); nullptr builds a private
     *                one sized by the config
     * @param stats   optional shared per-tenant stats registry;
     *                nullptr builds a private one
     * @param admission  optional shared admission controller (pass a
     *                VerifyService's for one fabric-wide budget);
     *                nullptr builds a private one from the config
     */
    explicit SignService(
        KeyStore &store, const ServiceConfig &config = {},
        std::shared_ptr<ContextCache> cache = nullptr,
        std::shared_ptr<StatsRegistry> stats = nullptr,
        std::shared_ptr<AdmissionController> admission = nullptr);
    ~SignService();

    SignService(const SignService &) = delete;
    SignService &operator=(const SignService &) = delete;

    /**
     * Queue one request for tenant @p key_id; the future yields the
     * signature (or the exception signing raised). The request's
     * callback, when set, runs on the worker thread with the
     * service-wide submission sequence number.
     * @throws std::invalid_argument for unknown or verify-only keys
     * @throws ServiceOverload when the pending cap is hit
     */
    std::future<ByteVec> submit(const std::string &key_id,
                                batch::SignRequest req);

    /**
     * Queue a batch for one tenant; futures are in request order and
     * every per-request field (optRand, callback) is honored. The
     * requests are consumed (moved from). Throws on the first request
     * an admission limit refuses — earlier requests stay queued.
     */
    std::vector<std::future<ByteVec>>
    submitMany(const std::string &key_id,
               std::span<batch::SignRequest> reqs);

    /** Legacy positional shim for submit(key_id, SignRequest). */
    std::future<ByteVec> submitSign(const std::string &key_id,
                                    ByteVec msg, ByteVec opt_rand = {});

    /** Block until everything submitted so far has completed. */
    void drain();

    /**
     * Shut down without stranding: reject new submits with
     * ServiceShutdown, fast-fail every still-queued task (their
     * admission slots are released, so the shared budget returns to
     * its idle level), and join the workers. Tasks already signing
     * finish normally. Idempotent; the destructor after close() is a
     * no-op join. Plain destruction instead drains gracefully by
     * signing everything queued.
     */
    void close();

    /** Snapshot the unified serving-layer statistics. */
    ServiceStats stats() const;

    /** Jobs submitted and not yet completed (approximate). */
    uint64_t pending() const
    {
        const uint64_t done = completed_.load();
        const uint64_t sub = submitted_.load();
        return sub - done;
    }

    unsigned workers() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /** Jobs one worker coalesces per pass (1 = no coalescing). */
    unsigned coalesceWindow() const { return coalesce_; }

    const std::shared_ptr<ContextCache> &contextCache() const
    {
        return cache_;
    }

    const std::shared_ptr<StatsRegistry> &statsRegistry() const
    {
        return statsReg_;
    }

    const std::shared_ptr<AdmissionController> &admission() const
    {
        return admission_;
    }

    KeyStore &keyStore() const { return store_; }

  private:
    /** One queued signing job, fully routed at admission. */
    struct Task
    {
        std::shared_ptr<const WarmContext> warm;
        TenantCounters *tenant = nullptr;
        uint64_t seq = 0;
        ByteVec msg;
        ByteVec optRand;
        batch::SignCallback callback;
        std::optional<batch::Deadline> deadline;
        std::promise<ByteVec> promise;
        /// Set once the promise is fulfilled or failed; lets the
        /// worker supervisor fail exactly the unsettled tasks.
        bool settled = false;
        /// Telemetry stage stamps plus accumulated kSpan* flags.
        telemetry::TraceClock trace;
        uint32_t traceFlags = 0;
    };

    struct Worker
    {
        std::thread thread;
    };

    void workerLoop(unsigned id);
    void processChunk(std::vector<Task> &chunk);
    void finishTask(Task &task, ByteVec sig);
    void failTask(Task &task, std::exception_ptr err);
    void noteCompletion();
    void signSameContextGroup(Task *const tasks[], unsigned count);
    ByteVec guardSignature(ByteVec sig, Task &task);
    void completeTrace(Task &task, bool ok);

    KeyStore &store_;
    ServiceConfig config_;
    std::shared_ptr<ContextCache> cache_;
    std::shared_ptr<StatsRegistry> statsReg_;
    /// The shared registry's telemetry plane (never null; cached so
    /// hot paths skip the shared_ptr indirection).
    telemetry::Telemetry *tel_;
    std::shared_ptr<AdmissionController> admission_;
    batch::ShardedMpmcQueue<Task> queue_;
    unsigned coalesce_;
    std::vector<std::unique_ptr<Worker>> workers_;

    std::atomic<bool> closing_{false};
    std::atomic<uint64_t> submitted_{0};
    std::atomic<uint64_t> completed_{0};
    std::atomic<uint64_t> failures_{0};
    std::atomic<uint64_t> rejected_{0};
    std::atomic<uint64_t> laneGroups_{0};
    std::atomic<uint64_t> crossSignJobs_{0};
    std::atomic<uint64_t> expired_{0};
    std::atomic<uint64_t> callbackErrors_{0};
    std::atomic<uint64_t> workerRestarts_{0};
    std::atomic<uint64_t> guardMismatches_{0};
    std::atomic<uint64_t> laneQuarantines_{0};

    // Epoch bookkeeping for wall-clock rates, guarded by drainM_.
    mutable std::mutex drainM_;
    std::condition_variable drainCv_;
    std::chrono::steady_clock::time_point epochStart_;
    std::chrono::steady_clock::time_point lastCompletion_;
    bool epochOpen_ = false;
};

} // namespace herosign::service

#endif // HEROSIGN_SERVICE_SIGN_SERVICE_HH
