#include "service/context_cache.hh"

#include <stdexcept>

namespace herosign::service
{

std::shared_ptr<const WarmContext>
ContextCache::acquire(const std::shared_ptr<const KeyRecord> &key)
{
    if (!key)
        throw std::invalid_argument("ContextCache: null key record");

    {
        std::lock_guard<std::mutex> lk(m_);
        auto it = map_.find(key->id);
        if (it != map_.end()) {
            if (it->second.warm->key == key) {
                ++hits_;
                lru_.splice(lru_.begin(), lru_, it->second.lruIt);
                return it->second.warm;
            }
            // Same id, different record: the tenant's key was rotated
            // (removed and re-registered). The stale warm context must
            // not serve the new record — drop it and rebuild.
            ++evictions_;
            lru_.erase(it->second.lruIt);
            map_.erase(it);
        }
    }

    // Build outside the lock: the seed-block hash is the expensive
    // part, and two racing builders for one key are harmless (both
    // results are identical; the second insert wins the map slot).
    auto warm = std::make_shared<const WarmContext>(key, variant_);

    std::lock_guard<std::mutex> lk(m_);
    auto it = map_.find(key->id);
    if (it != map_.end()) {
        if (it->second.warm->key == key) {
            // Raced with another builder; adopt the cached one.
            ++hits_;
            lru_.splice(lru_.begin(), lru_, it->second.lruIt);
            return it->second.warm;
        }
        // Raced with a rotation: replace the stale entry.
        ++evictions_;
        lru_.erase(it->second.lruIt);
        map_.erase(it);
    }
    ++misses_;
    lru_.push_front(key->id);
    map_.emplace(key->id, Entry{warm, lru_.begin()});
    while (map_.size() > cap_) {
        ++evictions_;
        map_.erase(lru_.back());
        lru_.pop_back();
    }
    return warm;
}

CacheStats
ContextCache::stats() const
{
    std::lock_guard<std::mutex> lk(m_);
    CacheStats s;
    s.hits = hits_;
    s.misses = misses_;
    s.evictions = evictions_;
    s.size = map_.size();
    s.capacity = cap_;
    return s;
}

size_t
ContextCache::size() const
{
    std::lock_guard<std::mutex> lk(m_);
    return map_.size();
}

void
ContextCache::clear()
{
    std::lock_guard<std::mutex> lk(m_);
    map_.clear();
    lru_.clear();
}

} // namespace herosign::service
