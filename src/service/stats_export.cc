/**
 * @file
 * StatsRegistry::exportJson / exportPrometheus: render one
 * ServiceStats snapshot (typically the mergedWith() of a fabric's
 * per-service snapshots) for machines.
 *
 * JSON is a single line (no embedded newlines), so a MetricsReporter
 * appending one snapshot per period produces valid JSONL. The
 * Prometheus rendering follows the text exposition format: TYPE/HELP
 * comments, counters suffixed _total, histograms as cumulative
 * _bucket{le=...}/_sum/_count series with latencies converted from
 * the telemetry plane's nanoseconds to seconds.
 */

#include "service/service_stats.hh"

#include <cmath>
#include <sstream>

namespace herosign::service
{

namespace
{

using telemetry::HistogramSnapshot;
using telemetry::LatencyHistogram;

constexpr double kNsPerSec = 1e9;

/** Counter/gauge name → value table driving both exporters. */
struct NamedValue
{
    const char *name;
    uint64_t value;
    bool isGauge;
};

std::vector<NamedValue>
namedValues(const ServiceStats &s)
{
    return {
        {"queue_depth", s.queueDepth, true},
        {"in_flight", s.inFlight, true},
        {"signs_submitted", s.signsSubmitted, false},
        {"signs_completed", s.signsCompleted, false},
        {"sign_failures", s.signFailures, false},
        {"signs_rejected", s.signsRejected, false},
        {"sign_lane_groups", s.signLaneGroups, false},
        {"sign_cross_sign_jobs", s.signCrossSignJobs, false},
        {"verify_queue_depth", s.verifyQueueDepth, true},
        {"verify_in_flight", s.verifyInFlight, true},
        {"verifies_submitted", s.verifiesSubmitted, false},
        {"verifies", s.verifies, false},
        {"verify_rejects", s.verifyRejects, false},
        {"verify_failures", s.verifyFailures, false},
        {"verifies_rejected", s.verifiesRejected, false},
        {"unknown_tenant_rejects", s.unknownTenantRejects, false},
        {"sign_expired", s.signExpired, false},
        {"verify_expired", s.verifyExpired, false},
        {"callback_errors", s.callbackErrors, false},
        {"worker_restarts", s.workerRestarts, false},
        {"verify_worker_restarts", s.verifyWorkerRestarts, false},
        {"guard_mismatches", s.guardMismatches, false},
        {"lane_quarantines", s.laneQuarantines, false},
    };
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s)
    {
        switch (c)
        {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        case '\r':
            out += "\\r";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20)
            {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            }
            else
                out += c;
        }
    }
    return out;
}

void
jsonHistogram(std::ostringstream &os, const HistogramSnapshot &h)
{
    os << "{\"count\":" << h.count << ",\"min_ns\":" << h.min
       << ",\"max_ns\":" << h.max << ",\"mean_ns\":" << h.mean()
       << ",\"p50_ns\":" << h.percentile(0.50)
       << ",\"p90_ns\":" << h.percentile(0.90)
       << ",\"p99_ns\":" << h.percentile(0.99)
       << ",\"p999_ns\":" << h.percentile(0.999) << "}";
}

/**
 * Emit one Prometheus histogram metric family: cumulative
 * non-empty buckets, the +Inf bucket, _sum and _count. @p scale
 * divides raw values (1e9 turns nanoseconds into seconds).
 */
void
promHistogram(std::ostringstream &os, const std::string &family,
              const std::string &labels,
              const HistogramSnapshot &h, double scale)
{
    const std::string sep = labels.empty() ? "" : ",";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h.counts.size(); ++i)
    {
        if (h.counts[i] == 0)
            continue;
        cumulative += h.counts[i];
        const double le =
            static_cast<double>(LatencyHistogram::bucketUpperBound(
                static_cast<unsigned>(i))) /
            scale;
        os << family << "_bucket{" << labels << sep << "le=\"" << le
           << "\"} " << cumulative << "\n";
    }
    os << family << "_bucket{" << labels << sep << "le=\"+Inf\"} "
       << h.count << "\n";
    os << family << "_sum";
    if (!labels.empty())
        os << "{" << labels << "}";
    os << " " << static_cast<double>(h.sum) / scale << "\n";
    os << family << "_count";
    if (!labels.empty())
        os << "{" << labels << "}";
    os << " " << h.count << "\n";
}

/** Split a "<plane>_<metric>" stage key from snapshotStages(). */
bool
splitStageKey(const std::string &key, std::string &plane,
              std::string &metric)
{
    for (const char *p : {"sign_", "verify_"})
    {
        const std::string prefix(p);
        if (key.rfind(prefix, 0) == 0)
        {
            plane = prefix.substr(0, prefix.size() - 1);
            metric = key.substr(prefix.size());
            return true;
        }
    }
    return false;
}

bool
isLatencyMetric(const std::string &metric)
{
    return metric != "group_size" && metric != "lane_fill_pct";
}

} // namespace

std::string
StatsRegistry::exportJson(const ServiceStats &s)
{
    std::ostringstream os;
    os << "{";
    os << "\"counters\":{";
    bool first = true;
    for (const NamedValue &nv : namedValues(s))
    {
        if (nv.isGauge)
            continue;
        os << (first ? "" : ",") << "\"" << nv.name
           << "\":" << nv.value;
        first = false;
    }
    os << "},\"gauges\":{";
    first = true;
    for (const NamedValue &nv : namedValues(s))
    {
        if (!nv.isGauge)
            continue;
        os << (first ? "" : ",") << "\"" << nv.name
           << "\":" << nv.value;
        first = false;
    }
    os << "},\"rates\":{\"wall_us\":" << s.wallUs
       << ",\"sigs_per_sec\":" << s.sigsPerSec
       << ",\"verifies_per_sec\":" << s.verifiesPerSec << "}";
    os << ",\"cache\":{\"hits\":" << s.cache.hits
       << ",\"misses\":" << s.cache.misses
       << ",\"evictions\":" << s.cache.evictions
       << ",\"size\":" << s.cache.size
       << ",\"capacity\":" << s.cache.capacity << "}";
    os << ",\"stages\":{";
    first = true;
    for (const auto &[key, h] : s.stages)
    {
        os << (first ? "" : ",") << "\"" << jsonEscape(key)
           << "\":";
        jsonHistogram(os, h);
        first = false;
    }
    os << "},\"tenants\":{";
    first = true;
    for (const auto &[id, t] : s.tenants)
    {
        os << (first ? "" : ",") << "\"" << jsonEscape(id) << "\":{"
           << "\"signs_submitted\":" << t.signsSubmitted
           << ",\"signs_completed\":" << t.signsCompleted
           << ",\"sign_failures\":" << t.signFailures
           << ",\"verifies_submitted\":" << t.verifiesSubmitted
           << ",\"verifies\":" << t.verifies
           << ",\"verify_rejects\":" << t.verifyRejects
           << ",\"verify_failures\":" << t.verifyFailures
           << ",\"pending\":" << t.pending
           << ",\"sigs_per_sec\":" << t.sigsPerSec;
        if (!t.signLatency.empty())
        {
            os << ",\"sign_latency\":";
            jsonHistogram(os, t.signLatency);
        }
        if (!t.verifyLatency.empty())
        {
            os << ",\"verify_latency\":";
            jsonHistogram(os, t.verifyLatency);
        }
        os << "}";
        first = false;
    }
    os << "}}";
    return os.str();
}

std::string
StatsRegistry::exportPrometheus(const ServiceStats &s)
{
    std::ostringstream os;
    for (const NamedValue &nv : namedValues(s))
    {
        const std::string name =
            std::string("herosign_") + nv.name +
            (nv.isGauge ? "" : "_total");
        os << "# HELP " << name << " herosign serving-layer "
           << (nv.isGauge ? "gauge" : "counter") << "\n";
        os << "# TYPE " << name << " "
           << (nv.isGauge ? "gauge" : "counter") << "\n";
        os << name << " " << nv.value << "\n";
    }

    os << "# HELP herosign_cache_size warm contexts held\n"
       << "# TYPE herosign_cache_size gauge\n"
       << "herosign_cache_size " << s.cache.size << "\n"
       << "# HELP herosign_cache_hits_total context cache hits\n"
       << "# TYPE herosign_cache_hits_total counter\n"
       << "herosign_cache_hits_total " << s.cache.hits << "\n"
       << "# HELP herosign_cache_misses_total context cache misses\n"
       << "# TYPE herosign_cache_misses_total counter\n"
       << "herosign_cache_misses_total " << s.cache.misses << "\n";

    // Stage latency histograms: one family, labelled by plane+stage.
    bool anyLatency = false;
    bool anyShape = false;
    for (const auto &[key, h] : s.stages)
    {
        (void)h;
        std::string plane, metric;
        if (!splitStageKey(key, plane, metric))
            continue;
        (isLatencyMetric(metric) ? anyLatency : anyShape) = true;
    }
    if (anyLatency)
        os << "# HELP herosign_stage_latency_seconds per-request "
              "stage latency decomposition\n"
           << "# TYPE herosign_stage_latency_seconds histogram\n";
    for (const auto &[key, h] : s.stages)
    {
        std::string plane, metric;
        if (!splitStageKey(key, plane, metric) ||
            !isLatencyMetric(metric))
            continue;
        promHistogram(os, "herosign_stage_latency_seconds",
                      "plane=\"" + plane + "\",stage=\"" + metric +
                          "\"",
                      h, kNsPerSec);
    }
    if (anyShape)
        os << "# HELP herosign_group_shape coalesced group size and "
              "lane fill percentage\n"
           << "# TYPE herosign_group_shape histogram\n";
    for (const auto &[key, h] : s.stages)
    {
        std::string plane, metric;
        if (!splitStageKey(key, plane, metric) ||
            isLatencyMetric(metric))
            continue;
        promHistogram(os, "herosign_group_shape",
                      "plane=\"" + plane + "\",metric=\"" + metric +
                          "\"",
                      h, 1.0);
    }

    // Per-tenant counters and end-to-end latency.
    if (!s.tenants.empty())
        os << "# HELP herosign_tenant_signs_completed_total "
              "per-tenant completed signatures\n"
           << "# TYPE herosign_tenant_signs_completed_total "
              "counter\n"
           << "# HELP herosign_tenant_verifies_total per-tenant "
              "verification attempts\n"
           << "# TYPE herosign_tenant_verifies_total counter\n"
           << "# HELP herosign_tenant_pending per-tenant pending "
              "jobs\n"
           << "# TYPE herosign_tenant_pending gauge\n";
    bool anyTenantLatency = false;
    for (const auto &[id, t] : s.tenants)
        if (!t.signLatency.empty() || !t.verifyLatency.empty())
            anyTenantLatency = true;
    if (anyTenantLatency)
        os << "# HELP herosign_tenant_latency_seconds per-tenant "
              "end-to-end request latency\n"
           << "# TYPE herosign_tenant_latency_seconds histogram\n";
    for (const auto &[id, t] : s.tenants)
    {
        const std::string tenant = "tenant=\"" + id + "\"";
        os << "herosign_tenant_signs_completed_total{" << tenant
           << "} " << t.signsCompleted << "\n";
        os << "herosign_tenant_verifies_total{" << tenant << "} "
           << t.verifies << "\n";
        os << "herosign_tenant_pending{" << tenant << "} "
           << t.pending << "\n";
        if (!t.signLatency.empty())
            promHistogram(os, "herosign_tenant_latency_seconds",
                          tenant + ",plane=\"sign\"", t.signLatency,
                          kNsPerSec);
        if (!t.verifyLatency.empty())
            promHistogram(os, "herosign_tenant_latency_seconds",
                          tenant + ",plane=\"verify\"",
                          t.verifyLatency, kNsPerSec);
    }
    return os.str();
}

} // namespace herosign::service
