#include "service/admission.hh"

namespace herosign::service
{

void
AdmissionController::admit(Plane plane, TenantCounters &tc,
                           const std::string &tenant_id)
{
    std::lock_guard<std::mutex> lk(m_);
    uint64_t &plane_pending =
        plane == Plane::Sign ? pendingSign_ : pendingVerify_;
    const uint64_t plane_cap = plane == Plane::Sign
                                   ? lim_.maxPendingSign
                                   : lim_.maxPendingVerify;
    if (plane_cap > 0 && plane_pending >= plane_cap) {
        if (plane == Plane::Sign)
            throw ServiceOverload(
                ServiceOverload::Kind::SignCap,
                "sign plane: " + std::to_string(plane_cap) +
                    " jobs already pending");
        throw ServiceOverload(ServiceOverload::Kind::VerifyCap,
                              "verify plane: " +
                                  std::to_string(plane_cap) +
                                  " jobs already pending");
    }
    if (lim_.maxPendingTotal > 0 &&
        pendingSign_ + pendingVerify_ >= lim_.maxPendingTotal)
        throw ServiceOverload(ServiceOverload::Kind::TotalCap,
                              "traffic fabric: " +
                                  std::to_string(lim_.maxPendingTotal) +
                                  " jobs already pending across planes");
    if (lim_.maxPendingPerTenant > 0 &&
        tc.pending.load(std::memory_order_relaxed) >=
            lim_.maxPendingPerTenant)
        throw ServiceOverload(
            ServiceOverload::Kind::TenantQuota,
            "tenant '" + tenant_id + "': quota of " +
                std::to_string(lim_.maxPendingPerTenant) +
                " pending jobs reached");
    ++plane_pending;
    tc.pending.fetch_add(1, std::memory_order_relaxed);
}

void
AdmissionController::release(Plane plane, TenantCounters &tc,
                             uint64_t count)
{
    std::lock_guard<std::mutex> lk(m_);
    uint64_t &plane_pending =
        plane == Plane::Sign ? pendingSign_ : pendingVerify_;
    plane_pending -= count;
    tc.pending.fetch_sub(count, std::memory_order_relaxed);
}

uint64_t
AdmissionController::pending(Plane plane) const
{
    std::lock_guard<std::mutex> lk(m_);
    return plane == Plane::Sign ? pendingSign_ : pendingVerify_;
}

uint64_t
AdmissionController::pendingTotal() const
{
    std::lock_guard<std::mutex> lk(m_);
    return pendingSign_ + pendingVerify_;
}

} // namespace herosign::service
