/**
 * @file
 * VerifyService: the batched, multi-tenant verification front end —
 * the other half of serving signature traffic. Two paths share one
 * set of warm contexts and counters:
 *
 *  - the synchronous path (verify / verifyBatch) groups the caller's
 *    requests by tenant on the caller's thread and runs each group
 *    through SphincsPlus::verifyBatch, filling the dispatched
 *    hash-lane width across signatures;
 *  - the asynchronous plane (submitVerify) queues requests on a
 *    sharded MPMC queue served by the service's own worker pool. A
 *    lane-filling batcher coalesces queued requests — up to the
 *    coalescing window per pass — and groups them per tenant, so
 *    interleaved mixed-tenant traffic still fills whole lane groups.
 *
 * Both planes sit behind the same AdmissionController as SignService
 * (per-direction caps, a shared budget, per-tenant quotas), rejecting
 * with typed ServiceOverload, and report into the same unified
 * ServiceStats / StatsRegistry surface.
 */

#ifndef HEROSIGN_SERVICE_VERIFY_SERVICE_HH
#define HEROSIGN_SERVICE_VERIFY_SERVICE_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "batch/mpmc_queue.hh"
#include "batch/sign_request.hh"
#include "service/admission.hh"
#include "service/context_cache.hh"
#include "service/key_store.hh"
#include "service/service_stats.hh"

namespace herosign::service
{

/** One verification request (spans must outlive the call). */
struct VerifyRequest
{
    std::string keyId;
    ByteSpan msg;
    ByteSpan sig;
};

/**
 * Multi-tenant verification service over a KeyStore.
 *
 * Thread-safe: the synchronous calls run on the caller's thread
 * (verification is read-only, so any number of threads may call
 * concurrently) and submitVerify() may be called from any number of
 * producers. The destructor drains outstanding async work before
 * joining the workers.
 */
class VerifyService
{
  public:
    /**
     * @param store      key registry (must outlive the service)
     * @param config     worker/queue/cache/admission knobs (the
     *                   verify* and maxPending* fields)
     * @param cache      optional shared warm-context cache (pass the
     *                   SignService's to serve both directions from
     *                   one set of warm contexts); nullptr builds a
     *                   private one sized by the config
     * @param stats      optional shared per-tenant stats registry
     * @param admission  optional shared admission controller (pass
     *                   the SignService's for one fabric-wide
     *                   budget); nullptr builds a private one from
     *                   the config's limits
     */
    explicit VerifyService(
        KeyStore &store, const ServiceConfig &config = {},
        std::shared_ptr<ContextCache> cache = nullptr,
        std::shared_ptr<StatsRegistry> stats = nullptr,
        std::shared_ptr<AdmissionController> admission = nullptr);
    ~VerifyService();

    VerifyService(const VerifyService &) = delete;
    VerifyService &operator=(const VerifyService &) = delete;

    /**
     * Verify one signature synchronously. Unknown tenants report
     * false (and count as unknownTenantRejects in the global counters
     * only — never as new registry entries, so unbounded
     * attacker-supplied ids cannot grow memory) rather than throwing:
     * in a serving loop a bad key id is data, not a programming
     * error.
     */
    bool verify(const std::string &key_id, ByteSpan msg, ByteSpan sig);

    /**
     * Verify a mixed-tenant batch synchronously. Results are
     * positional: out[i] is 1 when reqs[i] verified. Requests are
     * grouped by tenant and each group runs hashLaneWidth()
     * signatures per lane pass; results are bool-identical to calling
     * verify() per request.
     */
    std::vector<uint8_t>
    verifyBatch(const std::vector<VerifyRequest> &reqs);

    /** Single-tenant convenience overload. */
    std::vector<uint8_t> verifyBatch(const std::string &key_id,
                                     const std::vector<ByteVec> &msgs,
                                     const std::vector<ByteVec> &sigs);

    /**
     * Queue one verification on the async plane; the future yields
     * the verdict (identical to the synchronous path byte for byte)
     * or the exception verification raised. Unknown tenants resolve
     * to false immediately — reject-not-throw, same as the sync path
     * — without consuming admission budget.
     * @throws ServiceOverload when an admission limit trips
     */
    std::future<bool> submit(const std::string &key_id,
                             batch::VerifyRequest req);

    /**
     * Queue a batch for one tenant; futures are in request order. The
     * requests are consumed (moved from). Throws on the first request
     * an admission limit refuses — earlier requests stay queued.
     */
    std::vector<std::future<bool>>
    submitMany(const std::string &key_id,
               std::span<batch::VerifyRequest> reqs);

    /** Legacy positional shim for submit(key_id, VerifyRequest). */
    std::future<bool> submitVerify(const std::string &key_id,
                                   ByteVec msg, ByteVec sig);

    /** Block until everything submitted so far has a verdict. */
    void drain();

    /**
     * Shut down without stranding: reject new submits with
     * ServiceShutdown, fast-fail every still-queued request (their
     * admission slots are released), and join the workers. Requests
     * already verifying finish normally. Idempotent. Plain
     * destruction instead drains gracefully by verifying everything
     * queued.
     */
    void close();

    /** Snapshot (verify plane, cache, per-tenant). */
    ServiceStats stats() const;

    /** Requests accepted and not yet completed (approximate). */
    uint64_t pending() const
    {
        const uint64_t done =
            completed_.load(std::memory_order_acquire);
        const uint64_t sub =
            submitted_.load(std::memory_order_acquire);
        return sub - done;
    }

    unsigned workers() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /** Requests one worker coalesces into a single grouped pass. */
    unsigned coalesceWindow() const { return coalesce_; }

    const std::shared_ptr<ContextCache> &contextCache() const
    {
        return cache_;
    }

    const std::shared_ptr<StatsRegistry> &statsRegistry() const
    {
        return statsReg_;
    }

    const std::shared_ptr<AdmissionController> &admission() const
    {
        return admission_;
    }

  private:
    /** One queued verification, fully routed at admission. */
    struct Task
    {
        std::shared_ptr<const WarmContext> warm;
        TenantCounters *tenant = nullptr;
        ByteVec msg;
        ByteVec sig;
        std::optional<batch::Deadline> deadline;
        std::promise<bool> promise;
        /// Set once the promise is fulfilled or failed; lets the
        /// worker supervisor fail exactly the unsettled tasks.
        bool settled = false;
        /// Telemetry stage stamps plus accumulated kSpan* flags.
        telemetry::TraceClock trace;
        uint32_t traceFlags = 0;
    };

    void workerLoop(unsigned id);
    void processChunk(std::vector<Task> &chunk);
    void failTask(Task &task, std::exception_ptr err);
    void completeTrace(Task &task, bool ok);

    /**
     * Run one same-context group through the lane-parallel verifier
     * and account for it (global + per-tenant attempt and reject
     * counters). Returns the positional verdicts.
     */
    std::vector<uint8_t> runGroup(const WarmContext &warm,
                                  TenantCounters &tc,
                                  const std::vector<ByteSpan> &msgs,
                                  const std::vector<ByteSpan> &sigs);

    void openEpochAndCountSubmitted(uint64_t count);
    void noteCompletion(uint64_t count);

    KeyStore &store_;
    ServiceConfig config_;
    std::shared_ptr<ContextCache> cache_;
    std::shared_ptr<StatsRegistry> statsReg_;
    /// The shared registry's telemetry plane (never null; cached so
    /// hot paths skip the shared_ptr indirection).
    telemetry::Telemetry *tel_;
    std::shared_ptr<AdmissionController> admission_;
    batch::ShardedMpmcQueue<Task> queue_;
    unsigned coalesce_;
    std::vector<std::thread> workers_;

    std::atomic<bool> closing_{false};
    std::atomic<uint64_t> submitted_{0}; ///< accepted, both paths
    std::atomic<uint64_t> completed_{0}; ///< verdict or exception out
    std::atomic<uint64_t> verifies_{0};  ///< attempts with a verdict
    std::atomic<uint64_t> failures_{0};  ///< attempts that threw
    std::atomic<uint64_t> rejects_{0};   ///< false verdicts
    std::atomic<uint64_t> rejected_{0};  ///< admission refusals
    std::atomic<uint64_t> unknownRejects_{0};
    std::atomic<uint64_t> expired_{0};   ///< deadline drops at dequeue
    std::atomic<uint64_t> workerRestarts_{0};

    // Epoch bookkeeping for wall-clock rates, guarded by epochM_.
    mutable std::mutex epochM_;
    std::condition_variable drainCv_;
    std::chrono::steady_clock::time_point epochStart_;
    std::chrono::steady_clock::time_point lastCompletion_;
    bool epochOpen_ = false;
};

} // namespace herosign::service

#endif // HEROSIGN_SERVICE_VERIFY_SERVICE_HH
