/**
 * @file
 * VerifyService: the batched, multi-tenant verification front end —
 * the other half of serving signature traffic. Requests group by
 * tenant, each group runs through SphincsPlus::verifyBatch so the
 * WOTS+ chain recompute, FORS walks and Merkle root reconstructions
 * fill the dispatched hash-lane width across signatures, and all
 * verification reuses warm contexts from the (optionally shared)
 * ContextCache.
 */

#ifndef HEROSIGN_SERVICE_VERIFY_SERVICE_HH
#define HEROSIGN_SERVICE_VERIFY_SERVICE_HH

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "service/context_cache.hh"
#include "service/key_store.hh"
#include "service/service_stats.hh"

namespace herosign::service
{

/** One verification request (spans must outlive the call). */
struct VerifyRequest
{
    std::string keyId;
    ByteSpan msg;
    ByteSpan sig;
};

/**
 * Multi-tenant verification service over a KeyStore.
 *
 * Calls are synchronous on the caller's thread (verification is
 * read-only, so any number of threads may call concurrently); the
 * batching win comes from lane parallelism, not queuing.
 */
class VerifyService
{
  public:
    /**
     * @param store  key registry (must outlive the service)
     * @param cache  optional shared warm-context cache (pass the
     *               SignService's to serve both directions from one
     *               set of warm contexts); nullptr builds a private
     *               one with @p cache_capacity entries
     * @param stats  optional shared per-tenant stats registry
     */
    explicit VerifyService(
        KeyStore &store, std::shared_ptr<ContextCache> cache = nullptr,
        std::shared_ptr<StatsRegistry> stats = nullptr,
        size_t cache_capacity = 64,
        Sha256Variant variant = Sha256Variant::Native);

    /**
     * Verify one signature. Unknown tenants report false (and count
     * as rejects in the global counters only — never as new registry
     * entries, so unbounded attacker-supplied ids cannot grow memory)
     * rather than throwing: in a serving loop a bad key id is data,
     * not a programming error.
     */
    bool verify(const std::string &key_id, ByteSpan msg, ByteSpan sig);

    /**
     * Verify a mixed-tenant batch. Results are positional: out[i] is
     * 1 when reqs[i] verified. Requests are grouped by tenant and
     * each group runs hashLaneWidth() signatures per lane pass;
     * results are bool-identical to calling verify() per request.
     */
    std::vector<uint8_t>
    verifyBatch(const std::vector<VerifyRequest> &reqs);

    /** Single-tenant convenience overload. */
    std::vector<uint8_t> verifyBatch(const std::string &key_id,
                                     const std::vector<ByteVec> &msgs,
                                     const std::vector<ByteVec> &sigs);

    /** Snapshot (verify counters, cache, per-tenant). */
    ServiceStats stats() const;

    const std::shared_ptr<ContextCache> &contextCache() const
    {
        return cache_;
    }

    const std::shared_ptr<StatsRegistry> &statsRegistry() const
    {
        return statsReg_;
    }

  private:
    KeyStore &store_;
    std::shared_ptr<ContextCache> cache_;
    std::shared_ptr<StatsRegistry> statsReg_;
    std::atomic<uint64_t> verifies_{0};
    std::atomic<uint64_t> rejects_{0};
};

} // namespace herosign::service

#endif // HEROSIGN_SERVICE_VERIFY_SERVICE_HH
