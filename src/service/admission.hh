/**
 * @file
 * The admission-control half of the traffic fabric. One
 * AdmissionController owns the pending-job budget for both serving
 * planes (sign and verify) plus the per-tenant quota, so a
 * SignService/VerifyService pair sharing one controller enforces a
 * single coherent backpressure policy across both traffic
 * directions. Every refusal is a typed ServiceOverload that tells
 * the caller which limit tripped.
 */

#ifndef HEROSIGN_SERVICE_ADMISSION_HH
#define HEROSIGN_SERVICE_ADMISSION_HH

#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>

#include "hash/sha256.hh"
#include "service/service_stats.hh"

namespace herosign::tune
{
struct Profile;
struct ServiceKnobOverrides;
} // namespace herosign::tune

namespace herosign::service
{

/** Traffic direction through the serving layer. */
enum class Plane { Sign, Verify };

/** Thrown when admission control refuses a submit. */
class ServiceOverload : public std::runtime_error
{
  public:
    /** Which limit refused the job. */
    enum class Kind { SignCap, VerifyCap, TotalCap, TenantQuota };

    ServiceOverload(Kind kind, const std::string &what)
        : std::runtime_error(what), kind_(kind)
    {
    }

    /** Untyped overloads default to the sign-plane cap. */
    explicit ServiceOverload(const std::string &what)
        : std::runtime_error(what), kind_(Kind::SignCap)
    {
    }

    Kind kind() const { return kind_; }

  private:
    Kind kind_;
};

/** Construction-time knobs shared by the serving-layer services. */
struct ServiceConfig
{
    unsigned workers = 4;  ///< sign worker threads (clamped to >= 1)
    unsigned shards = 4;   ///< sign queue shards (clamped to >= 1)
    /// Queued sign jobs one worker coalesces per pass; same-context
    /// (same-tenant) runs sign as one cross-signature lane group.
    /// 0 = auto (the dispatched hash-lane width); 1 disables
    /// coalescing.
    unsigned signCoalesce = 0;
    unsigned verifyWorkers = 2; ///< verify worker threads (>= 1)
    unsigned verifyShards = 2;  ///< verify queue shards (>= 1)
    /// Max queued requests one verify worker coalesces into a single
    /// per-tenant-grouped pass; 0 = auto (4x the dispatched hash-lane
    /// width, so mixed traffic from a handful of tenants still fills
    /// whole lane groups).
    unsigned verifyCoalesce = 0;
    size_t contextCacheCapacity = 64; ///< warm per-key contexts kept
    /// Reject sign submits once this many sign jobs are pending
    /// (0 = unbounded).
    uint64_t maxPending = 0;
    /// Reject async verify submits once this many verify jobs are
    /// pending (0 = unbounded).
    uint64_t maxPendingVerify = 0;
    /// One shared budget across both planes (0 = unbounded).
    uint64_t maxPendingTotal = 0;
    /// Per-tenant quota on pending jobs, both planes (0 = unbounded).
    uint64_t maxPendingPerTenant = 0;
    /// Verify every produced signature against the tenant's warm
    /// context before its future is fulfilled. On a mismatch the job
    /// is re-signed once on the forced-scalar hash path and the
    /// suspect SIMD tier is quarantined process-wide; a second
    /// mismatch fails the job with SigningFault. Guarantees no
    /// corrupt signature ever escapes the service (a faulty SPHINCS+
    /// signature can leak WOTS one-time key material).
    bool verifyAfterSign = false;
    Sha256Variant variant = Sha256Variant::Native;
    /// Telemetry-plane knobs (stage histograms, trace sampling).
    /// Applied to the service's private StatsRegistry; when a shared
    /// registry is passed in, the registry's own telemetry
    /// configuration wins.
    telemetry::TelemetryConfig telemetry;

    /**
     * The recommended construction path on a tuned host: the knobs a
     * persisted autotuner profile recorded, clamped exactly like
     * directly-set values (see tune::KnobSpace::clamp). The overload
     * taking ServiceKnobOverrides lets explicitly user-set knobs win
     * over the profile unconditionally. Defined in src/tune/.
     */
    static ServiceConfig fromProfile(const tune::Profile &p);
    static ServiceConfig
    fromProfile(const tune::Profile &p,
                const tune::ServiceKnobOverrides &user);
};

/** The pending-job limits an AdmissionController enforces. */
struct AdmissionLimits
{
    uint64_t maxPendingSign = 0;      ///< sign-plane cap
    uint64_t maxPendingVerify = 0;    ///< verify-plane cap
    uint64_t maxPendingTotal = 0;     ///< shared budget, both planes
    uint64_t maxPendingPerTenant = 0; ///< per-tenant quota

    static AdmissionLimits
    fromConfig(const ServiceConfig &cfg)
    {
        AdmissionLimits l;
        l.maxPendingSign = cfg.maxPending;
        l.maxPendingVerify = cfg.maxPendingVerify;
        l.maxPendingTotal = cfg.maxPendingTotal;
        l.maxPendingPerTenant = cfg.maxPendingPerTenant;
        return l;
    }
};

/**
 * Shared admission control for the sign and verify planes. admit()
 * checks every configured limit and claims the slot atomically (one
 * mutex serializes check-then-claim across all producers and both
 * planes); release() returns it on completion. Per-tenant pending is
 * tracked in the tenant's TenantCounters, so quota enforcement spans
 * every service wired to the same StatsRegistry.
 */
class AdmissionController
{
  public:
    explicit AdmissionController(const AdmissionLimits &limits = {})
        : lim_(limits)
    {
    }

    /**
     * Claim one pending slot for @p plane on tenant @p tenant_id.
     * @throws ServiceOverload (typed) when any limit would be
     *         exceeded; no state changes in that case
     */
    void admit(Plane plane, TenantCounters &tc,
               const std::string &tenant_id);

    /** Return @p count slots claimed by admit(). */
    void release(Plane plane, TenantCounters &tc, uint64_t count = 1);

    /** Pending jobs currently admitted on @p plane. */
    uint64_t pending(Plane plane) const;

    /** Pending jobs across both planes. */
    uint64_t pendingTotal() const;

    const AdmissionLimits &limits() const { return lim_; }

  private:
    const AdmissionLimits lim_;
    mutable std::mutex m_;
    uint64_t pendingSign_ = 0;
    uint64_t pendingVerify_ = 0;
};

} // namespace herosign::service

#endif // HEROSIGN_SERVICE_ADMISSION_HH
