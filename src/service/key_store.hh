/**
 * @file
 * Multi-tenant key storage. Each tenant (key id) owns one immutable
 * KeyRecord — parameter set, secret key (optional: verify-only
 * tenants hold just the public key) and public key — handed out via
 * shared_ptr so signer workers and warm context caches share one copy
 * of the key material instead of cloning it. Secret seeds are
 * securely zeroized when the last reference drops.
 */

#ifndef HEROSIGN_SERVICE_KEY_STORE_HH
#define HEROSIGN_SERVICE_KEY_STORE_HH

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "sphincs/sphincs.hh"

namespace herosign::service
{

/** One tenant's immutable key material. */
struct KeyRecord
{
    std::string id;
    sphincs::Params params;
    sphincs::SecretKey sk; ///< seeds empty for verify-only tenants
    sphincs::PublicKey pk;

    /** True when the record can sign (secret seeds present). */
    bool canSign() const { return !sk.skSeed.empty(); }

    KeyRecord() = default;
    KeyRecord(const KeyRecord &) = delete;
    KeyRecord &operator=(const KeyRecord &) = delete;

    /** Secret seeds are zeroized, never just freed. */
    ~KeyRecord();
};

/**
 * Thread-safe id -> KeyRecord map. Records are immutable once added;
 * remove() only drops the store's reference — outstanding shared_ptr
 * holders (queued jobs, warm contexts) keep the material alive and
 * zeroization happens when the last of them releases.
 */
class KeyStore
{
  public:
    /**
     * Register a signing tenant.
     * @throws std::invalid_argument when @p id is already present
     */
    std::shared_ptr<const KeyRecord> addKey(const std::string &id,
                                            const sphincs::KeyPair &kp);

    /** Register a verify-only tenant (public key, no secrets). */
    std::shared_ptr<const KeyRecord>
    addVerifyKey(const std::string &id, const sphincs::PublicKey &pk);

    /** Look up a tenant; nullptr when absent. */
    std::shared_ptr<const KeyRecord> find(const std::string &id) const;

    /** Drop a tenant's record. @return true when it existed. */
    bool remove(const std::string &id);

    size_t size() const;

    /** All registered tenant ids (sorted). */
    std::vector<std::string> ids() const;

  private:
    std::shared_ptr<const KeyRecord>
    insert(std::shared_ptr<KeyRecord> rec);

    mutable std::mutex m_;
    std::unordered_map<std::string, std::shared_ptr<const KeyRecord>>
        keys_;
};

} // namespace herosign::service

#endif // HEROSIGN_SERVICE_KEY_STORE_HH
